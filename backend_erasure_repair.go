package p3

import (
	"context"
	"fmt"
	"sort"
	"time"

	"p3/internal/erasure"
)

// ScrubReport summarizes one scrub pass over the share inventories (the
// same numbers accumulate into RepairStats; the report is the per-pass
// view, for operators and tests).
type ScrubReport struct {
	// Objects is how many distinct objects the pass examined.
	Objects int `json:"objects"`
	// SharesChecked counts home share slots found healthy at the newest
	// recoverable epoch.
	SharesChecked int `json:"shares_checked"`
	// SharesMissing counts home slots found empty.
	SharesMissing int `json:"shares_missing"`
	// SharesCorrupt counts home slots holding bytes that failed the share
	// checksum or parse — bit rot caught before a read paid for it.
	SharesCorrupt int `json:"shares_corrupt"`
	// SharesRepaired counts shares re-encoded and written to their home
	// slots this pass.
	SharesRepaired int `json:"shares_repaired"`
	// SharesRemoved counts misplaced or departed-shard copies deleted after
	// their object was verified healthy on its home shards.
	SharesRemoved int `json:"shares_removed"`
	// TombstonesPropagated counts deletion markers written over stale
	// shares so a revived shard cannot resurrect a deleted secret.
	TombstonesPropagated int `json:"tombstones_propagated"`
	// LostObjects counts objects with fewer than k intact shares anywhere
	// and no tombstone — unrecoverable data loss.
	LostObjects int `json:"lost_objects"`
	// HintsDrained counts parked shares delivered to revived shards this
	// pass.
	HintsDrained int `json:"hints_drained"`
	// UnlistableShards counts shards whose inventory could not be
	// enumerated (no SecretLister, or the listing failed); their objects
	// are still scrubbed when any listable shard holds a share of them.
	UnlistableShards int `json:"unlistable_shards"`
}

// scrubSource is one store the scrubber reads from: a current shard
// (shard >= 0, indexed into the snapshot's shard list) or a departed store
// being drained by a rebalance (shard < 0).
type scrubSource struct {
	store SecretStore
	shard int
}

// ScrubOnce runs one full scrub pass: drain parked hints to revived
// shards, walk every listable shard's share inventory, and for each object
// verify all n home slots — re-encoding missing, corrupt or stale shares
// from any k intact ones, propagating tombstones over shares that survived
// a delete, and removing copies stranded off their home shard. Passes are
// serialized; concurrent reads and writes proceed normally.
func (s *ErasureSecretStore) ScrubOnce(ctx context.Context) (ScrubReport, error) {
	return s.scrub(ctx, nil)
}

// scrub is ScrubOnce plus optional extra read-only sources (the departed
// shards during a Rebalance).
func (s *ErasureSecretStore) scrub(ctx context.Context, extra []SecretStore) (ScrubReport, error) {
	s.scrubMu.Lock()
	defer s.scrubMu.Unlock()
	lay := s.layout()
	var rep ScrubReport

	rep.HintsDrained = s.drainHints(ctx, lay)

	// Inventory: every listable source's share keys, grouped by object.
	sources := make([]scrubSource, 0, len(lay.shards)+len(extra))
	for i, shard := range lay.shards {
		sources = append(sources, scrubSource{store: shard, shard: i})
	}
	for _, ex := range extra {
		if !containsStore(lay.shards, ex) {
			sources = append(sources, scrubSource{store: ex, shard: -1})
		}
	}
	inv := map[string]map[int][]scrubSource{} // id -> share index -> holders
	for _, src := range sources {
		lister, ok := src.store.(SecretLister)
		if !ok {
			rep.UnlistableShards++
			continue
		}
		keys, err := lister.ListSecrets(ctx)
		if err != nil {
			rep.UnlistableShards++
			continue
		}
		for _, key := range keys {
			id, idx, ok := parseShareKey(key)
			if !ok {
				continue // foreign key on a shared shard directory
			}
			byIdx := inv[id]
			if byIdx == nil {
				byIdx = map[int][]scrubSource{}
				inv[id] = byIdx
			}
			byIdx[idx] = append(byIdx[idx], src)
		}
	}

	ids := make([]string, 0, len(inv))
	for id := range inv {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			s.accumulateScrub(rep)
			return rep, err
		}
		s.scrubObject(ctx, lay, id, inv[id], &rep)
	}
	s.accumulateScrub(rep)
	s.repairC.scrubCycles.Add(1)
	return rep, nil
}

// containsStore reports whether stores holds exactly this store value
// (pointer identity for all bundled stores).
func containsStore(stores []SecretStore, target SecretStore) bool {
	for _, st := range stores {
		if st == target {
			return true
		}
	}
	return false
}

// accumulateScrub folds a pass's report into the cumulative RepairStats.
func (s *ErasureSecretStore) accumulateScrub(rep ScrubReport) {
	c := &s.repairC
	c.objectsScanned.Add(uint64(rep.Objects))
	c.sharesChecked.Add(uint64(rep.SharesChecked))
	c.sharesMissing.Add(uint64(rep.SharesMissing))
	c.sharesCorrupt.Add(uint64(rep.SharesCorrupt))
	c.sharesRepaired.Add(uint64(rep.SharesRepaired))
	c.sharesRemoved.Add(uint64(rep.SharesRemoved))
	c.tombstonesPropagated.Add(uint64(rep.TombstonesPropagated))
	c.lostObjects.Add(uint64(rep.LostObjects))
}

// slotView is what the scrubber found in one home share slot.
type slotView struct {
	present   bool // some bytes are stored there
	readErr   bool // the read failed (shard unreachable; not "not found")
	valid     bool // bytes parse as a share for this object and slot
	share     erasure.Share
	tomb      bool
	tombEpoch uint64
}

// misplacedCopy is a share or tombstone copy living somewhere other than
// its current home slot (wrong shard, departed shard, or an index beyond
// the current scheme) — readable for reconstruction, removable once the
// home slots are healthy.
type misplacedCopy struct {
	src scrubSource
	key string
}

// scrubObject verifies and repairs one object's share slots.
func (s *ErasureSecretStore) scrubObject(ctx context.Context, lay storeLayout, id string, locs map[int][]scrubSource, rep *ScrubReport) {
	if s.writeInFlight(id) {
		return // half-written stripe; the writer owns it, next pass verifies
	}
	rep.Objects++
	k, n := lay.k, lay.n
	placement := lay.ring.placements(id, n)

	// Read every home slot (even unlisted ones: the shard may be unlistable
	// or the slot empty) plus every stray copy the inventory turned up.
	homes := make([]slotView, n)
	groups := map[uint64][]erasure.Share{}
	var tombMax uint64
	haveTomb, haveReadErr := false, false
	note := func(f shareFetch, present bool) *slotView {
		v := &slotView{present: present}
		switch {
		case f.tomb:
			v.tomb, v.tombEpoch = true, f.tombEpoch
			haveTomb = true
			tombMax = max(tombMax, f.tombEpoch)
		case f.valid:
			v.valid, v.share = true, f.share
			groups[f.share.Epoch] = append(groups[f.share.Epoch], f.share)
		}
		return v
	}
	for i := 0; i < n; i++ {
		raw, err := lay.shards[placement[i]].GetSecret(ctx, shareKey(id, i))
		if err != nil {
			if !IsNotFound(err) {
				homes[i].readErr = true
				haveReadErr = true
			}
			continue
		}
		homes[i] = *note(parseShareBytes(i, id, raw), true)
	}
	var misplaced []misplacedCopy
	for idx, srcs := range locs {
		for _, src := range srcs {
			if src.shard >= 0 && idx < n && src.shard == placement[idx] {
				continue // that is the home copy, already read above
			}
			key := shareKey(id, idx)
			raw, err := src.store.GetSecret(ctx, key)
			if err != nil {
				if !IsNotFound(err) {
					haveReadErr = true
				}
				continue
			}
			note(parseShareBytes(idx, id, raw), true)
			misplaced = append(misplaced, misplacedCopy{src: src, key: key})
		}
	}

	// The newest epoch with enough distinct shares to reconstruct wins.
	var bestEpoch uint64
	haveBest := false
	for e, g := range groups {
		if uniqueShareCount(g) >= g[0].K && (!haveBest || e > bestEpoch) {
			bestEpoch, haveBest = e, true
		}
	}

	switch {
	case haveTomb && (!haveBest || tombMax >= bestEpoch):
		// The object is deleted. Overwrite any surviving share (or garbage)
		// with the tombstone so no future read or repair resurrects it;
		// already-tombstoned and empty slots are left alone, so a converged
		// deleted object costs a scrub nothing.
		//
		// Exception, mirroring the LostObjects guard below: while any source
		// is unreachable, a share NEWER than the tombstone is never
		// overwritten even though its epoch lacks k shares here — the missing
		// shares of that post-delete write may be sitting on the unreachable
		// shards, and destroying the reachable ones would turn a degraded
		// acknowledged write into a permanent loss. Only once every source
		// has answered is a sub-k newer epoch provably unrecoverable, and the
		// tombstone the deterministic resolution.
		rec := encodeRecord(recordTombstone, tombMax, nil)
		for i := 0; i < n; i++ {
			v := &homes[i]
			if v.readErr || !v.present || (v.tomb && v.tombEpoch >= tombMax) {
				continue
			}
			if haveReadErr && v.valid && v.share.Epoch > tombMax {
				continue
			}
			shard := placement[i]
			lay.counters[shard].sharePuts.Add(1)
			if err := lay.shards[shard].PutSecret(ctx, shareKey(id, i), rec); err != nil {
				lay.counters[shard].sharePutFailures.Add(1)
			} else {
				rep.TombstonesPropagated++
			}
		}
		// Stray copies may likewise be the last reachable shares of a newer
		// write; keep them until a pass where every source answers.
		if !haveReadErr {
			rep.SharesRemoved += removeCopies(ctx, misplaced)
		}

	case haveBest:
		g := groups[bestEpoch]
		schemeCurrent := g[0].K == k && g[0].N == n
		var unhealthy []int
		for i := 0; i < n; i++ {
			v := &homes[i]
			if schemeCurrent && v.valid && v.share.Epoch == bestEpoch && v.share.K == k && v.share.N == n {
				rep.SharesChecked++
				continue
			}
			if v.readErr {
				continue // unreachable shard: repair it next pass
			}
			if haveReadErr && v.valid && v.share.Epoch > bestEpoch {
				// Same protection as the tombstone case: a share newer than
				// the best recoverable epoch may belong to a write whose
				// sibling shares are on the unreachable shards.
				continue
			}
			switch {
			case !v.present:
				rep.SharesMissing++
			case !v.valid && !v.tomb:
				rep.SharesCorrupt++
			}
			unhealthy = append(unhealthy, i)
		}
		if len(unhealthy) == 0 && len(misplaced) == 0 {
			return
		}
		data, err := erasure.Reconstruct(g)
		if err != nil {
			return // inconsistent group; leave it for reads to report
		}
		epoch := bestEpoch
		if !schemeCurrent {
			// The scheme changed (rebalance or reconfiguration): rewrite the
			// whole stripe under the current scheme at a fresh epoch, which
			// supersedes every old-scheme share.
			epoch = s.epochs.next()
			unhealthy = unhealthy[:0]
			for i := 0; i < n; i++ {
				v := &homes[i]
				if v.readErr || (haveReadErr && v.valid && v.share.Epoch > bestEpoch) {
					continue
				}
				unhealthy = append(unhealthy, i)
			}
		}
		// Re-encoding at the same epoch is deterministic, so repaired shares
		// are byte-identical to the originals.
		shs, err := erasure.Encode(id, epoch, data, k, n)
		if err != nil {
			return
		}
		repairFailed := false
		for _, i := range unhealthy {
			shard := placement[i]
			lay.counters[shard].sharePuts.Add(1)
			if err := lay.shards[shard].PutSecret(ctx, shareKey(id, i), shs[i].Marshal()); err != nil {
				lay.counters[shard].sharePutFailures.Add(1)
				repairFailed = true
			} else {
				lay.counters[shard].shareRepairs.Add(1)
				rep.SharesRepaired++
			}
		}
		// Strays are only removed once every home slot is verifiably
		// healthy — while any slot is unreachable or failed its repair, a
		// stray copy may be the margin between degraded and lost.
		if !repairFailed && !haveReadErr {
			rep.SharesRemoved += removeCopies(ctx, misplaced)
		}

	default:
		// Fewer than k intact shares anywhere and no tombstone. Only declare
		// loss when every source actually answered; an unreachable shard may
		// still hold the missing shares.
		if !haveReadErr {
			rep.LostObjects++
		}
	}
}

// uniqueShareCount counts distinct share indices in a group (the same
// share can be seen from its home slot and a stray copy).
func uniqueShareCount(g []erasure.Share) int {
	seen := map[int]bool{}
	for _, sh := range g {
		seen[sh.Index] = true
	}
	return len(seen)
}

// removeCopies best-effort deletes stray share copies from sources that
// support deletion. Sources without SecretDeleter keep their strays —
// harmless, since reads never consult them.
func removeCopies(ctx context.Context, copies []misplacedCopy) int {
	removed := 0
	for _, mp := range copies {
		del, ok := mp.src.store.(SecretDeleter)
		if !ok {
			continue
		}
		if err := del.DeleteSecret(ctx, mp.key); err == nil {
			removed++
		}
	}
	return removed
}

// recordEpochOf extracts the write epoch from stored share or tombstone
// bytes (0 for legacy/unparseable bytes, which any real record supersedes).
func recordEpochOf(raw []byte) uint64 {
	if sh, err := erasure.ParseShare(raw); err == nil {
		return sh.Epoch
	}
	if kind, epoch, _ := decodeRecord(raw); kind == recordTombstone {
		return epoch
	}
	return 0
}

// drainHints tries to deliver every parked share to its home shard,
// keeping hints whose shard is still down and discarding hints the shard
// has since superseded (a newer write landed while the hint was parked).
func (s *ErasureSecretStore) drainHints(ctx context.Context, lay storeLayout) int {
	drained := 0
	for hk, rec := range s.hints.snapshot() {
		if hk.shard < 0 || hk.shard >= len(lay.shards) {
			s.hints.remove(hk) // stale after a rebalance
			continue
		}
		cur, err := lay.shards[hk.shard].GetSecret(ctx, hk.key)
		switch {
		case err == nil && recordEpochOf(cur) >= recordEpochOf(rec):
			s.hints.remove(hk) // superseded while parked
			continue
		case err != nil && !IsNotFound(err):
			continue // shard still down; keep the hint
		}
		lay.counters[hk.shard].sharePuts.Add(1)
		if err := lay.shards[hk.shard].PutSecret(ctx, hk.key, rec); err != nil {
			lay.counters[hk.shard].sharePutFailures.Add(1)
			continue
		}
		lay.counters[hk.shard].shareRepairs.Add(1)
		s.hints.remove(hk)
		s.repairC.hintsDrained.Add(1)
		drained++
	}
	return drained
}

// Rebalance replaces the shard set — the planned join/leave path. The new
// ring takes effect immediately for reads and writes, then a scrub pass
// migrates every share onto its new home shards, reading from the union of
// old and new shards so even objects living entirely on departed shards
// are recovered before those stores are detached. Departed shards that
// support deletion are emptied of their copies as objects are verified
// healthy on the new layout.
func (s *ErasureSecretStore) Rebalance(ctx context.Context, newShards []SecretStore) error {
	s.mu.RLock()
	n := s.n
	s.mu.RUnlock()
	if len(newShards) < n {
		return fmt.Errorf("p3: erasure store rebalance: scheme needs %d shards, got %d", n, len(newShards))
	}
	s.mu.Lock()
	old := s.shards
	s.shards = newShards
	s.ring = newHashRing(len(newShards))
	s.counters = make([]erasureShardCounters, len(newShards))
	s.mu.Unlock()
	// Parked hints address shards by index in the old layout; drop them and
	// let the migration scrub restore redundancy from the data itself.
	s.hints.clear()
	_, err := s.scrub(ctx, old)
	return err
}

// startRepairDaemon launches the background scrubber when a scrub interval
// was configured; Close stops it.
func (s *ErasureSecretStore) startRepairDaemon() {
	s.startOnce.Do(func() {
		if s.scrubInterval <= 0 {
			return
		}
		s.stopScrub = make(chan struct{})
		s.scrubDone = make(chan struct{})
		go func() {
			defer close(s.scrubDone)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() {
				<-s.stopScrub
				cancel()
			}()
			ticker := time.NewTicker(s.scrubInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					s.ScrubOnce(ctx)
				}
			}
		}()
	})
}

// Close stops the background repair daemon, waiting for an in-flight scrub
// pass to wind down. The store remains usable for reads and writes; Close
// is idempotent and a no-op when no daemon was started.
func (s *ErasureSecretStore) Close() error {
	s.stopOnce.Do(func() {
		if s.stopScrub != nil {
			close(s.stopScrub)
			<-s.scrubDone
		}
	})
	return nil
}
