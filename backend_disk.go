package p3

import (
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// DiskSecretStore is a SecretStore backed by a local directory — the
// paper's "any storage the user already has" deployment (a Dropbox-synced
// folder, a NAS mount, a node-local shard of a larger store).
//
// Durability discipline: every blob is written to a temporary file in the
// same directory, fsynced, renamed over the final name, and the directory
// fsynced, so a crash at any point leaves either the old blob or the new
// one — never a torn mix, and never a partially written blob visible to
// GetSecret. Photo IDs are assigned by an untrusted PSP, so they are never
// used as filenames directly: each ID is base64url-encoded (hashed when too
// long for a filename), which confines every possible ID (including ones
// like "a/../b") to a single flat filename inside the store directory.
type DiskSecretStore struct {
	dir string

	// testCrashAfterWrite, when non-nil, is called after the temp file is
	// written but before the rename, simulating a crash mid-write: if it
	// returns an error, PutSecret aborts leaving the temp file behind.
	testCrashAfterWrite func() error
}

// blobSuffix distinguishes committed blobs from in-flight temp files.
const blobSuffix = ".secret"

// staleTempAge is how old a stranded temp file must be before the opening
// sweep discards it. The age gate keeps the sweep from racing another live
// store instance on a shared directory (NAS mount, synced folder) whose
// in-flight write is legitimately sitting between CreateTemp and Rename.
const staleTempAge = time.Hour

// NewDiskSecretStore opens (creating if needed) a store rooted at dir.
// Temp files stranded by an old crash are swept away; committed blobs and
// fresh temp files (possibly another live instance's in-flight writes) are
// untouched.
func NewDiskSecretStore(dir string) (*DiskSecretStore, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("p3: opening disk secret store: %w", err)
	}
	// A crash between write and rename strands a temp file; it was never
	// visible, so it is safe to discard once clearly abandoned.
	stale, err := filepath.Glob(filepath.Join(dir, "put-*.tmp"))
	if err == nil {
		for _, f := range stale {
			if info, err := os.Stat(f); err == nil && time.Since(info.ModTime()) > staleTempAge {
				os.Remove(f)
			}
		}
	}
	return &DiskSecretStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DiskSecretStore) Dir() string { return s.dir }

// maxEncodedIDLen bounds the base64 form of an ID in a filename; longer
// IDs fall back to a hash name so the path never exceeds the filesystem's
// NAME_MAX (255 on Linux).
const maxEncodedIDLen = 180

// blobPath maps an arbitrary ID to a flat, path-safe filename: "id-" plus
// the base64url ID for normal IDs (reversible, debuggable with base64 -d),
// or "sha256-" plus the ID's hash for IDs too long to fit in a filename.
// The distinct prefixes keep the two namespaces disjoint, so no two IDs
// can collide on one file.
func (s *DiskSecretStore) blobPath(id string) string {
	enc := base64.RawURLEncoding.EncodeToString([]byte(id))
	if len(enc) > maxEncodedIDLen {
		sum := sha256.Sum256([]byte(id))
		enc = "sha256-" + hex.EncodeToString(sum[:])
	} else {
		enc = "id-" + enc
	}
	return filepath.Join(s.dir, enc+blobSuffix)
}

// PutSecret implements SecretStore with atomic, crash-safe writes.
func (s *DiskSecretStore) PutSecret(ctx context.Context, id string, blob []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	f, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("p3: disk store: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("p3: disk store writing %q: %w", id, err)
	}
	if _, err := f.Write(blob); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if s.testCrashAfterWrite != nil {
		if err := s.testCrashAfterWrite(); err != nil {
			// Simulated crash: the temp file stays behind, exactly as a real
			// crash would leave it. It must never become visible.
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmp, s.blobPath(id)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("p3: disk store committing %q: %w", id, err)
	}
	return s.syncDir()
}

// syncDir fsyncs the store directory so the rename itself is durable.
func (s *DiskSecretStore) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("p3: disk store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("p3: disk store syncing directory: %w", err)
	}
	return nil
}

// GetSecret implements SecretStore.
func (s *DiskSecretStore) GetSecret(ctx context.Context, id string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	blob, err := os.ReadFile(s.blobPath(id))
	if os.IsNotExist(err) {
		return nil, &NotFoundError{Kind: "secret", ID: id}
	}
	if err != nil {
		return nil, fmt.Errorf("p3: disk store reading %q: %w", id, err)
	}
	return blob, nil
}

// DeleteSecret implements SecretDeleter. Deleting an absent blob is not an
// error.
func (s *DiskSecretStore) DeleteSecret(ctx context.Context, id string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := os.Remove(s.blobPath(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("p3: disk store deleting %q: %w", id, err)
	}
	return nil
}

// ListSecrets implements SecretLister by decoding committed blob filenames
// back to their IDs. Hash-named blobs (IDs too long for a filename) are
// skipped: their IDs cannot be recovered from the name, so they are
// invisible to inventory walks — acceptable, since the proxy caps IDs far
// below the fallback threshold.
func (s *DiskSecretStore) ListSecrets(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("p3: disk store listing: %w", err)
	}
	ids := make([]string, 0, len(entries))
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), blobSuffix)
		if !ok || e.IsDir() {
			continue
		}
		enc, ok := strings.CutPrefix(name, "id-")
		if !ok {
			continue // sha256- fallback name: ID unrecoverable
		}
		id, err := base64.RawURLEncoding.DecodeString(enc)
		if err != nil {
			continue // foreign file in the store directory
		}
		ids = append(ids, string(id))
	}
	return ids, nil
}

// Len reports how many committed blobs the store holds (for tests, stats,
// and rebalancing tooling).
func (s *DiskSecretStore) Len() (int, error) {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range names {
		if !e.IsDir() && strings.HasSuffix(e.Name(), blobSuffix) {
			n++
		}
	}
	return n, nil
}
