// Quickstart: split a photo with P3, look at what each party can see, and
// reconstruct the original exactly.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"p3"
	"p3/internal/dataset"
	"p3/internal/jpegx"
	"p3/internal/vision"
)

func main() {
	// A "photo" — in a real deployment this is a camera JPEG.
	photo := dataset.Natural(7, 512, 384)
	coeffs, err := photo.ToCoeffs(92, jpegx.Sub420)
	if err != nil {
		log.Fatal(err)
	}
	var original bytes.Buffer
	if err := jpegx.EncodeCoeffs(&original, coeffs, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original photo:   %6d bytes (512x384)\n", original.Len())

	// The sender and recipients share a key out of band; each builds a
	// long-lived codec at the paper's recommended operating point.
	key, err := p3.NewKey()
	if err != nil {
		log.Fatal(err)
	}
	codec, err := p3.New(key)
	if err != nil {
		log.Fatal(err)
	}

	split, err := codec.SplitBytes(original.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("public part:      %6d bytes — a standards-compliant JPEG for the PSP\n", len(split.PublicJPEG))
	fmt.Printf("secret part:      %6d bytes JPEG, %d bytes sealed — for any untrusted blob store\n",
		split.SecretJPEGLen, len(split.SecretBlob))
	fmt.Printf("storage overhead: %+.1f%%\n",
		100*(float64(len(split.PublicJPEG)+split.SecretJPEGLen)/float64(original.Len())-1))

	// What does an attacker holding only the public part see?
	pubIm, err := jpegx.Decode(bytes.NewReader(split.PublicJPEG))
	if err != nil {
		log.Fatal(err)
	}
	pubPSNR, err := vision.PSNR(coeffs.ToPlanar(), pubIm.ToPlanar())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("public-part PSNR: %6.1f dB vs the original — \"practically useless\" territory (§5.2.2)\n", pubPSNR)

	// An authorized recipient reconstructs exactly.
	restored, err := codec.JoinBytes(split.PublicJPEG, split.SecretBlob)
	if err != nil {
		log.Fatal(err)
	}
	restoredIm, err := jpegx.Decode(bytes.NewReader(restored))
	if err != nil {
		log.Fatal(err)
	}
	exact := true
	for ci := range coeffs.Components {
		for bi := range coeffs.Components[ci].Blocks {
			if coeffs.Components[ci].Blocks[bi] != restoredIm.Components[ci].Blocks[bi] {
				exact = false
			}
		}
	}
	fmt.Printf("reconstruction:   coefficient-exact = %v\n", exact)

	// The wrong key gets nothing.
	wrongKey, _ := p3.NewKey()
	eve, _ := p3.New(wrongKey)
	if _, err := eve.JoinBytes(split.PublicJPEG, split.SecretBlob); err != nil {
		fmt.Printf("wrong key:        rejected (%v)\n", err)
	}
}
