// Privacystudy: runs the paper's privacy attacks (§5.2.2) against P3
// public parts at several thresholds and prints the resulting tables —
// edge detection, face detection, SIFT features, face recognition, and the
// threshold-guessing attack.
//
//	go run ./examples/privacystudy        # reduced corpora, a few minutes
package main

import (
	"fmt"
	"log"

	"p3/internal/experiments"
)

func main() {
	thresholds := []int{1, 10, 20, 40, 100}

	fmt.Println("P3 privacy study: attacks on the public part")
	fmt.Println()

	tab, err := experiments.Fig8aEdgeDetection(thresholds, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tab)

	tab, err = experiments.Fig8bFaceDetection(thresholds, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tab)

	tab, err = experiments.Fig8cSIFT(thresholds, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tab)

	tab, err = experiments.Fig8dFaceRecognition([]int{1, 20, 100}, 12, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tab)

	tab, err = experiments.ThresholdGuessing(thresholds, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tab)

	fmt.Println("Reading guide: at the recommended T=15-20 operating point, edge")
	fmt.Println("matching, face detection and SIFT collapse on the public part, and")
	fmt.Println("recognition trained on normal faces fails on public probes. The")
	fmt.Println("attacker can still guess T itself — the paper's §3.4 shows that")
	fmt.Println("reveals positions, never values or signs.")
}
