// Bandwidth: models a mobile photo-browsing session (the paper's §2.1
// motivation) and accounts for every byte a P3 user moves versus a non-P3
// user — upload, thumbnail feed scrolling, and a few full views — across
// thresholds. Reproduces the trade-off behind Fig. 10: the secret part must
// be downloaded in full at every resolution, so smaller T buys privacy at
// bandwidth cost.
//
//	go run ./examples/bandwidth
package main

import (
	"bytes"
	"fmt"
	"log"

	"p3"
	"p3/internal/dataset"
	"p3/internal/jpegx"
	"p3/internal/psp"
)

func main() {
	pipeline := psp.FacebookLike()
	photos := dataset.INRIA(6)

	// Session: upload each photo once; later, browse 6 thumbnails and open
	// 2 photos at the big size.
	const thumbViews, bigViews = 6, 2

	fmt.Println("Mobile session bandwidth accounting (6 photos, Facebook-like PSP)")
	fmt.Printf("%-4s  %12s  %12s  %12s  %10s\n", "T", "upload KB", "browse KB", "total KB", "vs no-P3")

	render := func(jpegBytes []byte, maxW, maxH int) int {
		out, err := pipeline.Render(jpegBytes, nil, maxW, maxH)
		if err != nil {
			log.Fatal(err)
		}
		return len(out)
	}
	encode := func(im *jpegx.CoeffImage) []byte {
		var buf bytes.Buffer
		if err := jpegx.EncodeCoeffs(&buf, im, &jpegx.EncodeOptions{OptimizeHuffman: true}); err != nil {
			log.Fatal(err)
		}
		return buf.Bytes()
	}

	// Baseline: no P3.
	var baseUp, baseBrowse float64
	type variants struct{ thumb, big int }
	var baseVariants []variants
	for _, img := range photos {
		im, err := img.ToCoeffs(92, jpegx.Sub420)
		if err != nil {
			log.Fatal(err)
		}
		orig := encode(im)
		baseUp += float64(len(orig))
		v := variants{thumb: render(orig, 75, 75), big: render(orig, 720, 720)}
		baseVariants = append(baseVariants, v)
	}
	for i := 0; i < thumbViews; i++ {
		baseBrowse += float64(baseVariants[i%len(baseVariants)].thumb)
	}
	for i := 0; i < bigViews; i++ {
		baseBrowse += float64(baseVariants[i%len(baseVariants)].big)
	}
	baseTotal := baseUp + baseBrowse
	fmt.Printf("%-4s  %12.1f  %12.1f  %12.1f  %10s\n", "none",
		baseUp/1024, baseBrowse/1024, baseTotal/1024, "—")

	key, err := p3.NewKey()
	if err != nil {
		log.Fatal(err)
	}
	for _, threshold := range []int{1, 5, 10, 15, 20} {
		codec, err := p3.New(key, p3.WithThreshold(threshold))
		if err != nil {
			log.Fatal(err)
		}
		var up, browse float64
		for pi, img := range photos {
			im, err := img.ToCoeffs(92, jpegx.Sub420)
			if err != nil {
				log.Fatal(err)
			}
			orig := encode(im)
			split, err := codec.SplitBytes(orig)
			if err != nil {
				log.Fatal(err)
			}
			// Upload: public part to the PSP + sealed secret to the store.
			up += float64(len(split.PublicJPEG) + len(split.SecretBlob))
			// Browsing: resized public part per view + ONE secret fetch per
			// photo (the proxy caches it across views, §4.1).
			pubThumb := render(split.PublicJPEG, 75, 75)
			pubBig := render(split.PublicJPEG, 720, 720)
			views := 0
			for i := 0; i < thumbViews; i++ {
				if i%len(photos) == pi {
					browse += float64(pubThumb)
					views++
				}
			}
			for i := 0; i < bigViews; i++ {
				if i%len(photos) == pi {
					browse += float64(pubBig)
					views++
				}
			}
			if views > 0 {
				browse += float64(len(split.SecretBlob))
			}
		}
		total := up + browse
		fmt.Printf("%-4d  %12.1f  %12.1f  %12.1f  %9.1f%%\n", threshold,
			up/1024, browse/1024, total/1024, 100*(total/baseTotal-1))
	}
	fmt.Println()
	fmt.Println("The browse overhead is dominated by the mandatory full secret-part")
	fmt.Println("download; higher T shrinks it (Fig. 10) at the price of privacy.")
}
