// Photoshare: the paper's full system (Fig. 3) on localhost — a
// Facebook-like PSP, a Dropbox-like blob store, and sender/recipient
// proxies. The sender's app uploads through its proxy; the recipient's app
// downloads a resized variant through its own proxy, which reverse-
// engineered the PSP pipeline by calibration and reconstructs per Eq. (2).
//
//	go run ./examples/photoshare
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"

	"p3"
	"p3/internal/dataset"
	"p3/internal/imaging"
	"p3/internal/jpegx"
	"p3/internal/proxy"
	"p3/internal/psp"
	"p3/internal/vision"
)

func main() {
	ctx := context.Background()

	// Infrastructure: an untrusted PSP with a hidden pipeline, and an
	// untrusted blob store.
	pspServer := psp.NewServer(psp.FacebookLike())
	pspSrv := httptest.NewServer(pspServer)
	defer pspSrv.Close()
	storeSrv := httptest.NewServer(psp.NewBlobStore())
	defer storeSrv.Close()
	fmt.Printf("PSP (Facebook-like, hidden pipeline) at %s\n", pspSrv.URL)
	fmt.Printf("blob store at %s\n", storeSrv.URL)

	// Alice and Bob share a key out of band; each runs a local proxy built
	// over the public backend interfaces.
	key, err := p3.NewKey()
	if err != nil {
		log.Fatal(err)
	}
	newProxy := func() *proxy.Proxy {
		codec, err := p3.New(key)
		if err != nil {
			log.Fatal(err)
		}
		return proxy.New(codec,
			p3.NewHTTPPhotoService(pspSrv.URL),
			p3.NewHTTPSecretStore(storeSrv.URL))
	}
	alice, bob := newProxy(), newProxy()

	// Bob's proxy calibrates once: upload a probe, download the PSP's
	// version, sweep the candidate-pipeline grid (§4.1).
	res, err := bob.Calibrate(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Bob's proxy calibrated the PSP pipeline: %s (match %.1f dB)\n", res.Op, res.PSNR)

	// Alice photographs and uploads through her proxy.
	photo := dataset.Natural(99, 640, 480)
	coeffs, err := photo.ToCoeffs(92, jpegx.Sub420)
	if err != nil {
		log.Fatal(err)
	}
	var jpegBuf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&jpegBuf, coeffs, nil); err != nil {
		log.Fatal(err)
	}
	id, err := alice.Upload(ctx, jpegBuf.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Alice uploaded photo %s (%d bytes original)\n", id, jpegBuf.Len())

	// What the PSP (or a fusker) sees: the public part of the big variant.
	raw, err := http.Get(pspSrv.URL + "/photo/" + id + "?size=big")
	if err != nil {
		log.Fatal(err)
	}
	pubBytes := make([]byte, 0)
	buf := make([]byte, 32<<10)
	for {
		n, err := raw.Body.Read(buf)
		pubBytes = append(pubBytes, buf[:n]...)
		if err != nil {
			break
		}
	}
	raw.Body.Close()
	pubIm, err := jpegx.Decode(bytes.NewReader(pubBytes))
	if err != nil {
		log.Fatal(err)
	}

	// Bob's app asks his proxy for the same variant; the proxy fetches both
	// parts and reconstructs.
	rec, err := bob.DownloadPixels(ctx, id, url.Values{"size": {"big"}})
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth for comparison: the PSP's pipeline applied to the
	// original photo (what a non-P3 user would have seen).
	want := imaging.Clamp(pspServer.Pipeline.Op(rec.Width, rec.Height).Apply(coeffs.ToPlanar()))
	pubPSNR, _ := vision.PSNR(want, pubIm.ToPlanar())
	recPSNR, _ := vision.PSNR(want, rec)
	fmt.Printf("big variant %dx%d:\n", rec.Width, rec.Height)
	fmt.Printf("  what the PSP sees (public part): %5.1f dB\n", pubPSNR)
	fmt.Printf("  what Bob sees (reconstructed):   %5.1f dB\n", recPSNR)

	// Thumbnail then big: the secret part is fetched once (proxy cache).
	if _, err := bob.DownloadPixels(ctx, id, url.Values{"size": {"thumb"}}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("thumbnail + big downloads reuse one cached secret part")
}
