// Photoshare: the paper's full system (Fig. 3) on localhost — a
// Facebook-like PSP, a sharded Dropbox-like blob store, and
// sender/recipient proxies. The sender's app uploads through its proxy;
// the recipient's app downloads a resized variant through its own proxy,
// which reverse-engineered the PSP pipeline by calibration and
// reconstructs per Eq. (2).
//
// Secret parts are spread over three local disk shards with 2-way
// replication (consistent hashing + read-repair), and each proxy serves
// repeat views from its bounded LRU caches — the same serving layer
// `p3proxy -store disk:a,disk:b,disk:c -replicas 2` runs in production.
//
//	go run ./examples/photoshare
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"

	"p3"
	"p3/internal/dataset"
	"p3/internal/imaging"
	"p3/internal/jpegx"
	"p3/internal/metrics"
	"p3/internal/proxy"
	"p3/internal/psp"
	"p3/internal/vision"
)

func main() {
	ctx := context.Background()

	// Infrastructure: an untrusted PSP with a hidden pipeline, and an
	// untrusted blob store — here three disk shards with 2-way replication.
	pspServer := psp.NewServer(psp.FacebookLike())
	pspSrv := httptest.NewServer(pspServer)
	defer pspSrv.Close()
	fmt.Printf("PSP (Facebook-like, hidden pipeline) at %s\n", pspSrv.URL)

	shardRoot, err := os.MkdirTemp("", "photoshare-shards-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(shardRoot)
	var shards []p3.SecretStore
	for i := 0; i < 3; i++ {
		s, err := p3.NewDiskSecretStore(filepath.Join(shardRoot, fmt.Sprintf("shard%d", i)))
		if err != nil {
			log.Fatal(err)
		}
		shards = append(shards, s)
	}
	store, err := p3.NewShardedSecretStore(shards, p3.WithShardReplicas(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blob store: %d disk shards under %s, %d replicas per secret part\n",
		store.Shards(), shardRoot, store.Replicas())

	// Alice and Bob share a key out of band; each runs a local proxy built
	// over the public backend interfaces.
	key, err := p3.NewKey()
	if err != nil {
		log.Fatal(err)
	}
	newProxy := func(name string) *proxy.Proxy {
		codec, err := p3.New(key)
		if err != nil {
			log.Fatal(err)
		}
		return proxy.New(codec,
			p3.NewHTTPPhotoService(pspSrv.URL),
			store,
			// Both proxies share the default metrics registry; distinct
			// instance names keep their series apart in the snapshot below.
			proxy.WithMetricsName(name),
			proxy.WithSecretCacheBytes(16<<20),
			proxy.WithVariantCacheBytes(16<<20))
	}
	alice, bob := newProxy("alice"), newProxy("bob")

	// Bob's proxy calibrates once: upload a probe, download the PSP's
	// version, sweep the candidate-pipeline grid (§4.1).
	res, err := bob.Calibrate(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Bob's proxy calibrated the PSP pipeline: %s (match %.1f dB)\n", res.Op, res.PSNR)

	// Alice photographs and uploads through her proxy.
	photo := dataset.Natural(99, 640, 480)
	coeffs, err := photo.ToCoeffs(92, jpegx.Sub420)
	if err != nil {
		log.Fatal(err)
	}
	var jpegBuf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&jpegBuf, coeffs, nil); err != nil {
		log.Fatal(err)
	}
	id, err := alice.Upload(ctx, jpegBuf.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Alice uploaded photo %s (%d bytes original)\n", id, jpegBuf.Len())

	// What the PSP (or a fusker) sees: the public part of the big variant.
	raw, err := http.Get(pspSrv.URL + "/photo/" + id + "?size=big")
	if err != nil {
		log.Fatal(err)
	}
	pubBytes := make([]byte, 0)
	buf := make([]byte, 32<<10)
	for {
		n, err := raw.Body.Read(buf)
		pubBytes = append(pubBytes, buf[:n]...)
		if err != nil {
			break
		}
	}
	raw.Body.Close()
	pubIm, err := jpegx.Decode(bytes.NewReader(pubBytes))
	if err != nil {
		log.Fatal(err)
	}

	// Bob's app asks his proxy for the same variant; the proxy fetches both
	// parts and reconstructs.
	rec, err := bob.DownloadPixels(ctx, id, url.Values{"size": {"big"}})
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth for comparison: the PSP's pipeline applied to the
	// original photo (what a non-P3 user would have seen).
	want := imaging.Clamp(pspServer.Pipeline.Op(rec.Width, rec.Height).Apply(coeffs.ToPlanar()))
	pubPSNR, _ := vision.PSNR(want, pubIm.ToPlanar())
	recPSNR, _ := vision.PSNR(want, rec)
	fmt.Printf("big variant %dx%d:\n", rec.Width, rec.Height)
	fmt.Printf("  what the PSP sees (public part): %5.1f dB\n", pubPSNR)
	fmt.Printf("  what Bob sees (reconstructed):   %5.1f dB\n", recPSNR)

	// Thumbnail then big: the secret part is fetched once (proxy cache),
	// and a repeat of the big variant is served entirely from the bounded
	// variant cache — zero backend traffic.
	if _, err := bob.DownloadPixels(ctx, id, url.Values{"size": {"thumb"}}); err != nil {
		log.Fatal(err)
	}
	if _, err := bob.Download(ctx, id, url.Values{"size": {"big"}}); err != nil {
		log.Fatal(err)
	}
	if _, err := bob.Download(ctx, id, url.Values{"size": {"big"}}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("thumbnail + big downloads reuse one cached secret part")
	st := bob.Stats()
	fmt.Printf("Bob's serving caches: secrets %d hit/%d miss (%d bytes), variants %d hit/%d miss (%d bytes)\n",
		st.Secrets.Hits, st.Secrets.Misses, st.Secrets.Bytes,
		st.Variants.Hits, st.Variants.Misses, st.Variants.Bytes)

	// Shard distribution: each replica pair landed on two of the three
	// disk shards.
	for i, s := range shards {
		n, err := s.(*p3.DiskSecretStore).Len()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  shard %d holds %d sealed blobs\n", i, n)
	}

	// On exit, dump the process's metrics snapshot — the same Prometheus
	// text exposition `p3proxy` serves on GET /metrics, covering both
	// proxies' operations and caches, the codec's split/join timings, and
	// the per-shard counters (naming scheme in ARCHITECTURE.md).
	fmt.Println("\nmetrics snapshot (as served on GET /metrics):")
	var expo bytes.Buffer
	if err := metrics.Default.WritePrometheus(&expo); err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(expo.String(), "\n"), "\n") {
		// Skip the help/type chatter and empty series so the interesting
		// counters stay readable in a terminal.
		if strings.HasPrefix(line, "#") || strings.HasSuffix(line, " 0") {
			continue
		}
		fmt.Println("  " + line)
	}
}
