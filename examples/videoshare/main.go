// Videoshare: the §4.2 video extension end to end on localhost. A short
// Motion-JPEG clip (the P3MJ container) is split frame-parallel by the
// sender's proxy — public stream and ONE sealed secret container onto
// three local disk shards with 2-way replication — then watched back two
// ways: a whole-clip join, and the frame seeks a scrubbing player issues
// (`GET /video/{id}?frame=N`), which are served from the proxy's bounded
// variant cache after the first hit.
//
//	go run ./examples/videoshare
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"time"

	"p3"
	"p3/internal/dataset"
	"p3/internal/jpegx"
	"p3/internal/proxy"
	"p3/internal/psp"
	"p3/internal/vision"
)

// renderClip synthesizes a "panning camera" clip: one scene, shifted a
// little per frame, each frame an independently coded JPEG.
func renderClip(frames, w, h int) ([]byte, error) {
	big := dataset.Natural(77, w+frames*4, h)
	jpegs := make([][]byte, frames)
	for f := range jpegs {
		crop := jpegx.NewPlanarImage(w, h, 3)
		for pi := 0; pi < 3; pi++ {
			for y := 0; y < h; y++ {
				copy(crop.Planes[pi][y*w:y*w+w], big.Planes[pi][y*big.Width+f*4:y*big.Width+f*4+w])
			}
		}
		coeffs, err := crop.ToCoeffs(90, jpegx.Sub420)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := jpegx.EncodeCoeffs(&buf, coeffs, nil); err != nil {
			return nil, err
		}
		jpegs[f] = buf.Bytes()
	}
	return p3.PackMJPEG(jpegs)
}

func main() {
	ctx := context.Background()

	// Infrastructure: the same untrusted stack photoshare runs — a PSP
	// (unused by the video path, which never touches it) and three disk
	// shards with 2-way replication holding both clip parts.
	pspSrv := httptest.NewServer(psp.NewServer(psp.FacebookLike()))
	defer pspSrv.Close()
	shardRoot, err := os.MkdirTemp("", "videoshare-shards-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(shardRoot)
	shards := make([]p3.SecretStore, 3)
	for i := range shards {
		if shards[i], err = p3.NewDiskSecretStore(filepath.Join(shardRoot, fmt.Sprintf("shard%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	store, err := p3.NewShardedSecretStore(shards, p3.WithShardReplicas(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blob store: 3 disk shards under %s (2 replicas)\n", shardRoot)

	key, err := p3.NewKey()
	if err != nil {
		log.Fatal(err)
	}
	codec, err := p3.New(key)
	if err != nil {
		log.Fatal(err)
	}
	px := proxy.New(codec, p3.NewHTTPPhotoService(pspSrv.URL), store)

	// The sender records and uploads a clip through the proxy.
	clip, err := renderClip(12, 192, 144)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	id, frames, err := px.UploadVideo(ctx, clip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded %d-frame clip (%d B) as %s in %v (frame-parallel split)\n",
		frames, len(clip), id, time.Since(start).Round(time.Millisecond))

	// What the shards hold is useless without the key: the public stream's
	// frames are degraded JPEGs, the secret container is sealed.
	pubFrames, _ := p3.UnpackMJPEG(mustGet(ctx, store, id+".pub"))
	origFrames, _ := p3.UnpackMJPEG(clip)
	oim, _ := jpegx.Decode(bytes.NewReader(origFrames[0]))
	pim, _ := jpegx.Decode(bytes.NewReader(pubFrames[0]))
	if psnr, err := vision.PSNR(oim.ToPlanar(), pim.ToPlanar()); err == nil {
		fmt.Printf("public frame 0 PSNR vs original: %.1f dB (degraded; <25 dB is 'practically useless')\n", psnr)
	}

	// The recipient scrubs: seeks a few frames, then watches the whole
	// clip. Repeat seeks are variant-cache hits.
	for _, f := range []int{0, 5, 11, 5} {
		start := time.Now()
		jpeg, err := px.DownloadVideo(ctx, id, url.Values{"frame": {fmt.Sprint(f)}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("seek frame %2d: %5d B in %v\n", f, len(jpeg), time.Since(start).Round(time.Microsecond))
	}
	start = time.Now()
	joined, err := px.DownloadVideo(ctx, id, url.Values{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("whole-clip join: %d B in %v\n", len(joined), time.Since(start).Round(time.Millisecond))

	// The join is exact: every reconstructed frame decodes to the
	// original's coefficients.
	joinedFrames, _ := p3.UnpackMJPEG(joined)
	exact := true
	for i := range joinedFrames {
		jim, _ := jpegx.Decode(bytes.NewReader(joinedFrames[i]))
		oim, _ := jpegx.Decode(bytes.NewReader(origFrames[i]))
		for ci := range oim.Components {
			for bi := range oim.Components[ci].Blocks {
				if jim.Components[ci].Blocks[bi] != oim.Components[ci].Blocks[bi] {
					exact = false
				}
			}
		}
	}
	fmt.Printf("reconstruction coefficient-exact across %d frames: %v\n", len(joinedFrames), exact)

	st := px.Stats()
	fmt.Printf("serving stats: %d video downloads (p50 %.2f ms), variants %d hits / %d misses\n",
		st.VideoDownload.Count, st.VideoDownload.P50Ms, st.Variants.Hits, st.Variants.Misses)
}

// mustGet fetches one blob or dies.
func mustGet(ctx context.Context, store p3.SecretStore, name string) []byte {
	b, err := store.GetSecret(ctx, name)
	if err != nil {
		log.Fatal(err)
	}
	return b
}
