package p3

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"p3/internal/core"
	"p3/internal/imaging"
	"p3/internal/jpegx"
	"p3/internal/work"
)

// ErrAuth reports a secret container that failed authentication: wrong key,
// truncation, or tampering by the storage provider or an eavesdropper.
// Returned (possibly wrapped) by the Join methods; test with errors.Is.
var ErrAuth = core.ErrAuth

// SplitResult carries the two parts of a split photo.
type SplitResult struct {
	// PublicJPEG is the standards-compliant public part, safe to upload to
	// an untrusted PSP.
	PublicJPEG []byte

	// SecretBlob is the encrypted secret container for the storage
	// provider (also untrusted; the blob is AES-encrypted and MACed).
	SecretBlob []byte

	// Threshold echoes the T used.
	Threshold int

	// SecretJPEGLen is the size of the secret part before encryption,
	// used by the storage-overhead accounting of Fig. 5.
	SecretJPEGLen int
}

// Codec is a reusable P3 split/reconstruct engine bound to one key and one
// operating point. It is safe for concurrent use, and a long-lived Codec
// recycles its decode/encode scratch buffers across photos, allocating far
// less per call than the package-level convenience functions.
//
//	codec, err := p3.New(key, p3.WithThreshold(20))
//	split, err := codec.SplitBytes(jpegBytes)
//	orig, err := codec.JoinBytes(split.PublicJPEG, split.SecretBlob)
type Codec struct {
	key     core.Key
	cfg     config
	pool    *work.Pool
	scratch sync.Pool // *scratch
}

// scratch holds the per-call working set a Codec recycles: the streaming
// read buffers, the core split and join scratches (decoder state,
// coefficient images, encode buffers), and the decode state of the
// processed-join path.
type scratch struct {
	in    bytes.Buffer // Split input
	pub   bytes.Buffer // Join/JoinProcessed public-part input
	sec   bytes.Buffer // Join/JoinProcessed secret-part input
	split core.SplitScratch
	join  core.JoinScratch

	// JoinProcessed decode state: the two parts decode into reusable images
	// through reusable decoder scratches (the pixel planes derived from them
	// escape to the caller and are allocated fresh).
	pubIm, secIm   *jpegx.CoeffImage
	pubDec, secDec jpegx.DecoderScratch
	pubRd, secRd   bytes.Reader
}

// New builds a Codec for key. With no options it uses the paper's
// recommended operating point (T = DefaultThreshold, optimized entropy
// coding) and fans each call's work out over runtime.GOMAXPROCS(0) cores
// (see WithParallelism).
func New(key Key, opts ...Option) (*Codec, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	c := &Codec{key: core.Key(key), cfg: cfg, pool: work.New(cfg.parallelism)}
	c.scratch.New = func() any { return new(scratch) }
	return c, nil
}

// Key returns the key the Codec was built with.
func (c *Codec) Key() Key { return Key(c.key) }

// Threshold returns the splitting threshold the Codec uses.
func (c *Codec) Threshold() int { return c.cfg.threshold }

// Parallelism returns the worker bound the Codec runs its band pipeline at.
func (c *Codec) Parallelism() int { return c.cfg.parallelism }

func (c *Codec) coreOptions() *core.Options {
	return &core.Options{Threshold: c.cfg.threshold, OptimizeHuffman: c.cfg.optimizeHuffman, Workers: c.pool}
}

func (c *Codec) getScratch() *scratch  { return c.scratch.Get().(*scratch) }
func (c *Codec) putScratch(s *scratch) { c.scratch.Put(s) }

// Split reads a JPEG from r and divides it into a public part (safe to
// upload to an untrusted photo-sharing provider) and a sealed secret part
// (for any untrusted blob store).
func (c *Codec) Split(ctx context.Context, r io.Reader) (*SplitResult, error) {
	s := c.getScratch()
	defer c.putScratch(s)
	s.in.Reset()
	if _, err := s.in.ReadFrom(r); err != nil {
		return nil, fmt.Errorf("p3: reading input: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.splitBytes(s.in.Bytes(), s)
}

// SplitBytes is Split for an in-memory JPEG.
func (c *Codec) SplitBytes(jpegBytes []byte) (*SplitResult, error) {
	s := c.getScratch()
	defer c.putScratch(s)
	return c.splitBytes(jpegBytes, s)
}

func (c *Codec) splitBytes(jpegBytes []byte, s *scratch) (*SplitResult, error) {
	defer observeSince(splitSeconds, time.Now())
	out, err := core.SplitJPEGScratch(jpegBytes, c.key, c.coreOptions(), &s.split)
	if err != nil {
		return nil, err
	}
	return &SplitResult{
		PublicJPEG:    out.PublicJPEG,
		SecretBlob:    out.SecretBlob,
		Threshold:     out.Threshold,
		SecretJPEGLen: out.SecretJPEGLen,
	}, nil
}

// SplitBatch splits many JPEGs in one call, fanning the photos out over the
// Codec's worker pool; each photo's own two-part encode then runs within the
// same global bound, so a batch saturates the configured parallelism without
// oversubscribing it. Results align with the inputs. On error the batch
// still attempts every photo (so a caller can salvage the successes from the
// returned slice); the error reported is the lowest-index failure, and
// failed entries are nil.
func (c *Codec) SplitBatch(jpegs [][]byte) ([]*SplitResult, error) {
	out := make([]*SplitResult, len(jpegs))
	err := c.pool.Do(len(jpegs), func(i int) error {
		s := c.getScratch()
		defer c.putScratch(s)
		r, err := c.splitBytes(jpegs[i], s)
		if err != nil {
			return fmt.Errorf("p3: photo %d: %w", i, err)
		}
		out[i] = r
		return nil
	})
	return out, err
}

// Join reads an *unprocessed* public part and the sealed secret part and
// writes the reconstructed JPEG to w. The output decodes to pixels identical
// to the original image.
func (c *Codec) Join(ctx context.Context, public, secret io.Reader, w io.Writer) error {
	s := c.getScratch()
	defer c.putScratch(s)
	s.pub.Reset()
	if _, err := s.pub.ReadFrom(public); err != nil {
		return fmt.Errorf("p3: reading public part: %w", err)
	}
	s.sec.Reset()
	if _, err := s.sec.ReadFrom(secret); err != nil {
		return fmt.Errorf("p3: reading secret part: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	defer observeSince(joinSeconds, time.Now())
	return core.JoinJPEGToScratch(w, s.pub.Bytes(), s.sec.Bytes(), c.key, c.coreOptions(), &s.join)
}

// JoinBytes is Join for in-memory parts, returning the reconstructed JPEG.
func (c *Codec) JoinBytes(publicJPEG, secretBlob []byte) ([]byte, error) {
	s := c.getScratch()
	defer c.putScratch(s)
	defer observeSince(joinSeconds, time.Now())
	var out bytes.Buffer
	if err := core.JoinJPEGToScratch(&out, publicJPEG, secretBlob, c.key, c.coreOptions(), &s.join); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// JoinProcessed reconstructs pixels when the provider applied the transform
// t (resize, crop, filter, gamma, or a composition) to the public part. The
// transform must be linear, or linear followed by a single trailing
// invertible pointwise remap such as Gamma (the paper's §3.3 extension).
func (c *Codec) JoinProcessed(ctx context.Context, public, secret io.Reader, t Transform) (*Image, error) {
	s := c.getScratch()
	defer c.putScratch(s)
	s.pub.Reset()
	if _, err := s.pub.ReadFrom(public); err != nil {
		return nil, fmt.Errorf("p3: reading public part: %w", err)
	}
	s.sec.Reset()
	if _, err := s.sec.ReadFrom(secret); err != nil {
		return nil, fmt.Errorf("p3: reading secret part: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.joinProcessed(s.pub.Bytes(), s.sec.Bytes(), t, s)
}

// JoinProcessedBytes is JoinProcessed for in-memory parts.
func (c *Codec) JoinProcessedBytes(publicJPEG, secretBlob []byte, t Transform) (*Image, error) {
	s := c.getScratch()
	defer c.putScratch(s)
	return c.joinProcessed(publicJPEG, secretBlob, t, s)
}

// JoinProcessedMulti reconstructs several served renditions of one photo —
// the shape of a feed prefetch (thumbnail + small + full) — decoding the
// sealed secret part ONCE and deriving its reconstruction planes once,
// instead of paying the secret decode + IDCT per rendition as repeated
// JoinProcessed calls would. publicJPEGs[i] is the rendition served after
// the provider applied ts[i]; results align with the inputs. Every
// transform must be linear (resize/crop/blur/sharpen compositions); for a
// trailing gamma use JoinProcessed per rendition.
func (c *Codec) JoinProcessedMulti(publicJPEGs [][]byte, secretBlob []byte, ts []Transform) ([]*Image, error) {
	defer observeSince(joinProcessedSeconds, time.Now())
	if len(publicJPEGs) != len(ts) {
		return nil, fmt.Errorf("p3: %d public renditions but %d transforms", len(publicJPEGs), len(ts))
	}
	threshold, secJPEG, err := core.OpenSecret(c.key, secretBlob)
	if err != nil {
		return nil, err
	}
	if len(publicJPEGs) == 0 {
		return nil, nil
	}
	ops := make([]imaging.Op, len(ts))
	for i, t := range ts {
		op := t.op()
		if !op.Linear() {
			return nil, fmt.Errorf("p3: transform %s is not linear; use JoinProcessed for remapped renditions", t)
		}
		ops[i] = op
	}
	// The secret part and every public rendition decode concurrently; the
	// decoded images escape into the reconstruction, so none use the pooled
	// scratch.
	var sec *jpegx.CoeffImage
	publics := make([]*jpegx.PlanarImage, len(publicJPEGs))
	err = c.pool.Do(len(publicJPEGs)+1, func(i int) error {
		if i == 0 {
			im, err := jpegx.DecodeBytes(secJPEG)
			if err != nil {
				return fmt.Errorf("p3: decoding secret part: %w", err)
			}
			sec = im
			return nil
		}
		im, err := jpegx.DecodeBytes(publicJPEGs[i-1])
		if err != nil {
			return fmt.Errorf("p3: decoding rendition %d: %w", i-1, err)
		}
		publics[i-1] = im.ToPlanarPool(nil)
		return nil
	})
	if err != nil {
		return nil, err
	}
	pixes, err := core.ReconstructPixelsMulti(publics, sec, threshold, ops, c.pool)
	if err != nil {
		return nil, err
	}
	out := make([]*Image, len(pixes))
	for i, pix := range pixes {
		out[i] = &Image{pix: pix}
	}
	return out, nil
}

func (c *Codec) joinProcessed(publicJPEG, secretBlob []byte, t Transform, s *scratch) (*Image, error) {
	defer observeSince(joinProcessedSeconds, time.Now())
	threshold, secJPEG, err := core.OpenSecret(c.key, secretBlob)
	if err != nil {
		return nil, err
	}
	// The two parts decode concurrently, each through its own pooled
	// decoder scratch.
	err = c.pool.Do(2, func(i int) error {
		if i == 0 {
			s.pubRd.Reset(publicJPEG)
			im, err := jpegx.DecodeInto(&s.pubRd, s.pubIm, &s.pubDec)
			if err != nil {
				return fmt.Errorf("p3: decoding public part: %w", err)
			}
			s.pubIm = im
			return nil
		}
		s.secRd.Reset(secJPEG)
		im, err := jpegx.DecodeInto(&s.secRd, s.secIm, &s.secDec)
		if err != nil {
			return fmt.Errorf("p3: decoding secret part: %w", err)
		}
		s.secIm = im
		return nil
	})
	// Release the caller's public part and the decrypted secret plaintext;
	// the pooled scratch must not keep either reachable between calls.
	s.pubRd.Reset(nil)
	s.secRd.Reset(nil)
	if err != nil {
		return nil, err
	}
	pubIm, sec := s.pubIm, s.secIm
	op := t.op()
	var pix *jpegx.PlanarImage
	if op.Linear() {
		pix, err = core.ReconstructPixelsPool(pubIm.ToPlanarPool(c.pool), sec, threshold, op, c.pool)
	} else if linear, remap, ok := t.splitRemap(); ok {
		pix, err = core.ReconstructRemappedPool(pubIm.ToPlanarPool(c.pool), sec, threshold, linear, remap, c.pool)
	} else {
		return nil, fmt.Errorf("p3: transform %s is neither linear nor linear-plus-invertible-remap", t)
	}
	if err != nil {
		return nil, err
	}
	return &Image{pix: pix}, nil
}
