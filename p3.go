// Package p3 is a from-scratch Go reproduction of "P3: Toward
// Privacy-Preserving Photo Sharing" (Ra, Govindan, Ortega — NSDI 2013).
//
// P3 splits a JPEG photo, in the quantized-DCT-coefficient domain, into a
// standards-compliant public part that a photo-sharing provider can store
// and resize as usual, and a small encrypted secret part holding the DC
// coefficients plus the signs and excess magnitudes of every AC coefficient
// above a threshold T. Recipients recombine the parts exactly — even after
// the provider has resized, cropped or filtered the public part — using the
// linearity of the transforms (paper Eq. (1) and (2)).
//
// This package is the stable facade over the implementation:
//
//	key, _ := p3.NewKey()
//	split, _ := p3.Split(jpegBytes, key, nil)      // public JPEG + sealed secret
//	orig, _  := p3.Join(split.PublicJPEG, split.SecretBlob, key)
//
// The subsystems live in internal packages: internal/jpegx (a baseline +
// progressive JPEG codec with coefficient access), internal/core (the
// splitting/reconstruction algorithm), internal/imaging (linear PSP
// transforms), internal/psp and internal/proxy (the simulated provider and
// the client-side interposition proxy), internal/vision (the privacy attack
// suite: Canny, Viola-Jones, SIFT, Eigenfaces), and internal/dataset
// (synthetic evaluation corpora). See DESIGN.md for the full inventory and
// EXPERIMENTS.md for the paper-versus-measured results.
package p3

import (
	"p3/internal/core"
	"p3/internal/imaging"
	"p3/internal/jpegx"
)

// Key is the symmetric key shared out of band between a sender and the
// authorized recipients.
type Key = core.Key

// NewKey generates a random 256-bit key.
func NewKey() (Key, error) { return core.NewKey() }

// Options configures splitting. The zero value (or nil) selects the
// paper's recommended operating point (T = 15, optimized entropy coding).
type Options = core.Options

// DefaultThreshold is the paper's recommended threshold (§5.2.1: the knee
// of the size/privacy trade-off lies at T in 15-20).
const DefaultThreshold = core.DefaultThreshold

// SplitResult carries the two parts of a split photo.
type SplitResult = core.SplitOutput

// Split divides a JPEG into a public part (safe to upload to an untrusted
// photo-sharing provider) and a sealed secret part (for any untrusted blob
// store). See core.SplitJPEG.
func Split(jpegBytes []byte, key Key, opts *Options) (*SplitResult, error) {
	return core.SplitJPEG(jpegBytes, key, opts)
}

// Join reconstructs the original JPEG from an unprocessed public part and
// the sealed secret part. The result decodes to pixels identical to the
// original image.
func Join(publicJPEG, secretBlob []byte, key Key) ([]byte, error) {
	return core.JoinJPEG(publicJPEG, secretBlob, key)
}

// JoinProcessed reconstructs pixels when the provider applied the linear
// transform op (resize, crop, filter, or a composition) to the public part.
func JoinProcessed(publicJPEG, secretBlob []byte, key Key, op imaging.Op) (*jpegx.PlanarImage, error) {
	return core.JoinProcessed(publicJPEG, secretBlob, key, op)
}
