// Package p3 is a from-scratch Go reproduction of "P3: Toward
// Privacy-Preserving Photo Sharing" (Ra, Govindan, Ortega — NSDI 2013).
//
// P3 splits a JPEG photo, in the quantized-DCT-coefficient domain, into a
// standards-compliant public part that a photo-sharing provider can store
// and resize as usual, and a small encrypted secret part holding the DC
// coefficients plus the signs and excess magnitudes of every AC coefficient
// above a threshold T. Recipients recombine the parts exactly — even after
// the provider has resized, cropped or filtered the public part — using the
// linearity of the transforms (paper Eq. (1) and (2)).
//
// The package is a reusable library built around a Codec:
//
//	key, _ := p3.NewKey()
//	codec, _ := p3.New(key, p3.WithThreshold(20))
//	split, _ := codec.SplitBytes(jpegBytes)                 // public JPEG + sealed secret
//	orig, _ := codec.JoinBytes(split.PublicJPEG, split.SecretBlob)
//
// Codec methods also come in streaming form (Split, Join, JoinProcessed
// taking io.Reader/io.Writer and a context). When the provider transformed
// the public part, describe what it did with a Transform and reconstruct
// pixels:
//
//	t := p3.Resize(130, 98, p3.FilterLanczos).Then(p3.Sharpen(1, 0.5))
//	img, _ := codec.JoinProcessedBytes(servedJPEG, split.SecretBlob, t)
//
// The PhotoService and SecretStore interfaces abstract the two untrusted
// backends (the photo-sharing provider and the blob store); HTTP
// implementations speaking the PSP wire API are bundled, and in-memory or
// custom backends drop in. internal/proxy composes them into the paper's
// client-side trusted proxy.
//
// Video (the paper's §4.2 extension) is supported end to end on a
// Motion-JPEG substrate: PackMJPEG builds a P3MJ clip from JPEG frames,
// SplitVideo splits every frame concurrently into a public clip plus ONE
// sealed secret container, JoinVideo reverses it exactly, and
// JoinVideoFrame seeks a single frame — the shape the proxy serves as
// GET /video/{id}?frame=N.
//
// The subsystems live in internal packages: internal/jpegx (a baseline +
// progressive JPEG codec with coefficient access), internal/core (the
// splitting/reconstruction algorithm), internal/video (the P3MJ container
// and the frame-parallel clip split/join), internal/imaging (linear PSP
// transforms), internal/psp and internal/proxy (the simulated provider and
// the client-side interposition proxy), internal/cache (the proxy's
// bounded coalescing serving caches), internal/metrics (the observability
// layer behind the proxy's /metrics endpoint), internal/vision (the
// privacy attack suite: Canny, Viola-Jones, SIFT, Eigenfaces), and
// internal/dataset (synthetic evaluation corpora). ARCHITECTURE.md maps
// how the layers compose and names the metric series; see DESIGN.md for
// the full inventory and EXPERIMENTS.md for how to regenerate the
// paper-versus-measured results (including cmd/p3load serving scenarios).
package p3

import "p3/internal/core"

// Options configures the deprecated package-level Split. A Threshold of 0
// selects DefaultThreshold — the zero-vs-unset ambiguity that WithThreshold
// eliminates.
//
// Deprecated: build a Codec with New and functional options instead.
type Options struct {
	Threshold       int
	OptimizeHuffman bool
}

// Split divides a JPEG into a public part and a sealed secret part. nil opts
// selects the paper's recommended operating point.
//
// Deprecated: use New and Codec.SplitBytes; a reused Codec also recycles
// scratch buffers across photos.
func Split(jpegBytes []byte, key Key, opts *Options) (*SplitResult, error) {
	var copts *core.Options
	if opts != nil {
		if opts.Threshold < 0 {
			return nil, &ThresholdError{Threshold: opts.Threshold}
		}
		copts = &core.Options{Threshold: opts.Threshold, OptimizeHuffman: opts.OptimizeHuffman}
	}
	out, err := core.SplitJPEG(jpegBytes, core.Key(key), copts)
	if err != nil {
		return nil, err
	}
	return &SplitResult{
		PublicJPEG:    out.PublicJPEG,
		SecretBlob:    out.SecretBlob,
		Threshold:     out.Threshold,
		SecretJPEGLen: out.SecretJPEGLen,
	}, nil
}

// Join reconstructs the original JPEG from an unprocessed public part and
// the sealed secret part.
//
// Deprecated: use New and Codec.JoinBytes (or the streaming Codec.Join).
func Join(publicJPEG, secretBlob []byte, key Key) ([]byte, error) {
	return core.JoinJPEG(publicJPEG, secretBlob, core.Key(key))
}

// JoinProcessed reconstructs pixels when the provider applied the transform
// t to the public part.
//
// Deprecated: use New and Codec.JoinProcessedBytes.
func JoinProcessed(publicJPEG, secretBlob []byte, key Key, t Transform) (*Image, error) {
	codec, err := New(key)
	if err != nil {
		return nil, err
	}
	return codec.JoinProcessedBytes(publicJPEG, secretBlob, t)
}
