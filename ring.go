package p3

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"
	"time"
)

// shardVnodes is how many points each shard contributes to the hash ring.
// More virtual nodes smooth the key distribution across shards; 64 keeps
// the per-shard load imbalance under a few percent for realistic N.
const shardVnodes = 64

// hashRing is a consistent-hash ring over shard indices, shared by the
// replicated (ShardedSecretStore) and erasure-coded (ErasureSecretStore)
// stores: each ID hashes to a point on the ring, and the blobs or shares it
// owns live on the next distinct shards clockwise from that point. Adding
// or removing a shard only remaps the keys adjacent to its ring points, not
// the whole keyspace — which is what makes planned rebalance proportional
// to the data moved, not the data stored.
type hashRing struct {
	points []ringPoint // sorted by hash
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// newHashRing builds the ring over shardCount shards.
func newHashRing(shardCount int) hashRing {
	r := hashRing{points: make([]ringPoint, 0, shardCount*shardVnodes), shards: shardCount}
	for i := 0; i < shardCount; i++ {
		for v := 0; v < shardVnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("shard/%d/vnode/%d", i, v)), shard: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// placements returns the `count` distinct shard indices responsible for id,
// in ring (preference) order.
func (r hashRing) placements(id string, count int) []int {
	h := hash64(id)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, count)
	seen := make(map[int]bool, count)
	for i := 0; len(out) < count && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the murmur3 finalizer. Raw FNV-1a barely avalanches its last few
// input bytes, so sequential PSP IDs ("p00000041", "p00000042", …) hash to
// one tiny arc of the ring and all land on one shard; the finalizer spreads
// them uniformly.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// --- Versioned on-shard records ---------------------------------------
//
// The multi-shard stores never write a caller's bytes to a child shard
// raw: every record is enveloped with a write epoch and a kind, so
// replicas that diverge during an outage can be reconciled
// deterministically — the newest record wins, and a deletion is itself a
// record (a tombstone) rather than an absence. Absence cannot be
// replicated; a tombstone can, which is what stops read-repair from
// resurrecting deleted blobs off a shard that was down during the delete.

// recordKind distinguishes the two on-shard record types.
type recordKind byte

const (
	recordBlob      recordKind = 'B'
	recordTombstone recordKind = 'T'
)

// recordMagic starts every enveloped record on a child shard.
const recordMagic = "p3r1"

// encodeRecord envelopes payload as magic | kind | epoch | payload.
func encodeRecord(kind recordKind, epoch uint64, payload []byte) []byte {
	buf := make([]byte, 0, len(recordMagic)+1+8+len(payload))
	buf = append(buf, recordMagic...)
	buf = append(buf, byte(kind))
	buf = binary.BigEndian.AppendUint64(buf, epoch)
	return append(buf, payload...)
}

// decodeRecord splits an on-shard record. Bytes without the envelope are
// treated as a legacy epoch-0 blob, so a store pointed at shards holding
// pre-envelope data still serves it (and upgrades it on the next write or
// repair).
//
// The migration is sniffed, not versioned: a pre-envelope blob that
// happens to begin with the 5-byte prefix "p3r1B" or "p3r1T" is misparsed
// (13 bytes shaved off, or reported deleted). Legacy blobs here are sealed
// ciphertext, so the odds are those of 5 random bytes matching — about
// 2^-39 per blob — which we accept in exchange for not rewriting every
// shard on upgrade. Erasure shares are immune: their checksum rejects any
// misframed payload.
func decodeRecord(b []byte) (kind recordKind, epoch uint64, payload []byte) {
	if len(b) >= len(recordMagic)+9 && string(b[:4]) == recordMagic &&
		(recordKind(b[4]) == recordBlob || recordKind(b[4]) == recordTombstone) {
		return recordKind(b[4]), binary.BigEndian.Uint64(b[5:13]), b[13:]
	}
	return recordBlob, 0, b
}

// supersedes reports whether a record (kind a, epoch ea) wins over (kind b,
// epoch eb). Higher epochs win; on an exact epoch tie the tombstone wins,
// because serving a deleted blob is the worse failure.
func supersedes(a recordKind, ea uint64, b recordKind, eb uint64) bool {
	if ea != eb {
		return ea > eb
	}
	return a == recordTombstone && b != recordTombstone
}

// epochSource issues strictly increasing write epochs, seeded from the wall
// clock so epochs stay comparable across process restarts sharing the same
// shards. Within a process it never repeats even if the clock steps back.
type epochSource struct {
	last atomic.Uint64
}

func (e *epochSource) next() uint64 {
	for {
		now := uint64(time.Now().UnixNano())
		last := e.last.Load()
		if now <= last {
			now = last + 1
		}
		if e.last.CompareAndSwap(last, now) {
			return now
		}
	}
}
