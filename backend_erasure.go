package p3

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"p3/internal/erasure"
)

// ErasureSecretStore stores each sealed secret as a Reed-Solomon coded
// stripe across its child shards: k data shares plus n-k parity shares,
// placed on n distinct ring shards, so any k surviving shares reconstruct
// the blob byte-identically. It is the RADON-shaped successor to plain
// N-way replication (ShardedSecretStore): the same loss tolerance as 3
// replicas at roughly n/k× storage (1.5× for the default 4-of-6 scheme)
// instead of 3×.
//
//   - Reads fan out to all n share locations concurrently and return as
//     soon as ANY k valid shares of one write epoch arrive — the healthy
//     path reassembles data shares with no field arithmetic, and a dead or
//     slow shard degrades the read into a reconstruction, never a failure.
//   - Writes encode and store all n shares concurrently and succeed once k
//     shares are durable; shares that miss a down shard are parked locally
//     (hinted handoff) and delivered when the shard revives.
//   - A background scrubber (see StartRepair/ScrubOnce) walks share
//     inventories, detects missing or bit-rotten shares by checksum, and
//     re-encodes them onto their home shards — proactive repair, so a dying
//     shard decays loudly and briefly instead of silently until read.
//   - Deletions write epoch-versioned tombstones over the share slots
//     (shared machinery with ShardedSecretStore), so a shard that slept
//     through a delete cannot resurrect the secret.
//   - Rebalance moves shares onto a new shard set through the same scrub
//     machinery when shards join or leave the ring permanently.
//
// Every share is self-describing (object ID, epoch, scheme, index,
// CRC-32C — see internal/erasure), which is what makes shard-local
// inventory walks and cross-shard repair safe.
type ErasureSecretStore struct {
	mu     sync.RWMutex // guards shards/ring/counters across Rebalance
	shards []SecretStore
	ring   hashRing

	k, n   int
	epochs epochSource
	hints  *hintLog

	counters []erasureShardCounters
	repairC  repairCounters

	inflightMu sync.Mutex
	inflight   map[string]*objectWriteLock // objects with a write in progress; scrub skips them, writers queue

	scrubMu       sync.Mutex // serializes scrub/rebalance passes
	scrubInterval time.Duration
	stopScrub     chan struct{}
	scrubDone     chan struct{}
	startOnce     sync.Once
	stopOnce      sync.Once
}

// DefaultErasureK and DefaultErasureN are the default coding scheme: 4 data
// + 2 parity shares. Any 2 of 6 shards can die with zero data loss, at
// 1.5× storage — the 3-replica durability point at half the bytes.
const (
	DefaultErasureK = 4
	DefaultErasureN = 6
)

// defaultHintBytes bounds the in-memory hinted-handoff log.
const defaultHintBytes = 64 << 20

// ErasureOption configures an ErasureSecretStore.
type ErasureOption func(*ErasureSecretStore)

// WithErasureScheme sets the coding scheme: k data shares (all needed to
// reconstruct) out of n total. Requires 1 <= k < n < 2k, with n at most
// the shard count. The n < 2k bound (more data than parity shares) is a
// correctness requirement, not a tuning preference: it guarantees at most
// one epoch can ever hold k of the n share slots, so a read that returns
// on the first k matching shares cannot assemble a stale epoch that a
// successful overwrite already superseded. Schemes that want to survive
// more failures than that should raise k and n together (8-of-12 has the
// same 1.5x overhead and 4-failure tolerance); pure mirroring lives in
// ShardedSecretStore.
func WithErasureScheme(k, n int) ErasureOption {
	return func(s *ErasureSecretStore) { s.k, s.n = k, n }
}

// WithScrubInterval starts the background repair daemon with the given
// cycle period once StartRepair is called (p3proxy does this at boot).
// Zero or negative leaves repair manual via ScrubOnce.
func WithScrubInterval(d time.Duration) ErasureOption {
	return func(s *ErasureSecretStore) { s.scrubInterval = d }
}

// WithHintBytes bounds the in-memory hinted-handoff log (default 64 MiB).
// When full, further shares for down shards are dropped (counted in
// RepairStats.HintsDropped) and redundancy is restored by the scrubber
// instead.
func WithHintBytes(n int64) ErasureOption {
	return func(s *ErasureSecretStore) { s.hints.maxBytes = max(n, 0) }
}

// NewErasureSecretStore builds a store striping over the given child
// shards with the default 4-of-6 scheme (see WithErasureScheme). The shard
// count must be at least n so the n shares land on distinct shards.
func NewErasureSecretStore(shards []SecretStore, opts ...ErasureOption) (*ErasureSecretStore, error) {
	s := &ErasureSecretStore{
		shards:   shards,
		k:        DefaultErasureK,
		n:        DefaultErasureN,
		hints:    &hintLog{maxBytes: defaultHintBytes, entries: map[hintKey][]byte{}},
		inflight: map[string]*objectWriteLock{},
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.k < 1 || s.n <= s.k || s.n > erasure.MaxShares {
		return nil, fmt.Errorf("p3: erasure scheme k=%d n=%d invalid (need 1 <= k < n <= %d)",
			s.k, s.n, erasure.MaxShares)
	}
	if s.n >= 2*s.k {
		return nil, fmt.Errorf("p3: erasure scheme k=%d n=%d invalid: need n < 2k so no two epochs can both hold k slots (see WithErasureScheme)",
			s.k, s.n)
	}
	if len(shards) < s.n {
		return nil, fmt.Errorf("p3: erasure scheme %d-of-%d needs at least %d shards, have %d",
			s.k, s.n, s.n, len(shards))
	}
	s.ring = newHashRing(len(shards))
	s.counters = make([]erasureShardCounters, len(shards))
	s.startRepairDaemon()
	return s, nil
}

// Shards returns the number of child stores.
func (s *ErasureSecretStore) Shards() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.shards)
}

// Scheme returns the store's (k, n) coding parameters.
func (s *ErasureSecretStore) Scheme() (k, n int) { return s.k, s.n }

// --- Share keys --------------------------------------------------------

// shareKeyPrefix namespaces erasure shares in the child stores, so a shard
// directory shared with other stores stays unambiguous.
const shareKeyPrefix = "es1-"

// shareKey names object id's share index on whatever shard holds it. The ID
// is base64url-encoded so the key parses unambiguously regardless of what
// bytes the PSP put in the ID.
func shareKey(id string, index int) string {
	return shareKeyPrefix + base64.RawURLEncoding.EncodeToString([]byte(id)) + "-" + strconv.Itoa(index)
}

// parseShareKey inverts shareKey.
func parseShareKey(key string) (id string, index int, ok bool) {
	rest, found := strings.CutPrefix(key, shareKeyPrefix)
	if !found {
		return "", 0, false
	}
	dash := strings.LastIndexByte(rest, '-')
	if dash < 0 {
		return "", 0, false
	}
	idx, err := strconv.Atoi(rest[dash+1:])
	if err != nil || idx < 0 {
		return "", 0, false
	}
	raw, err := base64.RawURLEncoding.DecodeString(rest[:dash])
	if err != nil {
		return "", 0, false
	}
	return string(raw), idx, true
}

// --- Stats -------------------------------------------------------------

// erasureShardCounters is one shard's cumulative share-operation counts.
type erasureShardCounters struct {
	shareReads        atomic.Uint64
	shareReadFailures atomic.Uint64
	sharePuts         atomic.Uint64
	sharePutFailures  atomic.Uint64
	shareRepairs      atomic.Uint64
}

// ErasureShardStats is a point-in-time snapshot of one shard's share
// traffic, exposed per shard on /metrics as p3_erasure_*_total{shard="i"}.
type ErasureShardStats struct {
	// ShareReads counts share fetches routed to this shard (each GetSecret
	// fans one fetch per share slot).
	ShareReads uint64 `json:"share_reads"`
	// ShareReadFailures counts share fetches this shard failed or answered
	// "not found" — the degraded-read signal.
	ShareReadFailures uint64 `json:"share_read_failures"`
	// SharePuts counts share (and tombstone) writes routed to this shard.
	SharePuts uint64 `json:"share_puts"`
	// SharePutFailures counts share writes this shard failed (each parks a
	// hint when the hint log has room).
	SharePutFailures uint64 `json:"share_put_failures"`
	// ShareRepairs counts shares the scrubber or hint drain restored onto
	// this shard.
	ShareRepairs uint64 `json:"share_repairs"`
}

// ErasureShardStats returns a snapshot of every shard's counters, indexed
// like the shard list the store was built with.
func (s *ErasureSecretStore) ErasureShardStats() []ErasureShardStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ErasureShardStats, len(s.counters))
	for i := range s.counters {
		c := &s.counters[i]
		out[i] = ErasureShardStats{
			ShareReads:        c.shareReads.Load(),
			ShareReadFailures: c.shareReadFailures.Load(),
			SharePuts:         c.sharePuts.Load(),
			SharePutFailures:  c.sharePutFailures.Load(),
			ShareRepairs:      c.shareRepairs.Load(),
		}
	}
	return out
}

// repairCounters is the store-level self-healing accounting.
type repairCounters struct {
	scrubCycles          atomic.Uint64
	objectsScanned       atomic.Uint64
	sharesChecked        atomic.Uint64
	sharesMissing        atomic.Uint64
	sharesCorrupt        atomic.Uint64
	sharesRepaired       atomic.Uint64
	sharesRemoved        atomic.Uint64
	tombstonesPropagated atomic.Uint64
	lostObjects          atomic.Uint64
	degradedReads        atomic.Uint64
	hintsParked          atomic.Uint64
	hintsDropped         atomic.Uint64
	hintsDrained         atomic.Uint64
}

// RepairStats is a point-in-time snapshot of the store's self-healing
// activity, exposed on /metrics as p3_repair_* (naming scheme in
// ARCHITECTURE.md).
type RepairStats struct {
	// ScrubCycles counts completed scrub passes (manual and daemon alike).
	ScrubCycles uint64 `json:"scrub_cycles"`
	// ObjectsScanned counts objects examined across all scrub passes.
	ObjectsScanned uint64 `json:"objects_scanned"`
	// SharesChecked counts share slots verified healthy during scrubs.
	SharesChecked uint64 `json:"shares_checked"`
	// SharesMissing counts share slots found empty on their home shard.
	SharesMissing uint64 `json:"shares_missing"`
	// SharesCorrupt counts shares whose checksum failed — bit rot caught
	// before it cost a read.
	SharesCorrupt uint64 `json:"shares_corrupt"`
	// SharesRepaired counts shares re-encoded and written back to their
	// home shard by the scrubber.
	SharesRepaired uint64 `json:"shares_repaired"`
	// SharesRemoved counts stale or misplaced share copies cleaned up
	// (after a rebalance, or superseded epochs).
	SharesRemoved uint64 `json:"shares_removed"`
	// TombstonesPropagated counts deletion markers the scrubber copied over
	// stale shares so a revived shard cannot resurrect a deleted secret.
	TombstonesPropagated uint64 `json:"tombstones_propagated"`
	// LostObjects counts objects a scrub found with fewer than k intact
	// shares and no tombstone — genuine data loss, the alarm metric.
	LostObjects uint64 `json:"lost_objects"`
	// DegradedReads counts GetSecret calls that needed parity
	// reconstruction because a data share was unavailable.
	DegradedReads uint64 `json:"degraded_reads"`
	// HintsParked counts shares parked locally because their home shard was
	// down at write time (hinted handoff).
	HintsParked uint64 `json:"hints_parked"`
	// HintsDropped counts shares that could not be parked because the hint
	// log was full; the scrubber restores that redundancy instead.
	HintsDropped uint64 `json:"hints_dropped"`
	// HintsDrained counts parked shares delivered to their revived home
	// shard.
	HintsDrained uint64 `json:"hints_drained"`
}

// RepairStats returns a snapshot of the self-healing counters.
func (s *ErasureSecretStore) RepairStats() RepairStats {
	c := &s.repairC
	return RepairStats{
		ScrubCycles:          c.scrubCycles.Load(),
		ObjectsScanned:       c.objectsScanned.Load(),
		SharesChecked:        c.sharesChecked.Load(),
		SharesMissing:        c.sharesMissing.Load(),
		SharesCorrupt:        c.sharesCorrupt.Load(),
		SharesRepaired:       c.sharesRepaired.Load(),
		SharesRemoved:        c.sharesRemoved.Load(),
		TombstonesPropagated: c.tombstonesPropagated.Load(),
		LostObjects:          c.lostObjects.Load(),
		DegradedReads:        c.degradedReads.Load(),
		HintsParked:          c.hintsParked.Load(),
		HintsDropped:         c.hintsDropped.Load(),
		HintsDrained:         c.hintsDrained.Load(),
	}
}

// --- Hinted handoff ----------------------------------------------------

// hintKey addresses one parked share: the shard it belongs on and the
// share key it should be stored under.
type hintKey struct {
	shard int
	key   string
}

// hintLog parks shares whose home shard rejected a write, in memory and
// bytes-bounded, until a drain delivers them. Parked shares also serve
// reads: a GetSecret that cannot reach a shard consults the log, so a
// write-then-read during an outage still sees full redundancy.
type hintLog struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[hintKey][]byte
}

// park stores (or replaces) a parked share. Reports false when the log is
// full.
func (h *hintLog) park(shard int, key string, rec []byte) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	k := hintKey{shard: shard, key: key}
	old := int64(len(h.entries[k]))
	if h.bytes-old+int64(len(rec)) > h.maxBytes {
		return false
	}
	h.entries[k] = rec
	h.bytes += int64(len(rec)) - old
	return true
}

// lookup returns the parked record for (shard, key), if any.
func (h *hintLog) lookup(shard int, key string) ([]byte, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	rec, ok := h.entries[hintKey{shard: shard, key: key}]
	return rec, ok
}

// snapshot returns the current parked entries (for draining without
// holding the lock across network writes).
func (h *hintLog) snapshot() map[hintKey][]byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[hintKey][]byte, len(h.entries))
	for k, v := range h.entries {
		out[k] = v
	}
	return out
}

// removeSuperseded drops a parked record for (shard, key) when a write of
// a newer epoch just landed on that slot, so a stale hint can never stand
// in for the slot's real contents on a later read.
func (h *hintLog) removeSuperseded(shard int, key string, epoch uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	k := hintKey{shard: shard, key: key}
	if rec, ok := h.entries[k]; ok && recordEpochOf(rec) < epoch {
		h.bytes -= int64(len(rec))
		delete(h.entries, k)
	}
}

// remove drops a delivered (or obsolete) hint.
func (h *hintLog) remove(k hintKey) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if rec, ok := h.entries[k]; ok {
		h.bytes -= int64(len(rec))
		delete(h.entries, k)
	}
}

// clear empties the log (used by Rebalance: shard indices change meaning).
func (h *hintLog) clear() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.entries = map[hintKey][]byte{}
	h.bytes = 0
}

// --- SecretStore implementation ----------------------------------------

// storeLayout is an atomic snapshot of the store's shard set, taken so a
// concurrent Rebalance swapping the slices cannot leave an operation
// indexing a counters slice that no longer matches its shard list.
type storeLayout struct {
	shards   []SecretStore
	counters []erasureShardCounters
	ring     hashRing
	k, n     int
}

// layout snapshots the current shard set.
func (s *ErasureSecretStore) layout() storeLayout {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return storeLayout{shards: s.shards, counters: s.counters, ring: s.ring, k: s.k, n: s.n}
}

// placementFor snapshots the store's current layout and the n home shards
// for one object.
func (s *ErasureSecretStore) placementFor(id string) (lay storeLayout, placement []int) {
	lay = s.layout()
	return lay, lay.ring.placements(id, lay.n)
}

// objectWriteLock serializes writers for one object id; refs counts the
// holders and waiters so the map entry can be dropped when the last one
// leaves.
type objectWriteLock struct {
	mu   sync.Mutex
	refs int
}

// beginWrite marks an object as having a write (put or delete) in flight —
// so a concurrent scrub pass does not mistake its half-written stripe for
// damage, or worse, for data loss — and serializes writers for the same
// id. Serialization is load-bearing: two concurrent epochs racing slot by
// slot across the same n slots can each keep fewer than k shares while
// both writers count >= k per-slot successes — two acknowledged writes
// adding up to an unreadable object. With writers queued per id, the
// later epoch overwrites every slot it reaches and last-writer-wins holds.
func (s *ErasureSecretStore) beginWrite(id string) {
	s.inflightMu.Lock()
	l := s.inflight[id]
	if l == nil {
		l = &objectWriteLock{}
		s.inflight[id] = l
	}
	l.refs++
	s.inflightMu.Unlock()
	l.mu.Lock()
}

func (s *ErasureSecretStore) endWrite(id string) {
	s.inflightMu.Lock()
	l := s.inflight[id]
	l.mu.Unlock()
	if l.refs--; l.refs <= 0 {
		delete(s.inflight, id)
	}
	s.inflightMu.Unlock()
}

func (s *ErasureSecretStore) writeInFlight(id string) bool {
	s.inflightMu.Lock()
	defer s.inflightMu.Unlock()
	return s.inflight[id] != nil
}

// PutSecret implements SecretStore: the blob is encoded into k+m shares
// written to their n home shards concurrently. The write succeeds once at
// least k shares are durable (enough to reconstruct); shares that missed a
// down shard are parked as hints and delivered when it revives.
func (s *ErasureSecretStore) PutSecret(ctx context.Context, id string, blob []byte) error {
	s.beginWrite(id)
	defer s.endWrite(id)
	lay, placement := s.placementFor(id)
	k, n := lay.k, lay.n
	epoch := s.epochs.next()
	shs, err := erasure.Encode(id, epoch, blob, k, n)
	if err != nil {
		return fmt.Errorf("p3: erasure store encoding %q: %w", id, err)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			shard := placement[i]
			key := shareKey(id, i)
			rec := shs[i].Marshal()
			lay.counters[shard].sharePuts.Add(1)
			if err := lay.shards[shard].PutSecret(ctx, key, rec); err != nil {
				lay.counters[shard].sharePutFailures.Add(1)
				errs[i] = fmt.Errorf("shard %d share %d: %w", shard, i, err)
				if s.hints.park(shard, key, rec) {
					s.repairC.hintsParked.Add(1)
				} else {
					s.repairC.hintsDropped.Add(1)
				}
			} else {
				// The slot now holds this epoch; a hint parked by an older
				// write must not stand in for the slot on a later read.
				s.hints.removeSuperseded(shard, key, epoch)
			}
		}(i)
	}
	wg.Wait()
	stored := 0
	for _, e := range errs {
		if e == nil {
			stored++
		}
	}
	if stored < k {
		return fmt.Errorf("p3: erasure store: only %d/%d shares stored for %q, need %d: %w",
			stored, n, id, k, errors.Join(errs...))
	}
	return nil
}

// shareFetch is one share slot's answer during the GetSecret fan-out.
type shareFetch struct {
	index     int
	share     erasure.Share
	valid     bool
	tombEpoch uint64
	tomb      bool
	err       error
	missing   bool
}

// GetSecret implements SecretStore with a concurrent fan-out over all n
// share slots, returning as soon as any k valid shares of one write epoch
// arrive (the remaining fetches are cancelled). A missing data share
// degrades the read into a parity reconstruction rather than an error;
// parked hints stand in for shares on unreachable shards. Tombstones win
// over shares at or below their epoch.
//
// Returning on the first k matching shares without waiting for the
// stragglers is safe only because of two write-side invariants: the
// scheme bound n < 2k means a superseded epoch retains at most n-k < k
// slots after a successful overwrite, and the DeleteSecret quorum of
// n-k+1 tombstones leaves at most k-1 share slots behind a successful
// delete — so any k same-epoch shares are necessarily the committed
// newest write, and the slow shards can hold nothing that outranks them.
func (s *ErasureSecretStore) GetSecret(ctx context.Context, id string) ([]byte, error) {
	lay, placement := s.placementFor(id)
	k, n := lay.k, lay.n
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan shareFetch, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			shard := placement[i]
			key := shareKey(id, i)
			lay.counters[shard].shareReads.Add(1)
			raw, err := lay.shards[shard].GetSecret(fctx, key)
			if err != nil {
				lay.counters[shard].shareReadFailures.Add(1)
				// A parked hint is as good as the shard's own copy.
				if rec, ok := s.hints.lookup(shard, key); ok {
					raw, err = rec, nil
				} else {
					ch <- shareFetch{index: i, err: err, missing: IsNotFound(err)}
					return
				}
			}
			ch <- parseShareBytes(i, id, raw)
		}(i)
	}

	groups := map[uint64][]erasure.Share{}
	var tombMax uint64
	haveTomb := false
	var maxShareEpoch uint64
	var errs []error
	missing, invalid := 0, 0
	for received := 0; received < n; received++ {
		var f shareFetch
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case f = <-ch:
		}
		switch {
		case f.tomb:
			haveTomb = true
			tombMax = max(tombMax, f.tombEpoch)
		case f.valid:
			e := f.share.Epoch
			maxShareEpoch = max(maxShareEpoch, e)
			groups[e] = append(groups[e], f.share)
			if g := groups[e]; len(g) >= g[0].K && (!haveTomb || e > tombMax) {
				blob, err := erasure.Reconstruct(g)
				if err == nil {
					cancel()
					for _, sh := range g[:g[0].K] {
						if sh.Index >= sh.K {
							s.repairC.degradedReads.Add(1)
							break
						}
					}
					return blob, nil
				}
				// Inconsistent group (should not happen); keep collecting.
				errs = append(errs, err)
			}
		case f.err != nil:
			if f.missing {
				missing++
			} else {
				errs = append(errs, fmt.Errorf("share %d (shard %d): %w", f.index, placement[f.index], f.err))
			}
		default:
			invalid++
		}
	}
	// All n answered without k consistent shares of a live epoch.
	if haveTomb && tombMax >= maxShareEpoch {
		return nil, &NotFoundError{Kind: "secret", ID: id}
	}
	if missing == n {
		return nil, &NotFoundError{Kind: "secret", ID: id}
	}
	if len(groups) == 0 && len(errs) == 0 && invalid == 0 {
		return nil, &NotFoundError{Kind: "secret", ID: id}
	}
	return nil, fmt.Errorf("p3: erasure store: cannot reconstruct %q (need %d shares, %d missing, %d invalid): %w",
		id, k, missing, invalid, errors.Join(errs...))
}

// parseShareBytes classifies raw bytes read from a share slot: a tombstone
// record, a valid share for this object, or garbage.
func parseShareBytes(index int, id string, raw []byte) shareFetch {
	if kind, epoch, _ := decodeRecord(raw); kind == recordTombstone {
		return shareFetch{index: index, tomb: true, tombEpoch: epoch}
	}
	sh, err := erasure.ParseShare(raw)
	if err != nil || sh.ID != id || sh.Index != index {
		return shareFetch{index: index}
	}
	return shareFetch{index: index, share: sh, valid: true}
}

// DeleteSecret implements SecretDeleter by writing epoch-versioned
// tombstones over every share slot concurrently. The delete succeeds once
// tombstones are durable on n-k+1 slots — a quorum chosen so at most k-1
// slots can still hold pre-delete shares, which (with the n < 2k scheme
// bound) means no read can ever assemble k stale shares and resurrect a
// secret whose DeleteSecret returned success, even if the tombstoned
// shards answer slowly. Slots that missed the quorum park tombstone hints
// and the scrubber propagates the marker to them. Within the scheme's
// fault tolerance the quorum is always reachable: with at most n-k shards
// down, at least k >= n-k+1 remain up. Shards need not implement
// SecretDeleter.
func (s *ErasureSecretStore) DeleteSecret(ctx context.Context, id string) error {
	s.beginWrite(id)
	defer s.endWrite(id)
	lay, placement := s.placementFor(id)
	n := lay.n
	epoch := s.epochs.next()
	rec := encodeRecord(recordTombstone, epoch, nil)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			shard := placement[i]
			key := shareKey(id, i)
			lay.counters[shard].sharePuts.Add(1)
			if err := lay.shards[shard].PutSecret(ctx, key, rec); err != nil {
				lay.counters[shard].sharePutFailures.Add(1)
				errs[i] = fmt.Errorf("shard %d: %w", shard, err)
				if s.hints.park(shard, key, rec) {
					s.repairC.hintsParked.Add(1)
				} else {
					s.repairC.hintsDropped.Add(1)
				}
			} else {
				s.hints.removeSuperseded(shard, key, epoch)
			}
		}(i)
	}
	wg.Wait()
	durable := 0
	for _, e := range errs {
		if e == nil {
			durable++
		}
	}
	if quorum := n - lay.k + 1; durable < quorum {
		return fmt.Errorf("p3: erasure store: only %d/%d tombstones durable for %q, need %d: %w",
			durable, n, id, quorum, errors.Join(errs...))
	}
	return nil
}
