package p3

import (
	"fmt"

	"p3/internal/imaging"
)

// ResizeFilter selects the resampling kernel a Resize transform uses.
type ResizeFilter int

// The supported resampling kernels, from cheapest to highest-quality.
const (
	FilterBox ResizeFilter = iota
	FilterTriangle
	FilterCatmullRom
	FilterLanczos
)

func (f ResizeFilter) filter() imaging.Filter {
	switch f {
	case FilterBox:
		return imaging.Box
	case FilterTriangle:
		return imaging.Triangle
	case FilterCatmullRom:
		return imaging.CatmullRom
	default:
		return imaging.Lanczos3
	}
}

// String returns the kernel's conventional name (e.g. "lanczos3").
func (f ResizeFilter) String() string { return f.filter().Name }

// Transform is a composition of the pixel-domain operations a photo-sharing
// provider applies to a public part: resizing, cropping, convolution
// filters, and gamma remapping. The zero value is the identity.
//
// Transforms are immutable values: each constructor returns a new Transform,
// and Then appends without mutating its receiver, so partial pipelines can
// be shared freely.
//
// A recipient passes the provider's transform to Codec.JoinProcessed, which
// exploits its linearity (paper Eq. (2)) to reconstruct the photo from the
// processed public part. Gamma is the exception: it is not linear, but as an
// invertible pointwise remap it is still reconstructable when it is the
// final stage (§3.3).
type Transform struct {
	ops []imaging.Op
}

// Resize scales to exactly w×h pixels with the given kernel.
func Resize(w, h int, f ResizeFilter) Transform {
	return Transform{ops: []imaging.Op{imaging.Resize{W: w, H: h, Filter: f.filter()}}}
}

// Crop extracts the w×h rectangle whose top-left corner is (x, y).
func Crop(x, y, w, h int) Transform {
	return Transform{ops: []imaging.Op{imaging.Crop{X: x, Y: y, W: w, H: h}}}
}

// Blur applies a Gaussian blur of the given standard deviation.
func Blur(sigma float64) Transform {
	return Transform{ops: []imaging.Op{imaging.GaussianBlur{Sigma: sigma}}}
}

// Sharpen applies unsharp masking: amount·(src − blur(σ)) is added back to
// the source.
func Sharpen(sigma, amount float64) Transform {
	return Transform{ops: []imaging.Op{imaging.Sharpen{Sigma: sigma, Amount: amount}}}
}

// Gamma applies the pointwise remap v ↦ 255·(v/255)^g. It is the one
// supported non-linear stage and must come last in a transform handed to
// JoinProcessed.
func Gamma(g float64) Transform {
	return Transform{ops: []imaging.Op{imaging.Gamma{G: g}}}
}

// Then returns the composition "t, then next", applied left to right.
func (t Transform) Then(next Transform) Transform {
	ops := make([]imaging.Op, 0, len(t.ops)+len(next.ops))
	ops = append(ops, t.ops...)
	ops = append(ops, next.ops...)
	return Transform{ops: ops}
}

// Linear reports whether every stage commutes with addition and scalar
// multiplication of images — the property reconstruction under a processed
// public part relies on.
func (t Transform) Linear() bool { return t.op().Linear() }

// IsIdentity reports whether the transform has no stages.
func (t Transform) IsIdentity() bool { return len(t.ops) == 0 }

// String renders the pipeline stages joined with " ∘ ", or "identity".
func (t Transform) String() string {
	if t.IsIdentity() {
		return "identity"
	}
	return imaging.Compose(t.ops).String()
}

// op returns the internal operator the transform denotes.
func (t Transform) op() imaging.Op {
	if len(t.ops) == 0 {
		return imaging.Identity{}
	}
	return imaging.Compose(t.ops)
}

// splitRemap decomposes the transform into a linear prefix and a trailing
// invertible pointwise remap, the shape ReconstructRemapped handles. ok is
// false when the transform has some other non-linear structure.
func (t Transform) splitRemap() (linear imaging.Op, remap imaging.Invertible, ok bool) {
	if len(t.ops) == 0 {
		return nil, nil, false
	}
	last := t.ops[len(t.ops)-1]
	inv, isInv := last.(imaging.Invertible)
	if !isInv {
		return nil, nil, false
	}
	prefix := imaging.Compose(t.ops[:len(t.ops)-1])
	if !prefix.Linear() {
		return nil, nil, false
	}
	return prefix, inv, true
}

// Apply runs the transform over a decoded image in the pixel domain,
// clamping the result to the displayable [0, 255] range. This is what a PSP
// does to a photo between upload and download; tests and simulations use it
// to fabricate served variants.
func (t Transform) Apply(im *Image) *Image {
	if im == nil || im.pix == nil {
		return nil
	}
	return &Image{pix: imaging.Clamp(t.op().Apply(im.pix))}
}

// FitWithin returns the dimensions of a (w, h) image scaled down, preserving
// aspect ratio, to fit inside maxW×maxH — the rule PSPs use for their static
// variants. Images already inside the box are unchanged.
func FitWithin(w, h, maxW, maxH int) (int, int) {
	return imaging.FitWithin(w, h, maxW, maxH)
}

var _ fmt.Stringer = Transform{}
