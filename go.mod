module p3

go 1.24
