package p3

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"sync"
)

// PhotoService is a photo-sharing provider backend: it ingests public parts
// and serves their renditions. Implementations include the bundled HTTP
// client (NewHTTPPhotoService) speaking the PSP wire API, and in-process
// adapters for tests or embedded deployments.
//
// The service is untrusted: it only ever sees public parts, which are
// ordinary JPEGs to it.
type PhotoService interface {
	// UploadPhoto ingests a JPEG and returns the provider-assigned opaque
	// photo ID all variants are addressed by.
	UploadPhoto(ctx context.Context, jpegBytes []byte) (id string, err error)

	// FetchPhoto retrieves one rendition of a stored photo.
	FetchPhoto(ctx context.Context, id string, v PhotoVariant) ([]byte, error)
}

// SecretStore is a blob-store backend holding sealed secret parts under the
// photo ID the PSP assigned (§4.1). It is untrusted: blobs are AES-encrypted
// and MACed before they reach it.
type SecretStore interface {
	PutSecret(ctx context.Context, id string, blob []byte) error
	GetSecret(ctx context.Context, id string) ([]byte, error)
}

// NotFoundError reports that a backend holds no object under the given ID.
// Backends return it (wrapped or not) so callers can distinguish "missing"
// from "backend broken": the proxy maps it to 404 instead of 502, and the
// sharded store's read-repair falls through to the next replica on it.
type NotFoundError struct {
	Kind string // what is missing: "photo", "secret", ...
	ID   string
}

// Error implements the error interface.
func (e *NotFoundError) Error() string {
	return fmt.Sprintf("p3: no %s %q", e.Kind, e.ID)
}

// IsNotFound reports whether err (anywhere in its chain) is a NotFoundError.
func IsNotFound(err error) bool {
	var nf *NotFoundError
	return errors.As(err, &nf)
}

// PhotoDeleter is an optional PhotoService extension. The proxy uses it for
// best-effort cleanup when an upload stores the public part but then fails
// to store the secret part: without the secret part the photo can never be
// reconstructed, so leaving the public part behind only leaks storage.
type PhotoDeleter interface {
	DeletePhoto(ctx context.Context, id string) error
}

// SecretDeleter is an optional SecretStore extension for removing a sealed
// blob. Every bundled store implements it; it is split out so minimal
// read/write stores remain easy to plug in.
type SecretDeleter interface {
	DeleteSecret(ctx context.Context, id string) error
}

// SecretLister is an optional SecretStore extension enumerating every ID
// the store currently holds. The erasure store's scrubber and rebalancer
// need it to walk a shard's share inventory; stores that cannot enumerate
// (minimal HTTP blob stores) simply aren't scrubbed from that side.
// Implementations may omit IDs they cannot faithfully reproduce (the disk
// store's hash-named fallback for pathologically long IDs).
type SecretLister interface {
	ListSecrets(ctx context.Context) ([]string, error)
}

// UploadDimsService is an optional PhotoService extension for providers
// whose upload response reports the stored (post-ingest re-encode)
// dimensions, as Facebook-style APIs do. The proxy prefers it: knowing the
// stored dimensions at upload time warms its dims cache, so the first
// cropped view skips the full-size probe fetch otherwise needed to map crop
// coordinates. Implementations return storedW, storedH = 0, 0 when the
// provider did not report dimensions.
type UploadDimsService interface {
	UploadPhotoWithDims(ctx context.Context, jpegBytes []byte) (id string, storedW, storedH int, err error)
}

// CropRect is a crop request in stored-image pixel coordinates, applied
// before any resize.
type CropRect struct {
	X, Y, W, H int
}

// PhotoVariant selects which rendition of a stored photo to fetch. The zero
// value requests the stored full-size re-encode. Size selects a named static
// variant ("big", "small", "thumb" on a Facebook-like PSP) and takes
// precedence over the dynamic W/H/Crop fields. The bundled PSP requires W
// and H together for a dynamic resize.
type PhotoVariant struct {
	Size string    // named static variant, "" = none
	W, H int       // dynamic fit-within resize, 0 = unset
	Crop *CropRect // dynamic crop, nil = none
}

// Query renders the variant as the PSP wire API's query parameters.
func (v PhotoVariant) Query() url.Values {
	q := url.Values{}
	if v.Size != "" {
		q.Set("size", v.Size)
		return q
	}
	if v.Crop != nil {
		q.Set("crop", fmt.Sprintf("%d,%d,%d,%d", v.Crop.X, v.Crop.Y, v.Crop.W, v.Crop.H))
	}
	if v.W > 0 {
		q.Set("w", strconv.Itoa(v.W))
	}
	if v.H > 0 {
		q.Set("h", strconv.Itoa(v.H))
	}
	return q
}

// ParsePhotoVariant parses the PSP wire API's query parameters
// (size=big|small|thumb, w=&h=, crop=x,y,w,h) into a PhotoVariant.
func ParsePhotoVariant(q url.Values) (PhotoVariant, error) {
	v := PhotoVariant{Size: q.Get("size")}
	if cropStr := q.Get("crop"); cropStr != "" {
		parts := strings.Split(cropStr, ",")
		if len(parts) != 4 {
			return PhotoVariant{}, fmt.Errorf("p3: bad crop %q", cropStr)
		}
		var vals [4]int
		for i, part := range parts {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 0 {
				return PhotoVariant{}, fmt.Errorf("p3: bad crop %q", cropStr)
			}
			vals[i] = n
		}
		v.Crop = &CropRect{X: vals[0], Y: vals[1], W: vals[2], H: vals[3]}
	}
	for _, dim := range []struct {
		s   string
		dst *int
	}{{q.Get("w"), &v.W}, {q.Get("h"), &v.H}} {
		if dim.s == "" {
			continue
		}
		n, err := strconv.Atoi(dim.s)
		if err != nil || n <= 0 {
			return PhotoVariant{}, fmt.Errorf("p3: bad dimension %q", dim.s)
		}
		*dim.dst = n
	}
	return v, nil
}

// MemorySecretStore is an in-process SecretStore for tests and
// single-binary deployments. The zero value is not usable; call
// NewMemorySecretStore.
type MemorySecretStore struct {
	mu    sync.RWMutex
	blobs map[string][]byte
}

// NewMemorySecretStore returns an empty in-memory store.
func NewMemorySecretStore() *MemorySecretStore {
	return &MemorySecretStore{blobs: make(map[string][]byte)}
}

// PutSecret implements SecretStore.
func (m *MemorySecretStore) PutSecret(_ context.Context, id string, blob []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blobs[id] = append([]byte(nil), blob...)
	return nil
}

// GetSecret implements SecretStore.
func (m *MemorySecretStore) GetSecret(_ context.Context, id string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	blob, ok := m.blobs[id]
	if !ok {
		return nil, &NotFoundError{Kind: "secret", ID: id}
	}
	return append([]byte(nil), blob...), nil
}

// DeleteSecret implements SecretDeleter. Deleting an absent blob is not an
// error.
func (m *MemorySecretStore) DeleteSecret(_ context.Context, id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.blobs, id)
	return nil
}

// ListSecrets implements SecretLister.
func (m *MemorySecretStore) ListSecrets(_ context.Context) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ids := make([]string, 0, len(m.blobs))
	for id := range m.blobs {
		ids = append(ids, id)
	}
	return ids, nil
}
