package p3_test

// Runnable godoc examples for the public API. Each compiles and runs under
// `go test`; photos are synthesized (internal/dataset) so the examples are
// self-contained and deterministic.

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"net/url"

	"p3"
	"p3/internal/dataset"
	"p3/internal/jpegx"
	"p3/internal/proxy"
	"p3/internal/psp"
)

// examplePhoto synthesizes a small JPEG to feed the examples.
func examplePhoto(seed int64, w, h int) []byte {
	img := dataset.Natural(seed, w, h)
	coeffs, err := img.ToCoeffs(92, jpegx.Sub420)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&buf, coeffs, nil); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}

// ExampleNew builds a Codec at an explicit operating point. A Codec is
// reusable and safe for concurrent use; long-lived codecs recycle scratch
// buffers across photos.
func ExampleNew() {
	key, err := p3.NewKey()
	if err != nil {
		log.Fatal(err)
	}
	codec, err := p3.New(key, p3.WithThreshold(20), p3.WithParallelism(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("threshold:", codec.Threshold())
	fmt.Println("parallelism:", codec.Parallelism())

	// A negative threshold is rejected with a typed error.
	_, err = p3.New(key, p3.WithThreshold(-1))
	fmt.Println("bad threshold rejected:", err != nil)
	// Output:
	// threshold: 20
	// parallelism: 2
	// bad threshold rejected: true
}

// ExampleCodec_Split splits a photo into its two parts and reconstructs the
// original exactly from them.
func ExampleCodec_Split() {
	key, _ := p3.NewKey()
	codec, err := p3.New(key)
	if err != nil {
		log.Fatal(err)
	}
	jpegBytes := examplePhoto(7, 256, 192)

	split, err := codec.Split(context.Background(), bytes.NewReader(jpegBytes))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("have public part:", len(split.PublicJPEG) > 0)
	fmt.Println("have sealed secret part:", len(split.SecretBlob) > 0)
	fmt.Println("secret part is the smaller:", len(split.SecretBlob) < len(split.PublicJPEG))

	// Joining the unprocessed public part with the secret part reproduces
	// the original image coefficient-exactly.
	joined, err := codec.JoinBytes(split.PublicJPEG, split.SecretBlob)
	if err != nil {
		log.Fatal(err)
	}
	orig, _ := jpegx.Decode(bytes.NewReader(jpegBytes))
	got, _ := jpegx.Decode(bytes.NewReader(joined))
	exact := true
	for ci := range orig.Components {
		for bi := range orig.Components[ci].Blocks {
			if got.Components[ci].Blocks[bi] != orig.Components[ci].Blocks[bi] {
				exact = false
			}
		}
	}
	fmt.Println("reconstruction coefficient-exact:", exact)
	// Output:
	// have public part: true
	// have sealed secret part: true
	// secret part is the smaller: true
	// reconstruction coefficient-exact: true
}

// Example_transform describes a provider's processing pipeline and
// reconstructs pixels from a transformed public part with JoinProcessed.
func Example_transform() {
	key, _ := p3.NewKey()
	codec, err := p3.New(key)
	if err != nil {
		log.Fatal(err)
	}
	jpegBytes := examplePhoto(11, 320, 240)
	split, err := codec.SplitBytes(jpegBytes)
	if err != nil {
		log.Fatal(err)
	}

	// The provider resized the public part and sharpened it. Describe what
	// it did; composition reads left to right.
	t := p3.Resize(160, 120, p3.FilterLanczos).Then(p3.Sharpen(1, 0.5))
	fmt.Println("pipeline:", t)
	fmt.Println("linear:", t.Linear())

	// Apply the provider's processing to the public part, then reconstruct.
	pubIm, _ := p3.DecodeImage(bytes.NewReader(split.PublicJPEG))
	processed := t.Apply(pubIm)
	var served bytes.Buffer
	if err := processed.EncodeJPEG(&served, 95); err != nil {
		log.Fatal(err)
	}
	img, err := codec.JoinProcessedBytes(served.Bytes(), split.SecretBlob, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstructed %dx%d pixels\n", img.Width(), img.Height())
	// Output:
	// pipeline: resize(160x120,lanczos3) ∘ sharpen(σ=1.00,a=0.50)
	// linear: true
	// reconstructed 160x120 pixels
}

// ExampleCodec_SplitVideo splits a Motion-JPEG clip (paper §4.2): every
// frame is split with P3, the public clip stays a valid P3MJ stream of
// ordinary JPEGs, and a single sealed container carries all frames'
// secret parts. Frames split concurrently on the codec's worker pool, and
// the output is byte-identical at every parallelism level.
func ExampleCodec_SplitVideo() {
	key, _ := p3.NewKey()
	codec, err := p3.New(key)
	if err != nil {
		log.Fatal(err)
	}

	// A 3-frame clip from individually coded JPEG frames.
	clip, err := p3.PackMJPEG([][]byte{
		examplePhoto(21, 128, 96), examplePhoto(22, 128, 96), examplePhoto(23, 128, 96),
	})
	if err != nil {
		log.Fatal(err)
	}

	split, err := codec.SplitVideo(context.Background(), bytes.NewReader(clip))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("frames:", split.Frames)
	pubFrames, _ := p3.UnpackMJPEG(split.PublicMJPEG)
	fmt.Println("public clip is a valid P3MJ stream:", len(pubFrames) == split.Frames)
	fmt.Println("one sealed secret container:", len(split.SecretBlob) > 0)

	// The whole clip joins back exactly; a single frame can be sought
	// without joining the rest.
	joined, err := codec.JoinVideoBytes(split.PublicMJPEG, split.SecretBlob)
	if err != nil {
		log.Fatal(err)
	}
	joinedFrames, _ := p3.UnpackMJPEG(joined)
	frame1, err := codec.JoinVideoFrame(split.PublicMJPEG, split.SecretBlob, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("frame seek matches whole-clip join:", bytes.Equal(frame1, joinedFrames[1]))
	// Output:
	// frames: 3
	// public clip is a valid P3MJ stream: true
	// one sealed secret container: true
	// frame seek matches whole-clip join: true
}

// Example_videoServing serves a clip through the trusted proxy: upload
// splits it and stores both parts in the blob store, downloads join the
// whole clip or seek single frames, and repeats are served from the
// proxy's bounded variant cache.
func Example_videoServing() {
	key, _ := p3.NewKey()
	codec, err := p3.New(key)
	if err != nil {
		log.Fatal(err)
	}
	// The video path never touches the PSP; the blob store holds both the
	// public stream and the sealed secret container.
	pspSrv := httptest.NewServer(psp.NewServer(psp.FacebookLike()))
	defer pspSrv.Close()
	px := proxy.New(codec, p3.NewHTTPPhotoService(pspSrv.URL), p3.NewMemorySecretStore())

	clip, err := p3.PackMJPEG([][]byte{examplePhoto(31, 128, 96), examplePhoto(32, 128, 96)})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	id, frames, err := px.UploadVideo(ctx, clip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("uploaded frames:", frames)

	// A frame seek returns one standalone JPEG; the whole-clip download
	// returns a P3MJ stream.
	frame, err := px.DownloadVideo(ctx, id, url.Values{"frame": {"1"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("frame seek returns a JPEG:", len(frame) > 0)
	whole, err := px.DownloadVideo(ctx, id, url.Values{})
	if err != nil {
		log.Fatal(err)
	}
	n, _ := p3.MJPEGFrameCount(whole)
	fmt.Println("whole-clip frames:", n)

	// The repeat seek is served from the variant cache.
	before := px.Stats().Variants.Hits
	if _, err := px.DownloadVideo(ctx, id, url.Values{"frame": {"1"}}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("repeat seek was a cache hit:", px.Stats().Variants.Hits == before+1)
	// Output:
	// uploaded frames: 2
	// frame seek returns a JPEG: true
	// whole-clip frames: 2
	// repeat seek was a cache hit: true
}

// Example_httpBackends wires the bundled HTTP backends against a provider
// and a blob store, the deployment shape cmd/p3proxy runs.
func Example_httpBackends() {
	// An untrusted Facebook-like PSP and an untrusted blob store, both
	// over real HTTP.
	pspSrv := httptest.NewServer(psp.NewServer(psp.FacebookLike()))
	defer pspSrv.Close()
	blobSrv := httptest.NewServer(psp.NewBlobStore())
	defer blobSrv.Close()

	photos := p3.NewHTTPPhotoService(pspSrv.URL)
	secrets := p3.NewHTTPSecretStore(blobSrv.URL)
	ctx := context.Background()

	key, _ := p3.NewKey()
	codec, err := p3.New(key)
	if err != nil {
		log.Fatal(err)
	}
	split, err := codec.SplitBytes(examplePhoto(3, 256, 192))
	if err != nil {
		log.Fatal(err)
	}

	// Upload the public part to the PSP; store the sealed secret part
	// under the PSP-assigned ID.
	id, err := photos.UploadPhoto(ctx, split.PublicJPEG)
	if err != nil {
		log.Fatal(err)
	}
	if err := secrets.PutSecret(ctx, id, split.SecretBlob); err != nil {
		log.Fatal(err)
	}

	// Fetch both parts back and check the provider round-trip.
	served, err := photos.FetchPhoto(ctx, id, p3.PhotoVariant{Size: "thumb"})
	if err != nil {
		log.Fatal(err)
	}
	blob, err := secrets.GetSecret(ctx, id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("thumbnail served:", len(served) > 0)
	fmt.Println("secret part round-tripped:", bytes.Equal(blob, split.SecretBlob))

	// Missing objects surface as typed not-found errors.
	_, err = secrets.GetSecret(ctx, "no-such-id")
	fmt.Println("missing blob detected:", p3.IsNotFound(err))
	// Output:
	// thumbnail served: true
	// secret part round-tripped: true
	// missing blob detected: true
}
