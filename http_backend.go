package p3

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// DefaultHTTPTimeout bounds every PSP and blob-store request made by the
// bundled HTTP backends unless WithHTTPClient or WithHTTPTimeout overrides
// it. (The legacy proxy shared http.DefaultClient, which has no timeout at
// all — a hung PSP hung the proxy.)
const DefaultHTTPTimeout = 30 * time.Second

// maxResponseBytes caps PSP and blob-store response bodies.
const maxResponseBytes = 64 << 20

// errorBodySnippetLen bounds how much of an error response body gets quoted
// in the returned error: enough for the backend's message, never a page of
// HTML.
const errorBodySnippetLen = 256

// maxDrainBytes bounds how much of an unread body drainBody will consume to
// keep the connection reusable; a longer remainder is cheaper to close.
const maxDrainBytes = 1 << 18

// statusError turns a non-2xx response into an error carrying a bounded
// snippet of the body, then drains the remainder so the keep-alive
// connection returns to the pool instead of being torn down.
func statusError(resp *http.Response, what string) error {
	snippet, _ := io.ReadAll(io.LimitReader(resp.Body, errorBodySnippetLen))
	drainBody(resp.Body)
	if msg := strings.TrimSpace(string(snippet)); msg != "" {
		return fmt.Errorf("p3: %s: %s: %s", what, resp.Status, msg)
	}
	return fmt.Errorf("p3: %s: %s", what, resp.Status)
}

// drainBody consumes (a bounded amount of) the remaining body. The caller
// still closes the body; draining first is what lets net/http reuse the
// connection.
func drainBody(body io.Reader) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, maxDrainBytes))
}

// HTTPOption configures the bundled HTTP backends.
type HTTPOption func(*httpBackend)

// WithHTTPClient supplies the *http.Client the backend uses, replacing the
// built-in client and its DefaultHTTPTimeout.
func WithHTTPClient(c *http.Client) HTTPOption {
	return func(b *httpBackend) { b.client = c }
}

// WithHTTPTimeout sets the per-request timeout of the built-in client. It is
// ignored when WithHTTPClient is also given.
func WithHTTPTimeout(d time.Duration) HTTPOption {
	return func(b *httpBackend) { b.timeout = d }
}

// httpBackend is the shared base of the two HTTP backends.
type httpBackend struct {
	base    string
	client  *http.Client
	timeout time.Duration
}

func newHTTPBackend(baseURL string, opts []HTTPOption) httpBackend {
	b := httpBackend{base: strings.TrimRight(baseURL, "/"), timeout: DefaultHTTPTimeout}
	for _, opt := range opts {
		opt(&b)
	}
	if b.client == nil {
		b.client = &http.Client{Timeout: b.timeout}
	}
	return b
}

func (b *httpBackend) get(ctx context.Context, url, what string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("p3: fetching %s: %w", what, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp, what+" backend returned")
	}
	return io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
}

// HTTPPhotoService is a PhotoService speaking the PSP wire API:
//
//	POST {base}/upload              body: JPEG → {"id": "..."}
//	GET  {base}/photo/{id}?size=…&w=…&h=…&crop=…
type HTTPPhotoService struct {
	httpBackend
}

// NewHTTPPhotoService builds a PhotoService client for the PSP at baseURL.
func NewHTTPPhotoService(baseURL string, opts ...HTTPOption) *HTTPPhotoService {
	return &HTTPPhotoService{httpBackend: newHTTPBackend(baseURL, opts)}
}

// UploadPhoto implements PhotoService.
func (s *HTTPPhotoService) UploadPhoto(ctx context.Context, jpegBytes []byte) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.base+"/upload", bytes.NewReader(jpegBytes))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "image/jpeg")
	resp, err := s.client.Do(req)
	if err != nil {
		return "", fmt.Errorf("p3: uploading to PSP: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", statusError(resp, "PSP rejected upload")
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxResponseBytes)).Decode(&out); err != nil {
		return "", fmt.Errorf("p3: parsing PSP response: %w", err)
	}
	drainBody(resp.Body) // the decoder stops at the JSON value's end
	if out.ID == "" {
		return "", fmt.Errorf("p3: PSP returned empty photo ID")
	}
	return out.ID, nil
}

// FetchPhoto implements PhotoService.
func (s *HTTPPhotoService) FetchPhoto(ctx context.Context, id string, v PhotoVariant) ([]byte, error) {
	u := s.base + "/photo/" + id
	if enc := v.Query().Encode(); enc != "" {
		u += "?" + enc
	}
	return s.get(ctx, u, "public part")
}

// HTTPSecretStore is a SecretStore speaking the blob-store wire API:
//
//	PUT {base}/blob/{id}   body: sealed blob
//	GET {base}/blob/{id}
type HTTPSecretStore struct {
	httpBackend
}

// NewHTTPSecretStore builds a SecretStore client for the store at baseURL.
func NewHTTPSecretStore(baseURL string, opts ...HTTPOption) *HTTPSecretStore {
	return &HTTPSecretStore{httpBackend: newHTTPBackend(baseURL, opts)}
}

// PutSecret implements SecretStore.
func (s *HTTPSecretStore) PutSecret(ctx context.Context, id string, blob []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, s.base+"/blob/"+id, bytes.NewReader(blob))
	if err != nil {
		return err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return fmt.Errorf("p3: storing secret part: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return statusError(resp, "blob store returned")
	}
	drainBody(resp.Body)
	return nil
}

// GetSecret implements SecretStore.
func (s *HTTPSecretStore) GetSecret(ctx context.Context, id string) ([]byte, error) {
	return s.get(ctx, s.base+"/blob/"+id, "secret part")
}
