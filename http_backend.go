package p3

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// DefaultHTTPTimeout bounds every PSP and blob-store request made by the
// bundled HTTP backends unless WithHTTPClient or WithHTTPTimeout overrides
// it. (The legacy proxy shared http.DefaultClient, which has no timeout at
// all — a hung PSP hung the proxy.)
const DefaultHTTPTimeout = 30 * time.Second

// maxResponseBytes caps PSP and blob-store response bodies.
const maxResponseBytes = 64 << 20

// errorBodySnippetLen bounds how much of an error response body gets quoted
// in the returned error: enough for the backend's message, never a page of
// HTML.
const errorBodySnippetLen = 256

// maxDrainBytes bounds how much of an unread body drainBody will consume to
// keep the connection reusable; a longer remainder is cheaper to close.
const maxDrainBytes = 1 << 18

// statusError turns a non-2xx response into an error carrying a bounded
// snippet of the body, then drains the remainder so the keep-alive
// connection returns to the pool instead of being torn down.
func statusError(resp *http.Response, what string) error {
	snippet, _ := io.ReadAll(io.LimitReader(resp.Body, errorBodySnippetLen))
	drainBody(resp.Body)
	if msg := strings.TrimSpace(string(snippet)); msg != "" {
		return fmt.Errorf("p3: %s: %s: %s", what, resp.Status, msg)
	}
	return fmt.Errorf("p3: %s: %s", what, resp.Status)
}

// drainBody consumes (a bounded amount of) the remaining body. The caller
// still closes the body; draining first is what lets net/http reuse the
// connection.
func drainBody(body io.Reader) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, maxDrainBytes))
}

// HTTPOption configures the bundled HTTP backends.
type HTTPOption func(*httpBackend)

// WithHTTPClient supplies the *http.Client the backend uses, replacing the
// built-in client and its DefaultHTTPTimeout.
func WithHTTPClient(c *http.Client) HTTPOption {
	return func(b *httpBackend) { b.client = c }
}

// WithHTTPTimeout sets the per-request timeout of the built-in client. It is
// ignored when WithHTTPClient is also given.
func WithHTTPTimeout(d time.Duration) HTTPOption {
	return func(b *httpBackend) { b.timeout = d }
}

// httpBackend is the shared base of the two HTTP backends.
type httpBackend struct {
	base    string
	client  *http.Client
	timeout time.Duration
}

func newHTTPBackend(baseURL string, opts []HTTPOption) httpBackend {
	b := httpBackend{base: strings.TrimRight(baseURL, "/"), timeout: DefaultHTTPTimeout}
	for _, opt := range opts {
		opt(&b)
	}
	if b.client == nil {
		b.client = &http.Client{Timeout: b.timeout}
	}
	return b
}

// get fetches url. A 404 response is reported as notFound (a typed
// *NotFoundError from the callers) so the proxy can distinguish a missing
// object from a broken backend.
func (b *httpBackend) get(ctx context.Context, url, what string, notFound error) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("p3: fetching %s: %w", what, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound && notFound != nil {
		drainBody(resp.Body)
		return nil, notFound
	}
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp, what+" backend returned")
	}
	return io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
}

// del issues a DELETE to url; 404 counts as success (already gone).
func (b *httpBackend) del(ctx context.Context, url, what string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, url, nil)
	if err != nil {
		return err
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return fmt.Errorf("p3: deleting %s: %w", what, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 && resp.StatusCode != http.StatusNotFound {
		return statusError(resp, what+" backend returned")
	}
	drainBody(resp.Body)
	return nil
}

// HTTPPhotoService is a PhotoService speaking the PSP wire API:
//
//	POST {base}/upload              body: JPEG → {"id": "..."}
//	GET  {base}/photo/{id}?size=…&w=…&h=…&crop=…
type HTTPPhotoService struct {
	httpBackend
}

// NewHTTPPhotoService builds a PhotoService client for the PSP at baseURL.
func NewHTTPPhotoService(baseURL string, opts ...HTTPOption) *HTTPPhotoService {
	return &HTTPPhotoService{httpBackend: newHTTPBackend(baseURL, opts)}
}

// UploadPhoto implements PhotoService.
func (s *HTTPPhotoService) UploadPhoto(ctx context.Context, jpegBytes []byte) (string, error) {
	id, _, _, err := s.UploadPhotoWithDims(ctx, jpegBytes)
	return id, err
}

// UploadPhotoWithDims implements UploadDimsService: PSPs that include the
// stored dimensions in their upload response ({"id": ..., "w": ..., "h":
// ...}) report them; w/h of 0 mean the PSP did not.
func (s *HTTPPhotoService) UploadPhotoWithDims(ctx context.Context, jpegBytes []byte) (string, int, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.base+"/upload", bytes.NewReader(jpegBytes))
	if err != nil {
		return "", 0, 0, err
	}
	req.Header.Set("Content-Type", "image/jpeg")
	resp, err := s.client.Do(req)
	if err != nil {
		return "", 0, 0, fmt.Errorf("p3: uploading to PSP: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", 0, 0, statusError(resp, "PSP rejected upload")
	}
	var out struct {
		ID string `json:"id"`
		W  int    `json:"w"`
		H  int    `json:"h"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxResponseBytes)).Decode(&out); err != nil {
		return "", 0, 0, fmt.Errorf("p3: parsing PSP response: %w", err)
	}
	drainBody(resp.Body) // the decoder stops at the JSON value's end
	if out.ID == "" {
		return "", 0, 0, fmt.Errorf("p3: PSP returned empty photo ID")
	}
	return out.ID, out.W, out.H, nil
}

// FetchPhoto implements PhotoService. The ID is path-escaped: PSP-assigned
// IDs are opaque, and an ID like "a/../b" pasted into the URL raw would
// address an arbitrary path on the backend instead of the photo namespace.
func (s *HTTPPhotoService) FetchPhoto(ctx context.Context, id string, v PhotoVariant) ([]byte, error) {
	u := s.base + "/photo/" + url.PathEscape(id)
	if enc := v.Query().Encode(); enc != "" {
		u += "?" + enc
	}
	return s.get(ctx, u, "public part", &NotFoundError{Kind: "photo", ID: id})
}

// DeletePhoto implements PhotoDeleter (DELETE {base}/photo/{id}).
func (s *HTTPPhotoService) DeletePhoto(ctx context.Context, id string) error {
	return s.del(ctx, s.base+"/photo/"+url.PathEscape(id), "photo")
}

// HTTPSecretStore is a SecretStore speaking the blob-store wire API:
//
//	PUT {base}/blob/{id}   body: sealed blob
//	GET {base}/blob/{id}
type HTTPSecretStore struct {
	httpBackend
}

// NewHTTPSecretStore builds a SecretStore client for the store at baseURL.
func NewHTTPSecretStore(baseURL string, opts ...HTTPOption) *HTTPSecretStore {
	return &HTTPSecretStore{httpBackend: newHTTPBackend(baseURL, opts)}
}

// PutSecret implements SecretStore. Like FetchPhoto, the PSP-assigned ID is
// path-escaped so it always lands inside the /blob/ namespace.
func (s *HTTPSecretStore) PutSecret(ctx context.Context, id string, blob []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, s.base+"/blob/"+url.PathEscape(id), bytes.NewReader(blob))
	if err != nil {
		return err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return fmt.Errorf("p3: storing secret part: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return statusError(resp, "blob store returned")
	}
	drainBody(resp.Body)
	return nil
}

// GetSecret implements SecretStore.
func (s *HTTPSecretStore) GetSecret(ctx context.Context, id string) ([]byte, error) {
	return s.get(ctx, s.base+"/blob/"+url.PathEscape(id), "secret part", &NotFoundError{Kind: "secret", ID: id})
}

// DeleteSecret implements SecretDeleter (DELETE {base}/blob/{id}).
func (s *HTTPSecretStore) DeleteSecret(ctx context.Context, id string) error {
	return s.del(ctx, s.base+"/blob/"+url.PathEscape(id), "secret part")
}
