package p3

import (
	"fmt"
	"runtime"
)

// DefaultThreshold is the paper's recommended splitting threshold (§5.2.1:
// the knee of the size/privacy trade-off lies at T in 15–20).
const DefaultThreshold = 15

// MaxThreshold bounds the splitting threshold: AC coefficients of an 8-bit
// baseline JPEG lie in [-1023, 1023].
const MaxThreshold = 1023

// ThresholdError reports a splitting threshold outside [1, MaxThreshold].
// Unlike the legacy Options struct, where 0 silently meant DefaultThreshold,
// WithThreshold treats every value literally and rejects invalid ones.
type ThresholdError struct {
	Threshold int
}

// Error implements the error interface.
func (e *ThresholdError) Error() string {
	return fmt.Sprintf("threshold %d out of range [1, %d]", e.Threshold, MaxThreshold)
}

// MaxParallelism bounds WithParallelism: a sanity cap well above any
// machine the codec targets, so a unit mix-up (e.g. passing a byte count)
// fails loudly instead of spawning a goroutine horde.
const MaxParallelism = 1024

// ParallelismError reports a WithParallelism value outside
// [1, MaxParallelism].
type ParallelismError struct {
	Parallelism int
}

// Error implements the error interface.
func (e *ParallelismError) Error() string {
	return fmt.Sprintf("parallelism %d out of range [1, %d]", e.Parallelism, MaxParallelism)
}

// config is the resolved Codec configuration built by New from its Options.
type config struct {
	threshold       int
	optimizeHuffman bool
	parallelism     int
}

func defaultConfig() config {
	par := runtime.GOMAXPROCS(0)
	if par > MaxParallelism {
		par = MaxParallelism
	}
	return config{threshold: DefaultThreshold, optimizeHuffman: true, parallelism: par}
}

// Option configures a Codec at construction time.
type Option func(*config) error

// WithThreshold sets the AC clipping threshold T. Lower values move more
// signal into the secret part (more privacy, larger secret); higher values
// shrink the secret part. Values outside [1, MaxThreshold] — including 0,
// which the deprecated Options struct conflated with "unset" — return a
// *ThresholdError from New.
func WithThreshold(t int) Option {
	return func(c *config) error {
		if t < 1 || t > MaxThreshold {
			return &ThresholdError{Threshold: t}
		}
		c.threshold = t
		return nil
	}
}

// WithParallelism sets how many cores one photo may occupy: the codec's
// decode → split/recombine → encode pipeline fans its band work items out on
// a bounded worker pool of this size, shared across all concurrent calls on
// the Codec. The default is runtime.GOMAXPROCS(0); 1 disables the pool and
// runs every stage sequentially. Outputs are byte-identical at every
// parallelism level. Values outside [1, MaxParallelism] return a
// *ParallelismError from New.
func WithParallelism(n int) Option {
	return func(c *config) error {
		if n < 1 || n > MaxParallelism {
			return &ParallelismError{Parallelism: n}
		}
		c.parallelism = n
		return nil
	}
}

// WithHuffmanOptimization toggles re-deriving entropy tables for the two
// parts. The split shrinks coefficient entropy in both parts (§3.4), so
// optimized tables recover most of the split's storage overhead; it is on by
// default and only worth disabling to trade bytes for encode speed.
func WithHuffmanOptimization(on bool) Option {
	return func(c *config) error {
		c.optimizeHuffman = on
		return nil
	}
}
