package p3

import "fmt"

// DefaultThreshold is the paper's recommended splitting threshold (§5.2.1:
// the knee of the size/privacy trade-off lies at T in 15–20).
const DefaultThreshold = 15

// MaxThreshold bounds the splitting threshold: AC coefficients of an 8-bit
// baseline JPEG lie in [-1023, 1023].
const MaxThreshold = 1023

// ThresholdError reports a splitting threshold outside [1, MaxThreshold].
// Unlike the legacy Options struct, where 0 silently meant DefaultThreshold,
// WithThreshold treats every value literally and rejects invalid ones.
type ThresholdError struct {
	Threshold int
}

func (e *ThresholdError) Error() string {
	return fmt.Sprintf("threshold %d out of range [1, %d]", e.Threshold, MaxThreshold)
}

// config is the resolved Codec configuration built by New from its Options.
type config struct {
	threshold       int
	optimizeHuffman bool
}

func defaultConfig() config {
	return config{threshold: DefaultThreshold, optimizeHuffman: true}
}

// Option configures a Codec at construction time.
type Option func(*config) error

// WithThreshold sets the AC clipping threshold T. Lower values move more
// signal into the secret part (more privacy, larger secret); higher values
// shrink the secret part. Values outside [1, MaxThreshold] — including 0,
// which the deprecated Options struct conflated with "unset" — return a
// *ThresholdError from New.
func WithThreshold(t int) Option {
	return func(c *config) error {
		if t < 1 || t > MaxThreshold {
			return &ThresholdError{Threshold: t}
		}
		c.threshold = t
		return nil
	}
}

// WithHuffmanOptimization toggles re-deriving entropy tables for the two
// parts. The split shrinks coefficient entropy in both parts (§3.4), so
// optimized tables recover most of the split's storage overhead; it is on by
// default and only worth disabling to trade bytes for encode speed.
func WithHuffmanOptimization(on bool) Option {
	return func(c *config) error {
		c.optimizeHuffman = on
		return nil
	}
}
