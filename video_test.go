package p3_test

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"p3"
	"p3/internal/core"
)

// testClipBytes synthesizes a small P3MJ clip of independently coded JPEG
// frames (a panning camera over one synthetic scene).
func testClipBytes(t *testing.T, frames int) []byte {
	t.Helper()
	jpegs := make([][]byte, frames)
	for i := range jpegs {
		jpegs[i] = examplePhoto(int64(100+i), 96, 64)
	}
	clip, err := p3.PackMJPEG(jpegs)
	if err != nil {
		t.Fatal(err)
	}
	return clip
}

// TestSplitVideoParallelMatchesSequentialSplit is the acceptance check for
// the video tentpole: the frame-parallel SplitVideo must be byte-identical
// to splitting each frame sequentially through the photo path — public
// frames AND (unsealed) secret frames — and the parallel whole-clip join
// must be byte-identical to per-frame photo joins.
func TestSplitVideoParallelMatchesSequentialSplit(t *testing.T) {
	key, err := p3.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	par, err := p3.New(key, p3.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := p3.New(key, p3.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	clip := testClipBytes(t, 5)
	frames, err := p3.UnpackMJPEG(clip)
	if err != nil {
		t.Fatal(err)
	}

	split, err := par.SplitVideoBytes(clip)
	if err != nil {
		t.Fatal(err)
	}
	if split.Frames != len(frames) {
		t.Fatalf("split reports %d frames, clip has %d", split.Frames, len(frames))
	}
	pubFrames, err := p3.UnpackMJPEG(split.PublicMJPEG)
	if err != nil {
		t.Fatal(err)
	}
	_, secStream, err := core.OpenSecret(core.Key(key), split.SecretBlob)
	if err != nil {
		t.Fatal(err)
	}
	secFrames, err := p3.UnpackMJPEG(secStream)
	if err != nil {
		t.Fatal(err)
	}

	for i, frame := range frames {
		ref, err := seq.SplitBytes(frame)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pubFrames[i], ref.PublicJPEG) {
			t.Errorf("public frame %d differs from sequential photo split", i)
		}
		_, refSec, err := core.OpenSecret(core.Key(key), ref.SecretBlob)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(secFrames[i], refSec) {
			t.Errorf("secret frame %d differs from sequential photo split", i)
		}
	}

	// The parallel whole-clip join equals per-frame photo joins.
	joined, err := par.JoinVideoBytes(split.PublicMJPEG, split.SecretBlob)
	if err != nil {
		t.Fatal(err)
	}
	joinedFrames, err := p3.UnpackMJPEG(joined)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frames {
		ref, err := seq.SplitBytes(frames[i])
		if err != nil {
			t.Fatal(err)
		}
		refJoin, err := seq.JoinBytes(ref.PublicJPEG, ref.SecretBlob)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(joinedFrames[i], refJoin) {
			t.Errorf("joined frame %d differs from sequential photo join", i)
		}
		// The frame seek agrees with the whole-clip join.
		seek, err := par.JoinVideoFrame(split.PublicMJPEG, split.SecretBlob, i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seek, joinedFrames[i]) {
			t.Errorf("JoinVideoFrame(%d) differs from whole-clip join", i)
		}
	}
}

// TestVideoRoundTripConcurrent hammers the video path from several
// goroutines sharing one Codec (run under -race in CI).
func TestVideoRoundTripConcurrent(t *testing.T) {
	key, _ := p3.NewKey()
	codec, err := p3.New(key)
	if err != nil {
		t.Fatal(err)
	}
	clip := testClipBytes(t, 3)
	want, err := codec.SplitVideoBytes(clip)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 3; n++ {
				got, err := codec.SplitVideoBytes(clip)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got.PublicMJPEG, want.PublicMJPEG) {
					t.Error("concurrent split produced different public clip")
					return
				}
				if _, err := codec.JoinVideoBytes(got.PublicMJPEG, got.SecretBlob); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestVideoStreamingAndContext covers the io.Reader/io.Writer forms and
// context cancellation.
func TestVideoStreamingAndContext(t *testing.T) {
	key, _ := p3.NewKey()
	codec, err := p3.New(key)
	if err != nil {
		t.Fatal(err)
	}
	clip := testClipBytes(t, 2)

	split, err := codec.SplitVideo(context.Background(), bytes.NewReader(clip))
	if err != nil {
		t.Fatal(err)
	}
	var joined bytes.Buffer
	err = codec.JoinVideo(context.Background(),
		bytes.NewReader(split.PublicMJPEG), bytes.NewReader(split.SecretBlob), &joined)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := p3.MJPEGFrameCount(joined.Bytes()); err != nil || n != 2 {
		t.Fatalf("joined clip has %d frames, %v", n, err)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := codec.SplitVideo(canceled, bytes.NewReader(clip)); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled split: got %v", err)
	}
	if err := codec.JoinVideo(canceled, bytes.NewReader(split.PublicMJPEG),
		bytes.NewReader(split.SecretBlob), &bytes.Buffer{}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled join: got %v", err)
	}
}

// TestVideoTypedErrors checks the public error contract: malformed
// containers are *VideoFormatError, bad seeks are *FrameRangeError, and a
// wrong key fails authentication with ErrAuth.
func TestVideoTypedErrors(t *testing.T) {
	key, _ := p3.NewKey()
	codec, err := p3.New(key)
	if err != nil {
		t.Fatal(err)
	}
	var fe *p3.VideoFormatError
	if _, err := codec.SplitVideoBytes([]byte("not a clip")); !errors.As(err, &fe) {
		t.Errorf("garbage clip: want *VideoFormatError, got %v", err)
	}
	if _, err := p3.UnpackMJPEG([]byte("P3MJ\xff\xff\xff\xff")); !errors.As(err, &fe) {
		t.Errorf("hostile header: want *VideoFormatError, got %v", err)
	}
	if _, err := p3.PackMJPEG(nil); !errors.As(err, &fe) {
		t.Errorf("empty pack: want *VideoFormatError, got %v", err)
	}

	clip := testClipBytes(t, 2)
	split, err := codec.SplitVideoBytes(clip)
	if err != nil {
		t.Fatal(err)
	}
	var re *p3.FrameRangeError
	if _, err := codec.JoinVideoFrame(split.PublicMJPEG, split.SecretBlob, 7); !errors.As(err, &re) {
		t.Errorf("bad seek: want *FrameRangeError, got %v", err)
	}

	otherKey, _ := p3.NewKey()
	other, err := p3.New(otherKey)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.JoinVideoBytes(split.PublicMJPEG, split.SecretBlob); !errors.Is(err, p3.ErrAuth) {
		t.Errorf("wrong key: want ErrAuth, got %v", err)
	}
}
