package p3_test

// Proxy serving-path benchmarks: the hot/cold download pair tracks what the
// bounded variant cache buys on repeat views of one photo versus a full
// fetch + reconstruct + encode. External test package: the proxy imports
// p3, so these cannot live in package p3 itself.

import (
	"bytes"
	"context"
	"net/url"
	"testing"

	"p3"
	"p3/internal/dataset"
	"p3/internal/jpegx"
	"p3/internal/proxy"
	"p3/internal/psp"
)

// benchPhotos adapts the in-process PSP to p3.PhotoService so the
// benchmark measures proxy work, not HTTP framing.
type benchPhotos struct{ s *psp.Server }

func (m benchPhotos) UploadPhoto(_ context.Context, jpegBytes []byte) (string, error) {
	return m.s.Upload(jpegBytes)
}

func (m benchPhotos) FetchPhoto(_ context.Context, id string, v p3.PhotoVariant) ([]byte, error) {
	q := v.Query()
	return m.s.Photo(id, q.Get("size"), q.Get("crop"), q.Get("w"), q.Get("h"))
}

func newBenchProxy(b *testing.B) (*proxy.Proxy, string) {
	b.Helper()
	ctx := context.Background()
	key, err := p3.NewKey()
	if err != nil {
		b.Fatal(err)
	}
	codec, err := p3.New(key)
	if err != nil {
		b.Fatal(err)
	}
	p := proxy.New(codec, benchPhotos{s: psp.NewServer(psp.FlickrLike())}, p3.NewMemorySecretStore())
	if _, err := p.Calibrate(ctx); err != nil {
		b.Fatal(err)
	}
	img := dataset.Natural(77, 320, 240)
	coeffs, err := img.ToCoeffs(92, jpegx.Sub420)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&buf, coeffs, nil); err != nil {
		b.Fatal(err)
	}
	id, err := p.Upload(ctx, buf.Bytes())
	if err != nil {
		b.Fatal(err)
	}
	return p, id
}

// BenchmarkProxy_DownloadCold is the miss path: every iteration starts with
// empty caches and pays fetch + decrypt + reconstruct + encode.
func BenchmarkProxy_DownloadCold(b *testing.B) {
	p, id := newBenchProxy(b)
	ctx := context.Background()
	q := url.Values{"size": {"small"}}
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.InvalidateCaches()
		out, err := p.Download(ctx, id, q)
		if err != nil {
			b.Fatal(err)
		}
		n = len(out)
	}
	b.SetBytes(int64(n))
}

// BenchmarkProxy_DownloadHot is the hit path: the variant cache serves the
// reconstructed bytes directly.
func BenchmarkProxy_DownloadHot(b *testing.B) {
	p, id := newBenchProxy(b)
	ctx := context.Background()
	q := url.Values{"size": {"small"}}
	out, err := p.Download(ctx, id, q) // prime the variant cache
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(out)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Download(ctx, id, q); err != nil {
			b.Fatal(err)
		}
	}
}
