package p3

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"p3/internal/video"
)

// Video support (paper §4.2): P3 extends to video by protecting
// intra-coded frames. The substrate here is a Motion-JPEG clip — every
// frame an independently coded JPEG — carried in the P3MJ container
// (magic "P3MJ", big-endian frame count, length-prefixed frames; build one
// with PackMJPEG). SplitVideo splits every frame, producing a public clip
// that is itself a valid P3MJ stream of ordinary (degraded) JPEGs and ONE
// sealed container holding all frames' secret parts, so a recipient makes
// a single blob-store round trip per clip. JoinVideo reverses it exactly;
// JoinVideoFrame seeks one frame without joining the clip.

// VideoSplitResult carries the two parts of a split video clip.
type VideoSplitResult struct {
	// PublicMJPEG is the public clip: a valid P3MJ stream whose frames are
	// standards-compliant (degraded) JPEGs, safe to hand to an untrusted
	// provider that transcodes or thumbnails them.
	PublicMJPEG []byte

	// SecretBlob is the single encrypted container holding every frame's
	// secret part (AES-encrypted and MACed, like the photo SecretBlob).
	SecretBlob []byte

	// Frames is the clip's frame count.
	Frames int

	// Threshold echoes the T used.
	Threshold int

	// SecretStreamLen is the size of the secret stream before encryption,
	// for storage-overhead accounting.
	SecretStreamLen int
}

// VideoFormatError reports a malformed P3MJ container: bad magic, a frame
// count or frame length larger than the input that claims it, truncation,
// or trailing garbage. Header fields are validated against the bytes
// actually present before anything is allocated, so hostile headers fail
// fast instead of forcing huge allocations.
type VideoFormatError struct {
	// Frame is the frame index at which the problem was detected, or -1
	// for errors in the stream header.
	Frame int
	// Reason describes the problem.
	Reason string
}

// Error implements the error interface.
func (e *VideoFormatError) Error() string {
	if e.Frame < 0 {
		return "p3: bad video stream: " + e.Reason
	}
	return fmt.Sprintf("p3: bad video stream: frame %d: %s", e.Frame, e.Reason)
}

// FrameRangeError reports a frame index outside a clip's frame count
// (from JoinVideoFrame or a frame-addressed proxy download).
type FrameRangeError struct {
	Frame  int // the requested index
	Frames int // how many frames the clip holds
}

// Error implements the error interface.
func (e *FrameRangeError) Error() string {
	return fmt.Sprintf("p3: video frame %d out of range [0,%d)", e.Frame, e.Frames)
}

// wrapVideoErr converts internal/video's typed errors into their public
// equivalents so no exported behavior depends on an internal type.
func wrapVideoErr(err error) error {
	if err == nil {
		return nil
	}
	var fe *video.FormatError
	if errors.As(err, &fe) {
		return &VideoFormatError{Frame: fe.Frame, Reason: fe.Reason}
	}
	var re *video.FrameRangeError
	if errors.As(err, &re) {
		return &FrameRangeError{Frame: re.Frame, Frames: re.Frames}
	}
	return err
}

// PackMJPEG serializes JPEG frames into a P3MJ clip, the container
// SplitVideo consumes. Frames must be non-empty; they are not inspected
// beyond that (any independently decodable JPEGs work).
func PackMJPEG(frames [][]byte) ([]byte, error) {
	s := &video.Stream{Frames: frames}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		return nil, wrapVideoErr(err)
	}
	return buf.Bytes(), nil
}

// UnpackMJPEG parses a P3MJ clip into its JPEG frames. The returned slices
// alias stream; copy them if stream will be reused. Malformed containers
// return a *VideoFormatError.
func UnpackMJPEG(stream []byte) ([][]byte, error) {
	s, err := video.Parse(stream)
	if err != nil {
		return nil, wrapVideoErr(err)
	}
	return s.Frames, nil
}

// MJPEGFrameCount validates a P3MJ clip and reports its frame count.
func MJPEGFrameCount(stream []byte) (int, error) {
	n, err := video.FrameCount(stream)
	return n, wrapVideoErr(err)
}

// SplitVideo reads a P3MJ clip from r and splits every frame with P3: the
// result is a public clip of degraded JPEGs and one sealed container
// holding all frames' secret parts. Frames are split concurrently on the
// Codec's worker pool (WithParallelism) with per-frame scratch recycled
// across workers, so a long clip costs roughly frame-parallel wall time;
// output bytes are identical at every parallelism level.
func (c *Codec) SplitVideo(ctx context.Context, r io.Reader) (*VideoSplitResult, error) {
	s := c.getScratch()
	defer c.putScratch(s)
	s.in.Reset()
	if _, err := s.in.ReadFrom(r); err != nil {
		return nil, fmt.Errorf("p3: reading video input: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.splitVideoBytes(s.in.Bytes())
}

// SplitVideoBytes is SplitVideo for an in-memory clip.
func (c *Codec) SplitVideoBytes(streamBytes []byte) (*VideoSplitResult, error) {
	return c.splitVideoBytes(streamBytes)
}

func (c *Codec) splitVideoBytes(streamBytes []byte) (*VideoSplitResult, error) {
	defer observeSince(splitVideoSeconds, time.Now())
	out, err := video.SplitStream(streamBytes, c.key, c.coreOptions())
	if err != nil {
		return nil, wrapVideoErr(err)
	}
	return &VideoSplitResult{
		PublicMJPEG:     out.PublicStream,
		SecretBlob:      out.SecretBlob,
		Frames:          out.Frames,
		Threshold:       out.Threshold,
		SecretStreamLen: out.SecretStreamLen,
	}, nil
}

// JoinVideo reads an *unprocessed* public clip and the sealed secret
// container and writes the reconstructed P3MJ clip to w. Every frame is
// recombined exactly in the coefficient domain, concurrently on the
// Codec's worker pool; the output decodes to pixels identical to the
// original clip's.
func (c *Codec) JoinVideo(ctx context.Context, public, secret io.Reader, w io.Writer) error {
	s := c.getScratch()
	defer c.putScratch(s)
	s.pub.Reset()
	if _, err := s.pub.ReadFrom(public); err != nil {
		return fmt.Errorf("p3: reading public clip: %w", err)
	}
	s.sec.Reset()
	if _, err := s.sec.ReadFrom(secret); err != nil {
		return fmt.Errorf("p3: reading secret part: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	joined, err := c.joinVideoBytes(s.pub.Bytes(), s.sec.Bytes())
	if err != nil {
		return err
	}
	_, err = w.Write(joined)
	return err
}

// JoinVideoBytes is JoinVideo for in-memory parts, returning the
// reconstructed P3MJ clip.
func (c *Codec) JoinVideoBytes(publicMJPEG, secretBlob []byte) ([]byte, error) {
	return c.joinVideoBytes(publicMJPEG, secretBlob)
}

func (c *Codec) joinVideoBytes(publicMJPEG, secretBlob []byte) ([]byte, error) {
	defer observeSince(joinVideoSeconds, time.Now())
	joined, err := video.JoinStream(publicMJPEG, secretBlob, c.key, c.coreOptions())
	if err != nil {
		return nil, wrapVideoErr(err)
	}
	return joined, nil
}

// JoinVideoFrame reconstructs a single frame of a split clip — the frame
// seek of the serving path. It costs one container unseal plus one frame's
// decode → recombine → encode instead of a whole-clip join, and returns
// the frame as a standalone JPEG. An index outside the clip returns a
// *FrameRangeError.
func (c *Codec) JoinVideoFrame(publicMJPEG, secretBlob []byte, frame int) ([]byte, error) {
	defer observeSince(joinVideoFrameSeconds, time.Now())
	b, err := video.JoinFrame(publicMJPEG, secretBlob, c.key, frame, c.coreOptions())
	if err != nil {
		return nil, wrapVideoErr(err)
	}
	return b, nil
}
