package p3

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// flakyStore is a race-safe kill switch around a SecretStore for erasure
// tests: the erasure store's GetSecret returns before all fetch goroutines
// finish, so the switch must be an atomic, and the optional extensions the
// scrubber relies on must be forwarded explicitly.
type flakyStore struct {
	inner SecretStore
	down  atomic.Bool
}

func (f *flakyStore) PutSecret(ctx context.Context, id string, blob []byte) error {
	if f.down.Load() {
		return errors.New("shard down")
	}
	return f.inner.PutSecret(ctx, id, blob)
}

func (f *flakyStore) GetSecret(ctx context.Context, id string) ([]byte, error) {
	if f.down.Load() {
		return nil, errors.New("shard down")
	}
	return f.inner.GetSecret(ctx, id)
}

func (f *flakyStore) DeleteSecret(ctx context.Context, id string) error {
	if f.down.Load() {
		return errors.New("shard down")
	}
	if d, ok := f.inner.(SecretDeleter); ok {
		return d.DeleteSecret(ctx, id)
	}
	return nil
}

func (f *flakyStore) ListSecrets(ctx context.Context) ([]string, error) {
	if f.down.Load() {
		return nil, errors.New("shard down")
	}
	if l, ok := f.inner.(SecretLister); ok {
		return l.ListSecrets(ctx)
	}
	return nil, nil
}

// erasureCorpus writes a deterministic mixed-size corpus and returns it.
func erasureCorpus(t *testing.T, s *ErasureSecretStore, count int) map[string][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	corpus := map[string][]byte{}
	sizes := []int{0, 1, 31, 1024, 4096, 8192, 10000}
	for i := 0; i < count; i++ {
		id := fmt.Sprintf("photo%04d", i)
		blob := make([]byte, sizes[i%len(sizes)])
		rng.Read(blob)
		corpus[id] = blob
		if err := s.PutSecret(storeCtx, id, blob); err != nil {
			t.Fatalf("put %q: %v", id, err)
		}
	}
	return corpus
}

// verifyCorpus asserts every blob reads back byte-identical.
func verifyCorpus(t *testing.T, s *ErasureSecretStore, corpus map[string][]byte, when string) {
	t.Helper()
	for id, want := range corpus {
		got, err := s.GetSecret(storeCtx, id)
		if err != nil {
			t.Fatalf("%s: Get %q: %v", when, id, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: Get %q = %d bytes, want %d, not byte-identical", when, id, len(got), len(want))
		}
	}
}

func TestErasureSecretStoreRoundTripAndOverhead(t *testing.T) {
	shards := make([]SecretStore, 6)
	for i := range shards {
		shards[i] = NewMemorySecretStore()
	}
	s, err := NewErasureSecretStore(shards)
	if err != nil {
		t.Fatal(err)
	}
	corpus := erasureCorpus(t, s, 21)
	verifyCorpus(t, s, corpus, "healthy")
	if _, err := s.GetSecret(storeCtx, "absent"); !IsNotFound(err) {
		t.Errorf("missing object err = %v, want NotFoundError", err)
	}

	// Storage overhead: for the 4-of-6 scheme, stored share bytes must stay
	// within 1.6x of the logical bytes on blobs big enough to amortize the
	// per-share headers (the acceptance bound for replacing 3x replication).
	var logical, stored int
	for id, blob := range corpus {
		if len(blob) < 4096 {
			continue
		}
		logical += len(blob)
		_, placement := s.placementFor(id)
		for i := 0; i < 6; i++ {
			raw, err := shards[placement[i]].GetSecret(storeCtx, shareKey(id, i))
			if err != nil {
				t.Fatalf("share %d of %q: %v", i, id, err)
			}
			stored += len(raw)
		}
	}
	if logical == 0 {
		t.Fatal("no large blobs in corpus")
	}
	if ratio := float64(stored) / float64(logical); ratio > 1.6 {
		t.Errorf("storage overhead %.3fx > 1.6x (stored %d, logical %d)", ratio, stored, logical)
	}
}

func TestErasureSecretStoreSurvivesAnyTwoShardKills(t *testing.T) {
	backing := make([]*flakyStore, 6)
	shards := make([]SecretStore, 6)
	for i := range shards {
		backing[i] = &flakyStore{inner: NewMemorySecretStore()}
		shards[i] = backing[i]
	}
	s, err := NewErasureSecretStore(shards)
	if err != nil {
		t.Fatal(err)
	}
	corpus := erasureCorpus(t, s, 14)

	// 4-of-6 tolerates ANY two dead shards: all C(6,2) pairs, every blob
	// byte-identical.
	for a := 0; a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			backing[a].down.Store(true)
			backing[b].down.Store(true)
			verifyCorpus(t, s, corpus, fmt.Sprintf("shards %d+%d down", a, b))
			backing[a].down.Store(false)
			backing[b].down.Store(false)
		}
	}
	if s.RepairStats().DegradedReads == 0 {
		t.Error("no degraded reads counted across 15 double-shard outages")
	}
	if s.RepairStats().LostObjects != 0 {
		t.Error("lost objects counted with recoverable outages only")
	}
}

func TestErasureSecretStoreHintedHandoff(t *testing.T) {
	backing := make([]*flakyStore, 6)
	shards := make([]SecretStore, 6)
	for i := range shards {
		backing[i] = &flakyStore{inner: NewMemorySecretStore()}
		shards[i] = backing[i]
	}
	s, err := NewErasureSecretStore(shards)
	if err != nil {
		t.Fatal(err)
	}

	// Write while shard 3 is down: the write succeeds on 5/6 shards and the
	// sixth share parks as a hint.
	backing[3].down.Store(true)
	blob := bytes.Repeat([]byte("hinted"), 700)
	if err := s.PutSecret(storeCtx, "hh", blob); err != nil {
		t.Fatalf("put with one shard down: %v", err)
	}
	if st := s.RepairStats(); st.HintsParked != 1 {
		t.Fatalf("HintsParked = %d, want 1", st.HintsParked)
	}
	if got, err := s.GetSecret(storeCtx, "hh"); err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("read during outage: %v", err)
	}

	// Revive and scrub: the parked share is delivered to its home shard.
	backing[3].down.Store(false)
	rep, err := s.ScrubOnce(storeCtx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HintsDrained != 1 {
		t.Fatalf("HintsDrained = %d, want 1 (report %+v)", rep.HintsDrained, rep)
	}

	// The delivered share now carries reads: kill two OTHER shards, leaving
	// only 4 alive including shard 3 — reconstruction needs its share.
	backing[0].down.Store(true)
	backing[1].down.Store(true)
	if got, err := s.GetSecret(storeCtx, "hh"); err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("read after hint drain with two shards down: %v", err)
	}
}

func TestErasureSecretStoreDeleteTombstone(t *testing.T) {
	backing := make([]*flakyStore, 6)
	shards := make([]SecretStore, 6)
	for i := range shards {
		backing[i] = &flakyStore{inner: NewMemorySecretStore()}
		shards[i] = backing[i]
	}
	s, err := NewErasureSecretStore(shards)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutSecret(storeCtx, "gone", []byte("secret")); err != nil {
		t.Fatal(err)
	}

	// Delete while a shard sleeps through it.
	backing[2].down.Store(true)
	if err := s.DeleteSecret(storeCtx, "gone"); err != nil {
		t.Fatalf("delete with one shard down: %v", err)
	}
	backing[2].down.Store(false)

	// The revived shard still holds its stale share; the tombstones must
	// outvote it.
	if _, err := s.GetSecret(storeCtx, "gone"); !IsNotFound(err) {
		t.Fatalf("deleted object err = %v, want NotFoundError", err)
	}

	// A scrub propagates the tombstone over the stale share, so the delete
	// survives even when ONLY the revived shard is reachable.
	if _, err := s.ScrubOnce(storeCtx); err != nil {
		t.Fatal(err)
	}
	for i := range backing {
		backing[i].down.Store(i != 2)
	}
	if _, err := s.GetSecret(storeCtx, "gone"); !IsNotFound(err) {
		t.Errorf("after scrub, delete lost with only revived shard up: err = %v, want NotFoundError", err)
	}
	for i := range backing {
		backing[i].down.Store(false)
	}
}

// TestErasureSecretStoreScrubPreservesNewerSharesOverTombstone is the
// regression drill for the scrubber destroying an acknowledged write:
// delete an object (tombstones everywhere), re-put it while two shards are
// down (their shares park as hints) and lose the hints to a restart, then
// scrub while two of the shards holding the NEW shares are down. The
// tombstones are older than the surviving sub-k new shares, and the
// scrubber must leave those shares alone — overwriting them would turn a
// degraded-but-recoverable write into a permanent loss while still inside
// the n-k fault budget.
func TestErasureSecretStoreScrubPreservesNewerSharesOverTombstone(t *testing.T) {
	backing := make([]*flakyStore, 6)
	shards := make([]SecretStore, 6)
	for i := range shards {
		backing[i] = &flakyStore{inner: NewMemorySecretStore()}
		shards[i] = backing[i]
	}
	s, err := NewErasureSecretStore(shards)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutSecret(storeCtx, "re", []byte("first life")); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteSecret(storeCtx, "re"); err != nil {
		t.Fatal(err)
	}

	// Re-put while two shards sleep; their shares park as hints, which a
	// process restart then wipes.
	_, placement := s.placementFor("re")
	blob := bytes.Repeat([]byte("second life"), 200)
	backing[placement[0]].down.Store(true)
	backing[placement[1]].down.Store(true)
	if err := s.PutSecret(storeCtx, "re", blob); err != nil {
		t.Fatalf("re-put with two shards down: %v", err)
	}
	backing[placement[0]].down.Store(false)
	backing[placement[1]].down.Store(false)
	s.hints.clear()

	// Scrub while two shards holding new shares are down: the pass sees old
	// tombstones plus only 2 < k new shares, and must not touch the latter.
	backing[placement[2]].down.Store(true)
	backing[placement[3]].down.Store(true)
	if _, err := s.ScrubOnce(storeCtx); err != nil {
		t.Fatal(err)
	}
	backing[placement[2]].down.Store(false)
	backing[placement[3]].down.Store(false)

	// With every shard back, the k surviving shares reconstruct the re-put
	// blob, and a full-visibility scrub restores the two lost shares.
	if got, err := s.GetSecret(storeCtx, "re"); err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("re-put object after partial-visibility scrub: %v", err)
	}
	rep, err := s.ScrubOnce(storeCtx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SharesRepaired != 2 || rep.LostObjects != 0 {
		t.Fatalf("recovery scrub report %+v, want 2 repaired / 0 lost", rep)
	}
	backing[placement[4]].down.Store(true)
	backing[placement[5]].down.Store(true)
	if got, err := s.GetSecret(storeCtx, "re"); err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("re-put object after recovery with two shards down: %v", err)
	}
}

// TestErasureSecretStoreDeleteQuorum pins the delete durability contract:
// n-k+1 tombstones make a delete stick, fewer make it fail loudly.
func TestErasureSecretStoreDeleteQuorum(t *testing.T) {
	backing := make([]*flakyStore, 6)
	shards := make([]SecretStore, 6)
	for i := range shards {
		backing[i] = &flakyStore{inner: NewMemorySecretStore()}
		shards[i] = backing[i]
	}
	s, err := NewErasureSecretStore(shards)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutSecret(storeCtx, "q", []byte("quorum")); err != nil {
		t.Fatal(err)
	}

	// Four shards down leaves only 2 < n-k+1 = 3 reachable tombstone slots:
	// the delete must refuse to claim success.
	for i := 0; i < 4; i++ {
		backing[i].down.Store(true)
	}
	if err := s.DeleteSecret(storeCtx, "q"); err == nil {
		t.Error("delete claimed success with only 2/6 tombstones durable")
	}

	// Three down is exactly the quorum — the outer edge of the contract.
	backing[3].down.Store(false)
	if err := s.DeleteSecret(storeCtx, "q"); err != nil {
		t.Fatalf("delete with quorum reachable: %v", err)
	}
	for i := range backing {
		backing[i].down.Store(false)
	}
	if _, err := s.GetSecret(storeCtx, "q"); !IsNotFound(err) {
		t.Errorf("deleted object err = %v, want NotFoundError", err)
	}
}

// TestErasureSecretStoreConcurrentPutsSameID hammers one id from many
// goroutines: writers must serialize so the final stripe is one complete
// epoch, never an unreadable interleaving where no epoch keeps k shares.
func TestErasureSecretStoreConcurrentPutsSameID(t *testing.T) {
	shards := make([]SecretStore, 6)
	for i := range shards {
		shards[i] = NewMemorySecretStore()
	}
	s, err := NewErasureSecretStore(shards)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	blobs := make([][]byte, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		blobs[w] = bytes.Repeat([]byte{byte('a' + w)}, 2048)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := s.PutSecret(storeCtx, "race", blobs[w]); err != nil {
				t.Errorf("writer %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()

	got, err := s.GetSecret(storeCtx, "race")
	if err != nil {
		t.Fatalf("read after concurrent puts: %v", err)
	}
	winner := -1
	for w := range blobs {
		if bytes.Equal(got, blobs[w]) {
			winner = w
			break
		}
	}
	if winner < 0 {
		t.Fatalf("read returned %d bytes matching no writer's blob", len(got))
	}
	rep, err := s.ScrubOnce(storeCtx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LostObjects != 0 {
		t.Fatalf("scrub counts %d lost objects after concurrent same-id puts", rep.LostObjects)
	}
}

func TestErasureSecretStoreScrubRepairsCorruptShare(t *testing.T) {
	mems := make([]*MemorySecretStore, 6)
	shards := make([]SecretStore, 6)
	for i := range shards {
		mems[i] = NewMemorySecretStore()
		shards[i] = mems[i]
	}
	s, err := NewErasureSecretStore(shards)
	if err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte("rot"), 1500)
	if err := s.PutSecret(storeCtx, "bitrot", blob); err != nil {
		t.Fatal(err)
	}

	// Flip one byte of share 0 in place, keeping a pristine copy.
	key := shareKey("bitrot", 0)
	lay, placement := s.placementFor("bitrot")
	m := lay.shards[placement[0]].(*MemorySecretStore)
	m.mu.Lock()
	pristine := append([]byte(nil), m.blobs[key]...)
	m.blobs[key][len(m.blobs[key])/2] ^= 0x40
	m.mu.Unlock()

	// Reads survive the rotten share (checksum rejects it, parity covers).
	if got, err := s.GetSecret(storeCtx, "bitrot"); err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("read with corrupt share: %v", err)
	}

	// The scrubber detects and repairs it — byte-identical to the original,
	// because re-encoding at the same epoch is deterministic.
	rep, err := s.ScrubOnce(storeCtx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SharesCorrupt != 1 || rep.SharesRepaired != 1 {
		t.Fatalf("scrub report %+v, want 1 corrupt / 1 repaired", rep)
	}
	m.mu.RLock()
	repaired := append([]byte(nil), m.blobs[key]...)
	m.mu.RUnlock()
	if !bytes.Equal(repaired, pristine) {
		t.Error("repaired share differs from the original")
	}

	// A second pass finds nothing to do.
	rep, err = s.ScrubOnce(storeCtx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SharesMissing != 0 || rep.SharesCorrupt != 0 || rep.SharesRepaired != 0 {
		t.Errorf("second scrub not idle: %+v", rep)
	}
}

// TestErasureSecretStoreScrubRestoresWipedShard is the crash-style drill:
// a whole disk shard loses its contents mid-run; reads keep working
// through the outage and a scrub pass rebuilds the shard.
func TestErasureSecretStoreScrubRestoresWipedShard(t *testing.T) {
	dir := t.TempDir()
	backing := make([]*flakyStore, 6)
	shards := make([]SecretStore, 6)
	for i := range shards {
		disk, err := NewDiskSecretStore(filepath.Join(dir, fmt.Sprintf("shard%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		backing[i] = &flakyStore{inner: disk}
		shards[i] = backing[i]
	}
	s, err := NewErasureSecretStore(shards)
	if err != nil {
		t.Fatal(err)
	}
	corpus := erasureCorpus(t, s, 10)

	// Wipe shard 4's blobs on disk — bit-for-bit loss of one store.
	shard4 := backing[4].inner.(*DiskSecretStore)
	wiped, err := filepath.Glob(filepath.Join(shard4.Dir(), "*"+blobSuffix))
	if err != nil || len(wiped) == 0 {
		t.Fatalf("nothing to wipe on shard 4 (%v)", err)
	}
	for _, f := range wiped {
		if err := os.Remove(f); err != nil {
			t.Fatal(err)
		}
	}

	// Serving never blinks: the wiped shard just degrades reads.
	verifyCorpus(t, s, corpus, "during wipe")

	rep, err := s.ScrubOnce(storeCtx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SharesMissing != len(wiped) || rep.SharesRepaired != len(wiped) {
		t.Fatalf("scrub report %+v, want %d missing and repaired", rep, len(wiped))
	}
	if n, err := shard4.Len(); err != nil || n != len(wiped) {
		t.Fatalf("shard 4 holds %d blobs after scrub (err %v), want %d", n, err, len(wiped))
	}

	// The rebuilt shard is load-bearing again: lose two other shards.
	backing[0].down.Store(true)
	backing[1].down.Store(true)
	verifyCorpus(t, s, corpus, "after repair with two other shards down")
}

func TestErasureSecretStoreRebalance(t *testing.T) {
	old := make([]SecretStore, 6)
	for i := range old {
		old[i] = NewMemorySecretStore()
	}
	s, err := NewErasureSecretStore(old)
	if err != nil {
		t.Fatal(err)
	}
	corpus := erasureCorpus(t, s, 12)

	// Swap the last two shards for fresh stores (a planned leave + join).
	fresh := []SecretStore{NewMemorySecretStore(), NewMemorySecretStore()}
	newShards := append(append([]SecretStore{}, old[:4]...), fresh...)
	if err := s.Rebalance(storeCtx, newShards); err != nil {
		t.Fatal(err)
	}
	verifyCorpus(t, s, corpus, "after rebalance")

	// The replacement shards carry real load and the departed shards were
	// drained of their copies.
	for i, f := range fresh {
		if ids, _ := f.(*MemorySecretStore).ListSecrets(storeCtx); len(ids) == 0 {
			t.Errorf("replacement shard %d holds nothing after rebalance", i)
		}
	}
	for i := 4; i < 6; i++ {
		if ids, _ := old[i].(*MemorySecretStore).ListSecrets(storeCtx); len(ids) != 0 {
			t.Errorf("departed shard %d still holds %d shares", i, len(ids))
		}
	}
}

func TestErasureSecretStoreValidation(t *testing.T) {
	six := make([]SecretStore, 6)
	for i := range six {
		six[i] = NewMemorySecretStore()
	}
	if _, err := NewErasureSecretStore(six[:4]); err == nil {
		t.Error("4 shards accepted for a 6-share scheme")
	}
	if _, err := NewErasureSecretStore(six, WithErasureScheme(6, 6)); err == nil {
		t.Error("k == n accepted")
	}
	if _, err := NewErasureSecretStore(six, WithErasureScheme(0, 3)); err == nil {
		t.Error("k == 0 accepted")
	}
	// n >= 2k lets two epochs hold k slots each, so a first-k-wins read
	// could assemble a superseded write; such schemes must be rejected.
	if _, err := NewErasureSecretStore(six, WithErasureScheme(2, 4)); err == nil {
		t.Error("2-of-4 accepted (n = 2k)")
	}
	if _, err := NewErasureSecretStore(six, WithErasureScheme(2, 6)); err == nil {
		t.Error("2-of-6 accepted (n > 2k)")
	}
	if s, err := NewErasureSecretStore(six[:3], WithErasureScheme(2, 3)); err != nil || s == nil {
		t.Errorf("2-of-3 over 3 shards rejected: %v", err)
	}
}

func TestShareKeyRoundTrip(t *testing.T) {
	for _, id := range []string{"plain", "", "with-dash-4", "sp ace/slash\x00nul", "es1-tricky-7"} {
		for _, idx := range []int{0, 5, 254} {
			key := shareKey(id, idx)
			gotID, gotIdx, ok := parseShareKey(key)
			if !ok || gotID != id || gotIdx != idx {
				t.Errorf("parseShareKey(shareKey(%q, %d)) = %q, %d, %v", id, idx, gotID, gotIdx, ok)
			}
		}
	}
	if _, _, ok := parseShareKey("unrelated-key"); ok {
		t.Error("foreign key parsed as share key")
	}
	if _, _, ok := parseShareKey("es1-!!!-3"); ok {
		t.Error("bad base64 parsed as share key")
	}
}
