package p3

import (
	"encoding/hex"
	"fmt"
	"strings"

	"p3/internal/core"
)

// Key is the 256-bit symmetric key a sender shares out of band with the
// authorized recipients. The PSP and the blob store never see it.
type Key [32]byte

// NewKey generates a random key.
func NewKey() (Key, error) {
	k, err := core.NewKey()
	return Key(k), err
}

// ParseKey decodes a key from its hexadecimal form (as written by Key.Hex
// and by `p3 keygen`). Surrounding whitespace is ignored.
func ParseKey(s string) (Key, error) {
	var k Key
	raw, err := hex.DecodeString(strings.TrimSpace(s))
	if err != nil {
		return k, fmt.Errorf("p3: malformed key: %w", err)
	}
	if len(raw) != len(k) {
		return k, fmt.Errorf("p3: key is %d bytes, want %d", len(raw), len(k))
	}
	copy(k[:], raw)
	return k, nil
}

// Hex returns the key in the hexadecimal form ParseKey accepts.
func (k Key) Hex() string { return hex.EncodeToString(k[:]) }
