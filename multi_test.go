package p3

import (
	"bytes"
	"strings"
	"testing"

	"p3/internal/jpegx"
)

func TestSplitBatch(t *testing.T) {
	codec := newTestCodec(t, WithThreshold(12))
	var photos [][]byte
	for i, dims := range []struct{ w, h int }{{120, 90}, {64, 64}, {200, 150}} {
		jpegBytes, _ := testJPEG(t, int64(30+i), dims.w, dims.h, jpegx.Sub420)
		photos = append(photos, jpegBytes)
	}
	results, err := codec.SplitBatch(photos)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(photos) {
		t.Fatalf("%d results for %d photos", len(results), len(photos))
	}
	for i, res := range results {
		// The public part must match a standalone split byte for byte (the
		// sealed secret differs by nonce, so compare it after a round trip).
		solo, err := codec.SplitBytes(photos[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.PublicJPEG, solo.PublicJPEG) {
			t.Errorf("photo %d: batch public part differs from standalone split", i)
		}
		joined, err := codec.JoinBytes(res.PublicJPEG, res.SecretBlob)
		if err != nil {
			t.Fatalf("photo %d: join: %v", i, err)
		}
		if !bytes.Equal(joined, photos[i]) {
			// Join re-encodes; compare coefficients instead of bytes.
			want, err1 := jpegx.DecodeBytes(photos[i])
			got, err2 := jpegx.DecodeBytes(joined)
			if err1 != nil || err2 != nil {
				t.Fatalf("photo %d: decode after join: %v, %v", i, err1, err2)
			}
			if want.Width != got.Width || want.Height != got.Height {
				t.Errorf("photo %d: joined %dx%d, want %dx%d", i, got.Width, got.Height, want.Width, want.Height)
			}
		}
	}
}

func TestSplitBatchPartialFailure(t *testing.T) {
	codec := newTestCodec(t)
	good, _ := testJPEG(t, 33, 80, 60, jpegx.Sub420)
	photos := [][]byte{good, []byte("not a jpeg"), good}
	results, err := codec.SplitBatch(photos)
	if err == nil {
		t.Fatal("corrupt photo did not surface an error")
	}
	if !strings.Contains(err.Error(), "photo 1") {
		t.Errorf("error %q does not name the failing photo", err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results, want 3", len(results))
	}
	if results[1] != nil {
		t.Error("corrupt photo produced a result")
	}
	for _, i := range []int{0, 2} {
		if results[i] == nil {
			t.Fatalf("photo %d: no result despite being valid", i)
		}
		if _, err := codec.JoinBytes(results[i].PublicJPEG, results[i].SecretBlob); err != nil {
			t.Errorf("photo %d: join: %v", i, err)
		}
	}
}

// TestJoinProcessedMultiMatchesSingle pins the one-decode multi-variant path
// to the per-variant path: reconstructing N renditions in one call must be
// bit-identical to N independent JoinProcessed calls.
func TestJoinProcessedMultiMatchesSingle(t *testing.T) {
	jpegBytes, _ := testJPEG(t, 34, 240, 180, jpegx.Sub420)
	codec := newTestCodec(t, WithThreshold(15))
	split, err := codec.SplitBytes(jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	ts := []Transform{
		Resize(120, 90, FilterTriangle),
		Resize(60, 45, FilterCatmullRom),
		Blur(0.7).Then(Resize(240, 180, FilterTriangle)),
	}
	publics := make([][]byte, len(ts))
	for i, tr := range ts {
		publics[i] = fabricateServed(t, split.PublicJPEG, tr)
	}
	got, err := codec.JoinProcessedMulti(publics, split.SecretBlob, ts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ts) {
		t.Fatalf("%d images for %d transforms", len(got), len(ts))
	}
	for i, tr := range ts {
		want, err := codec.JoinProcessedBytes(publics[i], split.SecretBlob, tr)
		if err != nil {
			t.Fatal(err)
		}
		if want.Width() != got[i].Width() || want.Height() != got[i].Height() {
			t.Fatalf("variant %d: %dx%d, want %dx%d", i, got[i].Width(), got[i].Height(), want.Width(), want.Height())
		}
		for ci := range want.pix.Planes {
			for pi := range want.pix.Planes[ci] {
				if want.pix.Planes[ci][pi] != got[i].pix.Planes[ci][pi] {
					t.Fatalf("variant %d plane %d sample %d: multi %v, single %v",
						i, ci, pi, got[i].pix.Planes[ci][pi], want.pix.Planes[ci][pi])
				}
			}
		}
	}
}

func TestJoinProcessedMultiErrors(t *testing.T) {
	jpegBytes, _ := testJPEG(t, 35, 64, 64, jpegx.Sub420)
	codec := newTestCodec(t)
	split, err := codec.SplitBytes(jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codec.JoinProcessedMulti([][]byte{jpegBytes}, split.SecretBlob, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	served := fabricateServed(t, split.PublicJPEG, Gamma(2.2))
	if _, err := codec.JoinProcessedMulti([][]byte{served}, split.SecretBlob, []Transform{Gamma(2.2)}); err == nil {
		t.Error("non-linear transform accepted; it needs the remapped path")
	}
	got, err := codec.JoinProcessedMulti(nil, split.SecretBlob, nil)
	if err != nil || got != nil {
		t.Errorf("empty batch: got %v, %v; want nil, nil", got, err)
	}
}
