package p3

import (
	"time"

	"p3/internal/metrics"
)

// Codec instrumentation: every Codec in the process observes its split and
// join wall times into these process-wide histograms in the default metrics
// registry, which cmd/p3proxy serves on GET /metrics. The histograms are
// process-wide rather than per-Codec deliberately — codecs are cheap,
// pooled and often short-lived, while the question the metrics answer
// ("what does a split cost on this box?") is per-process. Observation is
// one atomic add per call, noise next to the milliseconds a split takes.
var (
	splitSeconds = metrics.Default.Histogram("p3_codec_split_seconds",
		"Wall time of Codec splits (public+secret part production).")
	joinSeconds = metrics.Default.Histogram("p3_codec_join_seconds",
		"Wall time of Codec joins of unprocessed parts.")
	joinProcessedSeconds = metrics.Default.Histogram("p3_codec_join_processed_seconds",
		"Wall time of Codec joins that reverse a provider transform.")
	splitVideoSeconds = metrics.Default.Histogram("p3_codec_split_video_seconds",
		"Wall time of Codec video splits (whole clips, all frames).")
	joinVideoSeconds = metrics.Default.Histogram("p3_codec_join_video_seconds",
		"Wall time of Codec video joins (whole clips, all frames).")
	joinVideoFrameSeconds = metrics.Default.Histogram("p3_codec_join_video_frame_seconds",
		"Wall time of Codec single-frame video seeks.")
)

// observeSince records one operation's duration; use as
// `defer observeSince(splitSeconds, time.Now())`.
func observeSince(h *metrics.Histogram, start time.Time) {
	h.Observe(time.Since(start))
}
