package p3

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ShardedSecretStore spreads sealed secret parts over N child stores with
// consistent hashing, in the spirit of RADON-style repairable multi-server
// objects: one overloaded or lost store no longer means every secret part
// is slow or gone.
//
// Each ID hashes to a point on a ring of shard virtual nodes; the blob
// lives on the next `replicas` distinct shards clockwise from that point.
// Consistent hashing means adding or removing a shard only remaps the keys
// adjacent to its ring points, not the whole keyspace.
//
// On the shards, every write is an epoch-versioned record and a deletion is
// a tombstone record written over the key, not an absence: replicas that
// diverge during an outage reconcile to the newest record on the next read
// (read-repair), and a shard that slept through a DeleteSecret can no
// longer resurrect the blob — the other replicas' tombstones outvote its
// stale copy and are repaired onto it.
//
// Writes and deletes go to every replica concurrently and succeed if at
// least one replica accepts (stragglers heal by read-repair). Reads fan out
// to all replicas concurrently — one slow or dead shard costs nothing
// extra, because latency is the fastest replica holding the newest record,
// not the sum of timeouts walking the ring.
type ShardedSecretStore struct {
	shards   []SecretStore
	replicas int
	ring     hashRing
	epochs   epochSource
	counters []shardCounters // one per shard, indexed like shards
}

// shardCounters is one shard's cumulative operation counts, maintained with
// atomics so the serving path never takes a lock for accounting.
type shardCounters struct {
	reads        atomic.Uint64
	readFailures atomic.Uint64
	readRepairs  atomic.Uint64
	puts         atomic.Uint64
	putFailures  atomic.Uint64
}

// ShardStats is a point-in-time snapshot of one shard's cumulative counts,
// exposed per shard on /metrics as p3_shard_*_total{shard="i"} (the naming
// scheme is documented in ARCHITECTURE.md).
type ShardStats struct {
	// Reads counts GetSecret attempts routed to this shard. Every GetSecret
	// consults all replicas concurrently, so one store-level read costs one
	// Read per replica.
	Reads uint64 `json:"reads"`
	// ReadFailures counts GetSecret attempts this shard failed, including
	// "not found" on a shard that should hold a replica — the degraded-read
	// signal that the replica set has diverged.
	ReadFailures uint64 `json:"read_failures"`
	// ReadRepairs counts records (blobs or tombstones) successfully written
	// back to this shard by read-repair after it was found stale or empty.
	ReadRepairs uint64 `json:"read_repairs"`
	// Puts counts record writes routed to this shard (uploads, tombstones
	// and read-repair writes alike).
	Puts uint64 `json:"puts"`
	// PutFailures counts record writes this shard failed.
	PutFailures uint64 `json:"put_failures"`
}

// ShardStats returns a snapshot of every shard's counters, indexed like the
// shard list the store was built with.
func (s *ShardedSecretStore) ShardStats() []ShardStats {
	out := make([]ShardStats, len(s.counters))
	for i := range s.counters {
		c := &s.counters[i]
		out[i] = ShardStats{
			Reads:        c.reads.Load(),
			ReadFailures: c.readFailures.Load(),
			ReadRepairs:  c.readRepairs.Load(),
			Puts:         c.puts.Load(),
			PutFailures:  c.putFailures.Load(),
		}
	}
	return out
}

// ShardOption configures a ShardedSecretStore.
type ShardOption func(*ShardedSecretStore)

// WithShardReplicas stores each blob on n distinct shards (default 1;
// capped at the shard count by NewShardedSecretStore's validation).
func WithShardReplicas(n int) ShardOption {
	return func(s *ShardedSecretStore) { s.replicas = n }
}

// NewShardedSecretStore builds a store over the given child stores. It
// needs at least one shard, and the replica count must fit in the shard
// count.
func NewShardedSecretStore(shards []SecretStore, opts ...ShardOption) (*ShardedSecretStore, error) {
	if len(shards) == 0 {
		return nil, errors.New("p3: sharded store needs at least one shard")
	}
	s := &ShardedSecretStore{shards: shards, replicas: 1, counters: make([]shardCounters, len(shards))}
	for _, opt := range opts {
		opt(s)
	}
	if s.replicas < 1 || s.replicas > len(shards) {
		return nil, fmt.Errorf("p3: replica count %d outside [1, %d shards]", s.replicas, len(shards))
	}
	s.ring = newHashRing(len(shards))
	return s, nil
}

// replicasFor returns the `replicas` distinct shard indices responsible for
// id, in ring (preference) order.
func (s *ShardedSecretStore) replicasFor(id string) []int {
	return s.ring.placements(id, s.replicas)
}

// writeRecord writes one record to every replica concurrently with
// per-replica error capture, succeeding if at least one replica accepts it.
// A slow shard no longer serializes the write — wall time is the slowest
// replica, not the sum — and missing replicas converge by read-repair.
func (s *ShardedSecretStore) writeRecord(ctx context.Context, id string, rec []byte, verb string) error {
	replicas := s.replicasFor(id)
	errs := make([]error, len(replicas))
	var wg sync.WaitGroup
	for i, shard := range replicas {
		wg.Add(1)
		go func(i, shard int) {
			defer wg.Done()
			s.counters[shard].puts.Add(1)
			if err := s.shards[shard].PutSecret(ctx, id, rec); err != nil {
				s.counters[shard].putFailures.Add(1)
				errs[i] = fmt.Errorf("shard %d: %w", shard, err)
			}
		}(i, shard)
	}
	wg.Wait()
	for _, err := range errs {
		if err == nil {
			return nil
		}
	}
	return fmt.Errorf("p3: sharded store: all %d replicas failed %s %q: %w",
		len(replicas), verb, id, errors.Join(errs...))
}

// PutSecret implements SecretStore: the blob is enveloped with a fresh
// write epoch and written to every replica concurrently; the write succeeds
// if at least one replica holds it.
func (s *ShardedSecretStore) PutSecret(ctx context.Context, id string, blob []byte) error {
	return s.writeRecord(ctx, id, encodeRecord(recordBlob, s.epochs.next(), blob), "storing")
}

// replicaRead is one replica's answer to a concurrent GetSecret fan-out.
type replicaRead struct {
	shard   int
	kind    recordKind
	epoch   uint64
	payload []byte
	err     error // nil only when kind/epoch/payload are meaningful
	missing bool  // err is a NotFoundError
}

// GetSecret implements SecretStore. All replicas are consulted
// concurrently; the newest record wins (a tombstone at the newest epoch
// means "deleted", i.e. NotFoundError), and any replica holding an older
// record — or none — is repaired with the winner. Repair is synchronous and
// deliberate: it happens at most once per diverged blob, and a
// deterministic repair is worth one slow read far more than a
// fire-and-forget goroutine whose failure nobody observes.
func (s *ShardedSecretStore) GetSecret(ctx context.Context, id string) ([]byte, error) {
	replicas := s.replicasFor(id)
	reads := make([]replicaRead, len(replicas))
	var wg sync.WaitGroup
	for i, shard := range replicas {
		wg.Add(1)
		go func(i, shard int) {
			defer wg.Done()
			s.counters[shard].reads.Add(1)
			raw, err := s.shards[shard].GetSecret(ctx, id)
			if err != nil {
				s.counters[shard].readFailures.Add(1)
				reads[i] = replicaRead{shard: shard, err: err, missing: IsNotFound(err)}
				return
			}
			kind, epoch, payload := decodeRecord(raw)
			reads[i] = replicaRead{shard: shard, kind: kind, epoch: epoch, payload: payload}
		}(i, shard)
	}
	wg.Wait()

	// Pick the winning record: newest epoch, tombstone on ties, replicas in
	// ring-preference order so equal records deterministically come from the
	// preferred shard.
	best := -1
	for i := range reads {
		if reads[i].err != nil {
			continue
		}
		if best < 0 || supersedes(reads[i].kind, reads[i].epoch, reads[best].kind, reads[best].epoch) {
			best = i
		}
	}
	if best < 0 {
		allMissing := true
		var errs []error
		for i := range reads {
			errs = append(errs, fmt.Errorf("shard %d: %w", reads[i].shard, reads[i].err))
			allMissing = allMissing && reads[i].missing
		}
		if allMissing {
			return nil, &NotFoundError{Kind: "secret", ID: id}
		}
		return nil, fmt.Errorf("p3: sharded store: all %d replicas failed fetching %q: %w",
			len(replicas), id, errors.Join(errs...))
	}
	win := reads[best]

	// Read-repair: every replica holding an older record — or nothing, or
	// that failed the read — gets a best-effort copy of the winner, so the
	// replica set converges (including tombstones onto shards that slept
	// through a delete).
	rec := encodeRecord(win.kind, win.epoch, win.payload)
	for i := range reads {
		r := &reads[i]
		if r.err == nil && !supersedes(win.kind, win.epoch, r.kind, r.epoch) {
			continue // already at (or beyond) the winning record
		}
		s.counters[r.shard].puts.Add(1)
		if err := s.shards[r.shard].PutSecret(ctx, id, rec); err != nil {
			s.counters[r.shard].putFailures.Add(1)
		} else {
			s.counters[r.shard].readRepairs.Add(1)
		}
	}

	if win.kind == recordTombstone {
		return nil, &NotFoundError{Kind: "secret", ID: id}
	}
	return win.payload, nil
}

// DeleteSecret implements SecretDeleter by writing an epoch-versioned
// tombstone record over the key on every replica concurrently. A replica
// that is down during the delete converges when read-repair or a later
// write propagates the tombstone — the delete is never undone by the stale
// copy it missed. Tombstones occupy a few bytes per deleted key; shards
// need not implement SecretDeleter.
func (s *ShardedSecretStore) DeleteSecret(ctx context.Context, id string) error {
	return s.writeRecord(ctx, id, encodeRecord(recordTombstone, s.epochs.next(), nil), "deleting")
}

// Shards returns the number of child stores.
func (s *ShardedSecretStore) Shards() int { return len(s.shards) }

// Replicas returns how many copies of each blob the store maintains.
func (s *ShardedSecretStore) Replicas() int { return s.replicas }
