package p3

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
)

// shardVnodes is how many points each shard contributes to the hash ring.
// More virtual nodes smooth the key distribution across shards; 64 keeps
// the per-shard load imbalance under a few percent for realistic N.
const shardVnodes = 64

// ShardedSecretStore spreads sealed secret parts over N child stores with
// consistent hashing, in the spirit of RADON-style repairable multi-server
// objects: one overloaded or lost store no longer means every secret part
// is slow or gone.
//
// Each ID hashes to a point on a ring of shard virtual nodes; the blob
// lives on the next `replicas` distinct shards clockwise from that point.
// Consistent hashing means adding or removing a shard only remaps the keys
// adjacent to its ring points, not the whole keyspace.
//
// Writes go to every replica and succeed if at least one replica accepts
// the blob (partial write failures are repaired on read). Reads try the
// replicas in ring order and, on success after earlier misses, write the
// blob back to the replicas that lacked it — read-repair — so a shard that
// was down during upload converges once it is back.
type ShardedSecretStore struct {
	shards   []SecretStore
	replicas int
	ring     []ringPoint     // sorted by hash
	counters []shardCounters // one per shard, indexed like shards
}

// shardCounters is one shard's cumulative operation counts, maintained with
// atomics so the serving path never takes a lock for accounting.
type shardCounters struct {
	reads        atomic.Uint64
	readFailures atomic.Uint64
	readRepairs  atomic.Uint64
	puts         atomic.Uint64
	putFailures  atomic.Uint64
}

// ShardStats is a point-in-time snapshot of one shard's cumulative counts,
// exposed per shard on /metrics as p3_shard_*_total{shard="i"} (the naming
// scheme is documented in ARCHITECTURE.md).
type ShardStats struct {
	// Reads counts GetSecret attempts routed to this shard, whether they
	// succeeded or fell through to the next replica.
	Reads uint64 `json:"reads"`
	// ReadFailures counts GetSecret attempts this shard failed, including
	// "not found" on a shard that should hold a replica — the degraded-read
	// signal that the replica set has diverged.
	ReadFailures uint64 `json:"read_failures"`
	// ReadRepairs counts blobs successfully written back to this shard by
	// read-repair after another replica served the read.
	ReadRepairs uint64 `json:"read_repairs"`
	// Puts counts PutSecret attempts routed to this shard (uploads and
	// read-repair writes alike).
	Puts uint64 `json:"puts"`
	// PutFailures counts PutSecret attempts this shard failed.
	PutFailures uint64 `json:"put_failures"`
}

// ShardStats returns a snapshot of every shard's counters, indexed like the
// shard list the store was built with.
func (s *ShardedSecretStore) ShardStats() []ShardStats {
	out := make([]ShardStats, len(s.counters))
	for i := range s.counters {
		c := &s.counters[i]
		out[i] = ShardStats{
			Reads:        c.reads.Load(),
			ReadFailures: c.readFailures.Load(),
			ReadRepairs:  c.readRepairs.Load(),
			Puts:         c.puts.Load(),
			PutFailures:  c.putFailures.Load(),
		}
	}
	return out
}

type ringPoint struct {
	hash  uint64
	shard int
}

// ShardOption configures a ShardedSecretStore.
type ShardOption func(*ShardedSecretStore)

// WithShardReplicas stores each blob on n distinct shards (default 1;
// capped at the shard count by NewShardedSecretStore's validation).
func WithShardReplicas(n int) ShardOption {
	return func(s *ShardedSecretStore) { s.replicas = n }
}

// NewShardedSecretStore builds a store over the given child stores. It
// needs at least one shard, and the replica count must fit in the shard
// count.
func NewShardedSecretStore(shards []SecretStore, opts ...ShardOption) (*ShardedSecretStore, error) {
	if len(shards) == 0 {
		return nil, errors.New("p3: sharded store needs at least one shard")
	}
	s := &ShardedSecretStore{shards: shards, replicas: 1, counters: make([]shardCounters, len(shards))}
	for _, opt := range opts {
		opt(s)
	}
	if s.replicas < 1 || s.replicas > len(shards) {
		return nil, fmt.Errorf("p3: replica count %d outside [1, %d shards]", s.replicas, len(shards))
	}
	s.ring = make([]ringPoint, 0, len(shards)*shardVnodes)
	for i := range shards {
		for v := 0; v < shardVnodes; v++ {
			s.ring = append(s.ring, ringPoint{hash: hash64(fmt.Sprintf("shard/%d/vnode/%d", i, v)), shard: i})
		}
	}
	sort.Slice(s.ring, func(a, b int) bool { return s.ring[a].hash < s.ring[b].hash })
	return s, nil
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the murmur3 finalizer. Raw FNV-1a barely avalanches its last few
// input bytes, so sequential PSP IDs ("p00000041", "p00000042", …) hash to
// one tiny arc of the ring and all land on one shard; the finalizer spreads
// them uniformly.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// replicasFor returns the `replicas` distinct shard indices responsible for
// id, in ring (preference) order.
func (s *ShardedSecretStore) replicasFor(id string) []int {
	h := hash64(id)
	start := sort.Search(len(s.ring), func(i int) bool { return s.ring[i].hash >= h })
	out := make([]int, 0, s.replicas)
	seen := make(map[int]bool, s.replicas)
	for i := 0; len(out) < s.replicas && i < len(s.ring); i++ {
		p := s.ring[(start+i)%len(s.ring)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}

// PutSecret implements SecretStore: the blob is written to every replica
// concurrently, and the write succeeds if at least one replica holds it
// (missing replicas heal by read-repair). Only when every replica fails is
// the combined error returned.
func (s *ShardedSecretStore) PutSecret(ctx context.Context, id string, blob []byte) error {
	replicas := s.replicasFor(id)
	errs := make([]error, len(replicas))
	var wg sync.WaitGroup
	for i, shard := range replicas {
		wg.Add(1)
		go func(i, shard int) {
			defer wg.Done()
			s.counters[shard].puts.Add(1)
			if err := s.shards[shard].PutSecret(ctx, id, blob); err != nil {
				s.counters[shard].putFailures.Add(1)
				errs[i] = fmt.Errorf("shard %d: %w", shard, err)
			}
		}(i, shard)
	}
	wg.Wait()
	for _, err := range errs {
		if err == nil {
			return nil
		}
	}
	return fmt.Errorf("p3: sharded store: all %d replicas failed storing %q: %w", s.replicas, id, errors.Join(errs...))
}

// GetSecret implements SecretStore, falling through dead or lagging
// replicas and repairing them from the first live copy. Repair is
// synchronous and deliberate: it happens at most once per degraded blob
// (the healed replica serves directly afterwards), and a deterministic
// repair is worth one slow read far more than a fire-and-forget goroutine
// whose failure nobody observes.
func (s *ShardedSecretStore) GetSecret(ctx context.Context, id string) ([]byte, error) {
	replicas := s.replicasFor(id)
	var errs []error
	var missed []int
	for _, shard := range replicas {
		s.counters[shard].reads.Add(1)
		blob, err := s.shards[shard].GetSecret(ctx, id)
		if err == nil {
			// Read-repair: earlier replicas that should hold this blob but
			// answered "missing" (or failed) get a best-effort copy now.
			for _, m := range missed {
				s.counters[m].puts.Add(1)
				if err := s.shards[m].PutSecret(ctx, id, blob); err != nil {
					s.counters[m].putFailures.Add(1)
				} else {
					s.counters[m].readRepairs.Add(1)
				}
			}
			return blob, nil
		}
		s.counters[shard].readFailures.Add(1)
		errs = append(errs, fmt.Errorf("shard %d: %w", shard, err))
		missed = append(missed, shard)
	}
	allMissing := true
	for _, err := range errs {
		if !IsNotFound(err) {
			allMissing = false
			break
		}
	}
	if allMissing {
		return nil, &NotFoundError{Kind: "secret", ID: id}
	}
	return nil, fmt.Errorf("p3: sharded store: all %d replicas failed fetching %q: %w", len(replicas), id, errors.Join(errs...))
}

// DeleteSecret implements SecretDeleter on every replica. Shards that do
// not support deletion are skipped.
func (s *ShardedSecretStore) DeleteSecret(ctx context.Context, id string) error {
	var errs []error
	for _, shard := range s.replicasFor(id) {
		d, ok := s.shards[shard].(SecretDeleter)
		if !ok {
			continue
		}
		if err := d.DeleteSecret(ctx, id); err != nil && !IsNotFound(err) {
			errs = append(errs, fmt.Errorf("shard %d: %w", shard, err))
		}
	}
	return errors.Join(errs...)
}

// Shards returns the number of child stores.
func (s *ShardedSecretStore) Shards() int { return len(s.shards) }

// Replicas returns how many copies of each blob the store maintains.
func (s *ShardedSecretStore) Replicas() int { return s.replicas }
