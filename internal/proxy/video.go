package proxy

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"p3"
	"p3/internal/admission"
)

// Video serving (paper §4.2): the proxy serves P3MJ Motion-JPEG clips the
// same way it serves photos — split on the way up, reconstructed on the
// way down — with one structural difference. The simulated PSP ingests
// only still JPEGs, so the clip's *public* stream is stored alongside the
// sealed secret container in the blob-store backends (disk, sharded,
// HTTP, …). That is safe — the public stream is non-sensitive by
// construction — and it exercises exactly the replicated, repairable
// large-blob storage the video workload needs: both parts of a clip ride
// the consistent-hash ring, replicas and read-repair included.
//
// A clip upload assigns a proxy-generated ID and stores two blobs,
// "<id>.pub" (the public P3MJ stream) and "<id>.sec" (the sealed secret
// container). Downloads come in two shapes:
//
//   - GET /video/{id} joins the whole clip back into a P3MJ stream.
//   - GET /video/{id}?frame=N seeks one frame: a single unseal plus one
//     frame's decode → recombine → encode, returned as a standalone JPEG.
//
// Both shapes are served through the bounded variant cache, keyed on the
// clip ID plus the *parsed* frame index (-1 = whole clip; `frame` is the
// only rendition parameter the video path accepts, and other query
// parameters are ignored — a new parameter MUST be added to videoKey
// before it may affect the response). The fan-out of a popular clip — or
// of one hot frame inside it — is thus absorbed in memory and concurrent
// misses coalesce into one reconstruction. The two stored blobs are
// cached and coalesced by the secrets cache under their blob names, so a
// frame-seek burst across N frames costs the store at most two fetches.

// DefaultVideoMaxBytes bounds accepted video uploads; WithVideoMaxBytes
// overrides it.
const DefaultVideoMaxBytes int64 = 256 << 20

// videoPubSuffix and videoSecSuffix name a clip's two blobs in the secret
// store.
const (
	videoPubSuffix = ".pub"
	videoSecSuffix = ".sec"
)

// WithVideoMaxBytes bounds how large a video clip (serialized P3MJ bytes)
// the proxy accepts for upload. Values < 1 are clamped to 1.
func WithVideoMaxBytes(n int64) ProxyOption {
	return func(c *proxyConfig) { c.videoMaxBytes = max(n, 1) }
}

// newVideoID mints a proxy-assigned clip ID. Photos are named by the PSP;
// clips never touch the PSP, so the proxy names them itself with 72 random
// bits, hex-encoded under a "v" prefix.
func newVideoID() (string, error) {
	var b [9]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("proxy: minting video id: %w", err)
	}
	return "v" + hex.EncodeToString(b[:]), nil
}

// UploadVideo splits a P3MJ clip and stores its two parts in the blob
// store under a proxy-assigned clip ID: the public stream at "<id>.pub"
// and the sealed secret container at "<id>.sec". Both caches are warmed
// from the upload. Returns the clip ID and its frame count.
func (p *Proxy) UploadVideo(ctx context.Context, streamBytes []byte) (_ string, _ int, err error) {
	defer p.videoUpload.observe(time.Now(), &err)
	if int64(len(streamBytes)) > p.videoMaxBytes {
		return "", 0, &RequestError{Err: fmt.Errorf("proxy: video of %d bytes over the %d-byte limit", len(streamBytes), p.videoMaxBytes)}
	}
	release, err := p.admit(ctx, admission.Cold)
	if err != nil {
		return "", 0, err
	}
	defer release()
	out, err := p.codec.SplitVideoBytes(streamBytes)
	if err != nil {
		// A malformed container or undecodable frame is the client's
		// problem, not the backends'.
		return "", 0, &RequestError{Err: err}
	}
	id, err := newVideoID()
	if err != nil {
		return "", 0, err
	}
	if err := p.store.PutSecret(ctx, id+videoPubSuffix, out.PublicMJPEG); err != nil {
		return "", 0, fmt.Errorf("proxy: storing public video stream for %q: %w", id, err)
	}
	if err := p.store.PutSecret(ctx, id+videoSecSuffix, out.SecretBlob); err != nil {
		perr := &PartialUploadError{ID: id, Err: err}
		if cleaned, cerr := p.deleteVideoBlob(ctx, id+videoPubSuffix); cleaned {
			perr.Cleaned = true
		} else {
			perr.CleanupErr = cerr
		}
		return "", 0, perr
	}
	p.secrets.Put(id+videoPubSuffix, out.PublicMJPEG)
	p.secrets.Put(id+videoSecSuffix, out.SecretBlob)
	return id, out.Frames, nil
}

// deleteVideoBlob best-effort removes an orphaned clip blob (when the
// store supports deletion), detached from ctx's cancellation.
func (p *Proxy) deleteVideoBlob(ctx context.Context, name string) (cleaned bool, err error) {
	del, ok := p.store.(p3.SecretDeleter)
	if !ok {
		return false, nil
	}
	if err := del.DeleteSecret(context.WithoutCancel(ctx), name); err != nil {
		return false, err
	}
	return true, nil
}

// videoParts fetches a clip's two stored blobs through the secrets cache:
// repeat views hit memory and concurrent misses coalesce per blob.
func (p *Proxy) videoParts(ctx context.Context, id string) (pub, sec []byte, err error) {
	pub, err = p.secrets.GetOrLoad(ctx, id+videoPubSuffix, func(ctx context.Context) ([]byte, error) {
		return p.store.GetSecret(ctx, id+videoPubSuffix)
	})
	if err != nil {
		return nil, nil, err
	}
	sec, err = p.secrets.GetOrLoad(ctx, id+videoSecSuffix, func(ctx context.Context) ([]byte, error) {
		return p.store.GetSecret(ctx, id+videoSecSuffix)
	})
	if err != nil {
		return nil, nil, err
	}
	return pub, sec, nil
}

// videoKeyPrefix marks clip entries in the variant cache: it keeps them
// from ever colliding with photo-variant keys (those start with a decimal
// epoch) and lets Calibrate's purge spare them.
const videoKeyPrefix = "video\x00"

// videoKey addresses one reconstructed clip rendition in the variant
// cache, keyed on the *parsed* frame index (-1 = whole clip) so
// equivalent spellings of one frame ("1", "01", "+1") share an entry.
// Clip reconstruction does not depend on the calibrated pipeline, so the
// calibration epoch is not part of the key.
func videoKey(id string, frame int) string {
	if frame < 0 {
		return videoKeyPrefix + id + "\x00"
	}
	return videoKeyPrefix + id + "\x00" + strconv.Itoa(frame)
}

// DownloadVideo serves a clip rendition: the whole reconstructed P3MJ
// stream, or — with ?frame=N — frame N as a standalone JPEG. Results come
// from the bounded variant cache when possible; concurrent requests for
// one (id, frame) run the fetch+join once. Callers must treat the
// returned bytes as immutable — they are shared with the cache.
func (p *Proxy) DownloadVideo(ctx context.Context, id string, q url.Values) (_ []byte, err error) {
	defer p.videoDownload.observe(time.Now(), &err)
	if err := validateID(id); err != nil {
		return nil, err
	}
	frame := -1 // whole clip
	if fs := q.Get("frame"); fs != "" {
		n, err := strconv.Atoi(fs)
		if err != nil || n < 0 {
			return nil, &RequestError{Err: fmt.Errorf("proxy: bad frame %q", fs)}
		}
		frame = n
	}
	key := videoKey(id, frame)
	release, err := p.admit(ctx, p.downloadClass(key))
	if err != nil {
		return nil, err
	}
	defer release()
	return p.variants.GetOrLoad(ctx, key, func(ctx context.Context) ([]byte, error) {
		pub, sec, err := p.videoParts(ctx, id)
		if err != nil {
			return nil, err
		}
		if frame < 0 {
			return p.codec.JoinVideoBytes(pub, sec)
		}
		return p.codec.JoinVideoFrame(pub, sec, frame)
	})
}

// serveVideoHTTP handles the /video/* routes for ServeHTTP: POST
// /video/upload ingests a P3MJ clip and responds {"id": ..., "frames": N};
// GET /video/{id}[?frame=N] serves a reconstruction.
func (p *Proxy) serveVideoHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/video/upload":
		body, err := io.ReadAll(io.LimitReader(r.Body, p.videoMaxBytes+1))
		if err != nil {
			http.Error(w, "read error", http.StatusBadRequest)
			return
		}
		id, frames, err := p.UploadVideo(r.Context(), body)
		if err != nil {
			httpError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"id": id, "frames": frames})
	case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/video/"):
		id := strings.TrimPrefix(r.URL.Path, "/video/")
		b, err := p.DownloadVideo(r.Context(), id, r.URL.Query())
		if err != nil {
			httpError(w, err)
			return
		}
		if r.URL.Query().Get("frame") != "" {
			w.Header().Set("Content-Type", "image/jpeg")
		} else {
			w.Header().Set("Content-Type", "video/x-p3-mjpeg")
		}
		w.Write(b)
	default:
		http.NotFound(w, r)
	}
}

// videoStatusFor refines statusFor with the video-path error types: a
// frame index past the end of a clip is a 404 (the rendition does not
// exist), and a clip blob that unpacks to garbage is backend corruption
// (502), which the default already covers.
func videoStatusFor(err error) (int, bool) {
	var re *p3.FrameRangeError
	if errors.As(err, &re) {
		return http.StatusNotFound, true
	}
	return 0, false
}
