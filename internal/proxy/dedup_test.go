package proxy

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"p3"
	"p3/internal/dataset"
	"p3/internal/dedup"
	"p3/internal/jpegx"
	"p3/internal/metrics"
	"p3/internal/psp"
	"p3/internal/similarity"
)

// jpegAt encodes a deterministic synthetic photo at a given quality, so
// the tests can mint exact duplicates (same seed, same quality) and
// near-duplicates (same seed, nearby quality).
func jpegAt(t testing.TB, seed int64, w, h, quality int) []byte {
	t.Helper()
	coeffs, err := dataset.Natural(seed, w, h).ToCoeffs(quality, jpegx.Sub420)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&buf, coeffs, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// diffBed is a full proxy stack whose photos backend is optionally
// wrapped in a dedup layer. The dedup-on and dedup-off beds share one
// key and run byte-identical codec and calibration paths — the only
// difference is the middleware — which is what the differential test
// measures. Calibration sweeps are expensive (especially under -race),
// so the pair is built once and shared by every test in this file; all
// assertions on dedup counters are therefore deltas, never absolutes.
type diffBed struct {
	proxy *Proxy
	ded   *dedup.Store      // nil on the dedup-off bed
	sim   *similarity.Index // nil on the dedup-off bed
}

var (
	diffOnce   sync.Once
	diffOn     *diffBed
	diffOff    *diffBed
	diffSetErr error
)

func buildDiffBed(key p3.Key, withDedup bool) (*diffBed, error) {
	// Package-lifetime servers, deliberately not Closed: tied to the
	// shared fixture, not to any one test.
	pspSrv := httptest.NewServer(psp.NewServer(psp.FacebookLike()))
	stSrv := httptest.NewServer(psp.NewBlobStore())
	codec, err := p3.New(key)
	if err != nil {
		return nil, err
	}
	bed := &diffBed{}
	var photos p3.PhotoService = p3.NewHTTPPhotoService(pspSrv.URL)
	var opts []ProxyOption
	if withDedup {
		bed.ded = dedup.New(photos, dedup.WithRegistry(metrics.NewRegistry()))
		photos = bed.ded
		bed.sim = similarity.NewIndex(similarity.WithRegistry(metrics.NewRegistry()))
		opts = append(opts, WithSimilarity(bed.sim))
	}
	bed.proxy = New(codec, photos, p3.NewHTTPSecretStore(stSrv.URL), opts...)
	if _, err := bed.proxy.Calibrate(ctx); err != nil {
		return nil, err
	}
	return bed, nil
}

// diffBeds returns the shared (dedup-on, dedup-off) pair.
func diffBeds(t *testing.T) (*diffBed, *diffBed) {
	t.Helper()
	diffOnce.Do(func() {
		key, err := p3.NewKey()
		if err != nil {
			diffSetErr = err
			return
		}
		if diffOn, diffSetErr = buildDiffBed(key, true); diffSetErr != nil {
			return
		}
		diffOff, diffSetErr = buildDiffBed(key, false)
	})
	if diffSetErr != nil {
		t.Fatalf("building differential beds: %v", diffSetErr)
	}
	return diffOn, diffOff
}

// TestDedupDifferentialByteIdentity is the differential gate: a proxy
// with the dedup middleware must serve byte-identical photos to one
// without it, for every photo in a duplicate-heavy corpus and across
// representative variants. Anything the dedup layer changes about served
// bytes is a bug this test catches.
func TestDedupDifferentialByteIdentity(t *testing.T) {
	on, off := diffBeds(t)
	st0 := on.ded.Stats()

	// 4 distinct photos, each uploaded 3 times: 12 logical photos, heavy
	// duplication for the dedup side.
	const distinct, copies = 4, 3
	type pair struct{ onID, offID string }
	var pairs []pair
	for s := 0; s < distinct; s++ {
		src := jpegAt(t, int64(100+s), 320, 240, 90)
		for c := 0; c < copies; c++ {
			onID, err := on.proxy.Upload(ctx, src)
			if err != nil {
				t.Fatalf("dedup-on upload seed %d copy %d: %v", s, c, err)
			}
			offID, err := off.proxy.Upload(ctx, src)
			if err != nil {
				t.Fatalf("dedup-off upload seed %d copy %d: %v", s, c, err)
			}
			pairs = append(pairs, pair{onID, offID})
		}
	}
	st := on.ded.Stats()
	if got := st.UniqueBlobs - st0.UniqueBlobs; got != distinct {
		t.Fatalf("corpus added %d unique blobs, want %d", got, distinct)
	}
	if got := st.LogicalPhotos - st0.LogicalPhotos; got != distinct*copies {
		t.Fatalf("corpus added %d logical photos, want %d", got, distinct*copies)
	}
	if got := st.DupHits - st0.DupHits; got < distinct*(copies-1) {
		t.Fatalf("corpus scored %d dup hits, want >= %d", got, distinct*(copies-1))
	}

	variants := []url.Values{
		{}, // full
		{"size": {"thumb"}},
		{"w": {"120"}, "h": {"90"}},
		{"crop": {"80,60,240,180"}, "w": {"120"}, "h": {"90"}},
	}
	for pi, pr := range pairs {
		for vi, v := range variants {
			a, err := on.proxy.Download(ctx, pr.onID, v)
			if err != nil {
				t.Fatalf("pair %d variant %d dedup-on download: %v", pi, vi, err)
			}
			b, err := off.proxy.Download(ctx, pr.offID, v)
			if err != nil {
				t.Fatalf("pair %d variant %d dedup-off download: %v", pi, vi, err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("pair %d variant %v: dedup-on bytes differ from dedup-off (%d vs %d bytes)",
					pi, v, len(a), len(b))
			}
		}
	}
	// Within the dedup bed: every duplicate of a photo serves the exact
	// bytes of its first copy (they share one provider blob).
	first, err := on.proxy.Download(ctx, pairs[0].onID, url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range pairs[1:copies] {
		got, err := on.proxy.Download(ctx, pr.onID, url.Values{})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, first) {
			t.Fatal("duplicate logical photo served different bytes than its twin")
		}
	}
	if err := on.ded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestProxyConcurrentDuplicateUploadsNoOrphan is the satellite
// regression at the proxy level: concurrent uploads of the same photo
// through the full Upload path (split, seal, store) must coalesce onto
// one public-part blob and leave nothing orphaned on the PSP.
func TestProxyConcurrentDuplicateUploadsNoOrphan(t *testing.T) {
	bed, _ := diffBeds(t)
	st0 := bed.ded.Stats()

	src := jpegAt(t, 55, 320, 240, 90)
	const racers = 8
	ids := make([]string, racers)
	errs := make([]error, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i], errs[i] = bed.proxy.Upload(ctx, src)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("racer %d: %v", i, err)
		}
	}
	st := bed.ded.Stats()
	if got := st.ProviderUploads - st0.ProviderUploads; got != 1 {
		t.Fatalf("%d provider uploads for one content, want 1 (orphaned public parts)", got)
	}
	if got := st.UniqueBlobs - st0.UniqueBlobs; got != 1 {
		t.Fatalf("racers added %d unique blobs, want 1", got)
	}
	for i, id := range ids {
		if _, err := bed.proxy.Download(ctx, id, url.Values{}); err != nil {
			t.Fatalf("racer %d photo %s undownloadable: %v", i, id, err)
		}
	}
	if err := bed.ded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteEndToEnd exercises Delete over HTTP: duplicates keep the
// shared blob alive until the last reference goes, deleted photos 404,
// and their twins keep serving.
func TestDeleteEndToEnd(t *testing.T) {
	bed, _ := diffBeds(t)
	srv := httptest.NewServer(bed.proxy)
	t.Cleanup(srv.Close)
	st0 := bed.ded.Stats()

	src := jpegAt(t, 66, 320, 240, 90)
	id1, err := bed.proxy.Upload(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := bed.proxy.Upload(ctx, src)
	if err != nil {
		t.Fatal(err)
	}

	httpDelete := func(id string) int {
		req, err := http.NewRequest(http.MethodDelete, srv.URL+"/photo/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := httpDelete(id1); code != http.StatusNoContent {
		t.Fatalf("DELETE %s: status %d, want 204", id1, code)
	}
	// The deleted photo is gone; its duplicate still serves.
	if resp, err := http.Get(srv.URL + "/photo/" + id1); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET deleted photo: status %d, want 404", resp.StatusCode)
		}
	}
	if _, err := bed.proxy.Download(ctx, id2, url.Values{}); err != nil {
		t.Fatalf("twin photo broken by its duplicate's delete: %v", err)
	}
	if code := httpDelete(id2); code != http.StatusNoContent {
		t.Fatalf("DELETE %s: status %d, want 204", id2, code)
	}
	if code := httpDelete(id2); code != http.StatusNotFound {
		t.Fatalf("double DELETE: status %d, want 404", code)
	}
	st := bed.ded.Stats()
	if st.UniqueBlobs != st0.UniqueBlobs || st.LogicalPhotos != st0.LogicalPhotos {
		t.Fatalf("dedup state not restored after all deletes: %+v -> %+v", st0, st)
	}
	if err := bed.ded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSimilarHTTP drives GET /similar/{id} end to end: exact duplicates
// at distance 0, a re-encode within the default radius, an unrelated
// photo outside it, plus the error paths.
func TestSimilarHTTP(t *testing.T) {
	bed, _ := diffBeds(t)
	srv := httptest.NewServer(bed.proxy)
	t.Cleanup(srv.Close)

	dup := jpegAt(t, 200, 320, 240, 90)
	idA, err := bed.proxy.Upload(ctx, dup)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := bed.proxy.Upload(ctx, dup) // exact duplicate
	if err != nil {
		t.Fatal(err)
	}
	idNear, err := bed.proxy.Upload(ctx, jpegAt(t, 200, 320, 240, 84)) // re-encode
	if err != nil {
		t.Fatal(err)
	}
	idFar, err := bed.proxy.Upload(ctx, jpegAt(t, 201, 320, 240, 90)) // unrelated
	if err != nil {
		t.Fatal(err)
	}

	var out struct {
		ID      string             `json:"id"`
		D       int                `json:"d"`
		Matches []similarity.Match `json:"matches"`
	}
	get := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatalf("decode %s: %v", path, err)
			}
		}
		return resp.StatusCode
	}
	if code := get("/similar/" + idA); code != http.StatusOK {
		t.Fatalf("GET /similar/%s: status %d", idA, code)
	}
	got := map[string]int{}
	for _, m := range out.Matches {
		got[m.ID] = m.Distance
	}
	if d, ok := got[idB]; !ok || d != 0 {
		t.Fatalf("exact duplicate %s: distance %d (present=%v), want 0", idB, d, ok)
	}
	if _, ok := got[idNear]; !ok {
		t.Fatalf("re-encode %s not within default radius; matches: %v", idNear, out.Matches)
	}
	if _, ok := got[idFar]; ok {
		t.Fatalf("unrelated photo %s matched within default radius", idFar)
	}
	if _, ok := got[idA]; ok {
		t.Fatal("query returned the photo itself")
	}
	// d=0 keeps only this content's exact duplicates (idB; idNear only if
	// the re-encode happened to hash identically, which seed 200 does not).
	if code := get("/similar/" + idA + "?d=0"); code != http.StatusOK {
		t.Fatalf("d=0 query: status %d", code)
	}
	if len(out.Matches) != 1 || out.Matches[0].ID != idB {
		t.Fatalf("d=0 matches %v, want exactly [%s]", out.Matches, idB)
	}
	for path, want := range map[string]int{
		"/similar/" + idA + "?d=banana": http.StatusBadRequest,
		"/similar/" + idA + "?d=65":     http.StatusBadRequest,
		"/similar/no-such-photo-id":     http.StatusNotFound,
	} {
		if code := get(path); code != want {
			t.Fatalf("GET %s: status %d, want %d", path, code, want)
		}
	}
	// A proxy without an index rejects the endpoint before touching
	// anything else, so an uncalibrated bare proxy suffices.
	key, err := p3.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	codec, err := p3.New(key)
	if err != nil {
		t.Fatal(err)
	}
	bare := New(codec, p3.NewHTTPPhotoService("http://unreachable.invalid"), p3.NewMemorySecretStore())
	if _, err := bare.Similar(ctx, "whatever-id", 4); err == nil {
		t.Fatal("Similar without an index succeeded")
	} else if code := statusFor(err); code != http.StatusBadRequest {
		t.Fatalf("Similar without index maps to %d, want 400", code)
	}
}

// TestDedupStatsSurfaceInProxyStats checks Stats() exposes the dedup and
// similarity blocks when configured (and the new op counters move).
func TestDedupStatsSurfaceInProxyStats(t *testing.T) {
	bed, _ := diffBeds(t)

	id, err := bed.proxy.Upload(ctx, jpegAt(t, 300, 320, 240, 90))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bed.proxy.Similar(ctx, id, 10); err != nil {
		t.Fatal(err)
	}
	if err := bed.proxy.Delete(ctx, id); err != nil {
		t.Fatal(err)
	}
	st := bed.proxy.Stats()
	if st.Dedup == nil {
		t.Fatal("Stats().Dedup nil with a dedup backend")
	}
	if st.Similarity == nil {
		t.Fatal("Stats().Similarity nil with an index attached")
	}
	if st.Similar.Count == 0 {
		t.Fatal("similar op counter did not move")
	}
	if st.Delete.Count == 0 {
		t.Fatal("delete op counter did not move")
	}
}
