package proxy

import (
	"bytes"
	"net/url"
	"testing"

	"p3/internal/psp"
)

// TestDownloadManyMatchesDownload pins the batch path to the single-variant
// path: the same queries must yield the same bytes, whichever entry point
// serves them.
func TestDownloadManyMatchesDownload(t *testing.T) {
	tb := newTestbed(t, psp.FlickrLike())
	jpegBytes, _ := photoJPEG(t, 51, 320, 240)
	id, err := tb.proxy.Upload(ctx, jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	queries := []url.Values{
		{"size": {"thumb"}},
		{"size": {"small"}},
		{"size": {"big"}},
	}
	tb.proxy.InvalidateCaches()
	batch, err := tb.proxy.DownloadMany(ctx, id, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("%d renditions for %d queries", len(batch), len(queries))
	}
	tb.proxy.InvalidateCaches()
	for i, q := range queries {
		single, err := tb.proxy.Download(ctx, id, q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !bytes.Equal(batch[i], single) {
			t.Errorf("query %d (%v): batch rendition differs from single download (%d vs %d bytes)",
				i, q, len(batch[i]), len(single))
		}
	}
}

// TestDownloadManyFetchesSecretOnce is the point of the batch API: N cold
// renditions of one photo cost one secret-part fetch and one secret decode.
func TestDownloadManyFetchesSecretOnce(t *testing.T) {
	tb := newTestbed(t, psp.FlickrLike())
	jpegBytes, _ := photoJPEG(t, 52, 320, 240)
	id, err := tb.proxy.Upload(ctx, jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	tb.proxy.InvalidateCaches()
	before := tb.store.GetCount()
	queries := []url.Values{
		{"size": {"thumb"}},
		{"size": {"small"}},
		{"size": {"big"}},
	}
	if _, err := tb.proxy.DownloadMany(ctx, id, queries); err != nil {
		t.Fatal(err)
	}
	if got := tb.store.GetCount() - before; got != 1 {
		t.Errorf("store fetched %d times for a %d-variant batch, want 1", got, len(queries))
	}
}

func TestDownloadManyErrors(t *testing.T) {
	tb := newTestbed(t, psp.FlickrLike())
	jpegBytes, _ := photoJPEG(t, 53, 160, 120)
	id, err := tb.proxy.Upload(ctx, jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := tb.proxy.DownloadMany(ctx, id, nil); err != nil || len(out) != 0 {
		t.Errorf("empty batch: got %d results, err %v", len(out), err)
	}
	fresh := newProxy(t, tb, tb.key)
	if _, err := fresh.DownloadMany(ctx, id, []url.Values{{"size": {"thumb"}}}); err == nil {
		t.Error("uncalibrated batch download must fail")
	}
	if _, err := tb.proxy.DownloadMany(ctx, "no-such-photo", []url.Values{{"size": {"thumb"}}}); err == nil {
		t.Error("unknown photo id must fail")
	}
}
