package proxy

// Serving-layer tests: coalescing under concurrency, cache bounds, HTTP
// status mapping, partial-upload cleanup, and crop-coordinate rounding.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"

	"p3"
	"p3/internal/imaging"
	"p3/internal/metrics"
	"p3/internal/psp"
)

// countingPhotos wraps the in-process PSP adapter with call counters and
// delete support.
type countingPhotos struct {
	s                *psp.Server
	uploads, fetches atomic.Int64
}

func (c *countingPhotos) UploadPhoto(_ context.Context, jpegBytes []byte) (string, error) {
	c.uploads.Add(1)
	return c.s.Upload(jpegBytes)
}

func (c *countingPhotos) UploadPhotoWithDims(_ context.Context, jpegBytes []byte) (string, int, int, error) {
	c.uploads.Add(1)
	return c.s.UploadWithDims(jpegBytes)
}

func (c *countingPhotos) FetchPhoto(_ context.Context, id string, v p3.PhotoVariant) ([]byte, error) {
	c.fetches.Add(1)
	q := v.Query()
	b, err := c.s.Photo(id, q.Get("size"), q.Get("crop"), q.Get("w"), q.Get("h"))
	if err != nil && errors.Is(err, psp.ErrNotFound) {
		return nil, &p3.NotFoundError{Kind: "photo", ID: id}
	}
	return b, err
}

func (c *countingPhotos) DeletePhoto(_ context.Context, id string) error {
	return c.s.Delete(id)
}

// countingStore wraps a SecretStore with counters and a failure switch.
type countingStore struct {
	inner      p3.SecretStore
	gets, puts atomic.Int64
	failPuts   bool
}

func (c *countingStore) PutSecret(ctx context.Context, id string, blob []byte) error {
	c.puts.Add(1)
	if c.failPuts {
		return errors.New("blob store full")
	}
	return c.inner.PutSecret(ctx, id, blob)
}

func (c *countingStore) GetSecret(ctx context.Context, id string) ([]byte, error) {
	c.gets.Add(1)
	return c.inner.GetSecret(ctx, id)
}

// servingBed is an in-process testbed (no HTTP) with counters on both
// backends.
type servingBed struct {
	photos *countingPhotos
	store  *countingStore
	proxy  *Proxy
	key    p3.Key
}

func newServingBed(t *testing.T, opts ...ProxyOption) *servingBed {
	t.Helper()
	key, err := p3.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	bed := &servingBed{
		photos: &countingPhotos{s: psp.NewServer(psp.FlickrLike())},
		store:  &countingStore{inner: p3.NewMemorySecretStore()},
		key:    key,
	}
	codec, err := p3.New(key)
	if err != nil {
		t.Fatal(err)
	}
	bed.proxy = New(codec, bed.photos, bed.store, opts...)
	if _, err := bed.proxy.Calibrate(ctx); err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	return bed
}

// TestConcurrentDownloadCoalescing is the acceptance stampede test: 50
// goroutines download one (id, variant) through a cold proxy, the backends
// see exactly one FetchPhoto and one GetSecret, and everyone receives bytes
// identical to an uncached reconstruction.
func TestConcurrentDownloadCoalescing(t *testing.T) {
	bed := newServingBed(t)
	jpegBytes, _ := photoJPEG(t, 31, 320, 240)
	id, err := bed.proxy.Upload(ctx, jpegBytes)
	if err != nil {
		t.Fatal(err)
	}

	// The uncached reference: a separate cold proxy (same key, same
	// deterministic calibration) reconstructs the same variant.
	codec2, err := p3.New(bed.key)
	if err != nil {
		t.Fatal(err)
	}
	other := New(codec2, bed.photos, bed.store)
	if _, err := other.Calibrate(ctx); err != nil {
		t.Fatal(err)
	}
	reference, err := other.Download(ctx, id, url.Values{"size": {"small"}})
	if err != nil {
		t.Fatal(err)
	}

	bed.proxy.InvalidateCaches() // forget the upload warm: everyone is a cold reader
	fetches0, gets0 := bed.photos.fetches.Load(), bed.store.gets.Load()

	const n = 50
	results := make([][]byte, n)
	errs := make([]error, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = bed.proxy.Download(ctx, id, url.Values{"size": {"small"}})
		}(i)
	}
	close(start)
	wg.Wait()

	if got := bed.photos.fetches.Load() - fetches0; got != 1 {
		t.Errorf("backend saw %d FetchPhoto calls for %d concurrent downloads, want 1", got, n)
	}
	if got := bed.store.gets.Load() - gets0; got != 1 {
		t.Errorf("backend saw %d GetSecret calls for %d concurrent downloads, want 1", got, n)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("download %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], reference) {
			t.Fatalf("download %d returned different bytes than the uncached path", i)
		}
	}
	// Exactly one load ran; the other n-1 either joined it (coalesced) or,
	// if the loader finished before they were scheduled, hit the fresh
	// entry. The split between the two is scheduling-dependent.
	st := bed.proxy.Stats()
	if st.Variants.Misses != 1 || st.Variants.Hits+st.Variants.Coalesced != n-1 {
		t.Errorf("variant cache stats: %+v (want 1 miss, hits+coalesced = %d)", st.Variants, n-1)
	}
}

// TestSecretCacheBounded is the acceptance memory test: with a 1 MiB secret
// budget and 100 distinct photos' worth of secret parts flowing through,
// the cache evicts instead of growing.
func TestSecretCacheBounded(t *testing.T) {
	key, err := p3.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	codec, err := p3.New(key)
	if err != nil {
		t.Fatal(err)
	}
	// A synthetic store: every ID resolves to a fresh 64 KiB blob, so 100
	// distinct photos mean ~6.4 MiB of traffic against a 1 MiB budget.
	const blobSize = 64 << 10
	store := p3.NewMemorySecretStore()
	for i := 0; i < 100; i++ {
		blob := bytes.Repeat([]byte{byte(i)}, blobSize)
		if err := store.PutSecret(ctx, fmt.Sprintf("p%08d", i), blob); err != nil {
			t.Fatal(err)
		}
	}
	p := New(codec, &countingPhotos{s: psp.NewServer(psp.FlickrLike())}, store,
		WithSecretCacheBytes(1<<20))
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("p%08d", i)
		blob, err := p.fetchSecret(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if len(blob) != blobSize || blob[0] != byte(i) {
			t.Fatalf("wrong blob for %s", id)
		}
	}
	st := p.Stats().Secrets
	if st.Bytes > 1<<20 {
		t.Errorf("secret cache holds %d bytes, budget is %d", st.Bytes, 1<<20)
	}
	if st.Entries > (1<<20)/blobSize {
		t.Errorf("secret cache holds %d entries, at most %d fit", st.Entries, (1<<20)/blobSize)
	}
	if st.Evictions == 0 {
		t.Error("no evictions observed despite 6.4 MiB through a 1 MiB budget")
	}
	if st.Misses != 100 {
		t.Errorf("misses = %d, want 100 (all distinct)", st.Misses)
	}
	// Re-fetching a recent ID hits; an evicted one misses and re-fetches.
	if _, err := p.fetchSecret(ctx, "p00000099"); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().Secrets.Hits; got == 0 {
		t.Error("recent entry did not hit")
	}
}

// TestVariantCacheServesRepeats: a second identical download is served from
// memory — no backend traffic, byte-identical result — and recalibration
// invalidates it.
func TestVariantCacheServesRepeats(t *testing.T) {
	// A private registry so the calibration counter assertions below see
	// only this bed's passes, not every bed sharing metrics.Default.
	bed := newServingBed(t, WithMetricsRegistry(metrics.NewRegistry()))
	jpegBytes, _ := photoJPEG(t, 33, 320, 240)
	id, err := bed.proxy.Upload(ctx, jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	first, err := bed.proxy.Download(ctx, id, url.Values{"size": {"thumb"}})
	if err != nil {
		t.Fatal(err)
	}
	fetches := bed.photos.fetches.Load()
	// Equivalent query spellings share one cache entry via canonicalization.
	second, err := bed.proxy.Download(ctx, id, url.Values{"size": {"thumb"}, "ignored": {"x"}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("cached variant differs from first reconstruction")
	}
	if got := bed.photos.fetches.Load() - fetches; got != 0 {
		t.Errorf("repeat download caused %d backend fetches, want 0", got)
	}
	if st := bed.proxy.Stats().Variants; st.Hits == 0 {
		t.Errorf("variant stats show no hit: %+v", st)
	}

	// An incremental recalibration probes the published parameters, finds
	// them still valid, and keeps the epoch — and with it the cache.
	epoch := bed.proxy.CalibrationEpoch()
	if _, err := bed.proxy.Calibrate(ctx); err != nil {
		t.Fatal(err)
	}
	if got := bed.proxy.Stats().Calibration; got.ProbeHits != 1 {
		t.Errorf("probe hits = %d after stable recalibration, want 1 (%+v)", got.ProbeHits, got)
	}
	if got := bed.proxy.CalibrationEpoch(); got != epoch {
		t.Errorf("epoch flipped %d → %d on a probe-confirmed recalibration", epoch, got)
	}
	if st := bed.proxy.Stats().Variants; st.Entries == 0 {
		t.Error("probe-confirmed recalibration dropped still-valid variants")
	}
	third, err := bed.proxy.Download(ctx, id, url.Values{"size": {"thumb"}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, third) {
		t.Error("post-probe download differs from pre-probe bytes")
	}

	// A forced recalibration must flip the epoch and retire old-epoch
	// entries; the hottest are pre-warmed under the new epoch, and since
	// the PSP didn't change, they come out byte-identical.
	out, err := bed.proxy.Recalibrate(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Flipped || out.Epoch != epoch+1 {
		t.Fatalf("forced recalibration outcome %+v, want flip to epoch %d", out, epoch+1)
	}
	if out.Warmed == 0 {
		t.Error("forced recalibration pre-warmed no variants")
	}
	fetches = bed.photos.fetches.Load()
	fourth, err := bed.proxy.Download(ctx, id, url.Values{"size": {"thumb"}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, fourth) {
		t.Error("post-flip download differs from pre-flip bytes despite unchanged PSP")
	}
	if got := bed.photos.fetches.Load() - fetches; got != 0 {
		t.Errorf("post-flip download of a pre-warmed variant caused %d backend fetches, want 0", got)
	}
	if got := bed.proxy.Stats().Calibration.WarmHits; got == 0 {
		t.Error("warm-hit counter still 0 after serving a pre-warmed variant")
	}

	// With pre-warming disabled, a forced flip leaves the cache cold.
	cold := newServingBed(t, WithWarmTopK(0), WithMetricsRegistry(metrics.NewRegistry()))
	if _, err := cold.proxy.Upload(ctx, jpegBytes); err != nil {
		t.Fatal(err)
	}
	if _, err := cold.proxy.Recalibrate(ctx, true); err != nil {
		t.Fatal(err)
	}
	if st := cold.proxy.Stats().Variants; st.Entries != 0 {
		t.Errorf("warm-topk=0 flip left %d variant entries, want 0", st.Entries)
	}
}

// TestServeHTTPStatusCodes pins the 400/404/502/503 mapping.
func TestServeHTTPStatusCodes(t *testing.T) {
	bed := newServingBed(t)
	jpegBytes, _ := photoJPEG(t, 35, 160, 120)
	id, err := bed.proxy.Upload(ctx, jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(bed.proxy)
	defer srv.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/photo/" + id + "?size=small", http.StatusOK},
		{"/photo/p99999999?size=small", http.StatusNotFound}, // unknown photo: the PSP's miss, not its fault
		{"/photo/" + id + "?crop=1,2,3", http.StatusBadRequest},
		{"/photo/" + id + "?crop=1,2,3,x", http.StatusBadRequest},
		{"/photo/" + id + "?w=abc", http.StatusBadRequest},
		{"/photo/" + id + "?w=-4&h=5", http.StatusBadRequest},
		{"/photo/a/../b", http.StatusBadRequest}, // path-shaped ID rejected at the boundary
		{"/photo/", http.StatusBadRequest},
		{"/stats", http.StatusOK},
		{"/nope", http.StatusNotFound},
	} {
		if got := get(tc.path); got != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.path, got, tc.want)
		}
	}

	// Junk upload: the client's fault.
	resp, err := http.Post(srv.URL+"/upload", "image/jpeg", bytes.NewReader([]byte("not a jpeg")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("junk upload status %d, want 400", resp.StatusCode)
	}

	// Uncalibrated proxy: the proxy's own not-ready state, 503.
	codec2, _ := p3.New(bed.key)
	coldSrv := httptest.NewServer(New(codec2, bed.photos, bed.store))
	defer coldSrv.Close()
	resp2, err := http.Get(coldSrv.URL + "/photo/" + id + "?size=small")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("uncalibrated download status %d, want 503", resp2.StatusCode)
	}

	// Broken secret backend: a genuine 502.
	deadStore := p3.NewHTTPSecretStore("http://127.0.0.1:1") // nothing listens
	codec3, _ := p3.New(bed.key)
	broken := New(codec3, bed.photos, deadStore)
	if _, err := broken.Calibrate(ctx); err != nil {
		t.Fatal(err)
	}
	brokenSrv := httptest.NewServer(broken)
	defer brokenSrv.Close()
	resp3, err := http.Get(brokenSrv.URL + "/photo/" + id + "?size=small")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadGateway {
		t.Errorf("dead blob store status %d, want 502", resp3.StatusCode)
	}
}

// TestPartialUploadCleanup: when the secret part cannot be stored, the
// public part is deleted from the PSP and the error names the orphan.
func TestPartialUploadCleanup(t *testing.T) {
	key, err := p3.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	codec, err := p3.New(key)
	if err != nil {
		t.Fatal(err)
	}
	photos := &countingPhotos{s: psp.NewServer(psp.FlickrLike())}
	store := &countingStore{inner: p3.NewMemorySecretStore(), failPuts: true}
	p := New(codec, photos, store)

	jpegBytes, _ := photoJPEG(t, 37, 160, 120)
	_, err = p.Upload(ctx, jpegBytes)
	var perr *PartialUploadError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v, want *PartialUploadError", err)
	}
	if perr.ID == "" {
		t.Error("PartialUploadError carries no orphan ID")
	}
	if !perr.Cleaned || perr.CleanupErr != nil {
		t.Errorf("cleanup not performed: %+v", perr)
	}
	// The public part must actually be gone from the PSP.
	if _, err := photos.FetchPhoto(ctx, perr.ID, p3.PhotoVariant{}); !p3.IsNotFound(err) {
		t.Errorf("orphaned public part still fetchable: err = %v", err)
	}
	// And the caches must not have been warmed with a failed upload.
	if st := p.Stats(); st.Secrets.Entries != 0 {
		t.Errorf("secret cache warmed despite failed upload: %+v", st.Secrets)
	}

	// A backend without delete support: orphan reported, not cleaned.
	memOnly := struct{ p3.PhotoService }{photos} // strips the optional interfaces
	p2 := New(codec, memOnly, store)
	_, err = p2.Upload(ctx, jpegBytes)
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v, want *PartialUploadError", err)
	}
	if perr.Cleaned || perr.CleanupErr != nil {
		t.Errorf("delete-less backend: %+v, want uncleaned with nil CleanupErr", perr)
	}
}

// TestMapCrop pins round-to-nearest mapping at a non-integral scale factor
// (1000/720 ≈ 1.389) where the old truncating division shifted and shrank
// windows.
func TestMapCrop(t *testing.T) {
	const origW, origH, storedW, storedH = 1000, 750, 720, 540
	for _, tc := range []struct {
		name     string
		in, want imaging.Crop
	}{
		// 100*1000/720 = 138.9 → 139 (truncation gave 138);
		// 360*1000/720 = 500 exactly.
		{"round_up_x", imaging.Crop{X: 100, Y: 0, W: 360, H: 360}, imaging.Crop{X: 139, Y: 0, W: 500, H: 500}},
		// 359*1000/720 = 498.6 → 499; 181*750/540 = 251.4 → 251.
		{"mixed_rounding", imaging.Crop{X: 359, Y: 181, W: 180, H: 180}, imaging.Crop{X: 499, Y: 251, W: 250, H: 250}},
		// Right-edge crop must clamp, not spill past the image.
		{"clamp_edge", imaging.Crop{X: 700, Y: 520, W: 20, H: 20}, imaging.Crop{X: 972, Y: 722, W: 28, H: 28}},
		// Degenerate tiny crop keeps at least one pixel.
		{"min_one_pixel", imaging.Crop{X: 0, Y: 0, W: 0, H: 0}, imaging.Crop{X: 0, Y: 0, W: 1, H: 1}},
	} {
		if got := mapCrop(tc.in, origW, origH, storedW, storedH); got != tc.want {
			t.Errorf("%s: mapCrop(%+v) = %+v, want %+v", tc.name, tc.in, got, tc.want)
		}
	}
	// Identity scale maps exactly.
	in := imaging.Crop{X: 10, Y: 20, W: 30, H: 40}
	if got := mapCrop(in, 720, 540, 720, 540); got != in {
		t.Errorf("identity mapCrop = %+v", got)
	}
	// Edges round independently: at scale 1.5, a 1-px crop at X=1 spans
	// [1.5, 3.0) → [2, 3), one pixel. Rounding W separately from X would
	// widen it to 2.
	got := mapCrop(imaging.Crop{X: 1, Y: 1, W: 1, H: 1}, 1080, 810, 720, 540)
	if want := (imaging.Crop{X: 2, Y: 2, W: 1, H: 1}); got != want {
		t.Errorf("edge rounding: mapCrop = %+v, want %+v", got, want)
	}
}

// TestCropAcrossIngestResize uploads a photo larger than the PSP's stored
// cap, so crop coordinates (stored space, 720×540) really do need rescaling
// onto the original 800×600 grid at a non-integral factor (800/720 ≈ 1.11).
func TestCropAcrossIngestResize(t *testing.T) {
	bed := newServingBed(t)
	jpegBytes, ref := photoJPEG(t, 39, 800, 600)
	id, err := bed.proxy.Upload(ctx, jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the PSP did downsize at ingest.
	storedW, storedH, err := bed.proxy.storedDims(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if storedW != 720 || storedH != 540 {
		t.Fatalf("stored dims %dx%d, want 720x540", storedW, storedH)
	}
	q := url.Values{"crop": {"120,90,360,270"}, "w": {"120"}, "h": {"90"}}
	rec, err := bed.proxy.DownloadPixels(ctx, id, q)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Width != 120 || rec.Height != 90 {
		t.Fatalf("cropped download %dx%d, want 120x90", rec.Width, rec.Height)
	}
	// Ground truth: the same crop mapped onto the original grid, then the
	// PSP pipeline at the served size, applied to the original photo.
	mapped := mapCrop(imaging.Crop{X: 120, Y: 90, W: 360, H: 270}, 800, 600, 720, 540)
	want := imaging.Clamp(imaging.Compose{
		mapped,
		bed.photos.s.Pipeline.Op(120, 90),
	}.Apply(ref))
	if got := psnr(want, rec); got < 18 {
		t.Errorf("cross-scale cropped reconstruction PSNR %.1f dB, want >= 18", got)
	}
}
