package proxy

// End-to-end observability tests: the /metrics exposition parses, covers
// every instrumented layer (proxy ops, caches, codec, shards), and its
// cumulative counters only ever increase; /stats agrees with it.

import (
	"fmt"
	"io"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"p3"
	"p3/internal/psp"
)

// expositionLine matches one Prometheus text-format sample:
// name{labels} value.
var expositionLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\+Inf|-?[0-9.e+-]+)$`)

// parseExposition parses Prometheus text exposition into series → value,
// failing the test on any malformed line.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := expositionLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable exposition line: %q", line)
		}
		if m[3] == "+Inf" {
			continue
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[m[1]+m[2]] = v
	}
	return out
}

// scrape GETs /metrics through the proxy's HTTP surface and parses it.
func scrape(t *testing.T, p *Proxy) map[string]float64 {
	t.Helper()
	srv := httptest.NewServer(p)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseExposition(t, string(body))
}

// TestMetricsEndToEnd drives a proxy over a 3-shard store and checks the
// full exposition pipeline.
func TestMetricsEndToEnd(t *testing.T) {
	key, err := p3.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	codec, err := p3.New(key)
	if err != nil {
		t.Fatal(err)
	}
	shards := []p3.SecretStore{
		p3.NewMemorySecretStore(), p3.NewMemorySecretStore(), p3.NewMemorySecretStore(),
	}
	store, err := p3.NewShardedSecretStore(shards, p3.WithShardReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	photos := &countingPhotos{s: psp.NewServer(psp.FlickrLike())}
	// The default registry (so the process-wide codec histograms appear in
	// the scrape) with a unique instance name (so this test's cache views
	// don't collide with other tests').
	p := New(codec, photos, store, WithMetricsName("metrics-e2e"))
	if _, err := p.Calibrate(ctx); err != nil {
		t.Fatal(err)
	}

	jpegBytes, _ := photoJPEG(t, 77, 320, 240)
	id, err := p.Upload(ctx, jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // one miss, two hits on the variant cache
		if _, err := p.Download(ctx, id, url.Values{"size": {"small"}}); err != nil {
			t.Fatal(err)
		}
	}
	first := scrape(t, p)

	// Every instrumented layer must be represented.
	wantSeries := []string{
		`p3_proxy_requests_total{proxy="metrics-e2e",op="download"}`,
		`p3_proxy_requests_total{proxy="metrics-e2e",op="upload"}`,
		`p3_proxy_requests_total{proxy="metrics-e2e",op="calibrate"}`,
		`p3_proxy_latency_seconds_count{proxy="metrics-e2e",op="download"}`,
		`p3_cache_hits_total{proxy="metrics-e2e",cache="variants"}`,
		`p3_cache_misses_total{proxy="metrics-e2e",cache="secrets"}`,
		`p3_cache_bytes{proxy="metrics-e2e",cache="variants"}`,
		`p3_codec_split_seconds_count`,
		`p3_codec_join_processed_seconds_count`,
		`p3_shard_reads_total{shard="0"}`,
		`p3_shard_puts_total{shard="2"}`,
	}
	for _, s := range wantSeries {
		if _, ok := first[s]; !ok {
			t.Errorf("exposition missing series %s", s)
		}
	}
	if got := first[`p3_proxy_requests_total{proxy="metrics-e2e",op="download"}`]; got != 3 {
		t.Errorf("download requests = %v, want 3", got)
	}
	if got := first[`p3_cache_hits_total{proxy="metrics-e2e",cache="variants"}`]; got != 2 {
		t.Errorf("variant cache hits = %v, want 2", got)
	}
	// Replication: 2 replicas per blob, photo + calibration probe stored.
	var puts float64
	for i := 0; i < 3; i++ {
		puts += first[fmt.Sprintf(`p3_shard_puts_total{shard="%d"}`, i)]
	}
	if puts < 2 {
		t.Errorf("total shard puts = %v, want >= 2", puts)
	}

	// /stats must agree with the exposition on the op counters.
	st := p.Stats()
	if float64(st.Download.Count) != first[`p3_proxy_requests_total{proxy="metrics-e2e",op="download"}`] {
		t.Errorf("/stats download count %d disagrees with /metrics", st.Download.Count)
	}
	if st.Download.P50Ms <= 0 {
		t.Errorf("download p50 = %v ms, want > 0", st.Download.P50Ms)
	}

	// More traffic, then re-scrape: every *_total and *_count series must
	// be monotone non-decreasing.
	for i := 0; i < 2; i++ {
		if _, err := p.Download(ctx, id, url.Values{"size": {"thumb"}}); err != nil {
			t.Fatal(err)
		}
	}
	second := scrape(t, p)
	for series, v1 := range first {
		if !strings.Contains(series, "_total") && !strings.Contains(series, "_count") &&
			!strings.Contains(series, "_bucket") && !strings.Contains(series, "_sum") {
			continue
		}
		v2, ok := second[series]
		if !ok {
			t.Errorf("series %s disappeared between scrapes", series)
			continue
		}
		if v2 < v1 {
			t.Errorf("series %s went backwards: %v -> %v", series, v1, v2)
		}
	}
	if d1, d2 := first[`p3_proxy_requests_total{proxy="metrics-e2e",op="download"}`],
		second[`p3_proxy_requests_total{proxy="metrics-e2e",op="download"}`]; d2 != d1+2 {
		t.Errorf("download requests %v -> %v, want +2", d1, d2)
	}
}

// TestMetricsErrorsCounted checks the error counter moves on a failing
// download and the request counter moves with it.
func TestMetricsErrorsCounted(t *testing.T) {
	bed := newServingBed(t, WithMetricsName("metrics-errors"))
	before := bed.proxy.Stats().Download
	if _, err := bed.proxy.Download(ctx, "no-such-photo", url.Values{}); err == nil {
		t.Fatal("download of absent photo succeeded")
	}
	after := bed.proxy.Stats().Download
	if after.Count != before.Count+1 {
		t.Errorf("download count %d -> %d, want +1", before.Count, after.Count)
	}
	if after.Errors != before.Errors+1 {
		t.Errorf("download errors %d -> %d, want +1", before.Errors, after.Errors)
	}
}

// TestMetricsErasureStore checks that a proxy over an erasure-coded store
// registers the p3_erasure_* per-shard series and the p3_repair_*
// self-healing series, and that share traffic actually moves them.
func TestMetricsErasureStore(t *testing.T) {
	key, err := p3.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	codec, err := p3.New(key)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]p3.SecretStore, 6)
	for i := range shards {
		shards[i] = p3.NewMemorySecretStore()
	}
	store, err := p3.NewErasureSecretStore(shards)
	if err != nil {
		t.Fatal(err)
	}
	photos := &countingPhotos{s: psp.NewServer(psp.FlickrLike())}
	p := New(codec, photos, store, WithMetricsName("metrics-erasure"))
	if _, err := p.Calibrate(ctx); err != nil {
		t.Fatal(err)
	}
	jpegBytes, _ := photoJPEG(t, 99, 320, 240)
	id, err := p.Upload(ctx, jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Download(ctx, id, url.Values{"size": {"small"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.ScrubOnce(ctx); err != nil {
		t.Fatal(err)
	}

	series := scrape(t, p)
	wantSeries := []string{
		`p3_erasure_share_reads_total{shard="0"}`,
		`p3_erasure_share_puts_total{shard="5"}`,
		`p3_erasure_share_repairs_total{shard="3"}`,
		`p3_repair_scrub_cycles_total`,
		`p3_repair_objects_scanned_total`,
		`p3_repair_lost_objects_total`,
		`p3_repair_degraded_reads_total`,
		`p3_repair_hints_parked_total`,
	}
	for _, s := range wantSeries {
		if _, ok := series[s]; !ok {
			t.Errorf("exposition missing series %s", s)
		}
	}
	var puts float64
	for i := 0; i < 6; i++ {
		puts += series[fmt.Sprintf(`p3_erasure_share_puts_total{shard="%d"}`, i)]
	}
	// The uploaded photo's secret part stripes into 6 shares.
	if puts < 6 {
		t.Errorf("total share puts = %v, want >= 6", puts)
	}
	if got := series[`p3_repair_scrub_cycles_total`]; got != 1 {
		t.Errorf("scrub cycles = %v, want 1", got)
	}
	if got := series[`p3_repair_lost_objects_total`]; got != 0 {
		t.Errorf("lost objects = %v, want 0", got)
	}
}
