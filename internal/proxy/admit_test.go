package proxy

// Admission-integration tests: class determination against the variant
// cache, HTTP 503 + Retry-After mapping for shed requests, and the shared
// Retry-After helper both back-pressure errors flow through.

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"p3/internal/admission"
	"p3/internal/metrics"
)

func newAdmissionBed(t *testing.T, cfg admission.Config) (*servingBed, *admission.Controller) {
	t.Helper()
	reg := metrics.NewRegistry()
	ctrl := admission.MustNew(cfg, reg, "test")
	bed := newServingBed(t, WithMetricsRegistry(reg), WithAdmission(ctrl))
	return bed, ctrl
}

// TestAdmissionClassDetermination: the first download of a variant is
// priced Cold, a repeat of the same variant Cached.
func TestAdmissionClassDetermination(t *testing.T) {
	bed, ctrl := newAdmissionBed(t, admission.Config{MaxInflight: 4})
	jpegBytes, _ := photoJPEG(t, 41, 320, 240)
	id, err := bed.proxy.Upload(ctx, jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	base := ctrl.Stats()
	if _, err := bed.proxy.Download(ctx, id, nil); err != nil {
		t.Fatal(err)
	}
	s := ctrl.Stats()
	if got := s.Cold.Admitted - base.Cold.Admitted; got != 1 {
		t.Errorf("first download admitted %d cold requests, want 1", got)
	}
	if _, err := bed.proxy.Download(ctx, id, nil); err != nil {
		t.Fatal(err)
	}
	s2 := ctrl.Stats()
	if got := s2.Cached.Admitted - s.Cached.Admitted; got != 1 {
		t.Errorf("repeat download admitted %d cached requests, want 1", got)
	}
	if got := s2.Cold.Admitted - s.Cold.Admitted; got != 0 {
		t.Errorf("repeat download admitted %d cold requests, want 0", got)
	}
}

// TestAdmissionHTTPShed: a client past its token-bucket burst gets 503
// with a Retry-After of at least one second, identified via the
// X-P3-Client header; a different client is still served.
func TestAdmissionHTTPShed(t *testing.T) {
	bed, _ := newAdmissionBed(t, admission.Config{
		MaxInflight: 4, ClientRPS: 0.001, ClientBurst: 1,
	})
	jpegBytes, _ := photoJPEG(t, 42, 320, 240)
	id, err := bed.proxy.Upload(admission.WithClient(ctx, "uploader"), jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	get := func(client string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, "/photo/"+id, nil)
		req.Header.Set(admission.ClientKeyHeader, client)
		w := httptest.NewRecorder()
		bed.proxy.ServeHTTP(w, req)
		return w
	}
	if w := get("greedy"); w.Code != http.StatusOK {
		t.Fatalf("first request: status %d, body %q", w.Code, w.Body.String())
	}
	w := get("greedy")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-budget request: status %d, want 503", w.Code)
	}
	secs, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", w.Header().Get("Retry-After"))
	}
	if w := get("patient"); w.Code != http.StatusOK {
		t.Fatalf("other client: status %d, want 200", w.Code)
	}
}

// TestRetryAfterHelperRounding: both back-pressure error types flow
// through one helper that rounds up to whole seconds and never emits "0".
func TestRetryAfterHelperRounding(t *testing.T) {
	tests := []struct {
		name string
		err  error
		want string
	}{
		{"calibration sub-second", &CalibrationInFlightError{RetryAfter: 300 * time.Millisecond}, "1"},
		{"calibration rounds up", &CalibrationInFlightError{RetryAfter: 1200 * time.Millisecond}, "2"},
		{"calibration zero", &CalibrationInFlightError{}, "1"},
		{"shed sub-second", &admission.ShedError{RetryAfter: 10 * time.Millisecond}, "1"},
		{"shed exact", &admission.ShedError{RetryAfter: 3 * time.Second}, "3"},
		{"shed wrapped", &PartialUploadError{ID: "x", Err: &admission.ShedError{RetryAfter: 5 * time.Second}}, "5"},
		{"unrelated error", errors.New("boom"), ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h := make(http.Header)
			setRetryAfter(h, tt.err)
			if got := h.Get("Retry-After"); got != tt.want {
				t.Errorf("Retry-After = %q, want %q", got, tt.want)
			}
		})
	}
}

// TestCalibrateHTTPRetryAfter: the /calibrate 503 carries the unified
// Retry-After header while a pass is in flight (regression for the
// hand-rolled header this path used to build).
func TestCalibrateHTTPRetryAfter(t *testing.T) {
	bed, _ := newAdmissionBed(t, admission.Config{MaxInflight: 4})
	// Occupy the calibration slot directly, as a long pass would.
	bed.proxy.calib.mu.Lock()
	bed.proxy.calib.busy.Store(true)
	bed.proxy.calib.passStart = time.Now()
	bed.proxy.calib.mu.Unlock()
	defer bed.proxy.calib.busy.Store(false)

	req := httptest.NewRequest(http.MethodPost, "/calibrate", nil)
	w := httptest.NewRecorder()
	bed.proxy.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
	secs, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", w.Header().Get("Retry-After"))
	}
}

// TestAdmissionStatsExposed: /stats carries the admission block when a
// controller is wired, and omits it otherwise.
func TestAdmissionStatsExposed(t *testing.T) {
	bed, _ := newAdmissionBed(t, admission.Config{MaxInflight: 4})
	if bed.proxy.Stats().Admission == nil {
		t.Fatal("Stats().Admission nil with a controller wired")
	}
	plain := newServingBed(t, WithMetricsRegistry(metrics.NewRegistry()))
	if plain.proxy.Stats().Admission != nil {
		t.Fatal("Stats().Admission non-nil without a controller")
	}
}
