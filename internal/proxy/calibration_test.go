package proxy

// Calibration-manager tests: incremental probe vs full sweep, in-flight
// rejection with Retry-After, cancellation, calibration-image cleanup, and
// the stale-while-revalidate hammer (run under -race in CI): downloads
// racing a recalibration serve old-epoch bytes byte-identical to the
// pre-calibration output and never observe a half-flipped epoch.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"p3"
	"p3/internal/imaging"
	"p3/internal/jpegx"
	"p3/internal/metrics"
	"p3/internal/psp"
)

// gatedPhotos wraps countingPhotos so a test can stall a calibration pass
// inside the PSP: once armed, fetches of any photo uploaded after arming
// block until release (or their ctx dies). Traffic for earlier photos — the
// downloads hammering the proxy meanwhile — passes straight through.
type gatedPhotos struct {
	*countingPhotos
	mu      sync.Mutex
	armed   bool
	gated   map[string]bool
	entered chan string   // receives the ID of each fetch that blocks
	release chan struct{} // closing it unblocks every gated fetch
}

func newGatedPhotos(pipeline psp.Pipeline) *gatedPhotos {
	return &gatedPhotos{
		countingPhotos: &countingPhotos{s: psp.NewServer(pipeline)},
		gated:          make(map[string]bool),
		entered:        make(chan string, 16),
		release:        make(chan struct{}),
	}
}

func (g *gatedPhotos) arm() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.armed = true
}

func (g *gatedPhotos) UploadPhoto(ctx context.Context, jpegBytes []byte) (string, error) {
	id, err := g.countingPhotos.UploadPhoto(ctx, jpegBytes)
	g.mu.Lock()
	if err == nil && g.armed {
		g.gated[id] = true
	}
	g.mu.Unlock()
	return id, err
}

func (g *gatedPhotos) FetchPhoto(ctx context.Context, id string, v p3.PhotoVariant) ([]byte, error) {
	g.mu.Lock()
	blocked := g.gated[id]
	g.mu.Unlock()
	if blocked {
		g.entered <- id
		select {
		case <-g.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return g.countingPhotos.FetchPhoto(ctx, id, v)
}

// gatedBed builds a calibrated proxy over a gateable PSP with a private
// metrics registry, so counter assertions see only this bed.
func gatedBed(t *testing.T, opts ...ProxyOption) (*gatedPhotos, *Proxy) {
	t.Helper()
	key, err := p3.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	codec, err := p3.New(key)
	if err != nil {
		t.Fatal(err)
	}
	photos := newGatedPhotos(psp.FlickrLike())
	opts = append([]ProxyOption{WithMetricsRegistry(metrics.NewRegistry())}, opts...)
	px := New(codec, photos, &countingStore{inner: p3.NewMemorySecretStore()}, opts...)
	if _, err := px.Calibrate(ctx); err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	return photos, px
}

// TestIncrementalProbe: while the PSP is stable, recalibration is a probe
// that confirms the epoch; when the PSP changes its pipeline, the probe
// fails the floor and the full sweep identifies the new one.
func TestIncrementalProbe(t *testing.T) {
	photos, px := gatedBed(t)
	if got := px.CalibrationEpoch(); got != 1 {
		t.Fatalf("epoch after first calibration = %d, want 1", got)
	}
	out, err := px.Recalibrate(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.FullSweep || out.Flipped || out.Epoch != 1 {
		t.Errorf("stable-PSP recalibration %+v, want probe-confirmed epoch 1", out)
	}
	st := px.Stats().Calibration
	if st.Probes != 1 || st.ProbeHits != 1 || st.Sweeps != 1 {
		t.Errorf("stats %+v, want 1 probe, 1 probe hit, 1 sweep", st)
	}

	// The PSP swaps in a very different pipeline behind our back.
	photos.s.Pipeline = psp.Pipeline{
		Filter:      imaging.Box,
		PreBlur:     0.5,
		Gamma:       1.1,
		Quality:     85,
		Subsampling: jpegx.Sub420,
	}
	out, err = px.Recalibrate(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if !out.FullSweep || !out.Flipped || out.Epoch != 2 {
		t.Errorf("post-change recalibration %+v, want sweep + flip to epoch 2", out)
	}
	if out.Result.PSNR < 30 {
		t.Errorf("re-identified pipeline scores %.1f dB, want >= 30", out.Result.PSNR)
	}
	st = px.Stats().Calibration
	if st.Probes != 2 || st.ProbeHits != 1 || st.Sweeps != 2 {
		t.Errorf("stats %+v, want 2 probes, 1 probe hit, 2 sweeps", st)
	}
}

// TestCalibrationImageCleanedUp: the probe photo a pass uploads to the PSP
// is deleted afterwards — it is proxy scaffolding, not user data — and a
// PSP without delete support is tolerated.
func TestCalibrationImageCleanedUp(t *testing.T) {
	photos, px := gatedBed(t)
	uploadsBefore := photos.uploads.Load()
	// Track the pass's upload by diffing the PSP: re-run a pass and verify
	// its image is gone. countingPhotos counts, the psp.Server holds state;
	// easiest check is that fetching any ID uploaded during the pass fails.
	var calibID string
	photos.mu.Lock()
	photos.armed = true // record IDs uploaded from here on in g.gated
	photos.mu.Unlock()
	// Don't block the fetch: release the gate up front.
	close(photos.release)
	done := make(chan error, 1)
	go func() {
		_, err := px.Recalibrate(ctx, false)
		done <- err
	}()
	calibID = <-photos.entered
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := photos.uploads.Load() - uploadsBefore; got != 1 {
		t.Fatalf("calibration pass made %d uploads, want 1", got)
	}
	if _, err := photos.countingPhotos.FetchPhoto(ctx, calibID, p3.PhotoVariant{Size: "small"}); !p3.IsNotFound(err) {
		t.Errorf("calibration image %q still on the PSP after the pass (err = %v)", calibID, err)
	}

	// A PSP without PhotoDeleter: the pass must still succeed.
	key, _ := p3.NewKey()
	codec, err := p3.New(key)
	if err != nil {
		t.Fatal(err)
	}
	bare := struct{ p3.PhotoService }{&countingPhotos{s: psp.NewServer(psp.FlickrLike())}}
	px2 := New(codec, bare, p3.NewMemorySecretStore(), WithMetricsRegistry(metrics.NewRegistry()))
	if _, err := px2.Calibrate(ctx); err != nil {
		t.Fatalf("calibrate against delete-less PSP: %v", err)
	}
}

// TestCalibrateRejectedWhileInFlight: a second calibration attempt while
// one is running fails fast with *CalibrationInFlightError, and over HTTP
// that is a 503 with a Retry-After header.
func TestCalibrateRejectedWhileInFlight(t *testing.T) {
	photos, px := gatedBed(t)
	srv := httptest.NewServer(px)
	defer srv.Close()

	photos.arm()
	first := make(chan error, 1)
	go func() {
		_, err := px.Recalibrate(ctx, true)
		first <- err
	}()
	<-photos.entered // the pass is now blocked inside the PSP
	if !px.CalibrationInFlight() {
		t.Error("CalibrationInFlight() = false while a pass is blocked")
	}

	_, err := px.Recalibrate(ctx, false)
	var inFlight *CalibrationInFlightError
	if !errors.As(err, &inFlight) {
		t.Fatalf("concurrent Recalibrate returned %v, want *CalibrationInFlightError", err)
	}
	if inFlight.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", inFlight.RetryAfter)
	}

	resp, err := http.Post(srv.URL+"/calibrate", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST /calibrate during a pass = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 response carries no Retry-After header")
	}
	if got := px.Stats().Calibration.Rejected; got != 2 {
		t.Errorf("rejected counter = %d, want 2", got)
	}

	close(photos.release)
	if err := <-first; err != nil {
		t.Fatalf("gated pass failed after release: %v", err)
	}
	// The slot is free again: POST /calibrate now runs a pass (a probe —
	// the PSP didn't change) and succeeds.
	resp2, err := http.Post(srv.URL+"/calibrate", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("POST /calibrate after release = %d, want 200", resp2.StatusCode)
	}
}

// TestCalibrateCancellation: cancelling the calibrate ctx aborts a blocked
// pass promptly and frees the slot for the next one.
func TestCalibrateCancellation(t *testing.T) {
	photos, px := gatedBed(t)
	photos.arm()
	cctx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() {
		_, err := px.Recalibrate(cctx, true)
		done <- err
	}()
	<-photos.entered
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled pass returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled calibration did not return")
	}
	deadline := time.Now().Add(5 * time.Second)
	for px.CalibrationInFlight() {
		if time.Now().After(deadline) {
			t.Fatal("busy slot not released after cancellation")
		}
		time.Sleep(time.Millisecond)
	}
	// Next pass succeeds once the gate is open.
	photos.mu.Lock()
	photos.armed = false
	clear(photos.gated)
	photos.mu.Unlock()
	if _, err := px.Recalibrate(ctx, false); err != nil {
		t.Fatalf("recalibrate after cancellation: %v", err)
	}
}

// TestStaleServingDuringRecalibration is the -race hammer pinning
// stale-while-revalidate: downloads racing an in-flight recalibration are
// error-free and byte-identical to the pre-calibration output — no
// half-flipped epoch, no 503s, no stampede onto a purged cache — and once
// the flip lands, the pre-warmed entries serve the same bytes with a warm
// hit recorded.
func TestStaleServingDuringRecalibration(t *testing.T) {
	photos, px := gatedBed(t)
	const photoCount = 3
	ids := make([]string, photoCount)
	refs := make(map[string][]byte)
	sizes := []string{"small", "thumb"}
	for i := range ids {
		jpegBytes, _ := photoJPEG(t, int64(100+i), 320, 240)
		id, err := px.Upload(ctx, jpegBytes)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		for _, size := range sizes {
			ref, err := px.Download(ctx, id, url.Values{"size": {size}})
			if err != nil {
				t.Fatal(err)
			}
			refs[id+"/"+size] = ref
		}
	}
	epochBefore := px.CalibrationEpoch()

	photos.arm()
	recalDone := make(chan struct{})
	var recalOut CalibrationOutcome
	var recalErr error
	go func() {
		defer close(recalDone)
		recalOut, recalErr = px.Recalibrate(ctx, true)
	}()
	<-photos.entered // the pass is pinned inside the PSP

	hammer := func(phase string) {
		t.Helper()
		const workers, rounds = 8, 40
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					id := ids[(w+r)%len(ids)]
					size := sizes[r%len(sizes)]
					got, err := px.Download(ctx, id, url.Values{"size": {size}})
					if err != nil {
						errs[w] = fmt.Errorf("%s round %d: %w", phase, r, err)
						return
					}
					if !bytes.Equal(got, refs[id+"/"+size]) {
						errs[w] = fmt.Errorf("%s round %d: bytes differ from pre-calibration reference", phase, r)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	// Phase 1: the pass is blocked inside the PSP; every download must be
	// served from the previous epoch, byte-identical.
	hammer("blocked")
	if got := px.CalibrationEpoch(); got != epochBefore {
		t.Fatalf("epoch moved %d → %d while the pass was still blocked", epochBefore, got)
	}
	if got := px.Stats().Calibration.StaleServes; got == 0 {
		t.Error("no stale serves recorded during an in-flight pass")
	}

	// Phase 2: release the gate — the sweep, flip, purge and pre-warm race
	// the same download hammer. Bytes must stay identical throughout: the
	// PSP didn't change, so old-epoch and new-epoch reconstructions agree,
	// and a half-flipped epoch (old key, new params or vice versa) is the
	// only way this could fail.
	close(photos.release)
	hammerDone := make(chan struct{})
	go func() {
		defer close(hammerDone)
		for {
			select {
			case <-recalDone:
				return
			default:
				hammer("flipping")
			}
		}
	}()
	<-recalDone
	<-hammerDone
	if recalErr != nil {
		t.Fatalf("recalibration failed: %v", recalErr)
	}
	if !recalOut.Flipped || recalOut.Epoch != epochBefore+1 {
		t.Fatalf("recalibration outcome %+v, want flip to epoch %d", recalOut, epochBefore+1)
	}
	if recalOut.Warmed == 0 {
		t.Error("flip pre-warmed no variants despite a hot working set")
	}

	// Phase 3: post-flip serving is byte-identical and lands warm hits.
	hammer("post-flip")
	st := px.Stats().Calibration
	if st.WarmHits == 0 {
		t.Error("warm-hit counter still 0 after post-flip hammer")
	}
	if st.Epoch != epochBefore+1 {
		t.Errorf("stats epoch = %d, want %d", st.Epoch, epochBefore+1)
	}
}

// TestBackgroundRecalibrationLoop: a proxy built with a recalibrate
// interval probes on its own; Close stops the loop.
func TestBackgroundRecalibrationLoop(t *testing.T) {
	key, err := p3.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	codec, err := p3.New(key)
	if err != nil {
		t.Fatal(err)
	}
	photos := &countingPhotos{s: psp.NewServer(psp.FlickrLike())}
	px := New(codec, photos, p3.NewMemorySecretStore(),
		WithMetricsRegistry(metrics.NewRegistry()),
		WithRecalibrateInterval(50*time.Millisecond))
	defer px.Close()
	if _, err := px.Calibrate(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for px.Stats().Calibration.ProbeHits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background loop never ran a probe")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := px.CalibrationEpoch(); got != 1 {
		t.Errorf("background probes flipped the epoch to %d on a stable PSP", got)
	}
	px.Close() // idempotent with the deferred Close
}
