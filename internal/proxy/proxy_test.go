package proxy

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"p3"
	"p3/internal/dataset"
	"p3/internal/imaging"
	"p3/internal/jpegx"
	"p3/internal/psp"
)

var ctx = context.Background()

// testbed wires a PSP, a blob store, and a calibrated proxy.
type testbed struct {
	psp    *psp.Server
	store  *psp.BlobStore
	pspSrv *httptest.Server
	stSrv  *httptest.Server
	proxy  *Proxy
	key    p3.Key
}

func newProxy(t *testing.T, tb *testbed, key p3.Key) *Proxy {
	t.Helper()
	codec, err := p3.New(key)
	if err != nil {
		t.Fatal(err)
	}
	return New(codec, p3.NewHTTPPhotoService(tb.pspSrv.URL), p3.NewHTTPSecretStore(tb.stSrv.URL))
}

func newTestbed(t *testing.T, pipeline psp.Pipeline) *testbed {
	t.Helper()
	tb := &testbed{psp: psp.NewServer(pipeline), store: psp.NewBlobStore()}
	tb.pspSrv = httptest.NewServer(tb.psp)
	tb.stSrv = httptest.NewServer(tb.store)
	t.Cleanup(tb.pspSrv.Close)
	t.Cleanup(tb.stSrv.Close)
	key, err := p3.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	tb.key = key
	tb.proxy = newProxy(t, tb, key)
	if _, err := tb.proxy.Calibrate(ctx); err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	return tb
}

func photoJPEG(t *testing.T, seed int64, w, h int) ([]byte, *jpegx.PlanarImage) {
	t.Helper()
	img := dataset.Natural(seed, w, h)
	coeffs, err := img.ToCoeffs(92, jpegx.Sub420)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&buf, coeffs, nil); err != nil {
		t.Fatal(err)
	}
	// The reference for PSNR purposes is the JPEG-decoded image, not the
	// pre-compression pixels.
	return buf.Bytes(), coeffs.ToPlanar()
}

func psnr(a, b *jpegx.PlanarImage) float64 {
	var mse float64
	var n int
	for pi := range a.Planes {
		for i := range a.Planes[pi] {
			d := clampT(a.Planes[pi][i]) - clampT(b.Planes[pi][i])
			mse += d * d
			n++
		}
	}
	mse /= float64(n)
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

func clampT(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// TestEndToEndReconstruction is the paper's full system loop: sender proxy
// splits and uploads; PSP transforms; recipient proxy fetches both parts
// and reconstructs. The paper reports ~34-40 dB for reverse-engineered
// pipelines; we require >= 27 dB for the big variant on both PSP styles.
func TestEndToEndReconstruction(t *testing.T) {
	for _, tc := range []struct {
		name     string
		pipeline psp.Pipeline
		floor    float64
	}{
		{"facebook_like", psp.FacebookLike(), 27},
		{"flickr_like", psp.FlickrLike(), 27},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tb := newTestbed(t, tc.pipeline)
			jpegBytes, ref := photoJPEG(t, 42, 640, 480)
			id, err := tb.proxy.Upload(ctx, jpegBytes)
			if err != nil {
				t.Fatal(err)
			}
			rec, err := tb.proxy.DownloadPixels(ctx, id, url.Values{"size": {"big"}})
			if err != nil {
				t.Fatal(err)
			}
			// Ground truth: the PSP's own pipeline applied to the *original*
			// (unsplit) photo at the same size.
			want := imaging.Clamp(tc.pipeline.Op(rec.Width, rec.Height).Apply(ref))
			got := psnr(want, rec)
			if got < tc.floor {
				t.Errorf("reconstruction PSNR %.1f dB, want >= %.1f", got, tc.floor)
			}
			t.Logf("reconstruction PSNR: %.1f dB", got)

			// The public part alone must be much worse — that's the privacy.
			rawPub, err := tb.proxy.photos.FetchPhoto(ctx, id, p3.PhotoVariant{Size: "big"})
			if err != nil {
				t.Fatal(err)
			}
			pubIm, err := jpegx.Decode(bytes.NewReader(rawPub))
			if err != nil {
				t.Fatal(err)
			}
			pubPSNR := psnr(want, pubIm.ToPlanar())
			if pubPSNR > 20 {
				t.Errorf("public part PSNR %.1f dB — too much signal left public", pubPSNR)
			}
			if got-pubPSNR < 10 {
				t.Errorf("reconstruction gain %.1f dB over public part too small", got-pubPSNR)
			}
		})
	}
}

func TestSecretPartCache(t *testing.T) {
	tb := newTestbed(t, psp.FlickrLike())
	jpegBytes, _ := photoJPEG(t, 7, 320, 240)
	id, err := tb.proxy.Upload(ctx, jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	// The upload warmed the cache: the uploader's own views cost zero
	// secret-part fetches.
	before := tb.store.GetCount()
	if _, err := tb.proxy.DownloadPixels(ctx, id, url.Values{"size": {"thumb"}}); err != nil {
		t.Fatal(err)
	}
	if got := tb.store.GetCount() - before; got != 0 {
		t.Errorf("store fetched %d times for the uploader's view, want 0 (warmed)", got)
	}
	// A cold proxy (a recipient, or after restart) fetches once for any
	// number of views.
	tb.proxy.InvalidateCaches()
	before = tb.store.GetCount()
	if _, err := tb.proxy.DownloadPixels(ctx, id, url.Values{"size": {"thumb"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.proxy.DownloadPixels(ctx, id, url.Values{"size": {"big"}}); err != nil {
		t.Fatal(err)
	}
	if got := tb.store.GetCount() - before; got != 1 {
		t.Errorf("store fetched %d times for two cold views, want 1 (cache)", got)
	}
}

func TestDownloadRequiresCalibration(t *testing.T) {
	tb := newTestbed(t, psp.FlickrLike())
	fresh := newProxy(t, tb, tb.key)
	jpegBytes, _ := photoJPEG(t, 8, 160, 120)
	id, err := tb.proxy.Upload(ctx, jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.DownloadPixels(ctx, id, nil); err == nil {
		t.Error("uncalibrated download must fail")
	}
	if fresh.Calibrated() {
		t.Error("fresh proxy claims calibration")
	}
	if !tb.proxy.Calibrated() {
		t.Error("calibrated proxy denies calibration")
	}
}

func TestWrongKeyFailsAuth(t *testing.T) {
	tb := newTestbed(t, psp.FlickrLike())
	jpegBytes, _ := photoJPEG(t, 9, 160, 120)
	id, err := tb.proxy.Upload(ctx, jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	otherKey, _ := p3.NewKey()
	eve := newProxy(t, tb, otherKey)
	if _, err := eve.Calibrate(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := eve.DownloadPixels(ctx, id, url.Values{"size": {"big"}}); err == nil {
		t.Error("download with the wrong key must fail authentication")
	}
}

func TestTransparentHTTPInterposition(t *testing.T) {
	tb := newTestbed(t, psp.FlickrLike())
	proxySrv := httptest.NewServer(tb.proxy)
	defer proxySrv.Close()

	// The "application" speaks the PSP protocol to the proxy.
	jpegBytes, _ := photoJPEG(t, 10, 320, 240)
	resp, err := http.Post(proxySrv.URL+"/upload", "image/jpeg", bytes.NewReader(jpegBytes))
	if err != nil {
		t.Fatal(err)
	}
	var out struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out.ID == "" {
		t.Fatal("no photo ID")
	}
	get, err := http.Get(proxySrv.URL + "/photo/" + out.ID + "?size=small")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(get.Body)
	get.Body.Close()
	if get.StatusCode != http.StatusOK {
		t.Fatalf("download status %s: %s", get.Status, body)
	}
	w, h, _, _, err := jpegx.DecodeConfig(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("reconstructed bytes not a JPEG: %v", err)
	}
	if w > 130 || h > 130 {
		t.Errorf("small variant %dx%d", w, h)
	}
	// Unknown route.
	nf, _ := http.Get(proxySrv.URL + "/other")
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status %d", nf.StatusCode)
	}
}

func TestDynamicCropReconstruction(t *testing.T) {
	tb := newTestbed(t, psp.FlickrLike())
	jpegBytes, ref := photoJPEG(t, 11, 400, 300)
	id, err := tb.proxy.Upload(ctx, jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	q := url.Values{"crop": {"80,60,240,180"}, "w": {"120"}, "h": {"90"}}
	rec, err := tb.proxy.DownloadPixels(ctx, id, q)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Width != 120 || rec.Height != 90 {
		t.Fatalf("crop download %dx%d", rec.Width, rec.Height)
	}
	want := imaging.Clamp(imaging.Compose{
		imaging.Crop{X: 80, Y: 60, W: 240, H: 180},
		tb.psp.Pipeline.Op(120, 90),
	}.Apply(ref))
	if got := psnr(want, rec); got < 22 {
		t.Errorf("cropped reconstruction PSNR %.1f dB, want >= 22", got)
	}
}

func TestUploadRejectedPropagates(t *testing.T) {
	tb := newTestbed(t, psp.FlickrLike())
	if _, err := tb.proxy.Upload(ctx, []byte("not a jpeg")); err == nil {
		t.Error("junk upload must fail at the split stage")
	}
}

// memPhotos adapts the in-process PSP server to p3.PhotoService directly —
// no HTTP. Together with p3.MemorySecretStore it shows alternate backends
// dropping into the proxy unchanged.
type memPhotos struct{ s *psp.Server }

func (m memPhotos) UploadPhoto(_ context.Context, jpegBytes []byte) (string, error) {
	return m.s.Upload(jpegBytes)
}

func (m memPhotos) FetchPhoto(_ context.Context, id string, v p3.PhotoVariant) ([]byte, error) {
	q := v.Query()
	return m.s.Photo(id, q.Get("size"), q.Get("crop"), q.Get("w"), q.Get("h"))
}

func TestInMemoryBackends(t *testing.T) {
	key, err := p3.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	codec, err := p3.New(key)
	if err != nil {
		t.Fatal(err)
	}
	p := New(codec, memPhotos{s: psp.NewServer(psp.FlickrLike())}, p3.NewMemorySecretStore())
	if _, err := p.Calibrate(ctx); err != nil {
		t.Fatalf("calibrate over in-memory backends: %v", err)
	}
	jpegBytes, ref := photoJPEG(t, 21, 320, 240)
	id, err := p.Upload(ctx, jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p.DownloadPixels(ctx, id, url.Values{"size": {"small"}})
	if err != nil {
		t.Fatal(err)
	}
	want := imaging.Clamp(psp.FlickrLike().Op(rec.Width, rec.Height).Apply(ref))
	if got := psnr(want, rec); got < 25 {
		t.Errorf("in-memory reconstruction PSNR %.1f dB, want >= 25", got)
	}
}
