// Dedup and similarity surface of the proxy.
//
// The proxy stays a pure consumer here too: deduplication is a
// PhotoService middleware (internal/dedup) handed in as the photos
// backend, so Upload/Download/Delete run the exact same code with dedup
// on or off — the differential tests rely on that. The similarity index
// (internal/similarity) is injected with WithSimilarity; every photo
// upload feeds the public part to its background ingest, and GET
// /similar/{id}?d=N answers hamming-radius queries over public parts
// without ever touching a secret part.
package proxy

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"p3"
	"p3/internal/dedup"
	"p3/internal/similarity"
)

// DefaultSimilarDistance is the hamming radius used when a /similar
// query names none.
const DefaultSimilarDistance = 10

// WithSimilarity attaches a perceptual-hash index: uploads enqueue
// their public part for background hashing, GET /similar/{id}?d=N
// serves neighbor queries, and Delete removes the photo from the index.
// The caller owns the index (and its Close).
func WithSimilarity(ix *similarity.Index) ProxyOption {
	return func(c *proxyConfig) { c.similarity = ix }
}

// dedupStatser detects a dedup layer in the photos backend; satisfied
// by *dedup.Store. Mirrors shardStatser/erasureStatser: the proxy never
// names the concrete backend, it only asks whether stats exist.
type dedupStatser interface {
	DedupStats() dedup.Stats
}

// errNoSimilarity answers /similar when no index was configured.
var errNoSimilarity = errors.New("proxy: similarity index not enabled")

// Similar returns the indexed photos within maxDist hamming bits of
// id's public-part perceptual hash, nearest first, excluding id itself.
// A photo whose ingest is still queued becomes visible after an index
// flush, so an upload immediately followed by /similar never 404s.
func (p *Proxy) Similar(ctx context.Context, id string, maxDist int) (_ []similarity.Match, err error) {
	defer p.similarOp.observe(time.Now(), &err)
	if p.sim == nil {
		return nil, &RequestError{Err: errNoSimilarity}
	}
	if err := validateID(id); err != nil {
		return nil, err
	}
	if maxDist < 0 || maxDist > 64 {
		return nil, &RequestError{Err: fmt.Errorf("proxy: similarity distance %d outside [0, 64]", maxDist)}
	}
	matches, ok := p.sim.QueryID(id, maxDist)
	if !ok {
		p.sim.Flush()
		if matches, ok = p.sim.QueryID(id, maxDist); !ok {
			return nil, &p3.NotFoundError{Kind: "photo", ID: id}
		}
	}
	return matches, nil
}

// Delete removes a photo end to end: the sealed secret part (when the
// store supports deletion), every cache entry serving it, its
// similarity index entry, and finally the public part — which, behind a
// dedup layer, only drops one reference and touches the PSP when the
// last reference goes.
//
// The secret part goes first: a failure midway then leaves a photo that
// cannot be reconstructed, never a deleted public part with a live
// secret dangling in the blob store.
func (p *Proxy) Delete(ctx context.Context, id string) (err error) {
	defer p.deleteOp.observe(time.Now(), &err)
	if err := validateID(id); err != nil {
		return err
	}
	if sd, ok := p.store.(p3.SecretDeleter); ok {
		if err := sd.DeleteSecret(ctx, id); err != nil && !p3.IsNotFound(err) {
			return err
		}
	}
	p.secrets.Delete(id)
	p.dims.Delete(id)
	p.variants.PurgeMatching(func(key string) bool {
		kid, _, ok := parseVariantKey(key)
		return ok && kid == id
	})
	if p.sim != nil {
		p.sim.Remove(id)
	}
	if _, err := p.deletePublicPart(ctx, id); err != nil {
		return err
	}
	return nil
}

// serveSimilarHTTP answers GET /similar/{id}?d=N with the neighbor list
// as JSON.
func (p *Proxy) serveSimilarHTTP(ctx context.Context, id string, dq string) (any, error) {
	d := DefaultSimilarDistance
	if dq != "" {
		v, err := strconv.Atoi(dq)
		if err != nil {
			return nil, &RequestError{Err: fmt.Errorf("proxy: similarity distance %q is not an integer", dq)}
		}
		d = v
	}
	matches, err := p.Similar(ctx, id, d)
	if err != nil {
		return nil, err
	}
	if matches == nil {
		matches = []similarity.Match{}
	}
	return map[string]any{"id": id, "d": d, "matches": matches}, nil
}
