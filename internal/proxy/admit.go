package proxy

// Admission wiring: the proxy itself stays policy-free — all shedding
// decisions live in internal/admission — but each serving operation asks
// the controller for a slot before doing real work, tagged with its cost
// class so a cached-variant hit is never stuck behind a cold
// reconstruction or a calibration sweep. Without WithAdmission every
// admit is a no-op and the proxy behaves exactly as before.

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"

	"p3/internal/admission"
)

// WithAdmission puts an admission controller in front of every serving
// operation (photo and video uploads/downloads, calibration). Requests the
// controller sheds fail with *admission.ShedError, which ServeHTTP maps to
// 503 + Retry-After.
func WithAdmission(ctrl *admission.Controller) ProxyOption {
	return func(c *proxyConfig) { c.admission = ctrl }
}

// admit asks the admission layer for a slot in the given cost class,
// identifying the client from the context (set by ServeHTTP from the
// request, or by in-process callers via admission.WithClient). The
// returned release must be called when the operation finishes; with no
// controller configured both are free no-ops.
func (p *Proxy) admit(ctx context.Context, class admission.Class) (func(), error) {
	if p.admission == nil {
		return func() {}, nil
	}
	return p.admission.Admit(ctx, class, admission.ClientFromContext(ctx))
}

// downloadClass classifies one variant-cache key: a resident key is a
// cheap memory read (Cached), anything else pays fetch + reconstruct
// (Cold). Containment can go stale between this peek and the real lookup —
// that only mis-prices a request, never mis-serves it.
func (p *Proxy) downloadClass(key string) admission.Class {
	if p.admission == nil || p.variants.Contains(key) {
		return admission.Cached
	}
	return admission.Cold
}

// retryAfterSeconds renders a back-off hint as the whole-second value the
// Retry-After header carries, rounding up so a sub-second hint never
// becomes "0" — which clients read as "retry immediately", the opposite of
// back-pressure.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// setRetryAfter attaches the Retry-After header for back-pressure errors —
// a calibration already in flight, or a request shed by the admission
// layer. One helper for both, so every 503 the proxy emits carries the
// same, correctly rounded hint. Other errors pass through untouched.
func setRetryAfter(h http.Header, err error) {
	var inFlight *CalibrationInFlightError
	var shed *admission.ShedError
	switch {
	case errors.As(err, &inFlight):
		h.Set("Retry-After", strconv.Itoa(retryAfterSeconds(inFlight.RetryAfter)))
	case errors.As(err, &shed):
		h.Set("Retry-After", strconv.Itoa(retryAfterSeconds(shed.RetryAfter)))
	}
}

// httpError writes one serving error the standard way: Retry-After for
// back-pressure, then the status statusFor assigns.
func httpError(w http.ResponseWriter, err error) {
	setRetryAfter(w.Header(), err)
	http.Error(w, err.Error(), statusFor(err))
}
