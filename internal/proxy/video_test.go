package proxy

// Video serving tests: end-to-end clip round trip over real disk shards,
// frame-addressed downloads through the variant cache, HTTP routes and
// status mapping, and the upload bound.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"testing"

	"p3"
	"p3/internal/psp"
)

// videoBed wires a proxy over an in-process PSP and a 3-disk-shard
// sharded secret store — the stack the video workload is specified
// against. The proxy is deliberately NOT calibrated: the video path must
// not depend on pipeline calibration.
type videoBed struct {
	store *countingStore
	proxy *Proxy
	codec *p3.Codec
}

func newVideoBed(t *testing.T, opts ...ProxyOption) *videoBed {
	t.Helper()
	root := t.TempDir()
	shards := make([]p3.SecretStore, 3)
	for i := range shards {
		disk, err := p3.NewDiskSecretStore(filepath.Join(root, fmt.Sprintf("shard%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = disk
	}
	sharded, err := p3.NewShardedSecretStore(shards, p3.WithShardReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	key, err := p3.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	codec, err := p3.New(key)
	if err != nil {
		t.Fatal(err)
	}
	bed := &videoBed{store: &countingStore{inner: sharded}, codec: codec}
	bed.proxy = New(codec, &countingPhotos{s: psp.NewServer(psp.FacebookLike())}, bed.store, opts...)
	return bed
}

// testClip packs a few synthetic JPEG frames into a P3MJ clip.
func testClip(t *testing.T, frames int) []byte {
	t.Helper()
	jpegs := make([][]byte, frames)
	for i := range jpegs {
		jpegs[i], _ = photoJPEG(t, int64(500+i), 96, 64)
	}
	clip, err := p3.PackMJPEG(jpegs)
	if err != nil {
		t.Fatal(err)
	}
	return clip
}

func TestVideoServingEndToEnd(t *testing.T) {
	bed := newVideoBed(t)
	clip := testClip(t, 4)

	id, frames, err := bed.proxy.UploadVideo(ctx, clip)
	if err != nil {
		t.Fatal(err)
	}
	if frames != 4 {
		t.Fatalf("upload reports %d frames", frames)
	}

	// The whole-clip download reconstructs every frame exactly (the codec
	// join is coefficient-exact; here we check byte-for-byte against a
	// direct join of the stored parts).
	full, err := bed.proxy.DownloadVideo(ctx, id, url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := bed.store.GetSecret(ctx, id+videoPubSuffix)
	if err != nil {
		t.Fatal(err)
	}
	sec, err := bed.store.GetSecret(ctx, id+videoSecSuffix)
	if err != nil {
		t.Fatal(err)
	}
	want, err := bed.codec.JoinVideoBytes(pub, sec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, want) {
		t.Error("proxy clip download differs from direct join")
	}

	// Frame seeks agree with the joined clip, frame by frame.
	joinedFrames, err := p3.UnpackMJPEG(full)
	if err != nil {
		t.Fatal(err)
	}
	for i := range joinedFrames {
		b, err := bed.proxy.DownloadVideo(ctx, id, url.Values{"frame": {fmt.Sprint(i)}})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, joinedFrames[i]) {
			t.Errorf("frame %d seek differs from whole-clip join", i)
		}
	}

	st := bed.proxy.Stats()
	if st.VideoUpload.Count != 1 {
		t.Errorf("video upload count %d", st.VideoUpload.Count)
	}
	if st.VideoDownload.Count != 5 {
		t.Errorf("video download count %d", st.VideoDownload.Count)
	}
}

// TestVideoDownloadCached verifies repeats are served from the variant
// cache and the two stored blobs are fetched once, not once per frame.
func TestVideoDownloadCached(t *testing.T) {
	bed := newVideoBed(t)
	id, _, err := bed.proxy.UploadVideo(ctx, testClip(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	// The upload warmed the blob cache; purge so the first download pays
	// real store reads.
	bed.proxy.InvalidateCaches()
	bed.store.gets.Store(0)

	q := url.Values{"frame": {"1"}}
	first, err := bed.proxy.DownloadVideo(ctx, id, q)
	if err != nil {
		t.Fatal(err)
	}
	gotGets := bed.store.gets.Load()
	if gotGets != 2 {
		t.Errorf("first seek cost %d store reads, want 2 (pub+sec)", gotGets)
	}
	// Seeking the other frames reuses the cached blobs.
	if _, err := bed.proxy.DownloadVideo(ctx, id, url.Values{"frame": {"0"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := bed.proxy.DownloadVideo(ctx, id, url.Values{"frame": {"2"}}); err != nil {
		t.Fatal(err)
	}
	if bed.store.gets.Load() != gotGets {
		t.Errorf("frame seeks after the first cost %d extra store reads", bed.store.gets.Load()-gotGets)
	}
	// A repeat of the first seek is a pure variant-cache hit, as is any
	// equivalent spelling of the same frame index — the cache keys on the
	// parsed index, not the raw query string.
	variantsBefore := bed.proxy.Stats().Variants.Hits
	for _, spelling := range []string{"1", "01", "+1", "0000000001"} {
		again, err := bed.proxy.DownloadVideo(ctx, id, url.Values{"frame": {spelling}})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Errorf("frame=%s differs from frame=1", spelling)
		}
	}
	if hits := bed.proxy.Stats().Variants.Hits; hits != variantsBefore+4 {
		t.Errorf("variant hits %d, want %d", hits, variantsBefore+4)
	}

	// Recalibration purges photo variants but spares clip renditions:
	// clip reconstruction does not depend on the calibrated pipeline.
	if _, err := bed.proxy.Calibrate(ctx); err != nil {
		t.Fatal(err)
	}
	hitsBefore := bed.proxy.Stats().Variants.Hits
	if _, err := bed.proxy.DownloadVideo(ctx, id, q); err != nil {
		t.Fatal(err)
	}
	if hits := bed.proxy.Stats().Variants.Hits; hits != hitsBefore+1 {
		t.Errorf("post-calibrate seek missed the cache (hits %d, want %d)", hits, hitsBefore+1)
	}
}

// TestVideoHTTPRoutes exercises the wire surface: upload, full and
// frame-addressed download, and the status mapping for hostile input.
func TestVideoHTTPRoutes(t *testing.T) {
	bed := newVideoBed(t, WithVideoMaxBytes(1<<20))
	srv := httptest.NewServer(bed.proxy)
	defer srv.Close()

	clip := testClip(t, 2)
	resp, err := http.Post(srv.URL+"/video/upload", "application/octet-stream", bytes.NewReader(clip))
	if err != nil {
		t.Fatal(err)
	}
	var up struct {
		ID     string `json:"id"`
		Frames int    `json:"frames"`
	}
	if err := jsonDecode(resp, &up); err != nil {
		t.Fatal(err)
	}
	if up.ID == "" || up.Frames != 2 {
		t.Fatalf("upload response %+v", up)
	}

	get := func(path string) (int, []byte, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body, resp.Header.Get("Content-Type")
	}

	if code, body, ct := get("/video/" + up.ID); code != http.StatusOK || ct != "video/x-p3-mjpeg" {
		t.Errorf("clip download: %d %s (%d bytes)", code, ct, len(body))
	}
	if code, body, ct := get("/video/" + up.ID + "?frame=1"); code != http.StatusOK || ct != "image/jpeg" || len(body) == 0 {
		t.Errorf("frame download: %d %s (%d bytes)", code, ct, len(body))
	}
	for path, want := range map[string]int{
		"/video/" + up.ID + "?frame=xyz": http.StatusBadRequest, // malformed index
		"/video/" + up.ID + "?frame=-1":  http.StatusBadRequest,
		"/video/" + up.ID + "?frame=99":  http.StatusNotFound, // past the end
		"/video/no-such-clip":            http.StatusNotFound,
		"/video/bad..id":                 http.StatusBadRequest,
	} {
		if code, _, _ := get(path); code != want {
			t.Errorf("GET %s = %d, want %d", path, code, want)
		}
	}

	// Garbage upload bounces as the client's fault.
	resp, err = http.Post(srv.URL+"/video/upload", "application/octet-stream", bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage upload: %d", resp.StatusCode)
	}

	// An upload over the configured bound bounces without being split.
	big := make([]byte, 1<<20+1)
	resp, err = http.Post(srv.URL+"/video/upload", "application/octet-stream", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversize upload: %d", resp.StatusCode)
	}
}

// jsonDecode drains and decodes one JSON response body.
func jsonDecode(resp *http.Response, dst any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}
