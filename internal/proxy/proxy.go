// Package proxy implements P3's client-side trusted proxy (§4.1): a small
// HTTP service on the user's device that interposes on PSP traffic. On
// upload it transparently splits a photo, sends the public part to the PSP
// and the encrypted secret part to a blob store under the PSP-assigned ID;
// on download it fetches both parts, reverses the PSP's (calibrated)
// transform per Eq. (2), and hands the application a reconstructed JPEG.
// Applications speak the PSP's own API to the proxy; neither the PSP nor
// the app changes.
//
// The proxy is a pure consumer of the public p3 surface: it splits and
// reconstructs through a p3.Codec and talks to the two untrusted parties
// through the p3.PhotoService and p3.SecretStore interfaces, so HTTP,
// in-memory, disk, or sharded backends drop in interchangeably.
package proxy

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"

	"p3"
	"p3/internal/core"
	"p3/internal/dataset"
	"p3/internal/imaging"
	"p3/internal/jpegx"
)

// Proxy is one user's trusted middlebox. Senders and recipients run
// independent proxies sharing only the out-of-band symmetric key (via their
// Codecs).
type Proxy struct {
	codec   *p3.Codec
	photos  p3.PhotoService
	secrets p3.SecretStore

	mu          sync.Mutex
	params      *core.PipelineParams // calibrated PSP pipeline, nil until Calibrate
	secretCache map[string][]byte    // photo ID → secret container
	dimsCache   map[string][2]int    // photo ID → uploaded (original public) dims
}

// New builds a proxy that drives the split/reconstruct algorithm through
// codec and reaches the PSP and blob store through the given backends.
func New(codec *p3.Codec, photos p3.PhotoService, secrets p3.SecretStore) *Proxy {
	return &Proxy{
		codec:       codec,
		photos:      photos,
		secrets:     secrets,
		secretCache: make(map[string][]byte),
		dimsCache:   make(map[string][2]int),
	}
}

// key returns the shared symmetric key in the representation core expects.
func (p *Proxy) key() core.Key { return core.Key(p.codec.Key()) }

// Upload splits the photo, uploads the public part to the PSP, and names
// the sealed secret part after the returned photo ID in the blob store.
func (p *Proxy) Upload(ctx context.Context, jpegBytes []byte) (string, error) {
	out, err := p.codec.SplitBytes(jpegBytes)
	if err != nil {
		return "", err
	}
	id, err := p.photos.UploadPhoto(ctx, out.PublicJPEG)
	if err != nil {
		return "", err
	}
	if err := p.secrets.PutSecret(ctx, id, out.SecretBlob); err != nil {
		return "", err
	}
	// Remember the uploaded public dimensions for crop-coordinate mapping.
	if w, h, _, _, err := jpegx.DecodeConfig(bytes.NewReader(out.PublicJPEG)); err == nil {
		p.mu.Lock()
		p.dimsCache[id] = [2]int{w, h}
		p.mu.Unlock()
	}
	return id, nil
}

// Calibrate reverse-engineers the PSP's hidden pipeline (§4.1): it uploads
// a calibration image, downloads a resized variant, and sweeps the
// candidate-parameter grid for the best match. Must be called once before
// reconstructing downloads; recalibrate if the PSP changes its pipeline.
func (p *Proxy) Calibrate(ctx context.Context) (core.SearchResult, error) {
	calib := dataset.Natural(0xca11b, 512, 384)
	coeffs, err := calib.ToCoeffs(92, jpegx.Sub420)
	if err != nil {
		return core.SearchResult{}, err
	}
	var buf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&buf, coeffs, nil); err != nil {
		return core.SearchResult{}, err
	}
	id, err := p.photos.UploadPhoto(ctx, buf.Bytes())
	if err != nil {
		return core.SearchResult{}, fmt.Errorf("proxy: calibration upload: %w", err)
	}
	served, err := p.photos.FetchPhoto(ctx, id, p3.PhotoVariant{Size: "small"})
	if err != nil {
		return core.SearchResult{}, fmt.Errorf("proxy: calibration download: %w", err)
	}
	servedIm, err := jpegx.Decode(bytes.NewReader(served))
	if err != nil {
		return core.SearchResult{}, err
	}
	// The uploaded calibration image itself was decoded by the PSP from our
	// JPEG; compare against what we actually sent.
	sent, err := jpegx.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return core.SearchResult{}, err
	}
	params, res := core.SearchParams(sent.ToPlanar(), servedIm.ToPlanar())
	p.mu.Lock()
	p.params = &params
	p.mu.Unlock()
	return res, nil
}

// Calibrated reports whether the PSP pipeline has been identified.
func (p *Proxy) Calibrated() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.params != nil
}

// fetchSecret returns the sealed secret container, from cache when
// possible — a thumbnail view followed by a full view downloads the secret
// part only once (§4.1).
func (p *Proxy) fetchSecret(ctx context.Context, id string) ([]byte, error) {
	p.mu.Lock()
	if blob, ok := p.secretCache[id]; ok {
		p.mu.Unlock()
		return blob, nil
	}
	p.mu.Unlock()
	blob, err := p.secrets.GetSecret(ctx, id)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.secretCache[id] = blob
	p.mu.Unlock()
	return blob, nil
}

// Download fetches a photo variant and reconstructs it. Query parameters
// mirror the PSP's API (size=big|small|thumb, w/h, crop=x,y,w,h). The
// result is a freshly encoded JPEG of the reconstructed image.
func (p *Proxy) Download(ctx context.Context, id string, q url.Values) ([]byte, error) {
	pix, err := p.DownloadPixels(ctx, id, q)
	if err != nil {
		return nil, err
	}
	coeffs, err := pix.ToCoeffs(95, jpegx.Sub420)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&buf, coeffs, &jpegx.EncodeOptions{OptimizeHuffman: true}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DownloadPixels is Download without the final JPEG encode.
func (p *Proxy) DownloadPixels(ctx context.Context, id string, q url.Values) (*jpegx.PlanarImage, error) {
	p.mu.Lock()
	params := p.params
	p.mu.Unlock()
	if params == nil {
		return nil, fmt.Errorf("proxy: not calibrated; call Calibrate first")
	}
	variant, err := p3.ParsePhotoVariant(q)
	if err != nil {
		return nil, err
	}
	publicBytes, err := p.photos.FetchPhoto(ctx, id, variant)
	if err != nil {
		return nil, err
	}
	pubIm, err := jpegx.Decode(bytes.NewReader(publicBytes))
	if err != nil {
		return nil, fmt.Errorf("proxy: decoding served public part: %w", err)
	}
	secretBlob, err := p.fetchSecret(ctx, id)
	if err != nil {
		return nil, err
	}
	threshold, secretJPEG, err := core.OpenSecret(p.key(), secretBlob)
	if err != nil {
		return nil, err
	}
	sec, err := jpegx.Decode(bytes.NewReader(secretJPEG))
	if err != nil {
		return nil, fmt.Errorf("proxy: decoding secret part: %w", err)
	}

	// Build the operator mapping the original public part to the served
	// variant: optional crop (coordinates arrive in stored-image space;
	// mapped to original space) followed by the calibrated pipeline
	// instantiated at the served dimensions.
	var op imaging.Compose
	if variant.Crop != nil {
		crop := imaging.Crop{X: variant.Crop.X, Y: variant.Crop.Y, W: variant.Crop.W, H: variant.Crop.H}
		origW, origH := sec.Width, sec.Height
		storedW, storedH, err := p.storedDims(ctx, id)
		if err != nil {
			return nil, err
		}
		if storedW != origW || storedH != origH {
			crop = imaging.Crop{
				X: crop.X * origW / storedW,
				Y: crop.Y * origH / storedH,
				W: crop.W * origW / storedW,
				H: crop.H * origH / storedH,
			}
		}
		op = append(op, crop)
	}
	op = append(op, params.Instantiate(pubIm.Width, pubIm.Height))

	if op.Linear() {
		return core.ReconstructPixels(pubIm.ToPlanar(), sec, threshold, op)
	}
	// Calibrated gamma: strip the trailing remap and use the §3.3 inversion
	// path.
	linear := *params
	linear.Gamma = 1
	var lop imaging.Compose
	lop = append(lop, op[:len(op)-1]...)
	lop = append(lop, linear.Instantiate(pubIm.Width, pubIm.Height))
	return core.ReconstructRemapped(pubIm.ToPlanar(), sec, threshold, lop, imaging.Gamma{G: params.Gamma})
}

// storedDims returns the PSP's stored (full-size re-encode) dimensions.
func (p *Proxy) storedDims(ctx context.Context, id string) (int, int, error) {
	p.mu.Lock()
	if d, ok := p.dimsCache["stored/"+id]; ok {
		p.mu.Unlock()
		return d[0], d[1], nil
	}
	p.mu.Unlock()
	full, err := p.photos.FetchPhoto(ctx, id, p3.PhotoVariant{})
	if err != nil {
		return 0, 0, err
	}
	w, h, _, _, err := jpegx.DecodeConfig(bytes.NewReader(full))
	if err != nil {
		return 0, 0, err
	}
	p.mu.Lock()
	p.dimsCache["stored/"+id] = [2]int{w, h}
	p.mu.Unlock()
	return w, h, nil
}

// ServeHTTP exposes the PSP's own API shape, making interposition
// transparent to applications: POST /upload and GET /photo/{id}?… behave
// exactly like the PSP, except photos are split on the way up and
// reconstructed on the way down.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/upload":
		body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
		if err != nil {
			http.Error(w, "read error", http.StatusBadRequest)
			return
		}
		id, err := p.Upload(r.Context(), body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"id": id})
	case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/photo/"):
		id := strings.TrimPrefix(r.URL.Path, "/photo/")
		jpegBytes, err := p.Download(r.Context(), id, r.URL.Query())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "image/jpeg")
		w.Write(jpegBytes)
	default:
		http.NotFound(w, r)
	}
}
