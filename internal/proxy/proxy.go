// Package proxy implements P3's client-side trusted proxy (§4.1): a small
// HTTP service on the user's device that interposes on PSP traffic. On
// upload it transparently splits a photo, sends the public part to the PSP
// and the encrypted secret part to a blob store under the PSP-assigned ID;
// on download it fetches both parts, reverses the PSP's (calibrated)
// transform per Eq. (2), and hands the application a reconstructed JPEG.
// Applications speak the PSP's own API to the proxy; neither the PSP nor
// the app changes.
package proxy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"p3/internal/core"
	"p3/internal/dataset"
	"p3/internal/imaging"
	"p3/internal/jpegx"
)

// Proxy is one user's trusted middlebox. Senders and recipients run
// independent proxies sharing only the out-of-band symmetric key.
type Proxy struct {
	PSPURL   string // base URL of the photo-sharing provider
	StoreURL string // base URL of the secret-part blob store
	Key      core.Key

	// SplitOptions configures the P3 split for uploads; nil uses
	// core.DefaultOptions.
	SplitOptions *core.Options

	// HTTP is the transport used for PSP and store traffic.
	HTTP *http.Client

	mu          sync.Mutex
	params      *core.PipelineParams // calibrated PSP pipeline, nil until Calibrate
	secretCache map[string][]byte    // photo ID → secret container
	dimsCache   map[string][2]int    // photo ID → uploaded (original public) dims
}

// New builds a proxy for a PSP and blob store.
func New(pspURL, storeURL string, key core.Key) *Proxy {
	return &Proxy{
		PSPURL:      strings.TrimRight(pspURL, "/"),
		StoreURL:    strings.TrimRight(storeURL, "/"),
		Key:         key,
		HTTP:        http.DefaultClient,
		secretCache: make(map[string][]byte),
		dimsCache:   make(map[string][2]int),
	}
}

// Upload splits the photo, uploads the public part to the PSP, and names
// the sealed secret part after the returned photo ID in the blob store.
func (p *Proxy) Upload(jpegBytes []byte) (string, error) {
	out, err := core.SplitJPEG(jpegBytes, p.Key, p.SplitOptions)
	if err != nil {
		return "", err
	}
	id, err := p.uploadPublic(out.PublicJPEG)
	if err != nil {
		return "", err
	}
	req, err := http.NewRequest(http.MethodPut, p.StoreURL+"/blob/"+id, bytes.NewReader(out.SecretBlob))
	if err != nil {
		return "", err
	}
	resp, err := p.HTTP.Do(req)
	if err != nil {
		return "", fmt.Errorf("proxy: storing secret part: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return "", fmt.Errorf("proxy: blob store returned %s", resp.Status)
	}
	// Remember the uploaded public dimensions for crop-coordinate mapping.
	if w, h, _, _, err := jpegx.DecodeConfig(bytes.NewReader(out.PublicJPEG)); err == nil {
		p.mu.Lock()
		p.dimsCache[id] = [2]int{w, h}
		p.mu.Unlock()
	}
	return id, nil
}

func (p *Proxy) uploadPublic(publicJPEG []byte) (string, error) {
	resp, err := p.HTTP.Post(p.PSPURL+"/upload", "image/jpeg", bytes.NewReader(publicJPEG))
	if err != nil {
		return "", fmt.Errorf("proxy: uploading to PSP: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return "", fmt.Errorf("proxy: PSP rejected upload: %s: %s", resp.Status, body)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", fmt.Errorf("proxy: parsing PSP response: %w", err)
	}
	if out.ID == "" {
		return "", fmt.Errorf("proxy: PSP returned empty photo ID")
	}
	return out.ID, nil
}

// Calibrate reverse-engineers the PSP's hidden pipeline (§4.1): it uploads
// a calibration image, downloads a resized variant, and sweeps the
// candidate-parameter grid for the best match. Must be called once before
// reconstructing downloads; recalibrate if the PSP changes its pipeline.
func (p *Proxy) Calibrate() (core.SearchResult, error) {
	calib := dataset.Natural(0xca11b, 512, 384)
	coeffs, err := calib.ToCoeffs(92, jpegx.Sub420)
	if err != nil {
		return core.SearchResult{}, err
	}
	var buf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&buf, coeffs, nil); err != nil {
		return core.SearchResult{}, err
	}
	id, err := p.uploadPublic(buf.Bytes())
	if err != nil {
		return core.SearchResult{}, fmt.Errorf("proxy: calibration upload: %w", err)
	}
	served, err := p.fetchPublic(id, url.Values{"size": {"small"}})
	if err != nil {
		return core.SearchResult{}, fmt.Errorf("proxy: calibration download: %w", err)
	}
	servedIm, err := jpegx.Decode(bytes.NewReader(served))
	if err != nil {
		return core.SearchResult{}, err
	}
	// The uploaded calibration image itself was decoded by the PSP from our
	// JPEG; compare against what we actually sent.
	sent, err := jpegx.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return core.SearchResult{}, err
	}
	params, res := core.SearchParams(sent.ToPlanar(), servedIm.ToPlanar())
	p.mu.Lock()
	p.params = &params
	p.mu.Unlock()
	return res, nil
}

// Calibrated reports whether the PSP pipeline has been identified.
func (p *Proxy) Calibrated() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.params != nil
}

func (p *Proxy) fetchPublic(id string, q url.Values) ([]byte, error) {
	u := p.PSPURL + "/photo/" + id
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	resp, err := p.HTTP.Get(u)
	if err != nil {
		return nil, fmt.Errorf("proxy: fetching public part: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("proxy: PSP returned %s", resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 64<<20))
}

// fetchSecret returns the sealed secret container, from cache when
// possible — a thumbnail view followed by a full view downloads the secret
// part only once (§4.1).
func (p *Proxy) fetchSecret(id string) ([]byte, error) {
	p.mu.Lock()
	if blob, ok := p.secretCache[id]; ok {
		p.mu.Unlock()
		return blob, nil
	}
	p.mu.Unlock()
	resp, err := p.HTTP.Get(p.StoreURL + "/blob/" + id)
	if err != nil {
		return nil, fmt.Errorf("proxy: fetching secret part: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("proxy: blob store returned %s", resp.Status)
	}
	blob, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.secretCache[id] = blob
	p.mu.Unlock()
	return blob, nil
}

// Download fetches a photo variant and reconstructs it. Query parameters
// mirror the PSP's API (size=big|small|thumb, w/h, crop=x,y,w,h). The
// result is a freshly encoded JPEG of the reconstructed image.
func (p *Proxy) Download(id string, q url.Values) ([]byte, error) {
	pix, err := p.DownloadPixels(id, q)
	if err != nil {
		return nil, err
	}
	coeffs, err := pix.ToCoeffs(95, jpegx.Sub420)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&buf, coeffs, &jpegx.EncodeOptions{OptimizeHuffman: true}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DownloadPixels is Download without the final JPEG encode.
func (p *Proxy) DownloadPixels(id string, q url.Values) (*jpegx.PlanarImage, error) {
	p.mu.Lock()
	params := p.params
	p.mu.Unlock()
	if params == nil {
		return nil, fmt.Errorf("proxy: not calibrated; call Calibrate first")
	}
	publicBytes, err := p.fetchPublic(id, q)
	if err != nil {
		return nil, err
	}
	pubIm, err := jpegx.Decode(bytes.NewReader(publicBytes))
	if err != nil {
		return nil, fmt.Errorf("proxy: decoding served public part: %w", err)
	}
	secretBlob, err := p.fetchSecret(id)
	if err != nil {
		return nil, err
	}
	threshold, secretJPEG, err := core.OpenSecret(p.Key, secretBlob)
	if err != nil {
		return nil, err
	}
	sec, err := jpegx.Decode(bytes.NewReader(secretJPEG))
	if err != nil {
		return nil, fmt.Errorf("proxy: decoding secret part: %w", err)
	}

	// Build the operator mapping the original public part to the served
	// variant: optional crop (coordinates arrive in stored-image space;
	// mapped to original space) followed by the calibrated pipeline
	// instantiated at the served dimensions.
	var op imaging.Compose
	if cropStr := q.Get("crop"); cropStr != "" {
		crop, err := parseCrop(cropStr)
		if err != nil {
			return nil, err
		}
		origW, origH := sec.Width, sec.Height
		storedW, storedH, err := p.storedDims(id, origW, origH)
		if err != nil {
			return nil, err
		}
		if storedW != origW || storedH != origH {
			crop = imaging.Crop{
				X: crop.X * origW / storedW,
				Y: crop.Y * origH / storedH,
				W: crop.W * origW / storedW,
				H: crop.H * origH / storedH,
			}
		}
		op = append(op, crop)
	}
	op = append(op, params.Instantiate(pubIm.Width, pubIm.Height))

	if op.Linear() {
		return core.ReconstructPixels(pubIm.ToPlanar(), sec, threshold, op)
	}
	// Calibrated gamma: strip the trailing remap and use the §3.3 inversion
	// path.
	linear := *params
	linear.Gamma = 1
	var lop imaging.Compose
	lop = append(lop, op[:len(op)-1]...)
	lop = append(lop, linear.Instantiate(pubIm.Width, pubIm.Height))
	return core.ReconstructRemapped(pubIm.ToPlanar(), sec, threshold, lop, imaging.Gamma{G: params.Gamma})
}

// storedDims returns the PSP's stored (full-size re-encode) dimensions.
func (p *Proxy) storedDims(id string, origW, origH int) (int, int, error) {
	p.mu.Lock()
	if d, ok := p.dimsCache["stored/"+id]; ok {
		p.mu.Unlock()
		return d[0], d[1], nil
	}
	p.mu.Unlock()
	full, err := p.fetchPublic(id, nil)
	if err != nil {
		return 0, 0, err
	}
	w, h, _, _, err := jpegx.DecodeConfig(bytes.NewReader(full))
	if err != nil {
		return 0, 0, err
	}
	p.mu.Lock()
	p.dimsCache["stored/"+id] = [2]int{w, h}
	p.mu.Unlock()
	_ = origW
	_ = origH
	return w, h, nil
}

func parseCrop(s string) (imaging.Crop, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return imaging.Crop{}, fmt.Errorf("proxy: bad crop %q", s)
	}
	var v [4]int
	for i, part := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			return imaging.Crop{}, fmt.Errorf("proxy: bad crop %q", s)
		}
		v[i] = n
	}
	return imaging.Crop{X: v[0], Y: v[1], W: v[2], H: v[3]}, nil
}

// ServeHTTP exposes the PSP's own API shape, making interposition
// transparent to applications: POST /upload and GET /photo/{id}?… behave
// exactly like the PSP, except photos are split on the way up and
// reconstructed on the way down.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/upload":
		body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
		if err != nil {
			http.Error(w, "read error", http.StatusBadRequest)
			return
		}
		id, err := p.Upload(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"id": id})
	case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/photo/"):
		id := strings.TrimPrefix(r.URL.Path, "/photo/")
		jpegBytes, err := p.Download(id, r.URL.Query())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "image/jpeg")
		w.Write(jpegBytes)
	default:
		http.NotFound(w, r)
	}
}
