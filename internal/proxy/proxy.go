// Package proxy implements P3's client-side trusted proxy (§4.1): a small
// HTTP service on the user's device that interposes on PSP traffic. On
// upload it transparently splits a photo, sends the public part to the PSP
// and the encrypted secret part to a blob store under the PSP-assigned ID;
// on download it fetches both parts, reverses the PSP's (calibrated)
// transform per Eq. (2), and hands the application a reconstructed JPEG.
// Applications speak the PSP's own API to the proxy; neither the PSP nor
// the app changes.
//
// The proxy is a pure consumer of the public p3 surface: it splits and
// reconstructs through a p3.Codec and talks to the two untrusted parties
// through the p3.PhotoService and p3.SecretStore interfaces, so HTTP,
// in-memory, disk, or sharded backends drop in interchangeably.
//
// Alongside photos the proxy serves P3MJ video clips (§4.2) end to end:
// POST /video/upload splits every frame and stores the public stream and
// the sealed secret container in the blob store; GET /video/{id} joins the
// clip back, and GET /video/{id}?frame=N seeks a single frame. See the
// video.go file comment for the storage and caching model.
//
// # Serving layer
//
// Every photo view flows through the proxy, so it keeps three bounded,
// stampede-proof caches (internal/cache):
//
//   - secrets: sealed secret containers by photo ID. A thumbnail view
//     followed by a full view downloads the secret part once (§4.1), and N
//     concurrent first views cost the blob store one GetSecret, not N.
//   - dims: the PSP's stored dimensions by photo ID, needed to map crop
//     coordinates; warmed at upload time when the PSP reports them.
//   - variants: fully reconstructed JPEG bytes by (epoch, ID, variant), so
//     the fan-out of one popular photo is served from memory and concurrent
//     misses coalesce into a single fetch+reconstruct. Keys are prefixed
//     with the calibration epoch: an epoch flip retires superseded photo
//     entries lazily via PurgeMatching and pre-warms the hottest of them
//     under the new parameters (see calibration.go); clip renditions are
//     calibration-independent and stay.
//
// All three are LRU-bounded (bytes and entries), so proxy memory stays flat
// no matter how many distinct photos flow through; Stats exposes hit,
// miss, coalesce and eviction counters for each.
//
// # Observability
//
// The proxy instruments its three operations (download, upload, calibrate)
// with request/error counters and log-scale latency histograms
// (internal/metrics), and registers scrape-time views of its caches'
// counters and — when the secret store is sharded — each shard's
// read/repair/failure counts. Everything lands in one metrics registry
// (metrics.Default unless WithMetricsRegistry overrides it) served as
// Prometheus-style text on GET /metrics; GET /stats serves the same
// numbers as JSON, summarized per instance. The counter names follow the
// one scheme documented in ARCHITECTURE.md: cache.Stats field ↔ metric
// series correspondence is 1:1 (Hits ↔ p3_cache_hits_total, Misses ↔
// p3_cache_misses_total, Coalesced ↔ p3_cache_coalesced_total, Evictions ↔
// p3_cache_evictions_total, Entries ↔ p3_cache_entries, Bytes ↔
// p3_cache_bytes).
package proxy

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"strings"
	"sync"
	"time"

	"p3"
	"p3/internal/admission"
	"p3/internal/cache"
	"p3/internal/core"
	"p3/internal/dedup"
	"p3/internal/imaging"
	"p3/internal/jpegx"
	"p3/internal/metrics"
	"p3/internal/similarity"
	"p3/internal/work"
)

// Default cache budgets: sized for a phone-class device fronting a busy
// feed — enough to absorb a session's working set, small enough to never
// matter against the host's memory.
const (
	DefaultSecretCacheBytes  = 64 << 20
	DefaultVariantCacheBytes = 32 << 20
	DefaultDimsCacheEntries  = 1 << 16

	// maxCacheEntries backstops the byte-bounded caches against pathological
	// swarms of tiny entries blowing up map overhead.
	maxCacheEntries = 1 << 16

	// maxIDLen bounds accepted photo IDs; real PSP IDs are short opaque
	// tokens, and an unbounded ID is an unbounded cache key.
	maxIDLen = 512
)

// ProxyOption configures a Proxy at construction time.
type ProxyOption func(*proxyConfig)

type proxyConfig struct {
	secretCacheBytes  int64
	variantCacheBytes int64
	dimsCacheEntries  int
	videoMaxBytes     int64
	registry          *metrics.Registry
	name              string
	warmTopK          int
	probeFloorDB      float64
	recalInterval     time.Duration
	admission         *admission.Controller
	similarity        *similarity.Index
}

// WithSecretCacheBytes bounds the sealed-secret-part cache. Values < 1 are
// clamped to 1, which effectively disables retention while still coalescing
// concurrent fetches of one ID.
func WithSecretCacheBytes(n int64) ProxyOption {
	return func(c *proxyConfig) { c.secretCacheBytes = max(n, 1) }
}

// WithVariantCacheBytes bounds the reconstructed-variant cache. Values < 1
// are clamped to 1 (retention off, coalescing still on).
func WithVariantCacheBytes(n int64) ProxyOption {
	return func(c *proxyConfig) { c.variantCacheBytes = max(n, 1) }
}

// WithDimsCacheEntries bounds how many photos' stored dimensions are
// remembered for crop-coordinate mapping.
func WithDimsCacheEntries(n int) ProxyOption {
	return func(c *proxyConfig) { c.dimsCacheEntries = max(n, 1) }
}

// WithMetricsRegistry points the proxy's instruments at a private registry
// instead of metrics.Default. Tests use it for isolation; processes running
// several proxies use it (or WithMetricsName) to keep their series apart.
// Note the codec's own split/join histograms always live in
// metrics.Default — they are process-wide by design.
func WithMetricsRegistry(r *metrics.Registry) ProxyOption {
	return func(c *proxyConfig) { c.registry = r }
}

// WithMetricsName sets the value of the proxy="..." label on this
// instance's metric series (default "proxy"). Two proxies sharing one
// registry must carry distinct names, or the later one's scrape-time cache
// views replace the earlier one's.
func WithMetricsName(name string) ProxyOption {
	return func(c *proxyConfig) { c.name = name }
}

// OpStats summarizes one proxy operation (download, upload or calibrate)
// for the JSON /stats view: cumulative request and error counts plus
// latency percentiles estimated from the same log-scale histogram /metrics
// exposes as p3_proxy_latency_seconds.
type OpStats struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// Stats is a snapshot of the proxy's serving layer: the three caches and
// the three operations. Field names mirror the /metrics naming scheme
// (ARCHITECTURE.md): each cache.Stats counter corresponds 1:1 to a
// p3_cache_* series labeled with this cache's name, and each OpStats to
// the p3_proxy_* series labeled with the operation.
type Stats struct {
	Secrets       cache.Stats      `json:"secrets"`
	Dims          cache.Stats      `json:"dims"`
	Variants      cache.Stats      `json:"variants"`
	Download      OpStats          `json:"download"`
	Upload        OpStats          `json:"upload"`
	Calibrate     OpStats          `json:"calibrate"`
	VideoUpload   OpStats          `json:"video_upload"`
	VideoDownload OpStats          `json:"video_download"`
	Delete        OpStats          `json:"delete"`
	Similar       OpStats          `json:"similar"`
	Calibration   CalibrationStats `json:"calibration"`
	Admission     *admission.Stats `json:"admission,omitempty"`

	// Dedup and Similarity report the optional dedup layer and similarity
	// index when configured (see similar.go); nil otherwise.
	Dedup      *dedup.Stats      `json:"dedup,omitempty"`
	Similarity *similarity.Stats `json:"similarity,omitempty"`
}

// Proxy is one user's trusted middlebox. Senders and recipients run
// independent proxies sharing only the out-of-band symmetric key (via their
// Codecs).
type Proxy struct {
	codec  *p3.Codec
	photos p3.PhotoService
	store  p3.SecretStore

	// calib publishes the identified PSP pipeline as an atomic epoch
	// snapshot (see calibration.go); calibPool fans out the sweep and the
	// post-flip pre-warm without competing for the codec's pool.
	calib        calibState
	calibPool    *work.Pool
	warmTopK     int
	probeFloorDB float64

	secrets  *cache.Cache[[]byte] // photo ID / clip blob name → stored bytes
	dims     *cache.Cache[[2]int] // photo ID → PSP stored dims
	variants *cache.Cache[[]byte] // ID+variant (or clip ID+frame) → reconstructed bytes

	videoMaxBytes int64 // largest accepted clip upload

	// admission, when non-nil, gates every serving operation (see admit.go).
	admission *admission.Controller

	// sim, when non-nil, is the perceptual-hash index fed by uploads and
	// served on /similar (see similar.go).
	sim *similarity.Index

	reg           *metrics.Registry // where this instance's series live
	download      opMetrics
	upload        opMetrics
	calibrate     opMetrics
	videoUpload   opMetrics
	videoDownload opMetrics
	deleteOp      opMetrics
	similarOp     opMetrics
}

// opMetrics instruments one proxy operation: a request counter, an error
// counter, and a latency histogram.
type opMetrics struct {
	requests *metrics.Counter
	errors   *metrics.Counter
	latency  *metrics.Histogram
}

// observe records one finished call; use as
// `defer p.download.observe(time.Now(), &err)` so the deferred read sees
// the function's final error.
func (m *opMetrics) observe(start time.Time, err *error) {
	m.requests.Inc()
	if *err != nil {
		m.errors.Inc()
	}
	m.latency.Observe(time.Since(start))
}

// stats summarizes the operation for the JSON /stats view.
func (m *opMetrics) stats() OpStats {
	s := m.latency.Snapshot()
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return OpStats{
		Count:  m.requests.Value(),
		Errors: m.errors.Value(),
		P50Ms:  ms(s.P50),
		P95Ms:  ms(s.P95),
		P99Ms:  ms(s.P99),
	}
}

// newOpMetrics builds the instruments for one operation in r, labeled with
// the proxy instance name and the operation.
func newOpMetrics(r *metrics.Registry, proxyName, op string) opMetrics {
	labels := []metrics.Label{{Key: "proxy", Value: proxyName}, {Key: "op", Value: op}}
	return opMetrics{
		requests: r.Counter("p3_proxy_requests_total",
			"Proxy operations started, by instance and operation.", labels...),
		errors: r.Counter("p3_proxy_errors_total",
			"Proxy operations that returned an error, by instance and operation.", labels...),
		latency: r.Histogram("p3_proxy_latency_seconds",
			"Proxy operation wall time, by instance and operation.", labels...),
	}
}

// registerCacheMetrics exposes one cache's cumulative counters and current
// size as scrape-time funcs, labeled {proxy=name, cache=cacheName}. The
// series names correspond 1:1 to cache.Stats fields (see the package
// comment).
func registerCacheMetrics[V any](r *metrics.Registry, proxyName, cacheName string, c *cache.Cache[V]) {
	labels := []metrics.Label{{Key: "proxy", Value: proxyName}, {Key: "cache", Value: cacheName}}
	counter := func(name, help string, read func(cache.Stats) uint64) {
		r.SetCounterFunc(name, help, func() uint64 { return read(c.Stats()) }, labels...)
	}
	counter("p3_cache_hits_total", "Cache lookups served from memory.",
		func(s cache.Stats) uint64 { return s.Hits })
	counter("p3_cache_misses_total", "Cache lookups that ran the loader.",
		func(s cache.Stats) uint64 { return s.Misses })
	counter("p3_cache_coalesced_total", "Cache lookups that joined an in-flight load.",
		func(s cache.Stats) uint64 { return s.Coalesced })
	counter("p3_cache_evictions_total", "Entries evicted to fit the cache budget.",
		func(s cache.Stats) uint64 { return s.Evictions })
	r.SetGaugeFunc("p3_cache_entries", "Entries currently cached.",
		func() float64 { return float64(c.Stats().Entries) }, labels...)
	r.SetGaugeFunc("p3_cache_bytes", "Bytes currently cached.",
		func() float64 { return float64(c.Stats().Bytes) }, labels...)
}

// shardStatser is what a sharded secret store exposes; satisfied by
// *p3.ShardedSecretStore without the proxy naming the concrete type.
type shardStatser interface {
	Shards() int
	ShardStats() []p3.ShardStats
}

// registerShardMetrics exposes each shard's counters as scrape-time funcs
// labeled {shard="i"}. Shard series carry no proxy label: the store is
// shared state, and two proxies over one store would report identical
// numbers.
func registerShardMetrics(r *metrics.Registry, sh shardStatser) {
	for i := 0; i < sh.Shards(); i++ {
		labels := []metrics.Label{{Key: "shard", Value: fmt.Sprint(i)}}
		counter := func(name, help string, read func(p3.ShardStats) uint64) {
			idx := i
			r.SetCounterFunc(name, help, func() uint64 {
				stats := sh.ShardStats()
				if idx >= len(stats) {
					return 0
				}
				return read(stats[idx])
			}, labels...)
		}
		counter("p3_shard_reads_total", "GetSecret attempts routed to this shard.",
			func(s p3.ShardStats) uint64 { return s.Reads })
		counter("p3_shard_read_failures_total", "GetSecret attempts this shard failed (degraded reads).",
			func(s p3.ShardStats) uint64 { return s.ReadFailures })
		counter("p3_shard_read_repairs_total", "Blobs healed onto this shard by read-repair.",
			func(s p3.ShardStats) uint64 { return s.ReadRepairs })
		counter("p3_shard_puts_total", "PutSecret attempts routed to this shard.",
			func(s p3.ShardStats) uint64 { return s.Puts })
		counter("p3_shard_put_failures_total", "PutSecret attempts this shard failed.",
			func(s p3.ShardStats) uint64 { return s.PutFailures })
	}
}

// erasureStatser is what an erasure-coded secret store exposes; satisfied
// by *p3.ErasureSecretStore without the proxy naming the concrete type.
type erasureStatser interface {
	Shards() int
	ErasureShardStats() []p3.ErasureShardStats
	RepairStats() p3.RepairStats
}

// registerErasureMetrics exposes the erasure store's per-shard share
// traffic as p3_erasure_*_total{shard="i"} and its store-level
// self-healing counters as p3_repair_*_total. Like the shard series, they
// carry no proxy label: the store is shared state.
func registerErasureMetrics(r *metrics.Registry, es erasureStatser) {
	for i := 0; i < es.Shards(); i++ {
		labels := []metrics.Label{{Key: "shard", Value: fmt.Sprint(i)}}
		counter := func(name, help string, read func(p3.ErasureShardStats) uint64) {
			idx := i
			r.SetCounterFunc(name, help, func() uint64 {
				stats := es.ErasureShardStats()
				if idx >= len(stats) {
					return 0
				}
				return read(stats[idx])
			}, labels...)
		}
		counter("p3_erasure_share_reads_total", "Share fetches routed to this shard.",
			func(s p3.ErasureShardStats) uint64 { return s.ShareReads })
		counter("p3_erasure_share_read_failures_total", "Share fetches this shard failed or missed.",
			func(s p3.ErasureShardStats) uint64 { return s.ShareReadFailures })
		counter("p3_erasure_share_puts_total", "Share and tombstone writes routed to this shard.",
			func(s p3.ErasureShardStats) uint64 { return s.SharePuts })
		counter("p3_erasure_share_put_failures_total", "Share writes this shard failed.",
			func(s p3.ErasureShardStats) uint64 { return s.SharePutFailures })
		counter("p3_erasure_share_repairs_total", "Shares restored onto this shard by repair.",
			func(s p3.ErasureShardStats) uint64 { return s.ShareRepairs })
	}
	repair := func(name, help string, read func(p3.RepairStats) uint64) {
		r.SetCounterFunc(name, help, func() uint64 { return read(es.RepairStats()) })
	}
	repair("p3_repair_scrub_cycles_total", "Completed scrub passes.",
		func(s p3.RepairStats) uint64 { return s.ScrubCycles })
	repair("p3_repair_objects_scanned_total", "Objects examined by scrub passes.",
		func(s p3.RepairStats) uint64 { return s.ObjectsScanned })
	repair("p3_repair_shares_checked_total", "Share slots verified healthy.",
		func(s p3.RepairStats) uint64 { return s.SharesChecked })
	repair("p3_repair_shares_missing_total", "Share slots found empty on their home shard.",
		func(s p3.RepairStats) uint64 { return s.SharesMissing })
	repair("p3_repair_shares_corrupt_total", "Shares failing their checksum (bit rot).",
		func(s p3.RepairStats) uint64 { return s.SharesCorrupt })
	repair("p3_repair_shares_repaired_total", "Shares re-encoded onto their home shard.",
		func(s p3.RepairStats) uint64 { return s.SharesRepaired })
	repair("p3_repair_shares_removed_total", "Stale or misplaced share copies cleaned up.",
		func(s p3.RepairStats) uint64 { return s.SharesRemoved })
	repair("p3_repair_tombstones_propagated_total", "Tombstones copied over stale shares.",
		func(s p3.RepairStats) uint64 { return s.TombstonesPropagated })
	repair("p3_repair_lost_objects_total", "Objects found unrecoverable (alarm metric).",
		func(s p3.RepairStats) uint64 { return s.LostObjects })
	repair("p3_repair_degraded_reads_total", "Reads that needed parity reconstruction.",
		func(s p3.RepairStats) uint64 { return s.DegradedReads })
	repair("p3_repair_hints_parked_total", "Shares parked for down shards (hinted handoff).",
		func(s p3.RepairStats) uint64 { return s.HintsParked })
	repair("p3_repair_hints_dropped_total", "Shares dropped because the hint log was full.",
		func(s p3.RepairStats) uint64 { return s.HintsDropped })
	repair("p3_repair_hints_drained_total", "Parked shares delivered to revived shards.",
		func(s p3.RepairStats) uint64 { return s.HintsDrained })
}

// New builds a proxy that drives the split/reconstruct algorithm through
// codec and reaches the PSP and blob store through the given backends.
func New(codec *p3.Codec, photos p3.PhotoService, secrets p3.SecretStore, opts ...ProxyOption) *Proxy {
	cfg := proxyConfig{
		secretCacheBytes:  DefaultSecretCacheBytes,
		variantCacheBytes: DefaultVariantCacheBytes,
		dimsCacheEntries:  DefaultDimsCacheEntries,
		videoMaxBytes:     DefaultVideoMaxBytes,
		registry:          metrics.Default,
		name:              "proxy",
		warmTopK:          DefaultWarmTopK,
		probeFloorDB:      DefaultProbeFloorDB,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	byteLen := func(b []byte) int { return len(b) }
	p := &Proxy{
		codec:         codec,
		photos:        photos,
		store:         secrets,
		calibPool:     work.New(runtime.GOMAXPROCS(0)),
		warmTopK:      cfg.warmTopK,
		probeFloorDB:  cfg.probeFloorDB,
		secrets:       cache.New(cfg.secretCacheBytes, maxCacheEntries, byteLen),
		dims:          cache.New[[2]int](0, cfg.dimsCacheEntries, nil),
		variants:      cache.New(cfg.variantCacheBytes, maxCacheEntries, byteLen),
		videoMaxBytes: cfg.videoMaxBytes,
		admission:     cfg.admission,
		sim:           cfg.similarity,
		reg:           cfg.registry,
		download:      newOpMetrics(cfg.registry, cfg.name, "download"),
		upload:        newOpMetrics(cfg.registry, cfg.name, "upload"),
		calibrate:     newOpMetrics(cfg.registry, cfg.name, "calibrate"),
		videoUpload:   newOpMetrics(cfg.registry, cfg.name, "video_upload"),
		videoDownload: newOpMetrics(cfg.registry, cfg.name, "video_download"),
		deleteOp:      newOpMetrics(cfg.registry, cfg.name, "delete"),
		similarOp:     newOpMetrics(cfg.registry, cfg.name, "similar"),
	}
	p.calib.initCalibMetrics(cfg.registry, cfg.name)
	registerCacheMetrics(cfg.registry, cfg.name, "secrets", p.secrets)
	registerCacheMetrics(cfg.registry, cfg.name, "dims", p.dims)
	registerCacheMetrics(cfg.registry, cfg.name, "variants", p.variants)
	if sh, ok := secrets.(shardStatser); ok {
		registerShardMetrics(cfg.registry, sh)
	}
	if es, ok := secrets.(erasureStatser); ok {
		registerErasureMetrics(cfg.registry, es)
	}
	if cfg.recalInterval > 0 {
		p.startRecalibrationLoop(cfg.recalInterval)
	}
	return p
}

// Stats returns a snapshot of the cache and operation counters.
func (p *Proxy) Stats() Stats {
	var adm *admission.Stats
	if p.admission != nil {
		s := p.admission.Stats()
		adm = &s
	}
	s := Stats{
		Admission:     adm,
		Secrets:       p.secrets.Stats(),
		Dims:          p.dims.Stats(),
		Variants:      p.variants.Stats(),
		Download:      p.download.stats(),
		Upload:        p.upload.stats(),
		Calibrate:     p.calibrate.stats(),
		VideoUpload:   p.videoUpload.stats(),
		VideoDownload: p.videoDownload.stats(),
		Delete:        p.deleteOp.stats(),
		Similar:       p.similarOp.stats(),
		Calibration:   p.calib.stats(),
	}
	if ds, ok := p.photos.(dedupStatser); ok {
		d := ds.DedupStats()
		s.Dedup = &d
	}
	if p.sim != nil {
		ss := p.sim.Stats()
		s.Similarity = &ss
	}
	return s
}

// InvalidateCaches empties every serving cache (benchmarks use it to
// measure the cold path; operators can hit it after blob-store surgery).
func (p *Proxy) InvalidateCaches() {
	p.secrets.Purge()
	p.dims.Purge()
	p.variants.Purge()
}

// key returns the shared symmetric key in the representation core expects.
func (p *Proxy) key() core.Key { return core.Key(p.codec.Key()) }

// RequestError marks a failure caused by the request itself — a malformed
// variant query, a hostile photo ID, an undecodable upload — as opposed to
// a backend failure. ServeHTTP maps it to 400.
type RequestError struct {
	Err error
}

func (e *RequestError) Error() string { return e.Err.Error() }
func (e *RequestError) Unwrap() error { return e.Err }

// PartialUploadError reports an upload that stored the public part (on the
// PSP for photos, in the blob store for video clips) but then failed to
// store the secret part. Without the secret part the object can never be
// reconstructed, so the proxy attempts best-effort deletion of the
// orphaned public part; ID records which object was involved so callers
// can retry or reconcile.
type PartialUploadError struct {
	ID         string // ID of the orphaned public part
	Err        error  // the secret-store failure
	Cleaned    bool   // the public part was successfully deleted
	CleanupErr error  // deletion was attempted and failed (nil if Cleaned or unsupported)
}

func (e *PartialUploadError) Error() string {
	state := "public part left orphaned"
	switch {
	case e.Cleaned:
		state = "public part deleted"
	case e.CleanupErr != nil:
		state = fmt.Sprintf("cleanup failed: %v", e.CleanupErr)
	}
	return fmt.Sprintf("proxy: storing secret part for %q: %v (%s)", e.ID, e.Err, state)
}

func (e *PartialUploadError) Unwrap() error { return e.Err }

// errNotCalibrated is the proxy's own not-ready state; ServeHTTP maps it to
// 503 rather than blaming the client (400) or the backends (502).
var errNotCalibrated = errors.New("proxy: not calibrated; call Calibrate first")

// validateID vets an application- or PSP-supplied photo ID at the trust
// boundary. IDs are opaque single tokens: anything path-shaped ("a/../b")
// would escape the blob namespace on naive backends, so it is rejected here
// regardless of how careful each backend is.
func validateID(id string) error {
	switch {
	case id == "":
		return &RequestError{Err: errors.New("proxy: empty photo id")}
	case len(id) > maxIDLen:
		return &RequestError{Err: fmt.Errorf("proxy: photo id longer than %d bytes", maxIDLen)}
	case strings.ContainsAny(id, `/\`), strings.Contains(id, ".."):
		return &RequestError{Err: fmt.Errorf("proxy: invalid photo id %q", id)}
	}
	return nil
}

// Upload splits the photo, uploads the public part to the PSP, and names
// the sealed secret part after the returned photo ID in the blob store. The
// secret and dims caches are warmed from the upload itself, so the
// uploader's first view costs no extra backend fetches.
func (p *Proxy) Upload(ctx context.Context, jpegBytes []byte) (_ string, err error) {
	defer p.upload.observe(time.Now(), &err)
	release, err := p.admit(ctx, admission.Cold)
	if err != nil {
		return "", err
	}
	defer release()
	out, err := p.codec.SplitBytes(jpegBytes)
	if err != nil {
		// The split failing means the input was not a usable JPEG — the
		// client's problem, not the backends'.
		return "", &RequestError{Err: err}
	}
	var id string
	var storedW, storedH int
	if ud, ok := p.photos.(p3.UploadDimsService); ok {
		id, storedW, storedH, err = ud.UploadPhotoWithDims(ctx, out.PublicJPEG)
	} else {
		id, err = p.photos.UploadPhoto(ctx, out.PublicJPEG)
	}
	if err != nil {
		return "", err
	}
	if err := validateID(id); err != nil {
		// A PSP handing back a path-shaped ID is hostile or broken: refuse
		// to address blobs with it, clean up the part we just stored, and
		// blame the backend (plain error → 502), not the client's request.
		p.deletePublicPart(ctx, id)
		return "", fmt.Errorf("proxy: PSP returned unusable photo id %q", id)
	}
	if err := p.store.PutSecret(ctx, id, out.SecretBlob); err != nil {
		perr := &PartialUploadError{ID: id, Err: err}
		if cleaned, cerr := p.deletePublicPart(ctx, id); cleaned {
			perr.Cleaned = true
		} else {
			perr.CleanupErr = cerr
		}
		return "", perr
	}
	p.secrets.Put(id, out.SecretBlob)
	if storedW > 0 && storedH > 0 {
		p.dims.Put(id, [2]int{storedW, storedH})
	}
	if p.sim != nil {
		// Index the canonical public part off the request path. PublicJPEG
		// is never mutated after the split, so handing it to the background
		// hashers is safe.
		p.sim.Enqueue(id, out.PublicJPEG)
	}
	return id, nil
}

// deletePublicPart best-effort removes an unusable public part from the
// PSP (if the backend supports deletion), detached from ctx's cancellation
// so a dead client doesn't leave the orphan behind.
func (p *Proxy) deletePublicPart(ctx context.Context, id string) (cleaned bool, err error) {
	del, ok := p.photos.(p3.PhotoDeleter)
	if !ok {
		return false, nil
	}
	if err := del.DeletePhoto(context.WithoutCancel(ctx), id); err != nil {
		return false, err
	}
	return true, nil
}

// fetchSecret returns the sealed secret container through the bounded
// cache: repeat views hit memory, and concurrent misses on one ID coalesce
// into a single blob-store fetch.
func (p *Proxy) fetchSecret(ctx context.Context, id string) ([]byte, error) {
	return p.secrets.GetOrLoad(ctx, id, func(ctx context.Context) ([]byte, error) {
		return p.store.GetSecret(ctx, id)
	})
}

// storedDims returns the PSP's stored (full-size re-encode) dimensions,
// cached and coalesced like fetchSecret. Uploads through this proxy warm it
// when the PSP reports dimensions; otherwise the first cropped view pays
// one full-size config fetch.
func (p *Proxy) storedDims(ctx context.Context, id string) (int, int, error) {
	d, err := p.dims.GetOrLoad(ctx, id, func(ctx context.Context) ([2]int, error) {
		full, err := p.photos.FetchPhoto(ctx, id, p3.PhotoVariant{})
		if err != nil {
			return [2]int{}, err
		}
		w, h, _, _, err := jpegx.DecodeConfig(bytes.NewReader(full))
		if err != nil {
			return [2]int{}, err
		}
		return [2]int{w, h}, nil
	})
	if err != nil {
		return 0, 0, err
	}
	return d[0], d[1], nil
}

// Download fetches a photo variant and reconstructs it. Query parameters
// mirror the PSP's API (size=big|small|thumb, w/h, crop=x,y,w,h). The
// result is a freshly encoded JPEG of the reconstructed image, served from
// the bounded variant cache when possible; concurrent requests for one
// (id, variant) run the fetch+reconstruct once. Callers must treat the
// returned bytes as immutable — they are shared with the cache.
//
// The cache key and the reconstruction parameters both come from one
// calibration-epoch snapshot taken at entry, so a recalibration landing
// mid-request cannot mix epochs; the request simply completes against the
// epoch it started under (stale-while-revalidate).
func (p *Proxy) Download(ctx context.Context, id string, q url.Values) (_ []byte, err error) {
	defer p.download.observe(time.Now(), &err)
	if err := validateID(id); err != nil {
		return nil, err
	}
	variant, err := p3.ParsePhotoVariant(q)
	if err != nil {
		return nil, &RequestError{Err: err}
	}
	ep := p.calib.cur.Load()
	if ep == nil {
		return nil, errNotCalibrated
	}
	p.calib.noteServe()
	key := variantKeyFor(ep.Epoch, id, variant)
	release, err := p.admit(ctx, p.downloadClass(key))
	if err != nil {
		return nil, err
	}
	defer release()
	p.calib.noteWarmHit(p.variants, key)
	return p.variants.GetOrLoad(ctx, key, func(ctx context.Context) ([]byte, error) {
		pix, err := p.reconstructWith(ctx, &ep.Params, id, variant)
		if err != nil {
			return nil, err
		}
		return encodeVariant(pix)
	})
}

// encodeVariant serializes a reconstructed rendition as the JPEG the
// application receives (and the variant cache holds).
func encodeVariant(pix *jpegx.PlanarImage) ([]byte, error) {
	coeffs, err := pix.ToCoeffs(95, jpegx.Sub420)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&buf, coeffs, &jpegx.EncodeOptions{OptimizeHuffman: true}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DownloadMany serves several renditions of one photo in a single call — the
// shape of an application prefetching thumb + small + full on photo open.
// Renditions already in the variant cache are served from memory; for the
// misses, the secret part is fetched and decoded once and its reconstruction
// planes are derived once, shared across every rendition, instead of paying
// the secret IDCT per variant as repeated Download calls would. Results
// align with queries; the returned byte slices are shared with the cache and
// must be treated as immutable.
func (p *Proxy) DownloadMany(ctx context.Context, id string, queries []url.Values) (_ [][]byte, err error) {
	defer p.download.observe(time.Now(), &err)
	if err := validateID(id); err != nil {
		return nil, err
	}
	ep := p.calib.cur.Load()
	if ep == nil {
		return nil, errNotCalibrated
	}
	p.calib.noteServe()
	params := &ep.Params
	variants := make([]p3.PhotoVariant, len(queries))
	for i, q := range queries {
		v, err := p3.ParsePhotoVariant(q)
		if err != nil {
			return nil, &RequestError{Err: err}
		}
		variants[i] = v
	}
	// The batch is Cached only when every rendition is already resident;
	// one miss means real reconstruction work.
	class := admission.Cached
	for _, variant := range variants {
		if p.downloadClass(variantKeyFor(ep.Epoch, id, variant)) == admission.Cold {
			class = admission.Cold
			break
		}
	}
	release, err := p.admit(ctx, class)
	if err != nil {
		return nil, err
	}
	defer release()
	// The secret decode and plane derivation run at most once across the
	// whole batch, on first cache miss; hits never touch the secret at all.
	var shared struct {
		sync.Mutex
		sec       *jpegx.CoeffImage
		threshold int
		planes    *core.SecretPlanes
	}
	secretPlanes := func(ctx context.Context) (*jpegx.CoeffImage, int, *core.SecretPlanes, error) {
		shared.Lock()
		defer shared.Unlock()
		if shared.sec == nil {
			secretBlob, err := p.fetchSecret(ctx, id)
			if err != nil {
				return nil, 0, nil, err
			}
			threshold, secretJPEG, err := core.OpenSecret(p.key(), secretBlob)
			if err != nil {
				return nil, 0, nil, err
			}
			sec, err := jpegx.Decode(bytes.NewReader(secretJPEG))
			if err != nil {
				return nil, 0, nil, fmt.Errorf("proxy: decoding secret part: %w", err)
			}
			shared.sec, shared.threshold = sec, threshold
			shared.planes = core.DeriveSecretPlanes(sec, threshold)
		}
		return shared.sec, shared.threshold, shared.planes, nil
	}
	out := make([][]byte, len(variants))
	for i, variant := range variants {
		key := variantKeyFor(ep.Epoch, id, variant)
		p.calib.noteWarmHit(p.variants, key)
		out[i], err = p.variants.GetOrLoad(ctx, key, func(ctx context.Context) ([]byte, error) {
			publicBytes, err := p.photos.FetchPhoto(ctx, id, variant)
			if err != nil {
				return nil, err
			}
			pubIm, err := jpegx.Decode(bytes.NewReader(publicBytes))
			if err != nil {
				return nil, fmt.Errorf("proxy: decoding served public part: %w", err)
			}
			sec, threshold, planes, err := secretPlanes(ctx)
			if err != nil {
				return nil, err
			}
			pix, err := p.reconstructDecoded(ctx, id, variant, params, pubIm, sec, threshold, planes)
			if err != nil {
				return nil, err
			}
			return encodeVariant(pix)
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DownloadPixels is Download without the final JPEG encode. Pixel results
// are not cached (the variant cache holds encoded bytes), but the secret
// and dims fetches underneath still are. It counts toward the download
// metrics like Download does.
func (p *Proxy) DownloadPixels(ctx context.Context, id string, q url.Values) (_ *jpegx.PlanarImage, err error) {
	defer p.download.observe(time.Now(), &err)
	if err := validateID(id); err != nil {
		return nil, err
	}
	variant, err := p3.ParsePhotoVariant(q)
	if err != nil {
		return nil, &RequestError{Err: err}
	}
	ep := p.calib.cur.Load()
	if ep == nil {
		return nil, errNotCalibrated
	}
	p.calib.noteServe()
	// Pixel downloads bypass the variant cache, so they always pay the
	// reconstruction — Cold regardless of what the cache holds.
	release, err := p.admit(ctx, admission.Cold)
	if err != nil {
		return nil, err
	}
	defer release()
	return p.reconstructWith(ctx, &ep.Params, id, variant)
}

// reconstructWith fetches both parts of one variant and reverses the PSP's
// transform per Eq. (2) under the given calibrated parameters — always an
// epoch snapshot's, so the caller's cache key and operator agree.
func (p *Proxy) reconstructWith(ctx context.Context, params *core.PipelineParams, id string, variant p3.PhotoVariant) (*jpegx.PlanarImage, error) {
	publicBytes, err := p.photos.FetchPhoto(ctx, id, variant)
	if err != nil {
		return nil, err
	}
	pubIm, err := jpegx.Decode(bytes.NewReader(publicBytes))
	if err != nil {
		return nil, fmt.Errorf("proxy: decoding served public part: %w", err)
	}
	secretBlob, err := p.fetchSecret(ctx, id)
	if err != nil {
		return nil, err
	}
	threshold, secretJPEG, err := core.OpenSecret(p.key(), secretBlob)
	if err != nil {
		return nil, err
	}
	sec, err := jpegx.Decode(bytes.NewReader(secretJPEG))
	if err != nil {
		return nil, fmt.Errorf("proxy: decoding secret part: %w", err)
	}
	return p.reconstructDecoded(ctx, id, variant, params, pubIm, sec, threshold, nil)
}

// reconstructDecoded is the back half of reconstruct, starting from decoded
// parts. planes, when non-nil, are pre-derived full-resolution secret planes
// shared across a multi-variant download; nil derives per call (possibly at
// reduced scale, see scaledDenom).
func (p *Proxy) reconstructDecoded(ctx context.Context, id string, variant p3.PhotoVariant, params *core.PipelineParams,
	pubIm, sec *jpegx.CoeffImage, threshold int, planes *core.SecretPlanes) (*jpegx.PlanarImage, error) {
	op, err := p.buildOp(ctx, id, variant, params, sec.Width, sec.Height, pubIm.Width, pubIm.Height)
	if err != nil {
		return nil, err
	}
	if op.Linear() {
		if planes != nil {
			return planes.Reconstruct(pubIm.ToPlanar(), op)
		}
		if d := scaledDenom(params, variant, sec.Width, sec.Height, pubIm.Width, pubIm.Height); d > 1 {
			// The served rendition is no larger than the scaled planes, so
			// reconstruct the secret part straight to reduced scale — a
			// quarter (or a sixteenth, …) of the IDCT work — and let the
			// calibrated resize run from there.
			sp, err := core.DeriveSecretPlanesScaledPool(sec, threshold, d, nil)
			if err != nil {
				return nil, err
			}
			return sp.Reconstruct(pubIm.ToPlanar(), op)
		}
		return core.ReconstructPixels(pubIm.ToPlanar(), sec, threshold, op)
	}
	// Calibrated gamma: strip the trailing remap and use the §3.3 inversion
	// path.
	linear := *params
	linear.Gamma = 1
	var lop imaging.Compose
	lop = append(lop, op[:len(op)-1]...)
	lop = append(lop, linear.Instantiate(pubIm.Width, pubIm.Height))
	return core.ReconstructRemapped(pubIm.ToPlanar(), sec, threshold, lop, imaging.Gamma{G: params.Gamma})
}

// buildOp builds the operator mapping the original public part to the served
// variant: optional crop (coordinates arrive in stored-image space; mapped
// to original space) followed by the calibrated pipeline instantiated at the
// served dimensions.
func (p *Proxy) buildOp(ctx context.Context, id string, variant p3.PhotoVariant, params *core.PipelineParams,
	origW, origH, servedW, servedH int) (imaging.Compose, error) {
	var op imaging.Compose
	if variant.Crop != nil {
		crop := imaging.Crop{X: variant.Crop.X, Y: variant.Crop.Y, W: variant.Crop.W, H: variant.Crop.H}
		storedW, storedH, err := p.storedDims(ctx, id)
		if err != nil {
			return nil, err
		}
		if storedW != origW || storedH != origH {
			crop = mapCrop(crop, origW, origH, storedW, storedH)
		}
		op = append(op, crop)
	}
	op = append(op, params.Instantiate(servedW, servedH))
	return op, nil
}

// scaledDenom picks the deepest scaled-IDCT reduction whose planes still
// cover the served rendition, or 1 when the variant must reconstruct at full
// resolution. Crops are excluded because their coordinates address the
// full-resolution grid, and a calibrated pre-blur because its σ is expressed
// in full-resolution pixels.
func scaledDenom(params *core.PipelineParams, variant p3.PhotoVariant, origW, origH, servedW, servedH int) int {
	if params.PreBlur > 0 || variant.Crop != nil {
		return 1
	}
	for _, d := range [...]int{8, 4, 2} {
		if (origW+d-1)/d >= servedW && (origH+d-1)/d >= servedH {
			return d
		}
	}
	return 1
}

// mapCrop maps a crop rectangle from stored-image coordinates (the space
// crop= queries address) onto the original/secret-part pixel grid. Each
// edge — left, top, right, bottom — is scaled and rounded to the nearest
// pixel independently (not X/W pairs, which would let the far edge drift),
// then clamped to the image. The previous truncating division shifted
// crops by up to a pixel and shrank the window at non-integral scale
// factors.
func mapCrop(c imaging.Crop, origW, origH, storedW, storedH int) imaging.Crop {
	sx := func(v int) int { return roundDiv(v*origW, storedW) }
	sy := func(v int) int { return roundDiv(v*origH, storedH) }
	x := clampInt(sx(c.X), 0, origW-1)
	y := clampInt(sy(c.Y), 0, origH-1)
	right := clampInt(sx(c.X+c.W), x+1, origW)
	bottom := clampInt(sy(c.Y+c.H), y+1, origH)
	return imaging.Crop{X: x, Y: y, W: right - x, H: bottom - y}
}

// roundDiv divides non-negative a by positive b, rounding to nearest (half
// up).
func roundDiv(a, b int) int { return (a + b/2) / b }

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// statusFor maps a serving error onto the HTTP status the application
// deserves: its own malformed request is 400, a photo the PSP or blob store
// does not hold is 404, the proxy's own not-calibrated state is 503, and
// only genuine backend failures surface as 502.
func statusFor(err error) int {
	var reqErr *RequestError
	var inFlight *CalibrationInFlightError
	var shed *admission.ShedError
	switch {
	case errors.As(err, &reqErr):
		return http.StatusBadRequest
	case p3.IsNotFound(err):
		return http.StatusNotFound
	case errors.Is(err, errNotCalibrated):
		return http.StatusServiceUnavailable
	case errors.As(err, &inFlight), errors.As(err, &shed):
		// Back-pressure, not failure: a running calibration will answer for
		// everyone, a shed request should simply come back later;
		// Retry-After (setRetryAfter) says when.
		return http.StatusServiceUnavailable
	default:
		if status, ok := videoStatusFor(err); ok {
			return status
		}
		return http.StatusBadGateway
	}
}

// ServeHTTP exposes the PSP's own API shape, making interposition
// transparent to applications: POST /upload and GET /photo/{id}?… behave
// exactly like the PSP, except photos are split on the way up and
// reconstructed on the way down. POST /video/upload and GET
// /video/{id}[?frame=N] do the same for P3MJ clips (see serveVideoHTTP).
// POST /calibrate[?force=1] runs one calibration pass (503 + Retry-After
// while one is already in flight); GET /stats exposes the serving-layer
// counters as JSON, and
// GET /metrics serves the proxy's metrics registry (proxy, cache, codec
// and shard series) as Prometheus-style text exposition.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if p.admission != nil {
		// The admission layer keys its buckets and storm rates by client;
		// derive the identity once here and carry it in the context.
		r = r.WithContext(admission.WithClient(r.Context(),
			admission.ClientKey(r.Header.Get(admission.ClientKeyHeader), r.RemoteAddr)))
	}
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/upload":
		body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
		if err != nil {
			http.Error(w, "read error", http.StatusBadRequest)
			return
		}
		id, err := p.Upload(r.Context(), body)
		if err != nil {
			httpError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"id": id})
	case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/photo/"):
		id := strings.TrimPrefix(r.URL.Path, "/photo/")
		jpegBytes, err := p.Download(r.Context(), id, r.URL.Query())
		if err != nil {
			httpError(w, err)
			return
		}
		w.Header().Set("Content-Type", "image/jpeg")
		w.Write(jpegBytes)
	case r.Method == http.MethodDelete && strings.HasPrefix(r.URL.Path, "/photo/"):
		id := strings.TrimPrefix(r.URL.Path, "/photo/")
		if err := p.Delete(r.Context(), id); err != nil {
			httpError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/similar/"):
		id := strings.TrimPrefix(r.URL.Path, "/similar/")
		out, err := p.serveSimilarHTTP(r.Context(), id, r.URL.Query().Get("d"))
		if err != nil {
			httpError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	case strings.HasPrefix(r.URL.Path, "/video/"):
		p.serveVideoHTTP(w, r)
	case r.Method == http.MethodPost && r.URL.Path == "/calibrate":
		// force=1 skips the probe and always runs the full sweep + flip.
		out, err := p.Recalibrate(r.Context(), r.URL.Query().Get("force") != "")
		if err != nil {
			httpError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"epoch":      out.Epoch,
			"psnr_db":    out.Result.PSNR,
			"mse":        out.Result.MSE,
			"full_sweep": out.FullSweep,
			"flipped":    out.Flipped,
			"warmed":     out.Warmed,
		})
	case r.Method == http.MethodGet && r.URL.Path == "/stats":
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(p.Stats())
	case r.Method == http.MethodGet && r.URL.Path == "/metrics":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := p.reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	default:
		http.NotFound(w, r)
	}
}
