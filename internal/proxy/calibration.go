package proxy

// Calibration manager: the §4.1 pipeline identification torn out of the
// request path and rebuilt as an epoch-versioned subsystem.
//
// The identified pipeline lives in a single atomic pointer to an immutable
// core.CalibrationEpoch. Downloads snapshot that pointer once per request
// and derive both the variant-cache key and the reconstruction operator
// from the same snapshot, so a request can never observe a half-flipped
// epoch (old key with new parameters or vice versa). While a recalibration
// is in flight the pointer still holds the previous epoch, and downloads
// keep serving from it — stale-while-revalidate — instead of stalling or
// stampeding; the pointer flips atomically only once the sweep lands.
//
// A recalibration pass is incremental: it uploads one probe photo, fetches
// the PSP's rendition, and re-verifies the currently published parameters
// against it. Only on mismatch (PSNR under the probe floor) does the full
// 72-candidate grid sweep run — parallel on the manager's work.Pool and
// cancellable through ctx, so an abandoned HTTP calibrate doesn't leak a
// multi-second search. A confirmed probe keeps the epoch, and with it the
// entire variant cache.
//
// When the epoch does flip, superseded variants are retired lazily:
// cache.PurgeMatching removes only photo entries of older epochs (epoch is
// the key prefix), sparing calibration-independent video renditions, and
// the manager immediately re-reconstructs the outgoing epoch's top-K
// hottest variants (cache.HotKeys) under the new parameters, so post-flip
// traffic lands on warm entries instead of cold ~16 ms reconstructions.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"p3"
	"p3/internal/admission"
	"p3/internal/cache"
	"p3/internal/core"
	"p3/internal/dataset"
	"p3/internal/jpegx"
	"p3/internal/metrics"
)

const (
	// DefaultWarmTopK is how many of the hottest old-epoch variants the
	// manager re-reconstructs after an epoch flip; WithWarmTopK overrides.
	DefaultWarmTopK = 32

	// DefaultProbeFloorDB is the PSNR a probe must reach for the current
	// parameters to be considered still valid. Correctly identified
	// pipelines measure ~34-40 dB (paper §4.1); a PSP pipeline change drops
	// the probe far below, so 30 dB cleanly separates the two.
	DefaultProbeFloorDB = 30

	// backgroundRecalTimeout bounds one periodic recalibration pass.
	backgroundRecalTimeout = 5 * time.Minute
)

// WithRecalibrateInterval makes the proxy re-verify its calibration every d
// in the background (probe first, full sweep only on mismatch). d <= 0 —
// the default — disables the loop; Close stops it.
func WithRecalibrateInterval(d time.Duration) ProxyOption {
	return func(c *proxyConfig) { c.recalInterval = d }
}

// WithWarmTopK sets how many of the hottest old-epoch variants are
// re-reconstructed right after an epoch flip (0 disables pre-warming).
func WithWarmTopK(n int) ProxyOption {
	return func(c *proxyConfig) { c.warmTopK = max(n, 0) }
}

// WithProbeFloorDB sets the PSNR floor (dB) under which a recalibration
// probe declares the published parameters stale and triggers the full
// sweep.
func WithProbeFloorDB(db float64) ProxyOption {
	return func(c *proxyConfig) { c.probeFloorDB = db }
}

// CalibrationInFlightError reports a calibration request rejected because
// another calibration is already running on this proxy; RetryAfter
// estimates when the slot frees. ServeHTTP maps it to 503 with a
// Retry-After header — the caller's answer is the epoch that lands, not a
// second concurrent sweep.
type CalibrationInFlightError struct {
	RetryAfter time.Duration
}

func (e *CalibrationInFlightError) Error() string {
	return fmt.Sprintf("proxy: calibration already in flight; retry in %s", e.RetryAfter)
}

// CalibrationOutcome reports what one calibration pass did.
type CalibrationOutcome struct {
	Result    core.SearchResult // match quality of the probe or sweep
	Epoch     uint64            // epoch serving after the pass
	FullSweep bool              // the grid sweep ran (false: probe confirmed current params)
	Flipped   bool              // a new epoch was published
	Warmed    int               // variants pre-warmed after the flip
}

// CalibrationStats is the /stats view of the calibration subsystem.
type CalibrationStats struct {
	Epoch       uint64  `json:"epoch"`
	InFlight    bool    `json:"in_flight"`
	Probes      uint64  `json:"probes"`
	ProbeHits   uint64  `json:"probe_hits"`
	Sweeps      uint64  `json:"sweeps"`
	Rejected    uint64  `json:"rejected_in_flight"`
	StaleServes uint64  `json:"stale_serves"`
	Warmed      uint64  `json:"variants_warmed"`
	WarmHits    uint64  `json:"warm_hits"`
	ProbeP50Ms  float64 `json:"probe_p50_ms"`
	SweepP50Ms  float64 `json:"sweep_p50_ms"`
}

// calibState is the manager's mutable state, embedded in Proxy.
type calibState struct {
	cur atomic.Pointer[core.CalibrationEpoch] // nil until first calibration

	mu         sync.Mutex // serializes pass admission (busy + passStart writes)
	busy       atomic.Bool
	passStart  time.Time    // when the in-flight pass was admitted
	lastPassNs atomic.Int64 // duration of the last completed pass

	// warmKeys holds the variant keys the last flip pre-warmed that have
	// not yet been served; warmCount mirrors len(warmKeys) so the download
	// hot path can skip the lock when nothing is pending.
	warmMu    sync.Mutex
	warmKeys  map[string]struct{}
	warmCount atomic.Int64

	stop      chan struct{} // closes the background recalibration loop
	done      chan struct{}
	closeOnce sync.Once

	probes      *metrics.Counter
	probeHits   *metrics.Counter
	sweeps      *metrics.Counter
	rejected    *metrics.Counter
	staleServes *metrics.Counter
	warmed      *metrics.Counter
	warmHits    *metrics.Counter
	probeHist   *metrics.Histogram
	sweepHist   *metrics.Histogram
}

// initCalibMetrics builds the calibration instruments in r, labeled with
// the proxy instance name (rows documented in ARCHITECTURE.md).
func (c *calibState) initCalibMetrics(r *metrics.Registry, name string) {
	labels := []metrics.Label{{Key: "proxy", Value: name}}
	c.probes = r.Counter("p3_calibration_probes_total",
		"Incremental recalibration probes run (one-photo re-verification).", labels...)
	c.probeHits = r.Counter("p3_calibration_probe_hits_total",
		"Probes that confirmed the current parameters, skipping the full sweep.", labels...)
	c.sweeps = r.Counter("p3_calibration_sweeps_total",
		"Full candidate-grid sweeps run.", labels...)
	c.rejected = r.Counter("p3_calibration_rejected_total",
		"Calibration requests rejected because one was already in flight.", labels...)
	c.staleServes = r.Counter("p3_calibration_stale_serves_total",
		"Downloads served from the previous epoch while a calibration was in flight.", labels...)
	c.warmed = r.Counter("p3_calibration_warmed_total",
		"Variants re-reconstructed by post-flip pre-warming.", labels...)
	c.warmHits = r.Counter("p3_calibration_warm_hits_total",
		"Downloads that landed on a pre-warmed variant entry.", labels...)
	c.probeHist = r.Histogram("p3_calibration_probe_seconds",
		"Wall time of recalibration probes (upload + fetch + verify).", labels...)
	c.sweepHist = r.Histogram("p3_calibration_sweep_seconds",
		"Wall time of full candidate-grid sweeps (search only).", labels...)
	r.SetGaugeFunc("p3_calibration_epoch",
		"Currently served calibration epoch (0 = not yet calibrated).",
		func() float64 {
			if ep := c.cur.Load(); ep != nil {
				return float64(ep.Epoch)
			}
			return 0
		}, labels...)
	r.SetGaugeFunc("p3_calibration_in_flight",
		"1 while a calibration pass is running.",
		func() float64 {
			if c.busy.Load() {
				return 1
			}
			return 0
		}, labels...)
}

// stats snapshots the subsystem for the JSON /stats view.
func (c *calibState) stats() CalibrationStats {
	var epoch uint64
	if ep := c.cur.Load(); ep != nil {
		epoch = ep.Epoch
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return CalibrationStats{
		Epoch:       epoch,
		InFlight:    c.busy.Load(),
		Probes:      c.probes.Value(),
		ProbeHits:   c.probeHits.Value(),
		Sweeps:      c.sweeps.Value(),
		Rejected:    c.rejected.Value(),
		StaleServes: c.staleServes.Value(),
		Warmed:      c.warmed.Value(),
		WarmHits:    c.warmHits.Value(),
		ProbeP50Ms:  ms(c.probeHist.Snapshot().P50),
		SweepP50Ms:  ms(c.sweepHist.Snapshot().P50),
	}
}

// noteServe attributes one download to the stale-while-revalidate window
// when a calibration pass is in flight.
func (c *calibState) noteServe() {
	if c.busy.Load() {
		c.staleServes.Inc()
	}
}

// setWarm replaces the pending warm-key set with the keys the latest flip
// pre-warmed.
func (c *calibState) setWarm(keys []string) {
	m := make(map[string]struct{}, len(keys))
	for _, k := range keys {
		m[k] = struct{}{}
	}
	c.warmMu.Lock()
	c.warmKeys = m
	c.warmMu.Unlock()
	c.warmCount.Store(int64(len(m)))
}

// noteWarmHit counts the first download landing on a pre-warmed entry. The
// common case — nothing pending — is one atomic load.
func (c *calibState) noteWarmHit(variants *cache.Cache[[]byte], key string) {
	if c.warmCount.Load() == 0 {
		return
	}
	c.warmMu.Lock()
	_, ok := c.warmKeys[key]
	if ok {
		delete(c.warmKeys, key)
	}
	c.warmMu.Unlock()
	if !ok {
		return
	}
	c.warmCount.Add(-1)
	if variants.Contains(key) {
		c.warmHits.Inc()
	}
}

// retryAfterLocked estimates when the in-flight pass completes, from the
// last completed pass's duration. Callers hold c.mu.
func (c *calibState) retryAfterLocked() time.Duration {
	last := time.Duration(c.lastPassNs.Load())
	if last <= 0 {
		last = 5 * time.Second // nothing measured yet: assume a full sweep
	}
	remaining := last - time.Since(c.passStart)
	if remaining < time.Second {
		remaining = time.Second
	}
	return remaining
}

// variantKeyFor addresses one reconstructed rendition in the variant cache.
// The variant is canonicalized through Query() so equivalent requests
// ("w=10&h=20" vs "h=20&w=10") share an entry, and the calibration epoch is
// the key prefix, so reconstructions under superseded parameters can never
// be served after a flip and lazy eviction can match entries by epoch.
func variantKeyFor(epoch uint64, id string, v p3.PhotoVariant) string {
	return fmt.Sprintf("%d\x00%s\x00%s", epoch, id, v.Query().Encode())
}

// parseVariantKey inverts variantKeyFor. Video keys (prefix "video\x00")
// fail the epoch parse and report ok = false.
func parseVariantKey(key string) (id string, v p3.PhotoVariant, ok bool) {
	parts := strings.SplitN(key, "\x00", 3)
	if len(parts) != 3 {
		return "", p3.PhotoVariant{}, false
	}
	if _, err := strconv.ParseUint(parts[0], 10, 64); err != nil {
		return "", p3.PhotoVariant{}, false
	}
	q, err := url.ParseQuery(parts[2])
	if err != nil {
		return "", p3.PhotoVariant{}, false
	}
	variant, err := p3.ParsePhotoVariant(q)
	if err != nil {
		return "", p3.PhotoVariant{}, false
	}
	return parts[1], variant, true
}

// Calibrate runs one incremental calibration pass (see Recalibrate) and
// returns its match quality. Must be called once before reconstructing
// downloads; afterwards it re-verifies rather than re-sweeps, so periodic
// calls are cheap while the PSP's pipeline is stable.
func (p *Proxy) Calibrate(ctx context.Context) (core.SearchResult, error) {
	out, err := p.Recalibrate(ctx, false)
	return out.Result, err
}

// Recalibrate runs one calibration pass against the PSP (§4.1): upload a
// probe photo, fetch the PSP's rendition, and — unless force is set —
// first re-verify the currently published parameters against it, running
// the full candidate sweep only on mismatch. A resulting epoch flip
// atomically publishes the new parameters, lazily retires older-epoch
// variants, and pre-warms the hottest of them under the new parameters.
// Downloads keep serving the previous epoch throughout. At most one pass
// runs per proxy; concurrent calls fail fast with
// *CalibrationInFlightError.
func (p *Proxy) Recalibrate(ctx context.Context, force bool) (_ CalibrationOutcome, err error) {
	defer p.calibrate.observe(time.Now(), &err)
	release, err := p.admit(ctx, admission.Calibrate)
	if err != nil {
		return CalibrationOutcome{}, err
	}
	defer release()
	c := &p.calib
	c.mu.Lock()
	if c.busy.Load() {
		retry := c.retryAfterLocked()
		c.mu.Unlock()
		c.rejected.Inc()
		return CalibrationOutcome{}, &CalibrationInFlightError{RetryAfter: retry}
	}
	c.busy.Store(true)
	c.passStart = time.Now()
	c.mu.Unlock()
	defer func() {
		c.lastPassNs.Store(int64(time.Since(c.passStart)))
		c.busy.Store(false)
	}()
	return p.runCalibration(ctx, force)
}

// runCalibration is the pass body; the caller holds the busy slot.
func (p *Proxy) runCalibration(ctx context.Context, force bool) (CalibrationOutcome, error) {
	c := &p.calib
	calib := dataset.Natural(0xca11b, 512, 384)
	coeffs, err := calib.ToCoeffs(92, jpegx.Sub420)
	if err != nil {
		return CalibrationOutcome{}, err
	}
	var buf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&buf, coeffs, nil); err != nil {
		return CalibrationOutcome{}, err
	}
	probeStart := time.Now()
	id, err := p.photos.UploadPhoto(ctx, buf.Bytes())
	if err != nil {
		return CalibrationOutcome{}, fmt.Errorf("proxy: calibration upload: %w", err)
	}
	// The calibration image is scaffolding, not user data: remove it from
	// the PSP once the pass is over, even a failed or cancelled one.
	defer p.deleteCalibrationPhoto(ctx, id)
	served, err := p.photos.FetchPhoto(ctx, id, p3.PhotoVariant{Size: "small"})
	if err != nil {
		return CalibrationOutcome{}, fmt.Errorf("proxy: calibration download: %w", err)
	}
	servedIm, err := jpegx.Decode(bytes.NewReader(served))
	if err != nil {
		return CalibrationOutcome{}, err
	}
	// The uploaded calibration image itself was decoded by the PSP from our
	// JPEG; compare against what we actually sent.
	sent, err := jpegx.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return CalibrationOutcome{}, err
	}
	sentP, servedP := sent.ToPlanar(), servedIm.ToPlanar()

	prev := c.cur.Load()
	if prev != nil && !force {
		res := prev.Params.Verify(sentP, servedP)
		c.probes.Inc()
		c.probeHist.Observe(time.Since(probeStart))
		if res.PSNR >= p.probeFloorDB {
			// The published parameters still reproduce the PSP: keep the
			// epoch, and with it every cached variant.
			c.probeHits.Inc()
			return CalibrationOutcome{Result: res, Epoch: prev.Epoch}, nil
		}
	}

	sweepStart := time.Now()
	params, res, err := core.SearchParamsCtx(ctx, sentP, servedP, p.calibPool)
	if err != nil {
		return CalibrationOutcome{}, err
	}
	c.sweeps.Inc()
	c.sweepHist.Observe(time.Since(sweepStart))

	// Record the outgoing epoch's working set before retiring it; the
	// pre-warm below rebuilds it under the new parameters. Oversample so
	// video renditions mixed into the ranking don't eat photo slots.
	var hot []cache.HotKey
	if prev != nil && p.warmTopK > 0 {
		hot = p.variants.HotKeys(2 * p.warmTopK)
	}

	next := &core.CalibrationEpoch{Epoch: 1, Params: params, Result: res}
	if prev != nil {
		next.Epoch = prev.Epoch + 1
	}
	c.cur.Store(next)

	// Lazy retirement: only photo variants of superseded epochs go; video
	// renditions are calibration-independent and any entry already keyed
	// under the new epoch stays. (A reconstruction in flight across this
	// point is additionally blocked from inserting by the cache's
	// generation check.)
	curPrefix := fmt.Sprintf("%d\x00", next.Epoch)
	p.variants.PurgeMatching(func(key string) bool {
		return !strings.HasPrefix(key, videoKeyPrefix) && !strings.HasPrefix(key, curPrefix)
	})

	warmed := p.prewarm(ctx, next, hot)
	return CalibrationOutcome{Result: res, Epoch: next.Epoch, FullSweep: true, Flipped: true, Warmed: warmed}, nil
}

// prewarm re-reconstructs the outgoing epoch's hottest variants under the
// freshly published epoch, fanned out on the calibration pool, so post-flip
// traffic finds warm entries. Best-effort: a photo deleted since it was
// cached just stays cold.
func (p *Proxy) prewarm(ctx context.Context, ep *core.CalibrationEpoch, hot []cache.HotKey) int {
	type target struct {
		id string
		v  p3.PhotoVariant
	}
	var targets []target
	for _, hk := range hot {
		if len(targets) >= p.warmTopK {
			break
		}
		id, v, ok := parseVariantKey(hk.Key)
		if !ok {
			continue // video rendition or foreign key shape
		}
		targets = append(targets, target{id: id, v: v})
	}
	if len(targets) == 0 {
		return 0
	}
	var warmedKeys sync.Map
	p.calibPool.Do(len(targets), func(i int) error {
		key := variantKeyFor(ep.Epoch, targets[i].id, targets[i].v)
		_, err := p.variants.GetOrLoad(ctx, key, func(ctx context.Context) ([]byte, error) {
			pix, err := p.reconstructWith(ctx, &ep.Params, targets[i].id, targets[i].v)
			if err != nil {
				return nil, err
			}
			return encodeVariant(pix)
		})
		if err == nil {
			warmedKeys.Store(key, struct{}{})
		}
		return nil
	})
	var keys []string
	warmedKeys.Range(func(k, _ any) bool {
		keys = append(keys, k.(string))
		return true
	})
	p.calib.setWarm(keys)
	p.calib.warmed.Add(uint64(len(keys)))
	return len(keys)
}

// deleteCalibrationPhoto best-effort removes the calibration image a pass
// uploaded to the PSP, detached from ctx so a cancelled calibrate still
// cleans up. Failures are logged, never fatal: a leftover probe image costs
// the PSP a few kilobytes, not correctness.
func (p *Proxy) deleteCalibrationPhoto(ctx context.Context, id string) {
	del, ok := p.photos.(p3.PhotoDeleter)
	if !ok {
		return
	}
	if err := del.DeletePhoto(context.WithoutCancel(ctx), id); err != nil {
		log.Printf("proxy: deleting calibration photo %q: %v", id, err)
	}
}

// Calibrated reports whether the PSP pipeline has been identified.
func (p *Proxy) Calibrated() bool { return p.calib.cur.Load() != nil }

// CalibrationEpoch returns the currently served epoch number (0 until the
// first calibration lands).
func (p *Proxy) CalibrationEpoch() uint64 {
	if ep := p.calib.cur.Load(); ep != nil {
		return ep.Epoch
	}
	return 0
}

// CalibrationInFlight reports whether a calibration pass is running.
func (p *Proxy) CalibrationInFlight() bool { return p.calib.busy.Load() }

// startRecalibrationLoop runs periodic incremental recalibration until
// Close. A pass that loses the admission race to a foreground calibrate is
// silently skipped — its work was done for us.
func (p *Proxy) startRecalibrationLoop(interval time.Duration) {
	c := &p.calib
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go func() {
		defer close(c.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), backgroundRecalTimeout)
				_, err := p.Recalibrate(ctx, false)
				cancel()
				if err != nil && !errors.As(err, new(*CalibrationInFlightError)) {
					log.Printf("proxy: background recalibration: %v", err)
				}
			}
		}
	}()
}

// Close stops the background recalibration loop, waiting out a pass already
// in flight. The proxy stays usable; Close exists so tests and embedding
// servers can shut the goroutine down cleanly, and is safe to call more
// than once (or on a proxy that never started the loop).
func (p *Proxy) Close() {
	c := &p.calib
	if c.stop == nil {
		return
	}
	c.closeOnce.Do(func() { close(c.stop) })
	<-c.done
}
