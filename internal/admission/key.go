package admission

// Client identity parsing. The admission layer keys its token buckets and
// storm rates by a small opaque client string derived from the request.
// The header is attacker-controlled input: an unbounded or
// attacker-minted key would let one client smear its traffic across
// endless bucket identities (defeating rate limiting) or blow up the
// bucket LRU with megabyte keys, so parsing is strictly bounding and
// normalizing — never trusting.

import (
	"context"
	"net"
	"strings"
)

// ClientKeyHeader is the request header a trusted deployment can use to
// carry a client identity through the proxy (set by an upstream
// terminator, like X-Forwarded-For). Absent or unusable, the remote
// address decides.
const ClientKeyHeader = "X-P3-Client"

// maxClientKeyLen bounds derived client keys. Long enough for any real
// identity token; short enough that a hostile header cannot inflate the
// bucket LRU's per-entry cost.
const maxClientKeyLen = 64

// anonymousKey is the bucket every request with no derivable identity
// shares. Grouping the unidentifiable into one bucket is deliberate: an
// attacker who can strip their identity should compete with every other
// anonymous client, not get a fresh bucket each.
const anonymousKey = "anon"

// ClientKey derives the admission identity from the client-key header
// value and the connection's remote address. The header wins when it
// yields a usable token: the first comma-separated element (proxies
// append, client-supplied first), trimmed, truncated to maxClientKeyLen,
// with control and non-ASCII bytes rejected (hostile headers fall through
// to the address rather than minting unprintable identities). The
// fallback is the remote address's host part, so NATed apps behind one
// address share a bucket. Always returns a non-empty key of at most
// maxClientKeyLen bytes.
func ClientKey(header, remoteAddr string) string {
	if k, ok := sanitizeHeaderKey(header); ok {
		return k
	}
	if host, _, err := net.SplitHostPort(remoteAddr); err == nil && host != "" && printableASCII(host) {
		return truncate(host)
	}
	if remoteAddr != "" && printableASCII(remoteAddr) {
		return truncate(remoteAddr)
	}
	return anonymousKey
}

// sanitizeHeaderKey vets one header value into a key, reporting ok=false
// for anything empty or containing bytes outside printable ASCII.
func sanitizeHeaderKey(header string) (string, bool) {
	if header == "" {
		return "", false
	}
	if i := strings.IndexByte(header, ','); i >= 0 {
		header = header[:i]
	}
	header = strings.TrimSpace(header)
	if header == "" || !printableASCII(header) {
		return "", false
	}
	return truncate(header), true
}

// printableASCII reports whether every byte is in [0x21, 0x7e] or a
// space — no control bytes, no high bytes (multi-byte sequences could be
// truncated mid-rune by the length cap).
func printableASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 || s[i] > 0x7e {
			return false
		}
	}
	return true
}

func truncate(s string) string {
	if len(s) > maxClientKeyLen {
		return s[:maxClientKeyLen]
	}
	return s
}

// clientCtxKey carries the admission client key through a context.
type clientCtxKey struct{}

// WithClient returns a context carrying the admission client key; the
// proxy's HTTP front door sets it from ClientKey, and in-process callers
// (tests, the load harness) set it directly.
func WithClient(ctx context.Context, key string) context.Context {
	return context.WithValue(ctx, clientCtxKey{}, key)
}

// ClientFromContext returns the context's client key, or anonymousKey when
// none was attached.
func ClientFromContext(ctx context.Context) string {
	if k, ok := ctx.Value(clientCtxKey{}).(string); ok && k != "" {
		return k
	}
	return anonymousKey
}
