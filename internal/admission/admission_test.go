package admission

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p3/internal/metrics"
)

func newTestController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg, metrics.NewRegistry(), "test")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestAdmitReleaseBasics: a free controller admits immediately, the
// release frees the slot, and release is idempotent.
func TestAdmitReleaseBasics(t *testing.T) {
	c := newTestController(t, Config{MaxInflight: 1})
	release, err := c.Admit(context.Background(), Cached, "a")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Inflight; got != 1 {
		t.Fatalf("inflight = %d, want 1", got)
	}
	release()
	release() // idempotent
	if got := c.Stats().Inflight; got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
	if got := c.Stats().Cached.Admitted; got != 1 {
		t.Fatalf("cached admitted = %d, want 1", got)
	}
}

// TestQueueFullSheds: with the slot held and the queue at its bound, the
// next request is shed with reason queue_full and RetryAfter >= 1s.
func TestQueueFullSheds(t *testing.T) {
	c := newTestController(t, Config{MaxInflight: 1, QueueDepth: 2})
	release, err := c.Admit(context.Background(), Cold, "holder")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if rel, err := c.Admit(ctx, Cold, "waiter"); err == nil {
				rel()
			}
		}()
	}
	waitFor(t, func() bool { return c.Stats().Cold.QueueDepth == 2 })
	_, err = c.Admit(context.Background(), Cold, "overflow")
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonQueueFull {
		t.Fatalf("err = %v, want ShedError{queue_full}", err)
	}
	if shed.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", shed.RetryAfter)
	}
	release()
	wg.Wait()
}

// TestPriorityDrainOrder: queued cached requests are granted before cold,
// and cold before calibrate, regardless of enqueue order.
func TestPriorityDrainOrder(t *testing.T) {
	c := newTestController(t, Config{MaxInflight: 1, QueueDepth: 8})
	release, err := c.Admit(context.Background(), Cold, "holder")
	if err != nil {
		t.Fatal(err)
	}
	var order []Class
	var mu sync.Mutex
	var wg sync.WaitGroup
	enqueue := func(cl Class) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := c.Admit(context.Background(), cl, "w")
			if err != nil {
				t.Errorf("class %v shed: %v", cl, err)
				return
			}
			mu.Lock()
			order = append(order, cl)
			mu.Unlock()
			rel()
		}()
		// Each waiter must be queued before the next enqueues, so the
		// enqueue order (worst-priority first) is deterministic.
		waitFor(t, func() bool {
			s := c.Stats()
			return s.Cached.QueueDepth+s.Cold.QueueDepth+s.Calibrate.QueueDepth == queued(cl)
		})
	}
	for _, cl := range []Class{Calibrate, Cold, Cached} {
		enqueue(cl)
	}
	release()
	wg.Wait()
	want := []Class{Cached, Cold, Calibrate}
	for i, cl := range want {
		if order[i] != cl {
			t.Fatalf("drain order = %v, want %v", order, want)
		}
	}
}

// queued tracks how many waiters the priority test expects after
// enqueueing up to class cl in its Calibrate, Cold, Cached order.
func queued(cl Class) int {
	switch cl {
	case Calibrate:
		return 1
	case Cold:
		return 2
	default:
		return 3
	}
}

// TestDeadlineShedding: once the class's moving p95 exceeds the remaining
// deadline, requests are shed immediately without queuing.
func TestDeadlineShedding(t *testing.T) {
	c := newTestController(t, Config{MaxInflight: 4})
	// Teach the cold class a 2s p95.
	for i := 0; i < 32; i++ {
		c.classes[Cold].recordService(2 * time.Second)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.Admit(ctx, Cold, "a")
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonDeadline {
		t.Fatalf("err = %v, want ShedError{deadline}", err)
	}
	if shed.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", shed.RetryAfter)
	}
	// A request with no deadline is untouched by the estimate.
	rel, err := c.Admit(context.Background(), Cold, "a")
	if err != nil {
		t.Fatalf("no-deadline request shed: %v", err)
	}
	rel()
	// Another class's p95 does not bleed over.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	rel, err = c.Admit(ctx2, Cached, "a")
	if err != nil {
		t.Fatalf("cached request shed on cold p95: %v", err)
	}
	rel()
}

// TestClientTokenBucket: a client burning through its burst is shed with
// client_rate; time refills it; other clients are unaffected.
func TestClientTokenBucket(t *testing.T) {
	clock := time.Unix(1000, 0)
	c := newTestController(t, Config{
		MaxInflight: 100, ClientRPS: 10, ClientBurst: 5,
		now: func() time.Time { return clock },
	})
	for i := 0; i < 5; i++ {
		rel, err := c.Admit(context.Background(), Cached, "greedy")
		if err != nil {
			t.Fatalf("request %d within burst shed: %v", i, err)
		}
		rel()
	}
	_, err := c.Admit(context.Background(), Cached, "greedy")
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonClientRate {
		t.Fatalf("err = %v, want ShedError{client_rate}", err)
	}
	if rel, err := c.Admit(context.Background(), Cached, "other"); err != nil {
		t.Fatalf("other client shed: %v", err)
	} else {
		rel()
	}
	clock = clock.Add(200 * time.Millisecond) // 2 tokens refill
	if rel, err := c.Admit(context.Background(), Cached, "greedy"); err != nil {
		t.Fatalf("refilled client shed: %v", err)
	} else {
		rel()
	}
}

// TestBucketLRUBounded: distinct client keys cannot grow bucket memory
// past the budget.
func TestBucketLRUBounded(t *testing.T) {
	l := newBucketLRU(10 * bucketCost("client-000000"))
	now := time.Unix(1000, 0)
	for i := 0; i < 1000; i++ {
		l.take(fmtKey(i), 10, 5, now)
	}
	if n := l.len(); n > 10 {
		t.Fatalf("bucket LRU holds %d entries, budget allows 10", n)
	}
}

func fmtKey(i int) string {
	return "client-" + string([]byte{byte('0' + i/100%10), byte('0' + i/10%10), byte('0' + i%10), '0', '0', '0'})
}

// TestAdmissionHammer is the -race hammer the admission queue is pinned
// by: N goroutines across all classes with randomized deadlines. Checked
// invariants:
//   - every request resolves exactly once, as either admitted or shed
//     (never both: Admit's return shape enforces it, the accounting here
//     proves totals add up);
//   - concurrent execution never exceeds MaxInflight;
//   - per-class queue depth never exceeds QueueDepth;
//   - every shed request carries a ShedError response with RetryAfter.
func TestAdmissionHammer(t *testing.T) {
	const (
		maxInflight = 4
		queueDepth  = 8
		goroutines  = 24
		perG        = 200
	)
	c := newTestController(t, Config{MaxInflight: maxInflight, QueueDepth: queueDepth})

	var (
		running   atomic.Int64
		overMax   atomic.Int64
		admitted  atomic.Int64
		shedCount atomic.Int64
		badShed   atomic.Int64
	)
	stopWatch := make(chan struct{})
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	go func() {
		// Depth watcher: the gauge must never exceed the configured bound.
		defer watchWG.Done()
		for {
			select {
			case <-stopWatch:
				return
			default:
			}
			s := c.Stats()
			for _, d := range []int{s.Cached.QueueDepth, s.Cold.QueueDepth, s.Calibrate.QueueDepth} {
				if d > queueDepth {
					overMax.Add(1)
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				class := Class(rng.Intn(int(numClasses)))
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if rng.Intn(2) == 0 {
					// Randomized deadlines, some short enough to expire
					// while queued.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(2000))*time.Microsecond)
				}
				release, err := c.Admit(ctx, class, "hammer")
				switch {
				case err == nil:
					if n := running.Add(1); n > maxInflight {
						overMax.Add(1)
					}
					admitted.Add(1)
					if rng.Intn(4) == 0 {
						time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
					}
					running.Add(-1)
					release()
				default:
					shedCount.Add(1)
					var shed *ShedError
					if !errors.As(err, &shed) || shed.RetryAfter < time.Second {
						badShed.Add(1)
					}
				}
				cancel()
			}
		}(g)
	}
	wg.Wait()
	close(stopWatch)
	watchWG.Wait()

	total := admitted.Load() + shedCount.Load()
	if want := int64(goroutines * perG); total != want {
		t.Errorf("resolved %d requests, issued %d — some request was lost or double-counted", total, want)
	}
	if n := overMax.Load(); n != 0 {
		t.Errorf("%d observations exceeded MaxInflight/QueueDepth bounds", n)
	}
	if n := badShed.Load(); n != 0 {
		t.Errorf("%d shed requests lacked a proper ShedError response", n)
	}
	s := c.Stats()
	if got := s.Cached.Admitted + s.Cold.Admitted + s.Calibrate.Admitted; got != uint64(admitted.Load()) {
		t.Errorf("admitted counters = %d, observed %d", got, admitted.Load())
	}
	var statShed uint64
	for _, v := range s.ShedByReason {
		statShed += v
	}
	if statShed != uint64(shedCount.Load()) {
		t.Errorf("shed counters = %d, observed %d", statShed, shedCount.Load())
	}
	if s.Inflight != 0 {
		t.Errorf("inflight = %d after quiescence, want 0", s.Inflight)
	}
	if d := s.Cached.QueueDepth + s.Cold.QueueDepth + s.Calibrate.QueueDepth; d != 0 {
		t.Errorf("queue depth = %d after quiescence, want 0", d)
	}
}

// TestCancelWhileQueuedIsAnswered: a waiter whose context dies in the
// queue gets a ShedError, and the queue forgets it.
func TestCancelWhileQueuedIsAnswered(t *testing.T) {
	c := newTestController(t, Config{MaxInflight: 1, QueueDepth: 4})
	release, err := c.Admit(context.Background(), Cold, "holder")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Admit(ctx, Cold, "w")
		done <- err
	}()
	waitFor(t, func() bool { return c.Stats().Cold.QueueDepth == 1 })
	cancel()
	err = <-done
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("cancelled waiter got %v, want ShedError", err)
	}
	if d := c.Stats().Cold.QueueDepth; d != 0 {
		t.Fatalf("queue depth = %d after cancellation, want 0", d)
	}
	release()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
