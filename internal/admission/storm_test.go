package admission

import (
	"sort"
	"testing"
	"time"
)

// stormPhase describes one client's arrival schedule: evenly spaced
// requests at rps over [start, end) relative to the test epoch.
type stormPhase struct {
	key        string
	rps        float64
	start, end time.Duration
}

// synthesize merges the phases into one time-ordered arrival stream.
func synthesize(phases []stormPhase) []struct {
	t   time.Duration
	key string
} {
	var events []struct {
		t   time.Duration
		key string
	}
	for _, p := range phases {
		if p.rps <= 0 {
			continue
		}
		step := time.Duration(float64(time.Second) / p.rps)
		for t := p.start; t < p.end; t += step {
			events = append(events, struct {
				t   time.Duration
				key string
			}{t, p.key})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].t < events[j].t })
	return events
}

// runStorm feeds the schedule through a detector and reports which keys
// were ever clamped.
func runStorm(t *testing.T, clampFactor float64, phases []stormPhase) map[string]bool {
	t.Helper()
	d := newDetector(clampFactor, StormConfig{})
	epoch := time.Unix(1_700_000_000, 0)
	clampedEver := make(map[string]bool)
	for _, ev := range synthesize(phases) {
		if clamped, _, _ := d.arrival(ev.key, epoch.Add(ev.t)); clamped {
			clampedEver[ev.key] = true
		}
	}
	return clampedEver
}

func victims(n int, rps float64, start, end time.Duration) []stormPhase {
	phases := make([]stormPhase, n)
	for i := range phases {
		phases[i] = stormPhase{key: "victim-" + string(rune('a'+i)), rps: rps, start: start, end: end}
	}
	return phases
}

// TestStormDetector is the table of storm shapes the detector must
// separate: a single client ramping far past fair share (clamp), a
// square-wave attacker (clamp), and a flash crowd of distinct clients
// producing the same aggregate surge (must NOT clamp anyone).
func TestStormDetector(t *testing.T) {
	const clampFactor = 4
	tests := []struct {
		name          string
		phases        []stormPhase
		wantClamped   []string
		wantUnclamped []string
	}{
		{
			name: "ramp attacker clamped victims spared",
			phases: append(victims(8, 10, 0, 5*time.Second),
				// Attacker ramps 100 -> 300 -> 500 rps from t=1s.
				stormPhase{key: "attacker", rps: 100, start: 1 * time.Second, end: 1500 * time.Millisecond},
				stormPhase{key: "attacker", rps: 300, start: 1500 * time.Millisecond, end: 2 * time.Second},
				stormPhase{key: "attacker", rps: 500, start: 2 * time.Second, end: 5 * time.Second},
			),
			wantClamped: []string{"attacker"},
			wantUnclamped: []string{
				"victim-a", "victim-b", "victim-c", "victim-d",
				"victim-e", "victim-f", "victim-g", "victim-h",
			},
		},
		{
			name: "square wave attacker clamped",
			phases: append(victims(8, 10, 0, 6*time.Second),
				stormPhase{key: "attacker", rps: 600, start: 1 * time.Second, end: 2500 * time.Millisecond},
				stormPhase{key: "attacker", rps: 600, start: 4 * time.Second, end: 5500 * time.Millisecond},
			),
			wantClamped:   []string{"attacker"},
			wantUnclamped: []string{"victim-a", "victim-h"},
		},
		{
			name: "flash crowd of distinct clients never clamped",
			phases: append(victims(8, 10, 0, 4*time.Second),
				flashCrowd(100, 15, 1*time.Second, 4*time.Second)...),
			wantClamped:   nil,
			wantUnclamped: []string{"victim-a", "flash-000", "flash-050", "flash-099"},
		},
		{
			name:          "steady load never trips",
			phases:        victims(8, 20, 0, 5*time.Second),
			wantClamped:   nil,
			wantUnclamped: []string{"victim-a", "victim-h"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			clamped := runStorm(t, clampFactor, tt.phases)
			for _, k := range tt.wantClamped {
				if !clamped[k] {
					t.Errorf("key %q was never clamped, want clamped", k)
				}
			}
			for _, k := range tt.wantUnclamped {
				if clamped[k] {
					t.Errorf("key %q was clamped, want spared", k)
				}
			}
			if len(tt.wantClamped) == 0 && len(clamped) > 0 {
				t.Errorf("clamped keys %v, want none", clamped)
			}
		})
	}
}

func flashCrowd(n int, rps float64, start, end time.Duration) []stormPhase {
	phases := make([]stormPhase, n)
	for i := range phases {
		phases[i] = stormPhase{
			key: "flash-" + string([]byte{byte('0' + i/100), byte('0' + i/10%10), byte('0' + i%10)}),
			rps: rps, start: start, end: end,
		}
	}
	return phases
}

// TestStormClampExpires: a clamp outlives the storm by ClampFor, then the
// key is served again.
func TestStormClampExpires(t *testing.T) {
	d := newDetector(4, StormConfig{ClampFor: 2 * time.Second})
	epoch := time.Unix(1_700_000_000, 0)
	phases := append(victims(8, 10, 0, 3*time.Second),
		stormPhase{key: "attacker", rps: 500, start: 1 * time.Second, end: 3 * time.Second})
	var clampedAt time.Duration = -1
	for _, ev := range synthesize(phases) {
		if clamped, _, _ := d.arrival(ev.key, epoch.Add(ev.t)); clamped && ev.key == "attacker" && clampedAt < 0 {
			clampedAt = ev.t
		}
	}
	if clampedAt < 0 {
		t.Fatal("attacker never clamped")
	}
	// Long after the attack and the clamp window, the key is clean again.
	later := epoch.Add(3 * time.Minute)
	if clamped, _, _ := d.arrival("attacker", later); clamped {
		t.Fatal("clamp survived far past ClampFor")
	}
}

// TestStormIdleGapResets: a long idle gap resets the CUSUM instead of
// replaying hundreds of phantom windows.
func TestStormIdleGapResets(t *testing.T) {
	d := newDetector(4, StormConfig{})
	epoch := time.Unix(1_700_000_000, 0)
	for _, ev := range synthesize(append(victims(8, 10, 0, 2*time.Second),
		stormPhase{key: "attacker", rps: 500, start: 500 * time.Millisecond, end: 2 * time.Second})) {
		d.arrival(ev.key, epoch.Add(ev.t))
	}
	if _, active := d.snapshot(); !active {
		t.Fatal("storm not active after attack — test premise broken")
	}
	d.arrival("quiet", epoch.Add(10*time.Minute))
	if _, active := d.snapshot(); active {
		t.Fatal("storm still active after a 10-minute idle gap")
	}
}

// TestKeyTableBounded: distinct keys cannot grow the rate table past
// MaxKeys.
func TestKeyTableBounded(t *testing.T) {
	d := newDetector(4, StormConfig{MaxKeys: 64})
	now := time.Unix(1_700_000_000, 0)
	for i := 0; i < 1000; i++ {
		d.arrival(fmtKey(i), now.Add(time.Duration(i)*time.Millisecond))
	}
	d.mu.Lock()
	n := len(d.keys)
	d.mu.Unlock()
	if n > 64 {
		t.Fatalf("key table holds %d keys, MaxKeys is 64", n)
	}
}
