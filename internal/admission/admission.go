// Package admission is the proxy's overload-protection layer: it decides,
// before any backend or codec work happens, whether a request runs now,
// waits, or is shed with a Retry-After hint. The proxy serves three very
// differently priced operations — sub-millisecond cached-variant hits,
// ~17 ms cold reconstructions, and multi-second calibration sweeps — and
// without admission control one storming client or one burst of cold
// misses queues behind the expensive work and detonates everyone's tail
// latency.
//
// The layer composes four independent mechanisms, applied in order:
//
//  1. Per-client token buckets. Each client key (from the X-P3-Client
//     header or the remote address, see ClientKey) gets a lazily created
//     bucket refilled at the configured rate; buckets live in a
//     bytes-bounded LRU so a million distinct clients cannot balloon proxy
//     memory. A client out of tokens is shed with reason "client_rate"
//     before it can touch the queue.
//  2. A storm detector (storm.go): a global CUSUM over windowed arrival
//     counts detects the onset of a request storm, and per-key
//     exponentially decayed rates identify which clients are storming.
//     Offending keys are clamped — shed with reason "storm" — while a
//     flash crowd of many distinct clients is left alone.
//  3. Deadline-aware shedding. Each cost class tracks a moving p95 of its
//     service time; a request whose context deadline cannot cover that
//     estimate is shed immediately ("deadline") instead of wasting a slot
//     on work whose answer nobody will wait for.
//  4. A bounded priority queue. At most MaxInflight requests run
//     concurrently; excess requests wait in per-class FIFO queues drained
//     in class-priority order (cached hits before cold reconstructions
//     before calibrations), each bounded at QueueDepth ("queue_full" when
//     over).
//
// Every decision is counted (p3_admission_* series, see the metrics rows
// in ARCHITECTURE.md) and snapshotted by Stats for the /stats JSON view.
package admission

import (
	"container/list"
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"p3/internal/metrics"
)

// Class is a request cost class. Lower values are cheaper and drain first:
// a cached-variant hit should never wait behind a cold reconstruction, and
// nothing should wait behind a calibration sweep.
type Class int

const (
	// Cached marks requests expected to be served from the variant cache.
	Cached Class = iota
	// Cold marks requests that must do real reconstruction or upload work.
	Cold
	// Calibrate marks calibration passes (probe or full sweep).
	Calibrate
	numClasses
)

// String names the class the way the metric labels and /stats JSON do.
func (c Class) String() string {
	switch c {
	case Cached:
		return "cached"
	case Cold:
		return "cold"
	case Calibrate:
		return "calibrate"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Shed reasons, used as the reason label on p3_admission_shed_total and in
// ShedError.
const (
	ReasonClientRate = "client_rate" // per-client token bucket empty
	ReasonStorm      = "storm"       // client clamped by the storm detector
	ReasonDeadline   = "deadline"    // remaining deadline < class p95 service time
	ReasonQueueFull  = "queue_full"  // class queue at its depth bound
)

// ShedError reports a request turned away by the admission layer. It is
// back-pressure, not failure: RetryAfter estimates when the same request
// would be admitted, and HTTP callers map it to 503 with a Retry-After
// header.
type ShedError struct {
	Class      Class
	Reason     string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("admission: %s request shed (%s); retry in %s", e.Class, e.Reason, e.RetryAfter)
}

// Config parameterizes a Controller. The zero value of every optional
// field picks the documented default; MaxInflight is required.
type Config struct {
	// MaxInflight bounds how many admitted requests run concurrently.
	MaxInflight int
	// QueueDepth bounds each class's wait queue (default 64).
	QueueDepth int
	// ClientRPS is each client's token-bucket refill rate in requests per
	// second; 0 disables per-client rate limiting.
	ClientRPS float64
	// ClientBurst is the bucket capacity (default max(2*ClientRPS, 8)).
	ClientBurst float64
	// BucketBytes bounds the memory of the client-bucket LRU (default 1 MiB,
	// roughly 10k concurrent client identities).
	BucketBytes int64
	// StormClamp clamps clients whose arrival rate exceeds this multiple of
	// the per-client fair share while a storm is detected; 0 disables the
	// detector.
	StormClamp float64
	// Storm tunes the detector beyond the clamp factor; zero fields default
	// (see stormDefaults).
	Storm StormConfig

	// now overrides the clock in tests.
	now func() time.Time
}

// serviceWindow is how many completed requests the per-class moving p95
// service-time estimate looks back over.
const serviceWindow = 256

// waiter is one queued request.
type waiter struct {
	class   Class
	ready   chan struct{} // closed when granted
	granted bool          // set under Controller.mu before close(ready)
	at      time.Time     // enqueue time, for the queue-wait histogram
}

// classState is the per-class slice of the controller.
type classState struct {
	queue list.List // of *waiter

	// Moving service-time window: a ring of the last serviceWindow
	// durations, with the p95 re-estimated every few completions so the
	// admit path reads one atomic-ish cached value instead of sorting.
	svcMu    sync.Mutex
	svc      [serviceWindow]time.Duration
	svcLen   int
	svcNext  int
	svcDirty int
	svcP95   time.Duration

	admitted *metrics.Counter
	queued   *metrics.Counter
	waitHist *metrics.Histogram
	shed     [4]*metrics.Counter // by reason, indexed by reasonIndex
}

func reasonIndex(reason string) int {
	switch reason {
	case ReasonClientRate:
		return 0
	case ReasonStorm:
		return 1
	case ReasonDeadline:
		return 2
	default:
		return 3
	}
}

// Controller is the admission layer for one proxy instance. All methods
// are safe for concurrent use.
type Controller struct {
	cfg Config
	now func() time.Time

	mu       sync.Mutex
	inflight int
	classes  [numClasses]*classState

	buckets *bucketLRU
	storm   *detector

	clamps      *metrics.Counter
	inflightG   *metrics.Gauge
	shedTotal   [4]uint64 // mirrors the per-reason counters, summed across classes; under mu
	admittedAll uint64    // under mu
}

// New builds a Controller registering its instruments in r under the given
// proxy instance name. MaxInflight must be positive.
func New(cfg Config, r *metrics.Registry, name string) (*Controller, error) {
	if cfg.MaxInflight < 1 {
		return nil, fmt.Errorf("admission: MaxInflight %d (need >= 1)", cfg.MaxInflight)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.QueueDepth < 1 {
		return nil, fmt.Errorf("admission: QueueDepth %d (need >= 1)", cfg.QueueDepth)
	}
	if cfg.ClientBurst <= 0 {
		cfg.ClientBurst = max(2*cfg.ClientRPS, 8)
	}
	if cfg.BucketBytes <= 0 {
		cfg.BucketBytes = 1 << 20
	}
	if r == nil {
		r = metrics.Default
	}
	c := &Controller{cfg: cfg, now: cfg.now}
	if c.now == nil {
		c.now = time.Now
	}
	if cfg.ClientRPS > 0 {
		c.buckets = newBucketLRU(cfg.BucketBytes)
	}
	if cfg.StormClamp > 0 {
		c.storm = newDetector(cfg.StormClamp, cfg.Storm)
	}
	labels := func(cl Class) []metrics.Label {
		return []metrics.Label{{Key: "proxy", Value: name}, {Key: "class", Value: cl.String()}}
	}
	for cl := Class(0); cl < numClasses; cl++ {
		cs := &classState{}
		cs.admitted = r.Counter("p3_admission_admitted_total",
			"Requests admitted past the admission layer, by class.", labels(cl)...)
		cs.queued = r.Counter("p3_admission_queued_total",
			"Admitted requests that had to wait in the class queue first.", labels(cl)...)
		cs.waitHist = r.Histogram("p3_admission_queue_wait_seconds",
			"Time admitted requests spent queued, by class.", labels(cl)...)
		for _, reason := range []string{ReasonClientRate, ReasonStorm, ReasonDeadline, ReasonQueueFull} {
			l := append(labels(cl), metrics.Label{Key: "reason", Value: reason})
			cs.shed[reasonIndex(reason)] = r.Counter("p3_admission_shed_total",
				"Requests shed by the admission layer, by class and reason.", l...)
		}
		cl := cl
		r.SetGaugeFunc("p3_admission_queue_depth",
			"Requests currently waiting in the class queue.",
			func() float64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				return float64(c.classes[cl].queue.Len())
			}, labels(cl)...)
		c.classes[cl] = cs
	}
	c.clamps = r.Counter("p3_admission_clamped_total",
		"Client keys newly clamped by the storm detector.",
		metrics.Label{Key: "proxy", Value: name})
	c.inflightG = r.Gauge("p3_admission_inflight",
		"Admitted requests currently executing.",
		metrics.Label{Key: "proxy", Value: name})
	return c, nil
}

// MustNew is New for wiring code whose config is validated elsewhere.
func MustNew(cfg Config, r *metrics.Registry, name string) *Controller {
	c, err := New(cfg, r, name)
	if err != nil {
		panic(err)
	}
	return c
}

// Admit runs the request through the gauntlet — storm clamp, client token
// bucket, deadline check, bounded priority queue — and either grants a
// slot, returning a release func the caller MUST call when the request
// finishes, or sheds with *ShedError. A request is never both: the error
// and the release func are mutually exclusive.
func (c *Controller) Admit(ctx context.Context, class Class, client string) (release func(), err error) {
	if class < 0 || class >= numClasses {
		class = Cold
	}
	now := c.now()
	cs := c.classes[class]

	// Storm clamp: a client the detector has flagged is turned away before
	// anything else, at one map lookup of cost.
	if c.storm != nil {
		clamped, until, newClamps := c.storm.arrival(client, now)
		if newClamps > 0 {
			c.clamps.Add(uint64(newClamps))
		}
		if clamped {
			return nil, c.shed(cs, class, ReasonStorm, until.Sub(now))
		}
	}

	// Per-client token bucket.
	if c.buckets != nil {
		if ok, wait := c.buckets.take(client, c.cfg.ClientRPS, c.cfg.ClientBurst, now); !ok {
			return nil, c.shed(cs, class, ReasonClientRate, wait)
		}
	}

	// Deadline-aware shedding: if the class's moving p95 service time
	// already exceeds what remains of the caller's deadline, the work
	// would finish after the caller gave up — shed now, cheaply.
	p95 := cs.p95()
	if deadline, ok := ctx.Deadline(); ok && p95 > 0 {
		if remaining := deadline.Sub(now); remaining < p95 {
			return nil, c.shed(cs, class, ReasonDeadline, p95-remaining)
		}
	}

	c.mu.Lock()
	if c.inflight < c.cfg.MaxInflight {
		c.inflight++
		c.mu.Unlock()
		c.inflightG.Set(int64(c.loadInflight()))
		cs.admitted.Inc()
		return c.releaser(cs, now), nil
	}
	if cs.queue.Len() >= c.cfg.QueueDepth {
		c.mu.Unlock()
		// Expected drain time for a full queue: everything ahead at the
		// class's p95, MaxInflight at a time.
		wait := time.Duration(float64(p95) * float64(c.cfg.QueueDepth) / float64(c.cfg.MaxInflight))
		return nil, c.shed(cs, class, ReasonQueueFull, wait)
	}
	w := &waiter{class: class, ready: make(chan struct{}), at: now}
	el := cs.queue.PushBack(w)
	c.mu.Unlock()
	cs.queued.Inc()

	select {
	case <-w.ready:
		cs.waitHist.Observe(c.now().Sub(w.at))
		cs.admitted.Inc()
		return c.releaser(cs, c.now()), nil
	case <-ctx.Done():
		c.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: the slot is ours, so take
			// it; the caller's op will fail fast on its dead context and
			// release the slot immediately. Never both shed and served.
			c.mu.Unlock()
			cs.waitHist.Observe(c.now().Sub(w.at))
			cs.admitted.Inc()
			return c.releaser(cs, c.now()), nil
		}
		cs.queue.Remove(el)
		c.mu.Unlock()
		return nil, c.shed(cs, class, ReasonDeadline, cs.p95())
	}
}

// releaser returns the closure Admit hands an admitted request: it records
// the service time into the class's moving window and frees the slot,
// handing it straight to the highest-priority waiter if any.
func (c *Controller) releaser(cs *classState, start time.Time) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			cs.recordService(c.now().Sub(start))
			c.mu.Lock()
			if w := c.nextWaiterLocked(); w != nil {
				// Transfer the slot without decrementing: the waiter runs
				// in our place.
				w.granted = true
				close(w.ready)
			} else {
				c.inflight--
			}
			c.mu.Unlock()
			c.inflightG.Set(int64(c.loadInflight()))
		})
	}
}

// nextWaiterLocked pops the head of the highest-priority non-empty queue.
func (c *Controller) nextWaiterLocked() *waiter {
	for cl := Class(0); cl < numClasses; cl++ {
		q := &c.classes[cl].queue
		if el := q.Front(); el != nil {
			return q.Remove(el).(*waiter)
		}
	}
	return nil
}

func (c *Controller) loadInflight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inflight
}

// shed counts and builds one rejection. RetryAfter is clamped to at least
// one second: the HTTP header has whole-second resolution and "0" reads as
// "hammer me again immediately", the opposite of back-pressure.
func (c *Controller) shed(cs *classState, class Class, reason string, retry time.Duration) error {
	cs.shed[reasonIndex(reason)].Inc()
	c.mu.Lock()
	c.shedTotal[reasonIndex(reason)]++
	c.mu.Unlock()
	if retry < time.Second {
		retry = time.Second
	}
	return &ShedError{Class: class, Reason: reason, RetryAfter: retry}
}

// recordService feeds one completed request's duration into the moving
// window; the cached p95 is refreshed every 16 completions (and for each
// of the first few, so estimates exist early).
func (cs *classState) recordService(d time.Duration) {
	cs.svcMu.Lock()
	cs.svc[cs.svcNext] = d
	cs.svcNext = (cs.svcNext + 1) % serviceWindow
	if cs.svcLen < serviceWindow {
		cs.svcLen++
	}
	cs.svcDirty++
	if cs.svcDirty >= 16 || cs.svcLen <= 16 {
		cs.svcDirty = 0
		buf := make([]time.Duration, cs.svcLen)
		copy(buf, cs.svc[:cs.svcLen])
		sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
		cs.svcP95 = buf[(len(buf)*95)/100]
	}
	cs.svcMu.Unlock()
}

// p95 returns the cached moving p95 service time (0 until measurements
// exist, which disables deadline shedding rather than guessing).
func (cs *classState) p95() time.Duration {
	cs.svcMu.Lock()
	defer cs.svcMu.Unlock()
	return cs.svcP95
}

// ClassStats is one class's slice of the Stats snapshot.
type ClassStats struct {
	Admitted     uint64  `json:"admitted"`
	Queued       uint64  `json:"queued"`
	Shed         uint64  `json:"shed"`
	QueueDepth   int     `json:"queue_depth"`
	P95ServiceMs float64 `json:"p95_service_ms"`
}

// Stats is the /stats JSON view of the admission layer. Field names follow
// the p3_admission_* metric scheme (ARCHITECTURE.md).
type Stats struct {
	Cached       ClassStats        `json:"cached"`
	Cold         ClassStats        `json:"cold"`
	Calibrate    ClassStats        `json:"calibrate"`
	Inflight     int               `json:"inflight"`
	ShedByReason map[string]uint64 `json:"shed_by_reason"`
	ClampedKeys  int               `json:"clamped_keys"`
	StormActive  bool              `json:"storm_active"`
}

// Stats snapshots the controller.
func (c *Controller) Stats() Stats {
	var s Stats
	class := func(cl Class) ClassStats {
		cs := c.classes[cl]
		var shed uint64
		for _, ctr := range cs.shed {
			shed += ctr.Value()
		}
		c.mu.Lock()
		depth := cs.queue.Len()
		c.mu.Unlock()
		return ClassStats{
			Admitted:     cs.admitted.Value(),
			Queued:       cs.queued.Value(),
			Shed:         shed,
			QueueDepth:   depth,
			P95ServiceMs: float64(cs.p95()) / float64(time.Millisecond),
		}
	}
	s.Cached, s.Cold, s.Calibrate = class(Cached), class(Cold), class(Calibrate)
	c.mu.Lock()
	s.Inflight = c.inflight
	shed := c.shedTotal
	c.mu.Unlock()
	s.ShedByReason = map[string]uint64{
		ReasonClientRate: shed[reasonIndex(ReasonClientRate)],
		ReasonStorm:      shed[reasonIndex(ReasonStorm)],
		ReasonDeadline:   shed[reasonIndex(ReasonDeadline)],
		ReasonQueueFull:  shed[reasonIndex(ReasonQueueFull)],
	}
	if c.storm != nil {
		s.ClampedKeys, s.StormActive = c.storm.snapshot()
	}
	return s
}

// --- per-client token buckets -----------------------------------------

// bucket is one client's token bucket. Guarded by bucketLRU.mu — bucket
// churn is bounded by the request rate and the critical section is tiny.
type bucket struct {
	key    string
	tokens float64
	last   time.Time
}

// bucketCost approximates one bucket's memory footprint for the LRU
// budget: the struct, the map and list bookkeeping, and the key bytes.
func bucketCost(key string) int64 { return int64(len(key)) + 96 }

// bucketLRU is a bytes-bounded LRU of client token buckets: hot clients
// stay resident, idle ones age out, total memory stays flat no matter how
// many distinct client keys flow past.
type bucketLRU struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     list.List // of *bucket, front = most recent
	items  map[string]*list.Element
}

func newBucketLRU(budget int64) *bucketLRU {
	return &bucketLRU{budget: budget, items: make(map[string]*list.Element)}
}

// take refills the client's bucket to now and consumes one token,
// reporting (false, wait-until-a-token-accrues) when empty. A brand-new
// (or evicted-and-recreated) bucket starts full — an LRU eviction can
// therefore hand a patient attacker a fresh burst, which is exactly the
// storm detector's job to catch.
func (l *bucketLRU) take(key string, rps, burst float64, now time.Time) (ok bool, wait time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var b *bucket
	if el, found := l.items[key]; found {
		l.ll.MoveToFront(el)
		b = el.Value.(*bucket)
		b.tokens = min(burst, b.tokens+now.Sub(b.last).Seconds()*rps)
		b.last = now
	} else {
		b = &bucket{key: key, tokens: burst, last: now}
		l.items[key] = l.ll.PushFront(b)
		l.bytes += bucketCost(key)
		for l.bytes > l.budget && l.ll.Len() > 1 {
			el := l.ll.Back()
			old := el.Value.(*bucket)
			l.ll.Remove(el)
			delete(l.items, old.key)
			l.bytes -= bucketCost(old.key)
		}
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / rps * float64(time.Second))
}

// len reports how many buckets are resident (tests).
func (l *bucketLRU) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ll.Len()
}
