package admission

// Request-storm detection, RAID-style: cheap online statistics in the
// request path, no per-request allocation, no background goroutine.
//
// Two estimators cooperate. Globally, arrivals are counted in fixed
// windows and a CUSUM accumulates each window's excess over a slowly
// adapting baseline: S <- max(0, S + count - baseline*(1+slack)). A storm
// is declared when S crosses its trip point and cleared when S drains back
// to zero — the classic change-point shape that reacts in a couple of
// windows to a genuine level shift while riding out ordinary burstiness.
// The baseline only adapts while the CUSUM is at zero, so a surge (or a
// long-running attack) cannot teach the detector that storming is normal.
//
// Per key, an exponentially decayed arrival count (half-life KeyHalfLife)
// estimates each client's current request rate for a few words of memory
// per client. Clamping needs both signals: a storm must be active
// (globally, something is wrong) AND the key's rate must exceed
// clampFactor times the current per-client fair share (this client is the
// something). A flash crowd — the same surge spread over many distinct
// clients — trips the CUSUM but leaves every key near 1x fair share, so
// nobody is clamped; that asymmetry is the whole point of the design.

import (
	"math"
	"sync"
	"time"
)

// StormConfig tunes the storm detector. Zero fields take the defaults
// documented on each field.
type StormConfig struct {
	// Window is the arrival-count window (default 250ms).
	Window time.Duration
	// BaselineAlpha is the EWMA weight for the per-window baseline
	// (default 0.2; smaller adapts slower).
	BaselineAlpha float64
	// Slack is the CUSUM slack as a fraction of the baseline (default 0.5):
	// windows within (1+Slack)x baseline never accumulate.
	Slack float64
	// Threshold is the CUSUM trip point in multiples of the per-window
	// baseline (default 4).
	Threshold float64
	// MinExcess is an absolute floor on the trip point, in arrivals
	// (default 50), so near-idle traffic cannot trip on a handful of
	// requests.
	MinExcess float64
	// KeyHalfLife is the half-life of the per-key decayed rate (default 1s).
	KeyHalfLife time.Duration
	// MinClampRate is the absolute per-key rate (req/s) below which a key
	// is never clamped regardless of fair-share multiples (default 5).
	MinClampRate float64
	// ClampFor is how long a clamped key stays clamped after it last
	// exceeded the limit (default 5s).
	ClampFor time.Duration
	// MaxKeys bounds the per-key rate table (default 4096).
	MaxKeys int
}

func (c StormConfig) withDefaults() StormConfig {
	if c.Window <= 0 {
		c.Window = 250 * time.Millisecond
	}
	if c.BaselineAlpha <= 0 {
		c.BaselineAlpha = 0.2
	}
	if c.Slack <= 0 {
		c.Slack = 0.5
	}
	if c.Threshold <= 0 {
		c.Threshold = 4
	}
	if c.MinExcess <= 0 {
		c.MinExcess = 50
	}
	if c.KeyHalfLife <= 0 {
		c.KeyHalfLife = time.Second
	}
	if c.MinClampRate <= 0 {
		c.MinClampRate = 5
	}
	if c.ClampFor <= 0 {
		c.ClampFor = 5 * time.Second
	}
	if c.MaxKeys <= 0 {
		c.MaxKeys = 4096
	}
	return c
}

// keyRate is one client's decayed arrival count.
type keyRate struct {
	weight float64
	last   time.Time
}

// detector is the storm detector. All state lives behind one mutex; the
// per-arrival critical section is a handful of float ops.
type detector struct {
	cfg         StormConfig
	clampFactor float64

	mu          sync.Mutex
	windowStart time.Time
	windowCount float64
	baseline    float64 // EWMA of per-window arrival counts, frozen mid-storm
	current     float64 // fast EWMA of the same, tracks storms too
	cusum       float64
	active      bool
	keys        map[string]*keyRate
	clamped     map[string]time.Time // key -> clamp expiry
}

func newDetector(clampFactor float64, cfg StormConfig) *detector {
	return &detector{
		cfg:         cfg.withDefaults(),
		clampFactor: clampFactor,
		keys:        make(map[string]*keyRate),
		clamped:     make(map[string]time.Time),
	}
}

// arrival records one request from key at now and decides whether the key
// is (still or newly) clamped. until is the clamp expiry when clamped;
// newClamps counts keys that transitioned into the clamped state on this
// call (feeds p3_admission_clamped_total).
func (d *detector) arrival(key string, now time.Time) (isClamped bool, until time.Time, newClamps int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rollWindowsLocked(now)
	d.windowCount++

	// Per-key decayed rate update.
	kr, ok := d.keys[key]
	if !ok {
		if len(d.keys) >= d.cfg.MaxKeys {
			d.evictKeysLocked(now)
		}
		kr = &keyRate{last: now}
		d.keys[key] = kr
	}
	kr.weight *= decay(now.Sub(kr.last), d.cfg.KeyHalfLife)
	kr.weight++
	kr.last = now
	keyRatePerSec := kr.weight * math.Ln2 / d.cfg.KeyHalfLife.Seconds()

	// An existing clamp answers first (and expires lazily).
	if exp, ok := d.clamped[key]; ok {
		if now.Before(exp) {
			// Renew while the key keeps storming, so a clamped attacker
			// that never slows down never un-clamps.
			if d.active && d.overLimitLocked(keyRatePerSec) {
				d.clamped[key] = now.Add(d.cfg.ClampFor)
			}
			return true, d.clamped[key], 0
		}
		delete(d.clamped, key)
	}

	if d.active && d.overLimitLocked(keyRatePerSec) {
		exp := now.Add(d.cfg.ClampFor)
		d.clamped[key] = exp
		return true, exp, 1
	}
	return false, time.Time{}, 0
}

// overLimitLocked reports whether a per-key rate exceeds clampFactor times
// the current per-client fair share (current global rate over active
// keys), with the absolute MinClampRate floor.
func (d *detector) overLimitLocked(keyRatePerSec float64) bool {
	if keyRatePerSec < d.cfg.MinClampRate {
		return false
	}
	globalRate := d.current / d.cfg.Window.Seconds()
	fairShare := globalRate / float64(max(len(d.keys), 1))
	return fairShare > 0 && keyRatePerSec > d.clampFactor*fairShare
}

// rollWindowsLocked closes every window boundary between windowStart and
// now, feeding each completed window's count into the CUSUM and the
// baselines. Long idle gaps (no arrivals, so no rolling) reset the CUSUM
// instead of replaying hundreds of empty windows.
func (d *detector) rollWindowsLocked(now time.Time) {
	if d.windowStart.IsZero() {
		d.windowStart = now
		return
	}
	const maxReplay = 64
	for i := 0; !now.Before(d.windowStart.Add(d.cfg.Window)); i++ {
		if i >= maxReplay {
			// The gap dwarfs the detector's memory: start fresh at now.
			d.windowStart = now
			d.windowCount = 0
			d.cusum = 0
			d.active = false
			return
		}
		x := d.windowCount
		d.windowCount = 0
		d.windowStart = d.windowStart.Add(d.cfg.Window)
		if d.baseline == 0 {
			d.baseline = x
		}
		d.current += 0.5 * (x - d.current)
		d.cusum = math.Max(0, d.cusum+x-d.baseline*(1+d.cfg.Slack))
		if d.cusum == 0 {
			// In control: let the baseline track the level. The moment any
			// excess accumulates the baseline freezes — if it kept adapting
			// it would absorb a surge faster than the CUSUM can accumulate
			// it (the trip point scales with the baseline, so a chasing
			// baseline means the trip chases the CUSUM and never fires).
			d.baseline += d.cfg.BaselineAlpha * (x - d.baseline)
			d.active = false
		} else if d.cusum >= math.Max(d.cfg.MinExcess, d.cfg.Threshold*d.baseline) {
			d.active = true
		}
	}
}

// evictKeysLocked trims the key table: idle keys (decayed weight < 1) go
// first; if every key is hot the table is genuinely full and arbitrary
// entries are dropped to make room — their rates rebuild within a
// half-life.
func (d *detector) evictKeysLocked(now time.Time) {
	for k, kr := range d.keys {
		if kr.weight*decay(now.Sub(kr.last), d.cfg.KeyHalfLife) < 1 {
			delete(d.keys, k)
		}
	}
	for k := range d.keys {
		if len(d.keys) < d.cfg.MaxKeys {
			break
		}
		delete(d.keys, k)
	}
}

// snapshot reports the number of currently clamped keys and whether a
// storm is active.
func (d *detector) snapshot() (clampedKeys int, active bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.clamped), d.active
}

// decay returns the exponential decay factor 2^(-dt/halfLife).
func decay(dt, halfLife time.Duration) float64 {
	if dt <= 0 {
		return 1
	}
	return math.Exp2(-dt.Seconds() / halfLife.Seconds())
}
