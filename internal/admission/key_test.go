package admission

import (
	"context"
	"strings"
	"testing"
)

func TestClientKey(t *testing.T) {
	long := strings.Repeat("x", 200)
	tests := []struct {
		name, header, remote, want string
	}{
		{"header wins", "app-123", "10.0.0.1:5000", "app-123"},
		{"first comma token", "alice, proxy1, proxy2", "10.0.0.1:5000", "alice"},
		{"header trimmed", "  bob  ", "10.0.0.1:5000", "bob"},
		{"header truncated", long, "10.0.0.1:5000", long[:maxClientKeyLen]},
		{"control bytes rejected", "evil\x00key", "10.0.0.1:5000", "10.0.0.1"},
		{"high bytes rejected", "\xffclient", "10.0.0.1:5000", "10.0.0.1"},
		{"empty header falls to addr", "", "192.168.1.7:33", "192.168.1.7"},
		{"addr without port", "", "192.168.1.7", "192.168.1.7"},
		{"ipv6 host", "", "[::1]:8080", "::1"},
		{"nothing usable", "", "", anonymousKey},
		{"hostile addr", "\n", "\x01\x02", anonymousKey},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ClientKey(tt.header, tt.remote); got != tt.want {
				t.Errorf("ClientKey(%q, %q) = %q, want %q", tt.header, tt.remote, got, tt.want)
			}
		})
	}
}

func TestClientContext(t *testing.T) {
	ctx := WithClient(context.Background(), "carol")
	if got := ClientFromContext(ctx); got != "carol" {
		t.Errorf("ClientFromContext = %q, want carol", got)
	}
	if got := ClientFromContext(context.Background()); got != anonymousKey {
		t.Errorf("ClientFromContext(empty) = %q, want %q", got, anonymousKey)
	}
}

// FuzzAdmissionKey hammers client-key derivation with hostile header and
// address bytes. Whatever goes in, the key out must be non-empty, at most
// maxClientKeyLen bytes, and printable ASCII — anything else would let an
// attacker mint unbounded or unprintable bucket identities.
func FuzzAdmissionKey(f *testing.F) {
	f.Add("app-123", "10.0.0.1:5000")
	f.Add("a, b, c", "[::1]:8080")
	f.Add("", "")
	f.Add(strings.Repeat("k", 1000), strings.Repeat("a", 1000))
	f.Add("\x00\x01\x02", "\xff\xfe")
	f.Add("héllo", "exämple:80")
	f.Add(",,,,", ":::::")
	f.Fuzz(func(t *testing.T, header, remoteAddr string) {
		key := ClientKey(header, remoteAddr)
		if key == "" {
			t.Fatalf("empty key from (%q, %q)", header, remoteAddr)
		}
		if len(key) > maxClientKeyLen {
			t.Fatalf("key %q is %d bytes, cap is %d", key, len(key), maxClientKeyLen)
		}
		if !printableASCII(key) {
			t.Fatalf("key %q contains non-printable bytes from (%q, %q)", key, header, remoteAddr)
		}
	})
}
