// Package imaging provides the pixel-domain transformations a photo-sharing
// provider applies to uploaded images — resizing with several filter
// kernels, cropping, blurring, sharpening, gamma adjustment — implemented
// over unclamped float64 planes.
//
// The package distinguishes *linear* operators (resize, crop, convolution,
// and their compositions) from non-linear ones (gamma). Linearity is the
// property P3's reconstruction (paper §3.3, Eq. (2)) depends on: for a
// linear A, A·y = A·x_pub + A·x_sec + A·corr, so a recipient can apply the
// PSP's transform to the decrypted secret and correction images and add
// them to the transformed public image. Operating on unclamped floats keeps
// that equality exact: the secret and correction images take values far
// outside [0,255].
package imaging

import (
	"fmt"
	"strings"

	"p3/internal/jpegx"
)

// Op is an image transformation. Linear reports whether the operator
// commutes with addition and scalar multiplication of images, which is what
// P3 reconstruction requires of PSP-side processing.
type Op interface {
	Apply(src *jpegx.PlanarImage) *jpegx.PlanarImage
	Linear() bool
	String() string
}

// Identity returns its input unchanged (by deep copy, so callers may mutate).
type Identity struct{}

// Apply implements Op.
func (Identity) Apply(src *jpegx.PlanarImage) *jpegx.PlanarImage { return src.Clone() }

// Linear implements Op.
func (Identity) Linear() bool { return true }

func (Identity) String() string { return "identity" }

// Compose applies ops left to right.
type Compose []Op

// Apply implements Op.
func (c Compose) Apply(src *jpegx.PlanarImage) *jpegx.PlanarImage {
	out := src
	for _, op := range c {
		out = op.Apply(out)
	}
	if out == src {
		out = src.Clone()
	}
	return out
}

// Linear implements Op: a composition is linear iff every stage is.
func (c Compose) Linear() bool {
	for _, op := range c {
		if !op.Linear() {
			return false
		}
	}
	return true
}

func (c Compose) String() string {
	parts := make([]string, len(c))
	for i, op := range c {
		parts[i] = op.String()
	}
	return strings.Join(parts, " ∘ ")
}

// Invertible is implemented by pointwise one-to-one operators (e.g. gamma).
// Per paper §3.3, such non-linear remaps can be undone on the public part,
// the reconstruction performed, and the remap re-applied.
type Invertible interface {
	Op
	Inverse() Op
}

// AddInto accumulates src into dst (dst += scale·src). Panics if shapes
// differ; P3 reconstruction only combines images it produced with matching
// geometry.
func AddInto(dst, src *jpegx.PlanarImage, scale float64) {
	if dst.Width != src.Width || dst.Height != src.Height || len(dst.Planes) != len(src.Planes) {
		panic(fmt.Sprintf("imaging: AddInto shape mismatch %dx%dx%d vs %dx%dx%d",
			dst.Width, dst.Height, len(dst.Planes), src.Width, src.Height, len(src.Planes)))
	}
	for pi := range dst.Planes {
		d, s := dst.Planes[pi], src.Planes[pi]
		for i := range d {
			d[i] += scale * s[i]
		}
	}
}

// Sub returns a - b as a new image.
func Sub(a, b *jpegx.PlanarImage) *jpegx.PlanarImage {
	out := a.Clone()
	AddInto(out, b, -1)
	return out
}

// Clamp limits all samples to [0, 255] in place and returns the image.
func Clamp(img *jpegx.PlanarImage) *jpegx.PlanarImage {
	for _, p := range img.Planes {
		for i, v := range p {
			if v < 0 {
				p[i] = 0
			} else if v > 255 {
				p[i] = 255
			}
		}
	}
	return img
}
