package imaging

import (
	"fmt"
	"math"

	"p3/internal/jpegx"
)

// GaussianBlur convolves each plane with a σ-parameterized Gaussian.
// Convolution is linear. PSP resize pipelines commonly blur slightly before
// decimation; the pipeline search sweeps σ.
type GaussianBlur struct {
	Sigma float64
}

// Linear implements Op.
func (GaussianBlur) Linear() bool { return true }

func (g GaussianBlur) String() string { return fmt.Sprintf("gaussian(σ=%.2f)", g.Sigma) }

// Kernel1D returns the normalized 1-D Gaussian kernel for σ, radius
// ceil(3σ).
func (g GaussianBlur) Kernel1D() []float64 {
	if g.Sigma <= 0 {
		return []float64{1}
	}
	r := int(math.Ceil(3 * g.Sigma))
	k := make([]float64, 2*r+1)
	var sum float64
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * g.Sigma * g.Sigma))
		k[i+r] = v
		sum += v
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// Apply implements Op.
func (g GaussianBlur) Apply(src *jpegx.PlanarImage) *jpegx.PlanarImage {
	if g.Sigma <= 0 {
		return src.Clone()
	}
	k := g.Kernel1D()
	dst := jpegx.NewPlanarImage(src.Width, src.Height, len(src.Planes))
	tmp := make([]float64, src.Width*src.Height)
	for pi := range src.Planes {
		convolveH(src.Planes[pi], tmp, src.Width, src.Height, k)
		convolveV(tmp, dst.Planes[pi], src.Width, src.Height, k)
	}
	return dst
}

// convolveH applies a horizontal 1-D kernel with edge replication.
func convolveH(src, dst []float64, w, h int, k []float64) {
	r := len(k) / 2
	for y := 0; y < h; y++ {
		row := src[y*w : y*w+w]
		orow := dst[y*w : y*w+w]
		for x := 0; x < w; x++ {
			var acc float64
			for i, kv := range k {
				sx := clampIdx(x+i-r, 0, w-1)
				acc += kv * row[sx]
			}
			orow[x] = acc
		}
	}
}

// convolveV applies a vertical 1-D kernel with edge replication.
func convolveV(src, dst []float64, w, h int, k []float64) {
	r := len(k) / 2
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var acc float64
			for i, kv := range k {
				sy := clampIdx(y+i-r, 0, h-1)
				acc += kv * src[sy*w+x]
			}
			dst[y*w+x] = acc
		}
	}
}

// Sharpen is an unsharp mask: out = src + Amount·(src − blur_σ(src)).
// Despite the name this is a linear operator (a difference of convolutions),
// so P3 reconstruction survives PSP-side sharpening.
type Sharpen struct {
	Sigma  float64
	Amount float64
}

// Linear implements Op.
func (Sharpen) Linear() bool { return true }

func (s Sharpen) String() string { return fmt.Sprintf("sharpen(σ=%.2f,a=%.2f)", s.Sigma, s.Amount) }

// Apply implements Op.
func (s Sharpen) Apply(src *jpegx.PlanarImage) *jpegx.PlanarImage {
	if s.Amount == 0 || s.Sigma <= 0 {
		return src.Clone()
	}
	blurred := GaussianBlur{Sigma: s.Sigma}.Apply(src)
	out := src.Clone()
	// out = src + a·src − a·blur
	AddInto(out, src, s.Amount)
	AddInto(out, blurred, -s.Amount)
	return out
}
