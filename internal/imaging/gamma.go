package imaging

import (
	"fmt"
	"math"

	"p3/internal/jpegx"
)

// Gamma applies the pointwise power-law remap out = 255·(in/255)^(1/G) to
// every plane, clamping inputs to [0, 255] first (the mapping is only
// defined on legitimate sample values). Gamma is NOT linear; it is the
// paper's example (§3.3) of a one-to-one color remap that can still be
// handled: the recipient inverts it on the public part, reconstructs, and
// re-applies it.
type Gamma struct {
	G float64
}

// Linear implements Op.
func (Gamma) Linear() bool { return false }

func (g Gamma) String() string { return fmt.Sprintf("gamma(%.2f)", g.G) }

// Apply implements Op.
func (g Gamma) Apply(src *jpegx.PlanarImage) *jpegx.PlanarImage {
	if g.G == 1 || g.G <= 0 {
		return src.Clone()
	}
	dst := src.Clone()
	inv := 1 / g.G
	for _, p := range dst.Planes {
		for i, v := range p {
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			p[i] = 255 * math.Pow(v/255, inv)
		}
	}
	return dst
}

// Inverse implements Invertible.
func (g Gamma) Inverse() Op {
	if g.G == 0 {
		return Identity{}
	}
	return Gamma{G: 1 / g.G}
}
