package imaging

import (
	"fmt"
	"math"

	"p3/internal/jpegx"
)

// Filter is a separable resampling kernel.
type Filter struct {
	Name    string
	Support float64 // kernel radius in source pixels at unit scale
	Kernel  func(x float64) float64
}

// The filter set mirrors ImageMagick's common -filter choices, which the
// paper's reverse-engineering methodology (§4.1) sweeps over when matching
// an unknown PSP pipeline.
var (
	// Box is nearest-neighbour at unit scale and a box average when
	// minifying.
	Box = Filter{Name: "box", Support: 0.5, Kernel: func(x float64) float64 {
		if x < -0.5 || x >= 0.5 {
			return 0
		}
		return 1
	}}

	// Triangle is bilinear interpolation.
	Triangle = Filter{Name: "triangle", Support: 1, Kernel: func(x float64) float64 {
		x = math.Abs(x)
		if x >= 1 {
			return 0
		}
		return 1 - x
	}}

	// CatmullRom is the Catmull-Rom cubic (B=0, C=0.5), a common default for
	// photographic downsampling.
	CatmullRom = Filter{Name: "catmullrom", Support: 2, Kernel: func(x float64) float64 {
		x = math.Abs(x)
		switch {
		case x < 1:
			return 1.5*x*x*x - 2.5*x*x + 1
		case x < 2:
			return -0.5*x*x*x + 2.5*x*x - 4*x + 2
		default:
			return 0
		}
	}}

	// Lanczos3 is the 3-lobe Lanczos windowed sinc, ImageMagick's default
	// for downsampling.
	Lanczos3 = Filter{Name: "lanczos3", Support: 3, Kernel: func(x float64) float64 {
		x = math.Abs(x)
		if x >= 3 {
			return 0
		}
		if x < 1e-12 {
			return 1
		}
		px := math.Pi * x
		return 3 * math.Sin(px) * math.Sin(px/3) / (px * px)
	}}
)

// Filters lists all built-in kernels, used by the pipeline parameter search.
func Filters() []Filter { return []Filter{Box, Triangle, CatmullRom, Lanczos3} }

// FilterByName returns the named filter.
func FilterByName(name string) (Filter, error) {
	for _, f := range Filters() {
		if f.Name == name {
			return f, nil
		}
	}
	return Filter{}, fmt.Errorf("imaging: unknown filter %q", name)
}

// Resize scales an image to W×H using the given kernel. When minifying, the
// kernel is stretched by the scale factor (antialiasing), as ImageMagick and
// libswscale do. Resize is a linear operator.
type Resize struct {
	W, H   int
	Filter Filter
}

// Linear implements Op.
func (Resize) Linear() bool { return true }

func (r Resize) String() string {
	return fmt.Sprintf("resize(%dx%d,%s)", r.W, r.H, r.Filter.Name)
}

// Apply implements Op.
func (r Resize) Apply(src *jpegx.PlanarImage) *jpegx.PlanarImage {
	if r.W <= 0 || r.H <= 0 {
		panic(fmt.Sprintf("imaging: invalid resize target %dx%d", r.W, r.H))
	}
	if r.W == src.Width && r.H == src.Height {
		return src.Clone()
	}
	// Two separable passes: horizontal then vertical.
	mid := jpegx.NewPlanarImage(r.W, src.Height, len(src.Planes))
	wH := buildWeights(src.Width, r.W, r.Filter)
	for pi := range src.Planes {
		resampleRows(src.Planes[pi], src.Width, src.Height, mid.Planes[pi], r.W, wH)
	}
	dst := jpegx.NewPlanarImage(r.W, r.H, len(src.Planes))
	wV := buildWeights(src.Height, r.H, r.Filter)
	for pi := range mid.Planes {
		resampleCols(mid.Planes[pi], r.W, src.Height, dst.Planes[pi], r.H, wV)
	}
	return dst
}

// weightRange holds normalized contribution weights of source samples
// [start, start+len(w)) for one destination sample.
type weightRange struct {
	start int
	w     []float64
}

// buildWeights computes, for each destination index, the source sample
// weights for a 1-D resample from n to m samples.
func buildWeights(n, m int, f Filter) []weightRange {
	scale := float64(n) / float64(m)
	filterScale := 1.0
	if scale > 1 {
		filterScale = scale // stretch kernel when minifying
	}
	support := f.Support * filterScale
	out := make([]weightRange, m)
	for i := 0; i < m; i++ {
		center := (float64(i)+0.5)*scale - 0.5
		lo := int(math.Ceil(center - support))
		hi := int(math.Floor(center + support))
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		if hi < lo { // degenerate: clamp to the nearest sample
			lo = clampIdx(int(center+0.5), 0, n-1)
			hi = lo
		}
		ws := make([]float64, hi-lo+1)
		var sum float64
		for j := lo; j <= hi; j++ {
			w := f.Kernel((float64(j) - center) / filterScale)
			ws[j-lo] = w
			sum += w
		}
		if sum == 0 {
			ws[len(ws)/2] = 1
			sum = 1
		}
		for j := range ws {
			ws[j] /= sum
		}
		out[i] = weightRange{start: lo, w: ws}
	}
	return out
}

func resampleRows(src []float64, sw, sh int, dst []float64, dw int, weights []weightRange) {
	for y := 0; y < sh; y++ {
		srow := src[y*sw : y*sw+sw]
		drow := dst[y*dw : y*dw+dw]
		for x := 0; x < dw; x++ {
			wr := &weights[x]
			var acc float64
			for j, w := range wr.w {
				acc += w * srow[wr.start+j]
			}
			drow[x] = acc
		}
	}
}

func resampleCols(src []float64, w, sh int, dst []float64, dh int, weights []weightRange) {
	for y := 0; y < dh; y++ {
		wr := &weights[y]
		drow := dst[y*w : y*w+w]
		for x := 0; x < w; x++ {
			var acc float64
			for j, wt := range wr.w {
				acc += wt * src[(wr.start+j)*w+x]
			}
			drow[x] = acc
		}
	}
}

func clampIdx(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// FitWithin returns the dimensions of src scaled to fit inside maxW×maxH
// preserving aspect ratio, never upscaling. This is how PSPs derive their
// static variants (e.g. Facebook's 720×720 and 130×130 boxes, §2.1).
func FitWithin(srcW, srcH, maxW, maxH int) (int, int) {
	if srcW <= maxW && srcH <= maxH {
		return srcW, srcH
	}
	rw := float64(maxW) / float64(srcW)
	rh := float64(maxH) / float64(srcH)
	r := math.Min(rw, rh)
	w := int(math.Round(float64(srcW) * r))
	h := int(math.Round(float64(srcH) * r))
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return w, h
}
