package imaging

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"p3/internal/jpegx"
)

func randomImage(rng *rand.Rand, w, h, planes int) *jpegx.PlanarImage {
	img := jpegx.NewPlanarImage(w, h, planes)
	for _, p := range img.Planes {
		for i := range p {
			p[i] = rng.Float64() * 255
		}
	}
	return img
}

func maxAbsDiff(a, b *jpegx.PlanarImage) float64 {
	var m float64
	for pi := range a.Planes {
		for i := range a.Planes[pi] {
			d := math.Abs(a.Planes[pi][i] - b.Planes[pi][i])
			if d > m {
				m = d
			}
		}
	}
	return m
}

// TestOpLinearity is the property that P3's Eq. (2) reconstruction rests on:
// for every operator claiming linearity, A(αx + βy) == αA(x) + βA(y).
func TestOpLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ops := []Op{
		Identity{},
		Resize{W: 17, H: 11, Filter: Box},
		Resize{W: 17, H: 11, Filter: Triangle},
		Resize{W: 23, H: 31, Filter: CatmullRom},
		Resize{W: 9, H: 40, Filter: Lanczos3},
		Resize{W: 64, H: 64, Filter: Lanczos3}, // upscale
		Crop{X: 3, Y: 5, W: 20, H: 16},
		GaussianBlur{Sigma: 1.3},
		Sharpen{Sigma: 0.8, Amount: 0.7},
		Compose{Resize{W: 20, H: 20, Filter: CatmullRom}, Sharpen{Sigma: 0.6, Amount: 0.5}},
		Compose{Crop{X: 8, Y: 8, W: 24, H: 24}, Resize{W: 12, H: 12, Filter: Triangle}},
	}
	for _, op := range ops {
		if !op.Linear() {
			t.Errorf("%s must report Linear()", op)
			continue
		}
		x := randomImage(rng, 40, 48, 3)
		y := randomImage(rng, 40, 48, 3)
		alpha, beta := 0.7, -1.3
		comb := x.Clone()
		for pi := range comb.Planes {
			for i := range comb.Planes[pi] {
				comb.Planes[pi][i] = alpha*x.Planes[pi][i] + beta*y.Planes[pi][i]
			}
		}
		lhs := op.Apply(comb)
		ax, ay := op.Apply(x), op.Apply(y)
		rhs := ax.Clone()
		for pi := range rhs.Planes {
			for i := range rhs.Planes[pi] {
				rhs.Planes[pi][i] = alpha*ax.Planes[pi][i] + beta*ay.Planes[pi][i]
			}
		}
		if d := maxAbsDiff(lhs, rhs); d > 1e-9 {
			t.Errorf("%s: linearity violated, max diff %g", op, d)
		}
	}
	if (Gamma{G: 2.2}).Linear() {
		t.Error("gamma must not claim linearity")
	}
}

func TestResizeDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := randomImage(rng, 100, 60, 3)
	for _, f := range Filters() {
		dst := Resize{W: 37, H: 81, Filter: f}.Apply(src)
		if dst.Width != 37 || dst.Height != 81 {
			t.Errorf("%s: got %dx%d", f.Name, dst.Width, dst.Height)
		}
	}
}

// TestResizeConstantPreserved: resampling a constant image with a normalized
// kernel must reproduce the constant exactly (partition of unity).
func TestResizeConstantPreserved(t *testing.T) {
	src := jpegx.NewPlanarImage(50, 41, 1)
	for i := range src.Planes[0] {
		src.Planes[0][i] = 173
	}
	for _, f := range Filters() {
		for _, dims := range [][2]int{{25, 20}, {13, 7}, {99, 83}, {1, 1}} {
			dst := Resize{W: dims[0], H: dims[1], Filter: f}.Apply(src)
			for i, v := range dst.Planes[0] {
				if math.Abs(v-173) > 1e-9 {
					t.Fatalf("%s %v: sample %d = %v, want 173", f.Name, dims, i, v)
				}
			}
		}
	}
}

func TestResizeIdentityWhenSameSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := randomImage(rng, 30, 30, 1)
	dst := Resize{W: 30, H: 30, Filter: Lanczos3}.Apply(src)
	if d := maxAbsDiff(src, dst); d != 0 {
		t.Errorf("same-size resize changed pixels, max diff %g", d)
	}
	dst.Planes[0][0] = -1
	if src.Planes[0][0] == -1 {
		t.Error("same-size resize aliases source")
	}
}

func TestResizeDownUpsampleSmooth(t *testing.T) {
	// A smooth ramp should survive half-size→full-size round trip closely.
	src := jpegx.NewPlanarImage(64, 64, 1)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			src.Planes[0][y*64+x] = float64(x) * 4
		}
	}
	small := Resize{W: 32, H: 32, Filter: CatmullRom}.Apply(src)
	back := Resize{W: 64, H: 64, Filter: CatmullRom}.Apply(small)
	var mse float64
	for i := range src.Planes[0] {
		d := src.Planes[0][i] - back.Planes[0][i]
		mse += d * d
	}
	mse /= float64(len(src.Planes[0]))
	if mse > 4 {
		t.Errorf("round-trip MSE %.2f too high for a smooth ramp", mse)
	}
}

func TestCrop(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := randomImage(rng, 40, 30, 3)
	c := Crop{X: 5, Y: 7, W: 10, H: 12}
	dst := c.Apply(src)
	if dst.Width != 10 || dst.Height != 12 {
		t.Fatalf("got %dx%d", dst.Width, dst.Height)
	}
	for pi := range src.Planes {
		for y := 0; y < 12; y++ {
			for x := 0; x < 10; x++ {
				want := src.Planes[pi][(y+7)*40+x+5]
				got := dst.Planes[pi][y*10+x]
				if got != want {
					t.Fatalf("plane %d (%d,%d): got %v want %v", pi, x, y, got, want)
				}
			}
		}
	}
	// Out-of-bounds crops clamp.
	edge := Crop{X: 35, Y: 25, W: 100, H: 100}.Apply(src)
	if edge.Width != 5 || edge.Height != 5 {
		t.Errorf("clamped crop %dx%d, want 5x5", edge.Width, edge.Height)
	}
}

func TestCropAlignToBlocks(t *testing.T) {
	c := Crop{X: 13, Y: 9, W: 10, H: 10}.AlignToBlocks()
	if c.X != 8 || c.Y != 8 || c.W != 16 || c.H != 16 {
		t.Errorf("aligned = %+v", c)
	}
	already := Crop{X: 8, Y: 16, W: 24, H: 8}.AlignToBlocks()
	if already != (Crop{X: 8, Y: 16, W: 24, H: 8}) {
		t.Errorf("aligned crop changed: %+v", already)
	}
}

func TestGaussianKernelNormalized(t *testing.T) {
	f := func(sigmaRaw uint8) bool {
		sigma := 0.1 + float64(sigmaRaw)/32
		k := GaussianBlur{Sigma: sigma}.Kernel1D()
		var sum float64
		for _, v := range k {
			sum += v
		}
		return math.Abs(sum-1) < 1e-12 && len(k)%2 == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGaussianBlurSmooths(t *testing.T) {
	// An impulse must spread and keep total mass.
	src := jpegx.NewPlanarImage(21, 21, 1)
	src.Planes[0][10*21+10] = 1000
	dst := GaussianBlur{Sigma: 2}.Apply(src)
	var sum float64
	for _, v := range dst.Planes[0] {
		sum += v
	}
	if math.Abs(sum-1000) > 1e-6 {
		t.Errorf("mass not preserved: %v", sum)
	}
	if dst.Planes[0][10*21+10] >= 1000 {
		t.Error("impulse did not spread")
	}
	if dst.Planes[0][10*21+10] <= dst.Planes[0][0] {
		t.Error("center should remain the maximum")
	}
}

func TestSharpenIncreasesContrast(t *testing.T) {
	// A step edge should overshoot after unsharp masking.
	src := jpegx.NewPlanarImage(32, 8, 1)
	for y := 0; y < 8; y++ {
		for x := 16; x < 32; x++ {
			src.Planes[0][y*32+x] = 200
		}
	}
	dst := Sharpen{Sigma: 1, Amount: 1}.Apply(src)
	overshoot := false
	for i, v := range dst.Planes[0] {
		if v > 200+1 || v < -1 {
			overshoot = true
			_ = i
		}
	}
	if !overshoot {
		t.Error("unsharp mask produced no overshoot on a step edge")
	}
}

func TestGammaInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := randomImage(rng, 16, 16, 3)
	g := Gamma{G: 2.2}
	inv, ok := any(g).(Invertible)
	if !ok {
		t.Fatal("Gamma must be Invertible")
	}
	back := inv.Inverse().Apply(g.Apply(src))
	if d := maxAbsDiff(src, back); d > 1e-9 {
		t.Errorf("gamma inverse error %g", d)
	}
}

func TestFitWithin(t *testing.T) {
	cases := []struct{ sw, sh, mw, mh, ww, wh int }{
		{1440, 1080, 720, 720, 720, 540},
		{1080, 1440, 720, 720, 540, 720},
		{500, 500, 720, 720, 500, 500}, // never upscale
		{4000, 4000, 130, 130, 130, 130},
		{4000, 1000, 130, 130, 130, 33},
		{3, 10000, 75, 75, 1, 75},
	}
	for _, c := range cases {
		w, h := FitWithin(c.sw, c.sh, c.mw, c.mh)
		if w != c.ww || h != c.wh {
			t.Errorf("FitWithin(%d,%d,%d,%d) = %d,%d want %d,%d", c.sw, c.sh, c.mw, c.mh, w, h, c.ww, c.wh)
		}
	}
}

func TestFilterByName(t *testing.T) {
	for _, f := range Filters() {
		got, err := FilterByName(f.Name)
		if err != nil || got.Name != f.Name {
			t.Errorf("FilterByName(%q): %v", f.Name, err)
		}
	}
	if _, err := FilterByName("nope"); err == nil {
		t.Error("expected error for unknown filter")
	}
}

func TestAddIntoSubClamp(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomImage(rng, 8, 8, 1)
	b := randomImage(rng, 8, 8, 1)
	d := Sub(a, b)
	back := b.Clone()
	AddInto(back, d, 1)
	if diff := maxAbsDiff(a, back); diff > 1e-12 {
		t.Errorf("a-b+b error %g", diff)
	}
	over := jpegx.NewPlanarImage(2, 1, 1)
	over.Planes[0][0] = -5
	over.Planes[0][1] = 300
	Clamp(over)
	if over.Planes[0][0] != 0 || over.Planes[0][1] != 255 {
		t.Errorf("clamp gave %v", over.Planes[0])
	}
	defer func() {
		if recover() == nil {
			t.Error("AddInto must panic on shape mismatch")
		}
	}()
	AddInto(a, randomImage(rng, 4, 4, 1), 1)
}

func TestComposeStringAndIdentity(t *testing.T) {
	c := Compose{Resize{W: 10, H: 10, Filter: Box}, Crop{X: 0, Y: 0, W: 5, H: 5}}
	if c.String() == "" || !c.Linear() {
		t.Error("compose metadata wrong")
	}
	withGamma := Compose{Resize{W: 10, H: 10, Filter: Box}, Gamma{G: 2}}
	if withGamma.Linear() {
		t.Error("compose containing gamma must be non-linear")
	}
	rng := rand.New(rand.NewSource(7))
	src := randomImage(rng, 12, 12, 1)
	id := Identity{}.Apply(src)
	if d := maxAbsDiff(src, id); d != 0 {
		t.Error("identity changed pixels")
	}
}
