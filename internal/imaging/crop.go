package imaging

import (
	"fmt"

	"p3/internal/jpegx"
)

// Crop extracts the rectangle [X, X+W) × [Y, Y+H). Cropping is a linear
// operator; the paper notes cropping at 8×8 boundaries is exactly linear and
// arbitrary crops are approximated by the nearest block boundary — this
// implementation is exact at pixel granularity in the pixel domain, which is
// where P3 reconstruction applies it.
type Crop struct {
	X, Y, W, H int
}

// Linear implements Op.
func (Crop) Linear() bool { return true }

func (c Crop) String() string { return fmt.Sprintf("crop(%d,%d,%dx%d)", c.X, c.Y, c.W, c.H) }

// Apply implements Op. The crop rectangle is clamped to the image bounds.
func (c Crop) Apply(src *jpegx.PlanarImage) *jpegx.PlanarImage {
	x0, y0 := clampIdx(c.X, 0, src.Width), clampIdx(c.Y, 0, src.Height)
	x1, y1 := clampIdx(c.X+c.W, x0, src.Width), clampIdx(c.Y+c.H, y0, src.Height)
	w, h := x1-x0, y1-y0
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: empty crop %v of %dx%d image", c, src.Width, src.Height))
	}
	dst := jpegx.NewPlanarImage(w, h, len(src.Planes))
	for pi := range src.Planes {
		for y := 0; y < h; y++ {
			copy(dst.Planes[pi][y*w:y*w+w], src.Planes[pi][(y0+y)*src.Width+x0:(y0+y)*src.Width+x0+w])
		}
	}
	return dst
}

// AlignToBlocks returns a copy of the crop snapped outward to 8×8 block
// boundaries, the granularity at which a PSP could crop losslessly in the
// coefficient domain.
func (c Crop) AlignToBlocks() Crop {
	x0 := c.X &^ 7
	y0 := c.Y &^ 7
	x1 := (c.X + c.W + 7) &^ 7
	y1 := (c.Y + c.H + 7) &^ 7
	return Crop{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
}
