package jpegx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFastFDCTMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var src, ref, fast [64]float64
		for i := range src {
			src[i] = rng.Float64()*255 - 128
		}
		FDCT8x8(&src, &ref)
		FDCT8x8Fast(&src, &fast)
		for i := range ref {
			if math.Abs(ref[i]-fast[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFastIDCTMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var src, ref, fast [64]float64
		for i := range src {
			src[i] = rng.Float64()*2000 - 1000
		}
		IDCT8x8(&src, &ref)
		IDCT8x8Fast(&src, &fast)
		// The AAN constants carry 9 decimal digits, bounding agreement with
		// the exact-cosine reference near 1e-6 relative; inputs here reach
		// ±1000, so compare at 1e-4 absolute.
		for i := range ref {
			if math.Abs(ref[i]-fast[i]) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFastDCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var src, mid, back [64]float64
	for i := range src {
		src[i] = rng.Float64()*255 - 128
	}
	FDCT8x8Fast(&src, &mid)
	IDCT8x8Fast(&mid, &back)
	for i := range src {
		if math.Abs(src[i]-back[i]) > 1e-5 {
			t.Fatalf("sample %d: %v vs %v", i, src[i], back[i])
		}
	}
}

func BenchmarkFDCTReference(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var src, dst [64]float64
	for i := range src {
		src[i] = rng.Float64()*255 - 128
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FDCT8x8(&src, &dst)
	}
}

func BenchmarkFDCTFast(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var src, dst [64]float64
	for i := range src {
		src[i] = rng.Float64()*255 - 128
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FDCT8x8Fast(&src, &dst)
	}
}

func BenchmarkIDCTFast(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var src, dst [64]float64
	for i := range src {
		src[i] = rng.Float64()*500 - 250
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IDCT8x8Fast(&src, &dst)
	}
}
