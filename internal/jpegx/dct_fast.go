package jpegx

// The Arai–Agui–Nakajima (AAN) fast DCT, the algorithm behind libjpeg's
// jfdctflt/jidctflt: 8-point butterflies with 5 multiplications per 1-D
// pass, with the remaining per-coefficient scaling applied afterwards.
// FDCT8x8Fast and IDCT8x8Fast are drop-in replacements for the matrix
// transforms; tests pin them to the reference within float tolerance and
// BenchmarkDCT_* compares their cost.

// aanScale[u] = cos(u·π/16) scaling of the AAN flowgraph.
var aanScale = [8]float64{
	1.0, 1.387039845, 1.306562965, 1.175875602,
	1.0, 0.785694958, 0.541196100, 0.275899379,
}

// fdctPostScale[u*8+v] converts raw AAN output to true DCT coefficients.
var fdctPostScale [64]float64

// idctPreScale[u*8+v] converts true DCT coefficients to AAN IDCT input.
var idctPreScale [64]float64

func init() {
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			fdctPostScale[u*8+v] = 1 / (aanScale[u] * aanScale[v] * 8)
			idctPreScale[u*8+v] = aanScale[u] * aanScale[v] / 8
		}
	}
}

// FDCT8x8Fast computes the same transform as FDCT8x8 using the AAN
// flowgraph.
func FDCT8x8Fast(src *[64]float64, dst *[64]float64) {
	var ws [64]float64
	// Row passes.
	for i := 0; i < 64; i += 8 {
		d0, d1, d2, d3 := src[i], src[i+1], src[i+2], src[i+3]
		d4, d5, d6, d7 := src[i+4], src[i+5], src[i+6], src[i+7]

		tmp0, tmp7 := d0+d7, d0-d7
		tmp1, tmp6 := d1+d6, d1-d6
		tmp2, tmp5 := d2+d5, d2-d5
		tmp3, tmp4 := d3+d4, d3-d4

		tmp10, tmp13 := tmp0+tmp3, tmp0-tmp3
		tmp11, tmp12 := tmp1+tmp2, tmp1-tmp2

		ws[i] = tmp10 + tmp11
		ws[i+4] = tmp10 - tmp11
		z1 := (tmp12 + tmp13) * 0.707106781
		ws[i+2] = tmp13 + z1
		ws[i+6] = tmp13 - z1

		tmp10 = tmp4 + tmp5
		tmp11 = tmp5 + tmp6
		tmp12 = tmp6 + tmp7
		z5 := (tmp10 - tmp12) * 0.382683433
		z2 := 0.541196100*tmp10 + z5
		z4 := 1.306562965*tmp12 + z5
		z3 := tmp11 * 0.707106781
		z11 := tmp7 + z3
		z13 := tmp7 - z3
		ws[i+5] = z13 + z2
		ws[i+3] = z13 - z2
		ws[i+1] = z11 + z4
		ws[i+7] = z11 - z4
	}
	// Column passes.
	for i := 0; i < 8; i++ {
		d0, d1, d2, d3 := ws[i], ws[i+8], ws[i+16], ws[i+24]
		d4, d5, d6, d7 := ws[i+32], ws[i+40], ws[i+48], ws[i+56]

		tmp0, tmp7 := d0+d7, d0-d7
		tmp1, tmp6 := d1+d6, d1-d6
		tmp2, tmp5 := d2+d5, d2-d5
		tmp3, tmp4 := d3+d4, d3-d4

		tmp10, tmp13 := tmp0+tmp3, tmp0-tmp3
		tmp11, tmp12 := tmp1+tmp2, tmp1-tmp2

		dst[i] = tmp10 + tmp11
		dst[i+32] = tmp10 - tmp11
		z1 := (tmp12 + tmp13) * 0.707106781
		dst[i+16] = tmp13 + z1
		dst[i+48] = tmp13 - z1

		tmp10 = tmp4 + tmp5
		tmp11 = tmp5 + tmp6
		tmp12 = tmp6 + tmp7
		z5 := (tmp10 - tmp12) * 0.382683433
		z2 := 0.541196100*tmp10 + z5
		z4 := 1.306562965*tmp12 + z5
		z3 := tmp11 * 0.707106781
		z11 := tmp7 + z3
		z13 := tmp7 - z3
		dst[i+40] = z13 + z2
		dst[i+24] = z13 - z2
		dst[i+8] = z11 + z4
		dst[i+56] = z11 - z4
	}
	for i := 0; i < 64; i++ {
		dst[i] *= fdctPostScale[i]
	}
}

// IDCT8x8Fast computes the same transform as IDCT8x8 using the AAN
// flowgraph.
func IDCT8x8Fast(src *[64]float64, dst *[64]float64) {
	var in, ws [64]float64
	for i := 0; i < 64; i++ {
		in[i] = src[i] * idctPreScale[i]
	}
	// Column passes.
	for i := 0; i < 8; i++ {
		tmp0, tmp1, tmp2, tmp3 := in[i], in[i+16], in[i+32], in[i+48]

		tmp10, tmp11 := tmp0+tmp2, tmp0-tmp2
		tmp13 := tmp1 + tmp3
		tmp12 := (tmp1-tmp3)*1.414213562 - tmp13

		tmp0 = tmp10 + tmp13
		tmp3 = tmp10 - tmp13
		tmp1 = tmp11 + tmp12
		tmp2 = tmp11 - tmp12

		tmp4, tmp5, tmp6, tmp7 := in[i+8], in[i+24], in[i+40], in[i+56]

		z13 := tmp6 + tmp5
		z10 := tmp6 - tmp5
		z11 := tmp4 + tmp7
		z12 := tmp4 - tmp7

		tmp7 = z11 + z13
		tmp11 = (z11 - z13) * 1.414213562
		z5 := (z10 + z12) * 1.847759065
		tmp10 = 1.082392200*z12 - z5
		tmp12 = -2.613125930*z10 + z5

		tmp6 = tmp12 - tmp7
		tmp5 = tmp11 - tmp6
		tmp4 = tmp10 + tmp5

		ws[i] = tmp0 + tmp7
		ws[i+56] = tmp0 - tmp7
		ws[i+8] = tmp1 + tmp6
		ws[i+48] = tmp1 - tmp6
		ws[i+16] = tmp2 + tmp5
		ws[i+40] = tmp2 - tmp5
		ws[i+32] = tmp3 + tmp4
		ws[i+24] = tmp3 - tmp4
	}
	// Row passes.
	for i := 0; i < 64; i += 8 {
		tmp0, tmp1, tmp2, tmp3 := ws[i], ws[i+2], ws[i+4], ws[i+6]

		tmp10, tmp11 := tmp0+tmp2, tmp0-tmp2
		tmp13 := tmp1 + tmp3
		tmp12 := (tmp1-tmp3)*1.414213562 - tmp13

		tmp0 = tmp10 + tmp13
		tmp3 = tmp10 - tmp13
		tmp1 = tmp11 + tmp12
		tmp2 = tmp11 - tmp12

		tmp4, tmp5, tmp6, tmp7 := ws[i+1], ws[i+3], ws[i+5], ws[i+7]

		z13 := tmp6 + tmp5
		z10 := tmp6 - tmp5
		z11 := tmp4 + tmp7
		z12 := tmp4 - tmp7

		tmp7 = z11 + z13
		tmp11 = (z11 - z13) * 1.414213562
		z5 := (z10 + z12) * 1.847759065
		tmp10 = 1.082392200*z12 - z5
		tmp12 = -2.613125930*z10 + z5

		tmp6 = tmp12 - tmp7
		tmp5 = tmp11 - tmp6
		tmp4 = tmp10 + tmp5

		dst[i] = tmp0 + tmp7
		dst[i+7] = tmp0 - tmp7
		dst[i+1] = tmp1 + tmp6
		dst[i+6] = tmp1 - tmp6
		dst[i+2] = tmp2 + tmp5
		dst[i+5] = tmp2 - tmp5
		dst[i+4] = tmp3 + tmp4
		dst[i+3] = tmp3 - tmp4
	}
}
