package jpegx

import "math"

// The forward and inverse 8×8 type-II DCT used by JPEG, implemented as
// separable matrix transforms over float64. Correctness is favored over raw
// speed: the transform is exercised once per block per encode/decode, and a
// matrix formulation keeps the orthogonality invariant (idct(fdct(x)) ≈ x)
// easy to property-test. BenchmarkAblation_ReconDomain measures its cost.

// dctMat[u][x] = C(u)/2 * cos((2x+1)uπ/16), the 1-D DCT-II basis.
var dctMat [8][8]float64

func init() {
	for u := 0; u < 8; u++ {
		cu := 1.0
		if u == 0 {
			cu = 1 / math.Sqrt2
		}
		for x := 0; x < 8; x++ {
			dctMat[u][x] = cu / 2 * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16)
		}
	}
}

// FDCT8x8 computes the forward 8×8 DCT of the level-shifted samples in src
// (row-major, values typically in [-128, 127]) into dst (natural order).
func FDCT8x8(src *[64]float64, dst *[64]float64) {
	var tmp [64]float64
	// Rows: tmp[y][u] = Σ_x src[y][x] · dctMat[u][x]
	for y := 0; y < 8; y++ {
		row := src[y*8 : y*8+8]
		for u := 0; u < 8; u++ {
			var s float64
			m := &dctMat[u]
			for x := 0; x < 8; x++ {
				s += row[x] * m[x]
			}
			tmp[y*8+u] = s
		}
	}
	// Columns: dst[v][u] = Σ_y tmp[y][u] · dctMat[v][y]
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			var s float64
			m := &dctMat[v]
			for y := 0; y < 8; y++ {
				s += tmp[y*8+u] * m[y]
			}
			dst[v*8+u] = s
		}
	}
}

// IDCT8x8 computes the inverse 8×8 DCT of the coefficients in src (natural
// order) into dst (row-major level-shifted samples).
func IDCT8x8(src *[64]float64, dst *[64]float64) {
	var tmp [64]float64
	// Columns first: tmp[y][u] = Σ_v src[v][u] · dctMat[v][y]
	for u := 0; u < 8; u++ {
		for y := 0; y < 8; y++ {
			var s float64
			for v := 0; v < 8; v++ {
				s += src[v*8+u] * dctMat[v][y]
			}
			tmp[y*8+u] = s
		}
	}
	// Rows: dst[y][x] = Σ_u tmp[y][u] · dctMat[u][x]
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			var s float64
			for u := 0; u < 8; u++ {
				s += tmp[y*8+u] * dctMat[u][x]
			}
			dst[y*8+x] = s
		}
	}
}

// quantizeBlock converts DCT coefficients to quantized integers using table
// q, with round-half-away-from-zero as in libjpeg.
func quantizeBlock(coeffs *[64]float64, q *QuantTable, out *Block) {
	for i := 0; i < 64; i++ {
		v := coeffs[i] / float64(q[i])
		if v >= 0 {
			out[i] = int32(v + 0.5)
		} else {
			out[i] = -int32(-v + 0.5)
		}
	}
}

// dequantizeBlock expands quantized integers back to DCT-domain floats.
func dequantizeBlock(in *Block, q *QuantTable, out *[64]float64) {
	for i := 0; i < 64; i++ {
		out[i] = float64(in[i]) * float64(q[i])
	}
}
