package jpegx

import (
	"fmt"
	"io"
	"math"
)

// PixelEncodeOptions configures lossy encoding of pixels into a JPEG.
type PixelEncodeOptions struct {
	// Quality is the IJG-style quality in [1, 100]. 0 means the default 92,
	// matching the paper's observation that photos uploaded to PSPs "tend to
	// be uploaded with high quality settings" (§3.2).
	Quality int

	// Subsampling chooses the chroma layout. The zero value is 4:4:4;
	// cameras and PSPs typically use 4:2:0.
	Subsampling Subsampling

	EncodeOptions
}

// DefaultQuality is the quality used when PixelEncodeOptions.Quality is 0.
const DefaultQuality = 92

// EncodePixels compresses a planar image to a JPEG stream.
func EncodePixels(w io.Writer, img *PlanarImage, opts *PixelEncodeOptions) error {
	if opts == nil {
		opts = &PixelEncodeOptions{}
	}
	im, err := img.ToCoeffs(opts.Quality, opts.Subsampling)
	if err != nil {
		return err
	}
	return EncodeCoeffs(w, im, &opts.EncodeOptions)
}

// ToCoeffs runs the lossy half of the JPEG encode pipeline — chroma
// downsampling, 8×8 forward DCT and quantization — producing the
// coefficient-domain image that P3's splitter consumes.
func (p *PlanarImage) ToCoeffs(quality int, sub Subsampling) (*CoeffImage, error) {
	if quality == 0 {
		quality = DefaultQuality
	}
	if quality < 1 || quality > 100 {
		return nil, fmt.Errorf("jpegx: quality %d out of range [1,100]", quality)
	}
	if p.Width <= 0 || p.Height <= 0 {
		return nil, fmt.Errorf("jpegx: invalid image dimensions %dx%d", p.Width, p.Height)
	}
	luma, chroma := StandardQuantTables(quality)
	im := &CoeffImage{Width: p.Width, Height: p.Height}
	im.Quant[0] = &luma

	if p.Gray() {
		im.Components = []Component{{ID: 1, H: 1, V: 1, TqIndex: 0}}
	} else {
		im.Quant[1] = &chroma
		lh, lv := sub.factors()
		im.Components = []Component{
			{ID: 1, H: lh, V: lv, TqIndex: 0},
			{ID: 2, H: 1, V: 1, TqIndex: 1},
			{ID: 3, H: 1, V: 1, TqIndex: 1},
		}
	}
	mcusX, mcusY := im.mcuDims()
	hMax, vMax := im.MaxSampling()
	for ci := range im.Components {
		c := &im.Components[ci]
		c.BlocksX = mcusX * c.H
		c.BlocksY = mcusY * c.V
		c.Blocks = make([]Block, c.BlocksX*c.BlocksY)

		// Component-resolution plane: downsample chroma if needed, then pad
		// (edge-replicate) to the full block extent.
		cw := (p.Width*c.H + hMax - 1) / hMax
		ch := (p.Height*c.V + vMax - 1) / vMax
		plane := p.Planes[ci]
		if cw != p.Width || ch != p.Height {
			plane = downsamplePlane(p.Planes[ci], p.Width, p.Height, cw, ch)
		}
		fdctPlane(plane, cw, ch, c, im.Quant[c.TqIndex])
	}
	return im, nil
}

// downsamplePlane box-averages a w×h plane to cw×ch (factors 1 or 2).
func downsamplePlane(src []float64, w, h, cw, ch int) []float64 {
	dst := make([]float64, cw*ch)
	fx, fy := (w+cw-1)/cw, (h+ch-1)/ch
	for y := 0; y < ch; y++ {
		for x := 0; x < cw; x++ {
			var sum float64
			var n int
			for dy := 0; dy < fy; dy++ {
				sy := y*fy + dy
				if sy >= h {
					sy = h - 1
				}
				for dx := 0; dx < fx; dx++ {
					sx := x*fx + dx
					if sx >= w {
						sx = w - 1
					}
					sum += src[sy*w+sx]
					n++
				}
			}
			dst[y*cw+x] = sum / float64(n)
		}
	}
	return dst
}

// fdctPlane level-shifts, pads, transforms and quantizes a component plane
// into its coefficient blocks.
func fdctPlane(plane []float64, cw, ch int, c *Component, q *QuantTable) {
	var samples, coeffs [64]int32
	for by := 0; by < c.BlocksY; by++ {
		for bx := 0; bx < c.BlocksX; bx++ {
			for y := 0; y < 8; y++ {
				sy := by*8 + y
				if sy >= ch {
					sy = ch - 1
				}
				for x := 0; x < 8; x++ {
					sx := bx*8 + x
					if sx >= cw {
						sx = cw - 1
					}
					samples[y*8+x] = int32(math.Round(plane[sy*cw+sx] - 128))
				}
			}
			FDCT8x8Int(&samples, &coeffs)
			quantizeBlockInt(&coeffs, q, c.Block(bx, by))
		}
	}
}
