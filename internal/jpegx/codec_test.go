package jpegx

import (
	"bytes"
	"image"
	"image/jpeg"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// randomCoeffImage builds a structurally valid coefficient image with a
// natural-image-like sparse coefficient distribution.
func randomCoeffImage(rng *rand.Rand, w, h int, gray bool, sub Subsampling) *CoeffImage {
	luma, chroma := StandardQuantTables(90)
	im := &CoeffImage{Width: w, Height: h}
	im.Quant[0] = &luma
	if gray {
		im.Components = []Component{{ID: 1, H: 1, V: 1, TqIndex: 0}}
	} else {
		im.Quant[1] = &chroma
		lh, lv := sub.factors()
		im.Components = []Component{
			{ID: 1, H: lh, V: lv, TqIndex: 0},
			{ID: 2, H: 1, V: 1, TqIndex: 1},
			{ID: 3, H: 1, V: 1, TqIndex: 1},
		}
	}
	mcusX, mcusY := im.mcuDims()
	for ci := range im.Components {
		c := &im.Components[ci]
		c.BlocksX = mcusX * c.H
		c.BlocksY = mcusY * c.V
		c.Blocks = make([]Block, c.BlocksX*c.BlocksY)
		for bi := range c.Blocks {
			b := &c.Blocks[bi]
			b[0] = int32(rng.Intn(2033) - 1016) // DC
			// Sparse ACs, energy decaying with frequency.
			for zz := 1; zz < 64; zz++ {
				if rng.Float64() < 0.2 {
					limit := 900 / zz
					if limit < 2 {
						limit = 2
					}
					b[zigzag[zz]] = int32(rng.Intn(2*limit+1) - limit)
				}
			}
		}
	}
	return im
}

// zeroPaddingAC clears AC coefficients in blocks outside the non-interleaved
// scan coverage (the MCU padding area).
func zeroPaddingAC(im *CoeffImage) {
	hMax, vMax := im.MaxSampling()
	for ci := range im.Components {
		c := &im.Components[ci]
		cw := (im.Width*c.H + hMax - 1) / hMax
		ch := (im.Height*c.V + vMax - 1) / vMax
		bw, bh := (cw+7)/8, (ch+7)/8
		for by := 0; by < c.BlocksY; by++ {
			for bx := 0; bx < c.BlocksX; bx++ {
				if bx < bw && by < bh {
					continue
				}
				b := c.Block(bx, by)
				dc := b[0]
				*b = Block{}
				b[0] = dc
			}
		}
	}
}

func coeffImagesEqual(a, b *CoeffImage) bool {
	if a.Width != b.Width || a.Height != b.Height || len(a.Components) != len(b.Components) {
		return false
	}
	for ci := range a.Components {
		ca, cb := &a.Components[ci], &b.Components[ci]
		if ca.H != cb.H || ca.V != cb.V || ca.BlocksX != cb.BlocksX || ca.BlocksY != cb.BlocksY {
			return false
		}
		for bi := range ca.Blocks {
			if ca.Blocks[bi] != cb.Blocks[bi] {
				return false
			}
		}
	}
	for i := range a.Quant {
		if (a.Quant[i] == nil) != (b.Quant[i] == nil) {
			return false
		}
		if a.Quant[i] != nil && *a.Quant[i] != *b.Quant[i] {
			return false
		}
	}
	return true
}

func TestCoeffRoundTripBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct {
		name string
		w, h int
		gray bool
		sub  Subsampling
		opts EncodeOptions
	}{
		{"gray_64x64", 64, 64, true, Sub444, EncodeOptions{}},
		{"color_444", 64, 48, false, Sub444, EncodeOptions{}},
		{"color_420", 80, 56, false, Sub420, EncodeOptions{}},
		{"color_422", 72, 40, false, Sub422, EncodeOptions{}},
		{"color_440", 40, 72, false, Sub440, EncodeOptions{}},
		{"odd_dims_420", 37, 23, false, Sub420, EncodeOptions{}},
		{"tiny_1x1", 1, 1, false, Sub420, EncodeOptions{}},
		{"optimized", 64, 64, false, Sub420, EncodeOptions{OptimizeHuffman: true}},
		{"restart", 96, 96, false, Sub420, EncodeOptions{RestartInterval: 3}},
		{"restart_1", 48, 48, false, Sub444, EncodeOptions{RestartInterval: 1}},
		{"optimized_restart", 64, 64, false, Sub420, EncodeOptions{OptimizeHuffman: true, RestartInterval: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			im := randomCoeffImage(rng, tc.w, tc.h, tc.gray, tc.sub)
			var buf bytes.Buffer
			if err := EncodeCoeffs(&buf, im, &tc.opts); err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := Decode(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !coeffImagesEqual(im, got) {
				t.Fatal("coefficients changed across encode/decode")
			}
		})
	}
}

func TestCoeffRoundTripProgressive(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, tc := range []struct {
		name string
		w, h int
		gray bool
		sub  Subsampling
	}{
		{"color_420", 80, 64, false, Sub420},
		{"color_444", 48, 48, false, Sub444},
		{"gray", 64, 40, true, Sub444},
		{"odd", 33, 49, false, Sub420},
	} {
		t.Run(tc.name, func(t *testing.T) {
			im := randomCoeffImage(rng, tc.w, tc.h, tc.gray, tc.sub)
			// Progressive AC scans are non-interleaved and cover only the
			// ceil(component-size/8) block grid, so AC coefficients in MCU
			// padding blocks are not representable (T.81 A.2.2). Real images
			// hold edge-replicated data there; for random data we zero them
			// to state the achievable expectation.
			zeroPaddingAC(im)
			var buf bytes.Buffer
			if err := EncodeCoeffs(&buf, im, &EncodeOptions{Progressive: true}); err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := Decode(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !got.Progressive {
				t.Error("decoded image not flagged progressive")
			}
			if !coeffImagesEqual(im, got) {
				t.Fatal("coefficients changed across progressive encode/decode")
			}
		})
	}
}

// TestProgressiveAgainstStdlib cross-validates our progressive writer against
// the Go standard library's progressive decoder.
func TestProgressiveAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	im := randomCoeffImage(rng, 64, 64, false, Sub420)
	var progBuf, baseBuf bytes.Buffer
	if err := EncodeCoeffs(&progBuf, im, &EncodeOptions{Progressive: true}); err != nil {
		t.Fatal(err)
	}
	if err := EncodeCoeffs(&baseBuf, im, nil); err != nil {
		t.Fatal(err)
	}
	pimg, err := jpeg.Decode(bytes.NewReader(progBuf.Bytes()))
	if err != nil {
		t.Fatalf("stdlib cannot decode our progressive stream: %v", err)
	}
	bimg, err := jpeg.Decode(bytes.NewReader(baseBuf.Bytes()))
	if err != nil {
		t.Fatalf("stdlib cannot decode our baseline stream: %v", err)
	}
	// Identical coefficients ⇒ identical pixels regardless of scan script.
	if !imagesAlmostEqual(pimg, bimg, 0) {
		t.Error("stdlib decodes progressive and baseline encodings differently")
	}
}

func imagesAlmostEqual(a, b image.Image, tol int) bool {
	if a.Bounds() != b.Bounds() {
		return false
	}
	for y := a.Bounds().Min.Y; y < a.Bounds().Max.Y; y++ {
		for x := a.Bounds().Min.X; x < a.Bounds().Max.X; x++ {
			ar, ag, ab, _ := a.At(x, y).RGBA()
			br, bg, bb, _ := b.At(x, y).RGBA()
			if absInt(int(ar>>8)-int(br>>8)) > tol ||
				absInt(int(ag>>8)-int(bg>>8)) > tol ||
				absInt(int(ab>>8)-int(bb>>8)) > tol {
				return false
			}
		}
	}
	return true
}

// gradientPlanar builds a smooth color test image.
func gradientPlanar(w, h int) *PlanarImage {
	p := NewPlanarImage(w, h, 3)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			r := uint8(x * 255 / max(1, w-1))
			g := uint8(y * 255 / max(1, h-1))
			b := uint8((x + y) * 255 / max(1, w+h-2))
			yy, cb, cr := RGBToYCbCr(r, g, b)
			p.Planes[0][i] = float64(yy)
			p.Planes[1][i] = float64(cb)
			p.Planes[2][i] = float64(cr)
		}
	}
	return p
}

func planePSNR(a, b *PlanarImage) float64 {
	var mse float64
	n := 0
	for pi := range a.Planes {
		for i := range a.Planes[pi] {
			d := a.Planes[pi][i] - b.Planes[pi][i]
			mse += d * d
			n++
		}
	}
	mse /= float64(n)
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

func TestPixelEncodeDecodePSNR(t *testing.T) {
	src := gradientPlanar(96, 80)
	for _, sub := range []Subsampling{Sub444, Sub420, Sub422} {
		var buf bytes.Buffer
		if err := EncodePixels(&buf, src, &PixelEncodeOptions{Quality: 95, Subsampling: sub}); err != nil {
			t.Fatalf("%v: %v", sub, err)
		}
		got, err := DecodeToPlanar(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%v: %v", sub, err)
		}
		if psnr := planePSNR(src, got); psnr < 35 {
			t.Errorf("%v: PSNR %.1f dB, want >= 35", sub, psnr)
		}
	}
}

// TestDecodeStdlibEncoded feeds a stdlib-encoded JPEG (4:2:0) to our decoder.
func TestDecodeStdlibEncoded(t *testing.T) {
	src := gradientPlanar(90, 70)
	rgba := src.ToImage()
	var buf bytes.Buffer
	if err := jpeg.Encode(&buf, rgba, &jpeg.Options{Quality: 95}); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeToPlanar(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decoding stdlib output: %v", err)
	}
	if got.Width != 90 || got.Height != 70 {
		t.Fatalf("dims %dx%d", got.Width, got.Height)
	}
	if psnr := planePSNR(src, got); psnr < 30 {
		t.Errorf("PSNR vs original %.1f dB, want >= 30", psnr)
	}
}

// TestStdlibDecodesOurs feeds our encoder's output to the stdlib decoder and
// compares pixel-level agreement with our own decoder.
func TestStdlibDecodesOurs(t *testing.T) {
	src := gradientPlanar(64, 64)
	for _, tc := range []struct {
		name string
		opts PixelEncodeOptions
	}{
		{"q90_420", PixelEncodeOptions{Quality: 90, Subsampling: Sub420}},
		{"q75_444", PixelEncodeOptions{Quality: 75, Subsampling: Sub444}},
		{"optimized", PixelEncodeOptions{Quality: 90, Subsampling: Sub420, EncodeOptions: EncodeOptions{OptimizeHuffman: true}}},
		{"restart", PixelEncodeOptions{Quality: 90, Subsampling: Sub420, EncodeOptions: EncodeOptions{RestartInterval: 4}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := EncodePixels(&buf, src, &tc.opts); err != nil {
				t.Fatal(err)
			}
			stdImg, err := jpeg.Decode(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("stdlib decode: %v", err)
			}
			ours, err := DecodeToPlanar(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			// Different IDCT and upsampling implementations may differ by a
			// few levels; require close pixel agreement on luma.
			std := FromImage(stdImg)
			if psnr := planePSNR(std, ours); psnr < 30 {
				t.Errorf("stdlib-vs-ours PSNR %.1f dB, want >= 30", psnr)
			}
		})
	}
}

func TestMarkerPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	im := randomCoeffImage(rng, 32, 32, false, Sub420)
	im.AddMarker(0xE5, []byte("p3-secret-locator"))
	im.AddMarker(mCOM, []byte("a comment"))
	var buf bytes.Buffer
	if err := EncodeCoeffs(&buf, im, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Markers) != 2 {
		t.Fatalf("%d markers survived, want 2", len(got.Markers))
	}
	if got.Markers[0].Marker != 0xE5 || string(got.Markers[0].Data) != "p3-secret-locator" {
		t.Error("APP5 marker corrupted")
	}
	if n := got.StripMarkers(); n != 2 {
		t.Errorf("StripMarkers removed %d, want 2", n)
	}
	var buf2 bytes.Buffer
	if err := EncodeCoeffs(&buf2, got, nil); err != nil {
		t.Fatal(err)
	}
	got2, err := Decode(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Only the default JFIF APP0 remains.
	if len(got2.Markers) != 1 || got2.Markers[0].Marker != mAPP0 {
		t.Errorf("markers after strip = %v", got2.Markers)
	}
}

func TestDecodeConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	im := randomCoeffImage(rng, 123, 77, false, Sub420)
	var buf bytes.Buffer
	if err := EncodeCoeffs(&buf, im, &EncodeOptions{Progressive: true}); err != nil {
		t.Fatal(err)
	}
	w, h, nc, prog, err := DecodeConfig(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if w != 123 || h != 77 || nc != 3 || !prog {
		t.Errorf("config = %d %d %d %v", w, h, nc, prog)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"not_jpeg":     []byte("PNG\r\n"),
		"soi_only":     {0xFF, 0xD8},
		"bad_marker":   {0xFF, 0xD8, 0x12, 0x34},
		"eoi_only":     {0xFF, 0xD8, 0xFF, 0xD9},
		"sos_no_sof":   {0xFF, 0xD8, 0xFF, 0xDA, 0x00, 0x06, 0x01, 0x01, 0x00, 0x00},
		"short_seglen": {0xFF, 0xD8, 0xFF, 0xDB, 0x00, 0x01},
	}
	for name, data := range cases {
		if _, err := Decode(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDecodeTruncatedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	im := randomCoeffImage(rng, 64, 64, false, Sub420)
	var buf bytes.Buffer
	if err := EncodeCoeffs(&buf, im, nil); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cutting the stream inside entropy data should either fail or decode
	// partially — never panic.
	for _, frac := range []float64{0.5, 0.8, 0.95} {
		n := int(float64(len(full)) * frac)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic decoding %d/%d bytes: %v", n, len(full), r)
				}
			}()
			_, _ = Decode(bytes.NewReader(full[:n]))
		}()
	}
}

func TestEncodeValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeCoeffs(&buf, &CoeffImage{}, nil); err == nil {
		t.Error("empty image must not encode")
	}
	rng := rand.New(rand.NewSource(13))
	im := randomCoeffImage(rng, 16, 16, false, Sub444)
	im.Components[0].Blocks[0][5] = 5000 // out of AC range
	if err := EncodeCoeffs(&buf, im, nil); err == nil {
		t.Error("out-of-range AC must not encode")
	} else if !strings.Contains(err.Error(), "out of range") {
		t.Errorf("unexpected error: %v", err)
	}
	im2 := randomCoeffImage(rng, 16, 16, false, Sub444)
	im2.Quant[0] = nil
	if err := EncodeCoeffs(&buf, im2, nil); err == nil {
		t.Error("missing quant table must not encode")
	}
}

func TestSubsamplingDetect(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, sub := range []Subsampling{Sub444, Sub420, Sub422, Sub440} {
		im := randomCoeffImage(rng, 32, 32, false, sub)
		got, err := im.DetectSubsampling()
		if err != nil {
			t.Fatalf("%v: %v", sub, err)
		}
		if got != sub {
			t.Errorf("detected %v, want %v", got, sub)
		}
	}
	gray := randomCoeffImage(rng, 32, 32, true, Sub444)
	if got, err := gray.DetectSubsampling(); err != nil || got != Sub444 {
		t.Errorf("gray: %v %v", got, err)
	}
	if Sub420.String() != "4:2:0" || Sub444.String() != "4:4:4" {
		t.Error("subsampling String() wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	im := randomCoeffImage(rng, 32, 32, false, Sub420)
	im.AddMarker(0xE1, []byte("x"))
	cp := im.Clone()
	cp.Components[0].Blocks[0][0] = 999
	cp.Quant[0][0] = 77
	cp.Markers[0].Data[0] = 'y'
	if im.Components[0].Blocks[0][0] == 999 {
		t.Error("blocks aliased after Clone")
	}
	if im.Quant[0][0] == 77 {
		t.Error("quant tables aliased after Clone")
	}
	if im.Markers[0].Data[0] == 'y' {
		t.Error("markers aliased after Clone")
	}
}

func TestCloneInto(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := randomCoeffImage(rng, 48, 32, false, Sub420)
	a.AddMarker(0xE1, []byte("x"))

	// Reuse path: same geometry keeps block storage, copies values.
	dst := randomCoeffImage(rng, 48, 32, false, Sub420)
	prevBlocks := dst.Components[0].Blocks
	got := a.CloneInto(dst)
	if got != dst {
		t.Fatal("CloneInto did not return dst")
	}
	if &prevBlocks[0] != &dst.Components[0].Blocks[0] {
		t.Error("same-geometry CloneInto reallocated block storage")
	}
	for ci := range a.Components {
		for bi := range a.Components[ci].Blocks {
			if dst.Components[ci].Blocks[bi] != a.Components[ci].Blocks[bi] {
				t.Fatal("CloneInto copied blocks incorrectly")
			}
		}
	}
	// No aliasing with the source.
	dst.Components[0].Blocks[0][0] = 999
	dst.Quant[0][0] = 77
	dst.Markers[0].Data[0] = 'y'
	if a.Components[0].Blocks[0][0] == 999 || a.Quant[0][0] == 77 || a.Markers[0].Data[0] == 'y' {
		t.Error("CloneInto aliased source storage")
	}

	// Geometry change: grows cleanly and matches Clone.
	b := randomCoeffImage(rng, 96, 64, false, Sub444)
	grown := b.CloneInto(dst)
	want := b.Clone()
	if grown.Width != want.Width || grown.Height != want.Height || len(grown.Components) != len(want.Components) {
		t.Fatal("CloneInto geometry mismatch after reuse")
	}
	for ci := range want.Components {
		if grown.Components[ci].BlocksX != want.Components[ci].BlocksX ||
			grown.Components[ci].BlocksY != want.Components[ci].BlocksY {
			t.Fatal("CloneInto component dims mismatch")
		}
		for bi := range want.Components[ci].Blocks {
			if grown.Components[ci].Blocks[bi] != want.Components[ci].Blocks[bi] {
				t.Fatal("CloneInto blocks mismatch after geometry change")
			}
		}
	}
	if grown.Markers != nil {
		t.Error("CloneInto kept stale markers across reuse")
	}

	// nil dst falls back to Clone.
	if c := a.CloneInto(nil); c == nil || c == a {
		t.Error("CloneInto(nil) must allocate a fresh copy")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
