package jpegx

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// Fused split capture. P3's hot path is split = decode + two encodes, and on
// the canonical baseline shape (one interleaved scan covering all components)
// the structure of both output parts is fully determined by the source's
// entropy stream as it decodes: every nonzero source coefficient yields a
// nonzero public coefficient at the same position (value clipped to ±T), so
// the public part's run lengths, ZRLs and EOBs mirror the source symbol for
// symbol, and the sparse secret coefficients fall out of the same walk. A
// SplitCapture therefore records, during a single decode, the complete
// entropy-coding token streams and symbol frequencies of both parts; encoding
// a part is then table derivation plus a linear token replay — no coefficient
// images for the parts, no separate split walk, no statistics pass.

// SplitCapture holds the per-part token streams and symbol statistics
// captured by DecodeBytesSplit. The two parts serialize independently with
// EncodePublic and EncodeSecret (safe to run concurrently: both only read the
// capture); Release returns the internal buffers to the encoder's pools.
type SplitCapture struct {
	threshold int32
	tn        uint   // magnitude category of the threshold (clipped pub values are ±T → +T)
	tval      uint32 // value bits of +T
	pub, sec  *emitter
	pubBufp   *[]uint32
	secBufp   *[]uint32

	// secDCPred tracks the secret part's own DC prediction chain. The secret
	// DC equals the source DC, but the output stream has no restart markers,
	// so its predictor must run continuously even when the source's resets.
	secDCPred [4]int32

	// bad marks a stream shape the fused walk does not mirror (progressive,
	// multiple scans, non-canonical scan order); the capture is abandoned.
	bad bool
}

func newSplitCapture(threshold int32) *SplitCapture {
	pb := tokenBufs.Get().(*[]uint32)
	sb := tokenBufs.Get().(*[]uint32)
	tn, tval := magnitude(threshold)
	return &SplitCapture{
		threshold: threshold,
		tn:        tn,
		tval:      tval,
		pub:       newStatsEmitter(*pb),
		sec:       newStatsEmitter(*sb),
		pubBufp:   pb,
		secBufp:   sb,
	}
}

// Release returns the capture's token buffers to the pool. The capture must
// not be used afterwards. Release is idempotent and nil-safe.
func (c *SplitCapture) Release() {
	if c == nil || c.pub == nil {
		return
	}
	*c.pubBufp = c.pub.tokens
	*c.secBufp = c.sec.tokens
	tokenBufs.Put(c.pubBufp)
	tokenBufs.Put(c.secBufp)
	c.pub, c.sec, c.pubBufp, c.secBufp = nil, nil, nil, nil
}

// eligibleScan reports whether the current scan is the canonical shape the
// fused walk mirrors: the first and only scan, interleaved over all
// components in declaration order (the universal baseline layout). For
// single-component images the scan walk uses the component's true block
// extent while the encoder walks the full MCU grid, so sampling factors must
// be 1×1 for the two walks to coincide.
func (c *SplitCapture) eligibleScan(d *decoder, scomps []scanComp) bool {
	if d.scans != 1 || len(scomps) != len(d.img.Components) {
		return false
	}
	for i, sc := range scomps {
		if sc.ci != i {
			return false
		}
	}
	if len(scomps) == 1 {
		cp := &d.img.Components[0]
		if cp.H != 1 || cp.V != 1 {
			return false
		}
	}
	return true
}

// DecodeBytesSplit is DecodeBytesInto that additionally captures the P3
// threshold split of the stream at the given threshold while it decodes. On
// the canonical baseline shape it returns a non-nil *SplitCapture holding
// both parts' complete entropy statistics and token streams (the caller owns
// it and must Release it); for other stream shapes (progressive, multi-scan,
// subsampled grayscale) the capture comes back nil and the caller runs the
// reference split pipeline over the returned image. threshold must be ≥ 1;
// coefficient range validation matches what encoding the parts would enforce.
func DecodeBytesSplit(data []byte, threshold int, dst *CoeffImage, s *DecoderScratch) (*CoeffImage, *SplitCapture, error) {
	if threshold < 1 {
		return nil, nil, errors.New("jpegx: split threshold must be >= 1")
	}
	if dst == nil {
		dst = &CoeffImage{}
	}
	if s == nil {
		s = &DecoderScratch{}
	}
	resetForDecode(dst)
	s.br.reset(data)
	d := &s.dec
	*d = decoder{r: &s.br, img: dst, s: s}
	cap := newSplitCapture(int32(threshold))
	d.tee = cap
	err := d.run()
	d.tee = nil
	s.br.reset(nil)
	if err != nil {
		cap.Release()
		return nil, nil, err
	}
	if cap.bad || d.scans != 1 {
		cap.Release()
		return dst, nil, nil
	}
	return dst, cap, nil
}

// decodeBaselineBlockSplit is decodeBaselineBlock with the split capture
// fused in: as each symbol decodes, the matching public token (same run
// structure, value clipped to ±T) and any secret token (clipped excess, own
// run accounting) are recorded. slot is the output entropy-table slot for the
// component (0 luma, 1 chroma), ci its component index.
func decodeBaselineBlockSplit(br *bitReader, dc, ac *huffDecoder, b *Block, pred *int32, c *SplitCapture, slot, ci int) error {
	t := c.threshold
	acc, n := br.acc, br.n
	if n < 24 {
		br.acc, br.n = acc, n
		br.fill()
		acc, n = br.acc, br.n
	}
	var sym byte
	if e := dc.lut[uint8(acc>>(n-8))]; e != 0 {
		n -= uint(e & 0xFF)
		sym = byte(e >> 8)
	} else {
		br.acc, br.n = acc, n
		var err error
		if sym, err = dc.decodeSlow(br); err != nil {
			return err
		}
		acc, n = br.acc, br.n
	}
	if sym > 15 {
		return FormatError("DC magnitude category > 15")
	}
	if s := uint(sym); s != 0 {
		if n < s {
			br.acc, br.n = acc, n
			br.fill()
			acc, n = br.acc, br.n
		}
		n -= s
		v := int32(acc>>n) & (1<<s - 1)
		if v < 1<<(s-1) {
			v += -1<<s + 1 // EXTEND (T.81 F.2.2.1)
		}
		*pred += v
	}
	b[0] = *pred

	// Public DC is always zero (category 0, no value bits); secret DC carries
	// the source DC on its own prediction chain.
	diff := *pred - c.secDCPred[ci]
	c.secDCPred[ci] = *pred
	dn, dval := magnitude(diff)
	if dn > 11 {
		return fmt.Errorf("jpegx: DC difference %d out of baseline range", diff)
	}
	c.sec.dcSym(slot, byte(dn), dval, dn)

	// The public emissions are the per-coefficient hot path, so they bypass
	// the emitter methods: the token stream and the per-slot frequency array
	// are held in locals, synced back at block end.
	pubT := c.pub.tokens
	pubAF := c.pub.acFreq[slot]
	c.pub.dcFreq[slot][0]++
	pubT = append(pubT, token(slot, tokKindDC, 0, 0, 0))

	secPrev := 0
	sawEOB := false
	for k := 1; k < 64; {
		if n < 24 {
			br.acc, br.n = acc, n
			br.fill()
			acc, n = br.acc, br.n
		}
		if e := ac.lut[uint8(acc>>(n-8))]; e != 0 {
			n -= uint(e & 0xFF)
			sym = byte(e >> 8)
		} else {
			br.acc, br.n = acc, n
			var err error
			if sym, err = ac.decodeSlow(br); err != nil {
				c.pub.tokens = pubT
				return err
			}
			acc, n = br.acc, br.n
		}
		s := uint(sym & 0x0F)
		if s == 0 {
			if sym != 0xF0 {
				sawEOB = true
				break // EOB
			}
			k += 16 // ZRL: the public part has the same zero run
			pubAF[0xF0]++
			pubT = append(pubT, token(slot, tokKindAC, 0xF0, 0, 0))
			continue
		}
		k += int(sym >> 4)
		if k > 63 {
			br.acc, br.n = acc, n
			c.pub.tokens = pubT
			return FormatError("AC coefficient index out of range")
		}
		if n < s {
			br.acc, br.n = acc, n
			br.fill()
			acc, n = br.acc, br.n
		}
		n -= s
		raw := uint32(acc>>n) & (1<<s - 1)
		v := int32(raw)
		if v < 1<<(s-1) {
			v += -1<<s + 1
		}
		b[zigzag[k]&63] = v

		// Public coefficient: v clipped to ±T at the same position, so the
		// source symbol's run carries over. Unclipped, the source's raw value
		// bits ARE the public value bits (JPEG's one's-complement encoding);
		// clipped, the public value is always +T, categorized once per image.
		if uint32(v+t) <= uint32(2*t) {
			pubAF[sym]++
			pubT = append(pubT, token(slot, tokKindAC, sym, raw, s))
		} else {
			psym := sym&0xF0 | byte(c.tn)
			pubAF[psym]++
			pubT = append(pubT, token(slot, tokKindAC, psym, c.tval, c.tn))
			sv := v - t
			if v < 0 {
				sv = v + t
			}
			srun := k - secPrev - 1
			secPrev = k
			for srun > 15 {
				c.sec.acSym(slot, 0xF0, 0, 0)
				srun -= 16
			}
			sn, sval := magnitude(sv)
			if sn > 10 {
				br.acc, br.n = acc, n
				c.pub.tokens = pubT
				return fmt.Errorf("jpegx: AC coefficient %d out of baseline range", v)
			}
			c.sec.acSym(slot, byte(srun<<4)|byte(sn), sval, sn)
		}
		k++
	}
	br.acc, br.n = acc, n
	if sawEOB {
		pubAF[0]++
		pubT = append(pubT, token(slot, tokKindAC, 0, 0, 0))
	}
	c.pub.tokens = pubT
	if secPrev != 63 {
		c.sec.acSym(slot, 0x00, 0, 0)
	}
	return nil
}

// EncodePublic serializes the captured public part as a baseline JPEG.
// im is the decoded source image the capture came from; it supplies the
// geometry, quantization tables and (already filtered) marker segments —
// both parts share them with the source by construction.
func (c *SplitCapture) EncodePublic(w io.Writer, im *CoeffImage, optimize bool) error {
	return c.encodePart(w, im, c.pub, optimize)
}

// EncodeSecret serializes the captured secret part as a baseline JPEG.
func (c *SplitCapture) EncodeSecret(w io.Writer, im *CoeffImage, optimize bool) error {
	return c.encodePart(w, im, c.sec, optimize)
}

func (c *SplitCapture) encodePart(w io.Writer, im *CoeffImage, part *emitter, optimize bool) error {
	if part == nil {
		return errors.New("jpegx: split capture already released")
	}
	if err := im.validate(); err != nil {
		return err
	}
	bufw := bufio.NewWriter(w)
	e := &encoder{w: bufw, img: im, opts: &EncodeOptions{}}
	nSlots := 2
	if len(im.Components) == 1 {
		nSlots = 1
	}
	dcSpecs := [2]*HuffSpec{StdDCLuma(), StdDCChroma()}
	acSpecs := [2]*HuffSpec{StdACLuma(), StdACChroma()}
	if optimize {
		for s := 0; s < nSlots; s++ {
			spec, err := BuildOptimalSpec(part.dcFreq[s])
			if err != nil {
				return fmt.Errorf("jpegx: optimizing DC table %d: %w", s, err)
			}
			dcSpecs[s] = spec
			spec, err = BuildOptimalSpec(part.acFreq[s])
			if err != nil {
				return fmt.Errorf("jpegx: optimizing AC table %d: %w", s, err)
			}
			acSpecs[s] = spec
		}
	}
	if err := e.writeHeaders(mSOF0); err != nil {
		return err
	}
	for s := 0; s < nSlots; s++ {
		if err := e.writeDHT(0, s, dcSpecs[s]); err != nil {
			return err
		}
		if err := e.writeDHT(1, s, acSpecs[s]); err != nil {
			return err
		}
	}
	if err := e.writeSOS(e.allComponentsScan(), 0, 63, 0, 0); err != nil {
		return err
	}
	em := &emitter{bw: newBitWriter(e.w)}
	for s := 0; s < nSlots; s++ {
		var err error
		if em.dcEnc[s], err = newHuffEncoder(dcSpecs[s]); err != nil {
			return err
		}
		if em.acEnc[s], err = newHuffEncoder(acSpecs[s]); err != nil {
			return err
		}
	}
	rst := 0
	if err := e.replayTokens(em, part.tokens, &rst); err != nil {
		return err
	}
	if err := em.bw.pad(); err != nil {
		return err
	}
	if err := e.writeMarker(mEOI); err != nil {
		return err
	}
	return bufw.Flush()
}
