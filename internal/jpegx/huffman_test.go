package jpegx

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStdSpecsValid(t *testing.T) {
	for name, spec := range map[string]*HuffSpec{
		"DCLuma": StdDCLuma(), "DCChroma": StdDCChroma(),
		"ACLuma": StdACLuma(), "ACChroma": StdACChroma(),
	} {
		if err := spec.validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if _, err := newHuffEncoder(spec); err != nil {
			t.Errorf("%s encoder: %v", name, err)
		}
		if _, err := newHuffDecoder(spec); err != nil {
			t.Errorf("%s decoder: %v", name, err)
		}
	}
	if n := StdACLuma().numSymbols(); n != 162 {
		t.Errorf("ACLuma has %d symbols, want 162", n)
	}
}

// encodeDecodeSymbols round-trips a symbol sequence through a spec's encoder
// and decoder pair.
func encodeDecodeSymbols(t *testing.T, spec *HuffSpec, syms []byte) {
	t.Helper()
	enc, err := newHuffEncoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	bw := newBitWriter(&buf)
	for _, s := range syms {
		enc.emit(bw, s)
	}
	if err := bw.pad(); err != nil {
		t.Fatal(err)
	}
	dec, err := newHuffDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	br := newTestBitReader(buf.Bytes())
	for i, want := range syms {
		got, err := dec.decode(br)
		if err != nil {
			t.Fatalf("symbol %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("symbol %d: got %#02x, want %#02x", i, got, want)
		}
	}
}

func TestHuffmanRoundTripStdTables(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	spec := StdACLuma()
	syms := make([]byte, 3000)
	for i := range syms {
		syms[i] = spec.Symbols[rng.Intn(len(spec.Symbols))]
	}
	encodeDecodeSymbols(t, spec, syms)
}

func TestBuildOptimalSpec(t *testing.T) {
	var freq [256]int64
	// A skewed distribution exercising both short and long codes.
	for i := 0; i < 40; i++ {
		freq[i] = int64(1) << uint(i%20)
	}
	spec, err := BuildOptimalSpec(&freq)
	if err != nil {
		t.Fatal(err)
	}
	// Every nonzero-frequency symbol must be present exactly once.
	seen := map[byte]int{}
	for _, s := range spec.Symbols {
		seen[s]++
	}
	for i := 0; i < 40; i++ {
		if seen[byte(i)] != 1 {
			t.Errorf("symbol %d appears %d times", i, seen[byte(i)])
		}
	}
	if len(spec.Symbols) != 40 {
		t.Errorf("%d symbols, want 40", len(spec.Symbols))
	}
	// More frequent symbols must not get longer codes.
	enc, err := newHuffEncoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 40; a++ {
		for b := 0; b < 40; b++ {
			if freq[a] > freq[b] && enc.size[a] > enc.size[b] {
				t.Errorf("freq[%d]=%d > freq[%d]=%d but len %d > %d",
					a, freq[a], b, freq[b], enc.size[a], enc.size[b])
			}
		}
	}
	// And round-trip through it.
	rng := rand.New(rand.NewSource(5))
	syms := make([]byte, 2000)
	for i := range syms {
		syms[i] = byte(rng.Intn(40))
	}
	encodeDecodeSymbols(t, spec, syms)
}

func TestBuildOptimalSpecSingleSymbol(t *testing.T) {
	var freq [256]int64
	freq[42] = 100
	spec, err := BuildOptimalSpec(&freq)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Symbols) != 1 || spec.Symbols[0] != 42 {
		t.Fatalf("symbols = %v, want [42]", spec.Symbols)
	}
	encodeDecodeSymbols(t, spec, bytes.Repeat([]byte{42}, 50))
}

func TestBuildOptimalSpecProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var freq [256]int64
		n := 1 + rng.Intn(255)
		for i := 0; i < n; i++ {
			freq[rng.Intn(256)] = int64(rng.Intn(100000)) + 1
		}
		spec, err := BuildOptimalSpec(&freq)
		if err != nil {
			return false
		}
		if spec.validate() != nil {
			return false
		}
		// Length limit respected.
		for l := 16; l < 16; l++ {
			_ = l
		}
		total := 0
		for _, c := range spec.Counts {
			total += int(c)
		}
		want := 0
		for _, f := range freq {
			if f > 0 {
				want++
			}
		}
		return total == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBuildOptimalSpecErrors(t *testing.T) {
	var empty [256]int64
	if _, err := BuildOptimalSpec(&empty); err == nil {
		t.Error("expected error for all-zero frequencies")
	}
	var neg [256]int64
	neg[0] = -1
	if _, err := BuildOptimalSpec(&neg); err == nil {
		t.Error("expected error for negative frequency")
	}
}

func TestHuffSpecValidateErrors(t *testing.T) {
	bad := &HuffSpec{Counts: [16]byte{0, 2}, Symbols: []byte{1}}
	if err := bad.validate(); err == nil {
		t.Error("count/symbol mismatch not detected")
	}
	over := &HuffSpec{Counts: [16]byte{3}, Symbols: []byte{1, 2, 3}}
	if err := over.validate(); err == nil {
		t.Error("oversubscribed table not detected")
	}
	dup := &HuffSpec{Counts: [16]byte{0, 2}, Symbols: []byte{7, 7}}
	if _, err := newHuffEncoder(dup); err == nil {
		t.Error("duplicate symbol not detected")
	}
}

func TestBitWriterStuffing(t *testing.T) {
	var buf bytes.Buffer
	bw := newBitWriter(&buf)
	bw.writeBits(0xFF, 8)
	bw.writeBits(0xFF, 8)
	if err := bw.pad(); err != nil {
		t.Fatal(err)
	}
	want := []byte{0xFF, 0x00, 0xFF, 0x00}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("got % x, want % x", buf.Bytes(), want)
	}
	// And the reader must undo it.
	br := newTestBitReader(buf.Bytes())
	if v := br.readBits(16); v != 0xFFFF {
		t.Errorf("read %#x, want 0xffff", v)
	}
}

// newTestBitReader wraps an in-memory entropy-coded segment for direct
// bit-level tests.
func newTestBitReader(data []byte) *bitReader {
	br := &bitReader{}
	br.attach(&byteCursor{data: data})
	return br
}

func TestBitReaderMarkerStop(t *testing.T) {
	// Data byte, then an RST0 marker: reads past the data must synthesize
	// 1-bits and report the pending marker.
	br := newTestBitReader([]byte{0xAB, 0xFF, 0xD0})
	if v := br.readBits(8); v != 0xAB {
		t.Fatalf("got %#x", v)
	}
	if v := br.readBits(8); v != 0xFF {
		t.Fatalf("padding read got %#x", v)
	}
	if br.pendingMarker() != 0xD0 {
		t.Errorf("pending marker %#x, want 0xd0", br.pendingMarker())
	}
}

func TestMagnitude(t *testing.T) {
	cases := []struct {
		v     int32
		nbits uint
		bits  uint32
	}{
		{0, 0, 0},
		{1, 1, 1},
		{-1, 1, 0},
		{2, 2, 2},
		{3, 2, 3},
		{-2, 2, 1},
		{-3, 2, 0},
		{1023, 10, 1023},
		{-1023, 10, 0},
		{2047, 11, 2047},
	}
	for _, c := range cases {
		n, b := magnitude(c.v)
		if n != c.nbits || b != c.bits {
			t.Errorf("magnitude(%d) = (%d, %d), want (%d, %d)", c.v, n, b, c.nbits, c.bits)
		}
		// extend must invert the mapping.
		if c.nbits > 0 {
			if got := extend(int32(b), n); got != c.v {
				t.Errorf("extend(%d, %d) = %d, want %d", b, n, got, c.v)
			}
		}
	}
}

func TestMagnitudeExtendProperty(t *testing.T) {
	f := func(v int16) bool {
		n, bits := magnitude(int32(v))
		if v == 0 {
			return n == 0
		}
		return extend(int32(bits), n) == int32(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
