package jpegx

import "math"

// Fixed-point DCT/IDCT, the production transforms of the pixel pipeline. The
// algorithm is the Loeffler–Ligtenberg–Moshovitz factorization in 13-bit
// fixed point (libjpeg's jfdctint/jidctint): 12 multiplications per 1-D
// pass, all arithmetic in int64 so no intermediate can overflow, results
// within ±1 of the float transforms (pinned by FuzzIDCTFixedVsFloat). The
// float matrix and AAN transforms in dct.go / dct_fast.go remain as the
// differential references. Unlike libjpeg the IDCT does not range-limit its
// output: P3's public and secret parts are valid coefficient images whose
// sample planes legitimately exceed [0, 255], and reconstruction needs the
// unclamped values (clamping is display's job; see imaging.Clamp).
const (
	dctConstBits = 13
	dctPass1Bits = 2
)

// 13-bit fixed-point constants: round(cos-derived value × 2^13).
const (
	fix0_298631336 = 2446
	fix0_390180644 = 3196
	fix0_541196100 = 4433
	fix0_765366865 = 6270
	fix0_899976223 = 7373
	fix1_175875602 = 9633
	fix1_501321110 = 12299
	fix1_847759065 = 15137
	fix1_961570560 = 16069
	fix2_053119869 = 16819
	fix2_562915447 = 20995
	fix3_072711026 = 25172
)

// descale divides by 2^n rounding to nearest (half up), the DESCALE of
// libjpeg.
func descale(x int64, n uint) int64 { return (x + 1<<(n-1)) >> n }

// FDCT8x8Int computes the forward 8×8 DCT of the level-shifted samples in
// src (row-major) into dst (natural order), scaled by 8: dst = 8·DCT(src).
// Callers quantize with an 8×-scaled divisor (see quantizeBlockInt), which
// folds the scale back out with no extra precision loss.
func FDCT8x8Int(src, dst *[64]int32) {
	var ws [64]int64

	// Pass 1: rows. Outputs are scaled by 2^dctPass1Bits.
	for i := 0; i < 64; i += 8 {
		d0, d1, d2, d3 := int64(src[i]), int64(src[i+1]), int64(src[i+2]), int64(src[i+3])
		d4, d5, d6, d7 := int64(src[i+4]), int64(src[i+5]), int64(src[i+6]), int64(src[i+7])

		tmp0, tmp7 := d0+d7, d0-d7
		tmp1, tmp6 := d1+d6, d1-d6
		tmp2, tmp5 := d2+d5, d2-d5
		tmp3, tmp4 := d3+d4, d3-d4

		tmp10, tmp13 := tmp0+tmp3, tmp0-tmp3
		tmp11, tmp12 := tmp1+tmp2, tmp1-tmp2

		ws[i] = (tmp10 + tmp11) << dctPass1Bits
		ws[i+4] = (tmp10 - tmp11) << dctPass1Bits
		z1 := (tmp12 + tmp13) * fix0_541196100
		ws[i+2] = descale(z1+tmp13*fix0_765366865, dctConstBits-dctPass1Bits)
		ws[i+6] = descale(z1-tmp12*fix1_847759065, dctConstBits-dctPass1Bits)

		z1 = tmp4 + tmp7
		z2 := tmp5 + tmp6
		z3 := tmp4 + tmp6
		z4 := tmp5 + tmp7
		z5 := (z3 + z4) * fix1_175875602
		tmp4 *= fix0_298631336
		tmp5 *= fix2_053119869
		tmp6 *= fix3_072711026
		tmp7 *= fix1_501321110
		z1 *= -fix0_899976223
		z2 *= -fix2_562915447
		z3 = z3*-fix1_961570560 + z5
		z4 = z4*-fix0_390180644 + z5
		ws[i+7] = descale(tmp4+z1+z3, dctConstBits-dctPass1Bits)
		ws[i+5] = descale(tmp5+z2+z4, dctConstBits-dctPass1Bits)
		ws[i+3] = descale(tmp6+z2+z3, dctConstBits-dctPass1Bits)
		ws[i+1] = descale(tmp7+z1+z4, dctConstBits-dctPass1Bits)
	}

	// Pass 2: columns, removing the pass-1 scale.
	for u := 0; u < 8; u++ {
		d0, d1, d2, d3 := ws[u], ws[8+u], ws[16+u], ws[24+u]
		d4, d5, d6, d7 := ws[32+u], ws[40+u], ws[48+u], ws[56+u]

		tmp0, tmp7 := d0+d7, d0-d7
		tmp1, tmp6 := d1+d6, d1-d6
		tmp2, tmp5 := d2+d5, d2-d5
		tmp3, tmp4 := d3+d4, d3-d4

		tmp10, tmp13 := tmp0+tmp3, tmp0-tmp3
		tmp11, tmp12 := tmp1+tmp2, tmp1-tmp2

		dst[u] = int32(descale(tmp10+tmp11, dctPass1Bits))
		dst[32+u] = int32(descale(tmp10-tmp11, dctPass1Bits))
		z1 := (tmp12 + tmp13) * fix0_541196100
		dst[16+u] = int32(descale(z1+tmp13*fix0_765366865, dctConstBits+dctPass1Bits))
		dst[48+u] = int32(descale(z1-tmp12*fix1_847759065, dctConstBits+dctPass1Bits))

		z1 = tmp4 + tmp7
		z2 := tmp5 + tmp6
		z3 := tmp4 + tmp6
		z4 := tmp5 + tmp7
		z5 := (z3 + z4) * fix1_175875602
		tmp4 *= fix0_298631336
		tmp5 *= fix2_053119869
		tmp6 *= fix3_072711026
		tmp7 *= fix1_501321110
		z1 *= -fix0_899976223
		z2 *= -fix2_562915447
		z3 = z3*-fix1_961570560 + z5
		z4 = z4*-fix0_390180644 + z5
		dst[56+u] = int32(descale(tmp4+z1+z3, dctConstBits+dctPass1Bits))
		dst[40+u] = int32(descale(tmp5+z2+z4, dctConstBits+dctPass1Bits))
		dst[24+u] = int32(descale(tmp6+z2+z3, dctConstBits+dctPass1Bits))
		dst[8+u] = int32(descale(tmp7+z1+z4, dctConstBits+dctPass1Bits))
	}
}

// IDCT8x8Int computes the inverse 8×8 DCT of the dequantized coefficients in
// src (natural order) into dst: row-major level-shifted samples scaled by 8
// (3 fractional bits), unclamped. The fractional bits matter to P3: pixel
// reconstruction sums independently transformed public and secret planes, and
// rounding each to whole samples first costs ~2 dB on the recombined image.
// Callers wanting plain samples multiply by 0.125 (idctRows) or descale by 3.
func IDCT8x8Int(src, dst *[64]int32) {
	var ws [64]int64

	// Pass 1: columns. All-zero AC columns (common in quantized images)
	// shortcut to a constant column.
	for u := 0; u < 8; u++ {
		if src[8+u]|src[16+u]|src[24+u]|src[32+u]|src[40+u]|src[48+u]|src[56+u] == 0 {
			dc := int64(src[u]) << dctPass1Bits
			ws[u], ws[8+u], ws[16+u], ws[24+u] = dc, dc, dc, dc
			ws[32+u], ws[40+u], ws[48+u], ws[56+u] = dc, dc, dc, dc
			continue
		}
		z2 := int64(src[16+u])
		z3 := int64(src[48+u])
		z1 := (z2 + z3) * fix0_541196100
		tmp2 := z1 - z3*fix1_847759065
		tmp3 := z1 + z2*fix0_765366865
		z2 = int64(src[u])
		z3 = int64(src[32+u])
		tmp0 := (z2 + z3) << dctConstBits
		tmp1 := (z2 - z3) << dctConstBits
		tmp10, tmp13 := tmp0+tmp3, tmp0-tmp3
		tmp11, tmp12 := tmp1+tmp2, tmp1-tmp2

		t0 := int64(src[56+u])
		t1 := int64(src[40+u])
		t2 := int64(src[24+u])
		t3 := int64(src[8+u])
		z1 = t0 + t3
		z2 = t1 + t2
		z3 = t0 + t2
		z4 := t1 + t3
		z5 := (z3 + z4) * fix1_175875602
		t0 *= fix0_298631336
		t1 *= fix2_053119869
		t2 *= fix3_072711026
		t3 *= fix1_501321110
		z1 *= -fix0_899976223
		z2 *= -fix2_562915447
		z3 = z3*-fix1_961570560 + z5
		z4 = z4*-fix0_390180644 + z5
		t0 += z1 + z3
		t1 += z2 + z4
		t2 += z2 + z3
		t3 += z1 + z4

		ws[u] = descale(tmp10+t3, dctConstBits-dctPass1Bits)
		ws[56+u] = descale(tmp10-t3, dctConstBits-dctPass1Bits)
		ws[8+u] = descale(tmp11+t2, dctConstBits-dctPass1Bits)
		ws[48+u] = descale(tmp11-t2, dctConstBits-dctPass1Bits)
		ws[16+u] = descale(tmp12+t1, dctConstBits-dctPass1Bits)
		ws[40+u] = descale(tmp12-t1, dctConstBits-dctPass1Bits)
		ws[24+u] = descale(tmp13+t0, dctConstBits-dctPass1Bits)
		ws[32+u] = descale(tmp13-t0, dctConstBits-dctPass1Bits)
	}

	// Pass 2: rows. The canonical final descale is dctConstBits+dctPass1Bits+3
	// (the +3 removing the DCT's factor of 8); keeping the 3 bits instead
	// yields the 8×-scaled samples documented above.
	for i := 0; i < 64; i += 8 {
		z2 := ws[i+2]
		z3 := ws[i+6]
		z1 := (z2 + z3) * fix0_541196100
		tmp2 := z1 - z3*fix1_847759065
		tmp3 := z1 + z2*fix0_765366865
		tmp0 := (ws[i] + ws[i+4]) << dctConstBits
		tmp1 := (ws[i] - ws[i+4]) << dctConstBits
		tmp10, tmp13 := tmp0+tmp3, tmp0-tmp3
		tmp11, tmp12 := tmp1+tmp2, tmp1-tmp2

		t0 := ws[i+7]
		t1 := ws[i+5]
		t2 := ws[i+3]
		t3 := ws[i+1]
		z1 = t0 + t3
		z2 = t1 + t2
		z3 = t0 + t2
		z4 := t1 + t3
		z5 := (z3 + z4) * fix1_175875602
		t0 *= fix0_298631336
		t1 *= fix2_053119869
		t2 *= fix3_072711026
		t3 *= fix1_501321110
		z1 *= -fix0_899976223
		z2 *= -fix2_562915447
		z3 = z3*-fix1_961570560 + z5
		z4 = z4*-fix0_390180644 + z5
		t0 += z1 + z3
		t1 += z2 + z4
		t2 += z2 + z3
		t3 += z1 + z4

		dst[i] = int32(descale(tmp10+t3, dctConstBits+dctPass1Bits))
		dst[i+7] = int32(descale(tmp10-t3, dctConstBits+dctPass1Bits))
		dst[i+1] = int32(descale(tmp11+t2, dctConstBits+dctPass1Bits))
		dst[i+6] = int32(descale(tmp11-t2, dctConstBits+dctPass1Bits))
		dst[i+2] = int32(descale(tmp12+t1, dctConstBits+dctPass1Bits))
		dst[i+5] = int32(descale(tmp12-t1, dctConstBits+dctPass1Bits))
		dst[i+3] = int32(descale(tmp13+t0, dctConstBits+dctPass1Bits))
		dst[i+4] = int32(descale(tmp13-t0, dctConstBits+dctPass1Bits))
	}
}

// Scaled inverse transforms. A proxy serving a ≤ half-size rendition does
// not need 64 samples per block: the n×n scaled IDCT (n ∈ {1, 2, 4})
// reconstructs each output sample as the exact box average of the (8/n)²
// full-resolution samples the float IDCT would produce, folding the
// downsample into the transform. The n×8 basis g_n[i][u] =
// (n/8)·Σ_{x ∈ group i} C(u)/2·cos((2x+1)uπ/16) is precomputed in 13-bit
// fixed point; both passes use all 8 input frequencies, so (unlike simple
// coefficient truncation) high-frequency energy is correctly averaged, not
// dropped.
var idctScaledBasis [2][4][8]int64 // [0]: n=4, [1]: n=2

func init() {
	for bi, n := range [2]int{4, 2} {
		group := 8 / n
		for i := 0; i < n; i++ {
			for u := 0; u < 8; u++ {
				cu := 1.0
				if u == 0 {
					cu = 1 / math.Sqrt2
				}
				var s float64
				for x := i * group; x < (i+1)*group; x++ {
					s += cu / 2 * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16)
				}
				idctScaledBasis[bi][i][u] = int64(math.Round(s / float64(group) * (1 << dctConstBits)))
			}
		}
	}
}

// IDCTScaledInt computes the n×n box-downsampled reconstruction of the
// dequantized coefficients in src into the first n×n entries of dst
// (row-major level-shifted samples scaled by 8 like IDCT8x8Int's, unclamped).
// n must be 1, 2 or 4; n = 8 callers use IDCT8x8Int.
func IDCTScaledInt(src, dst *[64]int32, n int) {
	if n == 1 {
		// The 1×1 output is the block mean, DC/8 — already 8×-scaled as DC.
		dst[0] = src[0]
		return
	}
	bi := 0
	if n == 2 {
		bi = 1
	}
	basis := &idctScaledBasis[bi]
	// Pass 1: columns → n×8 intermediate, keeping dctPass1Bits extra bits.
	var ws [32]int64 // n ≤ 4 rows × 8 columns
	for u := 0; u < 8; u++ {
		c0 := int64(src[u])
		c1 := int64(src[8+u])
		c2 := int64(src[16+u])
		c3 := int64(src[24+u])
		c4 := int64(src[32+u])
		c5 := int64(src[40+u])
		c6 := int64(src[48+u])
		c7 := int64(src[56+u])
		for i := 0; i < n; i++ {
			g := &basis[i]
			s := g[0]*c0 + g[1]*c1 + g[2]*c2 + g[3]*c3 +
				g[4]*c4 + g[5]*c5 + g[6]*c6 + g[7]*c7
			ws[i*8+u] = descale(s, dctConstBits-dctPass1Bits)
		}
	}
	// Pass 2: rows → n×n samples, keeping 3 fractional bits (−3).
	for i := 0; i < n; i++ {
		row := ws[i*8 : i*8+8]
		for j := 0; j < n; j++ {
			g := &basis[j]
			s := g[0]*row[0] + g[1]*row[1] + g[2]*row[2] + g[3]*row[3] +
				g[4]*row[4] + g[5]*row[5] + g[6]*row[6] + g[7]*row[7]
			dst[i*n+j] = int32(descale(s, dctConstBits+dctPass1Bits-3))
		}
	}
}

// dequantizeBlockInt expands quantized integers to dequantized int32
// coefficients for the fixed-point IDCTs.
func dequantizeBlockInt(in *Block, q *QuantTable, out *[64]int32) {
	for i := 0; i < 64; i++ {
		out[i] = in[i] * int32(q[i])
	}
}

// quantizeBlockInt converts 8×-scaled FDCT8x8Int output to quantized
// integers, rounding half away from zero as the float path does.
func quantizeBlockInt(coeffs *[64]int32, q *QuantTable, out *Block) {
	for i := 0; i < 64; i++ {
		d := int64(q[i]) * 8
		r := d >> 1
		if v := int64(coeffs[i]); v >= 0 {
			out[i] = int32((v + r) / d)
		} else {
			out[i] = int32(-((-v + r) / d))
		}
	}
}
