package jpegx

import (
	"bytes"
	"math/rand"
	"testing"

	"p3/internal/work"
)

// The band-parallel paths must be byte-identical to their sequential
// counterparts: parallelism is a performance knob, never an output change.

func TestEncodeParallelStatsIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		w, h int
		gray bool
		sub  Subsampling
	}{
		{128, 96, false, Sub420},
		{64, 64, false, Sub444},
		{80, 56, true, Sub444},
		{8, 8, false, Sub420}, // single MCU row: fewer bands than workers
	} {
		im := randomCoeffImage(rng, tc.w, tc.h, tc.gray, tc.sub)
		var seq, par bytes.Buffer
		if err := EncodeCoeffs(&seq, im, &EncodeOptions{OptimizeHuffman: true}); err != nil {
			t.Fatal(err)
		}
		pool := work.New(4)
		if err := EncodeCoeffs(&par, im, &EncodeOptions{OptimizeHuffman: true, Workers: pool}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seq.Bytes(), par.Bytes()) {
			t.Errorf("%dx%d gray=%v sub=%v: parallel encode differs from sequential", tc.w, tc.h, tc.gray, tc.sub)
		}
	}
}

func TestDecodeIntoReuseMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var scratch DecoderScratch
	var dst CoeffImage
	// Alternate geometries and table sets through one scratch + dst; any
	// state leaking across decodes would diverge from the fresh decode.
	for trial := 0; trial < 6; trial++ {
		im := randomCoeffImage(rng, 32+16*(trial%3), 24+8*(trial%4), trial%2 == 0, Sub420)
		var buf bytes.Buffer
		if err := EncodeCoeffs(&buf, im, &EncodeOptions{OptimizeHuffman: trial%2 == 0}); err != nil {
			t.Fatal(err)
		}
		fresh, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		reused, err := DecodeInto(bytes.NewReader(buf.Bytes()), &dst, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		if !coeffImagesEqual(fresh, reused) {
			t.Fatalf("trial %d: DecodeInto with reused scratch differs from Decode", trial)
		}
	}
}

func TestToPlanarPoolIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	im := randomCoeffImage(rng, 120, 88, false, Sub420)
	seq := im.ToPlanar()
	par := im.ToPlanarPool(work.New(4))
	if seq.Width != par.Width || seq.Height != par.Height || len(seq.Planes) != len(par.Planes) {
		t.Fatal("geometry mismatch")
	}
	for pi := range seq.Planes {
		for i := range seq.Planes[pi] {
			if seq.Planes[pi][i] != par.Planes[pi][i] {
				t.Fatalf("plane %d sample %d: %v != %v", pi, i, seq.Planes[pi][i], par.Planes[pi][i])
			}
		}
	}
}
