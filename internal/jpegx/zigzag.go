// Package jpegx is a from-scratch baseline and progressive JPEG codec that,
// unlike the standard library's image/jpeg, exposes the quantized DCT
// coefficients of every 8×8 block. Coefficient access is the substrate the
// P3 splitting algorithm is defined on: the splitter operates on the
// quantized coefficients after the JPEG quantization step and before entropy
// coding, and the public/secret parts it produces must round-trip through a
// compliant entropy coder without further loss.
//
// The package supports:
//
//   - decoding baseline (SOF0) and progressive (SOF2, spectral selection and
//     successive approximation) streams to coefficient blocks or pixels,
//   - encoding pixels to baseline JPEG with standard or optimized Huffman
//     tables, at a caller-chosen quality,
//   - lossless re-encoding of coefficient blocks (the core of P3: the public
//     and secret parts are coefficient images serialized as real JPEGs),
//   - 4:4:4, 4:2:2, 4:4:0 and 4:2:0 chroma subsampling,
//   - preservation and stripping of application (APPn/COM) markers, which the
//     PSP simulator uses to mimic Facebook's marker-stripping behaviour.
package jpegx

// zigzag maps a position in the zigzag scan order to its index in the
// natural (row-major) order of an 8×8 block. zigzag[0] is the DC term.
var zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// unzigzag is the inverse permutation: natural index → zigzag position.
var unzigzag [64]int

func init() {
	for zz, nat := range zigzag {
		unzigzag[nat] = zz
	}
}

// Zigzag returns the natural-order index of zigzag position zz (0 ≤ zz < 64).
func Zigzag(zz int) int { return zigzag[zz] }

// Unzigzag returns the zigzag position of natural-order index nat.
func Unzigzag(nat int) int { return unzigzag[nat] }
