package jpegx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFDCTConstantBlock(t *testing.T) {
	var src, dst [64]float64
	for i := range src {
		src[i] = 100
	}
	FDCT8x8(&src, &dst)
	// DC of a constant block is 8·value; all ACs are zero.
	if math.Abs(dst[0]-800) > 1e-9 {
		t.Errorf("DC = %v, want 800", dst[0])
	}
	for i := 1; i < 64; i++ {
		if math.Abs(dst[i]) > 1e-9 {
			t.Errorf("AC[%d] = %v, want 0", i, dst[i])
		}
	}
}

func TestDCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		var src, mid, dst [64]float64
		for i := range src {
			src[i] = rng.Float64()*255 - 128
		}
		FDCT8x8(&src, &mid)
		IDCT8x8(&mid, &dst)
		for i := range src {
			if math.Abs(src[i]-dst[i]) > 1e-9 {
				t.Fatalf("trial %d: sample %d: got %v, want %v", trial, i, dst[i], src[i])
			}
		}
	}
}

// TestDCTParseval checks energy preservation (the DCT is orthonormal):
// Σx² == Σc².
func TestDCTParseval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var src, dst [64]float64
		var es, ec float64
		for i := range src {
			src[i] = rng.Float64()*256 - 128
			es += src[i] * src[i]
		}
		FDCT8x8(&src, &dst)
		for i := range dst {
			ec += dst[i] * dst[i]
		}
		return math.Abs(es-ec) < 1e-6*(1+es)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestDCTLinearity: DCT(a·x + b·y) == a·DCT(x) + b·DCT(y). P3's Eq. (1)/(2)
// reconstruction depends on this property.
func TestDCTLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		var x, y, sum, dx, dy, dsum [64]float64
		a, b := rng.Float64()*4-2, rng.Float64()*4-2
		for i := range x {
			x[i] = rng.Float64()*255 - 128
			y[i] = rng.Float64()*255 - 128
			sum[i] = a*x[i] + b*y[i]
		}
		FDCT8x8(&x, &dx)
		FDCT8x8(&y, &dy)
		FDCT8x8(&sum, &dsum)
		for i := range dsum {
			want := a*dx[i] + b*dy[i]
			if math.Abs(dsum[i]-want) > 1e-8 {
				t.Fatalf("trial %d coeff %d: got %v want %v", trial, i, dsum[i], want)
			}
		}
	}
}

func TestQuantizeRounding(t *testing.T) {
	q := FlatQuantTable(10)
	var coeffs [64]float64
	var b Block
	coeffs[0] = 14.9  // → 1
	coeffs[1] = 15.0  // → 2 (round half away from zero)
	coeffs[2] = -14.9 // → -1
	coeffs[3] = -15.0 // → -2
	quantizeBlock(&coeffs, &q, &b)
	want := []int32{1, 2, -1, -2}
	for i, w := range want {
		if b[i] != w {
			t.Errorf("b[%d] = %d, want %d", i, b[i], w)
		}
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	seen := map[int]bool{}
	for zz := 0; zz < 64; zz++ {
		nat := Zigzag(zz)
		if nat < 0 || nat > 63 || seen[nat] {
			t.Fatalf("zigzag[%d] = %d invalid or duplicate", zz, nat)
		}
		seen[nat] = true
		if Unzigzag(nat) != zz {
			t.Fatalf("unzigzag(zigzag(%d)) = %d", zz, Unzigzag(nat))
		}
	}
	// Spot-check the canonical start of the scan: DC, then (0,1), (1,0)...
	if Zigzag(0) != 0 || Zigzag(1) != 1 || Zigzag(2) != 8 || Zigzag(3) != 16 {
		t.Error("zigzag scan order start is wrong")
	}
	if Zigzag(63) != 63 {
		t.Error("zigzag scan must end at the highest frequency")
	}
}

func TestStandardQuantTables(t *testing.T) {
	l50, c50 := StandardQuantTables(50)
	if l50 != stdLumaQuant {
		t.Error("quality 50 luma table is not the Annex-K table")
	}
	if c50 != stdChromaQuant {
		t.Error("quality 50 chroma table is not the Annex-K table")
	}
	l100, _ := StandardQuantTables(100)
	for i, v := range l100 {
		if v != 1 {
			t.Errorf("quality 100 entry %d = %d, want 1", i, v)
		}
	}
	// Higher quality must not increase any step size.
	prev, _ := StandardQuantTables(1)
	for q := 2; q <= 100; q++ {
		cur, _ := StandardQuantTables(q)
		for i := range cur {
			if cur[i] > prev[i] {
				t.Fatalf("quality %d entry %d grew: %d > %d", q, i, cur[i], prev[i])
			}
		}
		prev = cur
	}
	// Out-of-range values are clamped, not rejected.
	lo, _ := StandardQuantTables(-5)
	lo1, _ := StandardQuantTables(1)
	if lo != lo1 {
		t.Error("quality < 1 should clamp to 1")
	}
}

func TestColorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	maxErr := 0
	for i := 0; i < 5000; i++ {
		r, g, b := uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))
		y, cb, cr := RGBToYCbCr(r, g, b)
		r2, g2, b2 := YCbCrToRGB(y, cb, cr)
		for _, d := range []int{absInt(int(r) - int(r2)), absInt(int(g) - int(g2)), absInt(int(b) - int(b2))} {
			if d > maxErr {
				maxErr = d
			}
		}
	}
	// One quantization step of error in each direction is expected.
	if maxErr > 2 {
		t.Errorf("max RGB round-trip error %d, want <= 2", maxErr)
	}
}

func TestColorKnownValues(t *testing.T) {
	y, cb, cr := RGBToYCbCr(255, 255, 255)
	if y != 255 || cb != 128 || cr != 128 {
		t.Errorf("white = (%d,%d,%d), want (255,128,128)", y, cb, cr)
	}
	y, cb, cr = RGBToYCbCr(0, 0, 0)
	if y != 0 || cb != 128 || cr != 128 {
		t.Errorf("black = (%d,%d,%d), want (0,128,128)", y, cb, cr)
	}
	y, _, cr = RGBToYCbCr(255, 0, 0)
	if y != 76 || cr != 255 {
		t.Errorf("red = y%d cr%d, want y76 cr255", y, cr)
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
