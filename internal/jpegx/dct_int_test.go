package jpegx

import (
	"math"
	"math/rand"
	"testing"
)

// The fixed-point transforms are the production pixel path; the float matrix
// transforms in dct.go are the exact references they are pinned against.
// Contract: for any realizable block (a block that is the quantized forward
// transform of actual 8-bit samples — the only blocks a decoder meets),
// every fixed-point output sample is within ±1 of the float reference.

// realizableBlock builds a dequantized coefficient block by round-tripping
// random samples through the float forward path, plus the float-dequantized
// copy for the reference IDCT.
func realizableBlock(rng *rand.Rand, q *QuantTable, spread float64) (intCoeffs [64]int32, floatCoeffs [64]float64) {
	var samples, coeffs [64]float64
	for i := range samples {
		samples[i] = math.Round(rng.NormFloat64() * spread)
		if samples[i] > 127 {
			samples[i] = 127
		}
		if samples[i] < -128 {
			samples[i] = -128
		}
	}
	FDCT8x8(&samples, &coeffs)
	var b Block
	quantizeBlock(&coeffs, q, &b)
	dequantizeBlock(&b, q, &floatCoeffs)
	dequantizeBlockInt(&b, q, &intCoeffs)
	return intCoeffs, floatCoeffs
}

// TestIDCTIntVsFloat pins the full fixed-point IDCT to the exact float
// matrix IDCT on realizable blocks: every sample within ±1.
func TestIDCTIntVsFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	luma, chroma := StandardQuantTables(90)
	for _, q := range []*QuantTable{&luma, &chroma} {
		for trial := 0; trial < 500; trial++ {
			ic, fc := realizableBlock(rng, q, 20+float64(trial%5)*25)
			var got [64]int32
			IDCT8x8Int(&ic, &got)
			var want [64]float64
			IDCT8x8(&fc, &want)
			for i := range want {
				if d := math.Abs(float64(got[i])*0.125 - want[i]); d > 1 {
					t.Fatalf("trial %d sample %d: int %v (/8 = %v) vs float %v (|Δ| = %.3f)",
						trial, i, got[i], float64(got[i])*0.125, want[i], d)
				}
			}
		}
	}
}

// TestFDCTIntVsFloat pins the fixed-point forward path (FDCT + 8×-scaled
// quantization) to the float one: quantized coefficients within ±1, and the
// overwhelming majority identical (only rounding-boundary values may differ).
func TestFDCTIntVsFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	luma, _ := StandardQuantTables(90)
	var off, total int
	for trial := 0; trial < 500; trial++ {
		var fsamples, fcoeffs [64]float64
		var isamples, icoeffs [64]int32
		for i := range fsamples {
			v := math.Round(rng.NormFloat64() * 45)
			if v > 127 {
				v = 127
			}
			if v < -128 {
				v = -128
			}
			fsamples[i] = v
			isamples[i] = int32(v)
		}
		var fq, iq Block
		FDCT8x8(&fsamples, &fcoeffs)
		quantizeBlock(&fcoeffs, &luma, &fq)
		FDCT8x8Int(&isamples, &icoeffs)
		quantizeBlockInt(&icoeffs, &luma, &iq)
		for i := range fq {
			d := fq[i] - iq[i]
			if d < -1 || d > 1 {
				t.Fatalf("trial %d coeff %d: float %d vs int %d", trial, i, fq[i], iq[i])
			}
			if d != 0 {
				off++
			}
			total++
		}
	}
	if off*100 > total*2 {
		t.Errorf("%d/%d quantized coefficients differ (>2%%) — fixed-point forward path too loose", off, total)
	}
}

// TestIDCTScaledMatchesBoxAverage pins each scaled kernel to its definition:
// the n×n output equals the box average of the full float reconstruction's
// (8/n)² sample groups, within ±1.
func TestIDCTScaledMatchesBoxAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	luma, _ := StandardQuantTables(90)
	for _, n := range []int{4, 2, 1} {
		group := 8 / n
		for trial := 0; trial < 300; trial++ {
			ic, fc := realizableBlock(rng, &luma, 45)
			var got [64]int32
			IDCTScaledInt(&ic, &got, n)
			var full [64]float64
			IDCT8x8(&fc, &full)
			for by := 0; by < n; by++ {
				for bx := 0; bx < n; bx++ {
					var sum float64
					for y := by * group; y < (by+1)*group; y++ {
						for x := bx * group; x < (bx+1)*group; x++ {
							sum += full[y*8+x]
						}
					}
					want := sum / float64(group*group)
					if d := math.Abs(float64(got[by*n+bx])*0.125 - want); d > 1 {
						t.Fatalf("n=%d trial %d (%d,%d): scaled %v vs box average %v (|Δ| = %.3f)",
							n, trial, bx, by, float64(got[by*n+bx])*0.125, want, d)
					}
				}
			}
		}
	}
}

// TestToPlanarScaledDims checks the scaled conversion's geometry across odd
// sizes with subsampled chroma, and that unsupported denominators fail.
func TestToPlanarScaledDims(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, tc := range []struct{ w, h int }{{129, 97}, {64, 48}, {720, 481}} {
		im := randomCoeffImage(rng, tc.w, tc.h, false, Sub420)
		for _, denom := range []int{2, 4, 8} {
			out, err := im.ToPlanarScaled(denom)
			if err != nil {
				t.Fatal(err)
			}
			wantW := (tc.w + denom - 1) / denom
			wantH := (tc.h + denom - 1) / denom
			if out.Width != wantW || out.Height != wantH {
				t.Fatalf("%dx%d denom %d: got %dx%d, want %dx%d",
					tc.w, tc.h, denom, out.Width, out.Height, wantW, wantH)
			}
		}
		if _, err := im.ToPlanarScaled(3); err == nil {
			t.Fatal("denom 3 accepted")
		}
	}
}

// TestToPlanarScaledApproximatesFullRes checks quality, not just shape: a
// scaled plane must stay close to the box-downsampled full-resolution plane.
// The two differ only in where the chroma upsample happens relative to the
// box average, so the comparison uses a smooth image — on coefficient noise
// those two operations don't commute and the bound would be meaningless.
func TestToPlanarScaledApproximatesFullRes(t *testing.T) {
	pix := NewPlanarImage(160, 120, 3)
	for ci := range pix.Planes {
		for y := 0; y < 120; y++ {
			for x := 0; x < 160; x++ {
				pix.Planes[ci][y*160+x] = 128 +
					70*math.Sin(float64(x)/17+float64(ci))*
						math.Cos(float64(y)/13-float64(ci))
			}
		}
	}
	im, err := pix.ToCoeffs(90, Sub420)
	if err != nil {
		t.Fatal(err)
	}
	full := im.ToPlanar()
	for _, denom := range []int{2, 4} {
		scaled, err := im.ToPlanarScaled(denom)
		if err != nil {
			t.Fatal(err)
		}
		for ci := range scaled.Planes {
			var se, n float64
			for y := 0; y < scaled.Height; y++ {
				for x := 0; x < scaled.Width; x++ {
					var sum float64
					var cnt int
					for yy := y * denom; yy < (y+1)*denom && yy < full.Height; yy++ {
						for xx := x * denom; xx < (x+1)*denom && xx < full.Width; xx++ {
							sum += full.Planes[ci][yy*full.Width+xx]
							cnt++
						}
					}
					d := scaled.Planes[ci][y*scaled.Width+x] - sum/float64(cnt)
					se += d * d
					n++
				}
			}
			if rmse := math.Sqrt(se / n); rmse > 4 {
				t.Errorf("denom %d plane %d: RMSE %.2f vs box-downsampled full res", denom, ci, rmse)
			}
		}
	}
}

// FuzzIDCTFixedVsFloat fuzzes the ±1 contract over quant quality and sample
// statistics. Run with `go test -fuzz=FuzzIDCTFixedVsFloat ./internal/jpegx`.
func FuzzIDCTFixedVsFloat(f *testing.F) {
	f.Add(int64(1), uint8(90), uint8(40))
	f.Add(int64(2), uint8(50), uint8(120))
	f.Add(int64(3), uint8(99), uint8(10))
	f.Fuzz(func(t *testing.T, seed int64, quality, spread uint8) {
		q := int(quality)
		if q < 1 {
			q = 1
		}
		if q > 100 {
			q = 100
		}
		luma, _ := StandardQuantTables(q)
		rng := rand.New(rand.NewSource(seed))
		ic, fc := realizableBlock(rng, &luma, 1+float64(spread))
		var got [64]int32
		IDCT8x8Int(&ic, &got)
		var want [64]float64
		IDCT8x8(&fc, &want)
		for i := range want {
			if d := math.Abs(float64(got[i])*0.125 - want[i]); d > 1 {
				t.Fatalf("sample %d: int/8 = %v vs float %v (|Δ| = %.3f)",
					i, float64(got[i])*0.125, want[i], d)
			}
		}
		for _, n := range []int{4, 2, 1} {
			var scaled [64]int32
			IDCTScaledInt(&ic, &scaled, n)
			group := 8 / n
			for by := 0; by < n; by++ {
				for bx := 0; bx < n; bx++ {
					var sum float64
					for y := by * group; y < (by+1)*group; y++ {
						for x := bx * group; x < (bx+1)*group; x++ {
							sum += want[y*8+x]
						}
					}
					avg := sum / float64(group*group)
					if d := math.Abs(float64(scaled[by*n+bx])*0.125 - avg); d > 1 {
						t.Fatalf("n=%d (%d,%d): scaled/8 = %v vs box average %v",
							n, bx, by, float64(scaled[by*n+bx])*0.125, avg)
					}
				}
			}
		}
	})
}
