package jpegx

// JFIF full-range color conversion between RGB and YCbCr (ITU-R BT.601
// primaries, as required by JFIF). All channels use the full [0, 255] range;
// Cb and Cr are centered on 128.

// RGBToYCbCr converts one 8-bit RGB triple to full-range YCbCr.
func RGBToYCbCr(r, g, b uint8) (y, cb, cr uint8) {
	rf, gf, bf := float64(r), float64(g), float64(b)
	yf := 0.299*rf + 0.587*gf + 0.114*bf
	cbf := 128 - 0.168735892*rf - 0.331264108*gf + 0.5*bf
	crf := 128 + 0.5*rf - 0.418687589*gf - 0.081312411*bf
	return clamp8(yf), clamp8(cbf), clamp8(crf)
}

// YCbCrToRGB converts one full-range YCbCr triple to 8-bit RGB.
func YCbCrToRGB(y, cb, cr uint8) (r, g, b uint8) {
	yf := float64(y)
	cbf := float64(cb) - 128
	crf := float64(cr) - 128
	rf := yf + 1.402*crf
	gf := yf - 0.344136286*cbf - 0.714136286*crf
	bf := yf + 1.772*cbf
	return clamp8(rf), clamp8(gf), clamp8(bf)
}

func clamp8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}

func clampInt8(v int32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
