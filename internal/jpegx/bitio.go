package jpegx

import (
	"io"
	"math/bits"
)

// Entropy-coded-segment bit I/O. JPEG writes bits MSB-first and byte-stuffs:
// every 0xFF data byte is followed by a 0x00 so that it cannot be mistaken
// for a marker. The reader treats an unstuffed 0xFF as the start of a marker
// (restart markers are consumed by the decoder between MCU runs).
//
// The whole stream is in memory (see DecodeBytes), so the reader is a slice
// cursor refilling a 64-bit accumulator in batches instead of pulling single
// bytes through an io interface; after a refill at least 57 bits are
// buffered, so any Huffman code (≤ 16 bits) plus its value bits decode
// without touching the slice again.

// byteCursor is a position-tracked view over a complete in-memory JPEG
// stream. Header parsing and entropy decoding share one cursor, so the bit
// reader's batched refills and the marker scanner stay in step.
type byteCursor struct {
	data []byte
	pos  int
}

// reset points the cursor at a new stream; reset(nil) drops the reference so
// a pooled decoder does not pin the previous input.
func (b *byteCursor) reset(data []byte) {
	b.data, b.pos = data, 0
}

func (b *byteCursor) ReadByte() (byte, error) {
	if b.pos >= len(b.data) {
		return 0, io.EOF
	}
	c := b.data[b.pos]
	b.pos++
	return c, nil
}

func (b *byteCursor) readUint16() (uint16, error) {
	if b.pos+2 > len(b.data) {
		b.pos = len(b.data)
		return 0, io.EOF
	}
	v := uint16(b.data[b.pos])<<8 | uint16(b.data[b.pos+1])
	b.pos += 2
	return v, nil
}

func (b *byteCursor) readFull(p []byte) error {
	n := copy(p, b.data[b.pos:])
	b.pos += n
	if n < len(p) {
		return io.ErrUnexpectedEOF
	}
	return nil
}

// bitReader reads MSB-first bits from an entropy-coded segment.
type bitReader struct {
	src    *byteCursor
	acc    uint64 // bit accumulator, MSB-aligned in the low `n` bits
	n      uint   // number of valid bits in acc
	marker byte   // pending marker encountered mid-stream (0 if none)

	// synthBits counts pad bits synthesized after a marker or EOF was
	// reached (T.81 F.2.2.5). Legitimate decodes need at most a few bytes
	// of padding; a large count means the scan ran out of data and the
	// decoder is hallucinating blocks from 1-bits — a corrupted or
	// truncated stream that must be abandoned rather than slowly "decoded".
	synthBits int
}

// reset discards buffered bits; called at restart markers and scan starts.
// The source cursor's position is untouched: once a marker is pending the
// reader never consumes past it, so nothing buffered belongs to the stream
// beyond the marker.
func (br *bitReader) reset() {
	br.acc, br.n = 0, 0
	br.marker = 0
	br.synthBits = 0
}

// attach points the reader at src and discards all buffered state; the
// pooled decoder reuses one bitReader across scans and images.
func (br *bitReader) attach(src *byteCursor) {
	br.src = src
	br.reset()
}

// exhausted reports that the reader has been fabricating data well beyond
// any legitimate byte-alignment padding.
func (br *bitReader) exhausted() bool { return br.synthBits > 512 }

// fill tops the accumulator up to at least 57 valid bits, handling byte
// stuffing. It cannot fail: at EOF or a marker the accumulator is padded
// with synthetic 1-bits (T.81 F.2.2.5) and the exhausted() guard catches
// streams that decode far into the padding.
func (br *bitReader) fill() {
	if br.marker == 0 {
		// Fast path: plain data bytes, one bounds check and one 0xFF
		// compare per byte.
		d := br.src
		data, pos := d.data, d.pos
		for br.n <= 56 && pos < len(data) {
			c := data[pos]
			if c == 0xFF {
				break
			}
			pos++
			br.acc = br.acc<<8 | uint64(c)
			br.n += 8
		}
		d.pos = pos
	}
	for br.n <= 56 {
		if br.marker != 0 {
			br.acc = br.acc<<8 | 0xFF
			br.n += 8
			br.synthBits += 8
			continue
		}
		d := br.src
		if d.pos >= len(d.data) {
			br.marker = 0xD9 // treat EOF as EOI for padding purposes
			continue
		}
		c := d.data[d.pos]
		d.pos++
		if c != 0xFF {
			br.acc = br.acc<<8 | uint64(c)
			br.n += 8
			continue
		}
		// 0xFF: a stuffed data byte, fill byte(s), or a marker.
		var c2 byte
		if d.pos >= len(d.data) {
			br.marker = 0xD9
			continue
		}
		c2 = d.data[d.pos]
		d.pos++
		if c2 == 0xFF {
			// Fill bytes before a marker; keep scanning.
			for c2 == 0xFF {
				if d.pos >= len(d.data) {
					br.marker = 0xD9
					c2 = 0
					break
				}
				c2 = d.data[d.pos]
				d.pos++
			}
		}
		if c2 != 0x00 {
			br.marker = c2
			continue
		}
		br.acc = br.acc<<8 | 0xFF
		br.n += 8
	}
}

// readBit returns the next bit (0 or 1).
func (br *bitReader) readBit() int {
	if br.n == 0 {
		br.fill()
	}
	br.n--
	return int(br.acc>>br.n) & 1
}

// readBits returns the next n bits as an unsigned value, MSB first.
// n must be ≤ 16 (a fill guarantees ≥ 57 buffered bits); callers validate
// symbol-derived widths before requesting the bits.
func (br *bitReader) readBits(n uint) int32 {
	if n == 0 {
		return 0
	}
	if br.n < n {
		br.fill()
	}
	br.n -= n
	return int32(br.acc>>br.n) & (1<<n - 1)
}

// receiveExtend reads an s-bit magnitude and applies the EXTEND procedure of
// T.81 F.2.2.1 (s ≤ 16), fused so the hot block loop pays one fill check.
func (br *bitReader) receiveExtend(s uint) int32 {
	if s == 0 {
		return 0
	}
	if br.n < s {
		br.fill()
	}
	br.n -= s
	v := int32(br.acc>>br.n) & (1<<s - 1)
	if v < 1<<(s-1) {
		v += -1<<s + 1
	}
	return v
}

// peek8 returns the next 8 bits without consuming them.
func (br *bitReader) peek8() uint32 {
	if br.n < 8 {
		br.fill()
	}
	return uint32(br.acc>>(br.n-8)) & 0xFF
}

func (br *bitReader) consume(n uint) {
	br.n -= n
}

// pendingMarker reports a marker byte hit during entropy decoding (0 if
// none). The decoder checks this at restart boundaries.
func (br *bitReader) pendingMarker() byte { return br.marker }

// extend implements the EXTEND procedure of T.81 F.2.2.1: map the n-bit
// magnitude v to its signed value.
func extend(v int32, n uint) int32 {
	if n == 0 {
		return 0
	}
	if v < 1<<(n-1) {
		return v - (1 << n) + 1
	}
	return v
}

// bitWriter writes MSB-first bits with 0xFF byte stuffing, draining a 64-bit
// accumulator into an append buffer that is flushed to w in 4 KiB chunks.
type bitWriter struct {
	w   io.Writer
	acc uint64
	n   uint
	buf []byte
	err error
}

func newBitWriter(w io.Writer) *bitWriter {
	return &bitWriter{w: w, buf: make([]byte, 0, 4096)}
}

// reset re-aims the writer at w, keeping the chunk buffer; the progressive
// encoder reuses one writer across its ten scans.
func (bw *bitWriter) reset(w io.Writer) {
	bw.w = w
	bw.acc, bw.n = 0, 0
	bw.err = nil
	if bw.buf == nil {
		bw.buf = make([]byte, 0, 4096)
	} else {
		bw.buf = bw.buf[:0]
	}
}

// writeBits emits the low n bits of v, MSB first. n ≤ 32, so a fused
// Huffman-code-plus-value emission (≤ 16 + 16 bits) is a single call. Bits
// accumulate until 32 are pending, then drain four bytes at once: a SWAR
// test finds the (rare) 0xFF bytes needing stuffing, so the common case is
// a single 4-byte append per drain instead of per-byte stuffing checks.
func (bw *bitWriter) writeBits(v uint32, n uint) {
	if bw.err != nil {
		return
	}
	bw.acc = bw.acc<<n | uint64(v)&(1<<n-1)
	bw.n += n
	if bw.n < 32 {
		return
	}
	bw.n -= 32
	w := uint32(bw.acc >> bw.n)
	// Any byte equal to 0xFF? Equivalently: any zero byte in ^w.
	if x := ^w; (x-0x01010101)&^x&0x80808080 == 0 {
		bw.buf = append(bw.buf, byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
	} else {
		for shift := 24; shift >= 0; shift -= 8 {
			b := byte(w >> shift)
			bw.buf = append(bw.buf, b)
			if b == 0xFF {
				bw.buf = append(bw.buf, 0x00)
			}
		}
	}
	if len(bw.buf) >= 4096 {
		bw.flushBuf()
	}
}

func (bw *bitWriter) flushBuf() {
	if bw.err != nil || len(bw.buf) == 0 {
		return
	}
	_, bw.err = bw.w.Write(bw.buf)
	bw.buf = bw.buf[:0]
}

// pad flushes any partial byte, padding with 1-bits as required before a
// marker, and drains the internal buffer.
func (bw *bitWriter) pad() error {
	if pad := (8 - bw.n%8) % 8; pad > 0 {
		bw.writeBits(1<<pad-1, uint(pad))
	}
	// Drain the accumulated whole bytes (writeBits keeps up to 31 bits).
	for bw.n >= 8 {
		bw.n -= 8
		b := byte(bw.acc >> bw.n)
		bw.buf = append(bw.buf, b)
		if b == 0xFF {
			bw.buf = append(bw.buf, 0x00)
		}
	}
	bw.flushBuf()
	return bw.err
}

// magnitude returns the JPEG "size" category of v: the number of bits needed
// to represent |v|, and the value bits to emit after the Huffman symbol.
func magnitude(v int32) (nbits uint, val uint32) {
	if v == 0 {
		return 0, 0
	}
	u := uint32(v)
	if v < 0 {
		u = uint32(-v)
	}
	nbits = uint(bits.Len32(u))
	if v < 0 {
		// One's complement representation of negative values.
		return nbits, uint32(v) + (1<<nbits - 1)
	}
	return nbits, uint32(v)
}
