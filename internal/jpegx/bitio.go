package jpegx

import (
	"errors"
	"fmt"
	"io"
)

// Entropy-coded-segment bit I/O. JPEG writes bits MSB-first and byte-stuffs:
// every 0xFF data byte is followed by a 0x00 so that it cannot be mistaken
// for a marker. The reader treats an unstuffed 0xFF as the start of a marker
// (restart markers are consumed by the decoder between MCU runs).

var errMissingFF00 = errors.New("jpegx: missing 0x00 after 0xff in entropy-coded segment")

// bitReader reads MSB-first bits from an entropy-coded segment.
type bitReader struct {
	r      io.ByteReader
	acc    uint32 // bit accumulator, MSB-aligned in the low `n` bits
	n      uint   // number of valid bits in acc
	marker byte   // pending marker encountered mid-stream (0 if none)

	// synthBits counts pad bits synthesized after a marker or EOF was
	// reached (T.81 F.2.2.5). Legitimate decodes need at most a few bytes
	// of padding; a large count means the scan ran out of data and the
	// decoder is hallucinating blocks from 1-bits — a corrupted or
	// truncated stream that must be abandoned rather than slowly "decoded".
	synthBits int
}

func newBitReader(r io.ByteReader) *bitReader {
	return &bitReader{r: r}
}

// reset discards buffered bits; called at restart markers and scan starts.
func (br *bitReader) reset() {
	br.acc, br.n = 0, 0
	br.marker = 0
	br.synthBits = 0
}

// attach points the reader at src and discards all buffered state; the
// pooled decoder reuses one bitReader across scans and images.
func (br *bitReader) attach(src io.ByteReader) {
	br.r = src
	br.reset()
}

// exhausted reports that the reader has been fabricating data well beyond
// any legitimate byte-alignment padding.
func (br *bitReader) exhausted() bool { return br.synthBits > 512 }

// fill ensures at least one bit is available, handling byte stuffing.
func (br *bitReader) fill() error {
	for br.n <= 24 {
		if br.marker != 0 {
			// Per T.81 F.2.2.5 the decoder pads with 1-bits once a marker is
			// reached; any further needed bits are synthetic ones.
			br.acc = br.acc<<8 | 0xFF
			br.n += 8
			br.synthBits += 8
			continue
		}
		c, err := br.r.ReadByte()
		if err != nil {
			if err == io.EOF {
				br.marker = 0xD9 // treat EOF as EOI for padding purposes
				continue
			}
			return err
		}
		if c == 0xFF {
			c2, err := br.r.ReadByte()
			if err != nil {
				if err == io.EOF {
					br.marker = 0xD9
					continue
				}
				return err
			}
			if c2 == 0x00 {
				br.acc = br.acc<<8 | 0xFF
				br.n += 8
				continue
			}
			if c2 == 0xFF {
				// Fill bytes before a marker; keep scanning.
				for c2 == 0xFF {
					c2, err = br.r.ReadByte()
					if err != nil {
						br.marker = 0xD9
						break
					}
				}
			}
			if c2 != 0x00 {
				br.marker = c2
				continue
			}
			br.acc = br.acc<<8 | 0xFF
			br.n += 8
			continue
		}
		br.acc = br.acc<<8 | uint32(c)
		br.n += 8
	}
	return nil
}

// readBit returns the next bit (0 or 1).
func (br *bitReader) readBit() (int, error) {
	if br.n == 0 {
		if err := br.fill(); err != nil {
			return 0, err
		}
	}
	br.n--
	return int(br.acc>>br.n) & 1, nil
}

// readBits returns the next n bits as an unsigned value, MSB first. JPEG
// never reads more than 16 value bits at once; larger requests can only
// come from corrupted Huffman tables (e.g. a DC "magnitude" symbol of 49)
// and must fail rather than outrun the 32-bit accumulator.
func (br *bitReader) readBits(n uint) (int32, error) {
	if n == 0 {
		return 0, nil
	}
	if n > 16 {
		return 0, fmt.Errorf("jpegx: invalid %d-bit read from entropy-coded segment", n)
	}
	for br.n < n {
		if err := br.fill(); err != nil {
			return 0, err
		}
	}
	br.n -= n
	return int32(br.acc>>br.n) & ((1 << n) - 1), nil
}

// peekBits returns up to n bits without consuming them (n ≤ 16).
func (br *bitReader) peekBits(n uint) (int32, error) {
	for br.n < n {
		if err := br.fill(); err != nil {
			return 0, err
		}
	}
	return int32(br.acc>>(br.n-n)) & ((1 << n) - 1), nil
}

func (br *bitReader) consume(n uint) {
	br.n -= n
}

// pendingMarker reports a marker byte hit during entropy decoding (0 if
// none). The decoder checks this at restart boundaries.
func (br *bitReader) pendingMarker() byte { return br.marker }

// extend implements the EXTEND procedure of T.81 F.2.2.1: map the n-bit
// magnitude v to its signed value.
func extend(v int32, n uint) int32 {
	if n == 0 {
		return 0
	}
	if v < 1<<(n-1) {
		return v - (1 << n) + 1
	}
	return v
}

// bitWriter writes MSB-first bits with 0xFF byte stuffing.
type bitWriter struct {
	w   io.Writer
	acc uint32
	n   uint
	buf []byte
	err error
}

func newBitWriter(w io.Writer) *bitWriter {
	return &bitWriter{w: w, buf: make([]byte, 0, 4096)}
}

// writeBits emits the low n bits of v, MSB first. n ≤ 24.
func (bw *bitWriter) writeBits(v uint32, n uint) {
	if bw.err != nil || n == 0 {
		return
	}
	bw.acc = bw.acc<<n | (v & ((1 << n) - 1))
	bw.n += n
	for bw.n >= 8 {
		bw.n -= 8
		b := byte(bw.acc >> bw.n)
		bw.buf = append(bw.buf, b)
		if b == 0xFF {
			bw.buf = append(bw.buf, 0x00)
		}
		if len(bw.buf) >= 4096 {
			bw.flushBuf()
		}
	}
}

func (bw *bitWriter) flushBuf() {
	if bw.err != nil || len(bw.buf) == 0 {
		return
	}
	_, bw.err = bw.w.Write(bw.buf)
	bw.buf = bw.buf[:0]
}

// pad flushes any partial byte, padding with 1-bits as required before a
// marker, and drains the internal buffer.
func (bw *bitWriter) pad() error {
	if bw.n > 0 {
		pad := uint(8 - bw.n%8)
		if pad < 8 {
			bw.writeBits((1<<pad)-1, pad)
		}
	}
	bw.flushBuf()
	return bw.err
}

// magnitude returns the JPEG "size" category of v: the number of bits needed
// to represent |v|, and the value bits to emit after the Huffman symbol.
func magnitude(v int32) (nbits uint, bits uint32) {
	if v == 0 {
		return 0, 0
	}
	a := v
	if a < 0 {
		a = -a
	}
	for a > 0 {
		nbits++
		a >>= 1
	}
	if v < 0 {
		// One's complement representation of negative values.
		return nbits, uint32(v + (1 << nbits) - 1)
	}
	return nbits, uint32(v)
}

// byteReaderCounter wraps an io.Reader as a counting io.ByteReader.
type byteReaderCounter struct {
	r   io.Reader
	buf [1]byte
	n   int64
}

// reset points the counter at a new stream, so a pooled decoder reuses the
// same wrapper across inputs.
func (b *byteReaderCounter) reset(r io.Reader) {
	b.r = r
	b.n = 0
}

func (b *byteReaderCounter) ReadByte() (byte, error) {
	_, err := io.ReadFull(b.r, b.buf[:])
	if err != nil {
		return 0, err
	}
	b.n++
	return b.buf[0], nil
}

func (b *byteReaderCounter) readUint16() (uint16, error) {
	hi, err := b.ReadByte()
	if err != nil {
		return 0, err
	}
	lo, err := b.ReadByte()
	if err != nil {
		return 0, err
	}
	return uint16(hi)<<8 | uint16(lo), nil
}

func (b *byteReaderCounter) readFull(p []byte) error {
	for i := range p {
		c, err := b.ReadByte()
		if err != nil {
			return fmt.Errorf("jpegx: truncated segment: %w", err)
		}
		p[i] = c
	}
	return nil
}
