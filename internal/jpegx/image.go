package jpegx

import (
	"errors"
	"fmt"
	"image"
	"image/color"
)

// Block is one 8×8 block of quantized DCT coefficients in natural
// (row-major) order. Block[0] is the DC coefficient.
type Block [64]int32

// Component holds the quantized DCT coefficients of one color component.
type Component struct {
	ID      byte // component identifier from the SOF segment (1=Y, 2=Cb, 3=Cr by convention)
	H, V    int  // horizontal and vertical sampling factors (1 or 2 here)
	TqIndex int  // index of the quantization table used by this component

	// BlocksX and BlocksY give the coefficient array dimensions in blocks.
	// They cover the full interleaved-MCU extent, which may exceed the
	// ceil(size/8) implied by the image dimensions when sampling factors
	// require padding.
	BlocksX, BlocksY int

	// Blocks is the row-major [BlocksY][BlocksX] coefficient array.
	Blocks []Block
}

// Block returns a pointer to the block at block coordinates (bx, by).
func (c *Component) Block(bx, by int) *Block {
	return &c.Blocks[by*c.BlocksX+bx]
}

// Clone returns a deep copy of the component.
func (c *Component) Clone() Component {
	d := *c
	d.Blocks = append([]Block(nil), c.Blocks...)
	return d
}

// MarkerSegment is a preserved non-structural marker (APPn or COM).
type MarkerSegment struct {
	Marker byte // e.g. 0xE0 for APP0, 0xFE for COM
	Data   []byte
}

// CoeffImage is a JPEG image in the quantized-DCT-coefficient domain: the
// representation produced after the quantization step of the encode pipeline
// and before entropy coding. It is the domain on which P3's splitter
// operates. A CoeffImage re-encodes to a JPEG byte stream without loss.
type CoeffImage struct {
	Width, Height int
	Components    []Component
	Quant         [4]*QuantTable // indexed by Component.TqIndex; nil if unused
	Progressive   bool           // decoded-from or encode-to progressive mode
	RestartIntvl  int            // restart interval in MCUs (0 = none)
	Markers       []MarkerSegment
}

// NumComponents returns the number of color components (1 or 3 here).
func (im *CoeffImage) NumComponents() int { return len(im.Components) }

// MaxSampling returns the maximum sampling factors across components.
func (im *CoeffImage) MaxSampling() (hMax, vMax int) {
	for i := range im.Components {
		if im.Components[i].H > hMax {
			hMax = im.Components[i].H
		}
		if im.Components[i].V > vMax {
			vMax = im.Components[i].V
		}
	}
	return hMax, vMax
}

// mcuDims returns the MCU grid dimensions.
func (im *CoeffImage) mcuDims() (mcusX, mcusY int) {
	hMax, vMax := im.MaxSampling()
	mcusX = (im.Width + 8*hMax - 1) / (8 * hMax)
	mcusY = (im.Height + 8*vMax - 1) / (8 * vMax)
	return mcusX, mcusY
}

// Clone returns a deep copy of the coefficient image.
func (im *CoeffImage) Clone() *CoeffImage {
	return im.cloneInto(nil, true)
}

// CloneInto deep-copies im into dst, reusing dst's component and block
// storage when its capacity suffices, and returns dst. CloneInto(nil) is
// Clone. The result shares no memory with im, so pooled callers can recycle
// dst across images without aliasing.
func (im *CoeffImage) CloneInto(dst *CoeffImage) *CoeffImage {
	return im.cloneInto(dst, true)
}

// CloneShapeInto is CloneInto without copying the coefficient contents: the
// result has im's geometry, sampling, quantization tables and markers, but
// its blocks hold unspecified (possibly stale) values. Callers that are
// about to overwrite every coefficient — the band split and reconstruction
// writers do — use it to skip the multi-megabyte block copy.
func (im *CoeffImage) CloneShapeInto(dst *CoeffImage) *CoeffImage {
	return im.cloneInto(dst, false)
}

func (im *CoeffImage) cloneInto(dst *CoeffImage, copyBlocks bool) *CoeffImage {
	if dst == nil {
		dst = &CoeffImage{}
	}
	if dst == im {
		return dst
	}
	prevComps := dst.Components
	*dst = CoeffImage{
		Width:        im.Width,
		Height:       im.Height,
		Progressive:  im.Progressive,
		RestartIntvl: im.RestartIntvl,
	}
	if cap(prevComps) >= len(im.Components) {
		dst.Components = prevComps[:len(im.Components)]
	} else {
		dst.Components = make([]Component, len(im.Components))
	}
	for i := range im.Components {
		src := &im.Components[i]
		d := &dst.Components[i]
		blocks := d.Blocks
		*d = *src
		switch {
		case cap(blocks) >= len(src.Blocks):
			d.Blocks = blocks[:len(src.Blocks)]
			if copyBlocks {
				copy(d.Blocks, src.Blocks)
			}
		case copyBlocks:
			d.Blocks = append([]Block(nil), src.Blocks...)
		default:
			d.Blocks = make([]Block, len(src.Blocks))
		}
	}
	for i, q := range im.Quant {
		if q != nil {
			qq := *q
			dst.Quant[i] = &qq
		}
	}
	for _, m := range im.Markers {
		dst.Markers = append(dst.Markers, MarkerSegment{Marker: m.Marker, Data: append([]byte(nil), m.Data...)})
	}
	return dst
}

// validate checks structural consistency before encoding.
func (im *CoeffImage) validate() error {
	if im.Width <= 0 || im.Height <= 0 {
		return fmt.Errorf("jpegx: invalid dimensions %dx%d", im.Width, im.Height)
	}
	if n := len(im.Components); n != 1 && n != 3 {
		return fmt.Errorf("jpegx: unsupported component count %d", n)
	}
	mcusX, mcusY := im.mcuDims()
	for i := range im.Components {
		c := &im.Components[i]
		if c.H < 1 || c.H > 2 || c.V < 1 || c.V > 2 {
			return fmt.Errorf("jpegx: component %d has unsupported sampling %dx%d", i, c.H, c.V)
		}
		if c.TqIndex < 0 || c.TqIndex > 3 || im.Quant[c.TqIndex] == nil {
			return fmt.Errorf("jpegx: component %d references missing quant table %d", i, c.TqIndex)
		}
		wantX, wantY := mcusX*c.H, mcusY*c.V
		if c.BlocksX != wantX || c.BlocksY != wantY {
			return fmt.Errorf("jpegx: component %d block dims %dx%d, want %dx%d", i, c.BlocksX, c.BlocksY, wantX, wantY)
		}
		if len(c.Blocks) != c.BlocksX*c.BlocksY {
			return fmt.Errorf("jpegx: component %d has %d blocks, want %d", i, len(c.Blocks), c.BlocksX*c.BlocksY)
		}
	}
	for i, q := range im.Quant {
		if q != nil {
			if err := q.validate(); err != nil {
				return fmt.Errorf("jpegx: table %d: %w", i, err)
			}
		}
	}
	return nil
}

// Subsampling identifies the chroma subsampling layout of a 3-component image.
type Subsampling int

// Supported chroma subsampling modes.
const (
	Sub444 Subsampling = iota // no subsampling
	Sub422                    // chroma halved horizontally
	Sub440                    // chroma halved vertically
	Sub420                    // chroma halved in both directions
)

func (s Subsampling) factors() (lumaH, lumaV int) {
	switch s {
	case Sub444:
		return 1, 1
	case Sub422:
		return 2, 1
	case Sub440:
		return 1, 2
	default:
		return 2, 2
	}
}

// String returns the conventional name, e.g. "4:2:0".
func (s Subsampling) String() string {
	switch s {
	case Sub444:
		return "4:4:4"
	case Sub422:
		return "4:2:2"
	case Sub440:
		return "4:4:0"
	case Sub420:
		return "4:2:0"
	}
	return fmt.Sprintf("Subsampling(%d)", int(s))
}

// DetectSubsampling reports the subsampling mode of a decoded image, or an
// error for layouts this package does not produce.
func (im *CoeffImage) DetectSubsampling() (Subsampling, error) {
	if len(im.Components) == 1 {
		return Sub444, nil
	}
	if len(im.Components) != 3 {
		return 0, fmt.Errorf("jpegx: %d components", len(im.Components))
	}
	y, cb, cr := &im.Components[0], &im.Components[1], &im.Components[2]
	if cb.H != 1 || cb.V != 1 || cr.H != 1 || cr.V != 1 {
		return 0, errors.New("jpegx: unsupported chroma sampling factors")
	}
	switch {
	case y.H == 1 && y.V == 1:
		return Sub444, nil
	case y.H == 2 && y.V == 1:
		return Sub422, nil
	case y.H == 1 && y.V == 2:
		return Sub440, nil
	case y.H == 2 && y.V == 2:
		return Sub420, nil
	}
	return 0, errors.New("jpegx: unsupported luma sampling factors")
}

// PlanarImage is a full-resolution planar image: Y alone (grayscale) or
// Y, Cb, Cr, each Width×Height (chroma already upsampled). Sample values are
// in [0, 255] stored as float64 so that linear PSP transforms and P3's
// pixel-domain reconstruction, which needs values outside [0,255] for the
// secret and correction images, compose without clipping.
type PlanarImage struct {
	Width, Height int
	Planes        [][]float64 // 1 or 3 planes, each Width*Height row-major
}

// NewPlanarImage allocates a planar image with n planes of w×h.
func NewPlanarImage(w, h, n int) *PlanarImage {
	p := &PlanarImage{Width: w, Height: h, Planes: make([][]float64, n)}
	for i := range p.Planes {
		p.Planes[i] = make([]float64, w*h)
	}
	return p
}

// Clone returns a deep copy.
func (p *PlanarImage) Clone() *PlanarImage {
	q := &PlanarImage{Width: p.Width, Height: p.Height, Planes: make([][]float64, len(p.Planes))}
	for i := range p.Planes {
		q.Planes[i] = append([]float64(nil), p.Planes[i]...)
	}
	return q
}

// Gray returns true if the image has a single plane.
func (p *PlanarImage) Gray() bool { return len(p.Planes) == 1 }

// ToImage converts to an 8-bit image.Image (Gray or RGBA), clamping samples.
func (p *PlanarImage) ToImage() image.Image {
	if p.Gray() {
		g := image.NewGray(image.Rect(0, 0, p.Width, p.Height))
		for i, v := range p.Planes[0] {
			g.Pix[i] = clamp8(v)
		}
		return g
	}
	rgba := image.NewRGBA(image.Rect(0, 0, p.Width, p.Height))
	for i := 0; i < p.Width*p.Height; i++ {
		r, g, b := YCbCrToRGB(clamp8(p.Planes[0][i]), clamp8(p.Planes[1][i]), clamp8(p.Planes[2][i]))
		rgba.Pix[4*i+0] = r
		rgba.Pix[4*i+1] = g
		rgba.Pix[4*i+2] = b
		rgba.Pix[4*i+3] = 255
	}
	return rgba
}

// FromImage converts an image.Image into a planar YCbCr (or grayscale for
// *image.Gray) image.
func FromImage(src image.Image) *PlanarImage {
	b := src.Bounds()
	w, h := b.Dx(), b.Dy()
	if g, ok := src.(*image.Gray); ok {
		p := NewPlanarImage(w, h, 1)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				p.Planes[0][y*w+x] = float64(g.GrayAt(b.Min.X+x, b.Min.Y+y).Y)
			}
		}
		return p
	}
	p := NewPlanarImage(w, h, 3)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r, g, bl, _ := src.At(b.Min.X+x, b.Min.Y+y).RGBA()
			yy, cb, cr := RGBToYCbCr(uint8(r>>8), uint8(g>>8), uint8(bl>>8))
			i := y*w + x
			p.Planes[0][i] = float64(yy)
			p.Planes[1][i] = float64(cb)
			p.Planes[2][i] = float64(cr)
		}
	}
	return p
}

// At returns the clamped 8-bit color at (x, y); used by tests.
func (p *PlanarImage) At(x, y int) color.Color {
	i := y*p.Width + x
	if p.Gray() {
		return color.Gray{Y: clamp8(p.Planes[0][i])}
	}
	r, g, b := YCbCrToRGB(clamp8(p.Planes[0][i]), clamp8(p.Planes[1][i]), clamp8(p.Planes[2][i]))
	return color.RGBA{R: r, G: g, B: b, A: 255}
}
