package jpegx

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"p3/internal/work"
)

// FormatError reports that the input is not a JPEG stream this codec
// understands.
type FormatError string

func (e FormatError) Error() string { return "jpegx: " + string(e) }

type decoder struct {
	r   *byteCursor
	img *CoeffImage

	dcTab [4]*huffDecoder
	acTab [4]*huffDecoder

	restartIntvl int
	progressive  bool
	sawSOF       bool
	scans        int
	eobRun       int32

	// tee, when non-nil, captures the P3 threshold split of the stream as it
	// decodes (see DecodeBytesSplit).
	tee *SplitCapture

	// pending holds a marker byte consumed by the entropy decoder that the
	// segment loop still needs to process.
	pending byte

	// s holds the reusable state (always non-nil): table storage, the bit
	// reader, and the per-scan buffers.
	s *DecoderScratch
}

// DecoderScratch is the reusable working set of DecodeInto: the Huffman
// decoding tables (with their fast LUTs), the entropy bit reader, and the
// per-scan prediction and scan-component buffers. The zero value is ready to
// use. A scratch must not be shared by concurrent decodes; pooled callers
// hand one scratch per in-flight decode.
type DecoderScratch struct {
	br     byteCursor
	bits   bitReader
	dcTab  [4]huffDecoder
	acTab  [4]huffDecoder
	spec   HuffSpec
	dcPred []int32
	scomps []scanComp
	dec    decoder
	inBuf  []byte // staging buffer for io.Reader inputs (DecodeInto)
}

// predBuf returns a zeroed []int32 of length n backed by the scratch.
func (s *DecoderScratch) predBuf(n int) []int32 {
	if cap(s.dcPred) < n {
		s.dcPred = make([]int32, n)
	}
	s.dcPred = s.dcPred[:n]
	clear(s.dcPred)
	return s.dcPred
}

// Decode parses a baseline or progressive JPEG stream into its quantized
// DCT coefficients. No dequantization or IDCT is performed; the result can
// be re-encoded losslessly with EncodeCoeffs.
func Decode(r io.Reader) (*CoeffImage, error) {
	return DecodeInto(r, nil, nil)
}

// DecodeBytes is Decode over an in-memory stream; the entropy decoder reads
// the slice directly with batched bit-reader refills instead of pulling
// bytes through an io interface. data is not retained or modified.
func DecodeBytes(data []byte) (*CoeffImage, error) {
	return DecodeBytesInto(data, nil, nil)
}

// DecodeInto is Decode reusing the coefficient storage of dst (the result of
// a previous decode, or nil) and the decoder state in s (Huffman LUTs, bit
// reader, scan buffers; nil allocates fresh state). The stream is buffered
// into the scratch and decoded via DecodeBytesInto; callers that already
// hold the bytes should call DecodeBytesInto directly and skip the copy.
func DecodeInto(r io.Reader, dst *CoeffImage, s *DecoderScratch) (*CoeffImage, error) {
	if s == nil {
		s = &DecoderScratch{}
	}
	buf := bytes.NewBuffer(s.inBuf[:0])
	if _, err := buf.ReadFrom(r); err != nil {
		return nil, fmt.Errorf("jpegx: reading input: %w", err)
	}
	s.inBuf = buf.Bytes()
	return DecodeBytesInto(s.inBuf, dst, s)
}

// DecodeBytesInto is DecodeBytes reusing dst's coefficient storage and the
// decoder state in s, like DecodeInto. A pooled caller decoding
// same-geometry photos through one scratch allocates almost nothing per
// image. The returned image is dst (allocated if nil); on error dst's
// contents are unspecified and must not be read, but dst and s may be
// reused for the next decode.
func DecodeBytesInto(data []byte, dst *CoeffImage, s *DecoderScratch) (*CoeffImage, error) {
	if dst == nil {
		dst = &CoeffImage{}
	}
	if s == nil {
		s = &DecoderScratch{}
	}
	resetForDecode(dst)
	s.br.reset(data)
	d := &s.dec
	*d = decoder{r: &s.br, img: dst, s: s}
	err := d.run()
	s.br.reset(nil) // drop the input reference so pooled scratch doesn't pin it
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// resetForDecode clears dst for a fresh decode while keeping its component
// and marker storage for reuse.
func resetForDecode(im *CoeffImage) {
	comps := im.Components
	markers := im.Markers
	*im = CoeffImage{}
	if comps != nil {
		im.Components = comps[:0]
	}
	if markers != nil {
		im.Markers = markers[:0]
	}
}

// DecodeToPlanar decodes a JPEG stream all the way to full-resolution
// planar pixels (dequantize, IDCT, chroma upsample).
func DecodeToPlanar(r io.Reader) (*PlanarImage, error) {
	im, err := Decode(r)
	if err != nil {
		return nil, err
	}
	return im.ToPlanar(), nil
}

// DecodeConfig returns the dimensions, component count and progressive flag
// without decoding entropy data.
func DecodeConfig(r io.Reader) (width, height, comps int, progressive bool, err error) {
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		return 0, 0, 0, false, fmt.Errorf("jpegx: reading input: %w", err)
	}
	return DecodeConfigBytes(buf.Bytes())
}

// DecodeConfigBytes is DecodeConfig over an in-memory stream.
func DecodeConfigBytes(data []byte) (width, height, comps int, progressive bool, err error) {
	s := &DecoderScratch{}
	s.br.reset(data)
	d := &s.dec
	*d = decoder{r: &s.br, img: &CoeffImage{}, s: s}
	err = d.runUntilSOF()
	if err != nil {
		return 0, 0, 0, false, err
	}
	return d.img.Width, d.img.Height, len(d.img.Components), d.progressive, nil
}

func (d *decoder) run() error {
	if err := d.checkSOI(); err != nil {
		return err
	}
	for {
		m, err := d.nextMarker()
		if err != nil {
			return err
		}
		switch {
		case m == mEOI:
			if !d.sawSOF {
				return FormatError("EOI before SOF")
			}
			return nil
		case m == mSOF0 || m == mSOF1 || m == mSOF2:
			if err := d.parseSOF(m); err != nil {
				return err
			}
		case m == mDQT:
			if err := d.parseDQT(); err != nil {
				return err
			}
		case m == mDHT:
			if err := d.parseDHT(); err != nil {
				return err
			}
		case m == mDRI:
			if err := d.parseDRI(); err != nil {
				return err
			}
		case m == mSOS:
			if err := d.parseAndDecodeScan(); err != nil {
				return err
			}
		case isAPP(m) || m == mCOM:
			if err := d.parseAppOrCom(m); err != nil {
				return err
			}
		case isRST(m):
			return FormatError("unexpected RST marker between segments")
		case m == 0x01 || m == mSOI:
			return FormatError(fmt.Sprintf("unexpected marker 0x%02x", m))
		default:
			// Unknown segment with a length field: skip it.
			if err := d.skipSegment(); err != nil {
				return err
			}
		}
	}
}

func (d *decoder) runUntilSOF() error {
	if err := d.checkSOI(); err != nil {
		return err
	}
	for {
		m, err := d.nextMarker()
		if err != nil {
			return err
		}
		switch {
		case m == mSOF0 || m == mSOF1 || m == mSOF2:
			return d.parseSOF(m)
		case m == mEOI || m == mSOS:
			return FormatError("missing SOF")
		case isAPP(m) || m == mCOM:
			if err := d.parseAppOrCom(m); err != nil {
				return err
			}
		default:
			if err := d.skipSegment(); err != nil {
				return err
			}
		}
	}
}

func (d *decoder) checkSOI() error {
	b0, err := d.r.ReadByte()
	if err != nil {
		return fmt.Errorf("jpegx: reading SOI: %w", err)
	}
	b1, err := d.r.ReadByte()
	if err != nil {
		return fmt.Errorf("jpegx: reading SOI: %w", err)
	}
	if b0 != 0xFF || b1 != mSOI {
		return FormatError("missing SOI marker")
	}
	return nil
}

// nextMarker scans forward to the next marker byte.
func (d *decoder) nextMarker() (byte, error) {
	if d.pending != 0 {
		m := d.pending
		d.pending = 0
		return m, nil
	}
	c, err := d.r.ReadByte()
	if err != nil {
		return 0, fmt.Errorf("jpegx: scanning for marker: %w", err)
	}
	for {
		if c != 0xFF {
			return 0, FormatError(fmt.Sprintf("expected marker, found 0x%02x", c))
		}
		m, err := d.r.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("jpegx: scanning for marker: %w", err)
		}
		if m == 0xFF { // fill byte
			c = m
			continue
		}
		if m == 0x00 {
			return 0, FormatError("stuffed byte outside entropy-coded segment")
		}
		return m, nil
	}
}

func (d *decoder) segmentLength() (int, error) {
	n, err := d.r.readUint16()
	if err != nil {
		return 0, fmt.Errorf("jpegx: reading segment length: %w", err)
	}
	if n < 2 {
		return 0, FormatError("segment length < 2")
	}
	return int(n) - 2, nil
}

func (d *decoder) skipSegment() error {
	n, err := d.segmentLength()
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if _, err := d.r.ReadByte(); err != nil {
			return fmt.Errorf("jpegx: skipping segment: %w", err)
		}
	}
	return nil
}

func (d *decoder) parseAppOrCom(m byte) error {
	n, err := d.segmentLength()
	if err != nil {
		return err
	}
	data := make([]byte, n)
	if err := d.r.readFull(data); err != nil {
		return err
	}
	d.img.Markers = append(d.img.Markers, MarkerSegment{Marker: m, Data: data})
	return nil
}

func (d *decoder) parseDQT() error {
	n, err := d.segmentLength()
	if err != nil {
		return err
	}
	for n > 0 {
		pqTq, err := d.r.ReadByte()
		if err != nil {
			return err
		}
		n--
		pq, tq := pqTq>>4, pqTq&0x0F
		if tq > 3 {
			return FormatError("quant table index > 3")
		}
		var t QuantTable
		switch pq {
		case 0:
			buf := make([]byte, 64)
			if err := d.r.readFull(buf); err != nil {
				return err
			}
			n -= 64
			for zz, v := range buf {
				t[zigzag[zz]] = uint16(v)
			}
		case 1:
			buf := make([]byte, 128)
			if err := d.r.readFull(buf); err != nil {
				return err
			}
			n -= 128
			for zz := 0; zz < 64; zz++ {
				t[zigzag[zz]] = uint16(buf[2*zz])<<8 | uint16(buf[2*zz+1])
			}
		default:
			return FormatError("bad quant table precision")
		}
		if err := t.validate(); err != nil {
			return err
		}
		d.img.Quant[tq] = &t
	}
	if n != 0 {
		return FormatError("DQT length mismatch")
	}
	return nil
}

func (d *decoder) parseDHT() error {
	n, err := d.segmentLength()
	if err != nil {
		return err
	}
	for n > 0 {
		tcTh, err := d.r.ReadByte()
		if err != nil {
			return err
		}
		n--
		tc, th := tcTh>>4, tcTh&0x0F
		if tc > 1 || th > 3 {
			return FormatError("bad huffman table class/index")
		}
		spec := &d.s.spec
		if err := d.r.readFull(spec.Counts[:]); err != nil {
			return err
		}
		n -= 16
		ns := spec.numSymbols()
		if cap(spec.Symbols) >= ns {
			spec.Symbols = spec.Symbols[:ns]
		} else {
			spec.Symbols = make([]byte, ns)
		}
		if err := d.r.readFull(spec.Symbols); err != nil {
			return err
		}
		n -= ns
		// Build the table in place in the scratch slot. A decoder's table
		// pointers start nil every decode, so stale tables from a previous
		// image are never visible unless this stream redefines them.
		var h *huffDecoder
		if tc == 0 {
			h = &d.s.dcTab[th]
		} else {
			h = &d.s.acTab[th]
		}
		if err := h.init(spec); err != nil {
			return err
		}
		if tc == 0 {
			d.dcTab[th] = h
		} else {
			d.acTab[th] = h
		}
	}
	if n != 0 {
		return FormatError("DHT length mismatch")
	}
	return nil
}

func (d *decoder) parseDRI() error {
	n, err := d.segmentLength()
	if err != nil {
		return err
	}
	if n != 2 {
		return FormatError("DRI length != 4")
	}
	ri, err := d.r.readUint16()
	if err != nil {
		return err
	}
	d.restartIntvl = int(ri)
	d.img.RestartIntvl = int(ri)
	return nil
}

func (d *decoder) parseSOF(marker byte) error {
	if d.sawSOF {
		return FormatError("multiple SOF segments")
	}
	d.progressive = marker == mSOF2
	d.img.Progressive = d.progressive
	n, err := d.segmentLength()
	if err != nil {
		return err
	}
	if n < 6 {
		return FormatError("SOF too short")
	}
	prec, err := d.r.ReadByte()
	if err != nil {
		return err
	}
	if prec != 8 {
		return FormatError("only 8-bit precision supported")
	}
	h16, err := d.r.readUint16()
	if err != nil {
		return err
	}
	w16, err := d.r.readUint16()
	if err != nil {
		return err
	}
	nc, err := d.r.ReadByte()
	if err != nil {
		return err
	}
	if w16 == 0 || h16 == 0 {
		return FormatError("zero image dimension")
	}
	// Bound memory and decode time against hostile headers: 64 Mpixel
	// covers anything a camera or PSP produces (the paper's largest case is
	// 4000×4000) while capping what a corrupted SOF can demand.
	if int(w16)*int(h16) > 1<<26 {
		return FormatError(fmt.Sprintf("image %dx%d exceeds the 64 Mpixel limit", w16, h16))
	}
	if nc != 1 && nc != 3 {
		return FormatError(fmt.Sprintf("unsupported component count %d", nc))
	}
	if n != 6+3*int(nc) {
		return FormatError("SOF length mismatch")
	}
	d.img.Width, d.img.Height = int(w16), int(h16)
	if cap(d.img.Components) >= int(nc) {
		// Reuse the component headers (and through them the coefficient
		// arrays) of the previous decode; every field is rewritten below.
		d.img.Components = d.img.Components[:nc]
	} else {
		d.img.Components = make([]Component, nc)
	}
	for i := 0; i < int(nc); i++ {
		id, err := d.r.ReadByte()
		if err != nil {
			return err
		}
		hv, err := d.r.ReadByte()
		if err != nil {
			return err
		}
		tq, err := d.r.ReadByte()
		if err != nil {
			return err
		}
		c := &d.img.Components[i]
		c.ID = id
		c.H, c.V = int(hv>>4), int(hv&0x0F)
		c.TqIndex = int(tq)
		if c.H < 1 || c.H > 2 || c.V < 1 || c.V > 2 {
			return FormatError(fmt.Sprintf("unsupported sampling factors %dx%d", c.H, c.V))
		}
		if c.TqIndex > 3 {
			return FormatError("quant table index > 3")
		}
	}
	mcusX, mcusY := d.img.mcuDims()
	for i := range d.img.Components {
		c := &d.img.Components[i]
		c.BlocksX = mcusX * c.H
		c.BlocksY = mcusY * c.V
		n := c.BlocksX * c.BlocksY
		if cap(c.Blocks) >= n {
			// Entropy decoding only writes nonzero coefficients, so reused
			// storage must be cleared back to the all-zero state.
			c.Blocks = c.Blocks[:n]
			clear(c.Blocks)
		} else {
			c.Blocks = make([]Block, n)
		}
	}
	d.sawSOF = true
	return nil
}

// scanComp describes one component's participation in the current scan.
type scanComp struct {
	ci    int // index into img.Components
	dcSel int
	acSel int
}

// compScanDims returns the non-interleaved scan dimensions in blocks for a
// component: ceil of the component's true pixel extent divided by 8.
func (d *decoder) compScanDims(c *Component) (int, int) {
	hMax, vMax := d.img.MaxSampling()
	cw := (d.img.Width*c.H + hMax - 1) / hMax
	ch := (d.img.Height*c.V + vMax - 1) / vMax
	return (cw + 7) / 8, (ch + 7) / 8
}

func (d *decoder) parseAndDecodeScan() error {
	if !d.sawSOF {
		return FormatError("SOS before SOF")
	}
	n, err := d.segmentLength()
	if err != nil {
		return err
	}
	ns, err := d.r.ReadByte()
	if err != nil {
		return err
	}
	if ns < 1 || int(ns) > len(d.img.Components) {
		return FormatError("bad scan component count")
	}
	if n != 4+2*int(ns) {
		return FormatError("SOS length mismatch")
	}
	if cap(d.s.scomps) >= int(ns) {
		d.s.scomps = d.s.scomps[:ns]
	} else {
		d.s.scomps = make([]scanComp, ns)
	}
	scomps := d.s.scomps
	for i := 0; i < int(ns); i++ {
		cs, err := d.r.ReadByte()
		if err != nil {
			return err
		}
		tdta, err := d.r.ReadByte()
		if err != nil {
			return err
		}
		ci := -1
		for j := range d.img.Components {
			if d.img.Components[j].ID == cs {
				ci = j
			}
		}
		if ci < 0 {
			return FormatError("scan references unknown component")
		}
		dcSel, acSel := int(tdta>>4), int(tdta&0x0F)
		if dcSel > 3 || acSel > 3 {
			return FormatError("huffman table selector > 3")
		}
		scomps[i] = scanComp{ci: ci, dcSel: dcSel, acSel: acSel}
	}
	ss, err := d.r.ReadByte()
	if err != nil {
		return err
	}
	se, err := d.r.ReadByte()
	if err != nil {
		return err
	}
	ahal, err := d.r.ReadByte()
	if err != nil {
		return err
	}
	ah, al := int(ahal>>4), int(ahal&0x0F)

	if !d.progressive {
		if ss != 0 || se != 63 || ah != 0 || al != 0 {
			return FormatError("bad spectral selection for baseline scan")
		}
		return d.decodeBaselineScan(scomps)
	}
	return d.decodeProgressiveScan(scomps, int(ss), int(se), ah, al)
}

func (d *decoder) decodeBaselineScan(scomps []scanComp) error {
	br := &d.s.bits
	br.attach(d.r)
	dcPred := d.s.predBuf(len(d.img.Components))
	d.scans++

	// Table selectors are per-scan; validate once instead of per block.
	var dcs, acs [4]*huffDecoder
	for i, sc := range scomps {
		dcs[i], acs[i] = d.dcTab[sc.dcSel], d.acTab[sc.acSel]
		if dcs[i] == nil || acs[i] == nil {
			return FormatError("scan references undefined huffman table")
		}
	}

	// A split capture rides along only on the canonical single-scan shape
	// (see eligibleScan); anything else abandons the capture and decodes
	// plainly — the caller falls back to the reference split pipeline.
	tee := d.tee
	if tee != nil && !tee.eligibleScan(d, scomps) {
		tee.bad = true
		tee = nil
	}

	sr := d.newScanRestarts(br)
	if len(scomps) > 1 {
		mcusX, mcusY := d.img.mcuDims()
		for my := 0; my < mcusY; my++ {
			for mx := 0; mx < mcusX; mx++ {
				for si, sc := range scomps {
					c := &d.img.Components[sc.ci]
					for v := 0; v < c.V; v++ {
						for h := 0; h < c.H; h++ {
							b := &c.Blocks[(my*c.V+v)*c.BlocksX+mx*c.H+h]
							var err error
							if tee != nil {
								err = decodeBaselineBlockSplit(br, dcs[si], acs[si], b, &dcPred[sc.ci], tee, min(si, 1), sc.ci)
							} else {
								err = decodeBaselineBlock(br, dcs[si], acs[si], b, &dcPred[sc.ci])
							}
							if err != nil {
								return err
							}
						}
					}
				}
				if my == mcusY-1 && mx == mcusX-1 {
					break // no restart after the final MCU
				}
				if restarted, err := sr.check(); err != nil {
					return err
				} else if restarted {
					clear(dcPred)
				}
			}
		}
	} else {
		sc := scomps[0]
		c := &d.img.Components[sc.ci]
		bw, bh := d.compScanDims(c)
		for by := 0; by < bh; by++ {
			for bx := 0; bx < bw; bx++ {
				b := &c.Blocks[by*c.BlocksX+bx]
				var err error
				if tee != nil {
					err = decodeBaselineBlockSplit(br, dcs[0], acs[0], b, &dcPred[sc.ci], tee, 0, sc.ci)
				} else {
					err = decodeBaselineBlock(br, dcs[0], acs[0], b, &dcPred[sc.ci])
				}
				if err != nil {
					return err
				}
				if by == bh-1 && bx == bw-1 {
					break
				}
				if restarted, err := sr.check(); err != nil {
					return err
				} else if restarted {
					clear(dcPred)
				}
			}
		}
	}
	d.finishScan(br)
	return nil
}

// decodeBaselineBlock decodes one baseline block: a DC category plus
// difference, then run-length-coded AC coefficients. This is the decoder's
// innermost loop, so the Huffman LUT probe and the EXTEND of the value bits
// are inlined against the bit reader's accumulator: one refill check covers a
// symbol (≤ 8 bits on the fast path) and its value field (≤ 15 bits), and the
// rare >8-bit codes fall back to the canonical walk. The accumulator and bit
// count live in locals (registers) for the whole block, synced back to the
// reader only around refills and the slow path.
func decodeBaselineBlock(br *bitReader, dc, ac *huffDecoder, b *Block, pred *int32) error {
	acc, n := br.acc, br.n
	if n < 24 {
		br.acc, br.n = acc, n
		br.fill()
		acc, n = br.acc, br.n
	}
	var sym byte
	if e := dc.lut[uint8(acc>>(n-8))]; e != 0 {
		n -= uint(e & 0xFF)
		sym = byte(e >> 8)
	} else {
		br.acc, br.n = acc, n
		var err error
		if sym, err = dc.decodeSlow(br); err != nil {
			return err
		}
		acc, n = br.acc, br.n
	}
	if sym > 15 {
		return FormatError("DC magnitude category > 15")
	}
	if s := uint(sym); s != 0 {
		if n < s {
			br.acc, br.n = acc, n
			br.fill()
			acc, n = br.acc, br.n
		}
		n -= s
		v := int32(acc>>n) & (1<<s - 1)
		if v < 1<<(s-1) {
			v += -1<<s + 1 // EXTEND (T.81 F.2.2.1)
		}
		*pred += v
	}
	b[0] = *pred

	for k := 1; k < 64; {
		if n < 24 {
			br.acc, br.n = acc, n
			br.fill()
			acc, n = br.acc, br.n
		}
		if e := ac.lut[uint8(acc>>(n-8))]; e != 0 {
			n -= uint(e & 0xFF)
			sym = byte(e >> 8)
		} else {
			br.acc, br.n = acc, n
			var err error
			if sym, err = ac.decodeSlow(br); err != nil {
				return err
			}
			acc, n = br.acc, br.n
		}
		s := uint(sym & 0x0F)
		if s == 0 {
			if sym != 0xF0 {
				break // EOB
			}
			k += 16 // ZRL
			continue
		}
		k += int(sym >> 4)
		if k > 63 {
			br.acc, br.n = acc, n
			return FormatError("AC coefficient index out of range")
		}
		if n < s {
			br.acc, br.n = acc, n
			br.fill()
			acc, n = br.acc, br.n
		}
		n -= s
		v := int32(acc>>n) & (1<<s - 1)
		if v < 1<<(s-1) {
			v += -1<<s + 1
		}
		b[zigzag[k]&63] = v
		k++
	}
	br.acc, br.n = acc, n
	return nil
}

// scanRestarts tracks restart-interval bookkeeping within one scan.
type scanRestarts struct {
	d      *decoder
	br     *bitReader
	ri     int
	units  int
	expect byte
}

func (d *decoder) newScanRestarts(br *bitReader) scanRestarts {
	return scanRestarts{d: d, br: br, ri: d.restartIntvl, expect: mRST0}
}

// check runs after every scan unit except the last: it guards against
// data-exhausted streams and, at each restart interval, consumes the RST
// marker, resets the bit reader and reports restarted=true so the caller can
// clear its predictors.
func (sr *scanRestarts) check() (restarted bool, err error) {
	if sr.br.exhausted() {
		return false, FormatError("entropy-coded data exhausted before the scan completed")
	}
	sr.units++
	if sr.ri == 0 || sr.units < sr.ri {
		return false, nil
	}
	sr.units = 0
	// The entropy decoder should have stopped at the RST marker.
	m := sr.br.pendingMarker()
	if m == 0 {
		// Marker not yet reached (byte-aligned padding consumed exactly);
		// read it from the stream.
		c, err := sr.d.r.ReadByte()
		if err != nil {
			return false, fmt.Errorf("jpegx: reading restart marker: %w", err)
		}
		if c != 0xFF {
			return false, FormatError("expected restart marker")
		}
		m, err = sr.d.r.ReadByte()
		if err != nil {
			return false, fmt.Errorf("jpegx: reading restart marker: %w", err)
		}
	}
	if !isRST(m) {
		return false, FormatError(fmt.Sprintf("expected RST marker, got 0x%02x", m))
	}
	if m != sr.expect {
		return false, FormatError("restart marker out of sequence")
	}
	sr.expect = mRST0 + (sr.expect-mRST0+1)%8
	sr.br.reset()
	sr.d.eobRun = 0
	return true, nil
}

// finishScan hands the entropy decoder's pending marker back to the segment
// loop, swallowing a stray trailing restart.
func (d *decoder) finishScan(br *bitReader) {
	d.pending = br.pendingMarker()
	if isRST(d.pending) {
		d.pending = 0
	}
}

// forEachScanUnit walks the scan's block order (interleaved MCU order for
// multi-component scans, component raster order otherwise), handling restart
// markers: after every restart interval it consumes an RST marker, resets
// the bit reader and calls onRestart. The baseline decoder has its own
// specialized walk; this generic one serves the progressive scans.
func (d *decoder) forEachScanUnit(scomps []scanComp, br *bitReader, visit func(sc scanComp, bx, by int) error, onRestart func()) error {
	sr := d.newScanRestarts(br)
	checkRestart := func() error {
		restarted, err := sr.check()
		if restarted {
			onRestart()
		}
		return err
	}

	if len(scomps) > 1 {
		mcusX, mcusY := d.img.mcuDims()
		for my := 0; my < mcusY; my++ {
			for mx := 0; mx < mcusX; mx++ {
				for _, sc := range scomps {
					c := &d.img.Components[sc.ci]
					for v := 0; v < c.V; v++ {
						for h := 0; h < c.H; h++ {
							if err := visit(sc, mx*c.H+h, my*c.V+v); err != nil {
								return err
							}
						}
					}
				}
				if my == mcusY-1 && mx == mcusX-1 {
					break // no restart after the final MCU
				}
				if err := checkRestart(); err != nil {
					return err
				}
			}
		}
	} else {
		sc := scomps[0]
		c := &d.img.Components[sc.ci]
		bw, bh := d.compScanDims(c)
		for by := 0; by < bh; by++ {
			for bx := 0; bx < bw; bx++ {
				if err := visit(sc, bx, by); err != nil {
					return err
				}
				if by == bh-1 && bx == bw-1 {
					break
				}
				if err := checkRestart(); err != nil {
					return err
				}
			}
		}
	}
	d.finishScan(br)
	return nil
}

func (d *decoder) decodeProgressiveScan(scomps []scanComp, ss, se, ah, al int) error {
	d.scans++
	if d.tee != nil {
		d.tee.bad = true // progressive streams take the reference split path
	}
	if ss == 0 {
		if se != 0 {
			return FormatError("progressive DC scan with Se != 0")
		}
	} else {
		if len(scomps) != 1 {
			return FormatError("progressive AC scan with multiple components")
		}
		if se < ss || se > 63 {
			return FormatError("bad spectral band")
		}
	}
	if al > 13 || (ah != 0 && ah != al+1) {
		return FormatError("bad successive approximation parameters")
	}
	br := &d.s.bits
	br.attach(d.r)
	d.eobRun = 0
	dcPred := d.s.predBuf(len(d.img.Components))

	visit := func(sc scanComp, bx, by int) error {
		c := &d.img.Components[sc.ci]
		b := c.Block(bx, by)
		switch {
		case ss == 0 && ah == 0: // DC first
			dc := d.dcTab[sc.dcSel]
			if dc == nil {
				return FormatError("scan references undefined DC table")
			}
			t, err := dc.decode(br)
			if err != nil {
				return err
			}
			if t > 16 {
				return FormatError("DC magnitude category > 16")
			}
			dcPred[sc.ci] += br.receiveExtend(uint(t))
			b[0] = dcPred[sc.ci] << uint(al)
		case ss == 0: // DC refinement
			if br.readBit() != 0 {
				b[0] |= 1 << uint(al)
			}
		case ah == 0: // AC first
			return d.decodeACFirst(br, b, sc, ss, se, al)
		default: // AC refinement
			return d.decodeACRefine(br, b, sc, ss, se, al)
		}
		return nil
	}
	return d.forEachScanUnit(scomps, br, visit, func() {
		for i := range dcPred {
			dcPred[i] = 0
		}
	})
}

func (d *decoder) decodeACFirst(br *bitReader, b *Block, sc scanComp, ss, se, al int) error {
	if d.eobRun > 0 {
		d.eobRun--
		return nil
	}
	ac := d.acTab[sc.acSel]
	if ac == nil {
		return FormatError("scan references undefined AC table")
	}
	for k := ss; k <= se; {
		sym, err := ac.decode(br)
		if err != nil {
			return err
		}
		r, s := int(sym>>4), uint(sym&0x0F)
		if s == 0 {
			if r != 15 {
				d.eobRun = 1 << uint(r)
				if r != 0 {
					d.eobRun |= br.readBits(uint(r))
				}
				d.eobRun--
				break
			}
			k += 16
			continue
		}
		k += r
		if k > se {
			return FormatError("AC index beyond spectral band")
		}
		b[zigzag[k]] = br.receiveExtend(s) << uint(al)
		k++
	}
	return nil
}

func (d *decoder) decodeACRefine(br *bitReader, b *Block, sc scanComp, ss, se, al int) error {
	delta := int32(1) << uint(al)
	zig := ss
	if d.eobRun == 0 {
		ac := d.acTab[sc.acSel]
		if ac == nil {
			return FormatError("scan references undefined AC table")
		}
	loop:
		for ; zig <= se; zig++ {
			var newVal int32
			sym, err := ac.decode(br)
			if err != nil {
				return err
			}
			r, s := int(sym>>4), sym&0x0F
			switch s {
			case 0:
				if r != 15 {
					d.eobRun = 1 << uint(r)
					if r != 0 {
						d.eobRun |= br.readBits(uint(r))
					}
					break loop
				}
				// ZRL: skip 16 zero-history coefficients (r == 15, s == 0).
			case 1:
				if br.readBit() != 0 {
					newVal = delta
				} else {
					newVal = -delta
				}
			default:
				return FormatError("bad AC refinement symbol")
			}
			zig, err = d.refineNonZeroes(br, b, zig, se, r, delta)
			if err != nil {
				return err
			}
			if newVal != 0 {
				if zig > se {
					return FormatError("refinement ran past spectral band")
				}
				b[zigzag[zig]] = newVal
			}
		}
	}
	if d.eobRun > 0 {
		var err error
		_, err = d.refineNonZeroes(br, b, zig, se, -1, delta)
		if err != nil {
			return err
		}
		d.eobRun--
	}
	return nil
}

// refineNonZeroes emits correction bits for already-nonzero coefficients in
// zigzag positions [zig, se]. If nz >= 0 it stops after skipping nz
// zero-history coefficients (returning the position of the nz'th zero).
func (d *decoder) refineNonZeroes(br *bitReader, b *Block, zig, se, nz int, delta int32) (int, error) {
	for ; zig <= se; zig++ {
		u := zigzag[zig]
		if b[u] == 0 {
			if nz == 0 {
				break
			}
			nz--
			continue
		}
		if br.readBit() == 0 {
			continue
		}
		if b[u] >= 0 {
			if b[u]&delta == 0 {
				b[u] += delta
			}
		} else {
			if b[u]&delta == 0 {
				b[u] -= delta
			}
		}
	}
	return zig, nil
}

var errNoQuant = errors.New("jpegx: component references missing quantization table")

// ToPlanar converts the coefficient image to full-resolution planar pixels:
// dequantize, inverse DCT, level shift, and chroma upsample (triangle filter
// for 2× factors, matching libjpeg's "fancy" upsampling).
func (im *CoeffImage) ToPlanar() *PlanarImage {
	return im.ToPlanarPool(nil)
}

// ToPlanarPool is ToPlanar with the per-block IDCT fanned out over bands of
// block rows on pool. Blocks are independent and each band writes a disjoint
// row range of the sample plane, so the result is bit-identical to the
// sequential conversion. A nil pool runs sequentially.
func (im *CoeffImage) ToPlanarPool(pool *work.Pool) *PlanarImage {
	hMax, vMax := im.MaxSampling()
	out := NewPlanarImage(im.Width, im.Height, len(im.Components))
	for ci := range im.Components {
		c := &im.Components[ci]
		q := im.Quant[c.TqIndex]
		if q == nil {
			// validate() prevents this for encoder-produced images; decoded
			// images always carry their tables. Produce zeros rather than
			// panicking.
			continue
		}
		cw := (im.Width*c.H + hMax - 1) / hMax
		ch := (im.Height*c.V + vMax - 1) / vMax
		plane := idctPlane(c, q, cw, ch, pool)
		if cw == im.Width && ch == im.Height {
			copy(out.Planes[ci], plane)
			continue
		}
		upsamplePlane(plane, cw, ch, out.Planes[ci], im.Width, im.Height)
	}
	return out
}

// idctPlane runs dequantization + IDCT over a component, returning a
// cw×ch sample plane in [0,255] (not clamped; callers clamp at display).
// Bands of block rows run on pool when it allows.
func idctPlane(c *Component, q *QuantTable, cw, ch int, pool *work.Pool) []float64 {
	plane := make([]float64, cw*ch)
	bh := (ch + 7) / 8
	bands := pool.Size()
	if bands > bh {
		bands = bh
	}
	if bands <= 1 {
		idctRows(plane, c, q, cw, ch, 0, bh)
		return plane
	}
	// Band errors are impossible; ignore Do's error.
	_ = pool.Do(bands, func(i int) error {
		idctRows(plane, c, q, cw, ch, bh*i/bands, bh*(i+1)/bands)
		return nil
	})
	return plane
}

// idctRows dequantizes and inverse-transforms block rows [by0, by1) of c
// into the matching pixel rows of plane. Each block row owns pixel rows
// [8·by, min(8·by+8, ch)), so concurrent bands never overlap.
func idctRows(plane []float64, c *Component, q *QuantTable, cw, ch, by0, by1 int) {
	var coeffs, pixels [64]int32
	bw := (cw + 7) / 8
	for by := by0; by < by1; by++ {
		for bx := 0; bx < bw; bx++ {
			dequantizeBlockInt(c.Block(bx, by), q, &coeffs)
			IDCT8x8Int(&coeffs, &pixels)
			for y := 0; y < 8; y++ {
				py := by*8 + y
				if py >= ch {
					break
				}
				for x := 0; x < 8; x++ {
					px := bx*8 + x
					if px >= cw {
						break
					}
					plane[py*cw+px] = float64(pixels[y*8+x])*0.125 + 128
				}
			}
		}
	}
}

// ToPlanarScaled converts the coefficient image to planar pixels at 1/denom
// of full resolution (denom ∈ {1, 2, 4, 8}), folding the downsample into the
// inverse transform: each block reconstructs straight to (8/denom)² samples
// via the scaled IDCT, so a proxy serving a half-size rendition does a
// quarter of the IDCT work and never materializes the full-size plane. Each
// output sample is the exact box average of the denom×denom full-resolution
// samples it covers.
func (im *CoeffImage) ToPlanarScaled(denom int) (*PlanarImage, error) {
	return im.ToPlanarScaledPool(denom, nil)
}

// ToPlanarScaledPool is ToPlanarScaled with the per-block work fanned out
// over bands of block rows on pool (nil runs sequentially; results are
// identical either way).
func (im *CoeffImage) ToPlanarScaledPool(denom int, pool *work.Pool) (*PlanarImage, error) {
	if denom == 1 {
		return im.ToPlanarPool(pool), nil
	}
	if denom != 2 && denom != 4 && denom != 8 {
		return nil, fmt.Errorf("jpegx: scaled IDCT denominator %d not in {1, 2, 4, 8}", denom)
	}
	n := 8 / denom
	hMax, vMax := im.MaxSampling()
	sw := (im.Width + denom - 1) / denom
	sh := (im.Height + denom - 1) / denom
	out := NewPlanarImage(sw, sh, len(im.Components))
	for ci := range im.Components {
		c := &im.Components[ci]
		q := im.Quant[c.TqIndex]
		if q == nil {
			continue
		}
		cw := (im.Width*c.H + hMax - 1) / hMax
		ch := (im.Height*c.V + vMax - 1) / vMax
		// Scaled extent of this component's plane.
		scw := (cw + denom - 1) / denom
		sch := (ch + denom - 1) / denom
		plane := make([]float64, scw*sch)
		bh := (ch + 7) / 8
		bands := pool.Size()
		if bands > bh {
			bands = bh
		}
		if bands <= 1 {
			scaledIdctRows(plane, c, q, scw, sch, n, 0, bh)
		} else {
			_ = pool.Do(bands, func(i int) error {
				scaledIdctRows(plane, c, q, scw, sch, n, bh*i/bands, bh*(i+1)/bands)
				return nil
			})
		}
		if scw == sw && sch == sh {
			copy(out.Planes[ci], plane)
			continue
		}
		upsamplePlane(plane, scw, sch, out.Planes[ci], sw, sh)
	}
	return out, nil
}

// scaledIdctRows is idctRows at reduced scale: block rows [by0, by1) of c
// reconstruct to n×n samples each, written to the matching rows of the
// scw×sch scaled plane.
func scaledIdctRows(plane []float64, c *Component, q *QuantTable, scw, sch, n, by0, by1 int) {
	var coeffs, pixels [64]int32
	bw := (scw + n - 1) / n
	for by := by0; by < by1; by++ {
		for bx := 0; bx < bw; bx++ {
			dequantizeBlockInt(c.Block(bx, by), q, &coeffs)
			IDCTScaledInt(&coeffs, &pixels, n)
			for y := 0; y < n; y++ {
				py := by*n + y
				if py >= sch {
					break
				}
				for x := 0; x < n; x++ {
					px := bx*n + x
					if px >= scw {
						break
					}
					plane[py*scw+px] = float64(pixels[y*n+x])*0.125 + 128
				}
			}
		}
	}
}

// upsamplePlane resizes a subsampled chroma plane (cw×ch) to (w×h) using a
// triangle filter for integer 2× factors and nearest otherwise.
func upsamplePlane(src []float64, cw, ch int, dst []float64, w, h int) {
	// Horizontal pass.
	var hor []float64
	if cw == w {
		hor = src
	} else if 2*cw >= w {
		hor = make([]float64, w*ch)
		for y := 0; y < ch; y++ {
			row := src[y*cw : y*cw+cw]
			orow := hor[y*w : y*w+w]
			for x := 0; x < w; x++ {
				sx := x / 2
				if sx >= cw {
					sx = cw - 1
				}
				// Triangle: 3/4 nearest + 1/4 next-nearest.
				var other int
				if x%2 == 0 {
					other = sx - 1
				} else {
					other = sx + 1
				}
				if other < 0 {
					other = 0
				}
				if other >= cw {
					other = cw - 1
				}
				orow[x] = 0.75*row[sx] + 0.25*row[other]
			}
		}
	} else {
		hor = make([]float64, w*ch)
		for y := 0; y < ch; y++ {
			for x := 0; x < w; x++ {
				sx := x * cw / w
				hor[y*w+x] = src[y*cw+sx]
			}
		}
	}
	// Vertical pass.
	if ch == h {
		copy(dst, hor)
		return
	}
	if 2*ch >= h {
		for y := 0; y < h; y++ {
			sy := y / 2
			if sy >= ch {
				sy = ch - 1
			}
			var other int
			if y%2 == 0 {
				other = sy - 1
			} else {
				other = sy + 1
			}
			if other < 0 {
				other = 0
			}
			if other >= ch {
				other = ch - 1
			}
			for x := 0; x < w; x++ {
				dst[y*w+x] = 0.75*hor[sy*w+x] + 0.25*hor[other*w+x]
			}
		}
		return
	}
	for y := 0; y < h; y++ {
		sy := y * ch / h
		copy(dst[y*w:y*w+w], hor[sy*w:sy*w+w])
	}
}
