package jpegx

import (
	"errors"
	"fmt"
	"sort"
)

// Huffman coding per ITU-T T.81 Annex C (canonical code construction),
// Annex F (decoding procedure) and Annex K.3 (the example/"standard" DC and
// AC tables used by virtually all baseline encoders).

// HuffSpec is the wire representation of a Huffman table: Counts[i] is the
// number of codes of length i+1 (1..16 bits), Symbols lists the symbol
// values in order of increasing code length.
type HuffSpec struct {
	Counts  [16]byte
	Symbols []byte
}

// Clone returns a deep copy of the spec.
func (s *HuffSpec) Clone() *HuffSpec {
	c := &HuffSpec{Counts: s.Counts, Symbols: append([]byte(nil), s.Symbols...)}
	return c
}

func (s *HuffSpec) numSymbols() int {
	n := 0
	for _, c := range s.Counts {
		n += int(c)
	}
	return n
}

func (s *HuffSpec) validate() error {
	if s.numSymbols() != len(s.Symbols) {
		return fmt.Errorf("jpegx: huffman spec declares %d symbols but carries %d", s.numSymbols(), len(s.Symbols))
	}
	if len(s.Symbols) == 0 {
		return errors.New("jpegx: empty huffman table")
	}
	// Kraft inequality: code space must not be oversubscribed.
	space := 0
	for i, c := range s.Counts {
		space += int(c) << (15 - i)
	}
	if space > 1<<16 {
		return errors.New("jpegx: oversubscribed huffman table")
	}
	return nil
}

// huffEncoder maps symbol → (code, length) for entropy encoding.
type huffEncoder struct {
	code [256]uint32
	size [256]uint8
}

func newHuffEncoder(spec *HuffSpec) (*huffEncoder, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	e := &huffEncoder{}
	code := uint32(0)
	k := 0
	for length := 1; length <= 16; length++ {
		for i := 0; i < int(spec.Counts[length-1]); i++ {
			sym := spec.Symbols[k]
			if e.size[sym] != 0 {
				return nil, fmt.Errorf("jpegx: duplicate huffman symbol %#02x", sym)
			}
			e.code[sym] = code
			e.size[sym] = uint8(length)
			code++
			k++
		}
		code <<= 1
	}
	return e, nil
}

func (e *huffEncoder) emit(bw *bitWriter, sym byte) {
	bw.writeBits(e.code[sym], uint(e.size[sym]))
}

// huffDecoder decodes symbols using an 8-bit fast lookup table with a
// canonical-code fallback for longer codes (the approach used by libjpeg).
type huffDecoder struct {
	// lut[b] for an 8-bit prefix b: high byte = symbol, low byte = code
	// length; 0 means "code longer than 8 bits, use slow path".
	lut [256]uint16
	// Canonical decoding state for codes of length 1..16.
	minCode [17]int32
	maxCode [17]int32 // -1 when no codes of this length
	valPtr  [17]int32
	symbols []byte
}

func newHuffDecoder(spec *HuffSpec) (*huffDecoder, error) {
	d := &huffDecoder{}
	if err := d.init(spec); err != nil {
		return nil, err
	}
	return d, nil
}

// init (re)builds the decoder in place from spec, reusing the symbol storage
// of a previous table so pooled decoders construct tables without
// allocating.
func (d *huffDecoder) init(spec *HuffSpec) error {
	if err := spec.validate(); err != nil {
		return err
	}
	d.symbols = append(d.symbols[:0], spec.Symbols...)
	d.lut = [256]uint16{}
	code := int32(0)
	k := int32(0)
	for length := 1; length <= 16; length++ {
		d.valPtr[length] = k
		d.minCode[length] = code
		n := int32(spec.Counts[length-1])
		code += n
		k += n
		d.maxCode[length] = code - 1
		if n == 0 {
			d.maxCode[length] = -1
		}
		code <<= 1
	}
	// Build the fast LUT.
	code = 0
	k = 0
	for length := 1; length <= 8; length++ {
		for i := 0; i < int(spec.Counts[length-1]); i++ {
			sym := uint16(spec.Symbols[k])
			// All 8-bit values whose top `length` bits equal this code.
			base := code << (8 - length)
			for j := int32(0); j < 1<<(8-length); j++ {
				d.lut[base+j] = sym<<8 | uint16(length)
			}
			code++
			k++
		}
		code <<= 1
	}
	return nil
}

// decode reads one Huffman-coded symbol from br. The fast path resolves
// codes of ≤ 8 bits with one table lookup on the peeked prefix; longer codes
// (rare in practice — the standard tables put every symbol that matters in
// ≤ 8 bits) fall back to the canonical bit-by-bit walk.
func (d *huffDecoder) decode(br *bitReader) (byte, error) {
	if br.n < 8 {
		br.fill()
	}
	if e := d.lut[uint8(br.acc>>(br.n-8))]; e != 0 {
		br.n -= uint(e & 0xFF)
		return byte(e >> 8), nil
	}
	return d.decodeSlow(br)
}

// decodeSlow resolves codes longer than 8 bits using the canonical
// (minCode/maxCode/valPtr) ranges of T.81 F.2.2.3.
func (d *huffDecoder) decodeSlow(br *bitReader) (byte, error) {
	code := int32(0)
	for length := 1; length <= 16; length++ {
		code = code<<1 | int32(br.readBit())
		if d.maxCode[length] >= 0 && code <= d.maxCode[length] {
			return d.symbols[d.valPtr[length]+code-d.minCode[length]], nil
		}
	}
	return 0, errors.New("jpegx: invalid huffman code")
}

// Standard Huffman tables from T.81 Annex K.3.

// StdDCLuma returns the example luminance DC table.
func StdDCLuma() *HuffSpec {
	return &HuffSpec{
		Counts:  [16]byte{0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0},
		Symbols: []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
	}
}

// StdDCChroma returns the example chrominance DC table.
func StdDCChroma() *HuffSpec {
	return &HuffSpec{
		Counts:  [16]byte{0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0},
		Symbols: []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
	}
}

// StdACLuma returns the example luminance AC table.
func StdACLuma() *HuffSpec {
	return &HuffSpec{
		Counts: [16]byte{0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7D},
		Symbols: []byte{
			0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12,
			0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61, 0x07,
			0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xA1, 0x08,
			0x23, 0x42, 0xB1, 0xC1, 0x15, 0x52, 0xD1, 0xF0,
			0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0A, 0x16,
			0x17, 0x18, 0x19, 0x1A, 0x25, 0x26, 0x27, 0x28,
			0x29, 0x2A, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39,
			0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49,
			0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
			0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69,
			0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79,
			0x7A, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
			0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98,
			0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7,
			0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6,
			0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5,
			0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2, 0xD3, 0xD4,
			0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE1, 0xE2,
			0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9, 0xEA,
			0xF1, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
			0xF9, 0xFA,
		},
	}
}

// StdACChroma returns the example chrominance AC table.
func StdACChroma() *HuffSpec {
	return &HuffSpec{
		Counts: [16]byte{0, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 0x77},
		Symbols: []byte{
			0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21,
			0x31, 0x06, 0x12, 0x41, 0x51, 0x07, 0x61, 0x71,
			0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91,
			0xA1, 0xB1, 0xC1, 0x09, 0x23, 0x33, 0x52, 0xF0,
			0x15, 0x62, 0x72, 0xD1, 0x0A, 0x16, 0x24, 0x34,
			0xE1, 0x25, 0xF1, 0x17, 0x18, 0x19, 0x1A, 0x26,
			0x27, 0x28, 0x29, 0x2A, 0x35, 0x36, 0x37, 0x38,
			0x39, 0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48,
			0x49, 0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58,
			0x59, 0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68,
			0x69, 0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78,
			0x79, 0x7A, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87,
			0x88, 0x89, 0x8A, 0x92, 0x93, 0x94, 0x95, 0x96,
			0x97, 0x98, 0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5,
			0xA6, 0xA7, 0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4,
			0xB5, 0xB6, 0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3,
			0xC4, 0xC5, 0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2,
			0xD3, 0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA,
			0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9,
			0xEA, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
			0xF9, 0xFA,
		},
	}
}

// BuildOptimalSpec constructs a length-limited (≤ 16 bit) Huffman table for
// the observed symbol frequencies, using the package-merge-free procedure of
// T.81 Annex K.2 (the same algorithm as libjpeg's jpeg_gen_optimal_table).
// freq has one count per possible symbol value; symbols with zero count are
// omitted from the table. A sentinel symbol guarantees no code is all ones.
func BuildOptimalSpec(freq *[256]int64) (*HuffSpec, error) {
	var f [257]int64
	anyNonzero := false
	for i, v := range freq {
		if v < 0 {
			return nil, fmt.Errorf("jpegx: negative frequency for symbol %d", i)
		}
		f[i] = v
		if v > 0 {
			anyNonzero = true
		}
	}
	if !anyNonzero {
		return nil, errors.New("jpegx: no symbols to encode")
	}
	f[256] = 1 // sentinel: reserves the all-ones code

	var codesize [257]int
	var others [257]int
	for i := range others {
		others[i] = -1
	}

	for {
		// Find the two least-frequent nonzero entries (c1 smallest, then c2).
		c1, c2 := -1, -1
		v := int64(1) << 62
		for i := 0; i <= 256; i++ {
			if f[i] != 0 && f[i] <= v {
				v = f[i]
				c1 = i
			}
		}
		v = int64(1) << 62
		for i := 0; i <= 256; i++ {
			if f[i] != 0 && f[i] <= v && i != c1 {
				v = f[i]
				c2 = i
			}
		}
		if c2 < 0 {
			break // single tree remains
		}
		f[c1] += f[c2]
		f[c2] = 0
		codesize[c1]++
		for others[c1] >= 0 {
			c1 = others[c1]
			codesize[c1]++
		}
		others[c1] = c2
		codesize[c2]++
		for others[c2] >= 0 {
			c2 = others[c2]
			codesize[c2]++
		}
	}

	var bits [33]int
	for i := 0; i <= 256; i++ {
		if codesize[i] > 0 {
			if codesize[i] > 32 {
				return nil, errors.New("jpegx: huffman code length overflow")
			}
			bits[codesize[i]]++
		}
	}
	// Limit code lengths to 16 (Annex K.2 adjustment).
	for i := 32; i > 16; i-- {
		for bits[i] > 0 {
			j := i - 2
			for bits[j] == 0 {
				j--
			}
			bits[i] -= 2
			bits[i-1]++
			bits[j+1] += 2
			bits[j]--
		}
	}
	// Remove the sentinel's code.
	i := 16
	for bits[i] == 0 {
		i--
	}
	bits[i]--

	spec := &HuffSpec{}
	for l := 1; l <= 16; l++ {
		spec.Counts[l-1] = byte(bits[l])
	}
	// Symbols sorted by (code length, symbol value).
	type symLen struct {
		sym int
		l   int
	}
	var syms []symLen
	for s := 0; s < 256; s++ {
		if codesize[s] > 0 {
			syms = append(syms, symLen{s, codesize[s]})
		}
	}
	sort.Slice(syms, func(a, b int) bool {
		if syms[a].l != syms[b].l {
			return syms[a].l < syms[b].l
		}
		return syms[a].sym < syms[b].sym
	})
	for _, sl := range syms {
		spec.Symbols = append(spec.Symbols, byte(sl.sym))
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	return spec, nil
}
