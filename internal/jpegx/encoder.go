package jpegx

import (
	"bufio"
	"fmt"
	"io"
	"math/bits"
	"sync"

	"p3/internal/work"
)

// EncodeOptions configures JPEG serialization.
type EncodeOptions struct {
	// OptimizeHuffman computes per-image optimal Huffman tables with a
	// statistics pass instead of using the Annex-K tables. Progressive
	// encoding always optimizes (the standard tables lack EOB-run symbols).
	OptimizeHuffman bool

	// Progressive emits a progressive (SOF2) stream with the conventional
	// 10-scan script (spectral selection + successive approximation),
	// mirroring what PSPs like Facebook serve.
	Progressive bool

	// RestartInterval inserts RSTn markers every this many MCUs in baseline
	// scans. 0 disables restarts.
	RestartInterval int

	// Workers fans the Huffman-optimization statistics pass out over bands
	// of MCU rows (baseline, no restart markers). Symbol frequencies are
	// summed across bands, so the derived tables — and therefore the output
	// bytes — are identical to a sequential encode. nil runs sequentially.
	Workers *work.Pool

	// NZHint, when non-nil, supplies per-component nonzero maps for the AC
	// coefficients: NZHint[ci][bi] has bit zz set when zigzag position zz of
	// component ci's block bi may hold a nonzero coefficient (bit 0, the DC
	// term, is ignored). A clear bit must guarantee the coefficient is zero;
	// set bits are re-checked, so supersets are safe. Producers that already
	// touch every coefficient — P3's threshold split does — hand these maps
	// to the baseline encoder so its per-block walk visits only the (sparse)
	// nonzero positions instead of scanning all 63 AC slots. Components whose
	// map length does not match their block count fall back to scanning.
	NZHint [][]uint64
}

// EncodeCoeffs serializes a coefficient image to a JPEG stream without any
// further loss: decoding the output with Decode yields coefficient blocks
// identical to im. This is the path P3 uses to store its public and secret
// parts as standards-compliant JPEGs.
func EncodeCoeffs(w io.Writer, im *CoeffImage, opts *EncodeOptions) error {
	if opts == nil {
		opts = &EncodeOptions{}
	}
	if err := im.validate(); err != nil {
		return err
	}
	bufw := bufio.NewWriter(w)
	e := &encoder{w: bufw, img: im, opts: opts}
	var err error
	if opts.Progressive {
		err = e.encodeProgressive()
	} else {
		err = e.encodeBaseline()
	}
	if err != nil {
		return err
	}
	return bufw.Flush()
}

type encoder struct {
	w    *bufio.Writer
	img  *CoeffImage
	opts *EncodeOptions
}

func (e *encoder) writeMarker(m byte) error {
	_, err := e.w.Write([]byte{0xFF, m})
	return err
}

func (e *encoder) writeSegment(m byte, payload []byte) error {
	if len(payload) > 65533 {
		return fmt.Errorf("jpegx: segment 0x%02x payload too long (%d)", m, len(payload))
	}
	if err := e.writeMarker(m); err != nil {
		return err
	}
	n := len(payload) + 2
	if _, err := e.w.Write([]byte{byte(n >> 8), byte(n)}); err != nil {
		return err
	}
	_, err := e.w.Write(payload)
	return err
}

// writeHeaders emits SOI, preserved markers (or a default JFIF APP0), DQT,
// SOF and DRI.
func (e *encoder) writeHeaders(sofMarker byte) error {
	if err := e.writeMarker(mSOI); err != nil {
		return err
	}
	if len(e.img.Markers) == 0 {
		// Default JFIF 1.01 header, 1:1 aspect, no thumbnail.
		jfif := []byte{'J', 'F', 'I', 'F', 0, 1, 1, 0, 0, 1, 0, 1, 0, 0}
		if err := e.writeSegment(mAPP0, jfif); err != nil {
			return err
		}
	}
	for _, seg := range e.img.Markers {
		if err := e.writeSegment(seg.Marker, seg.Data); err != nil {
			return err
		}
	}
	// DQT: one segment per table, 8-bit precision (entries are ≤ 255 for
	// baseline; clamp defensively).
	for tq, q := range e.img.Quant {
		if q == nil {
			continue
		}
		payload := make([]byte, 1+64)
		payload[0] = byte(tq) // Pq=0
		for zz := 0; zz < 64; zz++ {
			v := q[zigzag[zz]]
			if v > 255 {
				v = 255
			}
			payload[1+zz] = byte(v)
		}
		if err := e.writeSegment(mDQT, payload); err != nil {
			return err
		}
	}
	// SOF.
	nc := len(e.img.Components)
	payload := make([]byte, 6+3*nc)
	payload[0] = 8 // precision
	payload[1] = byte(e.img.Height >> 8)
	payload[2] = byte(e.img.Height)
	payload[3] = byte(e.img.Width >> 8)
	payload[4] = byte(e.img.Width)
	payload[5] = byte(nc)
	for i := 0; i < nc; i++ {
		c := &e.img.Components[i]
		payload[6+3*i] = c.ID
		payload[7+3*i] = byte(c.H<<4 | c.V)
		payload[8+3*i] = byte(c.TqIndex)
	}
	if err := e.writeSegment(sofMarker, payload); err != nil {
		return err
	}
	if e.opts.RestartInterval > 0 && !e.opts.Progressive {
		ri := e.opts.RestartInterval
		if err := e.writeSegment(mDRI, []byte{byte(ri >> 8), byte(ri)}); err != nil {
			return err
		}
	}
	return nil
}

func (e *encoder) writeDHT(class, slot int, spec *HuffSpec) error {
	payload := make([]byte, 0, 1+16+len(spec.Symbols))
	payload = append(payload, byte(class<<4|slot))
	payload = append(payload, spec.Counts[:]...)
	payload = append(payload, spec.Symbols...)
	return e.writeSegment(mDHT, payload)
}

func (e *encoder) writeSOS(scomps []scanComp, ss, se, ah, al int) error {
	payload := make([]byte, 0, 4+2*len(scomps))
	payload = append(payload, byte(len(scomps)))
	for _, sc := range scomps {
		c := &e.img.Components[sc.ci]
		payload = append(payload, c.ID, byte(sc.dcSel<<4|sc.acSel))
	}
	payload = append(payload, byte(ss), byte(se), byte(ah<<4|al))
	return e.writeSegment(mSOS, payload)
}

// Statistics-pass tokens. The old encoder walked every block twice when
// optimizing Huffman tables: once to count symbol frequencies, once to emit
// bits. The stats pass now also records one compact token per emission, so
// the second pass is a linear replay of the token stream — no block walk, no
// re-derivation of magnitudes — through the chosen tables.
//
// Token layout (32 bits): nb(5) | slot(1) | kind(2) | sym(8) | val(16).
// val holds the raw value bits that follow the symbol and nb their count;
// nb is explicit because EOBn symbols carry sym>>4 value bits, breaking any
// nb-from-sym rule. kind Raw carries bare bits with no symbol (progressive
// correction bits); the restart sentinel token has all other fields zero.
const (
	tokKindAC  = 0
	tokKindDC  = 1
	tokKindRaw = 2
	tokKindRST = 3

	tokRestart = uint32(tokKindRST) << 24
)

func token(slot int, kind uint32, sym byte, val uint32, nb uint) uint32 {
	return uint32(nb)<<27 | uint32(slot)<<26 | kind<<24 | uint32(sym)<<16 | val
}

// tokenBufs recycles statistics-pass token buffers (~4 B per coded symbol)
// across encodes.
var tokenBufs = sync.Pool{New: func() any { return new([]uint32) }}

// emitter either writes entropy-coded bits or, in statistics mode, counts
// symbol frequencies and records replay tokens for optimal-table encoding.
type emitter struct {
	bw     *bitWriter
	dcEnc  [2]*huffEncoder
	acEnc  [2]*huffEncoder
	dcFreq [2]*[256]int64
	acFreq [2]*[256]int64
	stats  bool
	tokens []uint32
}

// newStatsEmitter returns an emitter in statistics mode with zeroed
// frequency tables, recording tokens into the (possibly recycled) buffer.
func newStatsEmitter(tokens []uint32) *emitter {
	em := &emitter{stats: true, tokens: tokens[:0]}
	for i := range em.dcFreq {
		em.dcFreq[i] = &[256]int64{}
		em.acFreq[i] = &[256]int64{}
	}
	return em
}

// add accumulates another statistics emitter's frequencies. Addition is
// commutative, so merging band-local counts in index order yields exactly
// the sequential pass's tables.
func (em *emitter) add(other *emitter) {
	for s := range em.dcFreq {
		for i := range em.dcFreq[s] {
			em.dcFreq[s][i] += other.dcFreq[s][i]
			em.acFreq[s][i] += other.acFreq[s][i]
		}
	}
}

// dcSym emits a DC Huffman symbol fused with its nb trailing value bits; in
// statistics mode it counts the symbol and records a replay token instead.
func (em *emitter) dcSym(slot int, sym byte, val uint32, nb uint) {
	if em.stats {
		em.dcFreq[slot][sym]++
		em.tokens = append(em.tokens, token(slot, tokKindDC, sym, val, nb))
		return
	}
	enc := em.dcEnc[slot]
	em.bw.writeBits(enc.code[sym]<<nb|val, uint(enc.size[sym])+nb)
}

// acSym is dcSym for the AC table.
func (em *emitter) acSym(slot int, sym byte, val uint32, nb uint) {
	if em.stats {
		em.acFreq[slot][sym]++
		em.tokens = append(em.tokens, token(slot, tokKindAC, sym, val, nb))
		return
	}
	enc := em.acEnc[slot]
	em.bw.writeBits(enc.code[sym]<<nb|val, uint(enc.size[sym])+nb)
}

// raw emits nb bare bits (nb ≤ 16) with no Huffman symbol.
func (em *emitter) raw(val uint32, nb uint) {
	if nb == 0 {
		return
	}
	if em.stats {
		em.tokens = append(em.tokens, token(0, tokKindRaw, 0, val, nb))
		return
	}
	em.bw.writeBits(val, nb)
}

// rawBits emits a sequence of single bits, packed 16 per token/write.
func (em *emitter) rawBits(bs []byte) {
	var v uint32
	var n uint
	for _, b := range bs {
		v = v<<1 | uint32(b)
		if n++; n == 16 {
			em.raw(v, 16)
			v, n = 0, 0
		}
	}
	em.raw(v, n)
}

// restart records a restart-marker boundary in the token stream.
func (em *emitter) restart() {
	em.tokens = append(em.tokens, tokRestart)
}

// replayTokens re-emits a recorded token stream through em's encoders.
// Restart sentinels byte-align the writer and emit the next RSTn marker.
func (e *encoder) replayTokens(em *emitter, tokens []uint32, rst *int) error {
	bw := em.bw
	// Token bits 26..24 are slot|kind, so one 8-entry table replaces the
	// kind switch plus slot indexing in the per-token loop; raw and restart
	// tokens land on nil entries and take the rare path.
	var encs [8]*huffEncoder
	encs[tokKindAC] = em.acEnc[0]
	encs[4|tokKindAC] = em.acEnc[1]
	encs[tokKindDC] = em.dcEnc[0]
	encs[4|tokKindDC] = em.dcEnc[1]
	// The writer's accumulator, bit count and chunk buffer live in locals for
	// the whole replay (the loop is the encoder's hot path), synced back to
	// the writer only around the rare non-Huffman tokens and buffer flushes.
	// The drain logic mirrors bitWriter.writeBits: each token emits at most
	// 16+16 bits, so one ≥32 check per token keeps the count below 64.
	acc, bn := bw.acc, bw.n
	buf := bw.buf
	for _, t := range tokens {
		enc := encs[(t>>24)&7]
		if enc == nil {
			// Restart sentinel or raw bits: go through the writer.
			bw.acc, bw.n, bw.buf = acc, bn, buf
			if t == tokRestart {
				if err := bw.pad(); err != nil {
					return err
				}
				if err := e.writeMarker(byte(mRST0 + *rst%8)); err != nil {
					return err
				}
				*rst++
			} else {
				bw.writeBits(t&0xFFFF, uint(t>>27)) // tokKindRaw
			}
			acc, bn, buf = bw.acc, bw.n, bw.buf
			continue
		}
		nb := uint(t >> 27)
		sym := byte(t >> 16)
		wn := uint(enc.size[sym]) + nb
		acc = acc<<wn | uint64(enc.code[sym]<<nb|t&0xFFFF)
		bn += wn
		if bn < 32 {
			continue
		}
		bn -= 32
		w := uint32(acc >> bn)
		// Any byte equal to 0xFF? Equivalently: any zero byte in ^w.
		if x := ^w; (x-0x01010101)&^x&0x80808080 == 0 {
			buf = append(buf, byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
		} else {
			for shift := 24; shift >= 0; shift -= 8 {
				b := byte(w >> shift)
				buf = append(buf, b)
				if b == 0xFF {
					buf = append(buf, 0x00)
				}
			}
		}
		if len(buf) >= 4096 {
			bw.buf = buf
			bw.flushBuf()
			buf = bw.buf
			if bw.err != nil {
				bw.acc, bw.n = acc, bn
				return bw.err
			}
		}
	}
	bw.acc, bw.n, bw.buf = acc, bn, buf
	return bw.err
}

// encodeBaseline writes a single interleaved baseline scan.
func (e *encoder) encodeBaseline() error {
	gray := len(e.img.Components) == 1
	nSlots := 2
	if gray {
		nSlots = 1
	}

	dcSpecs := [2]*HuffSpec{StdDCLuma(), StdDCChroma()}
	acSpecs := [2]*HuffSpec{StdACLuma(), StdACChroma()}
	var parts []*emitter
	var bufps []*[]uint32
	if e.opts.OptimizeHuffman {
		// The statistics pass validates every coefficient's magnitude
		// category before a single output byte is written, so the separate
		// checkCoeffRange walk is skipped on this path.
		var err error
		parts, bufps, err = e.baselineStats()
		if err != nil {
			return err
		}
		defer func() {
			for i, bufp := range bufps {
				*bufp = parts[i].tokens // return the grown buffer, not the pre-append one
				tokenBufs.Put(bufp)
			}
		}()
		sum := parts[0]
		for _, part := range parts[1:] {
			sum.add(part)
		}
		for s := 0; s < nSlots; s++ {
			spec, err := BuildOptimalSpec(sum.dcFreq[s])
			if err != nil {
				return fmt.Errorf("jpegx: optimizing DC table %d: %w", s, err)
			}
			dcSpecs[s] = spec
			spec, err = BuildOptimalSpec(sum.acFreq[s])
			if err != nil {
				return fmt.Errorf("jpegx: optimizing AC table %d: %w", s, err)
			}
			acSpecs[s] = spec
		}
	} else if err := e.checkCoeffRange(); err != nil {
		return err
	}

	if err := e.writeHeaders(mSOF0); err != nil {
		return err
	}
	for s := 0; s < nSlots; s++ {
		if err := e.writeDHT(0, s, dcSpecs[s]); err != nil {
			return err
		}
		if err := e.writeDHT(1, s, acSpecs[s]); err != nil {
			return err
		}
	}
	scomps := e.allComponentsScan()
	if err := e.writeSOS(scomps, 0, 63, 0, 0); err != nil {
		return err
	}

	em := &emitter{bw: newBitWriter(e.w)}
	for s := 0; s < nSlots; s++ {
		var err error
		if em.dcEnc[s], err = newHuffEncoder(dcSpecs[s]); err != nil {
			return err
		}
		if em.acEnc[s], err = newHuffEncoder(acSpecs[s]); err != nil {
			return err
		}
	}
	if parts != nil {
		// Replay the recorded token streams in band order: one linear pass,
		// no second block walk.
		rst := 0
		for _, part := range parts {
			if err := e.replayTokens(em, part.tokens, &rst); err != nil {
				return err
			}
		}
	} else if err := e.baselineScan(em); err != nil {
		return err
	}
	if err := em.bw.pad(); err != nil {
		return err
	}
	return e.writeMarker(mEOI)
}

// allComponentsScan builds the scan-component list with the conventional
// slot assignment: luma uses tables 0, chroma tables 1.
func (e *encoder) allComponentsScan() []scanComp {
	scomps := make([]scanComp, len(e.img.Components))
	for i := range scomps {
		slot := 0
		if i > 0 {
			slot = 1
		}
		scomps[i] = scanComp{ci: i, dcSel: slot, acSel: slot}
	}
	return scomps
}

// baselineStats runs the statistics pass, fanned out over bands of MCU rows
// on opts.Workers when the scan has no restart markers. Each band seeds its
// DC predictors from the last block preceding it — DC prediction needs only
// the previous block's value, which is already in memory — so bands are
// independent and their summed counts equal the sequential pass's exactly;
// each band's token stream is replayed in band order, which reproduces the
// sequential emission byte for byte. On error all token buffers have been
// returned to the pool; on success the caller owns them.
func (e *encoder) baselineStats() ([]*emitter, []*[]uint32, error) {
	pool := e.opts.Workers
	_, mcusY := e.img.mcuDims()
	bands := pool.Size()
	if bands > mcusY {
		bands = mcusY
	}
	if bands <= 1 || e.opts.RestartInterval > 0 {
		// Restart markers reset predictors on a global MCU counter, which
		// crosses band boundaries; keep that rare path sequential.
		bufp := tokenBufs.Get().(*[]uint32)
		em := newStatsEmitter(*bufp)
		err := e.baselineScan(em)
		*bufp = em.tokens
		if err != nil {
			tokenBufs.Put(bufp)
			return nil, nil, err
		}
		return []*emitter{em}, []*[]uint32{bufp}, nil
	}
	parts := make([]*emitter, bands)
	bufps := make([]*[]uint32, bands)
	for i := range bufps {
		bufps[i] = tokenBufs.Get().(*[]uint32)
	}
	err := pool.Do(bands, func(i int) error {
		part := newStatsEmitter(*bufps[i])
		parts[i] = part
		err := e.baselineStatsRows(part, mcusY*i/bands, mcusY*(i+1)/bands)
		*bufps[i] = part.tokens
		return err
	})
	if err != nil {
		for _, bufp := range bufps {
			tokenBufs.Put(bufp)
		}
		return nil, nil, err
	}
	return parts, bufps, nil
}

// scanHints resolves the per-component nonzero maps for a scan's components,
// dropping any whose length does not match the component's block count (the
// caller then falls back to scanning those blocks).
func (e *encoder) scanHints(scomps []scanComp) [4][]uint64 {
	var hints [4][]uint64
	if e.opts.NZHint == nil {
		return hints
	}
	for i, sc := range scomps {
		if sc.ci < len(e.opts.NZHint) {
			if h := e.opts.NZHint[sc.ci]; len(h) == len(e.img.Components[sc.ci].Blocks) {
				hints[i] = h
			}
		}
	}
	return hints
}

// baselineStatsRows feeds MCU rows [my0, my1) to a statistics emitter,
// assuming no restart markers.
func (e *encoder) baselineStatsRows(em *emitter, my0, my1 int) error {
	scomps := e.allComponentsScan()
	hints := e.scanHints(scomps)
	dcPred := make([]int32, len(e.img.Components))
	for i := range dcPred {
		c := &e.img.Components[i]
		if my0 > 0 {
			// The block encoded immediately before this band, in scan order,
			// is the last block of the preceding MCU row.
			dcPred[i] = c.Blocks[(my0*c.V)*c.BlocksX-1][0]
		}
	}
	mcusX, _ := e.img.mcuDims()
	for my := my0; my < my1; my++ {
		for mx := 0; mx < mcusX; mx++ {
			for si, sc := range scomps {
				c := &e.img.Components[sc.ci]
				hint := hints[si]
				for v := 0; v < c.V; v++ {
					for h := 0; h < c.H; h++ {
						bi := (my*c.V+v)*c.BlocksX + mx*c.H + h
						b := &c.Blocks[bi]
						var nz uint64
						if hint != nil {
							nz = hint[bi]
						} else {
							nz = blockNZ(b)
						}
						if err := encodeBaselineBlock(em, sc.dcSel, b, &dcPred[sc.ci], nz); err != nil {
							return err
						}
					}
				}
			}
		}
	}
	return nil
}

// baselineScan runs the MCU walk once, feeding the emitter.
func (e *encoder) baselineScan(em *emitter) error {
	scomps := e.allComponentsScan()
	hints := e.scanHints(scomps)
	dcPred := make([]int32, len(e.img.Components))
	ri := e.opts.RestartInterval
	mcusX, mcusY := e.img.mcuDims()
	mcu := 0
	rst := 0
	for my := 0; my < mcusY; my++ {
		for mx := 0; mx < mcusX; mx++ {
			for si, sc := range scomps {
				c := &e.img.Components[sc.ci]
				hint := hints[si]
				slot := sc.dcSel
				for v := 0; v < c.V; v++ {
					for h := 0; h < c.H; h++ {
						bi := (my*c.V+v)*c.BlocksX + mx*c.H + h
						b := &c.Blocks[bi]
						var nz uint64
						if hint != nil {
							nz = hint[bi]
						} else {
							nz = blockNZ(b)
						}
						if err := encodeBaselineBlock(em, slot, b, &dcPred[sc.ci], nz); err != nil {
							return err
						}
					}
				}
			}
			mcu++
			if ri > 0 && mcu%ri == 0 && !(my == mcusY-1 && mx == mcusX-1) {
				if em.stats {
					em.restart()
				} else {
					if err := em.bw.pad(); err != nil {
						return err
					}
					if err := e.writeMarker(byte(mRST0 + rst%8)); err != nil {
						return err
					}
				}
				rst++
				for i := range dcPred {
					dcPred[i] = 0
				}
			}
		}
	}
	return nil
}

// blockNZ builds the nonzero map of a block's AC coefficients in zigzag
// positions, branchlessly in one sequential sweep (v|−v has its sign bit set
// iff v ≠ 0). Producers with EncodeOptions.NZHint make this sweep — the bulk
// of the statistics pass for sparse blocks — unnecessary.
func blockNZ(b *Block) uint64 {
	var m uint64
	for u := 1; u < 64; u++ {
		v := uint32(b[u])
		m |= uint64((v|-v)>>31) << unzigzag[u]
	}
	return m
}

// encodeBaselineBlock emits one block given its AC nonzero map (exact or a
// superset; bit 0 is ignored). Zero runs fall out of TrailingZeros64 gaps
// instead of a 63-iteration test-and-branch walk — most AC coefficients are
// zero, and for P3's sparse secret parts nearly all of them are.
func encodeBaselineBlock(em *emitter, slot int, b *Block, pred *int32, nz uint64) error {
	diff := b[0] - *pred
	*pred = b[0]
	n, val := magnitude(diff)
	if n > 11 {
		return fmt.Errorf("jpegx: DC difference %d out of baseline range", diff)
	}
	em.dcSym(slot, byte(n), val, n)

	m := nz &^ 1
	prev := 0
	for m != 0 {
		k := bits.TrailingZeros64(m)
		m &= m - 1
		v := b[zigzag[k]]
		if v == 0 {
			continue // spurious hint bit: part of the zero run
		}
		run := k - prev - 1
		prev = k
		for run > 15 {
			em.acSym(slot, 0xF0, 0, 0) // ZRL
			run -= 16
		}
		n, val := magnitude(v)
		if n > 10 {
			return fmt.Errorf("jpegx: AC coefficient %d out of baseline range", v)
		}
		em.acSym(slot, byte(run<<4)|byte(n), val, n)
	}
	if prev != 63 {
		em.acSym(slot, 0x00, 0, 0) // EOB
	}
	return nil
}

// checkCoeffRange validates that all coefficients fit baseline Huffman
// magnitude categories before any bytes are written.
func (e *encoder) checkCoeffRange() error {
	for ci := range e.img.Components {
		c := &e.img.Components[ci]
		for bi := range c.Blocks {
			b := &c.Blocks[bi]
			if b[0] < -32768 || b[0] > 32767 {
				return fmt.Errorf("jpegx: component %d block %d: DC %d out of range", ci, bi, b[0])
			}
			for k := 1; k < 64; k++ {
				if v := b[k]; v < -1023 || v > 1023 {
					return fmt.Errorf("jpegx: component %d block %d: AC %d out of range", ci, bi, v)
				}
			}
		}
	}
	return nil
}
