package jpegx

import (
	"bufio"
	"fmt"
	"io"

	"p3/internal/work"
)

// EncodeOptions configures JPEG serialization.
type EncodeOptions struct {
	// OptimizeHuffman computes per-image optimal Huffman tables with a
	// statistics pass instead of using the Annex-K tables. Progressive
	// encoding always optimizes (the standard tables lack EOB-run symbols).
	OptimizeHuffman bool

	// Progressive emits a progressive (SOF2) stream with the conventional
	// 10-scan script (spectral selection + successive approximation),
	// mirroring what PSPs like Facebook serve.
	Progressive bool

	// RestartInterval inserts RSTn markers every this many MCUs in baseline
	// scans. 0 disables restarts.
	RestartInterval int

	// Workers fans the Huffman-optimization statistics pass out over bands
	// of MCU rows (baseline, no restart markers). Symbol frequencies are
	// summed across bands, so the derived tables — and therefore the output
	// bytes — are identical to a sequential encode. nil runs sequentially.
	Workers *work.Pool
}

// EncodeCoeffs serializes a coefficient image to a JPEG stream without any
// further loss: decoding the output with Decode yields coefficient blocks
// identical to im. This is the path P3 uses to store its public and secret
// parts as standards-compliant JPEGs.
func EncodeCoeffs(w io.Writer, im *CoeffImage, opts *EncodeOptions) error {
	if opts == nil {
		opts = &EncodeOptions{}
	}
	if err := im.validate(); err != nil {
		return err
	}
	bufw := bufio.NewWriter(w)
	e := &encoder{w: bufw, img: im, opts: opts}
	var err error
	if opts.Progressive {
		err = e.encodeProgressive()
	} else {
		err = e.encodeBaseline()
	}
	if err != nil {
		return err
	}
	return bufw.Flush()
}

type encoder struct {
	w    *bufio.Writer
	img  *CoeffImage
	opts *EncodeOptions
}

func (e *encoder) writeMarker(m byte) error {
	_, err := e.w.Write([]byte{0xFF, m})
	return err
}

func (e *encoder) writeSegment(m byte, payload []byte) error {
	if len(payload) > 65533 {
		return fmt.Errorf("jpegx: segment 0x%02x payload too long (%d)", m, len(payload))
	}
	if err := e.writeMarker(m); err != nil {
		return err
	}
	n := len(payload) + 2
	if _, err := e.w.Write([]byte{byte(n >> 8), byte(n)}); err != nil {
		return err
	}
	_, err := e.w.Write(payload)
	return err
}

// writeHeaders emits SOI, preserved markers (or a default JFIF APP0), DQT,
// SOF and DRI.
func (e *encoder) writeHeaders(sofMarker byte) error {
	if err := e.writeMarker(mSOI); err != nil {
		return err
	}
	if len(e.img.Markers) == 0 {
		// Default JFIF 1.01 header, 1:1 aspect, no thumbnail.
		jfif := []byte{'J', 'F', 'I', 'F', 0, 1, 1, 0, 0, 1, 0, 1, 0, 0}
		if err := e.writeSegment(mAPP0, jfif); err != nil {
			return err
		}
	}
	for _, seg := range e.img.Markers {
		if err := e.writeSegment(seg.Marker, seg.Data); err != nil {
			return err
		}
	}
	// DQT: one segment per table, 8-bit precision (entries are ≤ 255 for
	// baseline; clamp defensively).
	for tq, q := range e.img.Quant {
		if q == nil {
			continue
		}
		payload := make([]byte, 1+64)
		payload[0] = byte(tq) // Pq=0
		for zz := 0; zz < 64; zz++ {
			v := q[zigzag[zz]]
			if v > 255 {
				v = 255
			}
			payload[1+zz] = byte(v)
		}
		if err := e.writeSegment(mDQT, payload); err != nil {
			return err
		}
	}
	// SOF.
	nc := len(e.img.Components)
	payload := make([]byte, 6+3*nc)
	payload[0] = 8 // precision
	payload[1] = byte(e.img.Height >> 8)
	payload[2] = byte(e.img.Height)
	payload[3] = byte(e.img.Width >> 8)
	payload[4] = byte(e.img.Width)
	payload[5] = byte(nc)
	for i := 0; i < nc; i++ {
		c := &e.img.Components[i]
		payload[6+3*i] = c.ID
		payload[7+3*i] = byte(c.H<<4 | c.V)
		payload[8+3*i] = byte(c.TqIndex)
	}
	if err := e.writeSegment(sofMarker, payload); err != nil {
		return err
	}
	if e.opts.RestartInterval > 0 && !e.opts.Progressive {
		ri := e.opts.RestartInterval
		if err := e.writeSegment(mDRI, []byte{byte(ri >> 8), byte(ri)}); err != nil {
			return err
		}
	}
	return nil
}

func (e *encoder) writeDHT(class, slot int, spec *HuffSpec) error {
	payload := make([]byte, 0, 1+16+len(spec.Symbols))
	payload = append(payload, byte(class<<4|slot))
	payload = append(payload, spec.Counts[:]...)
	payload = append(payload, spec.Symbols...)
	return e.writeSegment(mDHT, payload)
}

func (e *encoder) writeSOS(scomps []scanComp, ss, se, ah, al int) error {
	payload := make([]byte, 0, 4+2*len(scomps))
	payload = append(payload, byte(len(scomps)))
	for _, sc := range scomps {
		c := &e.img.Components[sc.ci]
		payload = append(payload, c.ID, byte(sc.dcSel<<4|sc.acSel))
	}
	payload = append(payload, byte(ss), byte(se), byte(ah<<4|al))
	return e.writeSegment(mSOS, payload)
}

// emitter either writes entropy-coded bits or, in statistics mode, counts
// symbol frequencies for optimal table construction.
type emitter struct {
	bw     *bitWriter
	dcEnc  [2]*huffEncoder
	acEnc  [2]*huffEncoder
	dcFreq [2]*[256]int64
	acFreq [2]*[256]int64
	stats  bool
}

// newStatsEmitter returns an emitter in statistics mode with zeroed
// frequency tables.
func newStatsEmitter() *emitter {
	em := &emitter{stats: true}
	for i := range em.dcFreq {
		em.dcFreq[i] = &[256]int64{}
		em.acFreq[i] = &[256]int64{}
	}
	return em
}

// add accumulates another statistics emitter's frequencies. Addition is
// commutative, so merging band-local counts in index order yields exactly
// the sequential pass's tables.
func (em *emitter) add(other *emitter) {
	for s := range em.dcFreq {
		for i := range em.dcFreq[s] {
			em.dcFreq[s][i] += other.dcFreq[s][i]
			em.acFreq[s][i] += other.acFreq[s][i]
		}
	}
}

func (em *emitter) dcSymbol(slot int, sym byte) {
	if em.stats {
		em.dcFreq[slot][sym]++
		return
	}
	em.dcEnc[slot].emit(em.bw, sym)
}

func (em *emitter) acSymbol(slot int, sym byte) {
	if em.stats {
		em.acFreq[slot][sym]++
		return
	}
	em.acEnc[slot].emit(em.bw, sym)
}

func (em *emitter) bits(v uint32, n uint) {
	if em.stats || n == 0 {
		return
	}
	em.bw.writeBits(v, n)
}

// encodeBaseline writes a single interleaved baseline scan.
func (e *encoder) encodeBaseline() error {
	if err := e.checkCoeffRange(); err != nil {
		return err
	}
	gray := len(e.img.Components) == 1

	dcSpecs := [2]*HuffSpec{StdDCLuma(), StdDCChroma()}
	acSpecs := [2]*HuffSpec{StdACLuma(), StdACChroma()}
	if e.opts.OptimizeHuffman {
		em := newStatsEmitter()
		if err := e.baselineStats(em); err != nil {
			return err
		}
		nSlots := 2
		if gray {
			nSlots = 1
		}
		for s := 0; s < nSlots; s++ {
			spec, err := BuildOptimalSpec(em.dcFreq[s])
			if err != nil {
				return fmt.Errorf("jpegx: optimizing DC table %d: %w", s, err)
			}
			dcSpecs[s] = spec
			spec, err = BuildOptimalSpec(em.acFreq[s])
			if err != nil {
				return fmt.Errorf("jpegx: optimizing AC table %d: %w", s, err)
			}
			acSpecs[s] = spec
		}
	}

	if err := e.writeHeaders(mSOF0); err != nil {
		return err
	}
	nSlots := 2
	if gray {
		nSlots = 1
	}
	for s := 0; s < nSlots; s++ {
		if err := e.writeDHT(0, s, dcSpecs[s]); err != nil {
			return err
		}
		if err := e.writeDHT(1, s, acSpecs[s]); err != nil {
			return err
		}
	}
	scomps := e.allComponentsScan()
	if err := e.writeSOS(scomps, 0, 63, 0, 0); err != nil {
		return err
	}

	em := &emitter{bw: newBitWriter(e.w)}
	for s := 0; s < nSlots; s++ {
		var err error
		if em.dcEnc[s], err = newHuffEncoder(dcSpecs[s]); err != nil {
			return err
		}
		if em.acEnc[s], err = newHuffEncoder(acSpecs[s]); err != nil {
			return err
		}
	}
	if err := e.baselineScan(em); err != nil {
		return err
	}
	if err := em.bw.pad(); err != nil {
		return err
	}
	return e.writeMarker(mEOI)
}

// allComponentsScan builds the scan-component list with the conventional
// slot assignment: luma uses tables 0, chroma tables 1.
func (e *encoder) allComponentsScan() []scanComp {
	scomps := make([]scanComp, len(e.img.Components))
	for i := range scomps {
		slot := 0
		if i > 0 {
			slot = 1
		}
		scomps[i] = scanComp{ci: i, dcSel: slot, acSel: slot}
	}
	return scomps
}

// baselineStats runs the statistics pass, fanned out over bands of MCU rows
// on opts.Workers when the scan has no restart markers. Each band seeds its
// DC predictors from the last block preceding it — DC prediction needs only
// the previous block's value, which is already in memory — so bands are
// independent and their summed counts equal the sequential pass's exactly.
func (e *encoder) baselineStats(em *emitter) error {
	pool := e.opts.Workers
	_, mcusY := e.img.mcuDims()
	bands := pool.Size()
	if bands > mcusY {
		bands = mcusY
	}
	if bands <= 1 || e.opts.RestartInterval > 0 {
		// Restart markers reset predictors on a global MCU counter, which
		// crosses band boundaries; keep that rare path sequential.
		return e.baselineScan(em)
	}
	parts := make([]*emitter, bands)
	err := pool.Do(bands, func(i int) error {
		part := newStatsEmitter()
		parts[i] = part
		return e.baselineStatsRows(part, mcusY*i/bands, mcusY*(i+1)/bands)
	})
	if err != nil {
		return err
	}
	for _, part := range parts {
		em.add(part)
	}
	return nil
}

// baselineStatsRows feeds MCU rows [my0, my1) to a statistics emitter,
// assuming no restart markers.
func (e *encoder) baselineStatsRows(em *emitter, my0, my1 int) error {
	scomps := e.allComponentsScan()
	dcPred := make([]int32, len(e.img.Components))
	for i := range dcPred {
		c := &e.img.Components[i]
		if my0 > 0 {
			// The block encoded immediately before this band, in scan order,
			// is the last block of the preceding MCU row.
			dcPred[i] = c.Blocks[(my0*c.V)*c.BlocksX-1][0]
		}
	}
	mcusX, _ := e.img.mcuDims()
	for my := my0; my < my1; my++ {
		for mx := 0; mx < mcusX; mx++ {
			for _, sc := range scomps {
				c := &e.img.Components[sc.ci]
				for v := 0; v < c.V; v++ {
					for h := 0; h < c.H; h++ {
						b := c.Block(mx*c.H+h, my*c.V+v)
						if err := encodeBaselineBlock(em, sc.dcSel, b, &dcPred[sc.ci]); err != nil {
							return err
						}
					}
				}
			}
		}
	}
	return nil
}

// baselineScan runs the MCU walk once, feeding the emitter.
func (e *encoder) baselineScan(em *emitter) error {
	scomps := e.allComponentsScan()
	dcPred := make([]int32, len(e.img.Components))
	ri := e.opts.RestartInterval
	mcusX, mcusY := e.img.mcuDims()
	mcu := 0
	rst := 0
	for my := 0; my < mcusY; my++ {
		for mx := 0; mx < mcusX; mx++ {
			for _, sc := range scomps {
				c := &e.img.Components[sc.ci]
				slot := sc.dcSel
				for v := 0; v < c.V; v++ {
					for h := 0; h < c.H; h++ {
						b := c.Block(mx*c.H+h, my*c.V+v)
						if err := encodeBaselineBlock(em, slot, b, &dcPred[sc.ci]); err != nil {
							return err
						}
					}
				}
			}
			mcu++
			if ri > 0 && mcu%ri == 0 && !(my == mcusY-1 && mx == mcusX-1) {
				if !em.stats {
					if err := em.bw.pad(); err != nil {
						return err
					}
					if err := e.writeMarker(byte(mRST0 + rst%8)); err != nil {
						return err
					}
				}
				rst++
				for i := range dcPred {
					dcPred[i] = 0
				}
			}
		}
	}
	return nil
}

func encodeBaselineBlock(em *emitter, slot int, b *Block, pred *int32) error {
	diff := b[0] - *pred
	*pred = b[0]
	n, bits := magnitude(diff)
	if n > 11 {
		return fmt.Errorf("jpegx: DC difference %d out of baseline range", diff)
	}
	em.dcSymbol(slot, byte(n))
	em.bits(bits, n)

	run := 0
	for k := 1; k < 64; k++ {
		v := b[zigzag[k]]
		if v == 0 {
			run++
			continue
		}
		for run > 15 {
			em.acSymbol(slot, 0xF0) // ZRL
			run -= 16
		}
		n, bits := magnitude(v)
		if n > 10 {
			return fmt.Errorf("jpegx: AC coefficient %d out of baseline range", v)
		}
		em.acSymbol(slot, byte(run<<4)|byte(n))
		em.bits(bits, n)
		run = 0
	}
	if run > 0 {
		em.acSymbol(slot, 0x00) // EOB
	}
	return nil
}

// checkCoeffRange validates that all coefficients fit baseline Huffman
// magnitude categories before any bytes are written.
func (e *encoder) checkCoeffRange() error {
	for ci := range e.img.Components {
		c := &e.img.Components[ci]
		for bi := range c.Blocks {
			b := &c.Blocks[bi]
			if b[0] < -32768 || b[0] > 32767 {
				return fmt.Errorf("jpegx: component %d block %d: DC %d out of range", ci, bi, b[0])
			}
			for k := 1; k < 64; k++ {
				if v := b[k]; v < -1023 || v > 1023 {
					return fmt.Errorf("jpegx: component %d block %d: AC %d out of range", ci, bi, v)
				}
			}
		}
	}
	return nil
}
