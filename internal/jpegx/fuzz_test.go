package jpegx

import (
	"bytes"
	"math/rand"
	"testing"
)

// The decoder consumes bytes fetched from untrusted services (the PSP and
// the blob store may tamper, §4.2), so no input may panic it: every
// corruption must surface as an error or a truncated-but-valid decode.

func mutationCorpus(t *testing.T) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	var corpus [][]byte
	for _, prog := range []bool{false, true} {
		im := randomCoeffImage(rng, 48, 40, false, Sub420)
		if prog {
			zeroPaddingAC(im)
		}
		var buf bytes.Buffer
		if err := EncodeCoeffs(&buf, im, &EncodeOptions{Progressive: prog, RestartInterval: 2}); err != nil {
			t.Fatal(err)
		}
		corpus = append(corpus, buf.Bytes())
	}
	return corpus
}

func TestDecodeNoPanicOnBitFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for ci, base := range mutationCorpus(t) {
		for trial := 0; trial < 300; trial++ {
			mutated := append([]byte(nil), base...)
			// Flip 1-4 random bits.
			for f := 0; f <= rng.Intn(4); f++ {
				mutated[rng.Intn(len(mutated))] ^= 1 << uint(rng.Intn(8))
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("corpus %d trial %d: panic: %v", ci, trial, r)
					}
				}()
				_, _ = Decode(bytes.NewReader(mutated))
			}()
		}
	}
}

func TestDecodeNoPanicOnTruncationAndGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for ci, base := range mutationCorpus(t) {
		for cut := 1; cut < len(base); cut += 1 + len(base)/97 {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("corpus %d cut %d: panic: %v", ci, cut, r)
					}
				}()
				_, _ = Decode(bytes.NewReader(base[:cut]))
			}()
		}
		// Random garbage appended after EOI must not break a full decode.
		withTrailer := append(append([]byte(nil), base...), 0xDE, 0xAD, 0xBE, 0xEF)
		if _, err := Decode(bytes.NewReader(withTrailer)); err != nil {
			t.Errorf("corpus %d: trailing garbage broke decode: %v", ci, err)
		}
	}
	// Pure random garbage of various sizes.
	for trial := 0; trial < 200; trial++ {
		garbage := make([]byte, rng.Intn(512))
		rng.Read(garbage)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("garbage trial %d: panic: %v", trial, r)
				}
			}()
			_, _ = Decode(bytes.NewReader(garbage))
		}()
	}
}

// FuzzDecode feeds arbitrary bytes to the decoder. Invariants: no panic, no
// unbounded allocation (the 64 Mpixel SOF cap bounds the big arrays), and
// DecodeInto through a reused scratch+destination behaves exactly like a
// fresh Decode — success/failure and, on success, the decoded coefficients
// must match, or pooled state is leaking between images.
//
// Run with `go test -fuzz=FuzzDecode ./internal/jpegx`.
func FuzzDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(7))
	var seeds [][]byte
	for _, prog := range []bool{false, true} {
		for _, gray := range []bool{false, true} {
			im := randomCoeffImage(rng, 40, 32, gray, Sub420)
			if prog {
				zeroPaddingAC(im)
			}
			var buf bytes.Buffer
			opts := &EncodeOptions{Progressive: prog, OptimizeHuffman: true}
			if !prog {
				opts.RestartInterval = 3
			}
			if err := EncodeCoeffs(&buf, im, opts); err != nil {
				f.Fatal(err)
			}
			seeds = append(seeds, buf.Bytes())
		}
	}
	for _, base := range seeds {
		f.Add(base)
		f.Add(base[:len(base)/2]) // truncated mid-scan
		f.Add(base[:20])          // truncated in the headers
		corrupted := append([]byte(nil), base...)
		for i := 0; i < 8; i++ {
			corrupted[rng.Intn(len(corrupted))] ^= 1 << uint(rng.Intn(8))
		}
		f.Add(corrupted)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xD8, 0xFF, 0xD9})

	var scratch DecoderScratch
	var dst CoeffImage
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		fresh, freshErr := Decode(bytes.NewReader(data))
		reused, reusedErr := DecodeInto(bytes.NewReader(data), &dst, &scratch)
		if (freshErr == nil) != (reusedErr == nil) {
			t.Fatalf("fresh err %v, reused err %v", freshErr, reusedErr)
		}
		if freshErr == nil && !coeffImagesEqual(fresh, reused) {
			t.Fatal("DecodeInto with reused state decoded different coefficients")
		}
	})
}

// TestDecodeNoPanicOnStructuredMutations targets the segment machinery:
// corrupt specific structural bytes (lengths, table ids, sampling factors).
func TestDecodeNoPanicOnStructuredMutations(t *testing.T) {
	base := mutationCorpus(t)[0]
	for pos := 2; pos < len(base) && pos < 700; pos++ {
		for _, val := range []byte{0x00, 0xFF, 0x80, 0x01} {
			mutated := append([]byte(nil), base...)
			mutated[pos] = val
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("pos %d val %#02x: panic: %v", pos, val, r)
					}
				}()
				_, _ = Decode(bytes.NewReader(mutated))
			}()
		}
	}
}

// FuzzEntropyRoundTrip is the lossless-codec contract under fuzzing: any
// coefficient image the generator can produce must survive encode → decode
// bit-exactly, across every entropy-coding mode (standard vs optimized
// Huffman tables, baseline vs progressive, restart markers). The LUT decoder
// and the fused split share this entropy layer, so a drift here corrupts
// stored parts silently.
func FuzzEntropyRoundTrip(f *testing.F) {
	f.Add(int64(1), uint16(64), uint16(48), uint8(0))
	f.Add(int64(2), uint16(129), uint16(97), uint8(0b00111))
	f.Add(int64(3), uint16(40), uint16(40), uint8(0b01010))
	f.Add(int64(4), uint16(8), uint16(8), uint8(0b11101))
	f.Fuzz(func(t *testing.T, seed int64, w, h uint16, flags uint8) {
		width := int(w)%512 + 1
		height := int(h)%512 + 1
		gray := flags&1 != 0
		sub := Subsampling(flags>>1) % 3
		progressive := flags&8 != 0
		optimize := flags&16 != 0 || progressive
		var restart int
		if flags&32 != 0 {
			restart = int(seed)&7 + 1
		}
		rng := rand.New(rand.NewSource(seed))
		im := randomCoeffImage(rng, width, height, gray, sub)
		if progressive {
			// Progressive decoding cannot represent nonzero coefficients in
			// padding blocks; the generator may have produced some.
			zeroPaddingAC(im)
		}
		var buf bytes.Buffer
		err := EncodeCoeffs(&buf, im, &EncodeOptions{
			OptimizeHuffman: optimize,
			Progressive:     progressive,
			RestartInterval: restart,
		})
		if err != nil {
			t.Fatalf("encode (%dx%d gray=%v sub=%v prog=%v opt=%v rst=%d): %v",
				width, height, gray, sub, progressive, optimize, restart, err)
		}
		got, err := DecodeBytes(buf.Bytes())
		if err != nil {
			t.Fatalf("decode own output (%dx%d prog=%v): %v", width, height, progressive, err)
		}
		if !coeffImagesEqual(im, got) {
			t.Fatalf("round trip not bit-exact (%dx%d gray=%v sub=%v prog=%v opt=%v rst=%d)",
				width, height, gray, sub, progressive, optimize, restart)
		}
	})
}
