package jpegx

import "fmt"

// Progressive (SOF2) encoding with the conventional scan script used by
// jpegtran and the IJG library: an initial coarse DC scan, spectrally
// selected AC bands with successive approximation, then refinement scans.
// PSPs such as Facebook re-encode uploads to exactly this kind of stream
// (§2.1 of the paper), so the PSP simulator uses this path.

// scanSpec describes one scan of the progressive script.
type scanSpec struct {
	comps  []int // component indices; len>1 only allowed for DC scans
	ss, se int
	ah, al int
}

// progressiveScript returns the standard 10-scan script (3 components) or
// its grayscale reduction.
func progressiveScript(nComps int) []scanSpec {
	if nComps == 1 {
		return []scanSpec{
			{comps: []int{0}, ss: 0, se: 0, ah: 0, al: 1},
			{comps: []int{0}, ss: 1, se: 5, ah: 0, al: 2},
			{comps: []int{0}, ss: 6, se: 63, ah: 0, al: 2},
			{comps: []int{0}, ss: 1, se: 63, ah: 2, al: 1},
			{comps: []int{0}, ss: 0, se: 0, ah: 1, al: 0},
			{comps: []int{0}, ss: 1, se: 63, ah: 1, al: 0},
		}
	}
	return []scanSpec{
		{comps: []int{0, 1, 2}, ss: 0, se: 0, ah: 0, al: 1},
		{comps: []int{0}, ss: 1, se: 5, ah: 0, al: 2},
		{comps: []int{2}, ss: 1, se: 63, ah: 0, al: 1},
		{comps: []int{1}, ss: 1, se: 63, ah: 0, al: 1},
		{comps: []int{0}, ss: 6, se: 63, ah: 0, al: 2},
		{comps: []int{0}, ss: 1, se: 63, ah: 2, al: 1},
		{comps: []int{0, 1, 2}, ss: 0, se: 0, ah: 1, al: 0},
		{comps: []int{2}, ss: 1, se: 63, ah: 1, al: 0},
		{comps: []int{1}, ss: 1, se: 63, ah: 1, al: 0},
		{comps: []int{0}, ss: 1, se: 63, ah: 1, al: 0},
	}
}

// progState carries EOB-run and correction-bit state across blocks of one
// scan; one instance is reused for every scan of the script so the bit
// buffers are allocated once per encode. eobBits holds refinement correction
// bits owned by blocks already absorbed into the pending EOB run; they are
// emitted right after the EOBn symbol, in block order, which is where the
// decoder's EOB-run refinement path consumes them. blockBits is
// encodeACRefineBlock's per-block staging buffer.
type progState struct {
	em        *emitter
	slot      int
	eobRun    int32
	eobBits   []byte
	blockBits []byte
}

// resetFor prepares the reused state for one scan's walk.
func (ps *progState) resetFor(em *emitter, slot int) {
	ps.em = em
	ps.slot = slot
	ps.eobRun = 0
	ps.eobBits = ps.eobBits[:0]
	ps.blockBits = ps.blockBits[:0]
}

func (ps *progState) flushEOBRun() {
	if ps.eobRun > 0 {
		nbits := uint(0)
		for t := ps.eobRun >> 1; t > 0; t >>= 1 {
			nbits++
		}
		ps.em.acSym(ps.slot, byte(nbits<<4), uint32(ps.eobRun)&(1<<nbits-1), nbits)
		ps.eobRun = 0
	}
	ps.em.rawBits(ps.eobBits)
	ps.eobBits = ps.eobBits[:0]
}

func (e *encoder) encodeProgressive() error {
	if err := e.checkCoeffRange(); err != nil {
		return err
	}
	script := progressiveScript(len(e.img.Components))
	gray := len(e.img.Components) == 1

	// Statistics pass: progressive streams need optimal tables because the
	// Annex-K tables lack EOBn (n>0) symbols. The pass records a replay
	// token stream, so each scan's emission below is a linear replay of its
	// token range instead of a second walk over the blocks.
	bufp := tokenBufs.Get().(*[]uint32)
	defer func() { tokenBufs.Put(bufp) }()
	stats := newStatsEmitter(*bufp)
	var ps progState
	scanEnd := make([]int, len(script))
	for i, sc := range script {
		if err := e.runScan(sc, stats, &ps); err != nil {
			*bufp = stats.tokens
			return err
		}
		scanEnd[i] = len(stats.tokens)
	}
	*bufp = stats.tokens

	var dcSpecs, acSpecs [2]*HuffSpec
	nSlots := 2
	if gray {
		nSlots = 1
	}
	for s := 0; s < nSlots; s++ {
		anyDC, anyAC := false, false
		for _, f := range stats.dcFreq[s] {
			if f > 0 {
				anyDC = true
				break
			}
		}
		for _, f := range stats.acFreq[s] {
			if f > 0 {
				anyAC = true
				break
			}
		}
		if anyDC {
			spec, err := BuildOptimalSpec(stats.dcFreq[s])
			if err != nil {
				return fmt.Errorf("jpegx: optimizing DC table %d: %w", s, err)
			}
			dcSpecs[s] = spec
		}
		if anyAC {
			spec, err := BuildOptimalSpec(stats.acFreq[s])
			if err != nil {
				return fmt.Errorf("jpegx: optimizing AC table %d: %w", s, err)
			}
			acSpecs[s] = spec
		}
	}

	if err := e.writeHeaders(mSOF2); err != nil {
		return err
	}
	for s := 0; s < nSlots; s++ {
		if dcSpecs[s] != nil {
			if err := e.writeDHT(0, s, dcSpecs[s]); err != nil {
				return err
			}
		}
		if acSpecs[s] != nil {
			if err := e.writeDHT(1, s, acSpecs[s]); err != nil {
				return err
			}
		}
	}

	em := &emitter{}
	for s := 0; s < nSlots; s++ {
		var err error
		if dcSpecs[s] != nil {
			if em.dcEnc[s], err = newHuffEncoder(dcSpecs[s]); err != nil {
				return err
			}
		}
		if acSpecs[s] != nil {
			if em.acEnc[s], err = newHuffEncoder(acSpecs[s]); err != nil {
				return err
			}
		}
	}

	em.bw = newBitWriter(e.w)
	start := 0
	rst := 0
	for i, sc := range script {
		scomps := make([]scanComp, len(sc.comps))
		for j, ci := range sc.comps {
			slot := 0
			if ci > 0 {
				slot = 1
			}
			scomps[j] = scanComp{ci: ci, dcSel: slot, acSel: slot}
		}
		if err := e.writeSOS(scomps, sc.ss, sc.se, sc.ah, sc.al); err != nil {
			return err
		}
		em.bw.reset(e.w)
		if err := e.replayTokens(em, stats.tokens[start:scanEnd[i]], &rst); err != nil {
			return err
		}
		start = scanEnd[i]
		if err := em.bw.pad(); err != nil {
			return err
		}
	}
	return e.writeMarker(mEOI)
}

// runScan walks the blocks of one progressive scan in scan order, emitting
// symbols to em; ps is the reused per-scan state.
func (e *encoder) runScan(sc scanSpec, em *emitter, ps *progState) error {
	if sc.ss == 0 {
		return e.runDCScan(sc, em)
	}
	if len(sc.comps) != 1 {
		return fmt.Errorf("jpegx: AC scan with %d components", len(sc.comps))
	}
	return e.runACScan(sc, em, ps)
}

func (e *encoder) runDCScan(sc scanSpec, em *emitter) error {
	dcPred := make([]int32, len(e.img.Components))
	mcusX, mcusY := e.img.mcuDims()
	interleaved := len(sc.comps) > 1

	visit := func(ci int, b *Block) error {
		slot := 0
		if ci > 0 {
			slot = 1
		}
		if sc.ah == 0 {
			// First pass: code (DC >> Al) differentially. Per T.81 the DC
			// point transform is an arithmetic shift (toward -inf), unlike
			// the AC transform which truncates the magnitude toward zero;
			// the refinement pass then ORs in the low bits one at a time.
			v := b[0] >> uint(sc.al)
			diff := v - dcPred[ci]
			dcPred[ci] = v
			n, val := magnitude(diff)
			if n > 15 {
				return fmt.Errorf("jpegx: DC difference %d out of range", diff)
			}
			em.dcSym(slot, byte(n), val, n)
			return nil
		}
		// Refinement: one bit per block.
		em.raw(uint32(b[0]>>uint(sc.al))&1, 1)
		return nil
	}

	if interleaved {
		for my := 0; my < mcusY; my++ {
			for mx := 0; mx < mcusX; mx++ {
				for _, ci := range sc.comps {
					c := &e.img.Components[ci]
					for v := 0; v < c.V; v++ {
						for h := 0; h < c.H; h++ {
							if err := visit(ci, c.Block(mx*c.H+h, my*c.V+v)); err != nil {
								return err
							}
						}
					}
				}
			}
		}
		return nil
	}
	ci := sc.comps[0]
	c := &e.img.Components[ci]
	bw, bh := e.compScanDimsEnc(c)
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			if err := visit(ci, c.Block(bx, by)); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *encoder) runACScan(sc scanSpec, em *emitter, ps *progState) error {
	ci := sc.comps[0]
	slot := 0
	if ci > 0 {
		slot = 1
	}
	c := &e.img.Components[ci]
	bw, bh := e.compScanDimsEnc(c)
	ps.resetFor(em, slot)
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			b := c.Block(bx, by)
			var err error
			if sc.ah == 0 {
				err = encodeACFirstBlock(ps, b, sc.ss, sc.se, sc.al)
			} else {
				err = encodeACRefineBlock(ps, b, sc.ss, sc.se, sc.al)
			}
			if err != nil {
				return err
			}
		}
	}
	ps.flushEOBRun()
	return nil
}

// pointTransform applies the JPEG point transform: arithmetic shift that
// rounds toward zero (divide magnitude by 2^al, keep sign).
func pointTransform(v int32, al int) int32 {
	if v >= 0 {
		return v >> uint(al)
	}
	return -((-v) >> uint(al))
}

func encodeACFirstBlock(ps *progState, b *Block, ss, se, al int) error {
	run := 0
	for k := ss; k <= se; k++ {
		v := pointTransform(b[zigzag[k]], al)
		if v == 0 {
			run++
			continue
		}
		ps.flushEOBRun()
		for run > 15 {
			ps.em.acSym(ps.slot, 0xF0, 0, 0)
			run -= 16
		}
		n, val := magnitude(v)
		if n > 10 {
			return fmt.Errorf("jpegx: AC coefficient %d out of range", v)
		}
		ps.em.acSym(ps.slot, byte(run<<4)|byte(n), val, n)
		run = 0
	}
	if run > 0 {
		ps.eobRun++
		if ps.eobRun == 0x7FFF {
			ps.flushEOBRun()
		}
	}
	return nil
}

func encodeACRefineBlock(ps *progState, b *Block, ss, se, al int) error {
	// absVals[k] = |coeff| >> Al for the band; eobPos = last index with
	// absVal exactly 1 (a newly significant coefficient in this scan).
	var absVals [64]int32
	eobPos := ss - 1
	for k := ss; k <= se; k++ {
		v := b[zigzag[k]]
		if v < 0 {
			v = -v
		}
		v >>= uint(al)
		absVals[k] = v
		if v == 1 {
			eobPos = k
		}
	}
	run := 0
	blockBits := ps.blockBits[:0] // correction bits gathered while scanning this block
	emitBlockBits := func() {
		ps.em.rawBits(blockBits)
		blockBits = blockBits[:0]
	}
	for k := ss; k <= se; k++ {
		v := absVals[k]
		if v == 0 {
			run++
			continue
		}
		for run > 15 && k <= eobPos {
			ps.flushEOBRun()
			ps.em.acSym(ps.slot, 0xF0, 0, 0)
			run -= 16
			emitBlockBits()
		}
		if v > 1 {
			// History coefficient: append its correction bit; the run of
			// zeroes is not interrupted.
			blockBits = append(blockBits, byte(v&1))
			continue
		}
		// Newly significant coefficient: EOB run (with its bits), symbol,
		// sign bit, then the correction bits passed over in this block.
		ps.flushEOBRun()
		sign := uint32(0)
		if b[zigzag[k]] >= 0 {
			sign = 1
		}
		ps.em.acSym(ps.slot, byte(run<<4)|1, sign, 1)
		emitBlockBits()
		run = 0
	}
	ps.blockBits = blockBits // keep grown capacity for the next block
	if run > 0 || len(blockBits) > 0 {
		ps.eobRun++
		ps.eobBits = append(ps.eobBits, blockBits...)
		if ps.eobRun == 0x7FFF || len(ps.eobBits) > 900 {
			ps.flushEOBRun()
		}
	}
	return nil
}

// compScanDimsEnc mirrors decoder.compScanDims for the encoder.
func (e *encoder) compScanDimsEnc(c *Component) (int, int) {
	hMax, vMax := e.img.MaxSampling()
	cw := (e.img.Width*c.H + hMax - 1) / hMax
	ch := (e.img.Height*c.V + vMax - 1) / vMax
	return (cw + 7) / 8, (ch + 7) / 8
}
