package jpegx

// JPEG marker byte values (the byte following 0xFF).
const (
	mSOI  = 0xD8 // start of image
	mEOI  = 0xD9 // end of image
	mSOF0 = 0xC0 // baseline DCT
	mSOF1 = 0xC1 // extended sequential DCT (Huffman) — treated as baseline
	mSOF2 = 0xC2 // progressive DCT
	mDHT  = 0xC4 // define Huffman tables
	mDQT  = 0xDB // define quantization tables
	mDRI  = 0xDD // define restart interval
	mSOS  = 0xDA // start of scan
	mRST0 = 0xD0 // restart 0..7 are 0xD0..0xD7
	mAPP0 = 0xE0 // APP0..APP15 are 0xE0..0xEF
	mCOM  = 0xFE // comment
)

// isRST reports whether m is one of the RST0..RST7 markers.
func isRST(m byte) bool { return m >= 0xD0 && m <= 0xD7 }

// isAPP reports whether m is one of the APP0..APP15 markers.
func isAPP(m byte) bool { return m >= 0xE0 && m <= 0xEF }

// StripMarkers removes all application and comment segments from the image,
// as Facebook and Flickr do on upload (§4.1 of the paper: "at least 2 PSPs
// strip all application-specific markers"). It returns the number removed.
func (im *CoeffImage) StripMarkers() int {
	n := len(im.Markers)
	im.Markers = nil
	return n
}

// AddMarker appends an application or comment segment that the encoder will
// emit after SOI. marker must be APPn or COM and data at most 65533 bytes.
func (im *CoeffImage) AddMarker(marker byte, data []byte) {
	im.Markers = append(im.Markers, MarkerSegment{Marker: marker, Data: append([]byte(nil), data...)})
}
