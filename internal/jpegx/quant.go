package jpegx

import "fmt"

// QuantTable is an 8×8 quantization table in natural (row-major) order.
// Entries must lie in [1, 65535]; baseline JPEG additionally requires ≤ 255.
type QuantTable [64]uint16

// The example quantization tables from ITU-T T.81 Annex K.1, in natural
// order. These are the de-facto standard tables scaled by the IJG quality
// knob below; virtually every camera and PSP uses them or a close variant.
var (
	stdLumaQuant = QuantTable{
		16, 11, 10, 16, 24, 40, 51, 61,
		12, 12, 14, 19, 26, 58, 60, 55,
		14, 13, 16, 24, 40, 57, 69, 56,
		14, 17, 22, 29, 51, 87, 80, 62,
		18, 22, 37, 56, 68, 109, 103, 77,
		24, 35, 55, 64, 81, 104, 113, 92,
		49, 64, 78, 87, 103, 121, 120, 101,
		72, 92, 95, 98, 112, 100, 103, 99,
	}
	stdChromaQuant = QuantTable{
		17, 18, 24, 47, 99, 99, 99, 99,
		18, 21, 26, 66, 99, 99, 99, 99,
		24, 26, 56, 99, 99, 99, 99, 99,
		47, 66, 99, 99, 99, 99, 99, 99,
		99, 99, 99, 99, 99, 99, 99, 99,
		99, 99, 99, 99, 99, 99, 99, 99,
		99, 99, 99, 99, 99, 99, 99, 99,
		99, 99, 99, 99, 99, 99, 99, 99,
	}
)

// StandardQuantTables returns the Annex-K luma and chroma tables scaled to
// the given IJG-style quality in [1, 100]. Quality 50 yields the tables
// verbatim; higher quality divides the step sizes, lower multiplies them.
// The scaling formula matches the Independent JPEG Group's jpeg_set_quality,
// so files produced here are bit-compatible in spirit with libjpeg output at
// the same setting.
func StandardQuantTables(quality int) (luma, chroma QuantTable) {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	var scale int
	if quality < 50 {
		scale = 5000 / quality
	} else {
		scale = 200 - 2*quality
	}
	scaleTable := func(src QuantTable) QuantTable {
		var dst QuantTable
		for i, v := range src {
			q := (int(v)*scale + 50) / 100
			if q < 1 {
				q = 1
			}
			if q > 255 { // keep baseline-compatible 8-bit precision
				q = 255
			}
			dst[i] = uint16(q)
		}
		return dst
	}
	return scaleTable(stdLumaQuant), scaleTable(stdChromaQuant)
}

// FlatQuantTable returns a table with every entry equal to step. A flat
// table is useful for the P3 secret part, whose coefficient distribution
// after thresholding differs from natural images.
func FlatQuantTable(step uint16) QuantTable {
	if step == 0 {
		step = 1
	}
	var t QuantTable
	for i := range t {
		t[i] = step
	}
	return t
}

func (t *QuantTable) validate() error {
	for i, v := range t {
		if v == 0 {
			return fmt.Errorf("jpegx: quantization table entry %d is zero", i)
		}
	}
	return nil
}
