package metrics

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramPercentiles checks the percentile estimates against a known
// distribution. Buckets are factor-of-2 wide, so the estimate of a true
// quantile q must land within [q/2, 2q].
func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	// Uniform 1..1000 ms, every value observed once: the true q-th
	// percentile of the distribution is q*1000 ms.
	for ms := 1; ms <= 1000; ms++ {
		h.Observe(time.Duration(ms) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("Count = %d, want 1000", s.Count)
	}
	wantSum := time.Duration(1000*1001/2) * time.Millisecond
	if s.Sum != wantSum {
		t.Errorf("Sum = %v, want %v", s.Sum, wantSum)
	}
	checks := []struct {
		name string
		got  time.Duration
		want time.Duration
	}{
		{"p50", s.P50, 500 * time.Millisecond},
		{"p95", s.P95, 950 * time.Millisecond},
		{"p99", s.P99, 990 * time.Millisecond},
	}
	for _, c := range checks {
		lo, hi := c.want/2, c.want*2
		if c.got < lo || c.got > hi {
			t.Errorf("%s = %v, want within [%v, %v] of true %v", c.name, c.got, lo, hi, c.want)
		}
	}
}

// TestHistogramExactAtBoundaries pins the interpolation: observations all
// in one bucket whose edges are known must interpolate inside that bucket.
func TestHistogramExactAtBoundaries(t *testing.T) {
	var h Histogram
	// 100 observations of exactly 1024ns: bucket (512, 1024].
	for i := 0; i < 100; i++ {
		h.Observe(1024 * time.Nanosecond)
	}
	s := h.Snapshot()
	if s.P50 < 512 || s.P50 > 1024 {
		t.Errorf("P50 = %v, want within (512ns, 1024ns]", s.P50)
	}
	if s.P99 < 512 || s.P99 > 1024 {
		t.Errorf("P99 = %v, want within (512ns, 1024ns]", s.P99)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.P50 != 0 || s.P99 != 0 || s.Mean() != 0 {
		t.Errorf("empty histogram snapshot not all-zero: %+v", s)
	}
}

// TestHistogramSkewed checks percentiles on a long-tailed mix, the shape
// serving latencies actually have: 99 fast ops, 1 slow one.
func TestHistogramSkewed(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(1 * time.Millisecond)
	}
	h.Observe(2 * time.Second)
	s := h.Snapshot()
	if s.P50 > 2*time.Millisecond {
		t.Errorf("P50 = %v, want ~1ms", s.P50)
	}
	// p99 of 100 observations ranks at the 99th — still a fast op.
	if s.P99 > 2*time.Millisecond {
		t.Errorf("P99 = %v, want ~1ms", s.P99)
	}
}

// TestConcurrentIncrements hammers one counter, gauge and histogram from
// many goroutines (run under -race in CI) and checks the totals are exact.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("p3_test_ops_total", "test counter")
	g := r.Gauge("p3_test_depth", "test gauge")
	h := r.Histogram("p3_test_latency_seconds", "test histogram")
	const workers = 16
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(time.Duration(rng.Intn(1000)) * time.Microsecond)
				// Concurrent lookups of the same series must return the
				// same instrument, not race on registration.
				if r.Counter("p3_test_ops_total", "test counter") != c {
					panic("lookup returned a different counter")
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Snapshot().Count; got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestLabeledSeries checks that labels address distinct series and render
// in the exposition.
func TestLabeledSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("p3_cache_hits_total", "cache hits", Label{"cache", "secrets"})
	b := r.Counter("p3_cache_hits_total", "cache hits", Label{"cache", "variants"})
	if a == b {
		t.Fatal("differently labeled series share a counter")
	}
	a.Add(3)
	b.Add(7)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE p3_cache_hits_total counter",
		`p3_cache_hits_total{cache="secrets"} 3`,
		`p3_cache_hits_total{cache="variants"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestExpositionHistogram checks the cumulative-bucket rendering: le edges
// in seconds, monotone cumulative counts, +Inf equal to _count.
func TestExpositionHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("p3_codec_split_seconds", "split wall time", Label{"op", "split"})
	h.Observe(100 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(3 * time.Millisecond)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE p3_codec_split_seconds histogram",
		`p3_codec_split_seconds_bucket{op="split",le="+Inf"} 3`,
		`p3_codec_split_seconds_count{op="split"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Sum = 6.1ms within float rendering.
	if !strings.Contains(out, `p3_codec_split_seconds_sum{op="split"} 0.0061`) {
		t.Errorf("exposition missing sum ~0.0061:\n%s", out)
	}
}

// TestCounterAndGaugeFuncs checks scrape-time funcs and replacement.
func TestCounterAndGaugeFuncs(t *testing.T) {
	r := NewRegistry()
	n := uint64(41)
	r.SetCounterFunc("p3_shard_reads_total", "reads", func() uint64 { return n }, Label{"shard", "0"})
	n++
	r.SetGaugeFunc("p3_cache_bytes", "bytes held", func() float64 { return 1.5e6 }, Label{"cache", "variants"})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `p3_shard_reads_total{shard="0"} 42`) {
		t.Errorf("counter func not read at scrape time:\n%s", out)
	}
	if !strings.Contains(out, `p3_cache_bytes{cache="variants"} 1.5e+06`) {
		t.Errorf("gauge func missing:\n%s", out)
	}
	// Replacement must swap the closure, not add a second series.
	r.SetCounterFunc("p3_shard_reads_total", "reads", func() uint64 { return 100 }, Label{"shard", "0"})
	sb.Reset()
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "p3_shard_reads_total{"); got != 1 {
		t.Errorf("replaced func produced %d series, want 1", got)
	}
	if !strings.Contains(sb.String(), `p3_shard_reads_total{shard="0"} 100`) {
		t.Errorf("replacement not visible:\n%s", sb.String())
	}
}

// TestTypeMismatchPanics pins the fail-fast behavior on name reuse across
// metric types — always a programming error worth crashing on.
func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("p3_thing_total", "a counter")
	defer func() {
		if recover() == nil {
			t.Error("reusing a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("p3_thing_total", "now a gauge?")
}

func TestBucketFor(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{1, 0},
		{2, 1},
		{3, 2},
		{4, 2},
		{5, 3},
		{1024, 10},
		{time.Hour, histBuckets},
	}
	for _, c := range cases {
		if got := bucketFor(c.d); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	if !math.IsInf(bucketUpper(histBuckets), 1) {
		t.Error("overflow bucket upper bound not +Inf")
	}
}
