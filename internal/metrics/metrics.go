// Package metrics is the serving path's lock-cheap instrumentation layer:
// atomic counters and gauges, log-scale latency histograms with percentile
// snapshots, and a registry that renders everything as Prometheus-style
// text exposition.
//
// The design optimizes the write side — every proxy download, cache probe
// and codec call records through a single atomic add, no locks and no
// allocation — because instruments sit on hot paths serving high request
// rates, while reads (a /metrics scrape, a Stats snapshot) are rare and may
// pay for consistency.
//
// Instruments are obtained from a Registry by name plus optional labels;
// repeated lookups of the same (name, labels) return the same instrument,
// so independently constructed components share series naturally. The
// package-level Default registry is what cmd/p3proxy serves on GET
// /metrics; components built for tests can be pointed at a private
// NewRegistry instead.
//
// The one naming scheme used across the repo (documented in
// ARCHITECTURE.md): metrics are prefixed p3_, cumulative counters end in
// _total, histograms record seconds and end in _seconds, and instance
// dimensions (which cache, which shard, which proxy) are labels, never
// name suffixes.
package metrics

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing cumulative count. The zero value is
// ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways. The zero value
// is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of finite histogram buckets. Bucket i holds
// observations in (2^(i-1), 2^i] nanoseconds, so the finite range spans
// 1ns to 2^39 ns ≈ 550 s — comfortably past any serving-path latency —
// with a factor-of-2 resolution everywhere on the log scale. Anything
// larger lands in the overflow (+Inf) bucket.
const histBuckets = 40

// Histogram is a log-scale latency histogram. Observations cost one atomic
// add each; Snapshot walks the buckets to estimate percentiles. The zero
// value is ready to use.
type Histogram struct {
	counts   [histBuckets + 1]atomic.Uint64 // last bucket is +Inf overflow
	sumNanos atomic.Int64
}

// bucketFor returns the index of the bucket covering d: the smallest i with
// d <= 2^i nanoseconds.
func bucketFor(d time.Duration) int {
	ns := uint64(d.Nanoseconds())
	if ns <= 1 {
		return 0
	}
	i := bits.Len64(ns - 1) // ceil(log2(ns))
	if i > histBuckets {
		return histBuckets // +Inf
	}
	return i
}

// Observe records one duration. Negative durations are clamped to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketFor(d)].Add(1)
	h.sumNanos.Add(d.Nanoseconds())
}

// HistogramSnapshot is a point-in-time summary of a Histogram.
type HistogramSnapshot struct {
	Count         uint64
	Sum           time.Duration
	P50, P95, P99 time.Duration
}

// Mean returns the average observed duration, or 0 with no observations.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Snapshot returns the current count, sum and estimated percentiles.
// Percentiles are linearly interpolated inside the covering log-scale
// bucket, so the estimate is exact at bucket boundaries and off by at most
// the bucket width (a factor of 2) in between. Concurrent Observes make the
// snapshot approximate, never torn in a way that crashes.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [histBuckets + 1]uint64
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{Count: total, Sum: time.Duration(h.sumNanos.Load())}
	if total == 0 {
		return s
	}
	s.P50 = quantile(&counts, total, 0.50)
	s.P95 = quantile(&counts, total, 0.95)
	s.P99 = quantile(&counts, total, 0.99)
	return s
}

// bucketUpper returns the inclusive upper bound of bucket i in nanoseconds.
func bucketUpper(i int) float64 {
	if i >= histBuckets {
		return math.Inf(1)
	}
	return float64(uint64(1) << uint(i))
}

// quantile estimates the q-th quantile from a loaded bucket array.
func quantile(counts *[histBuckets + 1]uint64, total uint64, q float64) time.Duration {
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i := range counts {
		n := float64(counts[i])
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lower := 0.0
			if i > 0 {
				lower = bucketUpper(i - 1)
			}
			upper := bucketUpper(i)
			if math.IsInf(upper, 1) {
				// Overflow bucket has no finite upper edge; report its lower
				// edge rather than inventing a number.
				return time.Duration(lower)
			}
			frac := (rank - cum) / n
			return time.Duration(lower + (upper-lower)*frac)
		}
		cum += n
	}
	return time.Duration(bucketUpper(histBuckets - 1))
}

// CounterFunc is a monotonically increasing count read from elsewhere at
// scrape time — how existing counters (cache.Stats, shard stats) are
// exposed without double-counting state.
type CounterFunc func() uint64

// GaugeFunc is an instantaneous value read from elsewhere at scrape time.
type GaugeFunc func() float64

// Label is one key=value dimension of a metric series.
type Label struct {
	Key, Value string
}

// instrument is anything a series can hold.
type instrument interface{}

// series is one labeled instance of a metric family.
type series struct {
	labels string // rendered `{k="v",...}` form, "" when unlabeled
	inst   instrument
}

// family groups every series sharing one metric name.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	series map[string]*series
	order  []string // label strings in first-registration order
}

// Registry is a named collection of metric families. All methods are safe
// for concurrent use. Construct with NewRegistry, or use Default.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// Default is the process-wide registry: the root codec's split/join timings
// land here, proxies register here unless given a private registry, and
// cmd/p3proxy serves it on GET /metrics.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels renders labels in the given order as `{k="v",k2="v2"}`.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		for _, r := range l.Value {
			switch r {
			case '\\':
				b.WriteString(`\\`)
			case '"':
				b.WriteString(`\"`)
			case '\n':
				b.WriteString(`\n`)
			default:
				b.WriteRune(r)
			}
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns (creating if needed) the series for (name, labels),
// installing newInst when the series does not exist yet. It panics when the
// name is reused at a different metric type — always a programming error.
func (r *Registry) lookup(name, help, typ string, labels []Label, newInst func() instrument) instrument {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, inst: newInst()}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s.inst
}

// Counter returns the counter for (name, labels), creating and registering
// it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	inst := r.lookup(name, help, "counter", labels, func() instrument { return new(Counter) })
	c, ok := inst.(*Counter)
	if !ok {
		panic(fmt.Sprintf("metrics: %s%s is not a Counter", name, renderLabels(labels)))
	}
	return c
}

// Gauge returns the gauge for (name, labels), creating and registering it
// on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	inst := r.lookup(name, help, "gauge", labels, func() instrument { return new(Gauge) })
	g, ok := inst.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("metrics: %s%s is not a Gauge", name, renderLabels(labels)))
	}
	return g
}

// Histogram returns the histogram for (name, labels), creating and
// registering it on first use.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	inst := r.lookup(name, help, "histogram", labels, func() instrument { return new(Histogram) })
	h, ok := inst.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("metrics: %s%s is not a Histogram", name, renderLabels(labels)))
	}
	return h
}

// SetCounterFunc registers (or replaces) a counter series whose value is
// read by calling fn at scrape time. Replacement semantics let a component
// re-register its view after reconstruction without leaking dead closures.
func (r *Registry) SetCounterFunc(name, help string, fn CounterFunc, labels ...Label) {
	r.setFunc(name, help, "counter", fn, labels)
}

// SetGaugeFunc registers (or replaces) a gauge series read from fn at
// scrape time.
func (r *Registry) SetGaugeFunc(name, help string, fn GaugeFunc, labels ...Label) {
	r.setFunc(name, help, "gauge", fn, labels)
}

func (r *Registry) setFunc(name, help, typ string, fn instrument, labels []Label) {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	if s, ok := f.series[key]; ok {
		s.inst = fn
		return
	}
	f.series[key] = &series{labels: key, inst: fn}
	f.order = append(f.order, key)
}

// WritePrometheus renders every family in the text exposition format
// Prometheus scrapes: # HELP / # TYPE headers, one line per series,
// histograms as cumulative le-labeled buckets plus _sum and _count.
// Families are sorted by name for stable output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	// Snapshot the family/series structure under the lock; instrument reads
	// happen outside it (they are atomic or caller-supplied funcs).
	type seriesView struct {
		labels string
		inst   instrument
	}
	type familyView struct {
		name, help, typ string
		series          []seriesView
	}
	views := make([]familyView, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		fv := familyView{name: f.name, help: f.help, typ: f.typ}
		for _, key := range f.order {
			fv.series = append(fv.series, seriesView{labels: key, inst: f.series[key].inst})
		}
		views = append(views, fv)
	}
	r.mu.Unlock()

	for _, f := range views {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f.name, s.labels, s.inst); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatFloat renders a metric value the way Prometheus expects.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeSeries(w io.Writer, name, labels string, inst instrument) error {
	switch m := inst.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, labels, m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, labels, m.Value())
		return err
	case CounterFunc:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, labels, m())
		return err
	case GaugeFunc:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(m()))
		return err
	case *Histogram:
		return writeHistogram(w, name, labels, m)
	default:
		return fmt.Errorf("metrics: unknown instrument type %T for %s", inst, name)
	}
}

// writeHistogram renders cumulative buckets in seconds. Empty leading and
// trailing buckets are elided (the cumulative counts are unambiguous
// without them), keeping the exposition compact; the +Inf bucket is always
// emitted, as the format requires.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	var counts [histBuckets + 1]uint64
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	first, last := 0, histBuckets-1
	for first < histBuckets && counts[first] == 0 {
		first++
	}
	for last >= first && counts[last] == 0 {
		last--
	}
	// labelJoin splices the le label into an existing label set.
	labelJoin := func(le string) string {
		if labels == "" {
			return `{le="` + le + `"}`
		}
		return labels[:len(labels)-1] + `,le="` + le + `"}`
	}
	var cum uint64
	for i := first; i <= last; i++ {
		cum += counts[i]
		le := formatFloat(bucketUpper(i) / 1e9)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelJoin(le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelJoin("+Inf"), total); err != nil {
		return err
	}
	sum := float64(h.sumNanos.Load()) / 1e9
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, total)
	return err
}
