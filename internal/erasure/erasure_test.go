package erasure

import (
	"bytes"
	"math/rand"
	"testing"
)

// combinations calls fn with every size-k subset of [0, n).
func combinations(n, k int, fn func(idxs []int)) {
	idxs := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			fn(idxs)
			return
		}
		for i := start; i <= n-(k-depth); i++ {
			idxs[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}

// TestAnyKOfNRoundTrips is the codec's core property, checked exhaustively:
// for the schemes the store ships, EVERY k-subset of the n shares
// reconstructs the original bytes identically.
func TestAnyKOfNRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	schemes := [][2]int{{1, 2}, {2, 3}, {2, 4}, {3, 5}, {4, 6}, {5, 8}}
	sizes := []int{0, 1, 3, 4, 1000, 4096, 4097}
	for _, kn := range schemes {
		k, n := kn[0], kn[1]
		for _, size := range sizes {
			data := make([]byte, size)
			rng.Read(data)
			shares, err := Encode("obj", 7, data, k, n)
			if err != nil {
				t.Fatalf("Encode k=%d n=%d size=%d: %v", k, n, size, err)
			}
			if len(shares) != n {
				t.Fatalf("Encode returned %d shares, want %d", len(shares), n)
			}
			combinations(n, k, func(idxs []int) {
				subset := make([]Share, len(idxs))
				for i, idx := range idxs {
					subset[i] = shares[idx]
				}
				got, err := Reconstruct(subset)
				if err != nil {
					t.Fatalf("Reconstruct k=%d n=%d size=%d subset=%v: %v", k, n, size, idxs, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("k=%d n=%d size=%d subset=%v: reconstruction differs", k, n, size, idxs)
				}
			})
		}
	}
}

// TestSystematic verifies the first k shares are plain stripes of the data
// (the property that makes the healthy read path arithmetic-free).
func TestSystematic(t *testing.T) {
	data := []byte("0123456789abcdefXYZ")
	shares, err := Encode("obj", 1, data, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	stripe := (len(data) + 3) / 4
	for i := 0; i < 4; i++ {
		lo := min(i*stripe, len(data))
		hi := min(lo+stripe, len(data))
		want := make([]byte, stripe)
		copy(want, data[lo:hi])
		if !bytes.Equal(shares[i].Payload, want) {
			t.Errorf("data share %d = %q, want stripe %q", i, shares[i].Payload, want)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	s := Share{ID: "photo/äöü\x00weird", Epoch: 1234567890123, K: 4, N: 6, Index: 5,
		DataLen: 11, Payload: []byte{1, 2, 3}}
	got, err := ParseShare(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != s.ID || got.Epoch != s.Epoch || got.K != s.K || got.N != s.N ||
		got.Index != s.Index || got.DataLen != s.DataLen || !bytes.Equal(got.Payload, s.Payload) {
		t.Errorf("round trip: got %+v, want %+v", got, s)
	}
}

// TestCorruptionDetected flips every single byte of a marshalled share in
// turn: each corruption must surface as a parse error (checksum or header
// validation), never as a silently different share.
func TestCorruptionDetected(t *testing.T) {
	shares, err := Encode("obj", 3, []byte("some sealed secret bytes"), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	blob := shares[3].Marshal()
	for i := range blob {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x5a
		if _, err := ParseShare(mut); err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
	if _, err := ParseShare(blob[:10]); err == nil {
		t.Error("truncated share parsed")
	}
	if _, err := ParseShare([]byte("not a share at all")); err == nil {
		t.Error("arbitrary bytes parsed as share")
	}
}

func TestMixedSharesRejected(t *testing.T) {
	a, _ := Encode("obj-a", 1, []byte("aaaaaaaa"), 2, 4)
	b, _ := Encode("obj-b", 1, []byte("bbbbbbbb"), 2, 4)
	if _, err := Reconstruct([]Share{a[0], b[1]}); err == nil {
		t.Error("shares of different objects combined")
	}
	c, _ := Encode("obj-a", 2, []byte("aaaaaaaa"), 2, 4)
	if _, err := Reconstruct([]Share{a[0], c[1]}); err == nil {
		t.Error("shares of different epochs combined")
	}
	if _, err := Reconstruct([]Share{a[0], a[0]}); err == nil {
		t.Error("duplicate index satisfied k=2")
	}
	if _, err := Reconstruct(nil); err == nil {
		t.Error("empty share set reconstructed")
	}
}

func TestValidateScheme(t *testing.T) {
	for _, kn := range [][2]int{{0, 2}, {2, 2}, {3, 2}, {1, 300}, {-1, 4}} {
		if _, err := Encode("x", 1, []byte("data"), kn[0], kn[1]); err == nil {
			t.Errorf("scheme k=%d n=%d accepted", kn[0], kn[1])
		}
	}
}

// FuzzReconstruct drives the property test from fuzz-chosen data: encode,
// pick a random k-subset, optionally corrupt one marshalled share, and
// check that intact subsets round-trip while corruption is always caught at
// parse time — never mis-reconstructed into wrong bytes.
func FuzzReconstruct(f *testing.F) {
	f.Add([]byte("seed data"), int64(1), uint8(4), uint8(6), false)
	f.Add([]byte(""), int64(2), uint8(2), uint8(3), true)
	f.Add(bytes.Repeat([]byte{0xab}, 4096), int64(3), uint8(5), uint8(8), true)
	f.Fuzz(func(t *testing.T, data []byte, seed int64, kb, nb uint8, corrupt bool) {
		k := int(kb%8) + 1
		n := k + 1 + int(nb%8)
		rng := rand.New(rand.NewSource(seed))
		shares, err := Encode("fuzz", uint64(seed), data, k, n)
		if err != nil {
			t.Fatalf("Encode k=%d n=%d: %v", k, n, err)
		}
		// Marshal/parse every share first: the wire format must round-trip.
		wire := make([][]byte, n)
		for i, s := range shares {
			wire[i] = s.Marshal()
		}
		perm := rng.Perm(n)[:k]
		subset := make([]Share, 0, k)
		for _, idx := range perm {
			b := wire[idx]
			if corrupt && idx == perm[0] {
				mut := append([]byte(nil), b...)
				mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
				if s, err := ParseShare(mut); err == nil {
					// The flip must have landed somewhere that reparses into an
					// identical share only if it truly is identical.
					if !bytes.Equal(s.Marshal(), wire[idx]) {
						t.Fatal("corrupted share parsed as a different valid share")
					}
					subset = append(subset, s)
				}
				// Checksum caught it: this share is simply unavailable.
				continue
			}
			s, err := ParseShare(b)
			if err != nil {
				t.Fatalf("ParseShare of pristine share %d: %v", idx, err)
			}
			subset = append(subset, s)
		}
		got, err := Reconstruct(subset)
		if err != nil {
			if len(subset) >= k {
				t.Fatalf("Reconstruct with %d >= k=%d shares failed: %v", len(subset), k, err)
			}
			return
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("reconstruction differs from original (k=%d n=%d len=%d)", k, n, len(data))
		}
	})
}

func BenchmarkEncode_4of6_64KB(b *testing.B) {
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Encode("bench", 1, data, 4, 6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct_Degraded_4of6_64KB(b *testing.B) {
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(1)).Read(data)
	shares, err := Encode("bench", 1, data, 4, 6)
	if err != nil {
		b.Fatal(err)
	}
	// Worst case: two data shares lost, both parities in play.
	subset := []Share{shares[0], shares[1], shares[4], shares[5]}
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Reconstruct(subset); err != nil {
			b.Fatal(err)
		}
	}
}
