// Package erasure implements a systematic Reed-Solomon erasure code over
// GF(2^8) for the self-healing secret store: Encode stripes a blob into k
// data shares plus n-k parity shares, and Reconstruct recovers the exact
// original bytes from ANY k of the n shares. "Systematic" means the first k
// shares are plain stripes of the data, so an undamaged store reassembles a
// blob with no field arithmetic at all.
//
// Every share carries a self-describing header — object ID, write epoch,
// scheme (k, n), share index, original data length, and a CRC-32C over
// header and payload — so a scrubber can inventory a shard from its shares
// alone, detect bit rot without the other shards, and never combine shares
// from different objects, writes, or schemes.
//
// The coding matrix is the standard Vandermonde construction made
// systematic: E = V(n,k) · V(k,k)⁻¹. Every k×k submatrix of a Vandermonde
// matrix with distinct evaluation points is invertible, and multiplying on
// the right by an invertible matrix preserves that, which is exactly the
// any-k-of-n decodability guarantee (property-tested exhaustively for the
// schemes the store uses).
package erasure

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
)

// MaxShares bounds n: share indices must fit a byte, and Vandermonde
// evaluation points must stay distinct in GF(256).
const MaxShares = 255

// Share is one erasure-coded fragment of an object, self-describing enough
// to be scrubbed in isolation.
type Share struct {
	ID      string // object the share belongs to
	Epoch   uint64 // write epoch; shares of different epochs never combine
	K       int    // data shares needed to reconstruct
	N       int    // total shares the object was encoded into
	Index   int    // this share's position in [0, N); < K means data share
	DataLen int    // original (unpadded) object length in bytes
	Payload []byte // the stripe (Index < K) or parity bytes
}

// shareMagic starts every marshalled share.
const shareMagic = "p3es"

// shareVersion is the current wire version.
const shareVersion = 1

// castagnoli is the CRC-32C table shares are checksummed with.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrChecksum reports a share whose stored CRC does not match its content —
// bit rot, a torn write, or hostile bytes. Scrubbers treat it as "share
// missing, slot reusable".
var ErrChecksum = errors.New("erasure: share checksum mismatch")

// ErrNotShare reports bytes that are not a marshalled share at all (wrong
// magic or truncated header).
var ErrNotShare = errors.New("erasure: not an erasure share")

// Marshal serializes the share: magic, CRC-32C over everything after the
// checksum field, then version/k/n/index, epoch, data length, the object ID
// (uvarint length prefix) and the payload.
func (s Share) Marshal() []byte {
	var hdr [4 + 4 + 4 + 8 + 8]byte
	idLen := binary.AppendUvarint(nil, uint64(len(s.ID)))
	buf := make([]byte, 0, len(hdr)+len(idLen)+len(s.ID)+len(s.Payload))
	buf = append(buf, shareMagic...)
	buf = append(buf, 0, 0, 0, 0) // CRC placeholder
	buf = append(buf, shareVersion, byte(s.K), byte(s.N), byte(s.Index))
	buf = binary.BigEndian.AppendUint64(buf, s.Epoch)
	buf = binary.BigEndian.AppendUint64(buf, uint64(s.DataLen))
	buf = append(buf, idLen...)
	buf = append(buf, s.ID...)
	buf = append(buf, s.Payload...)
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(buf[8:], castagnoli))
	return buf
}

// ParseShare deserializes and integrity-checks a marshalled share. Bytes
// that are not a share return ErrNotShare; a share whose checksum does not
// cover its content returns ErrChecksum.
func ParseShare(b []byte) (Share, error) {
	const fixed = 4 + 4 + 4 + 8 + 8
	if len(b) < fixed || string(b[:4]) != shareMagic {
		return Share{}, ErrNotShare
	}
	if crc32.Checksum(b[8:], castagnoli) != binary.BigEndian.Uint32(b[4:8]) {
		return Share{}, ErrChecksum
	}
	if b[8] != shareVersion {
		return Share{}, fmt.Errorf("erasure: unsupported share version %d", b[8])
	}
	s := Share{
		K:       int(b[9]),
		N:       int(b[10]),
		Index:   int(b[11]),
		Epoch:   binary.BigEndian.Uint64(b[12:20]),
		DataLen: int(binary.BigEndian.Uint64(b[20:28])),
	}
	rest := b[fixed:]
	idLen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < idLen {
		return Share{}, ErrNotShare
	}
	s.ID = string(rest[n : n+int(idLen)])
	s.Payload = append([]byte(nil), rest[n+int(idLen):]...)
	if err := validateScheme(s.K, s.N); err != nil {
		return Share{}, err
	}
	if s.Index < 0 || s.Index >= s.N {
		return Share{}, fmt.Errorf("erasure: share index %d outside scheme %d-of-%d", s.Index, s.K, s.N)
	}
	return s, nil
}

// validateScheme checks a (k, n) pair.
func validateScheme(k, n int) error {
	if k < 1 || n <= k || n > MaxShares {
		return fmt.Errorf("erasure: invalid scheme k=%d n=%d (need 1 <= k < n <= %d)", k, n, MaxShares)
	}
	return nil
}

// codingCache memoizes the systematic coding matrix per (k, n): building
// one costs a matrix inversion, and every Put of a store reuses the same
// scheme.
var codingCache sync.Map // [2]int{k,n} -> matrix

// codingMatrix returns the n×k systematic coding matrix for the scheme: the
// top k rows are the identity, the bottom n-k rows generate parity.
func codingMatrix(k, n int) (matrix, error) {
	if err := validateScheme(k, n); err != nil {
		return nil, err
	}
	key := [2]int{k, n}
	if m, ok := codingCache.Load(key); ok {
		return m.(matrix), nil
	}
	v := vandermonde(n, k)
	top := newMatrix(k, k)
	for r := 0; r < k; r++ {
		copy(top[r], v[r])
	}
	inv, ok := top.invert()
	if !ok {
		// Unreachable: a k×k Vandermonde with distinct points is invertible.
		return nil, errors.New("erasure: Vandermonde top square singular")
	}
	m := v.mul(inv)
	codingCache.Store(key, m)
	return m, nil
}

// Encode stripes data into n shares under the given identity: k data
// stripes (zero-padded to equal length) and n-k parity stripes. Any k of
// the returned shares reconstruct data byte-identically.
func Encode(id string, epoch uint64, data []byte, k, n int) ([]Share, error) {
	mat, err := codingMatrix(k, n)
	if err != nil {
		return nil, err
	}
	stripe := (len(data) + k - 1) / k
	backing := make([]byte, n*stripe)
	rows := make([][]byte, n)
	for i := range rows {
		rows[i] = backing[i*stripe : (i+1)*stripe]
	}
	for i := 0; i < k; i++ {
		lo := min(i*stripe, len(data))
		hi := min(lo+stripe, len(data))
		copy(rows[i], data[lo:hi])
	}
	for p := k; p < n; p++ {
		for i := 0; i < k; i++ {
			mulAddSlice(rows[p], rows[i], mat[p][i])
		}
	}
	shares := make([]Share, n)
	for i := range shares {
		shares[i] = Share{ID: id, Epoch: epoch, K: k, N: n, Index: i, DataLen: len(data), Payload: rows[i]}
	}
	return shares, nil
}

// Reconstruct recovers the original bytes from any subset of an object's
// shares holding at least K distinct indices. All shares must agree on
// identity (ID, Epoch), scheme and data length — mixing writes or objects
// is an error, never a wrong answer. Duplicated indices are tolerated (the
// first wins); damaged payloads surface as reconstruction errors only if
// the caller skipped ParseShare's checksum (Reconstruct trusts its input's
// headers but re-derives nothing).
func Reconstruct(shares []Share) ([]byte, error) {
	if len(shares) == 0 {
		return nil, errors.New("erasure: no shares")
	}
	ref := shares[0]
	if err := validateScheme(ref.K, ref.N); err != nil {
		return nil, err
	}
	stripe := (ref.DataLen + ref.K - 1) / ref.K
	// Deduplicate by index, verifying consistency with the first share.
	have := make(map[int][]byte, ref.K)
	for _, s := range shares {
		if s.ID != ref.ID || s.Epoch != ref.Epoch || s.K != ref.K || s.N != ref.N || s.DataLen != ref.DataLen {
			return nil, fmt.Errorf("erasure: mixed shares (object %q epoch %d vs %q epoch %d)",
				ref.ID, ref.Epoch, s.ID, s.Epoch)
		}
		if s.Index < 0 || s.Index >= ref.N || len(s.Payload) != stripe {
			return nil, fmt.Errorf("erasure: malformed share index %d (payload %d, want stripe %d)",
				s.Index, len(s.Payload), stripe)
		}
		if _, dup := have[s.Index]; !dup {
			have[s.Index] = s.Payload
		}
		if len(have) == ref.K {
			break
		}
	}
	if len(have) < ref.K {
		return nil, fmt.Errorf("erasure: %d distinct shares of %q, need %d", len(have), ref.ID, ref.K)
	}

	data := make([]byte, ref.K*stripe)
	missingData := false
	for i := 0; i < ref.K; i++ {
		if p, ok := have[i]; ok {
			copy(data[i*stripe:(i+1)*stripe], p)
		} else {
			missingData = true
		}
	}
	if !missingData {
		// Systematic fast path: all data stripes present.
		return data[:ref.DataLen], nil
	}

	// Solve for the data stripes from k available rows of the coding matrix.
	mat, err := codingMatrix(ref.K, ref.N)
	if err != nil {
		return nil, err
	}
	idxs := make([]int, 0, ref.K)
	for i := 0; i < ref.N && len(idxs) < ref.K; i++ {
		if _, ok := have[i]; ok {
			idxs = append(idxs, i)
		}
	}
	sub := newMatrix(ref.K, ref.K)
	for r, idx := range idxs {
		copy(sub[r], mat[idx])
	}
	inv, ok := sub.invert()
	if !ok {
		// Unreachable by construction; guard anyway.
		return nil, errors.New("erasure: share submatrix singular")
	}
	for i := 0; i < ref.K; i++ {
		row := data[i*stripe : (i+1)*stripe]
		clear(row)
		for r, idx := range idxs {
			mulAddSlice(row, have[idx], inv[i][r])
		}
	}
	return data[:ref.DataLen], nil
}
