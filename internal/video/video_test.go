package video

import (
	"bytes"
	"math"
	"testing"

	"p3/internal/core"
	"p3/internal/dataset"
	"p3/internal/jpegx"
	"p3/internal/vision"
)

// testClip renders a short "panning camera" clip: the same scene shifted a
// little each frame, as consecutive video frames are.
func testClip(t *testing.T, frames, w, h int) []byte {
	t.Helper()
	big := dataset.Natural(321, w+frames*4, h)
	s := &Stream{}
	for f := 0; f < frames; f++ {
		crop := jpegx.NewPlanarImage(w, h, 3)
		for pi := 0; pi < 3; pi++ {
			for y := 0; y < h; y++ {
				copy(crop.Planes[pi][y*w:y*w+w], big.Planes[pi][y*big.Width+f*4:y*big.Width+f*4+w])
			}
		}
		coeffs, err := crop.ToCoeffs(90, jpegx.Sub420)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := jpegx.EncodeCoeffs(&buf, coeffs, nil); err != nil {
			t.Fatal(err)
		}
		s.Frames = append(s.Frames, buf.Bytes())
	}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStreamRoundTrip(t *testing.T) {
	raw := testClip(t, 4, 96, 64)
	s, err := ReadStream(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Frames) != 4 {
		t.Fatalf("%d frames", len(s.Frames))
	}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf.Bytes()) {
		t.Error("stream serialization not stable")
	}
}

func TestStreamErrors(t *testing.T) {
	if _, err := ReadStream(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("junk accepted")
	}
	raw := testClip(t, 2, 48, 48)
	if _, err := ReadStream(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Error("truncated stream accepted")
	}
	empty := &Stream{}
	if err := empty.Write(&bytes.Buffer{}); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestSplitJoinStreamExact(t *testing.T) {
	raw := testClip(t, 5, 96, 64)
	key, err := core.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	split, err := SplitStream(raw, key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if split.Threshold != core.DefaultThreshold {
		t.Errorf("threshold %d", split.Threshold)
	}
	// The public stream is valid MJPEG with degraded frames.
	pub, err := ReadStream(bytes.NewReader(split.PublicStream))
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := ReadStream(bytes.NewReader(raw))
	for i := range pub.Frames {
		pim, err := jpegx.Decode(bytes.NewReader(pub.Frames[i]))
		if err != nil {
			t.Fatalf("public frame %d: %v", i, err)
		}
		oim, err := jpegx.Decode(bytes.NewReader(orig.Frames[i]))
		if err != nil {
			t.Fatal(err)
		}
		p, err := vision.PSNR(oim.ToPlanar(), pim.ToPlanar())
		if err != nil {
			t.Fatal(err)
		}
		if p > 25 {
			t.Errorf("public frame %d PSNR %.1f dB — not degraded", i, p)
		}
	}
	// Join restores every frame exactly in the coefficient domain.
	joined, err := JoinStream(split.PublicStream, split.SecretBlob, key)
	if err != nil {
		t.Fatal(err)
	}
	js, err := ReadStream(bytes.NewReader(joined))
	if err != nil {
		t.Fatal(err)
	}
	for i := range js.Frames {
		jim, err := jpegx.Decode(bytes.NewReader(js.Frames[i]))
		if err != nil {
			t.Fatal(err)
		}
		oim, err := jpegx.Decode(bytes.NewReader(orig.Frames[i]))
		if err != nil {
			t.Fatal(err)
		}
		for ci := range oim.Components {
			for bi := range oim.Components[ci].Blocks {
				if jim.Components[ci].Blocks[bi] != oim.Components[ci].Blocks[bi] {
					t.Fatalf("frame %d not reconstructed exactly", i)
				}
			}
		}
	}
}

func TestJoinStreamWrongKey(t *testing.T) {
	raw := testClip(t, 2, 48, 48)
	k1, _ := core.NewKey()
	k2, _ := core.NewKey()
	split, err := SplitStream(raw, k1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := JoinStream(split.PublicStream, split.SecretBlob, k2); err == nil {
		t.Error("wrong key accepted")
	}
}

func TestSplitStreamOverhead(t *testing.T) {
	raw := testClip(t, 4, 96, 64)
	key, _ := core.NewKey()
	split, err := SplitStream(raw, key, &core.Options{Threshold: 15, OptimizeHuffman: true})
	if err != nil {
		t.Fatal(err)
	}
	total := len(split.PublicStream) + len(split.SecretBlob)
	overhead := float64(total)/float64(len(raw)) - 1
	if math.Abs(overhead) > 0.5 {
		t.Errorf("split overhead %.0f%% implausible", 100*overhead)
	}
	t.Logf("video split: %d B -> %d B public + %d B secret (%.1f%% overhead)",
		len(raw), len(split.PublicStream), len(split.SecretBlob), 100*overhead)
}
