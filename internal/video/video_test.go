package video

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"p3/internal/core"
	"p3/internal/dataset"
	"p3/internal/jpegx"
	"p3/internal/vision"
	"p3/internal/work"
)

// testClip renders a short "panning camera" clip: the same scene shifted a
// little each frame, as consecutive video frames are.
func testClip(t *testing.T, frames, w, h int) []byte {
	t.Helper()
	big := dataset.Natural(321, w+frames*4, h)
	s := &Stream{}
	for f := 0; f < frames; f++ {
		crop := jpegx.NewPlanarImage(w, h, 3)
		for pi := 0; pi < 3; pi++ {
			for y := 0; y < h; y++ {
				copy(crop.Planes[pi][y*w:y*w+w], big.Planes[pi][y*big.Width+f*4:y*big.Width+f*4+w])
			}
		}
		coeffs, err := crop.ToCoeffs(90, jpegx.Sub420)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := jpegx.EncodeCoeffs(&buf, coeffs, nil); err != nil {
			t.Fatal(err)
		}
		s.Frames = append(s.Frames, buf.Bytes())
	}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStreamRoundTrip(t *testing.T) {
	raw := testClip(t, 4, 96, 64)
	s, err := ReadStream(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Frames) != 4 {
		t.Fatalf("%d frames", len(s.Frames))
	}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf.Bytes()) {
		t.Error("stream serialization not stable")
	}
}

func TestStreamErrors(t *testing.T) {
	if _, err := ReadStream(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("junk accepted")
	}
	raw := testClip(t, 2, 48, 48)
	if _, err := ReadStream(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Error("truncated stream accepted")
	}
	empty := &Stream{}
	if err := empty.Write(&bytes.Buffer{}); err == nil {
		t.Error("empty stream accepted")
	}
}

// corrupt returns raw with the 4 bytes at off overwritten by v.
func corrupt(raw []byte, off int, v uint32) []byte {
	out := append([]byte(nil), raw...)
	binary.BigEndian.PutUint32(out[off:], v)
	return out
}

// TestReadStreamHostileHeaders is the attacker's view of the container
// format: header fields claiming far more frames or bytes than the input
// carries must fail with a typed *FormatError before any allocation sized
// by the claim.
func TestReadStreamHostileHeaders(t *testing.T) {
	raw := testClip(t, 2, 48, 48)
	cases := []struct {
		name string
		data []byte
	}{
		// Frame count claims a million frames; the input holds two.
		{"huge frame count", corrupt(raw, 4, 1<<20)},
		{"over-limit frame count", corrupt(raw, 4, 1<<31)},
		{"zero frame count", corrupt(raw, 4, 0)},
		// First frame's length prefix claims 64 MiB; the input is a few KB.
		{"huge frame length", corrupt(raw, 8, 64<<20)},
		{"over-limit frame length", corrupt(raw, 8, 1<<31)},
		{"zero frame length", corrupt(raw, 8, 0)},
		{"trailing garbage", append(append([]byte(nil), raw...), 0xde, 0xad)},
		{"header only", raw[:8]},
		{"short header", raw[:5]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadStream(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("hostile input accepted")
			}
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("want *FormatError, got %T: %v", err, err)
			}
		})
	}
}

// TestFrameAccess exercises the random-access helpers against the full
// parse.
func TestFrameAccess(t *testing.T) {
	raw := testClip(t, 3, 48, 48)
	n, err := FrameCount(raw)
	if err != nil || n != 3 {
		t.Fatalf("FrameCount = %d, %v", n, err)
	}
	s, err := ReadStream(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		f, err := Frame(raw, i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(f, s.Frames[i]) {
			t.Errorf("Frame(%d) differs from parsed stream", i)
		}
	}
	for _, bad := range []int{-1, n} {
		_, err := Frame(raw, bad)
		var re *FrameRangeError
		if !errors.As(err, &re) {
			t.Errorf("Frame(%d): want *FrameRangeError, got %v", bad, err)
		}
	}
}

// TestParallelMatchesSequential is the tentpole guarantee: the pooled,
// frame-parallel split and join produce byte-identical streams to the
// sequential path. (Sealed blobs differ — the seal nonce is random — so the
// secret streams are compared after unsealing.)
func TestParallelMatchesSequential(t *testing.T) {
	raw := testClip(t, 6, 96, 64)
	key, err := core.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	seqOpts := &core.Options{Threshold: 15, OptimizeHuffman: true}
	parOpts := &core.Options{Threshold: 15, OptimizeHuffman: true, Workers: work.New(8)}

	seq, err := SplitStream(raw, key, seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SplitStream(raw, key, parOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.PublicStream, par.PublicStream) {
		t.Error("parallel public stream differs from sequential")
	}
	_, seqSec, err := core.OpenSecret(key, seq.SecretBlob)
	if err != nil {
		t.Fatal(err)
	}
	_, parSec, err := core.OpenSecret(key, par.SecretBlob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqSec, parSec) {
		t.Error("parallel secret stream differs from sequential")
	}

	seqJoin, err := JoinStream(seq.PublicStream, seq.SecretBlob, key, seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	parJoin, err := JoinStream(par.PublicStream, par.SecretBlob, key, parOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqJoin, parJoin) {
		t.Error("parallel join differs from sequential")
	}
}

// TestJoinFrame checks the frame seek against the whole-clip join.
func TestJoinFrame(t *testing.T) {
	raw := testClip(t, 4, 96, 64)
	key, _ := core.NewKey()
	split, err := SplitStream(raw, key, nil)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := JoinStream(split.PublicStream, split.SecretBlob, key, nil)
	if err != nil {
		t.Fatal(err)
	}
	js, err := ReadStream(bytes.NewReader(joined))
	if err != nil {
		t.Fatal(err)
	}
	for i := range js.Frames {
		frame, err := JoinFrame(split.PublicStream, split.SecretBlob, key, i, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(frame, js.Frames[i]) {
			t.Errorf("JoinFrame(%d) differs from whole-clip join", i)
		}
	}
	_, err = JoinFrame(split.PublicStream, split.SecretBlob, key, 99, nil)
	var re *FrameRangeError
	if !errors.As(err, &re) {
		t.Errorf("out-of-range seek: want *FrameRangeError, got %v", err)
	}
}

func TestSplitJoinStreamExact(t *testing.T) {
	raw := testClip(t, 5, 96, 64)
	key, err := core.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	split, err := SplitStream(raw, key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if split.Threshold != core.DefaultThreshold {
		t.Errorf("threshold %d", split.Threshold)
	}
	// The public stream is valid MJPEG with degraded frames.
	pub, err := ReadStream(bytes.NewReader(split.PublicStream))
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := ReadStream(bytes.NewReader(raw))
	for i := range pub.Frames {
		pim, err := jpegx.Decode(bytes.NewReader(pub.Frames[i]))
		if err != nil {
			t.Fatalf("public frame %d: %v", i, err)
		}
		oim, err := jpegx.Decode(bytes.NewReader(orig.Frames[i]))
		if err != nil {
			t.Fatal(err)
		}
		p, err := vision.PSNR(oim.ToPlanar(), pim.ToPlanar())
		if err != nil {
			t.Fatal(err)
		}
		if p > 25 {
			t.Errorf("public frame %d PSNR %.1f dB — not degraded", i, p)
		}
	}
	// Join restores every frame exactly in the coefficient domain.
	joined, err := JoinStream(split.PublicStream, split.SecretBlob, key, nil)
	if err != nil {
		t.Fatal(err)
	}
	js, err := ReadStream(bytes.NewReader(joined))
	if err != nil {
		t.Fatal(err)
	}
	for i := range js.Frames {
		jim, err := jpegx.Decode(bytes.NewReader(js.Frames[i]))
		if err != nil {
			t.Fatal(err)
		}
		oim, err := jpegx.Decode(bytes.NewReader(orig.Frames[i]))
		if err != nil {
			t.Fatal(err)
		}
		for ci := range oim.Components {
			for bi := range oim.Components[ci].Blocks {
				if jim.Components[ci].Blocks[bi] != oim.Components[ci].Blocks[bi] {
					t.Fatalf("frame %d not reconstructed exactly", i)
				}
			}
		}
	}
}

func TestJoinStreamWrongKey(t *testing.T) {
	raw := testClip(t, 2, 48, 48)
	k1, _ := core.NewKey()
	k2, _ := core.NewKey()
	split, err := SplitStream(raw, k1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := JoinStream(split.PublicStream, split.SecretBlob, k2, nil); err == nil {
		t.Error("wrong key accepted")
	}
}

func TestSplitStreamOverhead(t *testing.T) {
	raw := testClip(t, 4, 96, 64)
	key, _ := core.NewKey()
	split, err := SplitStream(raw, key, &core.Options{Threshold: 15, OptimizeHuffman: true})
	if err != nil {
		t.Fatal(err)
	}
	total := len(split.PublicStream) + len(split.SecretBlob)
	overhead := float64(total)/float64(len(raw)) - 1
	if math.Abs(overhead) > 0.5 {
		t.Errorf("split overhead %.0f%% implausible", 100*overhead)
	}
	t.Logf("video split: %d B -> %d B public + %d B secret (%.1f%% overhead)",
		len(raw), len(split.PublicStream), len(split.SecretBlob), 100*overhead)
}
