// Package video implements the paper's §4.2 extension sketch: applying P3
// to video by protecting intra-coded frames. The substrate is a
// Motion-JPEG-style stream — every frame an independently coded JPEG, the
// "tools similar to those used in JPEG" the paper points at — so the P3
// split applies frame by frame: the public stream stays a valid MJPEG that
// a provider can transcode or thumbnail, while one sealed container carries
// all frames' secret parts. (Quality reductions in an I-frame would
// propagate through a predicted GOP, which is exactly why protecting
// I-frames suffices; motion-compensated P/B frames are future work here as
// in the paper.)
//
// Frames are mutually independent, so SplitStream and JoinStream fan the
// per-frame work out on a work.Pool (one frame per task, decoder and
// encoder scratch recycled through a per-call pool), and a 100-frame clip
// costs roughly frame-parallel wall time instead of 100 sequential splits.
// Outputs are byte-identical at every parallelism level.
package video

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"p3/internal/core"
	"p3/internal/jpegx"
	"p3/internal/work"
)

const streamMagic = "P3MJ"

// Container format limits. The parser additionally caps every header field
// against the bytes actually present, so a corrupt header can never force
// an allocation larger than the input itself.
const (
	// MaxFrames bounds the frame count a container may declare.
	MaxFrames = 1 << 20
	// MaxFrameLen bounds a single frame's byte length.
	MaxFrameLen = 64 << 20
	// frameHeaderLen is the per-frame length prefix.
	frameHeaderLen = 4
)

// FormatError reports a malformed P3 MJPEG container: bad magic, a frame
// count or frame length exceeding the input that carries it, truncation, or
// trailing garbage. It marks the *input* as bad (a 400, not a 502, at
// serving boundaries).
type FormatError struct {
	// Frame is the frame index at which the problem was detected, or -1
	// for errors in the stream header.
	Frame int
	// Reason describes the problem.
	Reason string
}

// Error implements the error interface.
func (e *FormatError) Error() string {
	if e.Frame < 0 {
		return "video: bad stream: " + e.Reason
	}
	return fmt.Sprintf("video: bad stream: frame %d: %s", e.Frame, e.Reason)
}

// FrameRangeError reports a frame index outside a stream's frame count.
type FrameRangeError struct {
	Frame  int // the requested index
	Frames int // how many frames the stream holds
}

// Error implements the error interface.
func (e *FrameRangeError) Error() string {
	return fmt.Sprintf("video: frame %d out of range [0,%d)", e.Frame, e.Frames)
}

// Stream is a Motion-JPEG sequence.
type Stream struct {
	// Frames are independently coded JPEG images. After parseStream they
	// alias the parsed buffer and must be treated as read-only.
	Frames [][]byte
}

// Write serializes the stream: magic, frame count, then length-prefixed
// frames.
func (s *Stream) Write(w io.Writer) error {
	if len(s.Frames) == 0 {
		return &FormatError{Frame: -1, Reason: "empty stream"}
	}
	if len(s.Frames) > MaxFrames {
		return &FormatError{Frame: -1, Reason: fmt.Sprintf("frame count %d over limit %d", len(s.Frames), MaxFrames)}
	}
	if _, err := io.WriteString(w, streamMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.BigEndian, uint32(len(s.Frames))); err != nil {
		return err
	}
	for i, f := range s.Frames {
		if len(f) == 0 {
			return &FormatError{Frame: i, Reason: "empty frame"}
		}
		if len(f) > MaxFrameLen {
			return &FormatError{Frame: i, Reason: fmt.Sprintf("frame length %d over limit %d", len(f), MaxFrameLen)}
		}
		if err := binary.Write(w, binary.BigEndian, uint32(len(f))); err != nil {
			return err
		}
		if _, err := w.Write(f); err != nil {
			return err
		}
	}
	return nil
}

// parseStream parses a serialized stream from data. Frames subslice data
// (no copies), so every allocation is bounded by the input actually
// present: declared counts and lengths are validated against the remaining
// bytes *before* any frame slice is taken, and a header that promises more
// than the input carries fails with a *FormatError instead of a huge
// preallocation.
func parseStream(data []byte) (*Stream, error) {
	if len(data) < len(streamMagic)+4 {
		return nil, &FormatError{Frame: -1, Reason: "truncated header"}
	}
	if string(data[:len(streamMagic)]) != streamMagic {
		return nil, &FormatError{Frame: -1, Reason: "not a P3 MJPEG stream"}
	}
	n := binary.BigEndian.Uint32(data[len(streamMagic):])
	rest := data[len(streamMagic)+4:]
	if n == 0 {
		return nil, &FormatError{Frame: -1, Reason: "zero frame count"}
	}
	if n > MaxFrames {
		return nil, &FormatError{Frame: -1, Reason: fmt.Sprintf("frame count %d over limit %d", n, MaxFrames)}
	}
	// Every frame costs at least its length prefix plus one body byte, so
	// a frame count the input cannot possibly hold is rejected before the
	// frame-table allocation.
	if int64(n)*(frameHeaderLen+1) > int64(len(rest)) {
		return nil, &FormatError{Frame: -1, Reason: fmt.Sprintf("frame count %d exceeds %d-byte input", n, len(data))}
	}
	s := &Stream{Frames: make([][]byte, n)}
	off := 0
	for i := range s.Frames {
		if len(rest)-off < frameHeaderLen {
			return nil, &FormatError{Frame: i, Reason: "truncated length prefix"}
		}
		flen := binary.BigEndian.Uint32(rest[off:])
		off += frameHeaderLen
		if flen == 0 {
			return nil, &FormatError{Frame: i, Reason: "zero length"}
		}
		if flen > MaxFrameLen {
			return nil, &FormatError{Frame: i, Reason: fmt.Sprintf("length %d over limit %d", flen, MaxFrameLen)}
		}
		if int64(flen) > int64(len(rest)-off) {
			return nil, &FormatError{Frame: i, Reason: fmt.Sprintf("length %d exceeds %d remaining bytes", flen, len(rest)-off)}
		}
		s.Frames[i] = rest[off : off+int(flen) : off+int(flen)]
		off += int(flen)
	}
	if off != len(rest) {
		return nil, &FormatError{Frame: -1, Reason: fmt.Sprintf("%d trailing bytes after last frame", len(rest)-off)}
	}
	return s, nil
}

// Parse parses a serialized stream in place: frames alias streamBytes and
// must be treated as read-only. Validation is identical to ReadStream's.
func Parse(streamBytes []byte) (*Stream, error) {
	return parseStream(streamBytes)
}

// ReadStream parses a serialized stream. The input is buffered in full
// first, so header fields claiming more frames or bytes than the input
// carries fail with a *FormatError instead of forcing allocations sized by
// attacker-controlled values; allocation is always bounded by the bytes
// actually read.
func ReadStream(r io.Reader) (*Stream, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("video: reading stream: %w", err)
	}
	return parseStream(data)
}

// FrameCount parses and validates a serialized stream and reports how many
// frames it holds.
func FrameCount(streamBytes []byte) (int, error) {
	s, err := parseStream(streamBytes)
	if err != nil {
		return 0, err
	}
	return len(s.Frames), nil
}

// Frame returns frame i of a serialized stream. The returned bytes alias
// streamBytes.
func Frame(streamBytes []byte, i int) ([]byte, error) {
	s, err := parseStream(streamBytes)
	if err != nil {
		return nil, err
	}
	if i < 0 || i >= len(s.Frames) {
		return nil, &FrameRangeError{Frame: i, Frames: len(s.Frames)}
	}
	return s.Frames[i], nil
}

// SplitResult carries a split video.
type SplitResult struct {
	// PublicStream is a valid stream of public-part JPEGs.
	PublicStream []byte
	// SecretBlob is one sealed container holding every frame's secret part.
	SecretBlob []byte
	// Frames is the clip's frame count.
	Frames int
	// Threshold echoes the T used.
	Threshold int
	// SecretStreamLen is the size of the secret stream before encryption,
	// for the storage-overhead accounting.
	SecretStreamLen int
}

// splitScratch is one worker's reusable per-frame working set for
// SplitStream: decoder state, the three coefficient images, and the two
// encode buffers. Recycled through a per-call sync.Pool so a clip costs
// one scratch per *worker*, not per frame.
type splitScratch struct {
	rd             bytes.Reader
	dec            jpegx.DecoderScratch
	src, pub, sec  *jpegx.CoeffImage
	pubBuf, secBuf bytes.Buffer
}

// SplitStream splits every frame of an MJPEG stream with P3. All frames use
// the same threshold and key; the secret parts travel together in a single
// sealed container so the recipient makes one store round trip per video.
// Frames are split concurrently on opts.Workers (nil runs sequentially);
// outputs are byte-identical at every parallelism level.
func SplitStream(streamBytes []byte, key core.Key, opts *core.Options) (*SplitResult, error) {
	s, err := parseStream(streamBytes)
	if err != nil {
		return nil, err
	}
	if opts == nil {
		o := core.DefaultOptions
		opts = &o
	}
	threshold := opts.Threshold
	if threshold == 0 {
		threshold = core.DefaultThreshold
	}
	pool := opts.Workers
	pub := &Stream{Frames: make([][]byte, len(s.Frames))}
	secrets := &Stream{Frames: make([][]byte, len(s.Frames))}
	enc := &jpegx.EncodeOptions{OptimizeHuffman: opts.OptimizeHuffman, Workers: pool}
	var scratches sync.Pool
	err = pool.Do(len(s.Frames), func(i int) error {
		fs, _ := scratches.Get().(*splitScratch)
		if fs == nil {
			fs = new(splitScratch)
		}
		defer scratches.Put(fs)
		fs.rd.Reset(s.Frames[i])
		im, err := jpegx.DecodeInto(&fs.rd, fs.src, &fs.dec)
		fs.rd.Reset(nil)
		if err != nil {
			return fmt.Errorf("video: decoding frame %d: %w", i, err)
		}
		fs.src = im
		im.StripMarkers()
		p, sec, err := core.SplitInto(im, threshold, fs.pub, fs.sec, pool)
		if err != nil {
			return fmt.Errorf("video: splitting frame %d: %w", i, err)
		}
		fs.pub, fs.sec = p, sec
		fs.pubBuf.Reset()
		fs.secBuf.Reset()
		if err := jpegx.EncodeCoeffs(&fs.pubBuf, p, enc); err != nil {
			return fmt.Errorf("video: encoding public frame %d: %w", i, err)
		}
		if err := jpegx.EncodeCoeffs(&fs.secBuf, sec, enc); err != nil {
			return fmt.Errorf("video: encoding secret frame %d: %w", i, err)
		}
		pub.Frames[i] = append([]byte(nil), fs.pubBuf.Bytes()...)
		secrets.Frames[i] = append([]byte(nil), fs.secBuf.Bytes()...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pubBuf, secBuf bytes.Buffer
	if err := pub.Write(&pubBuf); err != nil {
		return nil, err
	}
	if err := secrets.Write(&secBuf); err != nil {
		return nil, err
	}
	sealed, err := core.SealSecret(key, threshold, secBuf.Bytes())
	if err != nil {
		return nil, err
	}
	return &SplitResult{
		PublicStream:    pubBuf.Bytes(),
		SecretBlob:      sealed,
		Frames:          len(s.Frames),
		Threshold:       threshold,
		SecretStreamLen: secBuf.Len(),
	}, nil
}

// joinScratch is one worker's reusable per-frame working set for
// JoinStream: decoder state for both parts, the reconstructed coefficient
// image, and the encode buffer.
type joinScratch struct {
	pubRd, secRd        bytes.Reader
	pubDec, secDec      jpegx.DecoderScratch
	pubIm, secIm, outIm *jpegx.CoeffImage
	buf                 bytes.Buffer
}

// joinFrame reconstructs one frame exactly in the coefficient domain and
// re-encodes it.
func (fs *joinScratch) joinFrame(pubFrame, secFrame []byte, threshold int, i int, pool *work.Pool) ([]byte, error) {
	fs.pubRd.Reset(pubFrame)
	pim, err := jpegx.DecodeInto(&fs.pubRd, fs.pubIm, &fs.pubDec)
	fs.pubRd.Reset(nil)
	if err != nil {
		return nil, fmt.Errorf("video: decoding public frame %d: %w", i, err)
	}
	fs.pubIm = pim
	fs.secRd.Reset(secFrame)
	sim, err := jpegx.DecodeInto(&fs.secRd, fs.secIm, &fs.secDec)
	fs.secRd.Reset(nil)
	if err != nil {
		return nil, fmt.Errorf("video: decoding secret frame %d: %w", i, err)
	}
	fs.secIm = sim
	orig, err := core.ReconstructCoeffsInto(pim, sim, threshold, fs.outIm, pool)
	if err != nil {
		return nil, fmt.Errorf("video: frame %d: %w", i, err)
	}
	fs.outIm = orig
	fs.buf.Reset()
	if err := jpegx.EncodeCoeffs(&fs.buf, orig, &jpegx.EncodeOptions{OptimizeHuffman: true, Workers: pool}); err != nil {
		return nil, fmt.Errorf("video: encoding frame %d: %w", i, err)
	}
	return append([]byte(nil), fs.buf.Bytes()...), nil
}

// openSecretStream unseals the secret container and parses the secret
// stream, checking its frame count against the public stream's.
func openSecretStream(pub *Stream, secretBlob []byte, key core.Key) (int, *Stream, error) {
	threshold, secStreamBytes, err := core.OpenSecret(key, secretBlob)
	if err != nil {
		return 0, nil, err
	}
	secrets, err := parseStream(secStreamBytes)
	if err != nil {
		return 0, nil, err
	}
	if len(pub.Frames) != len(secrets.Frames) {
		return 0, nil, fmt.Errorf("video: %d public frames but %d secret frames", len(pub.Frames), len(secrets.Frames))
	}
	return threshold, secrets, nil
}

// JoinStream reconstructs the original MJPEG stream from an unprocessed
// public stream and the sealed secret container. Frame counts must match;
// every frame is recombined exactly in the coefficient domain. Frames join
// concurrently on opts.Workers (nil runs sequentially); output bytes are
// identical at every parallelism level.
func JoinStream(publicStream, secretBlob []byte, key core.Key, opts *core.Options) ([]byte, error) {
	pub, err := parseStream(publicStream)
	if err != nil {
		return nil, err
	}
	threshold, secrets, err := openSecretStream(pub, secretBlob, key)
	if err != nil {
		return nil, err
	}
	var pool *work.Pool
	if opts != nil {
		pool = opts.Workers
	}
	out := &Stream{Frames: make([][]byte, len(pub.Frames))}
	var scratches sync.Pool
	err = pool.Do(len(pub.Frames), func(i int) error {
		fs, _ := scratches.Get().(*joinScratch)
		if fs == nil {
			fs = new(joinScratch)
		}
		defer scratches.Put(fs)
		frame, err := fs.joinFrame(pub.Frames[i], secrets.Frames[i], threshold, i, pool)
		if err != nil {
			return err
		}
		out.Frames[i] = frame
		return nil
	})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := out.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// JoinFrame reconstructs a single frame of a split video: the serving
// path's frame seek. It costs one container unseal plus one frame's decode
// → recombine → encode, not a whole-clip join. opts contributes only
// Workers (for the single frame's band pipeline).
func JoinFrame(publicStream, secretBlob []byte, key core.Key, frame int, opts *core.Options) ([]byte, error) {
	pub, err := parseStream(publicStream)
	if err != nil {
		return nil, err
	}
	if frame < 0 || frame >= len(pub.Frames) {
		return nil, &FrameRangeError{Frame: frame, Frames: len(pub.Frames)}
	}
	threshold, secrets, err := openSecretStream(pub, secretBlob, key)
	if err != nil {
		return nil, err
	}
	var pool *work.Pool
	if opts != nil {
		pool = opts.Workers
	}
	var fs joinScratch
	return fs.joinFrame(pub.Frames[frame], secrets.Frames[frame], threshold, frame, pool)
}
