// Package video implements the paper's §4.2 extension sketch: applying P3
// to video by protecting intra-coded frames. The substrate is a
// Motion-JPEG-style stream — every frame an independently coded JPEG, the
// "tools similar to those used in JPEG" the paper points at — so the P3
// split applies frame by frame: the public stream stays a valid MJPEG that
// a provider can transcode or thumbnail, while one sealed container carries
// all frames' secret parts. (Quality reductions in an I-frame would
// propagate through a predicted GOP, which is exactly why protecting
// I-frames suffices; motion-compensated P/B frames are future work here as
// in the paper.)
package video

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"p3/internal/core"
	"p3/internal/jpegx"
)

const streamMagic = "P3MJ"

// Stream is a Motion-JPEG sequence.
type Stream struct {
	// Frames are independently coded JPEG images.
	Frames [][]byte
}

// Write serializes the stream: magic, frame count, then length-prefixed
// frames.
func (s *Stream) Write(w io.Writer) error {
	if len(s.Frames) == 0 {
		return errors.New("video: empty stream")
	}
	if _, err := io.WriteString(w, streamMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.BigEndian, uint32(len(s.Frames))); err != nil {
		return err
	}
	for i, f := range s.Frames {
		if len(f) == 0 {
			return fmt.Errorf("video: frame %d empty", i)
		}
		if err := binary.Write(w, binary.BigEndian, uint32(len(f))); err != nil {
			return err
		}
		if _, err := w.Write(f); err != nil {
			return err
		}
	}
	return nil
}

// ReadStream parses a serialized stream.
func ReadStream(r io.Reader) (*Stream, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != streamMagic {
		return nil, errors.New("video: not a P3 MJPEG stream")
	}
	var n uint32
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return nil, err
	}
	if n == 0 || n > 1<<20 {
		return nil, fmt.Errorf("video: implausible frame count %d", n)
	}
	s := &Stream{Frames: make([][]byte, n)}
	for i := range s.Frames {
		var flen uint32
		if err := binary.Read(r, binary.BigEndian, &flen); err != nil {
			return nil, fmt.Errorf("video: frame %d header: %w", i, err)
		}
		if flen == 0 || flen > 64<<20 {
			return nil, fmt.Errorf("video: implausible frame %d length %d", i, flen)
		}
		s.Frames[i] = make([]byte, flen)
		if _, err := io.ReadFull(r, s.Frames[i]); err != nil {
			return nil, fmt.Errorf("video: frame %d body: %w", i, err)
		}
	}
	return s, nil
}

// SplitResult carries a split video.
type SplitResult struct {
	// PublicStream is a valid stream of public-part JPEGs.
	PublicStream []byte
	// SecretBlob is one sealed container holding every frame's secret part.
	SecretBlob []byte
	Threshold  int
}

// SplitStream splits every frame of an MJPEG stream with P3. All frames use
// the same threshold and key; the secret parts travel together in a single
// sealed container so the recipient makes one store round trip per video.
func SplitStream(streamBytes []byte, key core.Key, opts *core.Options) (*SplitResult, error) {
	s, err := ReadStream(bytes.NewReader(streamBytes))
	if err != nil {
		return nil, err
	}
	if opts == nil {
		o := core.DefaultOptions
		opts = &o
	}
	threshold := opts.Threshold
	if threshold == 0 {
		threshold = core.DefaultThreshold
	}
	pub := &Stream{Frames: make([][]byte, len(s.Frames))}
	secrets := &Stream{Frames: make([][]byte, len(s.Frames))}
	enc := &jpegx.EncodeOptions{OptimizeHuffman: opts.OptimizeHuffman}
	for i, frame := range s.Frames {
		im, err := jpegx.Decode(bytes.NewReader(frame))
		if err != nil {
			return nil, fmt.Errorf("video: decoding frame %d: %w", i, err)
		}
		im.StripMarkers()
		p, sec, err := core.Split(im, threshold)
		if err != nil {
			return nil, fmt.Errorf("video: splitting frame %d: %w", i, err)
		}
		var pb, sb bytes.Buffer
		if err := jpegx.EncodeCoeffs(&pb, p, enc); err != nil {
			return nil, err
		}
		if err := jpegx.EncodeCoeffs(&sb, sec, enc); err != nil {
			return nil, err
		}
		pub.Frames[i] = pb.Bytes()
		secrets.Frames[i] = sb.Bytes()
	}
	var pubBuf, secBuf bytes.Buffer
	if err := pub.Write(&pubBuf); err != nil {
		return nil, err
	}
	if err := secrets.Write(&secBuf); err != nil {
		return nil, err
	}
	sealed, err := core.SealSecret(key, threshold, secBuf.Bytes())
	if err != nil {
		return nil, err
	}
	return &SplitResult{PublicStream: pubBuf.Bytes(), SecretBlob: sealed, Threshold: threshold}, nil
}

// JoinStream reconstructs the original MJPEG stream from an unprocessed
// public stream and the sealed secret container. Frame counts must match;
// every frame is recombined exactly in the coefficient domain.
func JoinStream(publicStream, secretBlob []byte, key core.Key) ([]byte, error) {
	pub, err := ReadStream(bytes.NewReader(publicStream))
	if err != nil {
		return nil, err
	}
	threshold, secStreamBytes, err := core.OpenSecret(key, secretBlob)
	if err != nil {
		return nil, err
	}
	secrets, err := ReadStream(bytes.NewReader(secStreamBytes))
	if err != nil {
		return nil, err
	}
	if len(pub.Frames) != len(secrets.Frames) {
		return nil, fmt.Errorf("video: %d public frames but %d secret frames", len(pub.Frames), len(secrets.Frames))
	}
	out := &Stream{Frames: make([][]byte, len(pub.Frames))}
	for i := range pub.Frames {
		pim, err := jpegx.Decode(bytes.NewReader(pub.Frames[i]))
		if err != nil {
			return nil, fmt.Errorf("video: decoding public frame %d: %w", i, err)
		}
		sim, err := jpegx.Decode(bytes.NewReader(secrets.Frames[i]))
		if err != nil {
			return nil, fmt.Errorf("video: decoding secret frame %d: %w", i, err)
		}
		orig, err := core.ReconstructCoeffs(pim, sim, threshold)
		if err != nil {
			return nil, fmt.Errorf("video: frame %d: %w", i, err)
		}
		var buf bytes.Buffer
		if err := jpegx.EncodeCoeffs(&buf, orig, &jpegx.EncodeOptions{OptimizeHuffman: true}); err != nil {
			return nil, err
		}
		out.Frames[i] = buf.Bytes()
	}
	var buf bytes.Buffer
	if err := out.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
