package video

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadStream hammers the container parser with arbitrary bytes. The
// stream arrives from untrusted storage, so no input may panic the parser
// or force allocations beyond the input's own size; every accepted parse
// must re-serialize to exactly the bytes that were parsed (the format has
// one canonical encoding).
func FuzzReadStream(f *testing.F) {
	// A small valid stream as the seed the fuzzer mutates from.
	valid := &Stream{Frames: [][]byte{{0xff, 0xd8, 0xff, 0xd9}, {1, 2, 3}}}
	var buf bytes.Buffer
	if err := valid.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(streamMagic))
	f.Add([]byte("P3MJ\x00\x00\x00\x01\x00\x00\x00\x03abc"))
	// A header claiming 2^20 frames over a 12-byte body.
	hostile := make([]byte, 12)
	copy(hostile, streamMagic)
	binary.BigEndian.PutUint32(hostile[4:], 1<<20)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadStream(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Round trip: an accepted stream re-serializes byte-identically.
		var out bytes.Buffer
		if err := s.Write(&out); err != nil {
			t.Fatalf("accepted stream failed to serialize: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("round trip changed %d bytes to %d", len(data), out.Len())
		}
		// The random-access helpers agree with the full parse.
		n, err := FrameCount(data)
		if err != nil || n != len(s.Frames) {
			t.Fatalf("FrameCount = %d, %v; want %d", n, err, len(s.Frames))
		}
		for i := range s.Frames {
			frame, err := Frame(data, i)
			if err != nil || !bytes.Equal(frame, s.Frames[i]) {
				t.Fatalf("Frame(%d) mismatch (err %v)", i, err)
			}
		}
	})
}
