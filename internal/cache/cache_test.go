package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var ctx = context.Background()

func byteSize(b []byte) int { return len(b) }

func TestGetOrLoadCachesValue(t *testing.T) {
	c := New[[]byte](1<<20, 0, byteSize)
	loads := 0
	load := func(context.Context) ([]byte, error) { loads++; return []byte("value"), nil }
	for i := 0; i < 3; i++ {
		v, err := c.GetOrLoad(ctx, "k", load)
		if err != nil || string(v) != "value" {
			t.Fatalf("GetOrLoad = %q, %v", v, err)
		}
	}
	if loads != 1 {
		t.Errorf("loader ran %d times, want 1", loads)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 || st.Bytes != 5 || st.Entries != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestGetOrLoadErrorNotCached(t *testing.T) {
	c := New[[]byte](1<<20, 0, byteSize)
	boom := errors.New("boom")
	calls := 0
	if _, err := c.GetOrLoad(ctx, "k", func(context.Context) ([]byte, error) {
		calls++
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if v, err := c.GetOrLoad(ctx, "k", func(context.Context) ([]byte, error) {
		calls++
		return []byte("ok"), nil
	}); err != nil || string(v) != "ok" {
		t.Fatalf("retry = %q, %v", v, err)
	}
	if calls != 2 {
		t.Errorf("loader ran %d times, want 2 (errors must not be cached)", calls)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("entries %d after failed+ok load, want 1", st.Entries)
	}
}

// TestSingleflight is the stampede test: N concurrent misses on one key run
// the loader exactly once, and everyone gets its result.
func TestSingleflight(t *testing.T) {
	c := New[[]byte](1<<20, 0, byteSize)
	const n = 50
	var loads atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([][]byte, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-started
			results[i], errs[i] = c.GetOrLoad(ctx, "hot", func(context.Context) ([]byte, error) {
				loads.Add(1)
				<-release // hold the load open so everyone piles up
				return []byte("payload"), nil
			})
		}(i)
	}
	close(started)
	time.Sleep(20 * time.Millisecond) // let the waiters queue behind the leader
	close(release)
	wg.Wait()
	if got := loads.Load(); got != 1 {
		t.Fatalf("loader ran %d times for %d concurrent gets, want 1", got, n)
	}
	for i := range results {
		if errs[i] != nil || string(results[i]) != "payload" {
			t.Fatalf("caller %d got %q, %v", i, results[i], errs[i])
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.Coalesced == 0 {
		t.Errorf("coalesced = 0, want > 0 (waiters should have joined the flight)")
	}
	if st.Misses+st.Coalesced != n {
		t.Errorf("misses %d + coalesced %d != %d callers", st.Misses, st.Coalesced, n)
	}
}

// TestLoaderPanicRecovered: a panicking loader must not wedge its key —
// callers get an error and the next load retries.
func TestLoaderPanicRecovered(t *testing.T) {
	c := New[[]byte](1<<20, 0, byteSize)
	_, err := c.GetOrLoad(ctx, "k", func(context.Context) ([]byte, error) {
		panic("boom")
	})
	if err == nil {
		t.Fatal("panicking loader returned nil error")
	}
	// The key must be loadable again.
	v, err := c.GetOrLoad(ctx, "k", func(context.Context) ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil || string(v) != "ok" {
		t.Fatalf("retry after panic = %q, %v", v, err)
	}
}

// TestLeaderCancelDoesNotFailWaiters: the load is detached from the
// initiating caller's context, so a leader that gives up gets its own
// ctx.Err() while the waiters still receive the loaded value.
func TestLeaderCancelDoesNotFailWaiters(t *testing.T) {
	c := New[[]byte](1<<20, 0, byteSize)
	leaderCtx, cancelLeader := context.WithCancel(ctx)
	inLoad := make(chan struct{})
	release := make(chan struct{})

	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.GetOrLoad(leaderCtx, "k", func(lctx context.Context) ([]byte, error) {
			close(inLoad)
			select {
			case <-release:
				return []byte("survived"), nil
			case <-lctx.Done(): // must not fire: the load ctx is detached
				return nil, lctx.Err()
			}
		})
		leaderErr <- err
	}()
	<-inLoad
	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled leader err = %v, want context.Canceled", err)
	}
	// A waiter joining after the leader bailed still gets the result.
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err := c.GetOrLoad(ctx, "k", nil)
		if err != nil || string(v) != "survived" {
			t.Errorf("waiter after leader cancel = %q, %v", v, err)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	<-done
}

func TestWaiterContextCancel(t *testing.T) {
	c := New[[]byte](1<<20, 0, byteSize)
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	go func() {
		c.GetOrLoad(ctx, "k", func(context.Context) ([]byte, error) {
			close(leaderIn)
			<-release
			return []byte("late"), nil
		})
	}()
	<-leaderIn
	wctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := c.GetOrLoad(wctx, "k", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v, want context.Canceled", err)
	}
	close(release)
}

func TestByteBoundEvictsLRU(t *testing.T) {
	c := New[[]byte](100, 0, byteSize)
	blob := make([]byte, 40)
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), blob)
	}
	st := c.Stats()
	if st.Bytes > 100 {
		t.Errorf("bytes %d exceed budget 100", st.Bytes)
	}
	if st.Entries != 2 {
		t.Errorf("entries %d, want 2 (two 40B blobs fit in 100B)", st.Entries)
	}
	if st.Evictions != 8 {
		t.Errorf("evictions %d, want 8", st.Evictions)
	}
	// The survivors are the most recently inserted.
	if _, ok := c.Get("k9"); !ok {
		t.Error("most recent entry evicted")
	}
	if _, ok := c.Get("k0"); ok {
		t.Error("oldest entry survived")
	}
}

func TestLRUOrderRespectsAccess(t *testing.T) {
	c := New[[]byte](0, 2, byteSize)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Get("a") // a becomes most recent; b is now LRU
	c.Put("c", []byte("3"))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted as LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used a was evicted")
	}
}

func TestOversizedValueNotCached(t *testing.T) {
	c := New[[]byte](10, 0, byteSize)
	c.Put("small", []byte("1234"))
	c.Put("huge", make([]byte, 1000))
	if _, ok := c.Get("huge"); ok {
		t.Error("oversized value was cached")
	}
	if _, ok := c.Get("small"); !ok {
		t.Error("oversized insert evicted unrelated entries")
	}
	// Replacing a cached value with an oversized one must drop the stale copy.
	c.Put("small", make([]byte, 1000))
	if _, ok := c.Get("small"); ok {
		t.Error("stale small value survived oversized replacement")
	}
}

func TestReplaceAdjustsBytes(t *testing.T) {
	c := New[[]byte](1<<20, 0, byteSize)
	c.Put("k", make([]byte, 100))
	c.Put("k", make([]byte, 30))
	if st := c.Stats(); st.Bytes != 30 || st.Entries != 1 {
		t.Errorf("stats after replace: %+v", st)
	}
}

// TestPurgeDuringLoadNotReinserted: a Purge that lands while a load is in
// flight means "pre-purge data is invalid" — the completing load must hand
// its value to waiters but not insert it.
func TestPurgeDuringLoadNotReinserted(t *testing.T) {
	c := New[[]byte](1<<20, 0, byteSize)
	inLoad := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err := c.GetOrLoad(ctx, "k", func(context.Context) ([]byte, error) {
			close(inLoad)
			<-release
			return []byte("pre-purge"), nil
		})
		if err != nil || string(v) != "pre-purge" {
			t.Errorf("loader's caller got %q, %v", v, err)
		}
	}()
	<-inLoad
	c.Purge()
	close(release)
	<-done
	if _, ok := c.Get("k"); ok {
		t.Error("pre-purge load was inserted after Purge")
	}
}

func TestDeleteAndPurge(t *testing.T) {
	c := New[[]byte](0, 0, byteSize)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("22"))
	c.Delete("a")
	c.Delete("missing")
	if st := c.Stats(); st.Entries != 1 || st.Bytes != 2 {
		t.Errorf("after delete: %+v", st)
	}
	c.Purge()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 || st.Evictions != 0 {
		t.Errorf("after purge: %+v", st)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("purged entry still present")
	}
}

func TestNilSizeOfCountsEntries(t *testing.T) {
	c := New[int](3, 0, nil)
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if st := c.Stats(); st.Entries != 3 {
		t.Errorf("entries %d, want 3 with nil sizeOf and maxBytes 3", st.Entries)
	}
}

// TestConcurrentMixedUse hammers every method; run under -race.
func TestConcurrentMixedUse(t *testing.T) {
	c := New[[]byte](1<<12, 64, byteSize)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%32)
				switch i % 5 {
				case 0:
					c.Put(key, make([]byte, 64))
				case 1:
					c.Get(key)
				case 2:
					c.GetOrLoad(ctx, key, func(context.Context) ([]byte, error) {
						return make([]byte, 64), nil
					})
				case 3:
					c.Delete(key)
				default:
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > 1<<12 || st.Entries > 64 {
		t.Errorf("bounds violated after concurrent use: %+v", st)
	}
}

// TestPurgeMatching removes only the entries the predicate selects and
// keeps the survivors' bytes/entries accounting consistent.
func TestPurgeMatching(t *testing.T) {
	c := New(0, 0, func(b []byte) int { return len(b) })
	c.Put("photo\x00a", make([]byte, 10))
	c.Put("photo\x00b", make([]byte, 20))
	c.Put("video\x00a", make([]byte, 40))
	c.PurgeMatching(func(key string) bool { return key[:6] == "photo\x00" })
	if _, ok := c.Get("photo\x00a"); ok {
		t.Error("matched entry survived")
	}
	if _, ok := c.Get("photo\x00b"); ok {
		t.Error("matched entry survived")
	}
	if _, ok := c.Get("video\x00a"); !ok {
		t.Error("unmatched entry purged")
	}
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 40 {
		t.Errorf("accounting after selective purge: %+v", st)
	}
	if st.Evictions != 0 {
		t.Errorf("selective purge counted as %d evictions", st.Evictions)
	}
}

// TestHotKeys: the ranking orders entries by lookups served, hottest
// first, and caps at n — the working set a pre-warm rebuilds.
func TestHotKeys(t *testing.T) {
	c := New[[]byte](0, 0, byteSize)
	c.Put("cold", []byte("c"))
	c.Put("warm", []byte("w"))
	c.Put("hot", []byte("h"))
	for i := 0; i < 5; i++ {
		c.Get("hot")
	}
	for i := 0; i < 2; i++ {
		c.Get("warm")
	}
	got := c.HotKeys(2)
	if len(got) != 2 || got[0].Key != "hot" || got[0].Hits != 5 || got[1].Key != "warm" || got[1].Hits != 2 {
		t.Errorf("HotKeys(2) = %+v, want hot(5), warm(2)", got)
	}
	if all := c.HotKeys(10); len(all) != 3 {
		t.Errorf("HotKeys(10) returned %d entries, want all 3", len(all))
	}
	if c.HotKeys(0) != nil {
		t.Error("HotKeys(0) must return nil")
	}
	// GetOrLoad hits count too; loads (misses) do not.
	if _, err := c.GetOrLoad(ctx, "cold", func(context.Context) ([]byte, error) {
		t.Error("loader ran for a cached key")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := c.HotKeys(10); got[len(got)-1].Key != "cold" || got[len(got)-1].Hits != 1 {
		t.Errorf("GetOrLoad hit not counted: %+v", got)
	}
}

// TestContains is a pure probe: no hit counted, no LRU refresh.
func TestContains(t *testing.T) {
	c := New[[]byte](0, 2, byteSize)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	if !c.Contains("a") || c.Contains("missing") {
		t.Error("Contains gave wrong membership")
	}
	if st := c.Stats(); st.Hits != 0 {
		t.Errorf("Contains counted %d hits, want 0", st.Hits)
	}
	// "a" is still the LRU tail despite the Contains probe: inserting a
	// third entry into the 2-entry budget must evict it, not "b".
	c.Put("c", []byte("3"))
	if c.Contains("a") || !c.Contains("b") {
		t.Error("Contains refreshed LRU position")
	}
}

// TestPurgeMatchingDuringLoadNotReinserted is the epoch-retention variant
// of TestPurgeDuringLoadNotReinserted: a selective purge must also block
// loads that were in flight when it ran, even ones whose key the predicate
// would have spared — their data may predate the epoch flip that prompted
// the purge.
func TestPurgeMatchingDuringLoadNotReinserted(t *testing.T) {
	c := New[[]byte](1<<20, 0, byteSize)
	inLoad := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err := c.GetOrLoad(ctx, "1\x00photo", func(context.Context) ([]byte, error) {
			close(inLoad)
			<-release
			return []byte("old-epoch"), nil
		})
		if err != nil || string(v) != "old-epoch" {
			t.Errorf("loader's caller got %q, %v", v, err)
		}
	}()
	<-inLoad
	c.PurgeMatching(func(key string) bool { return false }) // spares everything…
	close(release)
	<-done
	// …yet the in-flight load still must not insert: its bytes were
	// computed before the purge's cutoff.
	if c.Contains("1\x00photo") {
		t.Error("load in flight across PurgeMatching was inserted")
	}
}
