// Package cache provides the proxy's serving-path cache: a generic LRU
// bounded by both bytes and entry count, with singleflight loading so
// concurrent misses on one key coalesce into a single backend fetch.
//
// The shape matches the proxy's fan-out: millions of users viewing a long
// tail of photos means the cache must stay bounded regardless of how many
// distinct keys flow through it, while a popular photo's burst of
// simultaneous views must cost the backend one fetch, not N (the classic
// cache-stampede problem serving-system traces show dominating tail
// latency).
package cache

import (
	"container/list"
	"context"
	"fmt"
	"sort"
	"sync"
)

// Stats is a point-in-time snapshot of a cache's counters. Counters are
// cumulative since construction; Entries and Bytes describe the current
// contents.
//
// Each field corresponds 1:1 to a metric series the proxy registers for
// its caches (one naming scheme, documented in ARCHITECTURE.md): Hits ↔
// p3_cache_hits_total, Misses ↔ p3_cache_misses_total, Coalesced ↔
// p3_cache_coalesced_total, Evictions ↔ p3_cache_evictions_total, Entries
// ↔ p3_cache_entries, Bytes ↔ p3_cache_bytes — all labeled with the cache
// name. Renaming a field here means renaming the series there.
type Stats struct {
	Hits      uint64 `json:"hits"`      // GetOrLoad/Get served from the cache
	Misses    uint64 `json:"misses"`    // GetOrLoad calls that ran the loader
	Coalesced uint64 `json:"coalesced"` // GetOrLoad calls that joined an in-flight load
	Evictions uint64 `json:"evictions"` // entries removed to satisfy the byte/entry budget
	Entries   int    `json:"entries"`   // current entry count
	Bytes     int64  `json:"bytes"`     // current sum of entry sizes
}

// Cache is a size-bounded LRU keyed by string. The zero value is not
// usable; construct with New. All methods are safe for concurrent use.
type Cache[V any] struct {
	maxBytes   int64       // <= 0 means no byte bound
	maxEntries int         // <= 0 means no entry bound
	sizeOf     func(V) int // nil means every entry costs 1 byte

	mu       sync.Mutex
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*call[V]
	gen      uint64 // bumped by Purge; loads started before a purge must not insert
	stats    Stats
}

type entry[V any] struct {
	key  string
	val  V
	size int64
	hits uint64 // lookups served from this entry since insertion
}

// call is one in-flight load; waiters block on done.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New builds a cache bounded to maxBytes total value size (per sizeOf) and
// maxEntries entries; a bound <= 0 is unlimited. A nil sizeOf charges every
// entry one byte, turning maxBytes into an entry bound.
func New[V any](maxBytes int64, maxEntries int, sizeOf func(V) int) *Cache[V] {
	return &Cache[V]{
		maxBytes:   maxBytes,
		maxEntries: maxEntries,
		sizeOf:     sizeOf,
		ll:         list.New(),
		entries:    make(map[string]*list.Element),
		inflight:   make(map[string]*call[V]),
	}
}

// GetOrLoad returns the cached value for key, or runs load to produce it.
// Concurrent calls for the same key coalesce: exactly one load runs and
// everyone waits for its result. The load runs on a context detached from
// the initiating caller's cancellation (values preserved), so one
// disconnecting client cannot fail the coalesced group; any caller —
// leader included — whose own ctx expires unblocks with ctx.Err() while
// the load completes for the others. A load error is returned to every
// coalesced caller and is not cached — the next call retries. A panicking
// loader is recovered into an error rather than wedging the key.
func (c *Cache[V]) GetOrLoad(ctx context.Context, key string, load func(ctx context.Context) (V, error)) (V, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.stats.Hits++
		c.ll.MoveToFront(el)
		e := el.Value.(*entry[V])
		e.hits++
		v := e.val
		c.mu.Unlock()
		return v, nil
	}
	cl, ok := c.inflight[key]
	if ok {
		c.stats.Coalesced++
		c.mu.Unlock()
	} else {
		c.stats.Misses++
		cl = &call[V]{done: make(chan struct{})}
		c.inflight[key] = cl
		gen := c.gen
		c.mu.Unlock()
		loadCtx := context.WithoutCancel(ctx)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					cl.err = fmt.Errorf("cache: loader for %q panicked: %v", key, r)
				}
				c.mu.Lock()
				delete(c.inflight, key)
				// A Purge during the load means the caller wanted pre-purge
				// data gone — don't re-populate with it.
				if cl.err == nil && gen == c.gen {
					c.putLocked(key, cl.val)
				}
				c.mu.Unlock()
				close(cl.done)
			}()
			cl.val, cl.err = load(loadCtx)
		}()
	}
	select {
	case <-cl.done:
		return cl.val, cl.err
	case <-ctx.Done():
		var zero V
		return zero, ctx.Err()
	}
}

// Get returns the cached value without loading.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.stats.Hits++
		c.ll.MoveToFront(el)
		e := el.Value.(*entry[V])
		e.hits++
		return e.val, true
	}
	var zero V
	return zero, false
}

// Contains reports whether key is currently cached, without counting a hit
// or refreshing the entry's LRU position — a metrics probe, not a lookup.
func (c *Cache[V]) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// HotKey is one row of the popularity ranking HotKeys returns.
type HotKey struct {
	Key  string
	Hits uint64
}

// HotKeys returns up to n cached keys ranked by lookups served since each
// entry was inserted, hottest first (ties break toward more recent use) —
// the working set a post-recalibration pre-warm should reconstruct before
// traffic finds the cold entries. It walks every entry under the lock, so
// callers are expected to be occasional (once per recalibration), not on
// the serving path.
func (c *Cache[V]) HotKeys(n int) []HotKey {
	if n <= 0 {
		return nil
	}
	c.mu.Lock()
	all := make([]HotKey, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry[V])
		all = append(all, HotKey{Key: e.key, Hits: e.hits})
	}
	c.mu.Unlock()
	// The walk emitted entries most-recently-used first; a stable sort on
	// hits therefore keeps recency as the tiebreak.
	sort.SliceStable(all, func(i, j int) bool { return all[i].Hits > all[j].Hits })
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// Put inserts or replaces a value, evicting LRU entries as needed. Used to
// warm the cache with data the caller already has (e.g. the secret part it
// just uploaded), saving the first view's backend fetch.
func (c *Cache[V]) Put(key string, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, v)
}

// Delete removes one entry (a no-op for absent keys). It does not count as
// an eviction.
func (c *Cache[V]) Delete(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.removeLocked(el)
	}
}

// Purge empties the cache, e.g. when recalibration invalidates every
// reconstructed variant. Loads in flight at purge time complete for their
// waiters but are not inserted. Cumulative counters survive; purged entries
// do not count as evictions.
func (c *Cache[V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.entries)
	c.gen++
	c.stats.Entries = 0
	c.stats.Bytes = 0
}

// PurgeMatching removes every entry whose key satisfies pred, e.g. a
// selective invalidation that spares entries a config change cannot have
// affected. Like Purge it bumps the load generation, so loads in flight at
// purge time complete for their waiters but are not inserted (the
// predicate cannot be consulted for them — their keys are not yet in the
// cache). Removed entries do not count as evictions.
func (c *Cache[V]) PurgeMatching(pred func(key string) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		if pred(el.Value.(*entry[V]).key) {
			c.removeLocked(el)
		}
	}
	c.gen++
}

// Len returns the current entry count.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters and current size.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Cache[V]) size(v V) int64 {
	if c.sizeOf == nil {
		return 1
	}
	return int64(c.sizeOf(v))
}

func (c *Cache[V]) putLocked(key string, v V) {
	size := c.size(v)
	if c.maxBytes > 0 && size > c.maxBytes {
		// The value alone busts the budget: admitting it would evict the
		// whole cache and then itself. Serve it uncached.
		if el, ok := c.entries[key]; ok {
			c.removeLocked(el) // a stale smaller value must not linger
		}
		return
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry[V])
		c.stats.Bytes += size - e.size
		e.val, e.size = v, size
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(&entry[V]{key: key, val: v, size: size})
		c.stats.Entries++
		c.stats.Bytes += size
	}
	for (c.maxBytes > 0 && c.stats.Bytes > c.maxBytes) ||
		(c.maxEntries > 0 && c.stats.Entries > c.maxEntries) {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		c.removeLocked(oldest)
		c.stats.Evictions++
	}
}

func (c *Cache[V]) removeLocked(el *list.Element) {
	e := el.Value.(*entry[V])
	c.ll.Remove(el)
	delete(c.entries, e.key)
	c.stats.Entries--
	c.stats.Bytes -= e.size
}
