package similarity

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// bruteForce is the oracle for BK-tree queries: scan every indexed hash.
func bruteForce(entries map[string]Hash, h Hash, maxDist int) []Match {
	var out []Match
	for id, eh := range entries {
		if d := Distance(eh, h); d <= maxDist {
			out = append(out, Match{ID: id, Hash: eh.String(), Distance: d})
		}
	}
	sortMatches(out)
	return out
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Distance != ms[j].Distance {
			return ms[i].Distance < ms[j].Distance
		}
		return ms[i].ID < ms[j].ID
	})
}

func matchesEqual(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// clusteredHash draws hashes in loose clusters so queries see a mix of
// tiny and moderate distances, not just the ~32-bit spread of uniform
// random pairs. That exercises the BK-tree's edge pruning on both sides.
func clusteredHash(rng *rand.Rand, centers []Hash) Hash {
	h := centers[rng.Intn(len(centers))]
	for flips := rng.Intn(12); flips > 0; flips-- {
		h ^= 1 << uint(rng.Intn(64))
	}
	return h
}

// TestQueryMatchesBruteForceOracle is the index's core correctness
// property: for every radius, the BK-tree returns exactly the set the
// exhaustive scan returns — nothing pruned that shouldn't be, nothing
// extra.
func TestQueryMatchesBruteForceOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	centers := make([]Hash, 8)
	for i := range centers {
		centers[i] = Hash(rng.Uint64())
	}
	ix := NewIndex()
	defer ix.Close()
	entries := map[string]Hash{}
	for i := 0; i < 500; i++ {
		id := fmt.Sprintf("p-%03d", i)
		h := clusteredHash(rng, centers)
		entries[id] = h
		ix.Add(id, h)
	}
	if ix.Len() != len(entries) {
		t.Fatalf("Len %d, want %d", ix.Len(), len(entries))
	}
	for _, maxDist := range []int{0, 1, 2, 4, 8, 16, 32, 64} {
		for trial := 0; trial < 20; trial++ {
			var probe Hash
			if trial%2 == 0 {
				probe = clusteredHash(rng, centers) // near the data
			} else {
				probe = Hash(rng.Uint64()) // far from the data
			}
			got := ix.Query(probe, maxDist)
			want := bruteForce(entries, probe, maxDist)
			if !matchesEqual(got, want) {
				t.Fatalf("d=%d probe=%s: tree returned %d matches, oracle %d\n got: %v\nwant: %v",
					maxDist, probe, len(got), len(want), got, want)
			}
		}
	}
}

func TestRemoveAndReAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ix := NewIndex()
	defer ix.Close()
	entries := map[string]Hash{}
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("p-%03d", i)
		h := Hash(rng.Uint64())
		entries[id] = h
		ix.Add(id, h)
	}
	// Remove half; the oracle comparison must still hold exactly.
	for i := 0; i < 200; i += 2 {
		id := fmt.Sprintf("p-%03d", i)
		ix.Remove(id)
		delete(entries, id)
	}
	if ix.Len() != len(entries) {
		t.Fatalf("Len %d after removals, want %d", ix.Len(), len(entries))
	}
	for trial := 0; trial < 10; trial++ {
		probe := Hash(rng.Uint64())
		if got, want := ix.Query(probe, 64), bruteForce(entries, probe, 64); !matchesEqual(got, want) {
			t.Fatalf("after removal: got %d matches, want %d", len(got), len(want))
		}
	}
	// Re-adding an ID under a new hash replaces the old position.
	ix.Add("p-001", ^entries["p-001"])
	entries["p-001"] = ^entries["p-001"]
	got := ix.Query(entries["p-001"], 0)
	if len(got) != 1 || got[0].ID != "p-001" {
		t.Fatalf("re-added id not found at new hash: %v", got)
	}
	if h, ok := ix.Hash("p-001"); !ok || h != entries["p-001"] {
		t.Fatalf("Hash(p-001) = %v,%v after re-add", h, ok)
	}
	// Removing a never-added ID is a no-op.
	ix.Remove("no-such-id")
	if ix.Len() != len(entries) {
		t.Fatal("Remove of unknown id changed Len")
	}
}

func TestQueryIDExcludesSelf(t *testing.T) {
	ix := NewIndex()
	defer ix.Close()
	ix.Add("a", 0x0f0f)
	ix.Add("b", 0x0f0f) // exact duplicate of a
	ix.Add("c", 0x0f0e) // 1 bit away

	ms, ok := ix.QueryID("a", 2)
	if !ok {
		t.Fatal("QueryID(a) reported unindexed")
	}
	ids := map[string]int{}
	for _, m := range ms {
		ids[m.ID] = m.Distance
	}
	if _, self := ids["a"]; self {
		t.Fatal("QueryID returned the probe itself")
	}
	if d, okB := ids["b"]; !okB || d != 0 {
		t.Fatalf("duplicate b: got %v (present=%v), want distance 0", d, okB)
	}
	if d, okC := ids["c"]; !okC || d != 1 {
		t.Fatalf("near-dup c: got %v (present=%v), want distance 1", d, okC)
	}
	if _, ok := ix.QueryID("unknown", 2); ok {
		t.Fatal("QueryID(unknown) claimed indexed")
	}
}

// TestConcurrentIngestAndQuery hammers Enqueue/Add/Query/Remove/Flush
// from many goroutines (run under -race) and then checks the final index
// against the oracle.
func TestConcurrentIngestAndQuery(t *testing.T) {
	ix := NewIndex(WithWorkers(4), WithQueueDepth(16))
	defer ix.Close()

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 100; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				switch rng.Intn(4) {
				case 0, 1:
					ix.Add(id, Hash(rng.Uint64()))
				case 2:
					ix.Query(Hash(rng.Uint64()), 10)
				case 3:
					ix.Remove(fmt.Sprintf("w%d-%d", rng.Intn(workers), rng.Intn(100)))
				}
			}
		}(w)
	}
	wg.Wait()
	ix.Flush()
	// The index must still answer exactly: rebuild the oracle from Hash().
	entries := map[string]Hash{}
	for w := 0; w < workers; w++ {
		for i := 0; i < 100; i++ {
			id := fmt.Sprintf("w%d-%d", w, i)
			if h, ok := ix.Hash(id); ok {
				entries[id] = h
			}
		}
	}
	if ix.Len() != len(entries) {
		t.Fatalf("Len %d, oracle %d", ix.Len(), len(entries))
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		probe := Hash(rng.Uint64())
		if got, want := ix.Query(probe, 16), bruteForce(entries, probe, 16); !matchesEqual(got, want) {
			t.Fatalf("post-hammer query diverges from oracle: %d vs %d matches", len(got), len(want))
		}
	}
}

func TestEnqueueAfterCloseIsNoOp(t *testing.T) {
	ix := NewIndex(WithWorkers(2))
	ix.Close()
	ix.Enqueue("late", []byte("whatever")) // must not panic or deadlock
	ix.Flush()
	if ix.Len() != 0 {
		t.Fatal("Enqueue after Close ingested")
	}
}

func TestEnqueueIngestsRealJPEGs(t *testing.T) {
	ix := NewIndex(WithWorkers(2))
	defer ix.Close()
	ix.Enqueue("bad", []byte("not a jpeg"))
	ix.Flush()
	if ix.Len() != 0 {
		t.Fatal("undecodable enqueue was indexed")
	}
	st := ix.Stats()
	if st.IngestErrors != 1 {
		t.Fatalf("ingest errors %d, want 1", st.IngestErrors)
	}
}
