// Package similarity indexes public parts by perceptual hash. The P3
// public part deliberately keeps the visually dominant low-frequency
// content (everything below the DCT threshold), which is exactly the
// band a DCT perceptual hash measures — so near-duplicate search works
// on the public part alone, without ever unsealing a secret part. The
// proxy uses this for duplicate clustering; EXPERIMENTS.md records the
// privacy flip side (an honest-but-curious PSP could run the same
// query).
//
// The hash is the classic 64-bit DCT pHash: decode, shrink to 32×32
// luma, keep the lowest 8×8 block of the 32×32 DCT-II, threshold each
// coefficient against the median. Hamming distance on the resulting
// bits orders images by visual similarity; exact-duplicate re-encodes
// land within a couple of bits.
package similarity

import (
	"bytes"
	"math"
	"math/bits"
	"sort"
	"strconv"

	"p3/internal/imaging"
	"p3/internal/jpegx"
	"p3/internal/vision"
)

// Hash is a 64-bit DCT perceptual hash. Bit (v*8+u) holds whether DCT
// coefficient (u, v) of the 32×32 luma thumbnail exceeds the median of
// the retained 8×8 low-frequency block.
type Hash uint64

// String renders the hash as 16 hex digits (stable across runs; used in
// golden tests and JSON output).
func (h Hash) String() string {
	const hexdig = "0123456789abcdef"
	var b [16]byte
	for i := 0; i < 16; i++ {
		b[i] = hexdig[(h>>uint(60-4*i))&0xf]
	}
	return string(b[:])
}

// ParseHash inverts String.
func ParseHash(s string) (Hash, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	return Hash(v), err
}

// Distance returns the hamming distance between two hashes (0..64).
func Distance(a, b Hash) int {
	return bits.OnesCount64(uint64(a ^ b))
}

const (
	thumbSize = 32 // luma thumbnail edge
	hashEdge  = 8  // retained low-frequency block edge
)

// dctBasis is the first hashEdge rows of the orthonormal 32-point
// DCT-II basis: basis[u][x] = c(u)·cos((2x+1)uπ/64). Precomputed once;
// the 2-D low-frequency block is then two small matrix products instead
// of a full 32×32 transform.
var dctBasis = func() [hashEdge][thumbSize]float64 {
	var m [hashEdge][thumbSize]float64
	for u := 0; u < hashEdge; u++ {
		c := math.Sqrt(2.0 / thumbSize)
		if u == 0 {
			c = math.Sqrt(1.0 / thumbSize)
		}
		for x := 0; x < thumbSize; x++ {
			m[u][x] = c * math.Cos((2*float64(x)+1)*float64(u)*math.Pi/(2*thumbSize))
		}
	}
	return m
}()

// PHash computes the perceptual hash of a JPEG. It returns an error —
// never panics — on undecodable input (FuzzPHash pins this).
func PHash(jpegBytes []byte) (Hash, error) {
	img, err := jpegx.DecodeToPlanar(bytes.NewReader(jpegBytes))
	if err != nil {
		return 0, err
	}
	return HashPlanar(img), nil
}

// HashPlanar computes the perceptual hash of an already-decoded image.
func HashPlanar(img *jpegx.PlanarImage) Hash {
	thumb := imaging.Resize{W: thumbSize, H: thumbSize, Filter: imaging.Triangle}.Apply(img)
	return hashGray(vision.Luma(thumb))
}

// hashGray hashes a thumbSize×thumbSize luma plane.
func hashGray(g *vision.Gray) Hash {
	// Low-frequency block of the 2-D DCT-II: coef = B · pix · Bᵀ with B
	// the hashEdge×thumbSize basis. First contract over x (columns),
	// then over y (rows).
	var tmp [hashEdge][thumbSize]float64 // tmp[u][y] = Σ_x B[u][x]·pix[y][x]
	for u := 0; u < hashEdge; u++ {
		for y := 0; y < thumbSize; y++ {
			var acc float64
			row := g.Pix[y*thumbSize : y*thumbSize+thumbSize]
			for x := 0; x < thumbSize; x++ {
				acc += dctBasis[u][x] * row[x]
			}
			tmp[u][y] = acc
		}
	}
	var coef [hashEdge * hashEdge]float64 // coef[v*8+u]
	for v := 0; v < hashEdge; v++ {
		for u := 0; u < hashEdge; u++ {
			var acc float64
			for y := 0; y < thumbSize; y++ {
				acc += dctBasis[v][y] * tmp[u][y]
			}
			coef[v*hashEdge+u] = acc
		}
	}
	// Threshold against the median of all 64 retained coefficients. The
	// DC term dwarfs the rest, which skews a mean; the median splits the
	// block evenly so every hash carries ~32 set bits of signal.
	sorted := coef
	sort.Float64s(sorted[:])
	median := (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	var h Hash
	for i, c := range coef {
		if c > median {
			h |= 1 << uint(i)
		}
	}
	return h
}
