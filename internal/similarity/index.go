package similarity

import (
	"sort"
	"sync"
	"time"

	"p3/internal/metrics"
)

// Match is one similarity query result.
type Match struct {
	ID       string `json:"id"`
	Hash     string `json:"hash"`
	Distance int    `json:"distance"`
}

// node is a BK-tree node. The BK-tree exploits the triangle inequality
// of hamming distance: children are bucketed by their exact distance to
// the parent, so a radius-d query only descends edges within
// [dist-d, dist+d]. Removal clears a node's ID set but keeps the node
// for routing (rebalancing a BK-tree in place isn't possible); empty
// nodes contribute no matches.
type node struct {
	hash Hash
	ids  map[string]struct{}
	kids map[int]*node
}

func (n *node) insert(h Hash, id string) {
	for {
		d := Distance(n.hash, h)
		if d == 0 {
			if n.ids == nil {
				n.ids = make(map[string]struct{})
			}
			n.ids[id] = struct{}{}
			return
		}
		child, ok := n.kids[d]
		if !ok {
			if n.kids == nil {
				n.kids = make(map[int]*node)
			}
			n.kids[d] = &node{hash: h, ids: map[string]struct{}{id: {}}}
			return
		}
		n = child
	}
}

func (n *node) query(h Hash, maxDist int, out *[]Match) {
	d := Distance(n.hash, h)
	if d <= maxDist {
		for id := range n.ids {
			*out = append(*out, Match{ID: id, Hash: n.hash.String(), Distance: d})
		}
	}
	for edge, child := range n.kids {
		if edge >= d-maxDist && edge <= d+maxDist {
			child.query(h, maxDist, out)
		}
	}
}

// Option configures an Index.
type Option func(*idxConfig)

type idxConfig struct {
	registry *metrics.Registry
	name     string
	workers  int
	queue    int
}

// WithRegistry points the index's p3_similarity_* series at a private
// registry instead of metrics.Default.
func WithRegistry(r *metrics.Registry) Option {
	return func(c *idxConfig) { c.registry = r }
}

// WithName sets the index="..." metric label (default "similarity").
func WithName(name string) Option {
	return func(c *idxConfig) { c.name = name }
}

// WithWorkers sets the number of background hash workers (default 4;
// 0 hashes inline on Enqueue).
func WithWorkers(n int) Option {
	return func(c *idxConfig) { c.workers = n }
}

// WithQueueDepth bounds the ingest queue (default 256). When the queue
// is full, Enqueue hashes inline — backpressure on the producer instead
// of unbounded memory.
func WithQueueDepth(n int) Option {
	return func(c *idxConfig) { c.queue = n }
}

type job struct {
	id   string
	jpeg []byte
}

// Index is a concurrent perceptual-hash index over public parts.
// Uploads enqueue (id, public JPEG) pairs; a fixed pool of workers
// drains the bounded queue, hashing off the request path (the
// concurrent-loader shape: producers never block on DCT work unless the
// queue is saturated). Queries take a read lock and walk the BK-tree.
type Index struct {
	mu   sync.RWMutex
	root *node
	byID map[string]Hash

	jobs    chan job
	workers sync.WaitGroup
	pending sync.WaitGroup
	closeMu sync.Mutex
	closed  bool

	ingests      *metrics.Counter
	ingestErrors *metrics.Counter
	inline       *metrics.Counter
	queries      *metrics.Counter
	querySecs    *metrics.Histogram
}

// NewIndex builds an empty index and starts its ingest workers.
func NewIndex(opts ...Option) *Index {
	cfg := idxConfig{registry: metrics.Default, name: "similarity", workers: 4, queue: 256}
	for _, opt := range opts {
		opt(&cfg)
	}
	ix := &Index{
		byID: make(map[string]Hash),
		jobs: make(chan job, cfg.queue),
	}
	r := cfg.registry
	labels := []metrics.Label{{Key: "index", Value: cfg.name}}
	ix.ingests = r.Counter("p3_similarity_ingests_total",
		"Public parts hashed into the similarity index.", labels...)
	ix.ingestErrors = r.Counter("p3_similarity_ingest_errors_total",
		"Public parts that failed to hash (undecodable).", labels...)
	ix.inline = r.Counter("p3_similarity_inline_ingests_total",
		"Ingests hashed on the caller because the queue was full.", labels...)
	ix.queries = r.Counter("p3_similarity_queries_total",
		"Similarity queries served.", labels...)
	ix.querySecs = r.Histogram("p3_similarity_query_seconds",
		"Similarity query latency (hash lookup + BK-tree walk).", labels...)
	r.SetGaugeFunc("p3_similarity_index_size", "IDs currently indexed.",
		func() float64 { ix.mu.RLock(); defer ix.mu.RUnlock(); return float64(len(ix.byID)) }, labels...)
	r.SetGaugeFunc("p3_similarity_queue_depth", "Ingest jobs waiting for a worker.",
		func() float64 { return float64(len(ix.jobs)) }, labels...)
	for i := 0; i < cfg.workers; i++ {
		ix.workers.Add(1)
		go func() {
			defer ix.workers.Done()
			for j := range ix.jobs {
				ix.ingest(j)
			}
		}()
	}
	return ix
}

// Enqueue schedules (id, jpeg) for background hashing. jpeg must not be
// mutated by the caller afterwards. With a full queue (or zero workers)
// the hash runs inline, so Enqueue never drops work and never blocks on
// a slow consumer. After Close, Enqueue is a no-op.
func (ix *Index) Enqueue(id string, jpeg []byte) {
	ix.closeMu.Lock()
	if ix.closed {
		ix.closeMu.Unlock()
		return
	}
	ix.pending.Add(1)
	select {
	case ix.jobs <- job{id: id, jpeg: jpeg}:
		ix.closeMu.Unlock()
	default:
		ix.closeMu.Unlock()
		ix.inline.Inc()
		ix.ingest(job{id: id, jpeg: jpeg})
	}
}

func (ix *Index) ingest(j job) {
	defer ix.pending.Done()
	h, err := PHash(j.jpeg)
	if err != nil {
		ix.ingestErrors.Inc()
		return
	}
	ix.Add(j.id, h)
}

// Add inserts a pre-computed hash. Re-adding an ID replaces its hash.
func (ix *Index) Add(id string, h Hash) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if old, ok := ix.byID[id]; ok {
		if old == h {
			ix.ingests.Inc()
			return
		}
		ix.removeLocked(id, old)
	}
	ix.byID[id] = h
	if ix.root == nil {
		ix.root = &node{hash: h, ids: map[string]struct{}{id: {}}}
	} else {
		ix.root.insert(h, id)
	}
	ix.ingests.Inc()
}

// Remove drops an ID from the index (no-op when absent). The BK-tree
// node stays for routing; only the ID set shrinks.
func (ix *Index) Remove(id string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if h, ok := ix.byID[id]; ok {
		ix.removeLocked(id, h)
	}
}

func (ix *Index) removeLocked(id string, h Hash) {
	delete(ix.byID, id)
	n := ix.root
	for n != nil {
		d := Distance(n.hash, h)
		if d == 0 {
			delete(n.ids, id)
			return
		}
		n = n.kids[d]
	}
}

// Flush blocks until every Enqueue issued so far has been hashed and
// inserted (or counted as an ingest error).
func (ix *Index) Flush() { ix.pending.Wait() }

// Close drains the queue and stops the workers. Enqueue becomes a no-op.
func (ix *Index) Close() {
	ix.closeMu.Lock()
	if ix.closed {
		ix.closeMu.Unlock()
		return
	}
	ix.closed = true
	ix.closeMu.Unlock()
	ix.pending.Wait()
	close(ix.jobs)
	ix.workers.Wait()
}

// Hash returns the indexed hash for id.
func (ix *Index) Hash(id string) (Hash, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	h, ok := ix.byID[id]
	return h, ok
}

// Len returns the number of indexed IDs.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.byID)
}

// Query returns every indexed ID within maxDist hamming bits of h,
// sorted by (distance, id). This is exact: the property tests compare
// it against a brute-force oracle over the full ID set.
func (ix *Index) Query(h Hash, maxDist int) []Match {
	start := time.Now()
	ix.mu.RLock()
	var out []Match
	if ix.root != nil {
		ix.root.query(h, maxDist, &out)
	}
	ix.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].ID < out[j].ID
	})
	ix.queries.Inc()
	ix.querySecs.Observe(time.Since(start))
	return out
}

// QueryID looks up id's hash and returns its neighbors within maxDist,
// excluding id itself. ok is false when id isn't indexed.
func (ix *Index) QueryID(id string, maxDist int) (matches []Match, ok bool) {
	h, ok := ix.Hash(id)
	if !ok {
		return nil, false
	}
	all := ix.Query(h, maxDist)
	matches = all[:0]
	for _, m := range all {
		if m.ID != id {
			matches = append(matches, m)
		}
	}
	return matches, true
}

// Stats is a snapshot for /stats and the bench harness.
type Stats struct {
	Ingests       uint64 `json:"ingests"`
	IngestErrors  uint64 `json:"ingest_errors"`
	InlineIngests uint64 `json:"inline_ingests"`
	Queries       uint64 `json:"queries"`
	Size          int    `json:"size"`
}

// Stats returns current counters and index size.
func (ix *Index) Stats() Stats {
	return Stats{
		Ingests:       ix.ingests.Value(),
		IngestErrors:  ix.ingestErrors.Value(),
		InlineIngests: ix.inline.Value(),
		Queries:       ix.queries.Value(),
		Size:          ix.Len(),
	}
}
