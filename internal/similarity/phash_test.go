package similarity

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"p3/internal/dataset"
	"p3/internal/jpegx"
	"p3/internal/vision"
)

func encodeJPEG(t *testing.T, img *jpegx.PlanarImage, quality int) []byte {
	t.Helper()
	coeffs, err := img.ToCoeffs(quality, jpegx.Sub420)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&buf, coeffs, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// naiveHash is the oracle: the textbook quadruple-loop 2-D DCT-II over
// the 32×32 plane, keeping the low 8×8 block, thresholded against the
// median exactly as hashGray documents. hashGray's two-contraction form
// must produce the identical bit pattern.
func naiveHash(g *vision.Gray) Hash {
	c := func(u int) float64 {
		if u == 0 {
			return math.Sqrt(1.0 / thumbSize)
		}
		return math.Sqrt(2.0 / thumbSize)
	}
	var coef [hashEdge * hashEdge]float64
	for v := 0; v < hashEdge; v++ {
		for u := 0; u < hashEdge; u++ {
			var acc float64
			for y := 0; y < thumbSize; y++ {
				for x := 0; x < thumbSize; x++ {
					acc += g.Pix[y*thumbSize+x] *
						math.Cos((2*float64(x)+1)*float64(u)*math.Pi/(2*thumbSize)) *
						math.Cos((2*float64(y)+1)*float64(v)*math.Pi/(2*thumbSize))
				}
			}
			coef[v*hashEdge+u] = c(u) * c(v) * acc
		}
	}
	sorted := coef
	for i := 1; i < len(sorted); i++ { // insertion sort; oracle stays stdlib-free
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	median := (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	var h Hash
	for i, v := range coef {
		if v > median {
			h |= 1 << uint(i)
		}
	}
	return h
}

func TestHashGrayMatchesNaiveDCTOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		g := vision.NewGray(thumbSize, thumbSize)
		for i := range g.Pix {
			g.Pix[i] = rng.Float64() * 255
		}
		if got, want := hashGray(g), naiveHash(g); got != want {
			t.Fatalf("trial %d: hashGray %s != oracle %s (distance %d)",
				trial, got, want, Distance(got, want))
		}
	}
}

func TestHashStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		h := Hash(rng.Uint64())
		s := h.String()
		if len(s) != 16 {
			t.Fatalf("String() length %d, want 16", len(s))
		}
		back, err := ParseHash(s)
		if err != nil {
			t.Fatalf("ParseHash(%q): %v", s, err)
		}
		if back != h {
			t.Fatalf("round trip %016x -> %s -> %016x", uint64(h), s, uint64(back))
		}
	}
	if _, err := ParseHash("not-a-hash"); err == nil {
		t.Fatal("ParseHash accepted garbage")
	}
}

func TestDistanceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		a, b, c := Hash(rng.Uint64()), Hash(rng.Uint64()), Hash(rng.Uint64())
		if Distance(a, a) != 0 {
			t.Fatal("d(a,a) != 0")
		}
		if Distance(a, b) != Distance(b, a) {
			t.Fatal("distance not symmetric")
		}
		if Distance(a, c) > Distance(a, b)+Distance(b, c) {
			t.Fatal("triangle inequality violated")
		}
	}
	if Distance(0, Hash(math.MaxUint64)) != 64 {
		t.Fatal("d(0, ~0) != 64")
	}
}

func TestPHashDeterministicAndDiscriminative(t *testing.T) {
	imgA := dataset.Natural(10, 320, 240)
	imgB := dataset.Natural(77, 320, 240)
	jpegA := encodeJPEG(t, imgA, 90)
	jpegB := encodeJPEG(t, imgB, 90)

	hA1, err := PHash(jpegA)
	if err != nil {
		t.Fatal(err)
	}
	hA2, err := PHash(jpegA)
	if err != nil {
		t.Fatal(err)
	}
	if hA1 != hA2 {
		t.Fatalf("PHash not deterministic: %s vs %s", hA1, hA2)
	}
	hB, err := PHash(jpegB)
	if err != nil {
		t.Fatal(err)
	}
	if d := Distance(hA1, hB); d < 10 {
		t.Fatalf("unrelated images only %d bits apart — hash not discriminative", d)
	}
}

// TestPHashStableAcrossReEncode pins the property the dedup/similarity
// pairing relies on: re-encoding the same picture (same or nearby
// quality) moves the hash by at most a few bits, so near-duplicate
// queries at d≈10 find re-encodes, while distinct photos stay far away.
func TestPHashStableAcrossReEncode(t *testing.T) {
	for _, seed := range []int64{5, 6, 7, 8} {
		img := dataset.Natural(seed, 320, 240)
		h90, err := PHash(encodeJPEG(t, img, 90))
		if err != nil {
			t.Fatal(err)
		}
		h84, err := PHash(encodeJPEG(t, img, 84))
		if err != nil {
			t.Fatal(err)
		}
		if d := Distance(h90, h84); d > 6 {
			t.Fatalf("seed %d: re-encode at q84 moved hash %d bits, want <= 6", seed, d)
		}
		// Same quality twice is bit-exact input, so hash must match exactly.
		hAgain, err := PHash(encodeJPEG(t, img, 90))
		if err != nil {
			t.Fatal(err)
		}
		if hAgain != h90 {
			t.Fatalf("seed %d: same-params re-encode changed hash", seed)
		}
	}
}

func TestPHashRejectsGarbage(t *testing.T) {
	for _, in := range [][]byte{nil, {}, []byte("not a jpeg"), {0xff, 0xd8, 0xff}} {
		if _, err := PHash(in); err == nil {
			t.Fatalf("PHash(%q) accepted undecodable input", in)
		}
	}
}

// FuzzPHash pins two properties: PHash never panics, whatever the input,
// and any input it does accept hashes identically on every call.
func FuzzPHash(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a jpeg at all"))
	f.Add([]byte{0xff, 0xd8, 0xff, 0xe0, 0x00, 0x10})
	// One real JPEG seed so the corpus explores the decode path too.
	img := dataset.Natural(9, 96, 64)
	coeffs, err := img.ToCoeffs(85, jpegx.Sub420)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&buf, coeffs, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		h1, err := PHash(data) // must return an error, never panic
		if err != nil {
			return
		}
		h2, err := PHash(data)
		if err != nil {
			t.Fatalf("second PHash of accepted input errored: %v", err)
		}
		if h1 != h2 {
			t.Fatalf("PHash unstable on identical input: %s vs %s", h1, h2)
		}
	})
}
