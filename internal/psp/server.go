package psp

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"p3/internal/jpegx"
)

// ErrNotFound marks lookups of photos or variants the PSP does not hold;
// the HTTP layer maps it to 404 (vs 400 for malformed requests).
var ErrNotFound = errors.New("not found")

// Server is the photo-sharing provider. It exposes:
//
//	POST /upload                      body: JPEG → {"id": "..."}
//	GET  /photo/{id}?size=big         a static variant (big/small/thumb)
//	GET  /photo/{id}?w=..&h=..        dynamic resize (fit within w×h)
//	GET  /photo/{id}?crop=x,y,w,h     dynamic crop (combinable with w/h)
//	GET  /photo/{id}                  the stored full-size re-encode
//
// Like Facebook, the server (a) rejects uploads that are not decodable
// JPEGs — end-to-end-encrypted blobs bounce (§3.1), (b) strips application
// markers, so secret parts cannot ride along (§4.1), and (c) assigns one
// opaque ID for all variants of a photo.
type Server struct {
	Pipeline Pipeline
	Variants []Variant

	// MaxStored bounds the stored full-size image, like Facebook's 720×720
	// cap on the largest served resolution. 0 means unlimited.
	MaxStored int

	mu     sync.RWMutex
	photos map[string][]byte // id → stored (re-encoded) original
	static map[string][]byte // id/variant → bytes
	nextID int
}

// NewServer builds a PSP with the given hidden pipeline.
func NewServer(p Pipeline) *Server {
	return &Server{
		Pipeline: p,
		Variants: DefaultVariants(),
		photos:   make(map[string][]byte),
		static:   make(map[string][]byte),
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/upload":
		s.handleUpload(w, r)
	case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/photo/"):
		s.handlePhoto(w, r)
	case r.Method == http.MethodDelete && strings.HasPrefix(r.URL.Path, "/photo/"):
		id, err := photoID(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.Delete(id); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.NotFound(w, r)
	}
}

// photoID extracts the {id} path segment. The escaped form is decoded here
// — not by net/http's pre-decoded Path — so an ID the client escaped as
// "a%2F..%2Fb" arrives as the single opaque string "a/../b" instead of
// being split into path segments.
func photoID(r *http.Request) (string, error) {
	id, err := url.PathUnescape(strings.TrimPrefix(r.URL.EscapedPath(), "/photo/"))
	if err != nil {
		return "", fmt.Errorf("psp: bad photo id: %w", err)
	}
	return id, nil
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		http.Error(w, "read error", http.StatusBadRequest)
		return
	}
	id, storedW, storedH, err := s.UploadWithDims(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnsupportedMediaType)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// Facebook-style upload responses report the stored dimensions; P3
	// proxies use them to warm their dims cache.
	json.NewEncoder(w).Encode(map[string]any{"id": id, "w": storedW, "h": storedH})
}

// Upload validates and ingests a photo, returning its ID. The photo is
// re-encoded through the pipeline at (bounded) full size, stripping markers
// and normalizing to the PSP's house format.
func (s *Server) Upload(jpegBytes []byte) (string, error) {
	id, _, _, err := s.UploadWithDims(jpegBytes)
	return id, err
}

// UploadWithDims is Upload, additionally reporting the stored (post-ingest
// re-encode) dimensions, which the HTTP API includes in its response.
func (s *Server) UploadWithDims(jpegBytes []byte) (string, int, int, error) {
	if _, _, _, _, err := jpegx.DecodeConfig(bytes.NewReader(jpegBytes)); err != nil {
		return "", 0, 0, fmt.Errorf("psp: upload rejected, not a decodable JPEG: %w", err)
	}
	maxW, maxH := s.MaxStored, s.MaxStored
	if maxW == 0 {
		maxW, maxH = 720, 720 // Facebook's largest stored resolution
	}
	stored, err := s.Pipeline.Render(jpegBytes, nil, maxW, maxH)
	if err != nil {
		return "", 0, 0, fmt.Errorf("psp: upload rejected: %w", err)
	}
	storedW, storedH, _, _, err := jpegx.DecodeConfig(bytes.NewReader(stored))
	if err != nil {
		return "", 0, 0, fmt.Errorf("psp: re-encoded photo unreadable: %w", err)
	}
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("p%08d", s.nextID)
	s.photos[id] = stored
	s.mu.Unlock()

	// Precompute static variants from the stored image.
	for _, v := range s.Variants {
		b, err := s.Pipeline.Render(stored, nil, v.MaxW, v.MaxH)
		if err != nil {
			return "", 0, 0, err
		}
		s.mu.Lock()
		s.static[id+"/"+v.Name] = b
		s.mu.Unlock()
	}
	return id, storedW, storedH, nil
}

// Delete removes a photo and its precomputed variants.
func (s *Server) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.photos[id]; !ok {
		return fmt.Errorf("psp: no photo %q: %w", id, ErrNotFound)
	}
	delete(s.photos, id)
	for _, v := range s.Variants {
		delete(s.static, id+"/"+v.Name)
	}
	return nil
}

func (s *Server) handlePhoto(w http.ResponseWriter, r *http.Request) {
	id, err := photoID(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	b, err := s.Photo(id, r.URL.Query().Get("size"), r.URL.Query().Get("crop"),
		r.URL.Query().Get("w"), r.URL.Query().Get("h"))
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrNotFound) {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "image/jpeg")
	w.Write(b)
}

// Photo serves a variant. size selects a static variant; w/h ("" = unset)
// request a dynamic fit-within resize; crop is "x,y,w,h" in stored-image
// coordinates applied before resizing.
func (s *Server) Photo(id, size, crop, wStr, hStr string) ([]byte, error) {
	s.mu.RLock()
	stored, ok := s.photos[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("psp: no photo %q: %w", id, ErrNotFound)
	}
	if size != "" {
		s.mu.RLock()
		b, ok := s.static[id+"/"+size]
		s.mu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("psp: no variant %q: %w", size, ErrNotFound)
		}
		return b, nil
	}
	var cropSpec *CropSpec
	if crop != "" {
		parts := strings.Split(crop, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("psp: bad crop %q", crop)
		}
		var vals [4]int
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v < 0 {
				return nil, fmt.Errorf("psp: bad crop %q", crop)
			}
			vals[i] = v
		}
		cropSpec = &CropSpec{X: vals[0], Y: vals[1], W: vals[2], H: vals[3]}
	}
	maxW, maxH := 0, 0
	if wStr != "" || hStr != "" {
		var err error
		if maxW, err = strconv.Atoi(wStr); err != nil {
			return nil, fmt.Errorf("psp: bad w %q", wStr)
		}
		if maxH, err = strconv.Atoi(hStr); err != nil {
			return nil, fmt.Errorf("psp: bad h %q", hStr)
		}
		if maxW <= 0 || maxH <= 0 {
			return nil, fmt.Errorf("psp: bad dimensions %dx%d", maxW, maxH)
		}
	}
	if cropSpec == nil && maxW == 0 {
		return stored, nil
	}
	return s.Pipeline.Render(stored, cropSpec, maxW, maxH)
}

// StoredSize reports the byte size of the stored full-resolution re-encode,
// used by the bandwidth accounting of Fig. 10.
func (s *Server) StoredSize(id string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.photos[id]
	if !ok {
		return 0, fmt.Errorf("psp: no photo %q", id)
	}
	return len(b), nil
}
