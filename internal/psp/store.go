package psp

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
)

// BlobStore is the untrusted storage provider (Dropbox in the paper's
// deployment) holding encrypted secret parts, keyed by the photo ID the PSP
// assigned (§4.1: "this returns an ID, which is then used to name a file
// containing the secret part"). It never sees plaintext: blobs are sealed
// by core.SealSecret before upload.
//
//	PUT /blob/{name}   body: bytes
//	GET /blob/{name}
type BlobStore struct {
	mu    sync.RWMutex
	blobs map[string][]byte
	gets  int
}

// NewBlobStore returns an empty store.
func NewBlobStore() *BlobStore {
	return &BlobStore{blobs: make(map[string][]byte)}
}

// ServeHTTP implements http.Handler. The blob name is decoded from the
// escaped path, so a client-escaped name like "a%2F..%2Fb" stays one opaque
// key instead of becoming path segments.
func (b *BlobStore) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasPrefix(r.URL.Path, "/blob/") {
		http.NotFound(w, r)
		return
	}
	name, err := url.PathUnescape(strings.TrimPrefix(r.URL.EscapedPath(), "/blob/"))
	if err != nil || name == "" {
		http.NotFound(w, r)
		return
	}
	switch r.Method {
	case http.MethodPut, http.MethodPost:
		data, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
		if err != nil {
			http.Error(w, "read error", http.StatusBadRequest)
			return
		}
		b.Put(name, data)
		w.WriteHeader(http.StatusCreated)
	case http.MethodGet:
		data, err := b.Get(name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Write(data)
	case http.MethodDelete:
		b.Delete(name)
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// Put stores a blob.
func (b *BlobStore) Put(name string, data []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.blobs[name] = append([]byte(nil), data...)
}

// Get fetches a blob.
func (b *BlobStore) Get(name string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	data, ok := b.blobs[name]
	if !ok {
		return nil, fmt.Errorf("psp: no blob %q", name)
	}
	b.gets++
	return append([]byte(nil), data...), nil
}

// Delete removes a blob (a no-op for absent names).
func (b *BlobStore) Delete(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.blobs, name)
}

// Has reports whether a blob exists, without counting as a Get.
func (b *BlobStore) Has(name string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, ok := b.blobs[name]
	return ok
}

// GetCount reports successful Get calls; tests use it to verify the proxy's
// secret-part cache (§4.1: "the proxy can maintain a cache of downloaded
// secret parts").
func (b *BlobStore) GetCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.gets
}
