// Package psp simulates a photo-sharing provider (Facebook/Flickr in the
// paper) and the untrusted blob store (Dropbox) that holds encrypted secret
// parts. The PSP accepts JPEG uploads over HTTP, strips application markers,
// produces static resized variants (Facebook's thumbnail/"small"/"big"
// boxes), serves dynamic resizes and crops from query parameters, and
// re-encodes everything through a *hidden* resize pipeline — the thing a P3
// proxy must reverse-engineer (§4.1). It requires no knowledge of P3:
// public parts are ordinary JPEGs to it.
package psp

import (
	"bytes"
	"fmt"

	"p3/internal/imaging"
	"p3/internal/jpegx"
)

// Variant names the static sizes a PSP precomputes on upload, mirroring
// Facebook's 720×720 "big", 130×130 "small" and 75×75 thumbnail (§2.1).
type Variant struct {
	Name       string
	MaxW, MaxH int
}

// DefaultVariants are the Facebook-like static sizes.
func DefaultVariants() []Variant {
	return []Variant{
		{Name: "big", MaxW: 720, MaxH: 720},
		{Name: "small", MaxW: 130, MaxH: 130},
		{Name: "thumb", MaxW: 75, MaxH: 75},
	}
}

// Pipeline is the PSP's internal image-processing configuration. It is
// deliberately not exported over the API: the proxy has to recover it by
// calibration.
type Pipeline struct {
	Filter        imaging.Filter
	PreBlur       float64
	SharpenAmount float64
	Gamma         float64 // 1 = none
	Quality       int     // re-encode quality
	Subsampling   jpegx.Subsampling
	Progressive   bool // serve progressive JPEGs, as Facebook does
}

// FacebookLike mimics the pipeline the paper reverse-engineered for
// Facebook: high-quality Lanczos downscale with mild sharpening,
// progressive output, markers stripped.
func FacebookLike() Pipeline {
	return Pipeline{
		Filter:        imaging.Lanczos3,
		SharpenAmount: 0.5,
		Gamma:         1,
		Quality:       85,
		Subsampling:   jpegx.Sub420,
		Progressive:   true,
	}
}

// FlickrLike mimics a simpler pipeline: Catmull-Rom, no sharpening,
// baseline output.
func FlickrLike() Pipeline {
	return Pipeline{
		Filter:      imaging.CatmullRom,
		Gamma:       1,
		Quality:     87,
		Subsampling: jpegx.Sub420,
	}
}

// Op returns the pixel-domain operator for a resize to w×h (the hidden
// "A" of the paper's Eq. (2)).
func (p Pipeline) Op(w, h int) imaging.Op {
	var ops imaging.Compose
	if p.PreBlur > 0 {
		ops = append(ops, imaging.GaussianBlur{Sigma: p.PreBlur})
	}
	ops = append(ops, imaging.Resize{W: w, H: h, Filter: p.Filter})
	if p.SharpenAmount > 0 {
		ops = append(ops, imaging.Sharpen{Sigma: 1, Amount: p.SharpenAmount})
	}
	if p.Gamma != 0 && p.Gamma != 1 {
		ops = append(ops, imaging.Gamma{G: p.Gamma})
	}
	return ops
}

// CropSpec is a dynamic crop request (pixel coordinates in the source
// image), applied before resizing — Facebook encodes both in the GET URL.
type CropSpec struct {
	X, Y, W, H int
}

// Render decodes a stored JPEG, optionally crops, resizes to fit within
// (maxW, maxH), and re-encodes through the pipeline. maxW/maxH of 0 mean
// "original size" (still re-encoded). The returned bytes are what the PSP
// serves.
func (p Pipeline) Render(original []byte, crop *CropSpec, maxW, maxH int) ([]byte, error) {
	im, err := jpegx.Decode(bytes.NewReader(original))
	if err != nil {
		return nil, fmt.Errorf("psp: decoding stored photo: %w", err)
	}
	im.StripMarkers()
	pix := im.ToPlanar()
	if crop != nil {
		pix = imaging.Crop{X: crop.X, Y: crop.Y, W: crop.W, H: crop.H}.Apply(pix)
	}
	w, h := pix.Width, pix.Height
	if maxW > 0 && maxH > 0 {
		w, h = imaging.FitWithin(pix.Width, pix.Height, maxW, maxH)
	}
	out := imaging.Clamp(p.Op(w, h).Apply(pix))
	quality := p.Quality
	if quality == 0 {
		quality = 85
	}
	coeffs, err := out.ToCoeffs(quality, p.Subsampling)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	err = jpegx.EncodeCoeffs(&buf, coeffs, &jpegx.EncodeOptions{
		Progressive:     p.Progressive,
		OptimizeHuffman: !p.Progressive, // progressive always optimizes
	})
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
