package psp

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"p3/internal/dataset"
	"p3/internal/jpegx"
)

func testJPEG(t *testing.T, seed int64, w, h int) []byte {
	t.Helper()
	img := dataset.Natural(seed, w, h)
	coeffs, err := img.ToCoeffs(92, jpegx.Sub420)
	if err != nil {
		t.Fatal(err)
	}
	coeffs.AddMarker(0xE1, []byte("exif-like-data"))
	var buf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&buf, coeffs, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestUploadAndVariants(t *testing.T) {
	s := NewServer(FacebookLike())
	id, err := s.Upload(testJPEG(t, 1, 600, 400))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		size       string
		maxW, maxH int
	}{
		{"big", 720, 720},
		{"small", 130, 130},
		{"thumb", 75, 75},
	}
	for _, c := range cases {
		b, err := s.Photo(id, c.size, "", "", "")
		if err != nil {
			t.Fatalf("%s: %v", c.size, err)
		}
		w, h, _, prog, err := jpegx.DecodeConfig(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("%s: %v", c.size, err)
		}
		if w > c.maxW || h > c.maxH {
			t.Errorf("%s: %dx%d exceeds %dx%d", c.size, w, h, c.maxW, c.maxH)
		}
		if !prog {
			t.Errorf("%s: Facebook-like PSP must serve progressive", c.size)
		}
	}
	// Aspect ratio preserved on the small variant.
	b, _ := s.Photo(id, "small", "", "", "")
	w, h, _, _, _ := jpegx.DecodeConfig(bytes.NewReader(b))
	if w != 130 || h != 87 {
		t.Errorf("small variant %dx%d, want 130x87 (3:2 aspect)", w, h)
	}
}

func TestUploadRejectsNonJPEG(t *testing.T) {
	s := NewServer(FlickrLike())
	// Fully-encrypted blobs bounce, as Facebook does (§3.1).
	if _, err := s.Upload([]byte("ciphertextciphertextciphertext")); err == nil {
		t.Fatal("non-JPEG upload accepted")
	}
}

func TestMarkersStripped(t *testing.T) {
	s := NewServer(FlickrLike())
	id, err := s.Upload(testJPEG(t, 2, 300, 200))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Photo(id, "", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	im, err := jpegx.Decode(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range im.Markers {
		if m.Marker == 0xE1 {
			t.Error("APP1 marker survived the PSP")
		}
	}
}

func TestDynamicResizeAndCrop(t *testing.T) {
	s := NewServer(FlickrLike())
	id, err := s.Upload(testJPEG(t, 3, 400, 300))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Photo(id, "", "", "200", "200")
	if err != nil {
		t.Fatal(err)
	}
	w, h, _, _, _ := jpegx.DecodeConfig(bytes.NewReader(b))
	if w != 200 || h != 150 {
		t.Errorf("dynamic resize %dx%d, want 200x150", w, h)
	}
	b, err = s.Photo(id, "", "40,30,160,120", "80", "60")
	if err != nil {
		t.Fatal(err)
	}
	w, h, _, _, _ = jpegx.DecodeConfig(bytes.NewReader(b))
	if w != 80 || h != 60 {
		t.Errorf("crop+resize %dx%d, want 80x60", w, h)
	}
	// Bad inputs.
	if _, err := s.Photo(id, "", "1,2,3", "", ""); err == nil {
		t.Error("malformed crop accepted")
	}
	if _, err := s.Photo(id, "", "", "0", "10"); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := s.Photo("nope", "", "", "", ""); err == nil {
		t.Error("unknown photo served")
	}
	if _, err := s.Photo(id, "nosuch", "", "", ""); err == nil {
		t.Error("unknown variant served")
	}
}

func TestUploadResizeCap(t *testing.T) {
	s := NewServer(FacebookLike())
	id, err := s.Upload(testJPEG(t, 4, 1600, 1200))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Photo(id, "", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	w, h, _, _, _ := jpegx.DecodeConfig(bytes.NewReader(b))
	if w > 720 || h > 720 {
		t.Errorf("stored image %dx%d exceeds Facebook's 720 cap", w, h)
	}
	if n, err := s.StoredSize(id); err != nil || n == 0 {
		t.Errorf("StoredSize: %d, %v", n, err)
	}
	if _, err := s.StoredSize("nope"); err == nil {
		t.Error("StoredSize for unknown photo")
	}
}

func TestServerHTTP(t *testing.T) {
	srv := httptest.NewServer(NewServer(FlickrLike()))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/upload", "image/jpeg", bytes.NewReader(testJPEG(t, 5, 320, 240)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %s", resp.Status)
	}
	var out struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	get, err := http.Get(srv.URL + "/photo/" + out.ID + "?" + url.Values{"size": {"thumb"}}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	body, _ := io.ReadAll(get.Body)
	if w, h, _, _, err := jpegx.DecodeConfig(bytes.NewReader(body)); err != nil || w > 75 || h > 75 {
		t.Errorf("thumb %dx%d err %v", w, h, err)
	}
	// Garbage upload over HTTP → 415.
	bad, _ := http.Post(srv.URL+"/upload", "image/jpeg", strings.NewReader("garbage"))
	bad.Body.Close()
	if bad.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("garbage upload status %d", bad.StatusCode)
	}
	// Unknown routes 404.
	nf, _ := http.Get(srv.URL + "/nope")
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status %d", nf.StatusCode)
	}
}

func TestBlobStore(t *testing.T) {
	b := NewBlobStore()
	b.Put("x", []byte("data"))
	got, err := b.Get("x")
	if err != nil || string(got) != "data" {
		t.Fatalf("Get: %q, %v", got, err)
	}
	if _, err := b.Get("missing"); err == nil {
		t.Error("missing blob served")
	}
	if b.GetCount() != 1 {
		t.Errorf("GetCount = %d", b.GetCount())
	}
	// Mutating the returned slice must not affect the store.
	got[0] = 'X'
	got2, _ := b.Get("x")
	if string(got2) != "data" {
		t.Error("store aliased its contents")
	}
}

func TestBlobStoreHTTP(t *testing.T) {
	srv := httptest.NewServer(NewBlobStore())
	defer srv.Close()
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/blob/abc", strings.NewReader("sealed"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("put status %s", resp.Status)
	}
	get, _ := http.Get(srv.URL + "/blob/abc")
	body, _ := io.ReadAll(get.Body)
	get.Body.Close()
	if string(body) != "sealed" {
		t.Errorf("got %q", body)
	}
	miss, _ := http.Get(srv.URL + "/blob/zzz")
	miss.Body.Close()
	if miss.StatusCode != http.StatusNotFound {
		t.Errorf("missing blob status %d", miss.StatusCode)
	}
	// DELETE removes the blob (proxies use it to clean up after partial
	// uploads); a repeat delete is idempotent.
	for i := 0; i < 2; i++ {
		del, _ := http.NewRequest(http.MethodDelete, srv.URL+"/blob/abc", nil)
		dresp, _ := http.DefaultClient.Do(del)
		dresp.Body.Close()
		if dresp.StatusCode != http.StatusNoContent {
			t.Errorf("delete status %d", dresp.StatusCode)
		}
	}
	gone, _ := http.Get(srv.URL + "/blob/abc")
	gone.Body.Close()
	if gone.StatusCode != http.StatusNotFound {
		t.Errorf("deleted blob status %d, want 404", gone.StatusCode)
	}
	// Other methods remain rejected.
	patch, _ := http.NewRequest(http.MethodPatch, srv.URL+"/blob/abc", nil)
	presp, _ := http.DefaultClient.Do(patch)
	presp.Body.Close()
	if presp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("patch status %d, want 405", presp.StatusCode)
	}
}

func TestPipelineRenderGamma(t *testing.T) {
	p := FlickrLike()
	p.Gamma = 1.2
	b, err := p.Render(testJPEG(t, 6, 160, 120), nil, 80, 80)
	if err != nil {
		t.Fatal(err)
	}
	if w, h, _, _, err := jpegx.DecodeConfig(bytes.NewReader(b)); err != nil || w != 80 || h != 60 {
		t.Errorf("gamma render %dx%d err %v", w, h, err)
	}
}
