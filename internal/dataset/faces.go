package dataset

import (
	"math"
	"math/rand"

	"p3/internal/jpegx"
)

// The synthetic face model. A face is rendered from an Identity (persistent
// geometry: face shape, eye separation/size, brow weight, mouth geometry,
// skin tone) plus per-photo nuisance parameters (illumination direction and
// strength, expression, small translation/scale jitter, background, noise).
// The renderer produces the canonical frontal structure Haar cascades key
// on: an eye band darker than the cheeks, a nose ridge brighter than its
// flanks, and a dark mouth bar.

// Identity holds the persistent facial geometry of one synthetic subject.
type Identity struct {
	FaceAspect float64 // height/width of the head ellipse
	EyeSep     float64 // eye separation as fraction of face width
	EyeSize    float64 // eye radius fraction
	EyeHeight  float64 // vertical eye position fraction
	BrowDrop   float64 // brow distance above eyes
	BrowDark   float64 // brow intensity drop
	NoseWidth  float64
	MouthWidth float64
	MouthY     float64 // vertical mouth position fraction
	Skin       float64 // base skin luma
	SkinCr     float64 // skin chroma
}

// NewIdentity derives a subject's geometry deterministically from its id.
func NewIdentity(id int64) Identity {
	rng := rand.New(rand.NewSource(0x5eed0000 + id))
	return Identity{
		FaceAspect: 1.25 + rng.Float64()*0.25,
		EyeSep:     0.42 + rng.Float64()*0.16,
		EyeSize:    0.07 + rng.Float64()*0.04,
		EyeHeight:  0.36 + rng.Float64()*0.10,
		BrowDrop:   0.07 + rng.Float64()*0.05,
		BrowDark:   40 + rng.Float64()*50,
		NoseWidth:  0.10 + rng.Float64()*0.07,
		MouthWidth: 0.34 + rng.Float64()*0.20,
		MouthY:     0.70 + rng.Float64()*0.08,
		Skin:       150 + rng.Float64()*60,
		SkinCr:     138 + rng.Float64()*14,
	}
}

// Nuisance holds the per-photo variation ("different circumstances —
// illumination, background, facial expressions" per the Caltech dataset
// description the paper uses).
type Nuisance struct {
	IllumAngle  float64 // direction of the lighting gradient
	IllumAmp    float64
	Expression  float64 // mouth openness/curvature in [-1, 1]
	Jitter      float64 // translation jitter fraction
	JitterX     float64
	JitterY     float64
	Scale       float64 // face scale within the crop
	NoiseAmp    float64
	BgSeed      int64
	TextureSeed int64 // per-photo skin/hair texture variation

	// GeomDrift holds small per-photo multiplicative perturbations of the
	// identity geometry (head tilt, chin drop, hair line move between
	// shots): {aspect, eye separation, eye height, mouth height, nose
	// width}. Values are relative (0.03 = 3%).
	GeomDrift [5]float64
}

// perturb applies the per-photo geometric drift to an identity.
func (nu Nuisance) perturb(id Identity) Identity {
	id.FaceAspect *= 1 + nu.GeomDrift[0]
	id.EyeSep *= 1 + nu.GeomDrift[1]
	id.EyeHeight *= 1 + nu.GeomDrift[2]
	id.MouthY *= 1 + nu.GeomDrift[3]
	id.NoseWidth *= 1 + nu.GeomDrift[4]
	return id
}

// NewNuisance derives photo conditions from a seed.
func NewNuisance(seed int64) Nuisance {
	rng := rand.New(rand.NewSource(0xfacade + seed))
	return Nuisance{
		IllumAngle:  rng.Float64() * 2 * math.Pi,
		IllumAmp:    rng.Float64() * 35,
		Expression:  rng.Float64()*2 - 1,
		JitterX:     rng.Float64()*2 - 1,
		JitterY:     rng.Float64()*2 - 1,
		Scale:       0.86 + rng.Float64()*0.14,
		NoiseAmp:    2 + rng.Float64()*5,
		BgSeed:      rng.Int63(),
		TextureSeed: rng.Int63(),
		GeomDrift:   drift(rng, 0.05),
	}
}

func drift(rng *rand.Rand, amp float64) [5]float64 {
	var d [5]float64
	for i := range d {
		d[i] = (rng.Float64()*2 - 1) * amp
	}
	return d
}

// RenderFace draws subject id under nuisance conditions into a w×h color
// crop. The face occupies most of the crop (an "aligned" face image as the
// FERET protocol assumes).
func RenderFace(id Identity, nu Nuisance, w, h int) *jpegx.PlanarImage {
	id = nu.perturb(id)
	img := jpegx.NewPlanarImage(w, h, 3)
	bg := rand.New(rand.NewSource(nu.BgSeed))
	bgNoise := newValueNoise(bg, 3)
	bgBase := 40 + bg.Float64()*120

	fw := float64(w) * 0.42 * nu.Scale // face half-width
	fh := fw * id.FaceAspect
	cx := float64(w)/2 + nu.JitterX*float64(w)*0.03
	cy := float64(h)/2 + nu.JitterY*float64(h)*0.03

	gx, gy := math.Cos(nu.IllumAngle), math.Sin(nu.IllumAngle)

	eyeY := cy - fh*(0.5-id.EyeHeight)*1.2
	eyeDX := fw * id.EyeSep
	eyeR := fw * id.EyeSize * 2.2
	browY := eyeY - fh*id.BrowDrop*2.2
	noseTop := eyeY + eyeR
	noseBot := cy + fh*0.18
	mouthY := cy - fh*(0.5-id.MouthY)*1.5
	mouthW := fw * id.MouthWidth * 1.6
	mouthH := fh*0.045 + math.Abs(nu.Expression)*fh*0.03

	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fx, fy := float64(x), float64(y)
			dx, dy := fx-cx, fy-cy
			i := y*w + x
			// Background.
			v := bgBase + 30*bgNoise.at(fx/float64(w)*3, fy/float64(h)*3)
			cb, cr := 128.0, 128.0

			// Head ellipse.
			if (dx/fw)*(dx/fw)+(dy/fh)*(dy/fh) <= 1 {
				v = id.Skin
				cb, cr = 115, id.SkinCr
				// Illumination gradient over the face.
				v += nu.IllumAmp * (gx*dx/fw + gy*dy/fh)
				// Cheek shading toward the rim.
				rim := (dx/fw)*(dx/fw) + (dy/fh)*(dy/fh)
				v -= 25 * rim * rim

				// Eyes: dark ellipses with a bright sclera ring.
				for _, s := range []float64{-1, 1} {
					ex := cx + s*eyeDX
					ddx, ddy := fx-ex, fy-eyeY
					d2 := (ddx/(eyeR*1.4))*(ddx/(eyeR*1.4)) + (ddy/eyeR)*(ddy/eyeR)
					if d2 < 1 {
						v = id.Skin + 28 // sclera
						if d2 < 0.35 {
							v = id.Skin - 95 // pupil/iris
						}
					}
					// Brows: dark horizontal bars.
					if math.Abs(fy-browY) < fh*0.030 && math.Abs(ddx) < eyeR*1.6 {
						v -= id.BrowDark
					}
				}
				// Nose: bright ridge with dark flanks and base.
				if fy > noseTop && fy < noseBot {
					nw := fw * id.NoseWidth
					if math.Abs(dx) < nw*0.45 {
						v += 18
					} else if math.Abs(dx) < nw*1.2 {
						v -= 10
					}
				}
				if math.Abs(fy-noseBot) < fh*0.02 && math.Abs(dx) < fw*id.NoseWidth {
					v -= 30 // nostril shadow
				}
				// Mouth: dark bar, curvature by expression.
				mdx := dx
				if math.Abs(mdx) < mouthW {
					curve := nu.Expression * fh * 0.04 * (mdx / mouthW) * (mdx / mouthW)
					if math.Abs(fy-(mouthY+curve)) < mouthH {
						v -= 70
						cr += 12
					}
				}
			}
			img.Planes[0][i] = clamp(v)
			img.Planes[1][i] = clamp(cb)
			img.Planes[2][i] = clamp(cr)
		}
	}
	// Optical smoothing: real lenses and sensors never produce the aliased
	// single-pixel edges a rasterizer does. Two passes of a [1 2 1]/4
	// binomial kernel (σ ≈ 1) make the pixel representation robust to the
	// sub-pixel alignment jitter between shots — which is what lets
	// pixel-domain recognizers work on real photos while 8×8 block-domain
	// representations still decorrelate.
	for pi := range img.Planes {
		blurPlane(img.Planes[pi], w, h)
		blurPlane(img.Planes[pi], w, h)
	}
	// Per-photo skin texture: real skin, hair and shadows vary photo to
	// photo at mid spatial frequencies. The variation is photometrically
	// small (pixel-domain recognizers average it away) but it dominates
	// which mid-frequency DCT coefficients cross a P3 clipping threshold,
	// which is what keeps the public part from acting as a stable identity
	// signature.
	trng := rand.New(rand.NewSource(0x7e717e ^ nu.TextureSeed))
	texture := newValueNoise(trng, 4)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			if (dx/fw)*(dx/fw)+(dy/fh)*(dy/fh) <= 1 {
				i := y*w + x
				img.Planes[0][i] = clamp(img.Planes[0][i] +
					9*texture.at(float64(x)/8, float64(y)/8))
			}
		}
	}
	// Sensor noise.
	nrng := rand.New(rand.NewSource(nu.BgSeed ^ 0x77))
	for i := range img.Planes[0] {
		img.Planes[0][i] = clamp(img.Planes[0][i] + (nrng.Float64()*2-1)*nu.NoiseAmp)
	}
	return img
}

// blurPlane applies one separable [1 2 1]/4 binomial smoothing pass.
func blurPlane(p []float64, w, h int) {
	tmp := make([]float64, len(p))
	at := func(x, y int) float64 {
		if x < 0 {
			x = 0
		} else if x >= w {
			x = w - 1
		}
		if y < 0 {
			y = 0
		} else if y >= h {
			y = h - 1
		}
		return p[y*w+x]
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			tmp[y*w+x] = 0.25*at(x-1, y) + 0.5*at(x, y) + 0.25*at(x+1, y)
		}
	}
	att := func(x, y int) float64 {
		if y < 0 {
			y = 0
		} else if y >= h {
			y = h - 1
		}
		return tmp[y*w+x]
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			p[y*w+x] = 0.25*att(x, y-1) + 0.5*att(x, y) + 0.25*att(x, y+1)
		}
	}
}

// NewControlledNuisance mirrors FERET's controlled capture conditions (the
// FAFB probe set varies only expression, with consistent studio lighting):
// mild illumination, tiny jitter, fixed scale, plain background.
func NewControlledNuisance(seed int64) Nuisance {
	rng := rand.New(rand.NewSource(0xfe9e7 + seed))
	return Nuisance{
		IllumAngle: rng.Float64() * 2 * math.Pi,
		IllumAmp:   rng.Float64() * 8,
		Expression: rng.Float64()*2 - 1,
		// FERET-style geometric normalization aligns faces to sub-pixel
		// precision before recognition, so controlled captures carry only
		// small residual jitter.
		JitterX:     rng.Float64()*0.4 - 0.2,
		JitterY:     rng.Float64()*0.4 - 0.2,
		Scale:       0.97 + rng.Float64()*0.03,
		NoiseAmp:    1 + rng.Float64()*2,
		BgSeed:      42, // constant studio backdrop
		TextureSeed: rng.Int63(),
		GeomDrift:   drift(rng, 0.03),
	}
}

// FaceImage is a labeled face photo.
type FaceImage struct {
	Subject int
	Img     *jpegx.PlanarImage
}

// FaceCorpus renders perSubject photos for each of nSubjects at w×h, the
// FERET/Caltech stand-in. Deterministic for a given (nSubjects, perSubject,
// w, h, seed).
func FaceCorpus(nSubjects, perSubject, w, h int, seed int64) []FaceImage {
	out := make([]FaceImage, 0, nSubjects*perSubject)
	for s := 0; s < nSubjects; s++ {
		id := NewIdentity(seed*1000 + int64(s))
		for p := 0; p < perSubject; p++ {
			nu := NewNuisance(seed*100000 + int64(s)*100 + int64(p))
			out = append(out, FaceImage{Subject: s, Img: RenderFace(id, nu, w, h)})
		}
	}
	return out
}

// FERETCorpus renders a recognition corpus under controlled (FERET-like)
// conditions: per-subject geometry differs, per-photo variation is limited
// to expression and mild lighting, as in the FAFB gallery/probe protocol the
// paper evaluates (Fig. 8d).
func FERETCorpus(nSubjects, perSubject, w, h int, seed int64) []FaceImage {
	out := make([]FaceImage, 0, nSubjects*perSubject)
	for s := 0; s < nSubjects; s++ {
		id := NewIdentity(seed*1000 + int64(s))
		for p := 0; p < perSubject; p++ {
			nu := NewControlledNuisance(seed*100000 + int64(s)*100 + int64(p))
			out = append(out, FaceImage{Subject: s, Img: RenderFace(id, nu, w, h)})
		}
	}
	return out
}

// Scene places nFaces rendered faces into a larger natural background and
// returns the composite plus ground-truth face bounding boxes — the
// face-detection evaluation input (Caltech images contain "at least one
// large dominant face").
type Box struct{ X, Y, W, H int }

// Scene renders a detection scene. Faces do not overlap.
func Scene(seed int64, w, h, nFaces int) (*jpegx.PlanarImage, []Box) {
	img := Natural(seed, w, h)
	rng := rand.New(rand.NewSource(0x5ce9e + seed))
	var boxes []Box
	for f := 0; f < nFaces; f++ {
		size := min(w, h) / 3
		if size < 40 {
			size = 40
		}
		size = size + rng.Intn(size/2+1)
		var bx, by int
		ok := false
		for attempt := 0; attempt < 30 && !ok; attempt++ {
			bx = rng.Intn(max(1, w-size))
			by = rng.Intn(max(1, h-size))
			ok = true
			for _, b := range boxes {
				if bx < b.X+b.W && bx+size > b.X && by < b.Y+b.H && by+size > b.Y {
					ok = false
					break
				}
			}
		}
		if !ok {
			continue
		}
		id := NewIdentity(seed*33 + int64(f))
		nu := NewNuisance(seed*77 + int64(f))
		face := RenderFace(id, nu, size, size)
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				for pi := 0; pi < 3; pi++ {
					img.Planes[pi][(by+y)*w+bx+x] = face.Planes[pi][y*size+x]
				}
			}
		}
		boxes = append(boxes, Box{X: bx, Y: by, W: size, H: size})
	}
	return img, boxes
}

// NonFacePatch returns a w×h crop of natural content containing no face,
// for detector training negatives.
func NonFacePatch(seed int64, w, h int) *jpegx.PlanarImage {
	return Natural(0x0ff5e7+seed*13, w, h)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
