// Package dataset generates the deterministic synthetic corpora that stand
// in for the paper's four evaluation datasets (USC-SIPI, INRIA Holidays,
// Caltech Faces, Color FERET), none of which can be redistributed here. See
// DESIGN.md for the substitution argument: the evaluated quantities depend
// on DCT sparsity, scene structure and within-identity variation, all of
// which these generators control explicitly. Every generator is a pure
// function of its seed.
package dataset

import (
	"math"
	"math/rand"

	"p3/internal/jpegx"
)

// Natural synthesizes a "natural-looking" color photograph: multi-octave
// value noise for texture, a large-scale illumination gradient, and a few
// geometric objects (discs, bars) providing edges — the ingredients that
// give real photos their characteristic sparse, low-frequency-heavy DCT
// statistics.
func Natural(seed int64, w, h int) *jpegx.PlanarImage {
	rng := rand.New(rand.NewSource(seed))
	img := jpegx.NewPlanarImage(w, h, 3)

	// Per-image character.
	baseY := 60 + rng.Float64()*120
	gradAng := rng.Float64() * 2 * math.Pi
	gradAmp := 20 + rng.Float64()*50
	noise := newValueNoise(rng, 7)
	noiseAmp := 25 + rng.Float64()*45
	grain := 1.5 + rng.Float64()*2.5 // per-pixel sensor grain
	cbBase := 100 + rng.Float64()*56
	crBase := 100 + rng.Float64()*56
	chromaNoise := newValueNoise(rng, 3)

	type object struct {
		kind      int // 0 disc, 1 rect, 2 bar
		cx, cy, r float64
		w2, h2    float64
		dy, dcb   float64
		angle     float64
	}
	nObj := 2 + rng.Intn(5)
	objs := make([]object, nObj)
	for i := range objs {
		objs[i] = object{
			kind:  rng.Intn(3),
			cx:    rng.Float64() * float64(w),
			cy:    rng.Float64() * float64(h),
			r:     (0.05 + rng.Float64()*0.2) * float64(min(w, h)),
			w2:    (0.05 + rng.Float64()*0.25) * float64(w),
			h2:    (0.03 + rng.Float64()*0.2) * float64(h),
			dy:    rng.Float64()*120 - 60,
			dcb:   rng.Float64()*60 - 30,
			angle: rng.Float64() * math.Pi,
		}
	}

	gx, gy := math.Cos(gradAng), math.Sin(gradAng)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fx, fy := float64(x)/float64(w), float64(y)/float64(h)
			v := baseY + gradAmp*(gx*fx+gy*fy) + noiseAmp*noise.at(fx*4, fy*4)
			cb := cbBase + 25*chromaNoise.at(fx*2, fy*2)
			cr := crBase + 25*chromaNoise.at(fx*2+7, fy*2+3)
			for _, o := range objs {
				dx, dy := float64(x)-o.cx, float64(y)-o.cy
				inside := false
				switch o.kind {
				case 0:
					inside = dx*dx+dy*dy < o.r*o.r
				case 1:
					rx := dx*math.Cos(o.angle) + dy*math.Sin(o.angle)
					ry := -dx*math.Sin(o.angle) + dy*math.Cos(o.angle)
					inside = math.Abs(rx) < o.w2 && math.Abs(ry) < o.h2
				default:
					rx := dx*math.Cos(o.angle) + dy*math.Sin(o.angle)
					inside = math.Abs(rx) < o.h2/2
				}
				if inside {
					v += o.dy
					cb += o.dcb
				}
			}
			i := y*w + x
			img.Planes[0][i] = clamp(v + (rng.Float64()*2-1)*grain)
			img.Planes[1][i] = clamp(cb)
			img.Planes[2][i] = clamp(cr)
		}
	}
	return img
}

// valueNoise is seeded multi-octave bilinear value noise.
type valueNoise struct {
	octaves []noiseGrid
}

type noiseGrid struct {
	n    int
	vals []float64
}

func newValueNoise(rng *rand.Rand, octaves int) *valueNoise {
	vn := &valueNoise{}
	n := 4
	for o := 0; o < octaves; o++ {
		g := noiseGrid{n: n, vals: make([]float64, (n+1)*(n+1))}
		for i := range g.vals {
			g.vals[i] = rng.Float64()*2 - 1
		}
		vn.octaves = append(vn.octaves, g)
		n *= 2
	}
	return vn
}

// at samples the noise field at (x, y); coordinates wrap per octave.
func (vn *valueNoise) at(x, y float64) float64 {
	var sum, amp, norm float64
	amp = 1
	for _, g := range vn.octaves {
		fx := math.Mod(x*float64(g.n)/4, float64(g.n))
		fy := math.Mod(y*float64(g.n)/4, float64(g.n))
		if fx < 0 {
			fx += float64(g.n)
		}
		if fy < 0 {
			fy += float64(g.n)
		}
		x0, y0 := int(fx), int(fy)
		tx, ty := fx-float64(x0), fy-float64(y0)
		// Smoothstep for C1 continuity.
		tx = tx * tx * (3 - 2*tx)
		ty = ty * ty * (3 - 2*ty)
		v00 := g.vals[y0*(g.n+1)+x0]
		v10 := g.vals[y0*(g.n+1)+x0+1]
		v01 := g.vals[(y0+1)*(g.n+1)+x0]
		v11 := g.vals[(y0+1)*(g.n+1)+x0+1]
		v := v00*(1-tx)*(1-ty) + v10*tx*(1-ty) + v01*(1-tx)*ty + v11*tx*ty
		sum += amp * v
		norm += amp
		amp *= 0.62 // persistence: keep meaningful energy at fine scales
	}
	return sum / norm
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SIPI returns the USC-SIPI "miscellaneous" stand-in: 44 images of mixed
// content at 256×256 (the real volume mixes 256×256 and 512×512; the
// smaller size keeps test time reasonable while preserving statistics).
func SIPI() []*jpegx.PlanarImage {
	out := make([]*jpegx.PlanarImage, 44)
	for i := range out {
		out[i] = Natural(int64(1000+i), 256, 256)
	}
	return out
}

// INRIA returns n images of the INRIA-Holidays stand-in: more diverse
// resolutions and scene statistics than SIPI.
func INRIA(n int) []*jpegx.PlanarImage {
	dims := [][2]int{{320, 240}, {256, 384}, {400, 300}, {384, 256}, {288, 288}}
	out := make([]*jpegx.PlanarImage, n)
	for i := range out {
		d := dims[i%len(dims)]
		out[i] = Natural(int64(20000+i*7), d[0], d[1])
	}
	return out
}
