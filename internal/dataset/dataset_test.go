package dataset

import (
	"bytes"
	"math"
	"testing"

	"p3/internal/jpegx"
)

func TestNaturalDeterministic(t *testing.T) {
	a := Natural(7, 64, 48)
	b := Natural(7, 64, 48)
	for pi := range a.Planes {
		for i := range a.Planes[pi] {
			if a.Planes[pi][i] != b.Planes[pi][i] {
				t.Fatal("Natural not deterministic")
			}
		}
	}
	c := Natural(8, 64, 48)
	same := true
	for i := range a.Planes[0] {
		if a.Planes[0][i] != c.Planes[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical images")
	}
}

func TestNaturalInRangeAndVaried(t *testing.T) {
	img := Natural(3, 128, 128)
	var minV, maxV = 256.0, -1.0
	for _, v := range img.Planes[0] {
		if v < 0 || v > 255 {
			t.Fatalf("sample %v out of range", v)
		}
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	if maxV-minV < 50 {
		t.Errorf("dynamic range %.1f too flat for a 'natural' image", maxV-minV)
	}
}

// TestNaturalJPEGStatistics: the generator must produce images whose JPEG
// encodings are "sparse" in the paper's sense — DC plus a minority of ACs
// carry the energy — since Fig. 5's size curves depend on that.
func TestNaturalJPEGStatistics(t *testing.T) {
	img := Natural(11, 256, 256)
	im, err := img.ToCoeffs(92, jpegx.Sub420)
	if err != nil {
		t.Fatal(err)
	}
	var zero, nonzero int
	for ci := range im.Components {
		for bi := range im.Components[ci].Blocks {
			b := &im.Components[ci].Blocks[bi]
			for k := 1; k < 64; k++ {
				if b[k] == 0 {
					zero++
				} else {
					nonzero++
				}
			}
		}
	}
	frac := float64(nonzero) / float64(zero+nonzero)
	if frac < 0.02 || frac > 0.6 {
		t.Errorf("nonzero AC fraction %.3f outside plausible photo range", frac)
	}
	// And it must survive a real encode/decode round trip.
	var buf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&buf, im, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := jpegx.Decode(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}

func TestCorpusSizes(t *testing.T) {
	sipi := SIPI()
	if len(sipi) != 44 {
		t.Errorf("SIPI has %d images, want 44", len(sipi))
	}
	inria := INRIA(10)
	if len(inria) != 10 {
		t.Errorf("INRIA(10) has %d images", len(inria))
	}
	seen := map[[2]int]bool{}
	for _, img := range inria {
		seen[[2]int{img.Width, img.Height}] = true
	}
	if len(seen) < 3 {
		t.Error("INRIA resolutions not diverse")
	}
}

func TestIdentityDeterministicAndDistinct(t *testing.T) {
	a, b := NewIdentity(5), NewIdentity(5)
	if a != b {
		t.Error("identity not deterministic")
	}
	c := NewIdentity(6)
	if a == c {
		t.Error("identities 5 and 6 identical")
	}
}

func TestRenderFaceStructure(t *testing.T) {
	id := NewIdentity(1)
	nu := NewControlledNuisance(1)
	img := RenderFace(id, nu, 48, 56)
	if img.Width != 48 || img.Height != 56 {
		t.Fatal("wrong dims")
	}
	// The eye band must be darker on average than the cheek band below it —
	// the contrast Haar face detection keys on.
	rowMean := func(y0, y1 int) float64 {
		var s float64
		n := 0
		for y := y0; y < y1; y++ {
			for x := 12; x < 36; x++ {
				s += img.Planes[0][y*48+x]
				n++
			}
		}
		return s / float64(n)
	}
	eyeBand := rowMean(25, 29)
	cheekBand := rowMean(30, 35)
	if eyeBand >= cheekBand {
		t.Errorf("eye band %.1f not darker than cheek band %.1f", eyeBand, cheekBand)
	}
}

func TestFaceCorpusLabels(t *testing.T) {
	fc := FaceCorpus(5, 3, 24, 24, 9)
	if len(fc) != 15 {
		t.Fatalf("%d images, want 15", len(fc))
	}
	counts := map[int]int{}
	for _, f := range fc {
		counts[f.Subject]++
		if f.Img.Width != 24 || f.Img.Height != 24 {
			t.Fatal("wrong crop size")
		}
	}
	for s := 0; s < 5; s++ {
		if counts[s] != 3 {
			t.Errorf("subject %d has %d images", s, counts[s])
		}
	}
}

// TestFERETWithinBetweenVariance: controlled corpus must have smaller
// within-identity distance than between-identity distance, or recognition
// experiments are meaningless.
func TestFERETWithinBetweenVariance(t *testing.T) {
	fc := FERETCorpus(6, 3, 32, 32, 4)
	dist := func(a, b *jpegx.PlanarImage) float64 {
		var s float64
		for i := range a.Planes[0] {
			d := a.Planes[0][i] - b.Planes[0][i]
			s += d * d
		}
		return s
	}
	var within, between float64
	var nw, nb int
	for i := range fc {
		for j := i + 1; j < len(fc); j++ {
			d := dist(fc[i].Img, fc[j].Img)
			if fc[i].Subject == fc[j].Subject {
				within += d
				nw++
			} else {
				between += d
				nb++
			}
		}
	}
	if within/float64(nw) >= between/float64(nb) {
		t.Errorf("within-class distance %.0f >= between-class %.0f",
			within/float64(nw), between/float64(nb))
	}
}

func TestSceneBoxes(t *testing.T) {
	img, boxes := Scene(1, 200, 200, 2)
	if img.Width != 200 || img.Height != 200 {
		t.Fatal("wrong scene dims")
	}
	if len(boxes) == 0 {
		t.Fatal("no faces placed")
	}
	for _, b := range boxes {
		if b.X < 0 || b.Y < 0 || b.X+b.W > 200 || b.Y+b.H > 200 {
			t.Errorf("box %+v out of bounds", b)
		}
	}
	// Boxes must not overlap.
	for i := range boxes {
		for j := i + 1; j < len(boxes); j++ {
			a, b := boxes[i], boxes[j]
			if a.X < b.X+b.W && a.X+a.W > b.X && a.Y < b.Y+b.H && a.Y+a.H > b.Y {
				t.Errorf("boxes %+v and %+v overlap", a, b)
			}
		}
	}
}

func TestNonFacePatch(t *testing.T) {
	p := NonFacePatch(3, 24, 24)
	if p.Width != 24 || p.Height != 24 {
		t.Fatal("wrong patch size")
	}
}
