package trace

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleLog() *Log {
	return &Log{
		Header: Header{Scenario: "smoke", Seed: 42, Photos: 8, Videos: 2, Note: "test"},
		Events: []Event{
			{TMs: 0, Op: "upload", Client: "c0", Photo: 0, Video: -1, Frame: -1},
			{TMs: 1.5, Op: "download", Client: "c1", Photo: 0, Video: -1, Q: "size=thumb", Frame: -1},
			{TMs: 3.25, Op: "video_download", Client: "c0", Photo: -1, Video: 1, Frame: 3},
			{TMs: 10, Op: "calibrate", Client: "c1", Photo: -1, Video: -1, Frame: -1},
		},
	}
}

// TestWriteReadRoundTrip: serialize, parse, and get the identical log
// back — headers, order, and every field.
func TestWriteReadRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, l)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.trace")
	l := sampleLog()
	if err := WriteFile(path, l); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatal("file round-trip mismatch")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Read(strings.NewReader("{\"scenario\":\"x\"}\nnot json\n")); err == nil {
		t.Error("garbage event line accepted")
	}
}

// TestRecorderOrder: concurrent Records land in one total order and
// offsets are monotonic in that order.
func TestRecorderOrder(t *testing.T) {
	r := NewRecorder(Header{Scenario: "t"})
	for i := 0; i < 100; i++ {
		r.Record(Event{Op: "download", Photo: i})
	}
	l := r.Log()
	if len(l.Events) != 100 {
		t.Fatalf("recorded %d events, want 100", len(l.Events))
	}
	for i := 1; i < len(l.Events); i++ {
		if l.Events[i].TMs < l.Events[i-1].TMs {
			t.Fatalf("event %d offset %.3f before predecessor %.3f", i, l.Events[i].TMs, l.Events[i-1].TMs)
		}
		if l.Events[i].Photo != i {
			t.Fatalf("event %d out of order", i)
		}
	}
}

// TestReplayOrderAndSpeed: replay preserves recorded order exactly at any
// speed, and speed<=0 dispatches without pacing.
func TestReplayOrderAndSpeed(t *testing.T) {
	l := &Log{Header: Header{}, Events: make([]Event, 50)}
	for i := range l.Events {
		l.Events[i] = Event{TMs: float64(i), Op: "download", Photo: i}
	}
	for _, speed := range []float64{0, 100} {
		var got []int
		start := time.Now()
		if err := Replay(context.Background(), l, speed, func(ev Event) {
			got = append(got, ev.Photo)
		}); err != nil {
			t.Fatal(err)
		}
		for i, p := range got {
			if p != i {
				t.Fatalf("speed %v: event %d dispatched out of order (photo %d)", speed, i, p)
			}
		}
		if speed == 0 && time.Since(start) > time.Second {
			t.Fatalf("unpaced replay took %v", time.Since(start))
		}
	}
}

// TestReplayPacing: at speed 1 an event 80ms in does not fire early.
func TestReplayPacing(t *testing.T) {
	l := &Log{Events: []Event{{TMs: 0, Op: "a"}, {TMs: 80, Op: "b"}}}
	start := time.Now()
	var second time.Duration
	if err := Replay(context.Background(), l, 1, func(ev Event) {
		if ev.Op == "b" {
			second = time.Since(start)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if second < 70*time.Millisecond {
		t.Fatalf("second event fired after %v, want >= ~80ms", second)
	}
}

func TestReplayCancellation(t *testing.T) {
	l := &Log{Events: []Event{{TMs: 0}, {TMs: 10_000}}}
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	done := make(chan error, 1)
	go func() { done <- Replay(ctx, l, 1, func(Event) { n++ }) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-done; err == nil {
		t.Fatal("cancelled replay returned nil")
	}
	if n != 1 {
		t.Fatalf("dispatched %d events before cancel, want 1", n)
	}
}
