// Package trace records and replays timestamped request logs. A load run
// (cmd/p3load) records every dispatched operation with its offset from the
// run start; a later run replays the log open-loop — dispatching each
// operation at its recorded offset (optionally time-scaled) regardless of
// whether earlier operations have finished, which is what makes replayed
// overload reproduce recorded overload. Recorded traces beat synthetic
// arrival processes for tuning the serving layer: they carry the real
// burstiness, client mix, and hot-key skew of the run that produced them.
//
// The on-disk format is JSON Lines: the first line is the Header (run
// metadata), every following line one Event in dispatch order. JSONL keeps
// the files greppable, diffable, and appendable by line-oriented tools.
package trace

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Header is the first line of a trace file: enough metadata to rebuild the
// corpus the events index into and to label the run.
type Header struct {
	// Scenario is the preset that produced the recording ("smoke",
	// "storm", ...).
	Scenario string `json:"scenario,omitempty"`
	// Seed is the workload RNG seed of the recording run; a replay against
	// a corpus rebuilt from the same seed addresses identical photos.
	Seed int64 `json:"seed,omitempty"`
	// Photos and Videos are the corpus sizes the events' indices address.
	Photos int `json:"photos,omitempty"`
	Videos int `json:"videos,omitempty"`
	// Note is free-form provenance ("recorded by p3load -trace-record").
	Note string `json:"note,omitempty"`
}

// Event is one dispatched operation. Photo and Video are corpus indices
// (not IDs — IDs are minted per run by the PSP and blob store, so a trace
// must address the corpus positionally to replay against a fresh deploy).
type Event struct {
	// TMs is the dispatch offset from the start of the run, in
	// milliseconds.
	TMs float64 `json:"t_ms"`
	// Op names the operation: "upload", "download", "calibrate",
	// "video_upload", "video_download".
	Op string `json:"op"`
	// Client is the admission client key the operation was issued under.
	Client string `json:"client,omitempty"`
	// Photo is the photo-corpus index the operation addressed (downloads
	// and uploads), -1 when not applicable.
	Photo int `json:"photo,omitempty"`
	// Video is the video-corpus index (video ops), -1 when not applicable.
	Video int `json:"video,omitempty"`
	// Q is the encoded variant query string ("size=thumb", "w=640&h=480").
	Q string `json:"q,omitempty"`
	// Frame is the requested clip frame, -1 for whole-clip downloads.
	Frame int `json:"frame,omitempty"`
}

// Log is a fully loaded trace.
type Log struct {
	Header Header
	Events []Event
}

// Recorder accumulates events during a run. Safe for concurrent use; the
// recorded order is the order Record was called in, i.e. dispatch order.
type Recorder struct {
	mu     sync.Mutex
	start  time.Time
	header Header
	events []Event
}

// NewRecorder starts a recording clock at now.
func NewRecorder(h Header) *Recorder {
	return &Recorder{start: time.Now(), header: h}
}

// Record stamps the event with the current offset from the recorder's
// start and appends it. Call it at dispatch time, before the operation
// runs, so the trace captures the arrival process rather than the service
// process.
func (r *Recorder) Record(ev Event) {
	r.mu.Lock()
	ev.TMs = float64(time.Since(r.start)) / float64(time.Millisecond)
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Log snapshots the recording.
func (r *Recorder) Log() *Log {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Log{Header: r.header, Events: append([]Event(nil), r.events...)}
}

// Len reports how many events have been recorded.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// WriteFile writes the recording to path (see Write for the format).
func (r *Recorder) WriteFile(path string) error {
	return WriteFile(path, r.Log())
}

// Write serializes the log as JSONL: header line, then one event per line.
func Write(w io.Writer, l *Log) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(l.Header); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	for i := range l.Events {
		if err := enc.Encode(&l.Events[i]); err != nil {
			return fmt.Errorf("trace: writing event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// WriteFile writes the log to path, replacing any existing file.
func WriteFile(path string, l *Log) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, l); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses a JSONL trace: the first line is the header, the rest
// events. Blank lines are skipped, so hand-edited traces stay readable.
func Read(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	l := &Log{}
	sawHeader := false
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		if !sawHeader {
			if err := json.Unmarshal(b, &l.Header); err != nil {
				return nil, fmt.Errorf("trace: line %d (header): %w", line, err)
			}
			sawHeader = true
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		l.Events = append(l.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("trace: empty trace file")
	}
	return l, nil
}

// ReadFile loads a trace from path.
func ReadFile(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Replay dispatches the log's events in recorded order. speed scales the
// clock: 1 replays at recorded speed, 2 twice as fast, and <= 0 dispatches
// as fast as possible with no pacing at all. Dispatch is sequential — each
// call to dispatch returns before the next event fires — so the dispatch
// order always equals the recorded order exactly; an open-loop driver
// makes the work itself asynchronous by having dispatch start a goroutine.
// Replay stops early (returning ctx.Err()) if the context dies between
// events.
func Replay(ctx context.Context, l *Log, speed float64, dispatch func(Event)) error {
	start := time.Now()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for _, ev := range l.Events {
		if speed > 0 {
			at := start.Add(time.Duration(ev.TMs / speed * float64(time.Millisecond)))
			if d := time.Until(at); d > 0 {
				timer.Reset(d)
				select {
				case <-timer.C:
				case <-ctx.Done():
					return ctx.Err()
				}
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		dispatch(ev)
	}
	return nil
}
