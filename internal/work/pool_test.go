package work

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if p.Size() != 1 {
		t.Fatalf("nil pool size %d, want 1", p.Size())
	}
	var order []int
	if err := p.Do(5, func(i int) error {
		order = append(order, i) // safe: inline execution is sequential
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("inline order %v, want 0..4 in order", order)
		}
	}
}

func TestNewSmallSizesAreNil(t *testing.T) {
	for _, n := range []int{-1, 0, 1} {
		if p := New(n); p != nil {
			t.Errorf("New(%d) = %v, want nil", n, p)
		}
	}
	if p := New(4); p.Size() != 4 {
		t.Errorf("New(4).Size() = %d", p.Size())
	}
}

func TestDoRunsEveryTask(t *testing.T) {
	p := New(4)
	var hits [100]atomic.Int32
	if err := p.Do(len(hits), func(i int) error {
		hits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if n := hits[i].Load(); n != 1 {
			t.Fatalf("task %d ran %d times", i, n)
		}
	}
}

func TestDoReturnsLowestIndexError(t *testing.T) {
	p := New(4)
	errA, errB := errors.New("a"), errors.New("b")
	err := p.Do(10, func(i int) error {
		switch i {
		case 3:
			return errB
		case 7:
			return errA
		}
		return nil
	})
	if err != errB {
		t.Fatalf("got %v, want the lowest-index error %v", err, errB)
	}
}

func TestNestedDoDoesNotDeadlock(t *testing.T) {
	p := New(3)
	var count atomic.Int32
	if err := p.Do(6, func(i int) error {
		return p.Do(6, func(j int) error {
			count.Add(1)
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 36 {
		t.Fatalf("nested tasks ran %d times, want 36", count.Load())
	}
}

func TestConcurrentDoSharesBound(t *testing.T) {
	p := New(2)
	var wg sync.WaitGroup
	var running, peak atomic.Int32
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.Do(8, func(i int) error {
				r := running.Add(1)
				for {
					old := peak.Load()
					if r <= old || peak.CompareAndSwap(old, r) {
						break
					}
				}
				running.Add(-1)
				return nil
			})
		}()
	}
	wg.Wait()
	// 4 caller goroutines plus at most Size-1 pool helpers.
	if max := peak.Load(); max > 4+1 {
		t.Fatalf("observed %d concurrent tasks, want <= 5", max)
	}
}

func TestPanicPropagatesToCaller(t *testing.T) {
	p := New(4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		// The original panic value must survive re-raising, so recovery
		// behaves identically at every parallelism level.
		if r != "boom" {
			t.Fatalf("panic value %v (%T), want the original \"boom\"", r, r)
		}
	}()
	_ = p.Do(8, func(i int) error {
		if i == 5 {
			panic("boom")
		}
		return nil
	})
}

func TestInlineDoRunsAllTasksOnError(t *testing.T) {
	var p *Pool
	ran := make([]bool, 5)
	err := p.Do(5, func(i int) error {
		ran[i] = true
		if i == 1 {
			return errors.New("task 1")
		}
		return nil
	})
	if err == nil || err.Error() != "task 1" {
		t.Fatalf("got %v, want task 1's error", err)
	}
	for i, r := range ran {
		if !r {
			t.Errorf("task %d skipped after earlier error", i)
		}
	}
}
