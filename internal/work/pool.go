// Package work provides the bounded worker pool that the codec hot path
// shares across its pipeline stages. One pool is created per Codec and
// threaded through decode, split, reconstruct and encode, so a single photo
// saturates the configured number of cores while many concurrent photos
// still respect the same global bound.
//
// The pool is deadlock-free under nesting by construction: the goroutine
// calling Do always executes tasks itself, and extra workers join only when
// a pool token is free. A nested Do that finds no tokens simply degrades to
// inline sequential execution.
package work

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool bounds how many goroutines may execute tasks concurrently across all
// Do calls that share it. The nil *Pool is valid and runs everything inline
// on the calling goroutine, which is the sequential (parallelism = 1) mode.
type Pool struct {
	size   int
	tokens chan struct{}
}

// New returns a pool allowing up to n concurrently running tasks. n <= 1
// returns nil, the inline sequential pool.
func New(n int) *Pool {
	if n <= 1 {
		return nil
	}
	p := &Pool{size: n, tokens: make(chan struct{}, n-1)}
	for i := 0; i < n-1; i++ {
		p.tokens <- struct{}{}
	}
	return p
}

// Size reports the parallelism bound; 1 for the nil pool.
func (p *Pool) Size() int {
	if p == nil {
		return 1
	}
	return p.size
}

// panicError carries a recovered task panic back to the Do caller, where
// its original value is re-raised so parallel and sequential execution fail
// the same way. The helper-goroutine stack is printed to stderr first —
// re-raising loses it, and it names the faulting band.
type panicError struct {
	val   any
	stack []byte
}

func (e *panicError) Error() string {
	return fmt.Sprintf("work: task panicked: %v", e.val)
}

// Do runs fn(0), …, fn(n-1), blocking until all have completed. The calling
// goroutine participates, and up to Size()-1 helper goroutines join when pool
// tokens are free, so the pool never deadlocks even when a task itself calls
// Do. Tasks must write only to disjoint state; then the result is identical
// regardless of scheduling. All tasks run even if one fails — at every
// parallelism level, so side effects don't depend on the pool size — and the
// returned error is the lowest-index task's error, making error selection
// deterministic. A task panic is re-raised with its original value on the
// calling goroutine (the task's stack goes to stderr first).
func (p *Pool) Do(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	// On a single-P runtime, helper goroutines cannot run concurrently with
	// the caller anyway; spawning them only adds scheduler churn and buys
	// nothing (a GOMAXPROCS=1 run of the parallel benchmarks used to trail
	// the sequential ones by ~25% for exactly this reason). Tasks still
	// observe identical semantics — Do's contract is a bound, not a floor.
	if p == nil || n == 1 || runtime.GOMAXPROCS(0) == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	run := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			errs[i] = call(fn, i)
		}
	}
	var wg sync.WaitGroup
	helpers := p.size - 1
	if helpers > n-1 {
		helpers = n - 1
	}
spawn:
	for i := 0; i < helpers; i++ {
		select {
		case <-p.tokens:
		default:
			break spawn // no free workers; the caller handles the rest
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { p.tokens <- struct{}{} }()
			run()
		}()
	}
	run()
	wg.Wait()
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if pe, ok := err.(*panicError); ok {
			fmt.Fprintf(os.Stderr, "work: task panicked: %v\n%s\n", pe.val, pe.stack)
			panic(pe.val)
		}
		if first == nil {
			first = err
		}
	}
	return first
}

func call(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{val: r, stack: debug.Stack()}
		}
	}()
	return fn(i)
}
