package core

import (
	"bytes"
	"fmt"
	"testing"

	"p3/internal/dataset"
	"p3/internal/jpegx"
)

// TestFusedSplitDiag is the permanent differential test for the fused split
// capture: for every baseline stream shape the capture handles, the parts it
// replays from the token streams must be byte-identical to the reference
// pipeline (decode → coefficient split → encode). Any drift here corrupts
// stored parts silently, so the comparison is bytes, not PSNR.
func TestFusedSplitDiag(t *testing.T) {
	for _, tc := range []struct {
		sub       jpegx.Subsampling
		w, h      int
		threshold int
		optimize  bool
	}{
		{jpegx.Sub420, 640, 480, 15, true},
		{jpegx.Sub420, 129, 97, 15, true}, // partial MCUs on both edges
		{jpegx.Sub444, 320, 240, 15, true},
		{jpegx.Sub422, 320, 240, 15, true},
		{jpegx.Sub420, 320, 240, 1, true},    // everything above |1| goes secret
		{jpegx.Sub420, 320, 240, 1000, true}, // nearly nothing goes secret
		{jpegx.Sub420, 320, 240, 15, false},  // Annex-K standard tables
	} {
		name := fmt.Sprintf("%v_%dx%d_T%d_opt%v", tc.sub, tc.w, tc.h, tc.threshold, tc.optimize)
		t.Run(name, func(t *testing.T) {
			img := dataset.Natural(42, tc.w, tc.h)
			var buf bytes.Buffer
			if err := jpegx.EncodePixels(&buf, img, &jpegx.PixelEncodeOptions{Subsampling: tc.sub}); err != nil {
				t.Fatal(err)
			}
			src := buf.Bytes()
			im, cap, err := jpegx.DecodeBytesSplit(src, tc.threshold, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if cap == nil {
				t.Fatal("expected fused capture for baseline source")
			}
			defer cap.Release()
			im.StripMarkers()
			var fusedPub, fusedSec bytes.Buffer
			if err := cap.EncodePublic(&fusedPub, im, tc.optimize); err != nil {
				t.Fatal(err)
			}
			if err := cap.EncodeSecret(&fusedSec, im, tc.optimize); err != nil {
				t.Fatal(err)
			}

			im2, err := jpegx.DecodeBytes(src)
			if err != nil {
				t.Fatal(err)
			}
			im2.StripMarkers()
			pub, sec, err := Split(im2, tc.threshold)
			if err != nil {
				t.Fatal(err)
			}
			opts := &jpegx.EncodeOptions{OptimizeHuffman: tc.optimize}
			var refPub, refSec bytes.Buffer
			if err := jpegx.EncodeCoeffs(&refPub, pub, opts); err != nil {
				t.Fatal(err)
			}
			if err := jpegx.EncodeCoeffs(&refSec, sec, opts); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fusedPub.Bytes(), refPub.Bytes()) {
				t.Errorf("public part differs: fused %d bytes, ref %d bytes", fusedPub.Len(), refPub.Len())
			}
			if !bytes.Equal(fusedSec.Bytes(), refSec.Bytes()) {
				t.Errorf("secret part differs: fused %d bytes, ref %d bytes", fusedSec.Len(), refSec.Len())
			}
		})
	}
}
