package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"p3/internal/jpegx"
)

// randomCoeffImage builds a valid coefficient image with sparse, natural-ish
// statistics (energy concentrated in low frequencies).
func randomCoeffImage(rng *rand.Rand, w, h int, sub jpegx.Subsampling) *jpegx.CoeffImage {
	luma, chroma := jpegx.StandardQuantTables(90)
	im := &jpegx.CoeffImage{Width: w, Height: h}
	im.Quant[0] = &luma
	im.Quant[1] = &chroma
	lh, lv := 1, 1
	if sub == jpegx.Sub420 {
		lh, lv = 2, 2
	}
	im.Components = []jpegx.Component{
		{ID: 1, H: lh, V: lv, TqIndex: 0},
		{ID: 2, H: 1, V: 1, TqIndex: 1},
		{ID: 3, H: 1, V: 1, TqIndex: 1},
	}
	mcusX := (w + 8*lh - 1) / (8 * lh)
	mcusY := (h + 8*lv - 1) / (8 * lv)
	for ci := range im.Components {
		c := &im.Components[ci]
		c.BlocksX = mcusX * c.H
		c.BlocksY = mcusY * c.V
		c.Blocks = make([]jpegx.Block, c.BlocksX*c.BlocksY)
		for bi := range c.Blocks {
			b := &c.Blocks[bi]
			b[0] = int32(rng.Intn(2033) - 1016)
			for zz := 1; zz < 64; zz++ {
				if rng.Float64() < 0.25 {
					limit := 600 / zz
					if limit < 3 {
						limit = 3
					}
					b[jpegx.Zigzag(zz)] = int32(rng.Intn(2*limit+1) - limit)
				}
			}
		}
	}
	return im
}

func TestSplitInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	im := randomCoeffImage(rng, 64, 48, jpegx.Sub420)
	for _, threshold := range []int{1, 5, 15, 20, 100} {
		pub, sec, err := Split(im, threshold)
		if err != nil {
			t.Fatal(err)
		}
		tt := int32(threshold)
		for ci := range im.Components {
			for bi := range im.Components[ci].Blocks {
				y := &im.Components[ci].Blocks[bi]
				p := &pub.Components[ci].Blocks[bi]
				s := &sec.Components[ci].Blocks[bi]
				if p[0] != 0 {
					t.Fatalf("T=%d: public DC %d != 0", threshold, p[0])
				}
				if s[0] != y[0] {
					t.Fatalf("T=%d: secret DC %d != original %d", threshold, s[0], y[0])
				}
				for k := 1; k < 64; k++ {
					// Public ACs are clipped into [-T, T].
					if p[k] > tt || p[k] < -tt {
						t.Fatalf("T=%d: |public AC| = %d > T", threshold, p[k])
					}
					// Below-threshold coefficients stay public, secret zero.
					if y[k] >= -tt && y[k] <= tt {
						if p[k] != y[k] || s[k] != 0 {
							t.Fatalf("T=%d: below-threshold coeff mishandled: y=%d p=%d s=%d", threshold, y[k], p[k], s[k])
						}
						continue
					}
					// Above-threshold: public is exactly +T (sign withheld).
					if p[k] != tt {
						t.Fatalf("T=%d: clipped public %d != T", threshold, p[k])
					}
					// Secret carries sign and excess magnitude.
					if y[k] > tt && s[k] != y[k]-tt {
						t.Fatalf("T=%d: secret %d, want %d", threshold, s[k], y[k]-tt)
					}
					if y[k] < -tt && s[k] != y[k]+tt {
						t.Fatalf("T=%d: secret %d, want %d", threshold, s[k], y[k]+tt)
					}
				}
			}
		}
	}
}

func TestSplitReconstructExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		im := randomCoeffImage(rng, 40, 40, jpegx.Sub444)
		threshold := 1 + rng.Intn(100)
		pub, sec, err := Split(im, threshold)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReconstructCoeffs(pub, sec, threshold)
		if err != nil {
			t.Fatal(err)
		}
		for ci := range im.Components {
			for bi := range im.Components[ci].Blocks {
				if got.Components[ci].Blocks[bi] != im.Components[ci].Blocks[bi] {
					t.Fatalf("T=%d: block %d/%d not reconstructed exactly", threshold, ci, bi)
				}
			}
		}
	}
}

// TestSplitReconstructProperty: for any single coefficient value and
// threshold, split followed by Eq. (1) recombination is the identity.
func TestSplitReconstructProperty(t *testing.T) {
	f := func(vRaw int16, tRaw uint8) bool {
		v := int32(vRaw % 1024) // valid AC range
		threshold := int(tRaw)%MaxThreshold + 1
		tt := int32(threshold)
		var p, s int32
		switch {
		case v > tt:
			p, s = tt, v-tt
		case v < -tt:
			p, s = tt, v+tt
		default:
			p, s = v, 0
		}
		// Eq. (1) per-coefficient.
		var y int32
		switch {
		case s > 0:
			y = p + s
		case s < 0:
			y = p + s - 2*tt
		default:
			y = p
		}
		return y == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestSplitErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	im := randomCoeffImage(rng, 16, 16, jpegx.Sub444)
	if _, _, err := Split(im, 0); err == nil {
		t.Error("threshold 0 must be rejected")
	}
	if _, _, err := Split(im, MaxThreshold+1); err == nil {
		t.Error("threshold > max must be rejected")
	}
	if _, _, err := Split(nil, 10); err == nil {
		t.Error("nil image must be rejected")
	}
	other := randomCoeffImage(rng, 24, 16, jpegx.Sub444)
	if _, err := ReconstructCoeffs(im, other, 10); err == nil {
		t.Error("geometry mismatch must be rejected")
	}
}

func TestSplitPartsAreEncodable(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	im := randomCoeffImage(rng, 48, 32, jpegx.Sub420)
	for _, threshold := range []int{1, 20, 100} {
		pub, sec, err := Split(im, threshold)
		if err != nil {
			t.Fatal(err)
		}
		for name, part := range map[string]*jpegx.CoeffImage{"public": pub, "secret": sec} {
			var buf sliceWriter
			if err := jpegx.EncodeCoeffs(&buf, part, &jpegx.EncodeOptions{OptimizeHuffman: true}); err != nil {
				t.Fatalf("T=%d: %s part not encodable: %v", threshold, name, err)
			}
			if len(buf) == 0 {
				t.Fatalf("T=%d: %s part empty", threshold, name)
			}
		}
	}
}

type sliceWriter []byte

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}

func TestGuessThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	im := randomCoeffImage(rng, 96, 96, jpegx.Sub420)
	// The attack works when enough coefficients exceed T (low thresholds).
	for _, threshold := range []int{1, 5, 10, 20} {
		pub, _, err := Split(im, threshold)
		if err != nil {
			t.Fatal(err)
		}
		if got := GuessThreshold(pub); got != threshold {
			t.Errorf("T=%d: attacker guessed %d", threshold, got)
		}
	}
	// An empty public part yields 0.
	empty := randomCoeffImage(rng, 16, 16, jpegx.Sub444)
	for ci := range empty.Components {
		for bi := range empty.Components[ci].Blocks {
			empty.Components[ci].Blocks[bi] = jpegx.Block{}
		}
	}
	if got := GuessThreshold(empty); got != 0 {
		t.Errorf("empty image guessed %d", got)
	}
}

func TestCorrectionImageMatchesEquation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	im := randomCoeffImage(rng, 32, 32, jpegx.Sub444)
	threshold := 10
	pub, sec, err := Split(im, threshold)
	if err != nil {
		t.Fatal(err)
	}
	corr := CorrectionImage(sec, threshold)
	// pub + sec + corr must equal the original, coefficient by coefficient.
	for ci := range im.Components {
		for bi := range im.Components[ci].Blocks {
			y := &im.Components[ci].Blocks[bi]
			p := &pub.Components[ci].Blocks[bi]
			s := &sec.Components[ci].Blocks[bi]
			c := &corr.Components[ci].Blocks[bi]
			for k := 0; k < 64; k++ {
				if p[k]+s[k]+c[k] != y[k] {
					t.Fatalf("coeff %d: %d+%d+%d != %d", k, p[k], s[k], c[k], y[k])
				}
			}
		}
	}
}
