package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"p3/internal/imaging"
	"p3/internal/jpegx"
	"p3/internal/work"
)

func TestSearchPipelineRecoversTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	im := naturalImage(t, rng, 96, 96, jpegx.Sub444)
	input := im.ToPlanar()
	// Hidden pipeline: Lanczos3 resize + mild sharpen, like a real PSP.
	hidden := imaging.Compose{
		imaging.Resize{W: 48, H: 48, Filter: imaging.Lanczos3},
		imaging.Sharpen{Sigma: 1, Amount: 0.5},
	}
	output := imaging.Clamp(hidden.Apply(input))
	res := SearchPipeline(input, output, nil)
	if res.Op == nil {
		t.Fatal("no candidate matched")
	}
	// The matched pipeline must reproduce the output nearly exactly: the
	// truth is inside the candidate set.
	if res.PSNR < 45 {
		t.Errorf("best candidate PSNR %.1f dB, want >= 45 (found %s)", res.PSNR, res.Op)
	}
}

func TestSearchPipelineApproximatesUnknown(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	im := naturalImage(t, rng, 96, 96, jpegx.Sub444)
	input := im.ToPlanar()
	// A pipeline outside the candidate grid (different sharpen σ/amount and
	// a slight blur): the search should still find a reasonable surrogate,
	// mirroring the paper's 34–40 dB approximate reverse-engineering.
	hidden := imaging.Compose{
		imaging.GaussianBlur{Sigma: 0.7},
		imaging.Resize{W: 37, H: 37, Filter: imaging.CatmullRom},
		imaging.Sharpen{Sigma: 1.4, Amount: 0.35},
	}
	output := imaging.Clamp(hidden.Apply(input))
	res := SearchPipeline(input, output, nil)
	if res.Op == nil {
		t.Fatal("no candidate matched")
	}
	if res.PSNR < 25 {
		t.Errorf("surrogate PSNR %.1f dB, want >= 25", res.PSNR)
	}
	if math.IsInf(res.PSNR, 1) {
		t.Error("exact match for out-of-grid pipeline is suspicious")
	}
}

func TestCandidatePipelinesAllProduceTargetDims(t *testing.T) {
	cands := CandidatePipelines(30, 20)
	if len(cands) < 4*2*3 {
		t.Fatalf("only %d candidates", len(cands))
	}
	img := jpegx.NewPlanarImage(60, 40, 1)
	for i := range img.Planes[0] {
		img.Planes[0][i] = float64(i % 255)
	}
	for _, op := range cands {
		out := op.Apply(img)
		if out.Width != 30 || out.Height != 20 {
			t.Errorf("%s produced %dx%d", op, out.Width, out.Height)
		}
	}
}

func TestSearchPipelineUsedForReconstruction(t *testing.T) {
	// End-to-end §4.1 flow: calibrate against the PSP's hidden pipeline,
	// then use the matched operator to reconstruct a *different* photo.
	rng := rand.New(rand.NewSource(3))
	hidden := imaging.Compose{
		imaging.Resize{W: 40, H: 40, Filter: imaging.Lanczos3},
		imaging.Sharpen{Sigma: 1, Amount: 0.5},
	}
	calibIm := naturalImage(t, rng, 80, 80, jpegx.Sub444)
	calib := calibIm.ToPlanar()
	res := SearchPipeline(calib, imaging.Clamp(hidden.Apply(calib)), nil)
	if res.Op == nil {
		t.Fatal("calibration failed")
	}

	photo := naturalImage(t, rng, 80, 80, jpegx.Sub444)
	threshold := 15
	pub, sec, err := Split(photo, threshold)
	if err != nil {
		t.Fatal(err)
	}
	served := imaging.Clamp(hidden.Apply(pub.ToPlanar()))
	rec, err := ReconstructPixels(served, sec, threshold, res.Op)
	if err != nil {
		t.Fatal(err)
	}
	want := imaging.Clamp(hidden.Apply(photo.ToPlanar()))
	if got := psnr(want, rec); got < 30 {
		t.Errorf("reconstruction via searched pipeline: %.1f dB, want >= 30", got)
	}
}

// TestSearchParamsCtxMatchesSequential pins the parallel sweep to the
// sequential one: same winner, same score, at any pool size.
func TestSearchParamsCtxMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	im := naturalImage(t, rng, 96, 96, jpegx.Sub444)
	input := im.ToPlanar()
	hidden := imaging.Compose{
		imaging.Resize{W: 48, H: 48, Filter: imaging.Lanczos3},
		imaging.Sharpen{Sigma: 1, Amount: 0.5},
	}
	output := imaging.Clamp(hidden.Apply(input))
	seqP, seqRes := SearchParams(input, output)
	parP, parRes, err := SearchParamsCtx(context.Background(), input, output, work.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if parP.Filter.Name != seqP.Filter.Name || parP.PreBlur != seqP.PreBlur ||
		parP.SharpenAmount != seqP.SharpenAmount || parP.Gamma != seqP.Gamma {
		t.Errorf("parallel sweep picked %+v, sequential picked %+v", parP, seqP)
	}
	if parRes.MSE != seqRes.MSE || parRes.PSNR != seqRes.PSNR {
		t.Errorf("parallel score (%g, %g) != sequential (%g, %g)",
			parRes.MSE, parRes.PSNR, seqRes.MSE, seqRes.PSNR)
	}
}

// TestSearchParamsCtxCancelled: a cancelled context aborts the sweep with
// ctx.Err() instead of leaking a full grid search.
func TestSearchParamsCtxCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	im := naturalImage(t, rng, 96, 96, jpegx.Sub444)
	input := im.ToPlanar()
	output := imaging.Clamp(imaging.Resize{W: 48, H: 48, Filter: imaging.Triangle}.Apply(input))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := SearchParamsCtx(ctx, input, output, work.New(4)); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled sweep returned %v, want context.Canceled", err)
	}
}

// TestVerifyProbe: the probe accepts the identified parameters and rejects
// a wrong candidate, the decision an incremental recalibration rests on.
func TestVerifyProbe(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	im := naturalImage(t, rng, 96, 96, jpegx.Sub444)
	input := im.ToPlanar()
	truth := PipelineParams{Filter: imaging.Lanczos3, SharpenAmount: 0.5, Gamma: 1}
	output := imaging.Clamp(truth.Instantiate(48, 48).Apply(input))
	if res := truth.Verify(input, output); res.PSNR < 45 {
		t.Errorf("probe of the true parameters scored %.1f dB, want >= 45", res.PSNR)
	}
	wrong := PipelineParams{Filter: imaging.Box, PreBlur: 0.5, Gamma: 1.1}
	good := truth.Verify(input, output)
	if res := wrong.Verify(input, output); res.PSNR >= good.PSNR {
		t.Errorf("probe of wrong parameters (%.1f dB) not below true parameters (%.1f dB)",
			res.PSNR, good.PSNR)
	}
	// And the probe agrees with what a full sweep would land on.
	swept, sweptRes := SearchParams(input, output)
	if probe := swept.Verify(input, output); probe.MSE != sweptRes.MSE {
		t.Errorf("probe of swept winner scores MSE %g, sweep reported %g", probe.MSE, sweptRes.MSE)
	}
}
