package core

import (
	"math"
	"math/rand"
	"testing"

	"p3/internal/imaging"
	"p3/internal/jpegx"
)

func TestSearchPipelineRecoversTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	im := naturalImage(t, rng, 96, 96, jpegx.Sub444)
	input := im.ToPlanar()
	// Hidden pipeline: Lanczos3 resize + mild sharpen, like a real PSP.
	hidden := imaging.Compose{
		imaging.Resize{W: 48, H: 48, Filter: imaging.Lanczos3},
		imaging.Sharpen{Sigma: 1, Amount: 0.5},
	}
	output := imaging.Clamp(hidden.Apply(input))
	res := SearchPipeline(input, output, nil)
	if res.Op == nil {
		t.Fatal("no candidate matched")
	}
	// The matched pipeline must reproduce the output nearly exactly: the
	// truth is inside the candidate set.
	if res.PSNR < 45 {
		t.Errorf("best candidate PSNR %.1f dB, want >= 45 (found %s)", res.PSNR, res.Op)
	}
}

func TestSearchPipelineApproximatesUnknown(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	im := naturalImage(t, rng, 96, 96, jpegx.Sub444)
	input := im.ToPlanar()
	// A pipeline outside the candidate grid (different sharpen σ/amount and
	// a slight blur): the search should still find a reasonable surrogate,
	// mirroring the paper's 34–40 dB approximate reverse-engineering.
	hidden := imaging.Compose{
		imaging.GaussianBlur{Sigma: 0.7},
		imaging.Resize{W: 37, H: 37, Filter: imaging.CatmullRom},
		imaging.Sharpen{Sigma: 1.4, Amount: 0.35},
	}
	output := imaging.Clamp(hidden.Apply(input))
	res := SearchPipeline(input, output, nil)
	if res.Op == nil {
		t.Fatal("no candidate matched")
	}
	if res.PSNR < 25 {
		t.Errorf("surrogate PSNR %.1f dB, want >= 25", res.PSNR)
	}
	if math.IsInf(res.PSNR, 1) {
		t.Error("exact match for out-of-grid pipeline is suspicious")
	}
}

func TestCandidatePipelinesAllProduceTargetDims(t *testing.T) {
	cands := CandidatePipelines(30, 20)
	if len(cands) < 4*2*3 {
		t.Fatalf("only %d candidates", len(cands))
	}
	img := jpegx.NewPlanarImage(60, 40, 1)
	for i := range img.Planes[0] {
		img.Planes[0][i] = float64(i % 255)
	}
	for _, op := range cands {
		out := op.Apply(img)
		if out.Width != 30 || out.Height != 20 {
			t.Errorf("%s produced %dx%d", op, out.Width, out.Height)
		}
	}
}

func TestSearchPipelineUsedForReconstruction(t *testing.T) {
	// End-to-end §4.1 flow: calibrate against the PSP's hidden pipeline,
	// then use the matched operator to reconstruct a *different* photo.
	rng := rand.New(rand.NewSource(3))
	hidden := imaging.Compose{
		imaging.Resize{W: 40, H: 40, Filter: imaging.Lanczos3},
		imaging.Sharpen{Sigma: 1, Amount: 0.5},
	}
	calibIm := naturalImage(t, rng, 80, 80, jpegx.Sub444)
	calib := calibIm.ToPlanar()
	res := SearchPipeline(calib, imaging.Clamp(hidden.Apply(calib)), nil)
	if res.Op == nil {
		t.Fatal("calibration failed")
	}

	photo := naturalImage(t, rng, 80, 80, jpegx.Sub444)
	threshold := 15
	pub, sec, err := Split(photo, threshold)
	if err != nil {
		t.Fatal(err)
	}
	served := imaging.Clamp(hidden.Apply(pub.ToPlanar()))
	rec, err := ReconstructPixels(served, sec, threshold, res.Op)
	if err != nil {
		t.Fatal(err)
	}
	want := imaging.Clamp(hidden.Apply(photo.ToPlanar()))
	if got := psnr(want, rec); got < 30 {
		t.Errorf("reconstruction via searched pipeline: %.1f dB, want >= 30", got)
	}
}
