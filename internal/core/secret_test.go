package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestSealOpenRoundTrip(t *testing.T) {
	key, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("secret-part-jpeg-bytes-here")
	blob, err := SealSecret(key, 17, payload)
	if err != nil {
		t.Fatal(err)
	}
	threshold, got, err := OpenSecret(key, blob)
	if err != nil {
		t.Fatal(err)
	}
	if threshold != 17 {
		t.Errorf("threshold = %d, want 17", threshold)
	}
	if !bytes.Equal(got, payload) {
		t.Error("payload corrupted")
	}
}

func TestSealProducesCiphertext(t *testing.T) {
	key, _ := NewKey()
	payload := bytes.Repeat([]byte("AAAA"), 64)
	blob, err := SealSecret(key, 10, payload)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, payload[:16]) {
		t.Error("plaintext visible in sealed blob")
	}
	// Two seals of the same payload must differ (random IV).
	blob2, _ := SealSecret(key, 10, payload)
	if bytes.Equal(blob, blob2) {
		t.Error("sealing is deterministic; IV reuse?")
	}
}

func TestOpenWrongKey(t *testing.T) {
	k1, _ := NewKey()
	k2, _ := NewKey()
	blob, _ := SealSecret(k1, 10, []byte("data"))
	if _, _, err := OpenSecret(k2, blob); !errors.Is(err, ErrAuth) {
		t.Errorf("wrong key: err = %v, want ErrAuth", err)
	}
}

func TestOpenTampered(t *testing.T) {
	key, _ := NewKey()
	payload := bytes.Repeat([]byte{7}, 100)
	blob, _ := SealSecret(key, 10, payload)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		tampered := append([]byte(nil), blob...)
		tampered[rng.Intn(len(tampered))] ^= 1 << uint(rng.Intn(8))
		if _, _, err := OpenSecret(key, tampered); err == nil {
			t.Fatal("bit flip not detected")
		}
	}
	// Truncation.
	if _, _, err := OpenSecret(key, blob[:len(blob)-1]); err == nil {
		t.Error("truncation not detected")
	}
	if _, _, err := OpenSecret(key, blob[:10]); !errors.Is(err, ErrAuth) {
		t.Error("short blob must fail auth")
	}
	// Threshold is MACed: flipping it must fail even though it is clear-text.
	flip := append([]byte(nil), blob...)
	flip[6] ^= 0xFF
	if _, _, err := OpenSecret(key, flip); !errors.Is(err, ErrAuth) {
		t.Error("threshold tampering not detected")
	}
}

func TestOpenNotAContainer(t *testing.T) {
	key, _ := NewKey()
	junk := bytes.Repeat([]byte("x"), 200)
	if _, _, err := OpenSecret(key, junk); err == nil {
		t.Error("junk accepted")
	}
}

func TestSealThresholdValidation(t *testing.T) {
	key, _ := NewKey()
	if _, err := SealSecret(key, 0, []byte("x")); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, err := SealSecret(key, MaxThreshold+1, []byte("x")); err == nil {
		t.Error("oversized threshold accepted")
	}
}

func TestKeyDerivationDomainSeparation(t *testing.T) {
	key, _ := NewKey()
	if bytes.Equal(key.derive("p3-enc"), key.derive("p3-mac")) {
		t.Error("enc and mac keys identical")
	}
	if len(key.derive("p3-enc")) != 32 {
		t.Error("derived key not 32 bytes")
	}
}
