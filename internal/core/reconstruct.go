package core

import (
	"fmt"

	"p3/internal/imaging"
	"p3/internal/jpegx"
	"p3/internal/work"
)

// SecretPixelImages converts the secret part into the two pixel-domain
// images needed for reconstruction under a PSP-side transform (Eq. (2)):
// the secret image S = IDCT(x_s) and the correction image
// C = IDCT((Ss − Ss²)·w), both at full resolution with chroma upsampled by
// the same linear interpolation the public decode path uses.
//
// Unlike a normal decoded JPEG, S and C are *difference* images: no +128
// level shift applies and samples range far outside [0, 255]. Callers must
// not clamp them before summing.
func SecretPixelImages(sec *jpegx.CoeffImage, threshold int) (s, c *jpegx.PlanarImage) {
	return SecretPixelImagesPool(sec, threshold, nil)
}

// SecretPixelImagesPool is SecretPixelImages building the two images
// concurrently on pool, each with its IDCT fanned out over bands. The
// floating-point work per sample is unchanged, so the planes are
// bit-identical to the sequential derivation.
func SecretPixelImagesPool(sec *jpegx.CoeffImage, threshold int, pool *work.Pool) (s, c *jpegx.PlanarImage) {
	_ = pool.Do(2, func(i int) error {
		if i == 0 {
			s = unshift(sec.ToPlanarPool(pool))
		} else {
			c = unshift(CorrectionImagePool(sec, threshold, pool).ToPlanarPool(pool))
		}
		return nil
	})
	return s, c
}

// unshift removes the +128 JPEG level shift that ToPlanar applies, turning
// a decoded plane into a pure linear term.
func unshift(img *jpegx.PlanarImage) *jpegx.PlanarImage {
	for _, p := range img.Planes {
		for i := range p {
			p[i] -= 128
		}
	}
	return img
}

// SecretPlanes is the variant-independent half of pixel-domain
// reconstruction: the secret image S and correction image C of Eq. (2),
// derived once per secret part. A PSP serves one photo as many renditions
// (thumbnail, feed, full view), and every one of them applies its own
// operator A to the *same* S and C — so a multi-variant consumer derives
// the planes once and amortizes the secret part's IDCT across the whole
// fan-out. Reconstruct does not mutate the planes; a SecretPlanes may be
// shared by concurrent reconstructions.
type SecretPlanes struct {
	// S and C are unshifted difference images (no +128 level shift, samples
	// far outside [0, 255]); see SecretPixelImages.
	S, C *jpegx.PlanarImage

	// Threshold echoes the T the planes were derived at.
	Threshold int
}

// DeriveSecretPlanes computes the reusable secret and correction planes for
// one secret part at full resolution.
func DeriveSecretPlanes(sec *jpegx.CoeffImage, threshold int) *SecretPlanes {
	return DeriveSecretPlanesPool(sec, threshold, nil)
}

// DeriveSecretPlanesPool is DeriveSecretPlanes with the two derivations
// running concurrently on pool.
func DeriveSecretPlanesPool(sec *jpegx.CoeffImage, threshold int, pool *work.Pool) *SecretPlanes {
	s, c := SecretPixelImagesPool(sec, threshold, pool)
	return &SecretPlanes{S: s, C: c, Threshold: threshold}
}

// DeriveSecretPlanesScaledPool derives the planes at 1/denom of full
// resolution (denom ∈ {1, 2, 4, 8}) through the scaled inverse DCT: each
// plane sample is the exact box average of the denom×denom full-resolution
// samples it covers, at 1/denom² of the IDCT work. A consumer serving a
// rendition no larger than the scaled planes (e.g. a thumbnail) resizes
// from them instead of from full resolution; the result differs from the
// full-resolution chain only by the box prefilter, which the rendition's
// own decimation dominates.
func DeriveSecretPlanesScaledPool(sec *jpegx.CoeffImage, threshold, denom int, pool *work.Pool) (*SecretPlanes, error) {
	var s, c *jpegx.PlanarImage
	err := pool.Do(2, func(i int) error {
		if i == 0 {
			im, err := sec.ToPlanarScaledPool(denom, pool)
			if err != nil {
				return err
			}
			s = unshift(im)
			return nil
		}
		im, err := CorrectionImagePool(sec, threshold, pool).ToPlanarScaledPool(denom, pool)
		if err != nil {
			return err
		}
		c = unshift(im)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &SecretPlanes{S: s, C: c, Threshold: threshold}, nil
}

// Reconstruct applies Eq. (2) for one served variant: op maps the planes'
// resolution onto the served public part's, exactly as it maps the original
// photo onto that rendition.
func (sp *SecretPlanes) Reconstruct(publicPix *jpegx.PlanarImage, op imaging.Op) (*jpegx.PlanarImage, error) {
	return sp.ReconstructPool(publicPix, op, nil)
}

// ReconstructPool is Reconstruct with the two operator applications running
// concurrently on pool.
func (sp *SecretPlanes) ReconstructPool(publicPix *jpegx.PlanarImage, op imaging.Op, pool *work.Pool) (*jpegx.PlanarImage, error) {
	if op == nil {
		op = imaging.Identity{}
	}
	if !op.Linear() {
		return nil, fmt.Errorf("core: operator %s is not linear; see ReconstructRemapped", op)
	}
	var st, ct *jpegx.PlanarImage
	_ = pool.Do(2, func(i int) error {
		if i == 0 {
			st = op.Apply(sp.S)
		} else {
			ct = op.Apply(sp.C)
		}
		return nil
	})
	return addParts(publicPix, st, ct)
}

// ReconstructPixelsMulti reconstructs several served variants of one photo
// from a single secret part: the secret and correction planes derive once,
// then every (publics[i], ops[i]) pair applies its own operator to the
// shared planes. All operators must be linear. Results align with the
// inputs.
func ReconstructPixelsMulti(publics []*jpegx.PlanarImage, sec *jpegx.CoeffImage, threshold int, ops []imaging.Op, pool *work.Pool) ([]*jpegx.PlanarImage, error) {
	if len(publics) != len(ops) {
		return nil, fmt.Errorf("core: %d public variants but %d operators", len(publics), len(ops))
	}
	if len(publics) == 0 {
		return nil, nil
	}
	sp := DeriveSecretPlanesPool(sec, threshold, pool)
	out := make([]*jpegx.PlanarImage, len(publics))
	err := pool.Do(len(publics), func(i int) error {
		im, err := sp.ReconstructPool(publics[i], ops[i], pool)
		if err != nil {
			return fmt.Errorf("core: variant %d: %w", i, err)
		}
		out[i] = im
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// addParts sums the transformed secret and correction planes onto the served
// public part — the final step of Eq. (2) — and clamps for display.
func addParts(publicPix, st, ct *jpegx.PlanarImage) (*jpegx.PlanarImage, error) {
	if st.Width != publicPix.Width || st.Height != publicPix.Height {
		return nil, fmt.Errorf("core: transformed secret is %dx%d but public part is %dx%d — wrong operator?",
			st.Width, st.Height, publicPix.Width, publicPix.Height)
	}
	out := publicPix.Clone()
	imaging.AddInto(out, st, 1)
	imaging.AddInto(out, ct, 1)
	return imaging.Clamp(out), nil
}

// ReconstructPixels recombines in the pixel domain. publicPix is the decoded
// public part — possibly after the PSP applied a transform — and op is the
// transform the PSP applied (imaging.Identity{} when none). Per Eq. (2):
//
//	A·y = A·(public) + A·(secret) + A·(correction)
//
// The returned image is the reconstructed photo, clamped to [0, 255].
//
// op must be linear (op.Linear() == true); for invertible pointwise remaps
// such as gamma, use ReconstructRemapped.
func ReconstructPixels(publicPix *jpegx.PlanarImage, sec *jpegx.CoeffImage, threshold int, op imaging.Op) (*jpegx.PlanarImage, error) {
	return ReconstructPixelsPool(publicPix, sec, threshold, op, nil)
}

// ReconstructPixelsPool is ReconstructPixels with the secret and correction
// chains (IDCT, upsample, PSP transform) running concurrently on pool. The
// two chains touch disjoint images and the final sums are applied in a fixed
// order, so the result is bit-identical to the sequential reconstruction.
func ReconstructPixelsPool(publicPix *jpegx.PlanarImage, sec *jpegx.CoeffImage, threshold int, op imaging.Op, pool *work.Pool) (*jpegx.PlanarImage, error) {
	if op == nil {
		op = imaging.Identity{}
	}
	if !op.Linear() {
		return nil, fmt.Errorf("core: operator %s is not linear; see ReconstructRemapped", op)
	}
	var st, ct *jpegx.PlanarImage
	_ = pool.Do(2, func(i int) error {
		if i == 0 {
			st = op.Apply(unshift(sec.ToPlanarPool(pool)))
		} else {
			ct = op.Apply(unshift(CorrectionImagePool(sec, threshold, pool).ToPlanarPool(pool)))
		}
		return nil
	})
	return addParts(publicPix, st, ct)
}

// ReconstructRemapped handles the paper's §3.3 extension for one-to-one
// non-linear pointwise remaps (e.g. gamma): invert the remap on the public
// part, reconstruct with the remaining linear operator, then re-apply the
// remap. Some loss is expected (the paper leaves quantifying it to future
// work); tests measure it.
func ReconstructRemapped(publicPix *jpegx.PlanarImage, sec *jpegx.CoeffImage, threshold int, linear imaging.Op, remap imaging.Invertible) (*jpegx.PlanarImage, error) {
	return ReconstructRemappedPool(publicPix, sec, threshold, linear, remap, nil)
}

// ReconstructRemappedPool is ReconstructRemapped running its inner linear
// reconstruction on pool.
func ReconstructRemappedPool(publicPix *jpegx.PlanarImage, sec *jpegx.CoeffImage, threshold int, linear imaging.Op, remap imaging.Invertible, pool *work.Pool) (*jpegx.PlanarImage, error) {
	unmapped := remap.Inverse().Apply(publicPix)
	rec, err := ReconstructPixelsPool(unmapped, sec, threshold, linear, pool)
	if err != nil {
		return nil, err
	}
	return imaging.Clamp(remap.Apply(rec)), nil
}
