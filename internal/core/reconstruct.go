package core

import (
	"fmt"

	"p3/internal/imaging"
	"p3/internal/jpegx"
	"p3/internal/work"
)

// SecretPixelImages converts the secret part into the two pixel-domain
// images needed for reconstruction under a PSP-side transform (Eq. (2)):
// the secret image S = IDCT(x_s) and the correction image
// C = IDCT((Ss − Ss²)·w), both at full resolution with chroma upsampled by
// the same linear interpolation the public decode path uses.
//
// Unlike a normal decoded JPEG, S and C are *difference* images: no +128
// level shift applies and samples range far outside [0, 255]. Callers must
// not clamp them before summing.
func SecretPixelImages(sec *jpegx.CoeffImage, threshold int) (s, c *jpegx.PlanarImage) {
	return SecretPixelImagesPool(sec, threshold, nil)
}

// SecretPixelImagesPool is SecretPixelImages building the two images
// concurrently on pool, each with its IDCT fanned out over bands. The
// floating-point work per sample is unchanged, so the planes are
// bit-identical to the sequential derivation.
func SecretPixelImagesPool(sec *jpegx.CoeffImage, threshold int, pool *work.Pool) (s, c *jpegx.PlanarImage) {
	_ = pool.Do(2, func(i int) error {
		if i == 0 {
			s = unshift(sec.ToPlanarPool(pool))
		} else {
			c = unshift(CorrectionImagePool(sec, threshold, pool).ToPlanarPool(pool))
		}
		return nil
	})
	return s, c
}

// unshift removes the +128 JPEG level shift that ToPlanar applies, turning
// a decoded plane into a pure linear term.
func unshift(img *jpegx.PlanarImage) *jpegx.PlanarImage {
	for _, p := range img.Planes {
		for i := range p {
			p[i] -= 128
		}
	}
	return img
}

// ReconstructPixels recombines in the pixel domain. publicPix is the decoded
// public part — possibly after the PSP applied a transform — and op is the
// transform the PSP applied (imaging.Identity{} when none). Per Eq. (2):
//
//	A·y = A·(public) + A·(secret) + A·(correction)
//
// The returned image is the reconstructed photo, clamped to [0, 255].
//
// op must be linear (op.Linear() == true); for invertible pointwise remaps
// such as gamma, use ReconstructRemapped.
func ReconstructPixels(publicPix *jpegx.PlanarImage, sec *jpegx.CoeffImage, threshold int, op imaging.Op) (*jpegx.PlanarImage, error) {
	return ReconstructPixelsPool(publicPix, sec, threshold, op, nil)
}

// ReconstructPixelsPool is ReconstructPixels with the secret and correction
// chains (IDCT, upsample, PSP transform) running concurrently on pool. The
// two chains touch disjoint images and the final sums are applied in a fixed
// order, so the result is bit-identical to the sequential reconstruction.
func ReconstructPixelsPool(publicPix *jpegx.PlanarImage, sec *jpegx.CoeffImage, threshold int, op imaging.Op, pool *work.Pool) (*jpegx.PlanarImage, error) {
	if op == nil {
		op = imaging.Identity{}
	}
	if !op.Linear() {
		return nil, fmt.Errorf("core: operator %s is not linear; see ReconstructRemapped", op)
	}
	var st, ct *jpegx.PlanarImage
	_ = pool.Do(2, func(i int) error {
		if i == 0 {
			st = op.Apply(unshift(sec.ToPlanarPool(pool)))
		} else {
			ct = op.Apply(unshift(CorrectionImagePool(sec, threshold, pool).ToPlanarPool(pool)))
		}
		return nil
	})
	if st.Width != publicPix.Width || st.Height != publicPix.Height {
		return nil, fmt.Errorf("core: transformed secret is %dx%d but public part is %dx%d — wrong operator?",
			st.Width, st.Height, publicPix.Width, publicPix.Height)
	}
	out := publicPix.Clone()
	imaging.AddInto(out, st, 1)
	imaging.AddInto(out, ct, 1)
	return imaging.Clamp(out), nil
}

// ReconstructRemapped handles the paper's §3.3 extension for one-to-one
// non-linear pointwise remaps (e.g. gamma): invert the remap on the public
// part, reconstruct with the remaining linear operator, then re-apply the
// remap. Some loss is expected (the paper leaves quantifying it to future
// work); tests measure it.
func ReconstructRemapped(publicPix *jpegx.PlanarImage, sec *jpegx.CoeffImage, threshold int, linear imaging.Op, remap imaging.Invertible) (*jpegx.PlanarImage, error) {
	return ReconstructRemappedPool(publicPix, sec, threshold, linear, remap, nil)
}

// ReconstructRemappedPool is ReconstructRemapped running its inner linear
// reconstruction on pool.
func ReconstructRemappedPool(publicPix *jpegx.PlanarImage, sec *jpegx.CoeffImage, threshold int, linear imaging.Op, remap imaging.Invertible, pool *work.Pool) (*jpegx.PlanarImage, error) {
	unmapped := remap.Inverse().Apply(publicPix)
	rec, err := ReconstructPixelsPool(unmapped, sec, threshold, linear, pool)
	if err != nil {
		return nil, err
	}
	return imaging.Clamp(remap.Apply(rec)), nil
}
