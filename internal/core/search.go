package core

import (
	"math"

	"p3/internal/imaging"
	"p3/internal/jpegx"
)

// Reverse-engineering of an unknown PSP resize pipeline (paper §4.1): the
// proxy uploads a calibration image, downloads the PSP's transformed output,
// and exhaustively searches a space of candidate pipelines — resize filter,
// pre-blur, post-sharpen, gamma — for the one whose output best matches.
// The winning pipeline is then used as the operator A in Eq. (2)
// reconstruction. The paper reports this recovers 34.4 dB against Facebook
// and 39.8 dB against Flickr; the search need only be repeated when a PSP
// changes its pipeline.

// PipelineParams parameterizes a candidate PSP pipeline independent of the
// resize target, so a pipeline calibrated at one size can be re-instantiated
// for any photo's variant dimensions.
type PipelineParams struct {
	Filter        imaging.Filter
	PreBlur       float64 // Gaussian σ before decimation (0 = none)
	SharpenAmount float64 // unsharp-mask amount after resize (0 = none)
	Gamma         float64 // pointwise gamma (1 = none)
}

// Instantiate builds the concrete operator resizing to w×h.
func (p PipelineParams) Instantiate(w, h int) imaging.Op {
	var ops imaging.Compose
	if p.PreBlur > 0 {
		ops = append(ops, imaging.GaussianBlur{Sigma: p.PreBlur})
	}
	ops = append(ops, imaging.Resize{W: w, H: h, Filter: p.Filter})
	if p.SharpenAmount > 0 {
		ops = append(ops, imaging.Sharpen{Sigma: 1, Amount: p.SharpenAmount})
	}
	if p.Gamma != 0 && p.Gamma != 1 {
		ops = append(ops, imaging.Gamma{G: p.Gamma})
	}
	return ops
}

// CandidateParams enumerates the search grid, mirroring the paper's "salient
// options based on commonly-used resizing techniques": every filter kernel
// crossed with light pre-blur, post-sharpen and gamma settings.
func CandidateParams() []PipelineParams {
	var out []PipelineParams
	blurs := []float64{0, 0.5}
	sharpens := []float64{0, 0.5, 1.0}
	gammas := []float64{1.0, 0.9, 1.1}
	for _, f := range imaging.Filters() {
		for _, b := range blurs {
			for _, s := range sharpens {
				for _, g := range gammas {
					out = append(out, PipelineParams{Filter: f, PreBlur: b, SharpenAmount: s, Gamma: g})
				}
			}
		}
	}
	return out
}

// CandidatePipelines instantiates the full grid for a resize to w×h.
func CandidatePipelines(w, h int) []imaging.Op {
	params := CandidateParams()
	out := make([]imaging.Op, len(params))
	for i, p := range params {
		out[i] = p.Instantiate(w, h)
	}
	return out
}

// SearchParams finds the grid parameters whose instantiated pipeline best
// reproduces output from input, returning them alongside the match quality.
// This is the calibration step a proxy runs once per PSP (§4.1): it uploads
// input, downloads the PSP's output, and sweeps the grid.
func SearchParams(input, output *jpegx.PlanarImage) (PipelineParams, SearchResult) {
	params := CandidateParams()
	best := SearchResult{MSE: math.Inf(1)}
	var bestP PipelineParams
	for _, p := range params {
		op := p.Instantiate(output.Width, output.Height)
		got := op.Apply(input)
		mse := clampedMSE(got, output)
		if mse < best.MSE {
			best = SearchResult{Op: op, MSE: mse}
			bestP = p
		}
	}
	if best.MSE > 0 && !math.IsInf(best.MSE, 1) {
		best.PSNR = 10 * math.Log10(255*255/best.MSE)
	} else if best.MSE == 0 {
		best.PSNR = math.Inf(1)
	}
	return bestP, best
}

// SearchResult reports the best-matching candidate pipeline.
type SearchResult struct {
	Op   imaging.Op
	MSE  float64 // mean squared error against the PSP output
	PSNR float64 // equivalent PSNR in dB
}

// SearchPipeline finds, among candidates, the pipeline minimizing MSE
// between candidate(input) and the observed PSP output. If candidates is
// nil, CandidatePipelines for the output's dimensions is used. input should
// be the calibration image the proxy uploaded; output the PSP's transformed
// version of it.
func SearchPipeline(input, output *jpegx.PlanarImage, candidates []imaging.Op) SearchResult {
	if candidates == nil {
		candidates = CandidatePipelines(output.Width, output.Height)
	}
	best := SearchResult{MSE: math.Inf(1)}
	for _, op := range candidates {
		got := op.Apply(input)
		if got.Width != output.Width || got.Height != output.Height {
			continue
		}
		mse := clampedMSE(got, output)
		if mse < best.MSE {
			best = SearchResult{Op: op, MSE: mse}
		}
	}
	if best.MSE > 0 && !math.IsInf(best.MSE, 1) {
		best.PSNR = 10 * math.Log10(255*255/best.MSE)
	} else if best.MSE == 0 {
		best.PSNR = math.Inf(1)
	}
	return best
}

// clampedMSE compares images after clamping to displayable range, because
// the PSP output went through an 8-bit JPEG.
func clampedMSE(a, b *jpegx.PlanarImage) float64 {
	var sum float64
	var n int
	for pi := range a.Planes {
		pa, pb := a.Planes[pi], b.Planes[pi]
		for i := range pa {
			va, vb := clampf(pa[i]), clampf(pb[i])
			d := va - vb
			sum += d * d
			n++
		}
	}
	return sum / float64(n)
}

func clampf(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}
