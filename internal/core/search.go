package core

import (
	"context"
	"math"

	"p3/internal/imaging"
	"p3/internal/jpegx"
	"p3/internal/work"
)

// Reverse-engineering of an unknown PSP resize pipeline (paper §4.1): the
// proxy uploads a calibration image, downloads the PSP's transformed output,
// and exhaustively searches a space of candidate pipelines — resize filter,
// pre-blur, post-sharpen, gamma — for the one whose output best matches.
// The winning pipeline is then used as the operator A in Eq. (2)
// reconstruction. The paper reports this recovers 34.4 dB against Facebook
// and 39.8 dB against Flickr; the search need only be repeated when a PSP
// changes its pipeline.

// PipelineParams parameterizes a candidate PSP pipeline independent of the
// resize target, so a pipeline calibrated at one size can be re-instantiated
// for any photo's variant dimensions.
type PipelineParams struct {
	Filter        imaging.Filter
	PreBlur       float64 // Gaussian σ before decimation (0 = none)
	SharpenAmount float64 // unsharp-mask amount after resize (0 = none)
	Gamma         float64 // pointwise gamma (1 = none)
}

// Instantiate builds the concrete operator resizing to w×h.
func (p PipelineParams) Instantiate(w, h int) imaging.Op {
	var ops imaging.Compose
	if p.PreBlur > 0 {
		ops = append(ops, imaging.GaussianBlur{Sigma: p.PreBlur})
	}
	ops = append(ops, imaging.Resize{W: w, H: h, Filter: p.Filter})
	if p.SharpenAmount > 0 {
		ops = append(ops, imaging.Sharpen{Sigma: 1, Amount: p.SharpenAmount})
	}
	if p.Gamma != 0 && p.Gamma != 1 {
		ops = append(ops, imaging.Gamma{G: p.Gamma})
	}
	return ops
}

// CandidateParams enumerates the search grid, mirroring the paper's "salient
// options based on commonly-used resizing techniques": every filter kernel
// crossed with light pre-blur, post-sharpen and gamma settings.
func CandidateParams() []PipelineParams {
	var out []PipelineParams
	blurs := []float64{0, 0.5}
	sharpens := []float64{0, 0.5, 1.0}
	gammas := []float64{1.0, 0.9, 1.1}
	for _, f := range imaging.Filters() {
		for _, b := range blurs {
			for _, s := range sharpens {
				for _, g := range gammas {
					out = append(out, PipelineParams{Filter: f, PreBlur: b, SharpenAmount: s, Gamma: g})
				}
			}
		}
	}
	return out
}

// CandidatePipelines instantiates the full grid for a resize to w×h.
func CandidatePipelines(w, h int) []imaging.Op {
	params := CandidateParams()
	out := make([]imaging.Op, len(params))
	for i, p := range params {
		out[i] = p.Instantiate(w, h)
	}
	return out
}

// CalibrationEpoch is one immutable, versioned identification of a PSP
// pipeline. A proxy publishes a new value atomically each time calibration
// lands new parameters; readers snapshot the pointer once and use Epoch and
// Params together, so a request can never pair one epoch's cache key with
// another epoch's operator.
type CalibrationEpoch struct {
	Epoch  uint64         // monotonically increasing; 1 = first calibration
	Params PipelineParams // identified pipeline, used as Eq. (2)'s operator A
	Result SearchResult   // match quality of the sweep (or probe) that set it
}

// SearchParams finds the grid parameters whose instantiated pipeline best
// reproduces output from input, returning them alongside the match quality.
// This is the calibration step a proxy runs once per PSP (§4.1): it uploads
// input, downloads the PSP's output, and sweeps the grid.
func SearchParams(input, output *jpegx.PlanarImage) (PipelineParams, SearchResult) {
	p, res, _ := SearchParamsCtx(context.Background(), input, output, nil)
	return p, res
}

// SearchParamsCtx is SearchParams with cancellation and parallelism: the
// candidate grid is swept on pool (nil runs sequentially), and ctx is
// checked before each candidate so an abandoned calibration stops burning
// cores mid-sweep instead of leaking a multi-second search. The winner is
// deterministic regardless of scheduling — every candidate's error is
// scored independently and the lowest-index minimum wins — so the parallel
// sweep returns exactly what the sequential one would.
func SearchParamsCtx(ctx context.Context, input, output *jpegx.PlanarImage, pool *work.Pool) (PipelineParams, SearchResult, error) {
	params := CandidateParams()
	mses := make([]float64, len(params))
	err := pool.Do(len(params), func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		op := params[i].Instantiate(output.Width, output.Height)
		mses[i] = clampedMSE(op.Apply(input), output)
		return nil
	})
	if err != nil {
		return PipelineParams{}, SearchResult{}, err
	}
	bestI, bestMSE := 0, math.Inf(1)
	for i, mse := range mses {
		if mse < bestMSE {
			bestI, bestMSE = i, mse
		}
	}
	bestP := params[bestI]
	best := SearchResult{Op: bestP.Instantiate(output.Width, output.Height), MSE: bestMSE}
	finishPSNR(&best)
	return bestP, best, nil
}

// Verify measures how well p reproduces output from input — the
// single-candidate probe an incremental recalibration runs to decide
// whether the currently published parameters still match the PSP, before
// committing to the 72-candidate full sweep.
func (p PipelineParams) Verify(input, output *jpegx.PlanarImage) SearchResult {
	op := p.Instantiate(output.Width, output.Height)
	res := SearchResult{Op: op, MSE: clampedMSE(op.Apply(input), output)}
	finishPSNR(&res)
	return res
}

// finishPSNR derives the dB view of an MSE score in place.
func finishPSNR(r *SearchResult) {
	if r.MSE > 0 && !math.IsInf(r.MSE, 1) {
		r.PSNR = 10 * math.Log10(255*255/r.MSE)
	} else if r.MSE == 0 {
		r.PSNR = math.Inf(1)
	}
}

// SearchResult reports the best-matching candidate pipeline.
type SearchResult struct {
	Op   imaging.Op
	MSE  float64 // mean squared error against the PSP output
	PSNR float64 // equivalent PSNR in dB
}

// SearchPipeline finds, among candidates, the pipeline minimizing MSE
// between candidate(input) and the observed PSP output. If candidates is
// nil, CandidatePipelines for the output's dimensions is used. input should
// be the calibration image the proxy uploaded; output the PSP's transformed
// version of it.
func SearchPipeline(input, output *jpegx.PlanarImage, candidates []imaging.Op) SearchResult {
	if candidates == nil {
		candidates = CandidatePipelines(output.Width, output.Height)
	}
	best := SearchResult{MSE: math.Inf(1)}
	for _, op := range candidates {
		got := op.Apply(input)
		if got.Width != output.Width || got.Height != output.Height {
			continue
		}
		mse := clampedMSE(got, output)
		if mse < best.MSE {
			best = SearchResult{Op: op, MSE: mse}
		}
	}
	finishPSNR(&best)
	return best
}

// clampedMSE compares images after clamping to displayable range, because
// the PSP output went through an 8-bit JPEG.
func clampedMSE(a, b *jpegx.PlanarImage) float64 {
	var sum float64
	var n int
	for pi := range a.Planes {
		pa, pb := a.Planes[pi], b.Planes[pi]
		for i := range pa {
			va, vb := clampf(pa[i]), clampf(pb[i])
			d := va - vb
			sum += d * d
			n++
		}
	}
	return sum / float64(n)
}

func clampf(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}
