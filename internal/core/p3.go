package core

import (
	"bytes"
	"fmt"
	"io"

	"p3/internal/imaging"
	"p3/internal/jpegx"
)

// DefaultThreshold is the paper's recommended operating point: §5.2.1 finds
// the knee of the secret-size curve at T in 15–20, where the secret part is
// about 20% of the original and total overhead 5–10%, and all §5.2.2 privacy
// attacks remain ineffective.
const DefaultThreshold = 15

// Options configures the high-level split.
type Options struct {
	// Threshold is the AC clipping threshold T. 0 means DefaultThreshold.
	// Lower values move more signal into the secret part (more privacy,
	// larger secret); higher values shrink the secret part.
	Threshold int

	// OptimizeHuffman re-derives entropy tables for the two parts. The
	// split shrinks coefficient entropy in both parts (§3.4), so optimized
	// tables recover most of the split's storage overhead. Enabled by
	// default in SplitJPEG via DefaultOptions.
	OptimizeHuffman bool
}

// DefaultOptions are the options used when SplitJPEG receives nil.
var DefaultOptions = Options{Threshold: DefaultThreshold, OptimizeHuffman: true}

// SplitOutput is the result of splitting a JPEG.
type SplitOutput struct {
	// PublicJPEG is the standards-compliant public part, safe to upload to
	// an untrusted PSP.
	PublicJPEG []byte

	// SecretBlob is the encrypted secret container for the storage
	// provider (also untrusted; the blob is AES-encrypted and MACed).
	SecretBlob []byte

	// Threshold echoes the T used.
	Threshold int

	// SecretJPEGLen is the size of the secret part before encryption,
	// used by the storage-overhead accounting of Fig. 5.
	SecretJPEGLen int
}

// SplitJPEG decodes a JPEG, splits it at opts.Threshold, serializes the
// public part as a JPEG and the secret part as an encrypted JPEG container.
// Application markers from the input are dropped from the public part (they
// may leak EXIF data and PSPs strip them anyway).
func SplitJPEG(jpegBytes []byte, key Key, opts *Options) (*SplitOutput, error) {
	var s SplitScratch
	out, err := splitJPEGInto(jpegBytes, key, opts, &s)
	if err != nil {
		return nil, err
	}
	out.PublicJPEG = s.pubBuf.Bytes()
	return out, nil
}

// SplitScratch is the reusable working set of SplitJPEGScratch: the encode
// buffers and the public/secret coefficient images a split writes into. The
// zero value is ready to use; a pooled caller hands the same scratch back on
// every call and same-geometry photos recycle all of it.
type SplitScratch struct {
	pubBuf, secBuf bytes.Buffer
	pubIm, secIm   *jpegx.CoeffImage
}

// SplitJPEGScratch is SplitJPEG reusing s across calls, so a long-lived
// caller (e.g. a pooled facade codec) avoids re-allocating the coefficient
// arrays and re-growing encode buffers on every photo. The returned
// SplitOutput owns copies of the bytes it carries; s may be reused
// immediately.
func SplitJPEGScratch(jpegBytes []byte, key Key, opts *Options, s *SplitScratch) (*SplitOutput, error) {
	if s == nil {
		s = new(SplitScratch)
	}
	out, err := splitJPEGInto(jpegBytes, key, opts, s)
	if err != nil {
		return nil, err
	}
	out.PublicJPEG = append(make([]byte, 0, s.pubBuf.Len()), s.pubBuf.Bytes()...)
	return out, nil
}

// splitJPEGInto performs the split, leaving the serialized public part in
// s.pubBuf; the caller decides whether to alias or copy it into the output.
func splitJPEGInto(jpegBytes []byte, key Key, opts *Options, s *SplitScratch) (*SplitOutput, error) {
	if opts == nil {
		o := DefaultOptions
		opts = &o
	}
	t := opts.Threshold
	if t == 0 {
		t = DefaultThreshold
	}
	im, err := jpegx.Decode(bytes.NewReader(jpegBytes))
	if err != nil {
		return nil, fmt.Errorf("core: decoding input: %w", err)
	}
	im.StripMarkers()
	pub, sec, err := SplitInto(im, t, s.pubIm, s.secIm)
	if err != nil {
		return nil, err
	}
	s.pubIm, s.secIm = pub, sec
	pubBuf, secBuf := &s.pubBuf, &s.secBuf
	enc := &jpegx.EncodeOptions{OptimizeHuffman: opts.OptimizeHuffman}
	pubBuf.Reset()
	secBuf.Reset()
	if err := jpegx.EncodeCoeffs(pubBuf, pub, enc); err != nil {
		return nil, fmt.Errorf("core: encoding public part: %w", err)
	}
	if err := jpegx.EncodeCoeffs(secBuf, sec, enc); err != nil {
		return nil, fmt.Errorf("core: encoding secret part: %w", err)
	}
	blob, err := SealSecret(key, t, secBuf.Bytes())
	if err != nil {
		return nil, err
	}
	return &SplitOutput{
		SecretBlob:    blob,
		Threshold:     t,
		SecretJPEGLen: secBuf.Len(),
	}, nil
}

// JoinJPEG reconstructs the original JPEG from an *unprocessed* public part
// and the secret container, recombining exactly in the coefficient domain
// and re-encoding. The output decodes to pixels identical to the original
// image's.
func JoinJPEG(publicJPEG, secretBlob []byte, key Key) ([]byte, error) {
	var buf bytes.Buffer
	if err := JoinJPEGTo(&buf, publicJPEG, secretBlob, key); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// JoinJPEGTo is JoinJPEG streaming: the reconstructed JPEG is encoded
// directly into w, so callers piping to a file or socket never hold the
// output in memory.
func JoinJPEGTo(w io.Writer, publicJPEG, secretBlob []byte, key Key) error {
	pub, sec, t, err := decodeParts(publicJPEG, secretBlob, key)
	if err != nil {
		return err
	}
	orig, err := ReconstructCoeffs(pub, sec, t)
	if err != nil {
		return err
	}
	return jpegx.EncodeCoeffs(w, orig, &jpegx.EncodeOptions{OptimizeHuffman: true})
}

// JoinProcessed reconstructs pixels when the PSP applied a (possibly
// unknown, see SearchPipeline) linear transform op to the public part.
// publicJPEG is the transformed public part as served by the PSP.
func JoinProcessed(publicJPEG, secretBlob []byte, key Key, op imaging.Op) (*jpegx.PlanarImage, error) {
	pubIm, err := jpegx.Decode(bytes.NewReader(publicJPEG))
	if err != nil {
		return nil, fmt.Errorf("core: decoding public part: %w", err)
	}
	t, secJPEG, err := OpenSecret(key, secretBlob)
	if err != nil {
		return nil, err
	}
	sec, err := jpegx.Decode(bytes.NewReader(secJPEG))
	if err != nil {
		return nil, fmt.Errorf("core: decoding secret part: %w", err)
	}
	return ReconstructPixels(pubIm.ToPlanar(), sec, t, op)
}

// decodeParts decodes both parts and checks their compatibility.
func decodeParts(publicJPEG, secretBlob []byte, key Key) (pub, sec *jpegx.CoeffImage, threshold int, err error) {
	pub, err = jpegx.Decode(bytes.NewReader(publicJPEG))
	if err != nil {
		return nil, nil, 0, fmt.Errorf("core: decoding public part: %w", err)
	}
	threshold, secJPEG, err := OpenSecret(key, secretBlob)
	if err != nil {
		return nil, nil, 0, err
	}
	sec, err = jpegx.Decode(bytes.NewReader(secJPEG))
	if err != nil {
		return nil, nil, 0, fmt.Errorf("core: decoding secret part: %w", err)
	}
	if err := compatible(pub, sec); err != nil {
		return nil, nil, 0, err
	}
	return pub, sec, threshold, nil
}
