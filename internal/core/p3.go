package core

import (
	"bytes"
	"fmt"
	"io"

	"p3/internal/imaging"
	"p3/internal/jpegx"
	"p3/internal/work"
)

// DefaultThreshold is the paper's recommended operating point: §5.2.1 finds
// the knee of the secret-size curve at T in 15–20, where the secret part is
// about 20% of the original and total overhead 5–10%, and all §5.2.2 privacy
// attacks remain ineffective.
const DefaultThreshold = 15

// Options configures the high-level split.
type Options struct {
	// Threshold is the AC clipping threshold T. 0 means DefaultThreshold.
	// Lower values move more signal into the secret part (more privacy,
	// larger secret); higher values shrink the secret part.
	Threshold int

	// OptimizeHuffman re-derives entropy tables for the two parts. The
	// split shrinks coefficient entropy in both parts (§3.4), so optimized
	// tables recover most of the split's storage overhead. Enabled by
	// default in SplitJPEG via DefaultOptions.
	OptimizeHuffman bool

	// Workers is the bounded worker pool the split and join pipelines fan
	// their band work out on: the threshold split and coefficient
	// recombination run as bands of block rows, the public and secret parts
	// encode (and decode) concurrently, and the encoder's statistics pass
	// parallelizes per band. nil runs everything sequentially with outputs
	// byte-identical to the parallel runs.
	Workers *work.Pool
}

// DefaultOptions are the options used when SplitJPEG receives nil.
var DefaultOptions = Options{Threshold: DefaultThreshold, OptimizeHuffman: true}

// SplitOutput is the result of splitting a JPEG.
type SplitOutput struct {
	// PublicJPEG is the standards-compliant public part, safe to upload to
	// an untrusted PSP.
	PublicJPEG []byte

	// SecretBlob is the encrypted secret container for the storage
	// provider (also untrusted; the blob is AES-encrypted and MACed).
	SecretBlob []byte

	// Threshold echoes the T used.
	Threshold int

	// SecretJPEGLen is the size of the secret part before encryption,
	// used by the storage-overhead accounting of Fig. 5.
	SecretJPEGLen int
}

// SplitJPEG decodes a JPEG, splits it at opts.Threshold, serializes the
// public part as a JPEG and the secret part as an encrypted JPEG container.
// Application markers from the input are dropped from the public part (they
// may leak EXIF data and PSPs strip them anyway).
func SplitJPEG(jpegBytes []byte, key Key, opts *Options) (*SplitOutput, error) {
	var s SplitScratch
	out, err := splitJPEGInto(jpegBytes, key, opts, &s)
	if err != nil {
		return nil, err
	}
	out.PublicJPEG = s.pubBuf.Bytes()
	return out, nil
}

// SplitScratch is the reusable working set of SplitJPEGScratch: the decode
// destination and decoder state (Huffman LUTs, bit reader, MCU buffers), the
// encode buffers, and the public/secret coefficient images a split writes
// into. The zero value is ready to use; a pooled caller hands the same
// scratch back on every call and same-geometry photos recycle all of it.
type SplitScratch struct {
	pubBuf, secBuf bytes.Buffer
	pubIm, secIm   *jpegx.CoeffImage
	srcIm          *jpegx.CoeffImage
	dec            jpegx.DecoderScratch
	pubNZ, secNZ   [][]uint64
}

// SplitJPEGScratch is SplitJPEG reusing s across calls, so a long-lived
// caller (e.g. a pooled facade codec) avoids re-allocating the coefficient
// arrays and re-growing encode buffers on every photo. The returned
// SplitOutput owns copies of the bytes it carries; s may be reused
// immediately.
func SplitJPEGScratch(jpegBytes []byte, key Key, opts *Options, s *SplitScratch) (*SplitOutput, error) {
	if s == nil {
		s = new(SplitScratch)
	}
	out, err := splitJPEGInto(jpegBytes, key, opts, s)
	if err != nil {
		return nil, err
	}
	out.PublicJPEG = append(make([]byte, 0, s.pubBuf.Len()), s.pubBuf.Bytes()...)
	return out, nil
}

// splitJPEGInto performs the split, leaving the serialized public part in
// s.pubBuf; the caller decides whether to alias or copy it into the output.
func splitJPEGInto(jpegBytes []byte, key Key, opts *Options, s *SplitScratch) (*SplitOutput, error) {
	if opts == nil {
		o := DefaultOptions
		opts = &o
	}
	t := opts.Threshold
	if t == 0 {
		t = DefaultThreshold
	}
	if t < 1 || t > MaxThreshold {
		return nil, fmt.Errorf("core: threshold %d out of range [1, %d]", t, MaxThreshold)
	}
	pool := opts.Workers
	// The fused fast path captures both parts' entropy token streams during
	// the decode itself (see jpegx.DecodeBytesSplit): the canonical baseline
	// shape mirrors the split structure symbol for symbol, so serializing a
	// part is table derivation plus a linear token replay — no split walk, no
	// statistics pass, no coefficient images for the parts.
	im, cap, err := jpegx.DecodeBytesSplit(jpegBytes, t, s.srcIm, &s.dec)
	if err != nil {
		return nil, fmt.Errorf("core: decoding input: %w", err)
	}
	s.srcIm = im
	im.StripMarkers()
	pubBuf, secBuf := &s.pubBuf, &s.secBuf
	pubBuf.Reset()
	secBuf.Reset()
	if cap != nil {
		defer cap.Release()
		// The two parts write to separate buffers and only read the capture,
		// so they entropy-encode concurrently.
		if err := pool.Do(2, func(i int) error {
			if i == 0 {
				if err := cap.EncodePublic(pubBuf, im, opts.OptimizeHuffman); err != nil {
					return fmt.Errorf("core: encoding public part: %w", err)
				}
				return nil
			}
			if err := cap.EncodeSecret(secBuf, im, opts.OptimizeHuffman); err != nil {
				return fmt.Errorf("core: encoding secret part: %w", err)
			}
			return nil
		}); err != nil {
			return nil, err
		}
	} else if err := s.splitSlow(im, t, opts, pool); err != nil {
		return nil, err
	}
	blob, err := SealSecret(key, t, secBuf.Bytes())
	if err != nil {
		return nil, err
	}
	return &SplitOutput{
		SecretBlob:    blob,
		Threshold:     t,
		SecretJPEGLen: secBuf.Len(),
	}, nil
}

// splitSlow is the reference split pipeline for stream shapes the fused
// capture does not mirror (progressive sources, multi-scan or non-canonical
// baseline layouts): split the decoded coefficients into public and secret
// images, then encode each. The split walk derives each output's AC nonzero
// maps for free and hands them to the encoders, sparing their statistics
// passes the per-block coefficient scan. Outputs are byte-identical to the
// fused path for any stream both can handle.
func (s *SplitScratch) splitSlow(im *jpegx.CoeffImage, t int, opts *Options, pool *work.Pool) error {
	s.pubNZ = nzMaps(im, s.pubNZ)
	s.secNZ = nzMaps(im, s.secNZ)
	pub, sec, err := splitIntoMasked(im, t, s.pubIm, s.secIm, pool, s.pubNZ, s.secNZ)
	if err != nil {
		return err
	}
	s.pubIm, s.secIm = pub, sec
	pubEnc := &jpegx.EncodeOptions{OptimizeHuffman: opts.OptimizeHuffman, Workers: pool, NZHint: s.pubNZ}
	secEnc := &jpegx.EncodeOptions{OptimizeHuffman: opts.OptimizeHuffman, Workers: pool, NZHint: s.secNZ}
	return pool.Do(2, func(i int) error {
		if i == 0 {
			if err := jpegx.EncodeCoeffs(&s.pubBuf, pub, pubEnc); err != nil {
				return fmt.Errorf("core: encoding public part: %w", err)
			}
			return nil
		}
		if err := jpegx.EncodeCoeffs(&s.secBuf, sec, secEnc); err != nil {
			return fmt.Errorf("core: encoding secret part: %w", err)
		}
		return nil
	})
}

// JoinJPEG reconstructs the original JPEG from an *unprocessed* public part
// and the secret container, recombining exactly in the coefficient domain
// and re-encoding. The output decodes to pixels identical to the original
// image's.
func JoinJPEG(publicJPEG, secretBlob []byte, key Key) ([]byte, error) {
	var buf bytes.Buffer
	if err := JoinJPEGTo(&buf, publicJPEG, secretBlob, key); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// JoinJPEGTo is JoinJPEG streaming: the reconstructed JPEG is encoded
// directly into w, so callers piping to a file or socket never hold the
// output in memory.
func JoinJPEGTo(w io.Writer, publicJPEG, secretBlob []byte, key Key) error {
	return JoinJPEGToScratch(w, publicJPEG, secretBlob, key, nil, nil)
}

// JoinScratch is the reusable working set of JoinJPEGToScratch: the decode
// destinations and decoder state for the two parts and the reconstructed
// coefficient image. The zero value is ready to use. A scratch must not be
// shared by concurrent joins.
type JoinScratch struct {
	pubIm, secIm, outIm *jpegx.CoeffImage
	pubDec, secDec      jpegx.DecoderScratch
}

// JoinJPEGToScratch is JoinJPEGTo reusing s across calls (nil allocates
// fresh state) and running the pipeline on opts.Workers: the two parts
// decode concurrently (each with its own decoder scratch), the coefficient
// recombination runs as bands of block rows, and the final encode
// parallelizes its statistics pass. Output bytes are identical to the
// sequential join.
func JoinJPEGToScratch(w io.Writer, publicJPEG, secretBlob []byte, key Key, opts *Options, s *JoinScratch) error {
	if s == nil {
		s = new(JoinScratch)
	}
	var pool *work.Pool
	if opts != nil {
		pool = opts.Workers
	}
	threshold, secJPEG, err := OpenSecret(key, secretBlob)
	if err != nil {
		return err
	}
	err = pool.Do(2, func(i int) error {
		if i == 0 {
			im, err := jpegx.DecodeBytesInto(publicJPEG, s.pubIm, &s.pubDec)
			if err != nil {
				return fmt.Errorf("core: decoding public part: %w", err)
			}
			s.pubIm = im
			return nil
		}
		im, err := jpegx.DecodeBytesInto(secJPEG, s.secIm, &s.secDec)
		if err != nil {
			return fmt.Errorf("core: decoding secret part: %w", err)
		}
		s.secIm = im
		return nil
	})
	if err != nil {
		return err
	}
	orig, err := ReconstructCoeffsInto(s.pubIm, s.secIm, threshold, s.outIm, pool)
	if err != nil {
		return err
	}
	s.outIm = orig
	return jpegx.EncodeCoeffs(w, orig, &jpegx.EncodeOptions{OptimizeHuffman: true, Workers: pool})
}

// JoinProcessed reconstructs pixels when the PSP applied a (possibly
// unknown, see SearchPipeline) linear transform op to the public part.
// publicJPEG is the transformed public part as served by the PSP.
func JoinProcessed(publicJPEG, secretBlob []byte, key Key, op imaging.Op) (*jpegx.PlanarImage, error) {
	pubIm, err := jpegx.DecodeBytes(publicJPEG)
	if err != nil {
		return nil, fmt.Errorf("core: decoding public part: %w", err)
	}
	t, secJPEG, err := OpenSecret(key, secretBlob)
	if err != nil {
		return nil, err
	}
	sec, err := jpegx.DecodeBytes(secJPEG)
	if err != nil {
		return nil, fmt.Errorf("core: decoding secret part: %w", err)
	}
	return ReconstructPixels(pubIm.ToPlanar(), sec, t, op)
}
