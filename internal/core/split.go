// Package core implements the P3 privacy-preserving photo encoding
// algorithm of Ra, Govindan and Ortega (NSDI 2013): threshold-based
// splitting of a JPEG's quantized DCT coefficients into a public part that
// carries most of the bytes and a secret part that carries most of the
// information, plus the sign-correcting reconstruction that recombines them
// exactly — including after the public part has been processed by an
// arbitrary linear PSP-side transformation (resize, crop, filter).
package core

import (
	"errors"
	"fmt"

	"p3/internal/jpegx"
	"p3/internal/work"
)

// MaxThreshold bounds the splitting threshold. AC coefficients of an 8-bit
// baseline JPEG lie in [-1023, 1023]; thresholds beyond that would make the
// secret part empty of AC information.
const MaxThreshold = 1023

// Split divides a coefficient image into public and secret parts using the
// paper's threshold rule (§3.2, Fig. 1):
//
//   - Every DC coefficient moves to the secret part; the public DC becomes
//     zero. (DC alone reconstructs a recognizable thumbnail, so it must not
//     remain public.)
//   - An AC coefficient y with |y| ≤ T stays in the public part as is; the
//     secret entry is zero.
//   - An AC coefficient y with |y| > T is clipped: the public part gets T
//     (magnitude only — the sign moves to the secret part, which is what
//     makes the public part useless to attackers), and the secret part gets
//     sign(y)·(|y|−T).
//
// Both returned images share im's geometry, sampling and quantization
// tables, and both are encodable as standards-compliant JPEGs.
func Split(im *jpegx.CoeffImage, threshold int) (pub, sec *jpegx.CoeffImage, err error) {
	return SplitInto(im, threshold, nil, nil, nil)
}

// blockBand is one work item of the band pipeline: block rows [r0, r1) of
// component ci. Bands of different work items never overlap, so band workers
// write disjoint memory and the result is independent of scheduling.
type blockBand struct {
	ci, r0, r1 int
}

// blockBands cuts every component of im into at most per bands of block
// rows.
func blockBands(im *jpegx.CoeffImage, per int) []blockBand {
	bands := make([]blockBand, 0, per*len(im.Components))
	for ci := range im.Components {
		by := im.Components[ci].BlocksY
		n := per
		if n > by {
			n = by
		}
		for i := 0; i < n; i++ {
			r0, r1 := by*i/n, by*(i+1)/n
			if r0 < r1 {
				bands = append(bands, blockBand{ci: ci, r0: r0, r1: r1})
			}
		}
	}
	return bands
}

// SplitInto is Split reusing the storage of pub and sec (results of a
// previous call, or nil) for the two output images, so a pooled caller
// avoids re-allocating the coefficient arrays for every same-geometry photo.
// The split runs as bands of block rows on pool (nil = sequential); every
// coefficient of both outputs is written by exactly one band, so the result
// is byte-identical whatever the parallelism.
func SplitInto(im *jpegx.CoeffImage, threshold int, pubDst, secDst *jpegx.CoeffImage, pool *work.Pool) (pub, sec *jpegx.CoeffImage, err error) {
	return splitIntoMasked(im, threshold, pubDst, secDst, pool, nil, nil)
}

// splitIntoMasked is SplitInto optionally recording, for every block of both
// outputs, the nonzero map of its AC coefficients in zigzag positions (the
// format of jpegx.EncodeOptions.NZHint). The split touches every coefficient
// anyway, so deriving the maps here spares the encoder's statistics pass its
// 63-slot scan of every block. pubNZ and secNZ must be nil or sized by nzMaps.
func splitIntoMasked(im *jpegx.CoeffImage, threshold int, pubDst, secDst *jpegx.CoeffImage, pool *work.Pool, pubNZ, secNZ [][]uint64) (pub, sec *jpegx.CoeffImage, err error) {
	if im == nil {
		return nil, nil, errors.New("core: nil image")
	}
	if threshold < 1 || threshold > MaxThreshold {
		return nil, nil, fmt.Errorf("core: threshold %d out of range [1, %d]", threshold, MaxThreshold)
	}
	// Shape-only clones: splitBand overwrites all 64 coefficients of every
	// block, so copying the source blocks here would be pure waste.
	pub = im.CloneShapeInto(pubDst)
	sec = im.CloneShapeInto(secDst)
	bands := blockBands(im, pool.Size())
	t := int32(threshold)
	_ = pool.Do(len(bands), func(i int) error {
		b := bands[i]
		var pm, sm []uint64
		if pubNZ != nil {
			pm, sm = pubNZ[b.ci], secNZ[b.ci]
		}
		splitBand(im, pub, sec, t, b, pm, sm)
		return nil
	})
	return pub, sec, nil
}

// nzMaps sizes per-component nonzero-map storage for im's geometry, reusing
// prev's allocations when they suffice.
func nzMaps(im *jpegx.CoeffImage, prev [][]uint64) [][]uint64 {
	if cap(prev) >= len(im.Components) {
		prev = prev[:len(im.Components)]
	} else {
		prev = make([][]uint64, len(im.Components))
	}
	for ci := range im.Components {
		n := len(im.Components[ci].Blocks)
		if cap(prev[ci]) >= n {
			prev[ci] = prev[ci][:n]
		} else {
			prev[ci] = make([]uint64, n)
		}
	}
	return prev
}

// acZigzagPos[k] is the zigzag position of natural-order index k, the bit
// position of coefficient k in the per-block nonzero maps.
var acZigzagPos [64]uint

func init() {
	for k := range acZigzagPos {
		acZigzagPos[k] = uint(jpegx.Unzigzag(k))
	}
}

// splitBand applies the threshold rule to one band; pm and sm, when non-nil,
// receive the AC nonzero maps of the band's public and secret blocks.
func splitBand(im, pub, sec *jpegx.CoeffImage, t int32, b blockBand, pm, sm []uint64) {
	src := &im.Components[b.ci]
	pb := pub.Components[b.ci].Blocks
	sb := sec.Components[b.ci].Blocks
	for bi := b.r0 * src.BlocksX; bi < b.r1*src.BlocksX; bi++ {
		y := &src.Blocks[bi]
		p, s := &pb[bi], &sb[bi]
		// DC extraction.
		p[0] = 0
		s[0] = y[0]
		var pmask, smask uint64
		for k := 1; k < 64; k++ {
			v := y[k]
			if uint32(v+t) <= uint32(2*t) { // |v| ≤ t: the common case, one compare
				p[k] = v
				s[k] = 0
				// Branchless nonzero bit: v|−v has its sign bit set iff v ≠ 0.
				pmask |= uint64(uint32(v|-v)>>31) << acZigzagPos[k]
				continue
			}
			// Clipped: public gets T (≥ 1, always nonzero), secret gets the
			// nonzero remainder sign(v)·(|v|−T).
			bit := uint64(1) << acZigzagPos[k]
			pmask |= bit
			smask |= bit
			if v > t {
				p[k] = t
				s[k] = v - t
			} else {
				p[k] = t // sign is withheld from the public part
				s[k] = v + t
			}
		}
		if pm != nil {
			pm[bi] = pmask
			sm[bi] = smask
		}
	}
}

// ReconstructCoeffs recombines unprocessed public and secret parts into the
// original coefficient image using the paper's Eq. (1):
//
//	y = Sp·ap + Ss·as + (Ss − Ss²)·w
//
// i.e. y = pub + sec, except that when the secret entry is negative the
// public sign was wrong and a −2T correction applies (pub carries +T for
// every above-threshold coefficient regardless of sign). The recombination
// is exact: Split followed by ReconstructCoeffs is the identity.
func ReconstructCoeffs(pub, sec *jpegx.CoeffImage, threshold int) (*jpegx.CoeffImage, error) {
	return ReconstructCoeffsInto(pub, sec, threshold, nil, nil)
}

// ReconstructCoeffsInto is ReconstructCoeffs reusing dst's storage for the
// output (nil allocates) and running the recombination as bands of block
// rows on pool. Each band fully computes its blocks from the two inputs, so
// the output is byte-identical to the sequential recombination.
func ReconstructCoeffsInto(pub, sec *jpegx.CoeffImage, threshold int, dst *jpegx.CoeffImage, pool *work.Pool) (*jpegx.CoeffImage, error) {
	if err := compatible(pub, sec); err != nil {
		return nil, err
	}
	if threshold < 1 || threshold > MaxThreshold {
		return nil, fmt.Errorf("core: threshold %d out of range [1, %d]", threshold, MaxThreshold)
	}
	t := int32(threshold)
	out := pub.CloneShapeInto(dst)
	bands := blockBands(pub, pool.Size())
	_ = pool.Do(len(bands), func(i int) error {
		b := bands[i]
		pb := pub.Components[b.ci].Blocks
		ob := out.Components[b.ci].Blocks
		sb := sec.Components[b.ci].Blocks
		bx := pub.Components[b.ci].BlocksX
		for bi := b.r0 * bx; bi < b.r1*bx; bi++ {
			p, o, s := &pb[bi], &ob[bi], &sb[bi]
			// DC: public part holds zero, secret holds the true value.
			o[0] = p[0] + s[0]
			for k := 1; k < 64; k++ {
				v := p[k]
				switch {
				case s[k] > 0:
					v += s[k]
				case s[k] < 0:
					v += s[k] - 2*t
				}
				o[k] = v
			}
		}
		return nil
	})
	return out, nil
}

// CorrectionImage derives the (Ss − Ss²)·w correction term of Eq. (1) as a
// coefficient image: −2T at every position where the secret part is
// negative, zero elsewhere. The paper notes (§3.3) this term depends only on
// the secret part, so a recipient can compute it without the public image
// and transform it alongside the secret when the PSP has processed the
// public part.
func CorrectionImage(sec *jpegx.CoeffImage, threshold int) *jpegx.CoeffImage {
	return CorrectionImagePool(sec, threshold, nil)
}

// CorrectionImagePool is CorrectionImage with the derivation fanned out as
// bands of block rows on pool.
func CorrectionImagePool(sec *jpegx.CoeffImage, threshold int, pool *work.Pool) *jpegx.CoeffImage {
	t := int32(threshold)
	corr := sec.CloneShapeInto(nil)
	bands := blockBands(sec, pool.Size())
	_ = pool.Do(len(bands), func(i int) error {
		b := bands[i]
		cb := corr.Components[b.ci].Blocks
		sb := sec.Components[b.ci].Blocks
		bx := sec.Components[b.ci].BlocksX
		for bi := b.r0 * bx; bi < b.r1*bx; bi++ {
			c, s := &cb[bi], &sb[bi]
			*c = jpegx.Block{}
			for k := 1; k < 64; k++ {
				if s[k] < 0 {
					c[k] = -2 * t
				}
			}
		}
		return nil
	})
	return corr
}

// GuessThreshold mounts the paper's threshold-guessing attack (§3.4). The
// paper frames it as "assume T is the most frequent non-zero value"; for
// natural images, whose AC magnitudes are Laplacian-distributed (magnitude
// 1 always wins a raw popularity contest), the robust formulation is that
// clipping leaves two fingerprints: no AC magnitude exceeds T, and mass
// accumulates at exactly T. So the attacker guesses the maximum magnitude
// when it is anomalously popular relative to its neighbor, falling back to
// the plain mode. Returns 0 if the public part has no non-zero ACs.
func GuessThreshold(pub *jpegx.CoeffImage) int {
	hist := make(map[int32]int)
	var maxMag int32
	for ci := range pub.Components {
		for bi := range pub.Components[ci].Blocks {
			b := &pub.Components[ci].Blocks[bi]
			for k := 1; k < 64; k++ {
				if v := b[k]; v != 0 {
					if v < 0 {
						v = -v
					}
					hist[v]++
					if v > maxMag {
						maxMag = v
					}
				}
			}
		}
	}
	if maxMag == 0 {
		return 0
	}
	// Clipping spike: everything above T collapsed onto T, so the count at
	// the maximum dwarfs the natural tail just below it.
	if maxMag > 1 && hist[maxMag] > hist[maxMag-1] {
		return int(maxMag)
	}
	best, bestN := int32(0), 0
	for v, n := range hist {
		if n > bestN || (n == bestN && v > best) {
			best, bestN = v, n
		}
	}
	return int(best)
}

// compatible verifies two coefficient images share geometry and sampling.
func compatible(a, b *jpegx.CoeffImage) error {
	if a == nil || b == nil {
		return errors.New("core: nil image")
	}
	if a.Width != b.Width || a.Height != b.Height {
		return fmt.Errorf("core: dimension mismatch %dx%d vs %dx%d", a.Width, a.Height, b.Width, b.Height)
	}
	if len(a.Components) != len(b.Components) {
		return fmt.Errorf("core: component count mismatch %d vs %d", len(a.Components), len(b.Components))
	}
	for ci := range a.Components {
		ca, cb := &a.Components[ci], &b.Components[ci]
		if ca.H != cb.H || ca.V != cb.V || ca.BlocksX != cb.BlocksX || ca.BlocksY != cb.BlocksY {
			return fmt.Errorf("core: component %d geometry mismatch", ci)
		}
	}
	return nil
}
