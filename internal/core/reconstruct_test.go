package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"p3/internal/imaging"
	"p3/internal/jpegx"
)

// naturalImage synthesizes a smooth image with edges and texture, then
// round-trips it through JPEG so tests operate on true quantized
// coefficients.
func naturalImage(t *testing.T, rng *rand.Rand, w, h int, sub jpegx.Subsampling) *jpegx.CoeffImage {
	t.Helper()
	img := jpegx.NewPlanarImage(w, h, 3)
	cx, cy := float64(w)/2, float64(h)/2
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			fx, fy := float64(x), float64(y)
			v := 120 + 60*math.Sin(fx/9) + 50*math.Cos(fy/13) + 20*math.Sin((fx+fy)/5)
			if math.Hypot(fx-cx, fy-cy) < float64(min(w, h))/4 {
				v += 55 // a disc "object"
			}
			v += rng.Float64()*8 - 4
			img.Planes[0][i] = clampf(v)
			img.Planes[1][i] = clampf(128 + 40*math.Sin(fx/17))
			img.Planes[2][i] = clampf(128 + 40*math.Cos(fy/23))
		}
	}
	im, err := img.ToCoeffs(92, sub)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func psnr(a, b *jpegx.PlanarImage) float64 {
	var mse float64
	var n int
	for pi := range a.Planes {
		for i := range a.Planes[pi] {
			d := clampf(a.Planes[pi][i]) - clampf(b.Planes[pi][i])
			mse += d * d
			n++
		}
	}
	mse /= float64(n)
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

// TestPixelReconstructionIdentity: pixel-domain recombination with no PSP
// processing must match the coefficient-domain original nearly exactly
// (float DCT rounding only).
func TestPixelReconstructionIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	im := naturalImage(t, rng, 64, 64, jpegx.Sub444)
	for _, threshold := range []int{1, 15, 100} {
		pub, sec, err := Split(im, threshold)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := ReconstructPixels(pub.ToPlanar(), sec, threshold, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := im.ToPlanar()
		if got := psnr(want, rec); got < 55 {
			t.Errorf("T=%d: identity pixel reconstruction PSNR %.1f dB, want >= 55", threshold, got)
		}
	}
}

// TestProcessedReconstruction is the paper's central systems claim (§3.3,
// Eq. (2)): when the PSP applies a known linear operator to the public part,
// applying the same operator to the secret and correction images and adding
// recovers the transformed original almost exactly (~49 dB in the paper).
func TestProcessedReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	im := naturalImage(t, rng, 96, 80, jpegx.Sub444)
	threshold := 15
	pub, sec, err := Split(im, threshold)
	if err != nil {
		t.Fatal(err)
	}
	ops := []imaging.Op{
		imaging.Resize{W: 48, H: 40, Filter: imaging.Triangle},
		imaging.Resize{W: 48, H: 40, Filter: imaging.Lanczos3},
		imaging.Resize{W: 33, H: 21, Filter: imaging.CatmullRom},
		imaging.Resize{W: 130, H: 108, Filter: imaging.CatmullRom}, // upscale
		imaging.Crop{X: 16, Y: 8, W: 40, H: 48},
		imaging.Compose{
			imaging.Crop{X: 8, Y: 8, W: 64, H: 64},
			imaging.Resize{W: 32, H: 32, Filter: imaging.Lanczos3},
			imaging.Sharpen{Sigma: 1, Amount: 0.5},
		},
		imaging.GaussianBlur{Sigma: 1.1},
	}
	orig := im.ToPlanar()
	for _, op := range ops {
		// What the PSP serves: op applied to the *decoded public part*,
		// clamped to 8-bit as a real server would.
		served := imaging.Clamp(op.Apply(pub.ToPlanar()))
		rec, err := ReconstructPixels(served, sec, threshold, op)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		want := imaging.Clamp(op.Apply(orig))
		if got := psnr(want, rec); got < 40 {
			t.Errorf("%s: processed reconstruction PSNR %.1f dB, want >= 40", op, got)
		}
	}
}

// TestProcessedReconstructionWrongOperator: using the wrong filter should
// still produce a viewable image but measurably worse than the right one.
func TestProcessedReconstructionWrongOperator(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	im := naturalImage(t, rng, 96, 96, jpegx.Sub444)
	threshold := 10
	pub, sec, err := Split(im, threshold)
	if err != nil {
		t.Fatal(err)
	}
	truth := imaging.Resize{W: 48, H: 48, Filter: imaging.Lanczos3}
	wrong := imaging.Resize{W: 48, H: 48, Filter: imaging.Box}
	served := imaging.Clamp(truth.Apply(pub.ToPlanar()))
	want := imaging.Clamp(truth.Apply(im.ToPlanar()))
	recRight, err := ReconstructPixels(served, sec, threshold, truth)
	if err != nil {
		t.Fatal(err)
	}
	recWrong, err := ReconstructPixels(served, sec, threshold, wrong)
	if err != nil {
		t.Fatal(err)
	}
	pRight, pWrong := psnr(want, recRight), psnr(want, recWrong)
	if pRight <= pWrong {
		t.Errorf("right-op PSNR %.1f <= wrong-op PSNR %.1f", pRight, pWrong)
	}
	if pWrong < 15 {
		t.Errorf("wrong-op reconstruction PSNR %.1f dB unexpectedly catastrophic", pWrong)
	}
}

func TestReconstructRejectsNonLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	im := naturalImage(t, rng, 32, 32, jpegx.Sub444)
	pub, sec, err := Split(im, 10)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ReconstructPixels(pub.ToPlanar(), sec, 10, imaging.Gamma{G: 2.2})
	if err == nil {
		t.Error("non-linear op must be rejected by ReconstructPixels")
	}
}

// TestReconstructRemapped exercises the §3.3 gamma path: invert the remap,
// reconstruct, re-apply.
func TestReconstructRemapped(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	im := naturalImage(t, rng, 64, 64, jpegx.Sub444)
	threshold := 15
	pub, sec, err := Split(im, threshold)
	if err != nil {
		t.Fatal(err)
	}
	g := imaging.Gamma{G: 1.4}
	// PSP applies gamma only (no resize) to the public part.
	served := imaging.Clamp(g.Apply(pub.ToPlanar()))
	rec, err := ReconstructRemapped(served, sec, threshold, imaging.Identity{}, g)
	if err != nil {
		t.Fatal(err)
	}
	want := imaging.Clamp(g.Apply(im.ToPlanar()))
	if got := psnr(want, rec); got < 25 {
		t.Errorf("gamma remap reconstruction PSNR %.1f dB, want >= 25 (some loss expected)", got)
	}
}

// TestSecretPixelImagesAreDifferences: secret and correction images must be
// zero wherever the original had no DC energy and no above-threshold ACs.
func TestSecretPixelImagesZeroForFlatSecret(t *testing.T) {
	luma, _ := jpegx.StandardQuantTables(90)
	im := &jpegx.CoeffImage{Width: 16, Height: 16}
	im.Quant[0] = &luma
	im.Components = []jpegx.Component{{ID: 1, H: 1, V: 1, TqIndex: 0, BlocksX: 2, BlocksY: 2, Blocks: make([]jpegx.Block, 4)}}
	// All coefficients below threshold: secret is all zeros.
	for bi := range im.Components[0].Blocks {
		im.Components[0].Blocks[bi][1] = 3
	}
	_, sec, err := Split(im, 10)
	if err != nil {
		t.Fatal(err)
	}
	s, c := SecretPixelImages(sec, 10)
	for i := range s.Planes[0] {
		if math.Abs(s.Planes[0][i]) > 1e-9 || math.Abs(c.Planes[0][i]) > 1e-9 {
			t.Fatalf("secret/correction images not zero at %d: %v %v", i, s.Planes[0][i], c.Planes[0][i])
		}
	}
}

func TestJoinJPEGEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	im := naturalImage(t, rng, 72, 56, jpegx.Sub420)
	var buf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&buf, im, nil); err != nil {
		t.Fatal(err)
	}
	key, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	out, err := SplitJPEG(buf.Bytes(), key, &Options{Threshold: 15, OptimizeHuffman: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Threshold != 15 {
		t.Errorf("threshold echoed as %d", out.Threshold)
	}
	joined, err := JoinJPEG(out.PublicJPEG, out.SecretBlob, key)
	if err != nil {
		t.Fatal(err)
	}
	// The joined JPEG must decode to the exact original coefficients.
	got, err := jpegx.Decode(bytes.NewReader(joined))
	if err != nil {
		t.Fatal(err)
	}
	for ci := range im.Components {
		for bi := range im.Components[ci].Blocks {
			if got.Components[ci].Blocks[bi] != im.Components[ci].Blocks[bi] {
				t.Fatal("coefficients corrupted across split/join")
			}
		}
	}
}

func TestJoinProcessedEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	im := naturalImage(t, rng, 80, 80, jpegx.Sub444)
	var buf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&buf, im, nil); err != nil {
		t.Fatal(err)
	}
	key, _ := NewKey()
	out, err := SplitJPEG(buf.Bytes(), key, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the PSP: decode public part, resize, re-encode as JPEG.
	pubIm, err := jpegx.Decode(bytes.NewReader(out.PublicJPEG))
	if err != nil {
		t.Fatal(err)
	}
	op := imaging.Resize{W: 40, H: 40, Filter: imaging.CatmullRom}
	resized := imaging.Clamp(op.Apply(pubIm.ToPlanar()))
	coeffs, err := resized.ToCoeffs(95, jpegx.Sub444)
	if err != nil {
		t.Fatal(err)
	}
	var served bytes.Buffer
	if err := jpegx.EncodeCoeffs(&served, coeffs, nil); err != nil {
		t.Fatal(err)
	}
	rec, err := JoinProcessed(served.Bytes(), out.SecretBlob, key, op)
	if err != nil {
		t.Fatal(err)
	}
	want := imaging.Clamp(op.Apply(im.ToPlanar()))
	// The served public part was JPEG re-encoded (lossy), so the bar is
	// lower than the known-transform float case but must remain high.
	if got := psnr(want, rec); got < 30 {
		t.Errorf("served-JPEG processed reconstruction PSNR %.1f dB, want >= 30", got)
	}
}

func TestSplitJPEGDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	im := naturalImage(t, rng, 32, 32, jpegx.Sub444)
	var buf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&buf, im, nil); err != nil {
		t.Fatal(err)
	}
	key, _ := NewKey()
	out, err := SplitJPEG(buf.Bytes(), key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Threshold != DefaultThreshold {
		t.Errorf("default threshold = %d, want %d", out.Threshold, DefaultThreshold)
	}
	if _, err := SplitJPEG([]byte("junk"), key, nil); err == nil {
		t.Error("junk input must fail")
	}
}

// TestReconstructPixelsMultiMatchesSingle pins the shared-planes batch path
// to the per-variant path bit for bit: deriving S and C once and applying N
// operators must equal N independent ReconstructPixels calls.
func TestReconstructPixelsMultiMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	im := naturalImage(t, rng, 96, 80, jpegx.Sub444)
	threshold := 15
	pub, sec, err := Split(im, threshold)
	if err != nil {
		t.Fatal(err)
	}
	ops := []imaging.Op{
		nil, // identity
		imaging.Resize{W: 48, H: 40, Filter: imaging.Triangle},
		imaging.Crop{X: 16, Y: 8, W: 40, H: 48},
		imaging.GaussianBlur{Sigma: 1.1},
	}
	pubPix := pub.ToPlanar()
	publics := make([]*jpegx.PlanarImage, len(ops))
	for i, op := range ops {
		if op == nil {
			publics[i] = pubPix.Clone()
			continue
		}
		publics[i] = op.Apply(pubPix)
	}
	multi, err := ReconstructPixelsMulti(publics, sec, threshold, ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		single, err := ReconstructPixels(publics[i], sec, threshold, op)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		for ci := range single.Planes {
			for pi := range single.Planes[ci] {
				if single.Planes[ci][pi] != multi[i].Planes[ci][pi] {
					t.Fatalf("op %d plane %d sample %d: multi %v, single %v",
						i, ci, pi, multi[i].Planes[ci][pi], single.Planes[ci][pi])
				}
			}
		}
	}
}

// TestSecretPlanesErrors covers the guard rails of the shared-planes API:
// non-linear operators are rejected (they need the remapped path) and a
// public part whose dimensions don't match the operator's output is caught.
func TestSecretPlanesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	im := naturalImage(t, rng, 48, 48, jpegx.Sub444)
	pub, sec, err := Split(im, 15)
	if err != nil {
		t.Fatal(err)
	}
	sp := DeriveSecretPlanes(sec, 15)
	if _, err := sp.Reconstruct(pub.ToPlanar(), imaging.Gamma{G: 2.2}); err == nil {
		t.Error("non-linear operator accepted")
	}
	op := imaging.Resize{W: 24, H: 24, Filter: imaging.Triangle}
	if _, err := sp.Reconstruct(pub.ToPlanar(), op); err == nil {
		t.Error("mismatched public/operator dimensions accepted")
	}
	if _, err := ReconstructPixelsMulti(
		[]*jpegx.PlanarImage{pub.ToPlanar()}, sec, 15, nil, nil); err == nil {
		t.Error("variant/operator count mismatch accepted")
	}
}

// TestDeriveSecretPlanesScaled: scaled planes reconstruct a downsized
// rendition nearly as well as full-resolution planes put through the same
// resize — the proxy's fast path for small variants.
func TestDeriveSecretPlanesScaled(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	im := naturalImage(t, rng, 128, 96, jpegx.Sub444)
	threshold := 15
	pub, sec, err := Split(im, threshold)
	if err != nil {
		t.Fatal(err)
	}
	op := imaging.Resize{W: 32, H: 24, Filter: imaging.CatmullRom}
	served := imaging.Clamp(op.Apply(pub.ToPlanar()))
	want := imaging.Clamp(op.Apply(im.ToPlanar()))
	for _, denom := range []int{2, 4} {
		sp, err := DeriveSecretPlanesScaledPool(sec, threshold, denom, nil)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := sp.Reconstruct(served, op)
		if err != nil {
			t.Fatal(err)
		}
		if got := psnr(want, rec); got < 38 {
			t.Errorf("denom %d: scaled-plane reconstruction PSNR %.1f dB, want >= 38", denom, got)
		}
	}
}
