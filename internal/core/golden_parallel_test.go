package core

import (
	"bytes"
	"math/rand"
	"testing"

	"p3/internal/jpegx"
	"p3/internal/work"
)

// TestSplitBytesIdenticalAcrossParallelism is the determinism golden test:
// splitting the same photo must produce byte-identical public and secret
// parts whether the band pipeline runs sequentially or fanned out over any
// pool size. The encrypted blob differs (fresh nonce per seal), so the
// secret part is compared after OpenSecret.
func TestSplitBytesIdenticalAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var key Key
	rng.Read(key[:])
	for _, src := range []struct {
		name string
		sub  jpegx.Subsampling
		w, h int
		prog bool
	}{
		{"420", jpegx.Sub420, 129, 97, false},
		{"444", jpegx.Sub444, 64, 64, false},
		{"progressive", jpegx.Sub420, 96, 80, true},
	} {
		t.Run(src.name, func(t *testing.T) {
			im := randomCoeffImage(rng, src.w, src.h, src.sub)
			var buf bytes.Buffer
			if err := jpegx.EncodeCoeffs(&buf, im, &jpegx.EncodeOptions{Progressive: src.prog}); err != nil {
				t.Fatal(err)
			}
			input := buf.Bytes()
			var refPub, refSec []byte
			for _, workers := range []int{1, 2, 8} {
				opts := Options{Threshold: 15, OptimizeHuffman: true, Workers: work.New(workers)}
				out, err := SplitJPEG(input, key, &opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				_, secJPEG, err := OpenSecret(key, out.SecretBlob)
				if err != nil {
					t.Fatalf("workers=%d: open secret: %v", workers, err)
				}
				if workers == 1 {
					refPub, refSec = out.PublicJPEG, secJPEG
					continue
				}
				if !bytes.Equal(out.PublicJPEG, refPub) {
					t.Errorf("workers=%d: public part differs from sequential (%d vs %d bytes)",
						workers, len(out.PublicJPEG), len(refPub))
				}
				if !bytes.Equal(secJPEG, refSec) {
					t.Errorf("workers=%d: secret part differs from sequential (%d vs %d bytes)",
						workers, len(secJPEG), len(refSec))
				}
			}
		})
	}
}
