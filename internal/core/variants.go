package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"p3/internal/imaging"
	"p3/internal/jpegx"
)

// The multi-variant secret optimization of §5.3: "this additional bandwidth
// usage can be reduced by trading off storage: a sender can upload multiple
// encrypted secret parts, one for each known static transformation that a
// PSP performs. We have not implemented this optimization." — the paper
// leaves it there; this file implements it.
//
// For a known static variant (say Facebook's 130×130 "small") produced by a
// linear operator A, Eq. (2) reconstruction needs A·S + A·C added to the
// served public part. Both terms are known to the sender at upload time, so
// they collapse into a single difference image D = A·(S + C) at the
// variant's (small) resolution. D is stored as an ordinary lossy JPEG of
// (D/2 + 128) — exactly the "correction term in a lossy JPEG format" whose
// small quantization cost the paper's footnote 8 discusses — and sealed
// like any other secret payload. A recipient browsing thumbnails then
// downloads a secret part sized for thumbnails.

// VariantSecret is one precomputed, resolution-matched secret part.
type VariantSecret struct {
	W, H      int
	Threshold int
	// D is the combined difference image A·(S + C); adding it to the
	// served variant completes Eq. (2).
	D *jpegx.PlanarImage
}

// variantScale maps the difference image's dynamic range into 8 bits for
// JPEG transport: stored = D/variantScale + 128.
const variantScale = 2.0

// BuildVariantSecret precomputes the secret material for a static variant
// of size w×h produced by op (which must be linear and map the full-size
// image to w×h).
func BuildVariantSecret(sec *jpegx.CoeffImage, threshold int, op imaging.Op, w, h int) (*VariantSecret, error) {
	if !op.Linear() {
		return nil, fmt.Errorf("core: variant operator %s is not linear", op)
	}
	s, c := SecretPixelImages(sec, threshold)
	imaging.AddInto(s, c, 1)
	d := op.Apply(s)
	if d.Width != w || d.Height != h {
		return nil, fmt.Errorf("core: operator produced %dx%d, want %dx%d", d.Width, d.Height, w, h)
	}
	return &VariantSecret{W: w, H: h, Threshold: threshold, D: d}, nil
}

// ReconstructVariant combines a PSP-served variant with the precomputed
// difference image: out = served + D, clamped.
func (v *VariantSecret) ReconstructVariant(served *jpegx.PlanarImage) (*jpegx.PlanarImage, error) {
	if served.Width != v.W || served.Height != v.H {
		return nil, fmt.Errorf("core: served variant is %dx%d, secret is for %dx%d",
			served.Width, served.Height, v.W, v.H)
	}
	if len(served.Planes) != len(v.D.Planes) {
		return nil, errors.New("core: plane count mismatch")
	}
	out := served.Clone()
	imaging.AddInto(out, v.D, 1)
	return imaging.Clamp(out), nil
}

// Marshal serializes the variant secret: a fixed header followed by a JPEG
// of the range-compressed difference image. Callers seal the result with
// SealSecret like any other secret payload.
func (v *VariantSecret) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString("P3V1")
	for _, x := range []uint16{uint16(v.W), uint16(v.H), uint16(v.Threshold)} {
		if err := binary.Write(&buf, binary.BigEndian, x); err != nil {
			return nil, err
		}
	}
	shifted := v.D.Clone()
	for _, p := range shifted.Planes {
		for i, s := range p {
			p[i] = s/variantScale + 128
		}
	}
	imaging.Clamp(shifted)
	sub := jpegx.Sub444
	if shifted.Gray() {
		sub = jpegx.Sub444
	}
	coeffs, err := shifted.ToCoeffs(95, sub)
	if err != nil {
		return nil, err
	}
	if err := jpegx.EncodeCoeffs(&buf, coeffs, &jpegx.EncodeOptions{OptimizeHuffman: true}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalVariantSecret parses a container produced by Marshal.
func UnmarshalVariantSecret(data []byte) (*VariantSecret, error) {
	if len(data) < 10 || string(data[:4]) != "P3V1" {
		return nil, errors.New("core: not a variant-secret container")
	}
	w := int(binary.BigEndian.Uint16(data[4:6]))
	h := int(binary.BigEndian.Uint16(data[6:8]))
	threshold := int(binary.BigEndian.Uint16(data[8:10]))
	if w <= 0 || h <= 0 {
		return nil, errors.New("core: malformed variant-secret header")
	}
	im, err := jpegx.Decode(bytes.NewReader(data[10:]))
	if err != nil {
		return nil, fmt.Errorf("core: variant-secret payload: %w", err)
	}
	if im.Width != w || im.Height != h {
		return nil, fmt.Errorf("core: payload is %dx%d, header says %dx%d", im.Width, im.Height, w, h)
	}
	d := im.ToPlanar()
	for _, p := range d.Planes {
		for i, s := range p {
			p[i] = (s - 128) * variantScale
		}
	}
	return &VariantSecret{W: w, H: h, Threshold: threshold, D: d}, nil
}
