package core

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The secret part travels as an encrypt-then-MAC container. The paper
// assumes an AES symmetric key shared out of band between sender and
// recipients (§4.1); the storage provider holding the blob is untrusted, so
// confidentiality comes from AES-256-CTR and integrity from HMAC-SHA256.
// (The paper scopes tamper *recovery* out; we still detect tampering.)

// Key is the symmetric key shared between a sender and recipients.
type Key [32]byte

// NewKey generates a random key.
func NewKey() (Key, error) {
	var k Key
	if _, err := io.ReadFull(rand.Reader, k[:]); err != nil {
		return Key{}, fmt.Errorf("core: generating key: %w", err)
	}
	return k, nil
}

// derive produces independent encryption and MAC keys from the shared key,
// so a single out-of-band secret suffices.
func (k Key) derive(label string) []byte {
	m := hmac.New(sha256.New, k[:])
	m.Write([]byte(label))
	return m.Sum(nil)
}

const (
	secretMagic   = "P3S1"
	secretHdrLen  = 4 + 1 + 2 + aes.BlockSize // magic, version, threshold, IV
	secretMACLen  = sha256.Size
	secretVersion = 1
)

// ErrAuth reports a secret container that failed authentication: wrong key,
// truncation, or tampering by the storage provider or an eavesdropper.
var ErrAuth = errors.New("core: secret part authentication failed")

// SealSecret encrypts the serialized secret-part JPEG together with the
// splitting threshold. The threshold is bound into the MAC but stored in the
// clear-text header: it is not confidential (§3.4 — an attacker can guess it
// from the public part anyway) and the recipient needs it before decrypting.
func SealSecret(key Key, threshold int, secretJPEG []byte) ([]byte, error) {
	if threshold < 1 || threshold > MaxThreshold {
		return nil, fmt.Errorf("core: threshold %d out of range", threshold)
	}
	blob := make([]byte, secretHdrLen+len(secretJPEG)+secretMACLen)
	copy(blob, secretMagic)
	blob[4] = secretVersion
	binary.BigEndian.PutUint16(blob[5:7], uint16(threshold))
	iv := blob[7 : 7+aes.BlockSize]
	if _, err := io.ReadFull(rand.Reader, iv); err != nil {
		return nil, fmt.Errorf("core: generating IV: %w", err)
	}
	block, err := aes.NewCipher(key.derive("p3-enc"))
	if err != nil {
		return nil, err
	}
	cipher.NewCTR(block, iv).XORKeyStream(blob[secretHdrLen:secretHdrLen+len(secretJPEG)], secretJPEG)
	mac := hmac.New(sha256.New, key.derive("p3-mac"))
	mac.Write(blob[:secretHdrLen+len(secretJPEG)])
	copy(blob[secretHdrLen+len(secretJPEG):], mac.Sum(nil))
	return blob, nil
}

// OpenSecret authenticates and decrypts a secret container, returning the
// threshold and the secret-part JPEG bytes.
func OpenSecret(key Key, blob []byte) (threshold int, secretJPEG []byte, err error) {
	if len(blob) < secretHdrLen+secretMACLen {
		return 0, nil, ErrAuth
	}
	if !bytes.Equal(blob[:4], []byte(secretMagic)) {
		return 0, nil, fmt.Errorf("core: not a P3 secret container")
	}
	if blob[4] != secretVersion {
		return 0, nil, fmt.Errorf("core: unsupported secret container version %d", blob[4])
	}
	body := blob[:len(blob)-secretMACLen]
	mac := hmac.New(sha256.New, key.derive("p3-mac"))
	mac.Write(body)
	if !hmac.Equal(mac.Sum(nil), blob[len(blob)-secretMACLen:]) {
		return 0, nil, ErrAuth
	}
	threshold = int(binary.BigEndian.Uint16(blob[5:7]))
	iv := blob[7 : 7+aes.BlockSize]
	ct := body[secretHdrLen:]
	secretJPEG = make([]byte, len(ct))
	block, err := aes.NewCipher(key.derive("p3-enc"))
	if err != nil {
		return 0, nil, err
	}
	cipher.NewCTR(block, iv).XORKeyStream(secretJPEG, ct)
	return threshold, secretJPEG, nil
}
