package core

import (
	"bytes"
	"math/rand"
	"testing"

	"p3/internal/imaging"
	"p3/internal/jpegx"
)

func TestVariantSecretRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	im := naturalImage(t, rng, 96, 96, jpegx.Sub444)
	threshold := 15
	pub, sec, err := Split(im, threshold)
	if err != nil {
		t.Fatal(err)
	}
	op := imaging.Resize{W: 48, H: 48, Filter: imaging.CatmullRom}
	v, err := BuildVariantSecret(sec, threshold, op, 48, 48)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := v.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalVariantSecret(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != 48 || back.H != 48 || back.Threshold != threshold {
		t.Fatalf("header %d %d %d", back.W, back.H, back.Threshold)
	}

	// Reconstruction through the marshaled variant secret approaches the
	// full-secret Eq. (2) path; the gap is the footnote-8 loss of storing
	// the correction material in a lossy JPEG.
	served := imaging.Clamp(op.Apply(pub.ToPlanar()))
	recVariant, err := back.ReconstructVariant(served)
	if err != nil {
		t.Fatal(err)
	}
	recFull, err := ReconstructPixels(served, sec, threshold, op)
	if err != nil {
		t.Fatal(err)
	}
	if got := psnr(recFull, recVariant); got < 32 {
		t.Errorf("variant vs full reconstruction PSNR %.1f dB, want >= 32", got)
	}
	want := imaging.Clamp(op.Apply(im.ToPlanar()))
	if got := psnr(want, recVariant); got < 30 {
		t.Errorf("variant reconstruction vs truth %.1f dB, want >= 30", got)
	}
	// And it must beat the un-reconstructed public part by a wide margin.
	if pubP, recP := mustPSNR(t, want, served), mustPSNR(t, want, recVariant); recP-pubP < 10 {
		t.Errorf("variant reconstruction gain %.1f dB too small", recP-pubP)
	}
}

func mustPSNR(t *testing.T, a, b *jpegx.PlanarImage) float64 {
	t.Helper()
	return psnr(a, b)
}

// TestVariantSecretSavesBandwidth verifies the point of the optimization:
// for a small variant, the precomputed secret is much smaller than the
// full-resolution secret part.
func TestVariantSecretSavesBandwidth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	im := naturalImage(t, rng, 256, 256, jpegx.Sub444)
	threshold := 15
	_, sec, err := Split(im, threshold)
	if err != nil {
		t.Fatal(err)
	}
	var fullBuf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&fullBuf, sec, &jpegx.EncodeOptions{OptimizeHuffman: true}); err != nil {
		t.Fatal(err)
	}
	op := imaging.Resize{W: 64, H: 64, Filter: imaging.Triangle}
	v, err := BuildVariantSecret(sec, threshold, op, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := v.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) >= fullBuf.Len() {
		t.Errorf("variant secret %d B not smaller than full secret %d B", len(blob), fullBuf.Len())
	}
}

func TestVariantSecretSealed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	im := naturalImage(t, rng, 64, 64, jpegx.Sub444)
	_, sec, err := Split(im, 10)
	if err != nil {
		t.Fatal(err)
	}
	v, err := BuildVariantSecret(sec, 10, imaging.Resize{W: 32, H: 32, Filter: imaging.Box}, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := v.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	key, _ := NewKey()
	sealed, err := SealSecret(key, 10, blob)
	if err != nil {
		t.Fatal(err)
	}
	_, opened, err := OpenSecret(key, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalVariantSecret(opened); err != nil {
		t.Fatal(err)
	}
}

func TestVariantSecretErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	im := naturalImage(t, rng, 64, 64, jpegx.Sub444)
	_, sec, err := Split(im, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildVariantSecret(sec, 10, imaging.Gamma{G: 2}, 64, 64); err == nil {
		t.Error("non-linear op accepted")
	}
	if _, err := BuildVariantSecret(sec, 10, imaging.Resize{W: 10, H: 10, Filter: imaging.Box}, 20, 20); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := UnmarshalVariantSecret([]byte("nope")); err == nil {
		t.Error("junk container accepted")
	}
	v, err := BuildVariantSecret(sec, 10, imaging.Resize{W: 16, H: 16, Filter: imaging.Box}, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	served := jpegx.NewPlanarImage(8, 8, 3)
	if _, err := v.ReconstructVariant(served); err == nil {
		t.Error("size mismatch accepted")
	}
	// Truncated container.
	blob, err := v.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalVariantSecret(blob[:len(blob)/2]); err == nil {
		t.Error("truncated container accepted")
	}
}
