package experiments

import (
	"bytes"
	"fmt"

	"p3/internal/core"
	"p3/internal/jpegx"
	"p3/internal/vision"
)

// The ablations quantify the design choices DESIGN.md calls out.

// AblationSignCorrection compares the paper's clip-at-T public encoding
// (sign withheld, −2T correction on reconstruction) against the naive
// alternative that zeroes above-threshold coefficients in the public part.
// Clipping keeps the public part's coefficient runs shorter (better
// compression of the pair) while §3.4 shows the attacker gains nothing: not
// knowing the sign, the MSE-optimal guess for a clipped coefficient is 0 —
// exactly what the naive scheme publishes.
func AblationSignCorrection(threshold int, maxImages int) (*Table, error) {
	if threshold == 0 {
		threshold = core.DefaultThreshold
	}
	if maxImages == 0 {
		maxImages = 10
	}
	images, err := SIPI.load(maxImages)
	if err != nil {
		return nil, err
	}
	var clipTotal, zeroTotal, clipPSNR, zeroPSNR float64
	for _, im := range images {
		ref := im.ToPlanar()
		pub, sec, err := core.Split(im, threshold)
		if err != nil {
			return nil, err
		}
		ps, err := encodedSize(pub)
		if err != nil {
			return nil, err
		}
		ss, err := encodedSize(sec)
		if err != nil {
			return nil, err
		}
		clipTotal += float64(ps + ss)
		p, err := vision.PSNR(ref, pub.ToPlanar())
		if err != nil {
			return nil, err
		}
		clipPSNR += p

		// Naive variant: zero the clipped coefficients in the public part
		// and move the full value to the secret part.
		zp := pub.Clone()
		zs := sec.Clone()
		tt := int32(threshold)
		for ci := range zp.Components {
			pb := zp.Components[ci].Blocks
			sb := zs.Components[ci].Blocks
			yb := im.Components[ci].Blocks
			for bi := range pb {
				for k := 1; k < 64; k++ {
					if sb[bi][k] != 0 { // was above threshold
						pb[bi][k] = 0
						sb[bi][k] = yb[bi][k]
						_ = tt
					}
				}
			}
		}
		zps, err := encodedSize(zp)
		if err != nil {
			return nil, err
		}
		zss, err := encodedSize(zs)
		if err != nil {
			return nil, err
		}
		zeroTotal += float64(zps + zss)
		p, err = vision.PSNR(ref, zp.ToPlanar())
		if err != nil {
			return nil, err
		}
		zeroPSNR += p
	}
	n := float64(len(images))
	t := &Table{
		Title:  fmt.Sprintf("Ablation: sign handling at T=%d", threshold),
		Header: []string{"scheme", "avg total bytes", "avg public PSNR (dB)"},
		Rows: [][]string{
			{"clip at +T (paper)", fmt.Sprintf("%.0f", clipTotal/n), fmt.Sprintf("%.1f", clipPSNR/n)},
			{"zero out (naive)", fmt.Sprintf("%.0f", zeroTotal/n), fmt.Sprintf("%.1f", zeroPSNR/n)},
		},
		Notes: []string{"§3.4: with the sign withheld, publishing T leaks no more than publishing 0 (attacker's MSE-optimal guess for a clipped coefficient is 0)"},
	}
	return t, nil
}

// AblationDCPlacement quantifies why the DC coefficients must move to the
// secret part: leaving them public yields a recognizable thumbnail (much
// higher public PSNR and edge correlation).
func AblationDCPlacement(threshold int, maxImages int) (*Table, error) {
	if threshold == 0 {
		threshold = core.DefaultThreshold
	}
	if maxImages == 0 {
		maxImages = 10
	}
	images, err := SIPI.load(maxImages)
	if err != nil {
		return nil, err
	}
	detector := vision.Canny{}
	var secPSNR, pubPSNR, secEdge, pubEdge float64
	for _, im := range images {
		ref := im.ToPlanar()
		refEdges := detector.Detect(vision.Luma(ref))
		pub, _, err := core.Split(im, threshold)
		if err != nil {
			return nil, err
		}
		// Variant with DC left in the public part.
		dcPub := pub.Clone()
		for ci := range dcPub.Components {
			for bi := range dcPub.Components[ci].Blocks {
				dcPub.Components[ci].Blocks[bi][0] = im.Components[ci].Blocks[bi][0]
			}
		}
		for _, v := range []struct {
			img  *jpegx.CoeffImage
			psnr *float64
			edge *float64
		}{
			{pub, &secPSNR, &secEdge},
			{dcPub, &pubPSNR, &pubEdge},
		} {
			pix := v.img.ToPlanar()
			p, err := vision.PSNR(ref, pix)
			if err != nil {
				return nil, err
			}
			*v.psnr += p
			ratio, err := vision.MatchRatio(refEdges, detector.Detect(vision.Luma(pix)))
			if err != nil {
				return nil, err
			}
			*v.edge += ratio
		}
	}
	n := float64(len(images))
	return &Table{
		Title:  fmt.Sprintf("Ablation: DC placement at T=%d", threshold),
		Header: []string{"scheme", "public PSNR (dB)", "edge match (%)"},
		Rows: [][]string{
			{"DC in secret (paper)", fmt.Sprintf("%.1f", secPSNR/n), fmt.Sprintf("%.1f", 100*secEdge/n)},
			{"DC left public", fmt.Sprintf("%.1f", pubPSNR/n), fmt.Sprintf("%.1f", 100*pubEdge/n)},
		},
		Notes: []string{"DC alone reconstructs a thumbnail (§3.2); leaving it public forfeits most privacy"},
	}, nil
}

// AblationReconDomain compares exact coefficient-domain recombination with
// pixel-domain recombination (Eq. (1) as three IDCTs plus addition) for
// unprocessed images — the pixel path costs a little accuracy to rounding
// but is what enables Eq. (2) under PSP transforms.
func AblationReconDomain(threshold int, maxImages int) (*Table, error) {
	if threshold == 0 {
		threshold = core.DefaultThreshold
	}
	if maxImages == 0 {
		maxImages = 10
	}
	images, err := SIPI.load(maxImages)
	if err != nil {
		return nil, err
	}
	var coefPSNR, pixPSNR float64
	exactCount := 0
	for _, im := range images {
		ref := im.ToPlanar()
		pub, sec, err := core.Split(im, threshold)
		if err != nil {
			return nil, err
		}
		rc, err := core.ReconstructCoeffs(pub, sec, threshold)
		if err != nil {
			return nil, err
		}
		exact := true
		for ci := range rc.Components {
			for bi := range rc.Components[ci].Blocks {
				if rc.Components[ci].Blocks[bi] != im.Components[ci].Blocks[bi] {
					exact = false
				}
			}
		}
		if exact {
			exactCount++
		}
		p, err := vision.PSNR(ref, rc.ToPlanar())
		if err != nil {
			return nil, err
		}
		coefPSNR += p
		rp, err := core.ReconstructPixels(pub.ToPlanar(), sec, threshold, nil)
		if err != nil {
			return nil, err
		}
		p, err = vision.PSNR(ref, rp)
		if err != nil {
			return nil, err
		}
		pixPSNR += p
	}
	n := float64(len(images))
	return &Table{
		Title:  fmt.Sprintf("Ablation: reconstruction domain at T=%d", threshold),
		Header: []string{"domain", "avg PSNR vs original (dB)", "coefficient-exact"},
		Rows: [][]string{
			{"coefficient (Eq. 1)", fmt.Sprintf("%.1f", coefPSNR/n), fmt.Sprintf("%d/%d", exactCount, len(images))},
			{"pixel (Eq. 2, A=I)", fmt.Sprintf("%.1f", pixPSNR/n), "n/a"},
		},
	}, nil
}

// AblationSecretEntropy measures how much per-image optimized Huffman
// tables recover of the split's storage overhead (§3.4 notes the split
// lowers entropy in both parts).
func AblationSecretEntropy(threshold int, maxImages int) (*Table, error) {
	if threshold == 0 {
		threshold = core.DefaultThreshold
	}
	if maxImages == 0 {
		maxImages = 10
	}
	images, err := SIPI.load(maxImages)
	if err != nil {
		return nil, err
	}
	size := func(im *jpegx.CoeffImage, optimize bool) (int, error) {
		var buf bytes.Buffer
		err := jpegx.EncodeCoeffs(&buf, im, &jpegx.EncodeOptions{OptimizeHuffman: optimize})
		return buf.Len(), err
	}
	var stdPub, optPub, stdSec, optSec float64
	for _, im := range images {
		pub, sec, err := core.Split(im, threshold)
		if err != nil {
			return nil, err
		}
		for _, v := range []struct {
			im       *jpegx.CoeffImage
			std, opt *float64
		}{{pub, &stdPub, &optPub}, {sec, &stdSec, &optSec}} {
			s, err := size(v.im, false)
			if err != nil {
				return nil, err
			}
			o, err := size(v.im, true)
			if err != nil {
				return nil, err
			}
			*v.std += float64(s)
			*v.opt += float64(o)
		}
	}
	n := float64(len(images))
	return &Table{
		Title:  fmt.Sprintf("Ablation: entropy-coding choice at T=%d", threshold),
		Header: []string{"part", "std tables (bytes)", "optimized (bytes)", "saving (%)"},
		Rows: [][]string{
			{"public", fmt.Sprintf("%.0f", stdPub/n), fmt.Sprintf("%.0f", optPub/n), fmt.Sprintf("%.1f", 100*(1-optPub/stdPub))},
			{"secret", fmt.Sprintf("%.0f", stdSec/n), fmt.Sprintf("%.0f", optSec/n), fmt.Sprintf("%.1f", 100*(1-optSec/stdSec))},
		},
	}, nil
}
