package experiments

import (
	"fmt"

	"p3/internal/core"
	"p3/internal/dataset"
	"p3/internal/jpegx"
	"p3/internal/vision"
	"p3/internal/vision/eigen"
	"p3/internal/vision/haar"
	"p3/internal/vision/sift"
)

// publicLuma splits im at threshold and returns the public part's decoded
// luminance — the image an attacker sees.
func publicLuma(im *jpegx.CoeffImage, threshold int) (*vision.Gray, error) {
	pub, _, err := core.Split(im, threshold)
	if err != nil {
		return nil, err
	}
	return vision.Luma(pub.ToPlanar()), nil
}

// Fig8aEdgeDetection reproduces Fig. 8a: the fraction of Canny edge pixels
// of the original that are also detected on the public part, versus T.
// Paper shape: ≤ ~20% for T below 20 (and any elevated match at very low T
// is spurious white-noise matching).
func Fig8aEdgeDetection(thresholds []int, maxImages int) (*Table, error) {
	if thresholds == nil {
		thresholds = DefaultThresholds
	}
	if maxImages == 0 {
		maxImages = 12
	}
	images, err := SIPI.load(maxImages)
	if err != nil {
		return nil, err
	}
	detector := vision.Canny{}
	refs := make([]*vision.Binary, len(images))
	for i, im := range images {
		refs[i] = detector.Detect(vision.Luma(im.ToPlanar()))
	}
	t := &Table{
		Title:  "Fig. 8a: Canny edge detection on the public part",
		Header: []string{"T", "matching pixel ratio (%)"},
	}
	for _, th := range thresholds {
		var sum float64
		for i, im := range images {
			pub, err := publicLuma(im, th)
			if err != nil {
				return nil, err
			}
			ratio, err := vision.MatchRatio(refs[i], detector.Detect(pub))
			if err != nil {
				return nil, err
			}
			sum += ratio
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(th), fmt.Sprintf("%.1f", 100*sum/float64(len(images)))})
	}
	t.Notes = append(t.Notes, "paper expects <= ~20% matching below T=20")
	return t, nil
}

// Fig8bFaceDetection reproduces Fig. 8b: average faces found by the Haar
// cascade on public parts versus T, with the original-image baseline.
// Paper shape: ~0 detections below T=20, occasional detections above ~35,
// baseline >= 1.
func Fig8bFaceDetection(thresholds []int, nScenes int) (*Table, error) {
	if thresholds == nil {
		thresholds = DefaultThresholds
	}
	if nScenes == 0 {
		nScenes = 10
	}
	cascade, err := haar.Default()
	if err != nil {
		return nil, err
	}
	// Caltech-like: images each containing one dominant face.
	type scene struct {
		coeffs   *jpegx.CoeffImage
		baseline int
	}
	scenes := make([]scene, 0, nScenes)
	var baselineSum int
	for s := int64(0); len(scenes) < nScenes; s++ {
		img, boxes := dataset.Scene(s, 192, 192, 1)
		if len(boxes) == 0 {
			continue
		}
		im, err := img.ToCoeffs(92, jpegx.Sub420)
		if err != nil {
			return nil, err
		}
		n := cascade.CountFaces(vision.Luma(im.ToPlanar()), nil)
		scenes = append(scenes, scene{coeffs: im, baseline: n})
		baselineSum += n
	}
	t := &Table{
		Title:  "Fig. 8b: Haar face detection on the public part",
		Header: []string{"T", "avg faces (public)", "avg faces (original)"},
	}
	base := fmt.Sprintf("%.2f", float64(baselineSum)/float64(len(scenes)))
	for _, th := range thresholds {
		var sum int
		for _, sc := range scenes {
			pub, err := publicLuma(sc.coeffs, th)
			if err != nil {
				return nil, err
			}
			sum += cascade.CountFaces(pub, nil)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(th), fmt.Sprintf("%.2f", float64(sum)/float64(len(scenes))), base})
	}
	t.Notes = append(t.Notes, "paper expects ~0 below T=20, occasional detections above ~35")
	return t, nil
}

// Fig8cSIFT reproduces Fig. 8c: the number of SIFT features detected on
// the public part (normalized by the original's count) and the fraction of
// them lying within feature-space distance d of an original feature.
// Paper shape: no features below T~10, ~25% detected at T=20 but only a
// tiny fraction matching; even at T=100 only ~4% match.
func Fig8cSIFT(thresholds []int, maxImages int) (*Table, error) {
	if thresholds == nil {
		thresholds = DefaultThresholds
	}
	if maxImages == 0 {
		maxImages = 8
	}
	images, err := SIPI.load(maxImages)
	if err != nil {
		return nil, err
	}
	refs := make([][]sift.Keypoint, len(images))
	var refTotal int
	for i, im := range images {
		refs[i] = sift.Detect(vision.Luma(im.ToPlanar()), nil)
		refTotal += len(refs[i])
	}
	if refTotal == 0 {
		return nil, fmt.Errorf("experiments: no SIFT features on originals")
	}
	const closeDist = 0.6 // the paper's distance parameter from Lowe's code
	t := &Table{
		Title:  "Fig. 8c: SIFT feature extraction on the public part",
		Header: []string{"T", "detected (normalized)", "matched (normalized)"},
	}
	for _, th := range thresholds {
		var det, matched int
		for i, im := range images {
			pub, err := publicLuma(im, th)
			if err != nil {
				return nil, err
			}
			kps := sift.Detect(pub, nil)
			det += len(kps)
			matched += sift.CountClose(kps, refs[i], closeDist)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(th),
			fmt.Sprintf("%.3f", float64(det)/float64(refTotal)),
			fmt.Sprintf("%.3f", float64(matched)/float64(refTotal)),
		})
	}
	t.Notes = append(t.Notes, "normalized by features detected on originals; paper expects ~0 detected below T=10 and few matched even at T=100")
	return t, nil
}

// Fig8dFaceRecognition reproduces Fig. 8d: Eigenfaces CMC curves (MahCosine
// distance, FERET-style gallery/probe split) for the Normal-Normal baseline
// and for public parts at several thresholds, in both training regimes:
// Public-Public (train on public parts — the stronger attack) and
// Normal-Public (train on normal images, probe with public parts).
// Paper shape: baseline > 80% at rank 1; T in [1,20] below 20% at rank 1.
func Fig8dFaceRecognition(thresholds []int, nSubjects, ranks int) (*Table, error) {
	if thresholds == nil {
		thresholds = []int{1, 10, 20, 100}
	}
	if nSubjects == 0 {
		nSubjects = 16
	}
	if ranks == 0 {
		ranks = 10
	}
	const perSubject = 4
	const fw, fh = 32, 40
	corpus := dataset.FERETCorpus(nSubjects, perSubject, fw, fh, 5)

	// FERET-style split: first image per subject → gallery, rest → probes.
	var galS, prbS []int
	var galN, prbN []*vision.Gray // normal images
	var galIms, prbIms []*jpegx.CoeffImage
	for i, f := range corpus {
		im, err := f.Img.ToCoeffs(92, jpegx.Sub444)
		if err != nil {
			return nil, err
		}
		if i%perSubject == 0 {
			galS = append(galS, f.Subject)
			galN = append(galN, vision.Luma(im.ToPlanar()))
			galIms = append(galIms, im)
		} else {
			prbS = append(prbS, f.Subject)
			prbN = append(prbN, vision.Luma(im.ToPlanar()))
			prbIms = append(prbIms, im)
		}
	}
	publicSet := func(ims []*jpegx.CoeffImage, th int) ([]*vision.Gray, error) {
		out := make([]*vision.Gray, len(ims))
		for i, im := range ims {
			g, err := publicLuma(im, th)
			if err != nil {
				return nil, err
			}
			out[i] = g
		}
		return out, nil
	}
	runCMC := func(gal, prb []*vision.Gray) ([]float64, error) {
		model, err := eigen.Train(gal, 0)
		if err != nil {
			return nil, err
		}
		rec, err := eigen.NewRecognizer(model, galS, gal)
		if err != nil {
			return nil, err
		}
		return rec.CMC(prbS, prb, eigen.MahCosine, ranks)
	}

	t := &Table{
		Title:  "Fig. 8d: Eigenfaces recognition (MahCosine), cumulative match rate",
		Header: append([]string{"setting"}, rankHeader(ranks)...),
	}
	addRow := func(name string, cmc []float64) {
		row := []string{name}
		for _, v := range cmc {
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		t.Rows = append(t.Rows, row)
	}

	baseline, err := runCMC(galN, prbN)
	if err != nil {
		return nil, err
	}
	addRow("Normal-Normal", baseline)
	for _, th := range thresholds {
		prbP, err := publicSet(prbIms, th)
		if err != nil {
			return nil, err
		}
		galP, err := publicSet(galIms, th)
		if err != nil {
			return nil, err
		}
		pp, err := runCMC(galP, prbP)
		if err != nil {
			return nil, err
		}
		addRow(fmt.Sprintf("T%d-Public-Public", th), pp)
		np, err := runCMC(galN, prbP)
		if err != nil {
			return nil, err
		}
		addRow(fmt.Sprintf("T%d-Normal-Public", th), np)
	}
	t.Notes = append(t.Notes,
		"paper expects Normal-Normal > 0.8 at rank 1 and < 0.2 for T in [1,20]",
		"Normal-Public reproduces the paper's collapse to near-chance for T <= 20",
		fmt.Sprintf("Public-Public runs high here: with %d synthetic subjects (rank-1 chance %.0f%%) the small PCA space memorizes stable clipped-coefficient positions; the paper's 994-subject FERET dilutes this — see EXPERIMENTS.md", nSubjects, 100.0/float64(nSubjects)))
	return t, nil
}

func rankHeader(ranks int) []string {
	out := make([]string, ranks)
	for i := range out {
		out[i] = fmt.Sprintf("r%d", i+1)
	}
	return out
}

// ThresholdGuessing quantifies the §3.4 attack: how often the most frequent
// non-zero public AC magnitude equals the true T.
func ThresholdGuessing(thresholds []int, maxImages int) (*Table, error) {
	if thresholds == nil {
		thresholds = DefaultThresholds
	}
	if maxImages == 0 {
		maxImages = 12
	}
	images, err := SIPI.load(maxImages)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "§3.4: threshold-guessing attack success rate",
		Header: []string{"T", "guessed correctly (%)"},
	}
	for _, th := range thresholds {
		correct := 0
		for _, im := range images {
			pub, _, err := core.Split(im, th)
			if err != nil {
				return nil, err
			}
			if core.GuessThreshold(pub) == th {
				correct++
			}
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(th), fmt.Sprintf("%.0f", 100*float64(correct)/float64(len(images)))})
	}
	t.Notes = append(t.Notes, "the attack succeeds but reveals only T — positions, not values or signs (§3.4)")
	return t, nil
}
