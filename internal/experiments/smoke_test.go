package experiments

import "testing"

func TestSmokeFig8b(t *testing.T) {
	tab, err := Fig8bFaceDetection([]int{1, 20, 100}, 6)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
}
func TestSmokeFig8c(t *testing.T) {
	tab, err := Fig8cSIFT([]int{1, 20, 100}, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
}
func TestSmokeFig8d(t *testing.T) {
	tab, err := Fig8dFaceRecognition([]int{1, 20, 100}, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
}
func TestSmokeFig10(t *testing.T) {
	tab, err := Fig10Bandwidth([]int{1, 15}, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
}
func TestSmokeRecon(t *testing.T) {
	tab, err := ReconstructionAccuracy(3)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
}
func TestSmokeCost(t *testing.T) {
	tab, err := ProcessingCost(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
}
func TestSmokeAblations(t *testing.T) {
	for _, f := range []func(int, int) (*Table, error){
		AblationSignCorrection, AblationDCPlacement, AblationReconDomain, AblationSecretEntropy,
	} {
		tab, err := f(0, 4)
		if err != nil {
			t.Fatal(err)
		}
		t.Log("\n" + tab.String())
	}
}
func TestSmokeGuess(t *testing.T) {
	tab, err := ThresholdGuessing([]int{1, 15}, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
}
