package experiments

import (
	"bytes"
	"fmt"
	"time"

	"p3/internal/core"
	"p3/internal/dataset"
	"p3/internal/imaging"
	"p3/internal/jpegx"
	"p3/internal/psp"
	"p3/internal/vision"
)

// Fig10Bandwidth reproduces Fig. 10: the extra bytes a P3 recipient
// downloads versus a non-P3 user, per threshold and served resolution. The
// P3 user downloads resize(public)+full secret; the baseline downloads
// resize(original). Paper shape: ~20 KB or less for T in 10-20, shrinking
// as T grows, roughly independent of the served resolution.
func Fig10Bandwidth(thresholds []int, maxImages int) (*Table, error) {
	if thresholds == nil {
		thresholds = []int{1, 5, 10, 15, 20}
	}
	if maxImages == 0 {
		maxImages = 12
	}
	images, err := INRIA.load(maxImages)
	if err != nil {
		return nil, err
	}
	pipeline := psp.FacebookLike()
	resolutions := []struct {
		name       string
		maxW, maxH int
	}{
		{"720x720", 720, 720},
		{"130x130", 130, 130},
		{"75x75", 75, 75},
	}
	t := &Table{
		Title:  "Fig. 10: bandwidth usage cost (KB) by threshold and resolution",
		Header: []string{"T", "uploaded(720,KB)", "overhead 720x720", "overhead 130x130", "overhead 75x75"},
	}
	render := func(im *jpegx.CoeffImage, maxW, maxH int) (int, error) {
		var buf bytes.Buffer
		if err := jpegx.EncodeCoeffs(&buf, im, &jpegx.EncodeOptions{OptimizeHuffman: true}); err != nil {
			return 0, err
		}
		out, err := pipeline.Render(buf.Bytes(), nil, maxW, maxH)
		if err != nil {
			return 0, err
		}
		return len(out), nil
	}
	for _, th := range thresholds {
		var upSum float64
		overhead := make([]float64, len(resolutions))
		for _, im := range images {
			pub, sec, err := core.Split(im, th)
			if err != nil {
				return nil, err
			}
			secSize, err := encodedSize(sec)
			if err != nil {
				return nil, err
			}
			pubUp, err := render(pub, 720, 720)
			if err != nil {
				return nil, err
			}
			upSum += float64(pubUp) / 1024
			for ri, res := range resolutions {
				pubServed, err := render(pub, res.maxW, res.maxH)
				if err != nil {
					return nil, err
				}
				origServed, err := render(im, res.maxW, res.maxH)
				if err != nil {
					return nil, err
				}
				// P3 cost − baseline cost, in KB.
				overhead[ri] += float64(pubServed+secSize-origServed) / 1024
			}
		}
		n := float64(len(images))
		row := []string{fmt.Sprint(th), fmt.Sprintf("%.1f", upSum/n)}
		for ri := range resolutions {
			row = append(row, fmt.Sprintf("%.1f", overhead[ri]/n))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "overhead = resized(public)+secret − resized(original); paper expects modest (~20KB or less) for T in 10-20")
	return t, nil
}

// ReconstructionAccuracy reproduces §5.3: PSNR of the reconstruction when
// the transform is known a priori (paper: 49.2 dB average on USC-SIPI) and
// when the PSP pipeline must be reverse-engineered by parameter search
// (paper: 34.4 dB Facebook, 39.8 dB Flickr).
func ReconstructionAccuracy(maxImages int) (*Table, error) {
	if maxImages == 0 {
		maxImages = 10
	}
	images, err := SIPI.load(maxImages)
	if err != nil {
		return nil, err
	}
	threshold := core.DefaultThreshold
	t := &Table{
		Title:  "§5.3: reconstruction accuracy (PSNR, dB)",
		Header: []string{"scenario", "avg PSNR"},
	}

	// Known transform: the recipient knows A exactly. The served public
	// part still rides through a real JPEG re-encode, which is where the
	// paper's residual error (49.2 dB, footnote 8) comes from.
	known := imaging.Resize{W: 128, H: 128, Filter: imaging.CatmullRom}
	var knownSum float64
	for _, im := range images {
		pub, sec, err := core.Split(im, threshold)
		if err != nil {
			return nil, err
		}
		servedPix := imaging.Clamp(known.Apply(pub.ToPlanar()))
		servedCo, err := servedPix.ToCoeffs(95, jpegx.Sub444)
		if err != nil {
			return nil, err
		}
		var servedBuf bytes.Buffer
		if err := jpegx.EncodeCoeffs(&servedBuf, servedCo, nil); err != nil {
			return nil, err
		}
		servedIm, err := jpegx.Decode(bytes.NewReader(servedBuf.Bytes()))
		if err != nil {
			return nil, err
		}
		rec, err := core.ReconstructPixels(servedIm.ToPlanar(), sec, threshold, known)
		if err != nil {
			return nil, err
		}
		want := imaging.Clamp(known.Apply(im.ToPlanar()))
		p, err := vision.PSNR(want, rec)
		if err != nil {
			return nil, err
		}
		knownSum += p
	}
	t.Rows = append(t.Rows, []string{"known transform", fmt.Sprintf("%.1f", knownSum/float64(len(images)))})

	// Unknown pipelines: calibrate by parameter search, then reconstruct
	// through the real (hidden) pipeline including its JPEG re-encode.
	for _, tc := range []struct {
		name     string
		pipeline psp.Pipeline
	}{
		{"unknown pipeline (Facebook-like)", psp.FacebookLike()},
		{"unknown pipeline (Flickr-like)", psp.FlickrLike()},
	} {
		calib := dataset.Natural(0xca11b, 256, 256)
		calibPix := calib.Clone()
		var calibBuf bytes.Buffer
		cIm, err := calib.ToCoeffs(92, jpegx.Sub420)
		if err != nil {
			return nil, err
		}
		if err := jpegx.EncodeCoeffs(&calibBuf, cIm, nil); err != nil {
			return nil, err
		}
		servedCalib, err := tc.pipeline.Render(calibBuf.Bytes(), nil, 128, 128)
		if err != nil {
			return nil, err
		}
		servedIm, err := jpegx.Decode(bytes.NewReader(servedCalib))
		if err != nil {
			return nil, err
		}
		params, _ := core.SearchParams(calibPix, servedIm.ToPlanar())

		var sum float64
		for _, im := range images {
			pub, sec, err := core.Split(im, threshold)
			if err != nil {
				return nil, err
			}
			var pubBuf bytes.Buffer
			if err := jpegx.EncodeCoeffs(&pubBuf, pub, nil); err != nil {
				return nil, err
			}
			servedBytes, err := tc.pipeline.Render(pubBuf.Bytes(), nil, 128, 128)
			if err != nil {
				return nil, err
			}
			served, err := jpegx.Decode(bytes.NewReader(servedBytes))
			if err != nil {
				return nil, err
			}
			op := params.Instantiate(served.Width, served.Height)
			rec, err := core.ReconstructPixels(served.ToPlanar(), sec, threshold, op)
			if err != nil {
				return nil, err
			}
			want := imaging.Clamp(tc.pipeline.Op(served.Width, served.Height).Apply(im.ToPlanar()))
			p, err := vision.PSNR(want, rec)
			if err != nil {
				return nil, err
			}
			sum += p
		}
		t.Rows = append(t.Rows, []string{tc.name, fmt.Sprintf("%.1f", sum/float64(len(images)))})
	}
	t.Notes = append(t.Notes, "paper: 49.2 dB known; 34.4 dB Facebook, 39.8 dB Flickr reverse-engineered")
	return t, nil
}

// ProcessingCost reproduces §5.3's microbenchmarks: wall time to split,
// seal, open, and reconstruct a 720×720 photo (paper, Galaxy S3: 152 ms
// split, ~55 ms encrypt/decrypt, 191 ms reconstruct).
func ProcessingCost(iters int) (*Table, error) {
	if iters == 0 {
		iters = 5
	}
	img := dataset.Natural(0x0c057, 720, 720)
	im, err := img.ToCoeffs(92, jpegx.Sub420)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&buf, im, nil); err != nil {
		return nil, err
	}
	jpegBytes := buf.Bytes()
	key, err := core.NewKey()
	if err != nil {
		return nil, err
	}

	var splitT, sealT, openT, reconT time.Duration
	var out *core.SplitOutput
	for i := 0; i < iters; i++ {
		start := time.Now()
		out, err = core.SplitJPEG(jpegBytes, key, nil)
		if err != nil {
			return nil, err
		}
		splitT += time.Since(start)

		_, secJPEG, err := core.OpenSecret(key, out.SecretBlob)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		blob, err := core.SealSecret(key, out.Threshold, secJPEG)
		if err != nil {
			return nil, err
		}
		sealT += time.Since(start)

		start = time.Now()
		if _, _, err := core.OpenSecret(key, blob); err != nil {
			return nil, err
		}
		openT += time.Since(start)

		start = time.Now()
		if _, err := core.JoinJPEG(out.PublicJPEG, out.SecretBlob, key); err != nil {
			return nil, err
		}
		reconT += time.Since(start)
	}
	ms := func(d time.Duration) string {
		return fmt.Sprintf("%.1f", float64(d.Microseconds())/float64(iters)/1000)
	}
	t := &Table{
		Title:  "§5.3: processing cost on a 720×720 photo (ms)",
		Header: []string{"operation", "avg ms", "paper (Galaxy S3, ms)"},
		Rows: [][]string{
			{"split (decode+split+encode)", ms(splitT), "152"},
			{"encrypt secret part", ms(sealT), "~55"},
			{"decrypt secret part", ms(openT), "~55"},
			{"reconstruct (join+encode)", ms(reconT), "191"},
		},
	}
	return t, nil
}
