// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) against the synthetic corpora: the threshold/size
// trade-off (Fig. 5), PSNR degradation (Fig. 6), the canonical visual pairs
// (Fig. 7), the four privacy attacks (Fig. 8a-d), bandwidth overhead
// (Fig. 10), reconstruction accuracy and processing cost (§5.3), and the
// ablations DESIGN.md calls out. Each experiment returns structured rows;
// cmd/experiments prints them and bench_test.go wraps them in benchmarks.
package experiments

import (
	"bytes"
	"fmt"
	"math"
	"strings"

	"p3/internal/core"
	"p3/internal/dataset"
	"p3/internal/jpegx"
	"p3/internal/vision"
)

// DefaultThresholds is the sweep used across the figures, matching the
// paper's 0-100 x-axes (T must be ≥ 1).
var DefaultThresholds = []int{1, 5, 10, 15, 20, 30, 40, 60, 80, 100}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders an aligned ASCII table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Corpus selects an image set for the size/PSNR experiments.
type Corpus int

// The two corpora of Figs. 5 and 6.
const (
	SIPI Corpus = iota
	INRIA
)

func (c Corpus) String() string {
	if c == INRIA {
		return "INRIA"
	}
	return "USC-SIPI"
}

// load returns the corpus images as coefficient images (already through a
// JPEG encode, as uploaded photos are). n limits the count (0 = all).
func (c Corpus) load(n int) ([]*jpegx.CoeffImage, error) {
	var imgs []*jpegx.PlanarImage
	if c == INRIA {
		if n == 0 {
			n = 24
		}
		imgs = dataset.INRIA(n)
	} else {
		imgs = dataset.SIPI()
		if n > 0 && n < len(imgs) {
			imgs = imgs[:n]
		}
	}
	out := make([]*jpegx.CoeffImage, len(imgs))
	for i, img := range imgs {
		im, err := img.ToCoeffs(92, jpegx.Sub420)
		if err != nil {
			return nil, err
		}
		out[i] = im
	}
	return out, nil
}

func encodedSize(im *jpegx.CoeffImage) (int, error) {
	var buf bytes.Buffer
	err := jpegx.EncodeCoeffs(&buf, im, &jpegx.EncodeOptions{OptimizeHuffman: true})
	return buf.Len(), err
}

// Fig5SizeVsThreshold reproduces Fig. 5: normalized public, secret and
// combined sizes as a function of T. The paper's headline numbers: near
// T=1 the combined size exceeds the original by ~20%; at the knee
// (T=15-20) the secret part is ~20% of the original and total overhead
// 5-10%.
func Fig5SizeVsThreshold(c Corpus, thresholds []int, maxImages int) (*Table, error) {
	if thresholds == nil {
		thresholds = DefaultThresholds
	}
	images, err := c.load(maxImages)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig. 5 (%s): threshold vs normalized file size", c),
		Header: []string{"T", "public", "secret", "public+secret"},
	}
	for _, th := range thresholds {
		var pubSum, secSum, totSum float64
		for _, im := range images {
			origSize, err := encodedSize(im)
			if err != nil {
				return nil, err
			}
			pub, sec, err := core.Split(im, th)
			if err != nil {
				return nil, err
			}
			pubSize, err := encodedSize(pub)
			if err != nil {
				return nil, err
			}
			secSize, err := encodedSize(sec)
			if err != nil {
				return nil, err
			}
			pubSum += float64(pubSize) / float64(origSize)
			secSum += float64(secSize) / float64(origSize)
			totSum += float64(pubSize+secSize) / float64(origSize)
		}
		n := float64(len(images))
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(th),
			fmt.Sprintf("%.3f", pubSum/n),
			fmt.Sprintf("%.3f", secSum/n),
			fmt.Sprintf("%.3f", totSum/n),
		})
	}
	t.Notes = append(t.Notes, "sizes normalized to the original image; paper expects ~1.2 total at T=1 and ~1.05-1.10 at the T=15-20 knee")
	return t, nil
}

// Fig6PSNRVsThreshold reproduces Fig. 6: PSNR of the public and secret
// parts against the original, as a function of T. Paper shape: public part
// pinned at ~10-15 dB (thanks to DC extraction) rising only slowly with T;
// secret part high (35-40 dB region).
func Fig6PSNRVsThreshold(c Corpus, thresholds []int, maxImages int) (*Table, error) {
	if thresholds == nil {
		thresholds = DefaultThresholds
	}
	images, err := c.load(maxImages)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig. 6 (%s): threshold vs PSNR (dB)", c),
		Header: []string{"T", "avg(public)", "std(public)", "avg(secret)", "std(secret)"},
	}
	for _, th := range thresholds {
		var pubVals, secVals []float64
		for _, im := range images {
			ref := im.ToPlanar()
			pub, sec, err := core.Split(im, th)
			if err != nil {
				return nil, err
			}
			pp, err := vision.PSNR(ref, pub.ToPlanar())
			if err != nil {
				return nil, err
			}
			sp, err := vision.PSNR(ref, sec.ToPlanar())
			if err != nil {
				return nil, err
			}
			pubVals = append(pubVals, pp)
			secVals = append(secVals, sp)
		}
		pa, ps := meanStd(pubVals)
		sa, ss := meanStd(secVals)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(th),
			fmt.Sprintf("%.1f", pa), fmt.Sprintf("%.1f", ps),
			fmt.Sprintf("%.1f", sa), fmt.Sprintf("%.1f", ss),
		})
	}
	t.Notes = append(t.Notes, "paper expects public ~10-15 dB nearly flat in T; secret part high")
	return t, nil
}

func meanStd(vals []float64) (mean, std float64) {
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	for _, v := range vals {
		std += (v - mean) * (v - mean)
	}
	std = math.Sqrt(std / float64(len(vals)))
	return mean, std
}

// Fig7Pair is one canonical public/secret encoding.
type Fig7Pair struct {
	Threshold  int
	PublicJPEG []byte
	SecretJPEG []byte
}

// Fig7Canonical reproduces Fig. 7: the public and secret parts of a
// canonical image at T = 1, 5, 10, 15, 20, as JPEG files suitable for
// visual inspection.
func Fig7Canonical() ([]Fig7Pair, error) {
	img := dataset.Natural(1004, 256, 256) // a "canonical" corpus member
	im, err := img.ToCoeffs(92, jpegx.Sub420)
	if err != nil {
		return nil, err
	}
	var out []Fig7Pair
	for _, th := range []int{1, 5, 10, 15, 20} {
		pub, sec, err := core.Split(im, th)
		if err != nil {
			return nil, err
		}
		var pb, sb bytes.Buffer
		if err := jpegx.EncodeCoeffs(&pb, pub, &jpegx.EncodeOptions{OptimizeHuffman: true}); err != nil {
			return nil, err
		}
		if err := jpegx.EncodeCoeffs(&sb, sec, &jpegx.EncodeOptions{OptimizeHuffman: true}); err != nil {
			return nil, err
		}
		out = append(out, Fig7Pair{Threshold: th, PublicJPEG: pb.Bytes(), SecretJPEG: sb.Bytes()})
	}
	return out, nil
}
