package dedup

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p3"
	"p3/internal/metrics"
)

// countingService is an in-memory PhotoService that counts every backend
// call, so the tests can assert how many uploads the dedup layer let
// through and whether any blob was left orphaned.
type countingService struct {
	mu      sync.Mutex
	blobs   map[string][]byte
	seq     int
	uploads atomic.Int64
	deletes atomic.Int64

	// uploadDelay widens the in-flight window so concurrency tests can
	// force the singleflight path deterministically.
	uploadDelay time.Duration
	// failUploads/failDeletes make that many next calls fail.
	failUploads atomic.Int64
	failDeletes atomic.Int64
}

func newCountingService() *countingService {
	return &countingService{blobs: map[string][]byte{}}
}

var errInjected = errors.New("injected backend failure")

func (s *countingService) UploadPhoto(ctx context.Context, jpegBytes []byte) (string, error) {
	s.uploads.Add(1)
	if s.uploadDelay > 0 {
		time.Sleep(s.uploadDelay)
	}
	if s.failUploads.Add(-1) >= 0 {
		return "", errInjected
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	id := fmt.Sprintf("psp-%d", s.seq)
	s.blobs[id] = append([]byte(nil), jpegBytes...)
	return id, nil
}

func (s *countingService) FetchPhoto(ctx context.Context, id string, v p3.PhotoVariant) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[id]
	if !ok {
		return nil, &p3.NotFoundError{Kind: "photo", ID: id}
	}
	return append([]byte(nil), b...), nil
}

func (s *countingService) DeletePhoto(ctx context.Context, id string) error {
	s.deletes.Add(1)
	if s.failDeletes.Add(-1) >= 0 {
		return errInjected
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[id]; !ok {
		return &p3.NotFoundError{Kind: "photo", ID: id}
	}
	delete(s.blobs, id)
	return nil
}

func (s *countingService) blobCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blobs)
}

func newTestStore(backend p3.PhotoService) *Store {
	return New(backend, WithRegistry(metrics.NewRegistry()))
}

func payload(i int) []byte { return []byte(fmt.Sprintf("jpeg-payload-%d", i)) }

func TestIdenticalUploadsShareOneBlob(t *testing.T) {
	backend := newCountingService()
	s := newTestStore(backend)
	ctx := context.Background()

	ids := map[string]bool{}
	for i := 0; i < 10; i++ {
		id, err := s.UploadPhoto(ctx, payload(0))
		if err != nil {
			t.Fatalf("upload %d: %v", i, err)
		}
		if ids[id] {
			t.Fatalf("duplicate logical id %q", id)
		}
		ids[id] = true
	}
	if got := backend.uploads.Load(); got != 1 {
		t.Fatalf("backend saw %d uploads, want 1", got)
	}
	if got := backend.blobCount(); got != 1 {
		t.Fatalf("backend holds %d blobs, want 1", got)
	}
	for id := range ids {
		got, err := s.FetchPhoto(ctx, id, p3.PhotoVariant{})
		if err != nil {
			t.Fatalf("fetch %s: %v", id, err)
		}
		if string(got) != string(payload(0)) {
			t.Fatalf("fetch %s returned wrong bytes", id)
		}
	}
	st := s.Stats()
	if st.DupHits != 9 || st.ProviderUploads != 1 || st.LogicalPhotos != 10 || st.UniqueBlobs != 1 {
		t.Fatalf("stats %+v, want 9 dup hits / 1 provider upload / 10 logical / 1 blob", st)
	}
	if st.BytesSaved == 0 {
		t.Fatal("dedup saved no bytes")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentIdenticalUploadsNoOrphan is the regression test for the
// upload race: two (here: many) concurrent uploads of identical bytes
// must coalesce onto ONE provider upload. Without per-hash singleflight
// both racers upload, one wins the index, and the loser's provider blob
// is orphaned forever — unreferenced, undeletable, and unaccounted.
func TestConcurrentIdenticalUploadsNoOrphan(t *testing.T) {
	backend := newCountingService()
	backend.uploadDelay = 20 * time.Millisecond // hold the leader in flight
	s := newTestStore(backend)
	ctx := context.Background()

	const racers = 16
	var wg sync.WaitGroup
	ids := make([]string, racers)
	errs := make([]error, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i], errs[i] = s.UploadPhoto(ctx, payload(7))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("racer %d: %v", i, err)
		}
	}
	if got := backend.uploads.Load(); got != 1 {
		t.Fatalf("backend saw %d uploads for one content, want 1 (orphan blobs!)", got)
	}
	if got := backend.blobCount(); got != 1 {
		t.Fatalf("backend holds %d blobs, want exactly 1", got)
	}
	for i, id := range ids {
		if _, err := s.FetchPhoto(ctx, id, p3.PhotoVariant{}); err != nil {
			t.Fatalf("racer %d id %s unfetchable: %v", i, id, err)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRefcountLifecycle(t *testing.T) {
	backend := newCountingService()
	s := newTestStore(backend)
	ctx := context.Background()

	var ids []string
	for i := 0; i < 3; i++ {
		id, err := s.UploadPhoto(ctx, payload(1))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Dropping two of three references must not touch the provider.
	for _, id := range ids[:2] {
		if err := s.DeletePhoto(ctx, id); err != nil {
			t.Fatalf("delete %s: %v", id, err)
		}
	}
	if got := backend.deletes.Load(); got != 0 {
		t.Fatalf("provider saw %d deletes with a reference still live, want 0", got)
	}
	if _, err := s.FetchPhoto(ctx, ids[2], p3.PhotoVariant{}); err != nil {
		t.Fatalf("surviving reference unfetchable: %v", err)
	}
	// The last reference takes the provider blob with it.
	if err := s.DeletePhoto(ctx, ids[2]); err != nil {
		t.Fatal(err)
	}
	if got := backend.blobCount(); got != 0 {
		t.Fatalf("provider holds %d blobs after last delete, want 0", got)
	}
	// Deleted IDs stay deleted, and re-uploading the content starts fresh.
	if err := s.DeletePhoto(ctx, ids[0]); !p3.IsNotFound(err) {
		t.Fatalf("double delete: got %v, want not-found", err)
	}
	id, err := s.UploadPhoto(ctx, payload(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.FetchPhoto(ctx, id, p3.PhotoVariant{}); err != nil {
		t.Fatalf("re-upload unfetchable: %v", err)
	}
	if got := backend.uploads.Load(); got != 2 {
		t.Fatalf("backend saw %d uploads, want 2 (one per blob life)", got)
	}
	st := s.Stats()
	if st.NegativeRefs != 0 {
		t.Fatalf("negative refs: %d", st.NegativeRefs)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUploadWithDimsReportsStoredDims(t *testing.T) {
	backend := &dimsService{countingService: newCountingService()}
	s := newTestStore(backend)
	ctx := context.Background()

	_, w, h, err := s.UploadPhotoWithDims(ctx, payload(3))
	if err != nil {
		t.Fatal(err)
	}
	if w != 640 || h != 480 {
		t.Fatalf("leader got dims %dx%d, want 640x480", w, h)
	}
	// The dup hit must report the dims recorded at first upload.
	_, w, h, err = s.UploadPhotoWithDims(ctx, payload(3))
	if err != nil {
		t.Fatal(err)
	}
	if w != 640 || h != 480 {
		t.Fatalf("dup hit got dims %dx%d, want the recorded 640x480", w, h)
	}
	if got := backend.uploads.Load(); got != 1 {
		t.Fatalf("backend saw %d uploads, want 1", got)
	}
}

// dimsService adds UploadDimsService to the counting backend.
type dimsService struct{ *countingService }

func (s *dimsService) UploadPhotoWithDims(ctx context.Context, jpegBytes []byte) (string, int, int, error) {
	id, err := s.UploadPhoto(ctx, jpegBytes)
	return id, 640, 480, err
}

func TestLeaderFailureDoesNotPoisonTheHash(t *testing.T) {
	backend := newCountingService()
	backend.failUploads.Store(1)
	s := newTestStore(backend)
	ctx := context.Background()

	if _, err := s.UploadPhoto(ctx, payload(4)); !errors.Is(err, errInjected) {
		t.Fatalf("first upload: got %v, want the injected failure", err)
	}
	// The failed entry must not be cached: the next upload retries fresh.
	id, err := s.UploadPhoto(ctx, payload(4))
	if err != nil {
		t.Fatalf("second upload: %v", err)
	}
	if _, err := s.FetchPhoto(ctx, id, p3.PhotoVariant{}); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScrubRetriesParkedProviderDeletes(t *testing.T) {
	backend := newCountingService()
	s := newTestStore(backend)
	ctx := context.Background()

	id, err := s.UploadPhoto(ctx, payload(5))
	if err != nil {
		t.Fatal(err)
	}
	backend.failDeletes.Store(1)
	if err := s.DeletePhoto(ctx, id); err == nil {
		t.Fatal("delete with a failing provider reported success")
	}
	if got := s.Stats().Tombstones; got != 1 {
		t.Fatalf("tombstones %d, want 1 parked", got)
	}
	// The blob is still on the provider; scrub retries and resolves it.
	if got := backend.blobCount(); got != 1 {
		t.Fatalf("provider blobs %d, want the undeleted 1", got)
	}
	rep, err := s.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RetriedDeletes != 1 || rep.Dropped != 1 || rep.FailedDeletes != 0 || rep.RefErrors != 0 {
		t.Fatalf("scrub report %+v, want 1 retried, 1 dropped, 0 failed, 0 ref errors", rep)
	}
	if got := backend.blobCount(); got != 0 {
		t.Fatalf("provider blobs %d after scrub, want 0", got)
	}
	if got := s.Stats().Tombstones; got != 0 {
		t.Fatalf("tombstones %d after scrub, want 0", got)
	}
}

func TestDeleteRacingUploadNeverSharesDyingBlob(t *testing.T) {
	backend := newCountingService()
	s := newTestStore(backend)
	ctx := context.Background()

	// Tombstone the content, then re-upload: the fresh upload must mint a
	// new provider blob, not adopt the tombstoned one.
	id, err := s.UploadPhoto(ctx, payload(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.DeletePhoto(ctx, id); err != nil {
		t.Fatal(err)
	}
	id2, err := s.UploadPhoto(ctx, payload(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.FetchPhoto(ctx, id2, p3.PhotoVariant{}); err != nil {
		t.Fatalf("re-uploaded content unfetchable (shared a dying blob?): %v", err)
	}
	if got := backend.uploads.Load(); got != 2 {
		t.Fatalf("backend saw %d uploads, want 2", got)
	}
}

func TestUnknownIDsForwardToBackend(t *testing.T) {
	backend := newCountingService()
	// A pre-dedup blob living directly on the provider.
	raw, err := backend.UploadPhoto(context.Background(), payload(8))
	if err != nil {
		t.Fatal(err)
	}
	s := newTestStore(backend)
	ctx := context.Background()
	if _, err := s.FetchPhoto(ctx, raw, p3.PhotoVariant{}); err != nil {
		t.Fatalf("fetch of pre-dedup id: %v", err)
	}
	if err := s.DeletePhoto(ctx, raw); err != nil {
		t.Fatalf("delete of pre-dedup id: %v", err)
	}
	if got := backend.blobCount(); got != 0 {
		t.Fatalf("pre-dedup blob not deleted (%d left)", got)
	}
}

// TestPropertyAgainstModel drives a random upload/delete sequence against
// a trivial reference model and checks, at every step, that the dedup
// layer agrees with it: live IDs fetch the right bytes, deleted IDs are
// gone, the provider holds exactly one blob per distinct live content,
// and the refcount invariants audit clean.
func TestPropertyAgainstModel(t *testing.T) {
	backend := newCountingService()
	s := newTestStore(backend)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))

	model := map[string]int{} // live logical id → payload index
	var live []string
	for step := 0; step < 400; step++ {
		if len(live) == 0 || rng.Intn(100) < 55 {
			pi := rng.Intn(4)
			id, err := s.UploadPhoto(ctx, payload(pi))
			if err != nil {
				t.Fatalf("step %d upload: %v", step, err)
			}
			if _, dup := model[id]; dup {
				t.Fatalf("step %d: id %q minted twice", step, id)
			}
			model[id] = pi
			live = append(live, id)
		} else {
			vi := rng.Intn(len(live))
			id := live[vi]
			live[vi] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := s.DeletePhoto(ctx, id); err != nil {
				t.Fatalf("step %d delete %s: %v", step, id, err)
			}
			delete(model, id)
		}
		if step%37 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	// Final audit: every live ID serves its payload, distinct contents on
	// the provider match the distinct live payloads.
	distinct := map[int]bool{}
	for id, pi := range model {
		got, err := s.FetchPhoto(ctx, id, p3.PhotoVariant{})
		if err != nil {
			t.Fatalf("final fetch %s: %v", id, err)
		}
		if string(got) != string(payload(pi)) {
			t.Fatalf("final fetch %s: wrong bytes", id)
		}
		distinct[pi] = true
	}
	if got := backend.blobCount(); got != len(distinct) {
		t.Fatalf("provider holds %d blobs, want %d (one per distinct live content)", got, len(distinct))
	}
	st := s.Stats()
	if st.LogicalPhotos != len(model) {
		t.Fatalf("logical photos %d, want %d", st.LogicalPhotos, len(model))
	}
	if st.NegativeRefs != 0 {
		t.Fatalf("negative refs: %d", st.NegativeRefs)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHammerConcurrentUploadDeleteScrub is the -race hammer: many
// goroutines upload, delete, fetch, and scrub a tiny payload set (maximal
// hash contention) at once. The invariants must hold mid-flight and the
// final state must be exactly consistent.
func TestHammerConcurrentUploadDeleteScrub(t *testing.T) {
	backend := newCountingService()
	s := newTestStore(backend)
	ctx := context.Background()

	const (
		workers = 8
		steps   = 150
	)
	var mu sync.Mutex // guards live
	var live []string
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < steps; i++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // upload one of two contents — constant collision
					id, err := s.UploadPhoto(ctx, payload(rng.Intn(2)))
					if err != nil {
						t.Errorf("upload: %v", err)
						return
					}
					mu.Lock()
					live = append(live, id)
					mu.Unlock()
				case 4, 5, 6: // delete a random live id
					mu.Lock()
					var id string
					if len(live) > 0 {
						vi := rng.Intn(len(live))
						id = live[vi]
						live[vi] = live[len(live)-1]
						live = live[:len(live)-1]
					}
					mu.Unlock()
					if id != "" {
						if err := s.DeletePhoto(ctx, id); err != nil {
							t.Errorf("delete %s: %v", id, err)
							return
						}
					}
				case 7, 8: // fetch a random live id (may race a delete; not-found is fine)
					mu.Lock()
					var id string
					if len(live) > 0 {
						id = live[rng.Intn(len(live))]
					}
					mu.Unlock()
					if id != "" {
						if _, err := s.FetchPhoto(ctx, id, p3.PhotoVariant{}); err != nil && !p3.IsNotFound(err) {
							t.Errorf("fetch %s: %v", id, err)
							return
						}
					}
				case 9: // scrub mid-flight
					if _, err := s.Scrub(ctx); err != nil {
						t.Errorf("scrub: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if _, err := s.Scrub(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.NegativeRefs != 0 {
		t.Fatalf("negative refs after hammer: %d", st.NegativeRefs)
	}
	if st.LogicalPhotos != len(live) {
		t.Fatalf("logical photos %d, want the %d surviving ids", st.LogicalPhotos, len(live))
	}
	for _, id := range live {
		if _, err := s.FetchPhoto(context.Background(), id, p3.PhotoVariant{}); err != nil {
			t.Fatalf("surviving id %s unfetchable: %v", id, err)
		}
	}
}
